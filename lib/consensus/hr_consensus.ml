let component = "consensus.hr"

(* Votes carry Value.null as ⊥. *)
type Sim.Payload.t +=
  | Current of { round : int; est : Value.t }
  | Vote of { round : int; aux : Value.t }
  | Decide of { round : int; est : Value.t }

type phase =
  | Idle
  | Wait_current  (** Step 1: coordinator value or suspicion. *)
  | Wait_votes  (** Step 2: quorum of votes. *)
  | Advancing  (** Between rounds (next entry runs one engine event later). *)
  | Halted

type round_buffers = {
  mutable current : Value.t option;  (** The coordinator's value, if seen. *)
  mutable votes : Value.t list;  (** Reverse arrival order. *)
}

type pstate = {
  mutable round : int;
  mutable est : Value.t;
  mutable phase : phase;
  mutable decided : Instance.decision option;
  mutable round_span : Sim.Engine.span option;  (** Open while participating in a round. *)
  buffers : (int, round_buffers) Hashtbl.t;
}

let install ?(component = component) ?f ?(max_rounds = 100_000) engine ~fd ~rb () =
  let n = Sim.Engine.n engine in
  let f = match f with Some f -> f | None -> (n - 1) / 2 in
  if f < 0 || 2 * f >= n then invalid_arg "Hr_consensus.install: need 0 <= f < n/2";
  let quorum = n - f in
  let m_rounds = Obs.Registry.counter (Sim.Engine.obs engine) ~name:"consensus.hr.rounds" in
  let states =
    Array.init n (fun _ ->
        {
          round = -1;
          est = Value.null;
          phase = Idle;
          decided = None;
          round_span = None;
          buffers = Hashtbl.create 16;
        })
  in
  let close_round_span st =
    match st.round_span with
    | Some s ->
      Sim.Engine.end_span engine s;
      st.round_span <- None
    | None -> ()
  in
  let coordinator r = r mod n in
  let buffers_of st r =
    match Hashtbl.find_opt st.buffers r with
    | Some b -> b
    | None ->
      let b = { current = None; votes = [] } in
      Hashtbl.add st.buffers r b;
      b
  in
  let first_quorum rev_votes =
    let arrived = List.rev rev_votes in
    List.filteri (fun i _ -> i < quorum) arrived
  in
  let decide p ~round ~value =
    let st = states.(p) in
    if st.decided = None && st.phase <> Halted then begin
      let d = { Instance.value; round = round + 1; at = Sim.Engine.now engine } in
      st.decided <- Some d;
      st.phase <- Halted;
      close_round_span st;
      Sim.Trace.record (Sim.Engine.trace engine)
        (Sim.Trace.Decide { at = Sim.Engine.now engine; pid = p; value; round = round + 1 })
    end
  in
  let rec advance_round p r =
    (* Deferred by one engine event; see Ec_consensus.advance_round. *)
    let st = states.(p) in
    st.phase <- Advancing;
    ignore
      (Sim.Engine.set_timer engine p ~delay:0 (fun () ->
           if states.(p).phase = Advancing then enter_round p r)
        : Sim.Engine.timer)
  and enter_round p r =
    let st = states.(p) in
    if r >= max_rounds then begin
      st.phase <- Halted;
      close_round_span st
    end
    else begin
      st.round <- r;
      st.phase <- Wait_current;
      close_round_span st;
      Obs.Registry.incr m_rounds;
      st.round_span <- Some (Sim.Engine.begin_span engine p ~component ~name:"round");
      if Sim.Pid.equal (coordinator r) p then begin
        (* Step 1: the coordinator announces its estimate (everybody,
           itself included via the local copy). *)
        (buffers_of st r).current <- Some st.est;
        Sim.Engine.send_to_all_others engine ~component
          ~tag:(Printf.sprintf "current.r%d" (r + 1))
          ~src:p
          (Current { round = r; est = st.est })
      end;
      step p
    end
  and cast_vote p aux =
    let st = states.(p) in
    let b = buffers_of st st.round in
    st.phase <- Wait_votes;
    b.votes <- aux :: b.votes;
    Sim.Engine.send_to_all_others engine ~component
      ~tag:(Printf.sprintf "vote.r%d" (st.round + 1))
      ~src:p
      (Vote { round = st.round; aux });
    step p
  and step p =
    let st = states.(p) in
    match st.phase with
    | Idle | Halted | Advancing -> ()
    | Wait_current -> begin
      let b = buffers_of st st.round in
      match b.current with
      | Some v -> cast_vote p v
      | None ->
        if Sim.Pid.Set.mem (coordinator st.round) (Fd.Fd_handle.suspected fd p) then
          cast_vote p Value.null
    end
    | Wait_votes ->
      let b = buffers_of st st.round in
      if List.length b.votes >= quorum then begin
        let votes = first_quorum b.votes in
        let non_null = List.filter (fun v -> not (Value.is_null v)) votes in
        begin
          match non_null with
          | [] -> ()
          | v :: _ ->
            (* Only the coordinator's value circulates in a round, so all
               non-⊥ votes agree; adopt, and decide on an all-v quorum. *)
            st.est <- v;
            if List.length non_null = quorum then
              Broadcast.Reliable_broadcast.rbroadcast rb ~src:p ~tag:"decide"
                (Decide { round = st.round; est = v })
        end;
        advance_round p (st.round + 1)
      end
  in
  let on_message p ~src:_ payload =
    let st = states.(p) in
    match payload with
    | Current { round; est } ->
      let b = buffers_of st round in
      if Option.is_none b.current then b.current <- Some est;
      if st.phase = Wait_current && round = st.round then step p
    | Vote { round; aux } ->
      let b = buffers_of st round in
      b.votes <- aux :: b.votes;
      if st.phase = Wait_votes && round = st.round then step p
    | _ -> ()
  in
  List.iter
    (fun p ->
      Sim.Engine.register engine ~component p (on_message p);
      Broadcast.Reliable_broadcast.subscribe rb p (fun ~origin:_ payload ->
          match payload with
          | Decide { round; est } -> decide p ~round ~value:est
          | _ -> ()))
    (Sim.Pid.all ~n);
  Fd.Fd_handle.subscribe fd (fun p _view ->
      if Sim.Engine.is_alive engine p && states.(p).phase = Wait_current then step p);
  let proposed = Array.make n false in
  let propose p v =
    if not (Value.valid_proposal v) then invalid_arg "Hr_consensus.propose: invalid value";
    if proposed.(p) then invalid_arg "Hr_consensus.propose: already proposed";
    proposed.(p) <- true;
    Sim.Trace.record (Sim.Engine.trace engine)
      (Sim.Trace.Propose { at = Sim.Engine.now engine; pid = p; value = v });
    let st = states.(p) in
    if st.phase = Idle then begin
      st.est <- v;
      enter_round p 0
    end
  in
  {
    Instance.name = "hr-consensus";
    phases_per_round = 2;
    propose;
    decision = (fun p -> states.(p).decided);
    current_round = (fun p -> states.(p).round + 1);
  }
