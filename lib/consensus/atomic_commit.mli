(** Non-Blocking Atomic Commitment (NBAC) from consensus and a failure
    detector — the application behind Guerraoui's study of the relationship
    between NBAC and consensus [10], which the paper leans on in Section
    5.1 (any ◇S-based consensus is automatically {i uniform}).

    Every participant votes Yes or No on a transaction.  Required:

    - {b uniform agreement}: no two participants decide differently;
    - {b validity / abort-validity}: Commit is only decided if everybody
      voted Yes; Abort is only decided if some process voted No {b or}
      some process was suspected of crashing;
    - {b termination}: every correct participant decides.

    The classic reduction: each participant broadcasts its vote, waits
    until it has a vote from every process it does not suspect, proposes
    Commit if it saw n Yes votes and Abort otherwise, and runs consensus on
    the proposals.  With a {i perfect} detector (P) the outcome is exact:
    an Abort implies a No vote or a real crash.  With the ◇P output of the
    paper's Fig. 2 transformation, premature suspicions can cause
    gratuitous (but always agreed-upon) Aborts — NBAC's non-triviality is
    exactly where P separates from ◇P, and the test suite demonstrates
    both sides.

    The consensus instance is injected, so NBAC runs on the paper's ◇C
    algorithm (our default) or on either baseline. *)

type outcome =
  | Commit
  | Abort

val pp_outcome : Format.formatter -> outcome -> unit

type vote =
  | Yes
  | No

type t

val default_component : string

val create :
  ?component:string ->
  Sim.Engine.t ->
  fd:Fd.Fd_handle.t ->
  consensus:Instance.t ->
  unit ->
  t
(** [fd] is the detector used to stop waiting for votes (a P oracle for
    exact NBAC; any ◇P for the eventually-accurate variant).  [consensus]
    must be a fresh instance dedicated to this commit. *)

val vote : t -> Sim.Pid.t -> vote -> unit
(** Cast the participant's vote (exactly once). *)

val outcome : t -> Sim.Pid.t -> outcome option

val decided_all_correct : t -> bool
(** Every live participant has an outcome. *)
