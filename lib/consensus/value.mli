(** Consensus proposal values.

    The algorithms never inspect values (they only move them around and
    compare adoption timestamps), so plain integers lose no generality.
    [null] encodes the distinguished "no value" of null estimates / null
    propositions (Figs. 3–4); it is never a legal proposal. *)

type t = int

val null : t
(** The distinguished non-value (-1). *)

val is_null : t -> bool
val valid_proposal : t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
