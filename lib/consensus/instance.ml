type decision = {
  value : Value.t;
  round : int;
  at : Sim.Sim_time.t;
}

type t = {
  name : string;
  phases_per_round : int;
  propose : Sim.Pid.t -> Value.t -> unit;
  decision : Sim.Pid.t -> decision option;
  current_round : Sim.Pid.t -> int;
}

let decided_value t p = Option.map (fun d -> d.value) (t.decision p)

let max_round t ~n =
  List.fold_left (fun acc p -> Stdlib.max acc (t.current_round p)) 0 (Sim.Pid.all ~n)

let decision_rounds t ~n =
  List.filter_map (fun p -> Option.map (fun d -> d.round) (t.decision p)) (Sim.Pid.all ~n)
