type outcome =
  | Commit
  | Abort

let pp_outcome ppf = function
  | Commit -> Format.pp_print_string ppf "commit"
  | Abort -> Format.pp_print_string ppf "abort"

type vote =
  | Yes
  | No

let vote_is_yes = function Yes -> true | No -> false

let default_component = "nbac"

type Sim.Payload.t += Vote_msg of vote

(* Consensus carries ints: 1 = commit, 0 = abort. *)
let value_of_outcome = function Commit -> 1 | Abort -> 0
let outcome_of_value v = if v = value_of_outcome Commit then Commit else Abort

type process_state = {
  mutable my_vote : vote option;
  votes : (Sim.Pid.t, vote) Hashtbl.t;
  mutable proposed : bool;
}

type t = {
  engine : Sim.Engine.t;
  n : int;
  component : string;
  fd : Fd.Fd_handle.t;
  consensus : Instance.t;
  states : process_state array;
}

(* Propose once we voted and, for every process, either have its vote or
   suspect it (the P-style wait: with an accurate detector an Abort then
   certifies a No vote or a genuine crash). *)
let maybe_propose t p =
  let st = t.states.(p) in
  if (not st.proposed) && st.my_vote <> None then begin
    let suspected = Fd.Fd_handle.suspected t.fd p in
    let resolved q = Hashtbl.mem st.votes q || Sim.Pid.Set.mem q suspected in
    if List.for_all resolved (Sim.Pid.all ~n:t.n) then begin
      st.proposed <- true;
      let all_yes =
        Hashtbl.length st.votes = t.n
        && Hashtbl.fold (fun _ v acc -> acc && vote_is_yes v) st.votes true
      in
      t.consensus.Instance.propose p
        (value_of_outcome (if all_yes then Commit else Abort))
    end
  end

let create ?(component = default_component) engine ~fd ~consensus () =
  let n = Sim.Engine.n engine in
  let t =
    {
      engine;
      n;
      component;
      fd;
      consensus;
      states =
        Array.init n (fun _ -> { my_vote = None; votes = Hashtbl.create 8; proposed = false });
    }
  in
  let on_message p ~src payload =
    match payload with
    | Vote_msg v ->
      Hashtbl.replace t.states.(p).votes src v;
      maybe_propose t p
    | _ -> ()
  in
  List.iter (fun p -> Sim.Engine.register engine ~component p (on_message p)) (Sim.Pid.all ~n);
  Fd.Fd_handle.subscribe fd (fun p _ ->
      if Sim.Engine.is_alive engine p then maybe_propose t p);
  t

let vote t p v =
  let st = t.states.(p) in
  if st.my_vote <> None then invalid_arg "Atomic_commit.vote: already voted";
  st.my_vote <- Some v;
  (* The vote reaches everybody, ourselves included (self-send). *)
  Sim.Engine.send_to_all t.engine ~component:t.component ~tag:"vote" ~src:p (Vote_msg v)

let outcome t p =
  Option.map
    (fun d -> outcome_of_value d.Instance.value)
    (t.consensus.Instance.decision p)

let decided_all_correct t =
  List.for_all
    (fun p -> (not (Sim.Engine.is_alive t.engine p)) || outcome t p <> None)
    (Sim.Pid.all ~n:t.n)
