let component = "consensus.ct"

type Sim.Payload.t +=
  | Estimate of { round : int; est : Value.t; ts : int }
  | Propose of { round : int; est : Value.t }
  | Ack of { round : int }
  | Nack of { round : int }
  | Decide of { round : int; est : Value.t }

type phase =
  | Idle  (** Before propose. *)
  | Coord_wait_estimates  (** Phase 2: gathering a majority of estimates. *)
  | Wait_proposal  (** Phase 3: waiting for the coordinator's proposal. *)
  | Coord_wait_replies  (** Phase 4: gathering a majority of ACK/NACK. *)
  | Advancing  (** Between rounds (next entry runs one engine event later). *)
  | Halted

type replies = { mutable acks : int; mutable nacks : int }

type pstate = {
  mutable round : int;  (** 0-based internally; reported 1-based. *)
  mutable est : Value.t;
  mutable ts : int;
  mutable phase : phase;
  mutable decided : Instance.decision option;
  mutable round_span : Sim.Engine.span option;  (** Open while participating in a round. *)
  estimates : (int, (Value.t * int) list ref) Hashtbl.t;
  proposals : (int, Value.t) Hashtbl.t;
  replies : (int, replies) Hashtbl.t;
}

let install ?(component = component) ?(max_rounds = 100_000) engine ~fd ~rb () =
  let n = Sim.Engine.n engine in
  let majority = (n / 2) + 1 in
  let m_rounds = Obs.Registry.counter (Sim.Engine.obs engine) ~name:"consensus.ct.rounds" in
  let states =
    Array.init n (fun _ ->
        {
          round = -1;
          est = Value.null;
          ts = 0;
          phase = Idle;
          decided = None;
          round_span = None;
          estimates = Hashtbl.create 16;
          proposals = Hashtbl.create 16;
          replies = Hashtbl.create 16;
        })
  in
  let close_round_span st =
    match st.round_span with
    | Some s ->
      Sim.Engine.end_span engine s;
      st.round_span <- None
    | None -> ()
  in
  let coordinator r = r mod n in
  let estimates_of st r =
    match Hashtbl.find_opt st.estimates r with
    | Some l -> l
    | None ->
      let l = ref [] in
      Hashtbl.add st.estimates r l;
      l
  in
  let replies_of st r =
    match Hashtbl.find_opt st.replies r with
    | Some c -> c
    | None ->
      let c = { acks = 0; nacks = 0 } in
      Hashtbl.add st.replies r c;
      c
  in
  let best_estimate received =
    (* An estimate with the largest timestamp (Phase 2). *)
    match received with
    | [] -> invalid_arg "Ct_consensus: no estimate to choose from"
    | (v0, ts0) :: rest ->
      fst (List.fold_left (fun (v, ts) (v', ts') -> if ts' > ts then (v', ts') else (v, ts))
             (v0, ts0) rest)
  in
  let decide p ~round ~value =
    let st = states.(p) in
    if st.decided = None && st.phase <> Halted then begin
      let d = { Instance.value; round = round + 1; at = Sim.Engine.now engine } in
      st.decided <- Some d;
      st.phase <- Halted;
      close_round_span st;
      Sim.Trace.record (Sim.Engine.trace engine)
        (Sim.Trace.Decide { at = Sim.Engine.now engine; pid = p; value; round = round + 1 })
    end
  in
  let rec advance_round p =
    (* Deferred by one engine event: a synchronous chain of self-completing
       rounds (tiny systems) would otherwise outrun its own decision. *)
    let st = states.(p) in
    st.phase <- Advancing;
    ignore
      (Sim.Engine.set_timer engine p ~delay:0 (fun () ->
           if states.(p).phase = Advancing then really_advance p)
        : Sim.Engine.timer)
  and really_advance p =
    let st = states.(p) in
    if st.round + 1 >= max_rounds then begin
      (* Safety valve: a detector violating ◇S could make a process burn
         through rounds forever within one simulation instant. *)
      st.phase <- Halted;
      close_round_span st
    end
    else begin
    st.round <- st.round + 1;
    close_round_span st;
    Obs.Registry.incr m_rounds;
    st.round_span <- Some (Sim.Engine.begin_span engine p ~component ~name:"round");
    let c = coordinator st.round in
    if Sim.Pid.equal c p then begin
      (* Phase 1, self: the coordinator's own estimate joins the pool
         directly (a self-send in the paper's formulation). *)
      let pool = estimates_of st st.round in
      pool := (st.est, st.ts) :: !pool;
      st.phase <- Coord_wait_estimates
    end
    else begin
      Sim.Engine.send engine ~component
        ~tag:(Printf.sprintf "estimate.r%d" (st.round + 1))
        ~src:p ~dst:c
        (Estimate { round = st.round; est = st.est; ts = st.ts });
      st.phase <- Wait_proposal
    end;
    step p
    end
  and step p =
    let st = states.(p) in
    match st.phase with
    | Idle | Halted | Advancing -> ()
    | Coord_wait_estimates ->
      let pool = !(estimates_of st st.round) in
      if List.length pool >= majority then begin
        let v = best_estimate pool in
        st.est <- v;
        Sim.Engine.send_to_all_others engine ~component
          ~tag:(Printf.sprintf "propose.r%d" (st.round + 1))
          ~src:p
          (Propose { round = st.round; est = v });
        (* The coordinator is also a participant: it adopts its own proposal
           and ACKs it (locally). *)
        st.ts <- st.round;
        let c = replies_of st st.round in
        c.acks <- c.acks + 1;
        st.phase <- Coord_wait_replies;
        step p
      end
    | Wait_proposal -> begin
      let c = coordinator st.round in
      match Hashtbl.find_opt st.proposals st.round with
      | Some v ->
        st.est <- v;
        st.ts <- st.round;
        Sim.Engine.send engine ~component
          ~tag:(Printf.sprintf "ack.r%d" (st.round + 1))
          ~src:p ~dst:c (Ack { round = st.round });
        advance_round p
      | None ->
        if Sim.Pid.Set.mem c (Fd.Fd_handle.suspected fd p) then begin
          Sim.Engine.send engine ~component
            ~tag:(Printf.sprintf "nack.r%d" (st.round + 1))
            ~src:p ~dst:c (Nack { round = st.round });
          advance_round p
        end
    end
    | Coord_wait_replies ->
      let c = replies_of st st.round in
      if c.acks + c.nacks >= majority then begin
        (* Chandra–Toueg: look only at the first majority of replies; one
           NACK among them kills the round (contrast with ◇C, exp. E6). *)
        if c.nacks = 0 then
          Broadcast.Reliable_broadcast.rbroadcast rb ~src:p ~tag:"decide"
            (Decide { round = st.round; est = st.est });
        advance_round p
      end
  in
  let on_message p ~src:_ payload =
    let st = states.(p) in
    match payload with
    | Estimate { round; est; ts } ->
      let pool = estimates_of st round in
      pool := (est, ts) :: !pool;
      if st.phase = Coord_wait_estimates && round = st.round then step p
    | Propose { round; est } ->
      if not (Hashtbl.mem st.proposals round) then Hashtbl.replace st.proposals round est;
      if st.phase = Wait_proposal && round = st.round then step p
    | Ack { round } ->
      let c = replies_of st round in
      c.acks <- c.acks + 1;
      if st.phase = Coord_wait_replies && round = st.round then step p
    | Nack { round } ->
      let c = replies_of st round in
      c.nacks <- c.nacks + 1;
      if st.phase = Coord_wait_replies && round = st.round then step p
    | _ -> ()
  in
  List.iter
    (fun p ->
      Sim.Engine.register engine ~component p (on_message p);
      Broadcast.Reliable_broadcast.subscribe rb p (fun ~origin:_ payload ->
          match payload with
          | Decide { round; est } -> decide p ~round ~value:est
          | _ -> ()))
    (Sim.Pid.all ~n);
  Fd.Fd_handle.subscribe fd (fun p _view ->
      if Sim.Engine.is_alive engine p && states.(p).phase = Wait_proposal then step p);
  let proposed = Array.make n false in
  let propose p v =
    if not (Value.valid_proposal v) then invalid_arg "Ct_consensus.propose: invalid value";
    if proposed.(p) then invalid_arg "Ct_consensus.propose: already proposed";
    proposed.(p) <- true;
    Sim.Trace.record (Sim.Engine.trace engine)
      (Sim.Trace.Propose { at = Sim.Engine.now engine; pid = p; value = v });
    let st = states.(p) in
    (* The decision may already have been R-delivered (a late proposer). *)
    if st.phase = Idle then begin
      st.est <- v;
      st.ts <- 0;
      advance_round p
    end
  in
  {
    Instance.name = "ct-consensus";
    phases_per_round = 4;
    propose;
    decision = (fun p -> states.(p).decided);
    current_round = (fun p -> states.(p).round + 1);
  }
