type t = int

let null = -1
let is_null v = v = null
let valid_proposal v = v >= 0
let equal = Int.equal
let pp ppf v = if is_null v then Format.pp_print_string ppf "<null>" else Format.pp_print_int ppf v
