type message = {
  origin : Sim.Pid.t;
  seq : int;
  body : int;
}

let pp_message ppf m =
  Format.fprintf ppf "%a#%d=%d" Sim.Pid.pp m.origin m.seq m.body

(* Message identity, used as the consensus value for a slot: ids grow with
   the sequence number first, so older messages are smaller and the
   propose-the-minimum rule is fair (no origin can starve another). *)
let id_of ~n m = (m.seq * n) + m.origin

type Sim.Payload.t += Data of message

type process_state = {
  mutable pending : Sim.Pid.Set.t;  (** Ids R-delivered but not TO-delivered. *)
  bodies : (int, message) Hashtbl.t;  (** id -> message, once R-delivered. *)
  mutable delivered_ids : Sim.Pid.Set.t;
  mutable rev_log : message list;
  mutable next_slot : int;  (** First slot not yet consumed. *)
  proposed : bool array;  (** Per slot: did we propose already? *)
  mutable next_seq : int;
  mutable rev_subscribers : (message -> unit) list;
}

type t = {
  engine : Sim.Engine.t;
  n : int;
  max_slots : int;
  instances : Instance.t array;
  states : process_state array;
  mutable rb : Broadcast.Reliable_broadcast.t option;
      (** The dissemination channel; set once in [create]. *)
}

let default_component = "total-order"

let deliver t p m =
  let st = t.states.(p) in
  st.rev_log <- m :: st.rev_log;
  List.iter (fun f -> f m) (List.rev st.rev_subscribers)

(* Consume decided slots in order.  A decided id waits for its payload
   (reliable broadcast guarantees it arrives at every correct process);
   duplicate decisions — a message winning a slot after it was already
   delivered — are skipped. *)
let rec consume_slots t p =
  let st = t.states.(p) in
  if st.next_slot < t.max_slots then begin
    match t.instances.(st.next_slot).Instance.decision p with
    | None -> ()
    | Some d -> (
      let id = d.Instance.value in
      if Sim.Pid.Set.mem id st.delivered_ids then begin
        st.next_slot <- st.next_slot + 1;
        consume_slots t p
      end
      else
        match Hashtbl.find_opt st.bodies id with
        | None -> ()  (* hold back until the payload arrives *)
        | Some m ->
          st.delivered_ids <- Sim.Pid.Set.add id st.delivered_ids;
          st.pending <- Sim.Pid.Set.remove id st.pending;
          st.next_slot <- st.next_slot + 1;
          deliver t p m;
          consume_slots t p)
  end

(* Propose the oldest pending message to the first locally-undecided slot
   (one proposal per slot per process; losers stay pending). *)
let maybe_propose t p =
  let st = t.states.(p) in
  let rec first_undecided k =
    if k >= t.max_slots then None
    else if t.instances.(k).Instance.decision p = None then Some k
    else first_undecided (k + 1)
  in
  match first_undecided st.next_slot with
  | None -> ()
  | Some k ->
    if not st.proposed.(k) then begin
      let candidates = Sim.Pid.Set.diff st.pending st.delivered_ids in
      match Sim.Pid.Set.min_elt_opt candidates with
      | None -> ()
      | Some id ->
        st.proposed.(k) <- true;
        t.instances.(k).Instance.propose p id
    end

let tick t p () =
  consume_slots t p;
  maybe_propose t p

let create ?(component = default_component) ?(max_slots = 64) ?(poll_period = 2) engine
    ~make_instance () =
  if max_slots <= 0 || poll_period <= 0 then
    invalid_arg "Total_order.create: max_slots and poll_period must be positive";
  let n = Sim.Engine.n engine in
  let instances = Array.init max_slots (fun slot -> make_instance ~slot) in
  let states =
    Array.init n (fun _ ->
        {
          pending = Sim.Pid.Set.empty;
          bodies = Hashtbl.create 32;
          delivered_ids = Sim.Pid.Set.empty;
          rev_log = [];
          next_slot = 0;
          proposed = Array.make max_slots false;
          next_seq = 0;
          rev_subscribers = [];
        })
  in
  let t = { engine; n; max_slots; instances; states; rb = None } in
  (* Dissemination channel: reliable broadcast of the message payloads. *)
  let rb = Broadcast.Reliable_broadcast.create ~component:(component ^ ".data") engine in
  t.rb <- Some rb;
  List.iter
    (fun p ->
      Broadcast.Reliable_broadcast.subscribe rb p (fun ~origin:_ payload ->
          match payload with
          | Data m ->
            let st = states.(p) in
            let id = id_of ~n m in
            Hashtbl.replace st.bodies id m;
            if not (Sim.Pid.Set.mem id st.delivered_ids) then
              st.pending <- Sim.Pid.Set.add id st.pending;
            tick t p ()
          | _ -> ());
      ignore (Sim.Engine.every engine p ~phase:poll_period ~period:poll_period (tick t p)
               : unit -> unit))
    (Sim.Pid.all ~n);
  t

let broadcast t ~src ~body =
  if body < 0 then invalid_arg "Total_order.broadcast: body must be non-negative";
  match t.rb with
  | None -> assert false
  | Some rb ->
    let st = t.states.(src) in
    let m = { origin = src; seq = st.next_seq; body } in
    st.next_seq <- st.next_seq + 1;
    Broadcast.Reliable_broadcast.rbroadcast rb ~src ~tag:"to-data" (Data m)

let subscribe t p f = t.states.(p).rev_subscribers <- f :: t.states.(p).rev_subscribers

let delivered t p = List.rev t.states.(p).rev_log

let slots_used t p = t.states.(p).next_slot
