(** The face of an installed consensus protocol instance.

    Every protocol ({!Ct_consensus}, {!Mr_consensus}, {!Ecfd.Ec_consensus})
    installs one module per process and returns this record.  Proposals and
    decisions are also recorded in the engine trace ([Propose] / [Decide]
    events), which is what {!Spec.Consensus_props} checks. *)

type decision = {
  value : Value.t;
  round : int;  (** Round in which the decided value was locked. *)
  at : Sim.Sim_time.t;
}

type t = {
  name : string;
  phases_per_round : int;
      (** The protocol's static communication-phase count, as the paper
          counts it in Section 5.4 (◇C: 5, Chandra–Toueg: 4, MR: 3). *)
  propose : Sim.Pid.t -> Value.t -> unit;
  decision : Sim.Pid.t -> decision option;
  current_round : Sim.Pid.t -> int;
      (** Highest round the process has entered (1-based); for metrics. *)
}

val decided_value : t -> Sim.Pid.t -> Value.t option

val max_round : t -> n:int -> int
(** Highest round entered by any process. *)

val decision_rounds : t -> n:int -> int list
(** The decision round of every process that decided. *)
