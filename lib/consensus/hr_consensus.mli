(** A fast rotating-coordinator ◇S consensus in the style of Hurfin–Raynal
    [12] ("A simple and fast asynchronous consensus protocol based on a
    weak failure detector", Distributed Computing 12(4), 1999) — the third
    protocol family the paper's Section 1.2 surveys.

    Like [12], rounds have only {b two} communication steps, trading
    messages for latency (the converse of Chandra–Toueg's trade):

    + the round's rotating coordinator broadcasts its current estimate;
    + every process broadcasts a {i vote}: the coordinator's value if it
      arrived, ⊥ if the coordinator is suspected first; a process that
      gathers a quorum (n-f) of votes {b all} carrying the value decides
      it, adopts the value if {b any} vote carries it, and moves on.

    Safety is quorum intersection (only the coordinator's single value can
    be voted, two quorums share a process, a deciding quorum forces every
    later quorum to adopt); liveness is the usual rotating-coordinator
    argument, so Theorem 3 applies to it too: up to n rounds after
    stabilisation (experiment E5), versus 1 for the paper's ◇C algorithm.

    This is a documented adaptation, not a line-by-line reproduction of
    [12] (DESIGN.md §4): it keeps the protocol's signature properties —
    2 steps/round, rotating coordinator, ◇S suspicion escape, quorum
    voting with n-f waits.

    Cost per round: (n-1) + n(n-1) messages ≈ Θ(n²); 2 phases.
    Requires f < n/2 (default f = ⌈n/2⌉-1). *)

val component : string

val install :
  ?component:string ->
  ?f:int ->
  ?max_rounds:int ->
  Sim.Engine.t ->
  fd:Fd.Fd_handle.t ->
  rb:Broadcast.Reliable_broadcast.t ->
  unit ->
  Instance.t
