let component = "consensus.mr"

(* PH1/PH2 carry Value.null as the ⊥ vote. *)
type Sim.Payload.t +=
  | Est of { round : int; est : Value.t }
  | Ph1 of { round : int; aux : Value.t }
  | Ph2 of { round : int; aux : Value.t }
  | Decide of { round : int; est : Value.t }

type phase =
  | Idle
  | P0  (** Waiting for the leader's estimate of the current round. *)
  | P1  (** Waiting for a quorum of first votes. *)
  | P2  (** Waiting for a quorum of second votes. *)
  | Advancing  (** Between rounds (next entry runs one engine event later). *)
  | Halted

type round_buffers = {
  ests : (Sim.Pid.t, Value.t) Hashtbl.t;
  mutable ph1 : Value.t list;  (** Reverse arrival order. *)
  mutable ph2 : Value.t list;  (** Reverse arrival order. *)
}

type pstate = {
  mutable round : int;
  mutable est : Value.t;
  mutable phase : phase;
  mutable decided : Instance.decision option;
  mutable max_seen : int;  (** Highest round mentioned by any message. *)
  buffers : (int, round_buffers) Hashtbl.t;
}

let install ?(component = component) ?f engine ~fd ~rb () =
  let n = Sim.Engine.n engine in
  let f = match f with Some f -> f | None -> (n - 1) / 2 in
  if f < 0 || 2 * f >= n then invalid_arg "Mr_consensus.install: need 0 <= f < n/2";
  let quorum = n - f in
  let states =
    Array.init n (fun _ ->
        {
          round = -1;
          est = Value.null;
          phase = Idle;
          decided = None;
          max_seen = 0;
          buffers = Hashtbl.create 16;
        })
  in
  let buffers_of st r =
    match Hashtbl.find_opt st.buffers r with
    | Some b -> b
    | None ->
      let b = { ests = Hashtbl.create 8; ph1 = []; ph2 = [] } in
      Hashtbl.add st.buffers r b;
      b
  in
  let first_quorum rev_list =
    (* The first [quorum] votes in arrival order — the paper's point is that
       the decision looks at these and nothing else. *)
    let arrived = List.rev rev_list in
    let rec take k = function
      | [] -> []
      | _ when k = 0 -> []
      | x :: rest -> x :: take (k - 1) rest
    in
    take quorum arrived
  in
  let decide p ~round ~value =
    let st = states.(p) in
    if st.decided = None && st.phase <> Halted then begin
      let d = { Instance.value; round = round + 1; at = Sim.Engine.now engine } in
      st.decided <- Some d;
      st.phase <- Halted;
      Sim.Trace.record (Sim.Engine.trace engine)
        (Sim.Trace.Decide { at = Sim.Engine.now engine; pid = p; value; round = round + 1 })
    end
  in
  let rec advance_round p r =
    (* Deferred by one engine event; see Ec_consensus.advance_round. *)
    let st = states.(p) in
    st.phase <- Advancing;
    ignore
      (Sim.Engine.set_timer engine p ~delay:0 (fun () ->
           if states.(p).phase = Advancing then enter_round p r)
        : Sim.Engine.timer)
  and enter_round p r =
    let st = states.(p) in
    st.round <- r;
    st.phase <- P0;
    let b = buffers_of st r in
    Hashtbl.replace b.ests p st.est;
    Sim.Engine.send_to_all_others engine ~component
      ~tag:(Printf.sprintf "est.r%d" (r + 1))
      ~src:p
      (Est { round = r; est = st.est });
    step p
  and step p =
    let st = states.(p) in
    match st.phase with
    | Idle | Halted -> ()
    | (P0 | P1 | P2 | Advancing) when st.max_seen > st.round ->
      (* Catch up: someone is already in a higher round; join it — even
         between rounds.  (This is also how a late-elected leader reaches
         the frontier.) *)
      enter_round p st.max_seen
    | Advancing -> ()
    | P0 -> begin
      let b = buffers_of st st.round in
      match Fd.Fd_handle.trusted fd p with
      | None -> ()
      | Some leader -> begin
        match Hashtbl.find_opt b.ests leader with
        | None -> ()
        | Some v ->
          st.phase <- P1;
          b.ph1 <- v :: b.ph1;
          Sim.Engine.send_to_all_others engine ~component
            ~tag:(Printf.sprintf "ph1.r%d" (st.round + 1))
            ~src:p
            (Ph1 { round = st.round; aux = v });
          step p
      end
    end
    | P1 ->
      let b = buffers_of st st.round in
      if List.length b.ph1 >= quorum then begin
        let votes = first_quorum b.ph1 in
        let aux2 =
          match votes with
          | [] -> Value.null
          | v :: rest -> if List.for_all (Value.equal v) rest then v else Value.null
        in
        (* Early adoption: anyone who votes v in Phase 2 must already hold
           v as its estimate, so jumping out of the round is harmless. *)
        if not (Value.is_null aux2) then st.est <- aux2;
        st.phase <- P2;
        b.ph2 <- aux2 :: b.ph2;
        Sim.Engine.send_to_all_others engine ~component
          ~tag:(Printf.sprintf "ph2.r%d" (st.round + 1))
          ~src:p
          (Ph2 { round = st.round; aux = aux2 });
        step p
      end
    | P2 ->
      let b = buffers_of st st.round in
      if List.length b.ph2 >= quorum then begin
        let votes = first_quorum b.ph2 in
        let non_null = List.filter (fun v -> not (Value.is_null v)) votes in
        begin
          match non_null with
          | [] -> ()
          | v :: rest ->
            st.est <- v;
            if List.length non_null = quorum && List.for_all (Value.equal v) rest then begin
              (* Every one of the first n-f votes says v: decide.  A single
                 ⊥ among them blocks this branch — the E6 behaviour. *)
              Broadcast.Reliable_broadcast.rbroadcast rb ~src:p ~tag:"decide"
                (Decide { round = st.round; est = v })
            end
        end;
        advance_round p (st.round + 1)
      end
  in
  let saw_round p r =
    let st = states.(p) in
    if r > st.max_seen then st.max_seen <- r
  in
  let on_message p ~src payload =
    let st = states.(p) in
    match payload with
    | Est { round; est } ->
      saw_round p round;
      Hashtbl.replace (buffers_of st round).ests src est;
      if st.phase <> Idle && st.phase <> Halted then step p
    | Ph1 { round; aux } ->
      saw_round p round;
      let b = buffers_of st round in
      b.ph1 <- aux :: b.ph1;
      if st.phase <> Idle && st.phase <> Halted then step p
    | Ph2 { round; aux } ->
      saw_round p round;
      let b = buffers_of st round in
      b.ph2 <- aux :: b.ph2;
      if st.phase <> Idle && st.phase <> Halted then step p
    | _ -> ()
  in
  List.iter
    (fun p ->
      Sim.Engine.register engine ~component p (on_message p);
      Broadcast.Reliable_broadcast.subscribe rb p (fun ~origin:_ payload ->
          match payload with
          | Decide { round; est } -> decide p ~round ~value:est
          | _ -> ()))
    (Sim.Pid.all ~n);
  Fd.Fd_handle.subscribe fd (fun p _view ->
      if Sim.Engine.is_alive engine p && states.(p).phase = P0 then step p);
  let proposed = Array.make n false in
  let propose p v =
    if not (Value.valid_proposal v) then invalid_arg "Mr_consensus.propose: invalid value";
    if proposed.(p) then invalid_arg "Mr_consensus.propose: already proposed";
    proposed.(p) <- true;
    Sim.Trace.record (Sim.Engine.trace engine)
      (Sim.Trace.Propose { at = Sim.Engine.now engine; pid = p; value = v });
    let st = states.(p) in
    (* The decision may already have been R-delivered (a late proposer);
       nothing left to do then. *)
    if st.phase = Idle then begin
      st.est <- v;
      enter_round p (Stdlib.max 0 st.max_seen)
    end
  in
  {
    Instance.name = "mr-consensus";
    phases_per_round = 3;
    propose;
    decision = (fun p -> states.(p).decided);
    current_round = (fun p -> states.(p).round + 1);
  }
