(** The Chandra–Toueg ◇S consensus algorithm [6] (rotating coordinator).

    The baseline the paper measures itself against in Section 5.4.  Rounds
    are asynchronous; the coordinator of round r is p_{(r mod n)+1} — the
    {i rotating coordinator} paradigm.  Each round has four phases:

    + every process sends its (estimate, timestamp) to the coordinator;
    + the coordinator gathers ⌈(n+1)/2⌉ estimates and proposes one with the
      largest timestamp;
    + every process waits for the proposal — adopting and ACKing it — or
      escapes by suspecting the coordinator, NACKing it;
    + the coordinator gathers the {b first} ⌈(n+1)/2⌉ replies and decides
      (R-broadcasting the value) only if {b all} of them are ACKs.

    Note the two behaviours the ◇C paper improves on: the coordinator takes
    Ω(n) rounds to be a never-suspected process after stabilisation
    (Theorem 3; experiment E5), and a single NACK among the first majority
    of replies blocks the round (experiment E6).

    Requires a majority of correct processes and a ◇S-grade detector.
    Messages per round: 3n (n estimates + n proposals + n replies),
    counting the self-addressed ones the paper also counts; our simulator
    does not put self-sends on the network, so the measured figure is
    3(n-1) (experiment E4 reports both conventions). *)

val component : string

val install :
  ?component:string ->
  ?max_rounds:int ->
  Sim.Engine.t ->
  fd:Fd.Fd_handle.t ->
  rb:Broadcast.Reliable_broadcast.t ->
  unit ->
  Instance.t
(** One module per process.  Every process must eventually [propose] or the
    waits of rounds it coordinates cannot fill.  [max_rounds] (default
    100000) halts a process that exhausts that many rounds undecided — a
    safety valve against detectors that violate ◇S (a process can otherwise
    burn through infinitely many rounds at a single simulated instant). *)
