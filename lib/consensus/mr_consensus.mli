(** Leader-based (Ω) consensus in the style of Mostefaoui–Raynal [20].

    The second baseline of Section 5.4.  [20] is summarised but not
    reproduced verbatim in the ◇C paper; this module implements a documented
    adaptation (DESIGN.md §4) with exactly the properties the paper
    attributes to it:

    - {b no rotating coordinator}: the Ω leader supplies the round's value,
      so consensus completes one round after the detector stabilises;
    - {b three communication phases per round, each beginning with a
      broadcast} (Θ(n²) messages per round): EST (everybody broadcasts its
      estimate; each process picks its leader's), PH1 (first quorum vote),
      PH2 (second quorum vote / decision);
    - {b quorum waits of n-f messages} that cannot be extended by suspicion
      information (Ω names one process only): a single "negative" (⊥) vote
      among the first n-f of Phase 2 blocks the round's decision — the
      blocking behaviour the ◇C algorithm removes (experiment E6).

    Safety comes from standard quorum intersection: at most one non-⊥ value
    can survive Phase 1 of a round, deciding requires an all-equal first
    quorum in Phase 2, and any process completing that round then carries
    the decided value.  A process jumps forward upon meeting messages of a
    higher round, which is also what lets a late-elected leader catch up.

    Requires f < n/2 (default f = ⌈n/2⌉-1, i.e. waits are majorities). *)

val component : string

val install :
  ?component:string ->
  ?f:int ->
  Sim.Engine.t ->
  fd:Fd.Fd_handle.t ->
  rb:Broadcast.Reliable_broadcast.t ->
  unit ->
  Instance.t
(** [fd] must provide a trusted process (Ω); its suspected sets are ignored.
    [f] is the assumed fault bound (quorums have n-f processes); it must
    satisfy [0 <= f < n/2]. *)
