(** A replicated key-value store — state-machine replication over
    {!Total_order}, i.e. over repeated ◇C consensus.

    Every replica holds a full copy of the map and applies the totally
    ordered command stream; because all replicas apply the same commands in
    the same order, their states never diverge, even for read-modify-write
    commands ([Add]) submitted concurrently at different replicas — the
    scenario that breaks eventual-consistency systems and that total order
    exists to solve.

    Commands are packed into {!Total_order}'s integer message bodies:
    keys in [0, 1024), values in [0, 2^20), deltas in (-2^19, 2^19). *)

type command =
  | Set of { key : int; value : int }
  | Delete of { key : int }
  | Add of { key : int; delta : int }
      (** Read-modify-write: value := (current or 0) + delta. *)

val pp_command : Format.formatter -> command -> unit

val encode : command -> int
(** Raises [Invalid_argument] outside the documented ranges. *)

val decode : int -> command option

type t

val create :
  ?component:string ->
  ?max_slots:int ->
  Sim.Engine.t ->
  make_instance:(slot:int -> Instance.t) ->
  unit ->
  t
(** Same contract as {!Total_order.create} (one fresh consensus instance
    per slot). *)

val submit : t -> src:Sim.Pid.t -> command -> unit
(** Submit a command at a replica; it is applied everywhere once ordered. *)

val get : t -> Sim.Pid.t -> key:int -> int option
(** Replica-local read of the applied state. *)

val entries : t -> Sim.Pid.t -> (int * int) list
(** The replica's full map, sorted by key. *)

val applied : t -> Sim.Pid.t -> int
(** Number of commands the replica has applied. *)

val log : t -> Sim.Pid.t -> command list
(** The replica's applied command sequence (for auditing/tests). *)
