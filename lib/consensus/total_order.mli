(** Total-order (atomic) broadcast built from repeated consensus.

    The canonical application of the paper's algorithm: Chandra–Toueg [6]
    showed atomic broadcast and consensus are equivalent, and state-machine
    replication is the workload the consensus literature motivates.  The
    classic reduction, specialised to our setting:

    - a TO-broadcast message is first disseminated with reliable broadcast;
    - slot k of the global sequence is fixed by consensus instance k: every
      process proposes its oldest undelivered message and adopts whatever
      instance k decides;
    - decisions are TO-delivered in slot order (held back until the
      message's payload has been R-delivered locally), with duplicates
      skipped (a message can win a slot while also staying pending at a
      process that proposed it elsewhere).

    Properties (checked in the test suite): all correct processes deliver
    the same sequence of messages (total order + agreement), every message
    TO-broadcast by a correct process is eventually delivered (validity,
    given live consensus instances), and no message is delivered twice
    (integrity).

    The module is parameterised by a consensus factory, so it runs over the
    paper's ◇C algorithm as well as over the baselines.  Consensus
    instances are pre-installed ([max_slots] of them — simulation runs are
    finite); the sequencer polls for decisions every [poll_period] ticks. *)

type message = {
  origin : Sim.Pid.t;
  seq : int;  (** Per-origin sequence number, 0-based. *)
  body : int;
}

val pp_message : Format.formatter -> message -> unit

type t

val default_component : string

val create :
  ?component:string ->
  ?max_slots:int ->
  ?poll_period:int ->
  Sim.Engine.t ->
  make_instance:(slot:int -> Instance.t) ->
  unit ->
  t
(** [make_instance ~slot] must install a fresh consensus instance (with its
    own component namespace — use [slot] in the names).  [max_slots]
    defaults to 64, [poll_period] to 2 ticks. *)

val broadcast : t -> src:Sim.Pid.t -> body:int -> unit
(** TO-broadcast a message ([body >= 0]).  No-op if [src] has crashed. *)

val subscribe : t -> Sim.Pid.t -> (message -> unit) -> unit
(** Called on each TO-delivery at the process, in delivery order. *)

val delivered : t -> Sim.Pid.t -> message list
(** The process's delivery sequence so far, oldest first. *)

val slots_used : t -> Sim.Pid.t -> int
(** How many slots the process has consumed (delivered or skipped). *)
