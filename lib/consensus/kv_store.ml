type command =
  | Set of { key : int; value : int }
  | Delete of { key : int }
  | Add of { key : int; delta : int }

let pp_command ppf = function
  | Set { key; value } -> Format.fprintf ppf "set k%d=%d" key value
  | Delete { key } -> Format.fprintf ppf "del k%d" key
  | Add { key; delta } -> Format.fprintf ppf "add k%d%+d" key delta

(* Packing: tag * 2^30 + key * 2^20 + argument (20 bits).  [Add] deltas are
   offset by 2^19 so they stay non-negative in the packed form. *)
let key_space = 1 lsl 10
let arg_space = 1 lsl 20
let delta_offset = 1 lsl 19

let encode = function
  | Set { key; value } ->
    if key < 0 || key >= key_space then invalid_arg "Kv_store.encode: key out of range";
    if value < 0 || value >= arg_space then invalid_arg "Kv_store.encode: value out of range";
    (key * arg_space) + value
  | Delete { key } ->
    if key < 0 || key >= key_space then invalid_arg "Kv_store.encode: key out of range";
    (1 * key_space * arg_space) + (key * arg_space)
  | Add { key; delta } ->
    if key < 0 || key >= key_space then invalid_arg "Kv_store.encode: key out of range";
    if delta <= -delta_offset || delta >= delta_offset then
      invalid_arg "Kv_store.encode: delta out of range";
    (2 * key_space * arg_space) + (key * arg_space) + (delta + delta_offset)

let decode body =
  if body < 0 then None
  else begin
    let tag = body / (key_space * arg_space) in
    let key = body / arg_space mod key_space in
    let arg = body mod arg_space in
    match tag with
    | 0 -> Some (Set { key; value = arg })
    | 1 when arg = 0 -> Some (Delete { key })
    | 2 -> Some (Add { key; delta = arg - delta_offset })
    | _ -> None
  end

module Int_map = Map.Make (Int)

type replica = {
  mutable map : int Int_map.t;
  mutable applied : int;
  mutable rev_log : command list;
}

type t = {
  order : Total_order.t;
  replicas : replica array;
}

let apply replica command =
  replica.applied <- replica.applied + 1;
  replica.rev_log <- command :: replica.rev_log;
  match command with
  | Set { key; value } -> replica.map <- Int_map.add key value replica.map
  | Delete { key } -> replica.map <- Int_map.remove key replica.map
  | Add { key; delta } ->
    let current = Option.value ~default:0 (Int_map.find_opt key replica.map) in
    replica.map <- Int_map.add key (current + delta) replica.map

let create ?(component = "kv") ?max_slots engine ~make_instance () =
  let n = Sim.Engine.n engine in
  let order = Total_order.create ~component:(component ^ ".order") ?max_slots engine ~make_instance () in
  let t =
    {
      order;
      replicas = Array.init n (fun _ -> { map = Int_map.empty; applied = 0; rev_log = [] });
    }
  in
  List.iter
    (fun p ->
      Total_order.subscribe order p (fun m ->
          match decode m.Total_order.body with
          | Some command -> apply t.replicas.(p) command
          | None -> ()))
    (Sim.Pid.all ~n);
  t

let submit t ~src command = Total_order.broadcast t.order ~src ~body:(encode command)

let get t p ~key = Int_map.find_opt key t.replicas.(p).map

let entries t p = Int_map.bindings t.replicas.(p).map

let applied t p = t.replicas.(p).applied

let log t p = List.rev t.replicas.(p).rev_log
