(** Run traces.

    The engine and the protocol components append events to a trace as the
    simulation advances; the {!Spec} library evaluates the paper's
    completeness / accuracy / leader-election / consensus properties over
    the finished trace.  Events are kept in order of occurrence. *)

type event =
  | Send of { at : Sim_time.t; src : Pid.t; dst : Pid.t; component : string; tag : string }
  | Deliver of { at : Sim_time.t; src : Pid.t; dst : Pid.t; component : string; tag : string }
  | Drop of {
      at : Sim_time.t;
      src : Pid.t;
      dst : Pid.t;
      component : string;
      tag : string;
      reason : string;
    }
  | Crash of { at : Sim_time.t; pid : Pid.t }
  | Fd_view of {
      at : Sim_time.t;
      pid : Pid.t;
      component : string;
      suspected : Pid.Set.t;
      trusted : Pid.t option;
    }  (** A failure-detector module's output changed. *)
  | Propose of { at : Sim_time.t; pid : Pid.t; value : int }
  | Decide of { at : Sim_time.t; pid : Pid.t; value : int; round : int }
  | Note of { at : Sim_time.t; pid : Pid.t; tag : string; detail : string }

type t

val create : unit -> t
val record : t -> event -> unit
val events : t -> event list
(** In order of occurrence. *)

val length : t -> int

val time_of : event -> Sim_time.t
val pp_event : Format.formatter -> event -> unit

val crashes : t -> (Pid.t * Sim_time.t) list
(** All crash events, in order. *)

val decisions : t -> (Pid.t * int * int * Sim_time.t) list
(** [(pid, value, round, time)] for every decide event, in order. *)

val proposals : t -> (Pid.t * int) list

val fd_views : component:string -> t -> (Sim_time.t * Pid.t * Pid.Set.t * Pid.t option) list
(** View-change events of one failure-detector component, in order. *)

val dump : t -> out_channel -> unit
(** Write the whole trace, one pretty-printed event per line — the format
    of {!pp_event} — for offline inspection or diffing two runs. *)
