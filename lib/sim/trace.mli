(** Run traces, causally stamped.

    The engine and the protocol components append events to a trace as the
    simulation advances; the {!Spec} library evaluates the paper's
    completeness / accuracy / leader-election / consensus properties over
    the finished trace, and {!Trace_export} turns it into Chrome
    trace-event JSON or JSONL for offline tooling ([ecfd-trace]).

    Every recorded event is stamped with

    - a {b sequence number} [seq]: 0-based, dense, strictly increasing in
      order of occurrence — the event's identity within the run;
    - a {b Lamport clock} [lc], maintained here: each event at a process
      ticks that process's clock; a [Deliver] joins the receiver's clock
      with the matching [Send]'s stamp, so [lc] orders events consistently
      with happens-before (clock condition: [e -> e'] implies
      [lc e < lc e'] for process events).

    [Send]/[Deliver]/[Drop] carry a shared {b message id} [msg] (allocated
    by the engine), linking a delivery or a drop back to its send — the
    edge the ancestry query walks.  [Drop] is stamped with the send's
    clock and ticks nobody: a dropped message is observed by no process.

    [Span_begin]/[Span_end] bracket protocol phases (consensus rounds,
    leadership epochs, suspicion episodes) under an engine-allocated span
    id; see {!Engine.begin_span}. *)

type body =
  | Send of {
      at : Sim_time.t;
      src : Pid.t;
      dst : Pid.t;
      msg : int;
      component : string;
      tag : string;
    }
  | Deliver of {
      at : Sim_time.t;
      src : Pid.t;
      dst : Pid.t;
      msg : int;
      component : string;
      tag : string;
    }
  | Drop of {
      at : Sim_time.t;
      src : Pid.t;
      dst : Pid.t;
      msg : int;
      component : string;
      tag : string;
      reason : string;
    }
  | Crash of { at : Sim_time.t; pid : Pid.t }
  | Fd_view of {
      at : Sim_time.t;
      pid : Pid.t;
      component : string;
      suspected : Pid.Set.t;
      trusted : Pid.t option;
    }  (** A failure-detector module's output changed. *)
  | Propose of { at : Sim_time.t; pid : Pid.t; value : int }
  | Decide of { at : Sim_time.t; pid : Pid.t; value : int; round : int }
  | Note of { at : Sim_time.t; pid : Pid.t; tag : string; detail : string }
  | Span_begin of { at : Sim_time.t; pid : Pid.t; component : string; span : int; name : string }
  | Span_end of { at : Sim_time.t; pid : Pid.t; component : string; span : int; name : string }

type event = { seq : int; lc : int; body : body }

type t

val create : unit -> t

val record : t -> body -> unit
(** Stamp ([seq], [lc]) and append.  The Lamport bookkeeping lives here,
    so hand-built traces (tests) get consistent stamps too.  If a sink is
    installed ({!set_sink}) the body is offered to it first and only
    appended when the sink declines. *)

val set_sink : t -> (body -> bool) option -> unit
(** Install (or clear) a recording sink.  The sharded engine uses this to
    divert bodies recorded inside a parallel window into the recording
    shard's window log; the sink returns [false] outside windows, in which
    case {!record} appends directly — so sequential recording (including
    the sharded engine's own barrier replay) is byte-identical to a
    sink-free trace. *)

val length : t -> int

(** {1 Reading}

    [iter]/[to_seq] walk the events in order of occurrence without
    copying; [events] materialises a fresh list and is kept for
    call sites that genuinely need one. *)

val iter : t -> (event -> unit) -> unit
val to_seq : t -> event Seq.t

val events : t -> event list
(** In order of occurrence.  Allocates a fresh list on every call —
    prefer {!iter} / {!to_seq} on hot paths. *)

val time_of : body -> Sim_time.t
val pid_of : body -> Pid.t option
(** The process an event happens at: [src] of a [Send], [dst] of a
    [Deliver], [pid] otherwise; [None] for [Drop] (a drop happens on the
    link, at no process). *)

val pp_body : Format.formatter -> body -> unit
val pp_event : Format.formatter -> event -> unit
(** [pp_body] prefixed with the [#seq @lc] stamp. *)

val crashes : t -> (Pid.t * Sim_time.t) list
(** All crash events, in order. *)

val decisions : t -> (Pid.t * int * int * Sim_time.t) list
(** [(pid, value, round, time)] for every decide event, in order. *)

val proposals : t -> (Pid.t * int) list

val fd_views : component:string -> t -> (Sim_time.t * Pid.t * Pid.Set.t * Pid.t option) list
(** View-change events of one failure-detector component, in order. *)

val dump : t -> out_channel -> unit
(** Write the whole trace, one pretty-printed event per line — the format
    of {!pp_event} — for offline inspection or diffing two runs. *)
