type t = (Pid.t * Sim_time.t) list

let none = []

let crash p ~at = [ (p, at) ]

let crashes entries =
  let victims = List.map fst entries in
  let distinct = List.sort_uniq Pid.compare victims in
  if List.length distinct <> List.length victims then
    invalid_arg "Fault.crashes: duplicate process";
  entries

let apply engine schedule =
  List.iter (fun (p, at) -> Engine.schedule_crash engine p ~at) schedule

let faulty schedule = Pid.set_of_list (List.map fst schedule)

let correct ~n schedule = Pid.Set.diff (Pid.set_of_list (Pid.all ~n)) (faulty schedule)

let last_crash_time schedule =
  List.fold_left (fun acc (_, at) -> Sim_time.max acc at) Sim_time.zero schedule

let random rng ~n ~max_faulty ~latest =
  let k = if max_faulty <= 0 then 0 else Rng.int_in_range rng ~lo:0 ~hi:max_faulty in
  let candidates = Array.of_list (Pid.all ~n) in
  Rng.shuffle rng candidates;
  List.init k (fun i -> (candidates.(i), Rng.int_in_range rng ~lo:0 ~hi:latest))

let random_minority rng ~n ~latest =
  let max_faulty = (n - 1) / 2 in
  random rng ~n ~max_faulty ~latest

let pp ppf schedule =
  let pp_entry ppf (p, at) = Format.fprintf ppf "%a@%a" Pid.pp p Sim_time.pp at in
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp_entry)
    schedule
