(** Adapter from {!Trace} to the {!Obs.Qos} fold.

    Streams one detector component's [Fd_view] events plus every [Crash]
    event, in trace order, into a QoS fold — via {!Trace.iter}, without
    materialising the event list.  Because the trace is byte-identical
    at every shard count, so is the resulting report. *)

val feed : Trace.t -> Obs.Qos.t -> component:string -> unit
(** Stream the trace's crash events and [component]'s view changes into
    the fold.  Other components' views are ignored (a stacked detector
    records one [Fd_view] stream per layer). *)

val report : component:string -> n:int -> horizon:int -> Trace.t -> Obs.Qos.report
(** [create] + [feed] + [finish]: the whole QoS report of one run. *)

val components : Trace.t -> string list
(** The distinct failure-detector components that recorded view changes,
    in name order — the tracequery [rollup] subcommand emits one
    scenario per entry. *)
