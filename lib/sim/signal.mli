(** Minimal synchronous publish/subscribe.

    Used for intra-simulation notifications that are not messages — chiefly
    "a failure-detector module's output changed", which wakes up consensus
    processes blocked in a phase whose exit condition mentions the detector
    (e.g. Phase 0 "until trusted = self" or Phase 3 "until the coordinator is
    suspected" in Fig. 3). *)

type 'a t

val create : unit -> 'a t

val subscribe : 'a t -> ('a -> unit) -> unit
(** Subscribers are invoked synchronously, in subscription order. *)

val emit : 'a t -> 'a -> unit

val subscriber_count : 'a t -> int
