(* [seq] is mutable only for {!remap_seqs}; nothing else writes it. *)
type 'a entry = { at : Sim_time.t; mutable seq : int; value : 'a }

type 'a t = { heap : 'a entry Heap.t; mutable next_seq : int }

let compare_entry a b =
  let c = Sim_time.compare a.at b.at in
  if c <> 0 then c else Int.compare a.seq b.seq

let create () = { heap = Heap.create ~cmp:compare_entry; next_seq = 0 }

let length t = Heap.length t.heap
let is_empty t = Heap.is_empty t.heap

let alloc_seq t =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  seq

let schedule t ~at value = Heap.push t.heap { at; seq = alloc_seq t; value }

let schedule_at_seq t ~at ~seq value = Heap.push t.heap { at; seq; value }

let remap_seqs t f = Heap.iter (fun e -> e.seq <- f e.seq) t.heap

let next_time t = Option.map (fun e -> e.at) (Heap.peek t.heap)
let next_at t = (Heap.top_exn t.heap).at
let next_seq t = (Heap.top_exn t.heap).seq

let pop t = Option.map (fun e -> (e.at, e.value)) (Heap.pop t.heap)
let pop_exn t = (Heap.pop_exn t.heap).value

let shrink t = Heap.shrink t.heap

let clear t = Heap.clear t.heap
