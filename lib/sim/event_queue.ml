type 'a entry = { at : Sim_time.t; seq : int; value : 'a }

type 'a t = { heap : 'a entry Heap.t; mutable next_seq : int }

let compare_entry a b =
  let c = Sim_time.compare a.at b.at in
  if c <> 0 then c else Int.compare a.seq b.seq

let create () = { heap = Heap.create ~cmp:compare_entry; next_seq = 0 }

let length t = Heap.length t.heap
let is_empty t = Heap.is_empty t.heap

let schedule t ~at value =
  Heap.push t.heap { at; seq = t.next_seq; value };
  t.next_seq <- t.next_seq + 1

let next_time t = Option.map (fun e -> e.at) (Heap.peek t.heap)

let pop t = Option.map (fun e -> (e.at, e.value)) (Heap.pop t.heap)

let shrink t = Heap.shrink t.heap

let clear t = Heap.clear t.heap
