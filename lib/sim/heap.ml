(* Elements live in boxed slots so a vacated position can be reset to
   [Empty] without needing a dummy value of type ['a] (same storage scheme
   as the standard library's [Dynarray]).  The extra indirection is one
   minor-heap word per live element; in exchange [pop] genuinely releases
   popped elements to the GC — the engine's event payloads hold closures,
   so retaining them would leak every timer callback ever scheduled. *)
type 'a slot = Empty | Elem of { v : 'a }

type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a slot array;
  mutable size : int;
  (* Count of [Elem] slots, maintained at the two places a slot changes
     occupancy ([push] fills one, [pop] vacates one) and at the bulk
     operations ([clear], [shrink]).  Equal to [size] unless there is a
     retention bug; [scan_live_slots] recounts from the array to check. *)
  mutable live : int;
}

(* [clear] and first [grow] both land on this capacity, so an emptied heap
   and a fresh one behave identically. *)
let min_capacity = 8

let create ~cmp = { cmp; data = [||]; size = 0; live = 0 }

let length t = t.size
let is_empty t = t.size = 0
let capacity t = Array.length t.data

let live_slots t = t.live

let scan_live_slots t =
  Array.fold_left (fun acc s -> match s with Empty -> acc | Elem _ -> acc + 1) 0 t.data

let get t i = match t.data.(i) with Elem e -> e.v | Empty -> assert false

let grow t =
  let capacity = Array.length t.data in
  if t.size = capacity then begin
    let capacity' = Stdlib.max min_capacity (2 * capacity) in
    let data' = Array.make capacity' Empty in
    Array.blit t.data 0 data' 0 t.size;
    t.data <- data'
  end

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp (get t i) (get t parent) < 0 then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = ref i in
  if left < t.size && t.cmp (get t left) (get t !smallest) < 0 then smallest := left;
  if right < t.size && t.cmp (get t right) (get t !smallest) < 0 then smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t x =
  grow t;
  t.data.(t.size) <- Elem { v = x };
  t.size <- t.size + 1;
  t.live <- t.live + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some (get t 0)

let pop t =
  if t.size = 0 then None
  else begin
    let top = get t 0 in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    t.data.(t.size) <- Empty;
    t.live <- t.live - 1;
    Some top
  end

let shrink t =
  let target = Stdlib.max min_capacity t.size in
  if Array.length t.data > target then begin
    let data' = Array.make target Empty in
    Array.blit t.data 0 data' 0 t.size;
    t.data <- data';
    (* Only the [size]-element prefix was copied; any leaked slot beyond it
       (impossible unless [pop] regresses) is gone now. *)
    t.live <- t.size
  end

let clear t =
  if Array.length t.data > min_capacity then t.data <- Array.make min_capacity Empty
  else Array.fill t.data 0 (Array.length t.data) Empty;
  t.size <- 0;
  t.live <- 0

let to_list_unordered t =
  let rec collect i acc = if i < 0 then acc else collect (i - 1) (get t i :: acc) in
  collect (t.size - 1) []
