(* Elements live in boxed slots so a vacated position can be reset to
   [Empty] without needing a dummy value of type ['a] (same storage scheme
   as the standard library's [Dynarray]).  The extra indirection is one
   minor-heap word per live element; in exchange [pop] genuinely releases
   popped elements to the GC — the engine's event payloads hold closures,
   so retaining them would leak every timer callback ever scheduled. *)
type 'a slot = Empty | Elem of { v : 'a }

type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a slot array;
  mutable size : int;
  (* Count of [Elem] slots, maintained at the two places a slot changes
     occupancy ([push] fills one, [pop] vacates one) and at the bulk
     operations ([clear], [shrink]).  Equal to [size] unless there is a
     retention bug; [scan_live_slots] recounts from the array to check. *)
  mutable live : int;
}

(* [clear] and first [grow] both land on this capacity, so an emptied heap
   and a fresh one behave identically. *)
let min_capacity = 8

let create ~cmp = { cmp; data = [||]; size = 0; live = 0 }

let length t = t.size
let is_empty t = t.size = 0
let capacity t = Array.length t.data

let live_slots t = t.live

let scan_live_slots t =
  Array.fold_left (fun acc s -> match s with Empty -> acc | Elem _ -> acc + 1) 0 t.data

let get t i = match t.data.(i) with Elem e -> e.v | Empty -> assert false

let grow t =
  let capacity = Array.length t.data in
  if t.size = capacity then begin
    let capacity' = Stdlib.max min_capacity (2 * capacity) in
    let data' = Array.make capacity' Empty in
    Array.blit t.data 0 data' 0 t.size;
    t.data <- data'
  end

(* Hole-based sifts: the displaced slot [s] rides in a register while the
   hole migrates, one slot write per level instead of the three of a
   swap-based sift, and — unlike the previous [ref]-accumulator version of
   [sift_down] — no minor-heap allocation at all on the pop path. *)

(* The hole-migration loops are top-level (not [let rec] closures inside
   the sifts): a local recursive closure capturing [t] and [v] is a fresh
   minor-heap block per call, which is exactly the allocation the rewrite
   exists to remove. *)

let rec sift_up_hole t v i =
  if i = 0 then i
  else begin
    let parent = (i - 1) / 2 in
    if (t.cmp v (get t parent)
       [@alloc.allow extern
           "caller-supplied comparison: the engine's comparators are int \
            comparisons (Event_queue.compare_entry); watched by e20"])
       < 0
    then begin
      t.data.(i) <- t.data.(parent);
      sift_up_hole t v parent
    end
    else i
  end

let[@alloc.zero] sift_up t i s =
  let v = match s with Elem e -> e.v | Empty -> assert false in
  t.data.(sift_up_hole t v i) <- s

let rec sift_down_hole t v i =
  let left = (2 * i) + 1 in
  if left >= t.size then i
  else begin
    let right = left + 1 in
    let child =
      if right < t.size
         && (t.cmp (get t right) (get t left)
            [@alloc.allow extern
                "caller-supplied comparison: the engine's comparators are int \
                 comparisons (Event_queue.compare_entry); watched by e20"])
            < 0
      then right
      else left
    in
    if (t.cmp (get t child) v
       [@alloc.allow extern
           "caller-supplied comparison: the engine's comparators are int \
            comparisons (Event_queue.compare_entry); watched by e20"])
       < 0
    then begin
      t.data.(i) <- t.data.(child);
      sift_down_hole t v child
    end
    else i
  end

let[@alloc.zero] sift_down t i s =
  let v = match s with Elem e -> e.v | Empty -> assert false in
  t.data.(sift_down_hole t v i) <- s

let push t x =
  grow t;
  t.size <- t.size + 1;
  t.live <- t.live + 1;
  sift_up t (t.size - 1) (Elem { v = x })

let peek t = if t.size = 0 then None else Some (get t 0)

let top_exn t =
  if t.size = 0 then invalid_arg "Heap.top_exn: empty heap";
  get t 0

let[@alloc.zero] pop_exn t =
  if t.size = 0 then invalid_arg "Heap.pop_exn: empty heap";
  let top = get t 0 in
  t.size <- t.size - 1;
  let last = t.data.(t.size) in
  t.data.(t.size) <- Empty;
  if t.size > 0 then sift_down t 0 last;
  t.live <- t.live - 1;
  top

let pop t = if t.size = 0 then None else Some (pop_exn t)

let shrink t =
  let target = Stdlib.max min_capacity t.size in
  if Array.length t.data > target then begin
    let data' = Array.make target Empty in
    Array.blit t.data 0 data' 0 t.size;
    t.data <- data';
    (* Only the [size]-element prefix was copied; any leaked slot beyond it
       (impossible unless [pop] regresses) is gone now. *)
    t.live <- t.size
  end

let clear t =
  if Array.length t.data > min_capacity then t.data <- Array.make min_capacity Empty
  else Array.fill t.data 0 (Array.length t.data) Empty;
  t.size <- 0;
  t.live <- 0

let iter f t =
  for i = 0 to t.size - 1 do
    f (get t i)
  done

let to_list_unordered t =
  let rec collect i acc = if i < 0 then acc else collect (i - 1) (get t i :: acc) in
  collect (t.size - 1) []
