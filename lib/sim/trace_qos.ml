(* The thin trace hook between the simulator and the QoS layer: Obs.Qos
   cannot depend on Sim (the dependency points the other way), so this
   adapter streams a finished trace's crash and view-change events into a
   Qos fold via Trace.iter — no materialised event list. *)

let feed trace fold ~component =
  Trace.iter trace (fun e ->
      match e.Trace.body with
      | Trace.Crash { at; pid } -> Obs.Qos.feed fold (Obs.Qos.Crash { at; pid })
      | Trace.Fd_view { at; pid; component = c; suspected; trusted }
        when String.equal c component ->
        Obs.Qos.feed fold
          (Obs.Qos.View
             { at; observer = pid; suspected = Pid.Set.elements suspected; trusted })
      | _ -> ())

let report ~component ~n ~horizon trace =
  let fold = Obs.Qos.create ~n in
  feed trace fold ~component;
  Obs.Qos.finish fold ~horizon

let components trace =
  let seen = Hashtbl.create 8 in
  Trace.iter trace (fun e ->
      match e.Trace.body with
      | Trace.Fd_view { component; _ } ->
        if not (Hashtbl.mem seen component) then Hashtbl.add seen component ()
      | _ -> ());
  List.sort String.compare (Hashtbl.fold (fun c () acc -> c :: acc) seen [])
