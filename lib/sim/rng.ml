(* Splitmix64 (Steele, Lea & Flood, OOPSLA 2014): a tiny, high-quality,
   splittable generator.  Chosen over [Stdlib.Random] so runs are stable
   across OCaml versions. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix (Int64.of_int seed) }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = next_int64 t }
let copy t = { state = t.state }

let int t ~bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's 63-bit int non-negatively, then
     rejection-sample: [raw mod bound] alone over-weights the small residues
     whenever [bound] does not divide 2^62.  A draw is rejected exactly when
     it falls in the incomplete top bucket [floor(2^62/bound)*bound, 2^62);
     the wrap-around test below detects that without materialising 2^62
     (which exceeds [max_int]).  Expected draws per call < 2, and for the
     small bounds the simulator uses, rejection is vanishingly rare. *)
  let rec draw () =
    let raw = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
    let r = raw mod bound in
    if raw - r + (bound - 1) < 0 then draw () else r
  in
  draw ()

let int_in_range t ~lo ~hi =
  assert (lo <= hi);
  lo + int t ~bound:(hi - lo + 1)

let float t =
  let raw = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  raw /. 9007199254740992.0 (* 2^53 *)

let bool t ~p = float t < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t ~bound:(i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t xs =
  match xs with
  | [] -> invalid_arg "Rng.choose: empty list"
  | _ -> List.nth xs (int t ~bound:(List.length xs))
