(* Conservative parallel discrete-event core (see shard.mli for the
   contract).  The implementation mirrors Engine's sequential data
   structures per shard — timer wheel, event heap, slot/generation timer
   registry — and adds three reconciliation mechanisms that make the
   parallel execution byte-identical to the sequential one:

   1. Op logs.  Inside a window a shard performs no globally visible
      effect: every trace record, stats/obs update, send, and timer
      lifecycle transition is appended to a flat int op log (with side
      buffers for envelopes, trace bodies, obs ops and span closures).
      At the barrier the K logs are merged by (time, seq) — provably the
      sequential execution order — and replayed on the coordinating
      domain, where global sequence numbers, message/span ids and RNG
      fate draws are allocated in replay order and therefore coincide
      with the sequential run's.

   2. Provisional sequence numbers.  In-window scheduling (timer arms,
      self-sends) cannot draw from the global sequence counter without a
      race, so each shard stamps window-local provisional seqs starting
      at [prov_base] (far above every real seq).  Replay allocates the
      true seq for each ARM/SELF op in merged order and records it in
      the shard's seq map; after replay the wheel's and heap's pending
      provisional seqs are renumbered in place (order-preserving, since
      provisional order within a shard equals its local allocation
      order and all true seqs are smaller).

   3. A virtual timer-slot allocator.  Timer slots are shard-local (so
      shards can arm/reclaim without contention), but e18 prints the
      sequential engine's global slot-table capacity.  A virtual
      LIFO free-list allocator replays the sequential slot lifecycle at
      barrier time — alloc on ARM, free on RECLAIM, in merged order —
      so [timer_table_capacity] reproduces the sequential figure
      exactly.

   Cross-shard sends are buffered into per-(src shard, dst shard)
   mailboxes during replay and flushed into the destination heaps at
   the barrier; the delivery seq was allocated in replay order, so heap
   ordering — not flush order — fixes their execution order. *)

type timer_state = Free | Armed | Cancelled

type periodic = {
  mutable p_slot : int;
  mutable p_gen : int;
  p_period : Sim_time.t;
  mutable p_stopped : bool;
}

let no_ctl = { p_slot = -1; p_gen = -1; p_period = 0; p_stopped = false }
let no_callback () = ()
let no_fn () = ()

let no_env =
  { Payload.src = 0; dst = 0; component = ""; tag = ""; payload = Payload.Blank;
    sent_at = Sim_time.zero; msg = -1 }

let no_body = Trace.Crash { at = Sim_time.zero; pid = 0 }

(* Global events — crashes and harness callbacks — are not bound by the
   link lookahead, so they live in one global queue and force direct
   (sequential) steps when due. *)
type gkind = Crash_now of Pid.t | Harness of (unit -> unit)

(* Provisional seqs start here: far above any true seq a run can reach
   (the global counter counts scheduled events), yet with headroom so
   [prov_base + window allocations] cannot overflow. *)
let prov_base = 1 lsl 60

(* ------------------------------------------------------------------ *)
(* Runtime-profiler configuration.  Off by default: the profiler adds
   wall-clock reads and a per-window record allocation to the drive
   loop, and its obs histograms would appear in every snapshot, so it
   is an explicit opt-in ([set_default_profile] / [ECFD_PROFILE=1]).
   The profiler only observes — simulated state never reads it — so
   trace bytes, stats and stdout stay byte-identical with it on or
   off; only the obs snapshot (its own histograms) and wall-clock
   figures differ. *)

let profile_override = ref None

let env_profile =
  lazy
    (match Sys.getenv_opt "ECFD_PROFILE" with
    | Some ("1" | "true" | "yes") -> Some true
    | Some _ | None -> None)

let default_profile () =
  match
    (!profile_override
    [@race.allow publish
        "written only by the coordinator between runs (set_default_profile / \
         with_profile); Domain.spawn publishes the value, and a nested engine \
         built inside a job only reads it"])
  with
  | Some b -> b
  | None -> ( match Lazy.force env_profile with Some b -> b | None -> false)

let set_default_profile b = profile_override := Some b

let with_profile b f =
  let prev = !profile_override in
  profile_override := Some b;
  Fun.protect ~finally:(fun () -> profile_override := prev) f

(* One record per parallel window (direct steps excluded), captured at
   the barrier.  Sim-time and op-log fields are deterministic at a given
   shard count; the [_s] fields are host wall-clock. *)
type window_profile = {
  wp_from : Sim_time.t;
  wp_until : Sim_time.t;
  wp_active : int;
  wp_events : int array;  (* per shard: events executed this window *)
  wp_ops_words : int array;  (* per shard: op-log words replayed *)
  wp_busy_s : float array;  (* per shard: in-window wall-clock *)
  wp_replay_s : float;  (* barrier replay + mailbox flush wall-clock *)
}

type prof_metrics = {
  pm_window_span : Obs.Registry.histogram;
  pm_window_events : Obs.Registry.histogram;
  pm_ops_words : Obs.Registry.histogram;
  pm_imbalance : Obs.Registry.histogram;
  pm_busy_us : Obs.Registry.histogram;
  pm_replay_us : Obs.Registry.histogram;
}

(* Op log opcodes.  Every group starts with a STEP carrying the executed
   event's (time, raw seq); the ops that follow, in program order, are
   the globally visible effects that event performed.  Arity includes
   the opcode word. *)
let op_step_timer = 0 (* at, rawseq; arity 3 *)
let op_step_heap = 1 (* at, rawseq; arity 3 *)
let op_reclaim = 2 (* local slot; arity 2 *)
let op_fired = 3 (* arity 1 *)
let op_orphaned = 4 (* arity 1 *)
let op_cancelled = 5 (* arity 1 *)
let op_arm = 6 (* local slot; arity 2 *)
let op_self = 7 (* arity 1 *)
let op_send = 8 (* env index; arity 2 *)
let op_deliver_ok = 9 (* env index; arity 2 *)
let op_drop_dead = 10 (* env index; arity 2 *)
let op_trace = 11 (* body index; arity 2 *)
let op_obs = 12 (* obs-op index; arity 2 *)
let op_fn = 13 (* closure index; arity 2 *)

type shard = {
  sid : int;
  wheel : Timer_wheel.t;
  heap : Payload.envelope Event_queue.t;
      (* Seqs always injected via [schedule_at_seq]: true seqs from the
         global counter, or provisional in-window ones.  The heap's own
         counter is never used. *)
  mutable snow : Sim_time.t;  (* shard-local clock: last executed instant *)
  (* Local timer registry: same five columns as the sequential engine,
     plus [vmap] (local slot -> virtual global slot). *)
  mutable tgens : int array;
  mutable tstates : timer_state array;
  mutable tpids : int array;
  mutable tcbs : (unit -> unit) array;
  mutable tctl : periodic array;
  mutable vmap : int array;
  mutable tfree : int array;
  mutable tfree_len : int;
  mutable tnext_slot : int;
  mutable tgen_floor : int;
  (* Window op log and side buffers (owned by the executing domain
     during a window, read by the coordinating domain after the join). *)
  mutable ops : int array;
  mutable ops_len : int;
  mutable envs : Payload.envelope array;
  mutable envs_len : int;
  mutable bodies : Trace.body array;
  mutable bodies_len : int;
  mutable obs_ops : Obs.Registry.op array;
  mutable obs_len : int;
  mutable fns : (unit -> unit) array;
  mutable fns_len : int;
  mutable prov_next : int;
  mutable window_events : int;
  (* Replay state (coordinating domain only). *)
  mutable rp : int;  (* read position in [ops] *)
  mutable smap : int array;  (* provisional index -> true seq *)
  mutable smap_len : int;
}

type mailbox = {
  mutable mb_envs : Payload.envelope array;
  mutable mb_at : int array;
  mutable mb_seq : int array;
  mutable mb_len : int;
}

type state = {
  k : int;
  n : int;
  lookahead : int;
  shards : shard array;
  gq : gkind Event_queue.t;
      (* Global event queue; its seq counter is THE global sequence
         counter — shard heaps and wheels only carry seqs allocated from
         it (or provisional ones awaiting renumbering). *)
  link : Link.t;
  rng : Rng.t;
  alive : bool array;
  handlers : (string, (src:Pid.t -> Payload.t -> unit) option array) Hashtbl.t;
  trace : Trace.t;
  stats : Stats.t;
  obs : Obs.Registry.t;
  m_delivery_latency : Obs.Registry.histogram;
  m_span_duration : Obs.Registry.histogram;
  m_queue_depth_hw : Obs.Registry.gauge;
  m_timer_residency_hw : Obs.Registry.gauge;
  m_timer_set : Obs.Registry.counter;
  m_timer_fired : Obs.Registry.counter;
  m_timer_cancelled : Obs.Registry.counter;
  m_timer_orphaned : Obs.Registry.counter;
  mutable gnow : Sim_time.t;
  mutable next_msg : int;
  mutable next_span : int;
  mutable g_heap_len : int;  (* pending heap events: shard heaps + gq *)
  mutable g_live : int;  (* armed/cancelled timer slots awaiting reclaim *)
  mutable g_armed : int;
  (* Virtual slot allocator (sequential slot-lifecycle replay). *)
  mutable v_free : int array;
  mutable v_free_len : int;
  mutable v_next_slot : int;
  mutable v_live : bool array;
  mailboxes : mailbox array;  (* k * k, index src_sid * k + dst_sid *)
  mutable windows : int;
  mutable null_windows : int;
  mutable direct_steps : int;
  mutable shard_windows : int;
  (* Profiler (opt-in; [prof = None] means every profiling branch below
     is dead and the drive loop is exactly the unprofiled one). *)
  prof : prof_metrics option;
  prof_busy : float array;  (* k scratch slots; slot i written only by
                               the domain running shard i's window *)
  mutable prof_rev : window_profile list;  (* newest first *)
}

(* Domain-local execution context: which shard (of which state) the
   calling domain is currently advancing inside a parallel window.
   Physical equality on the state keeps nested engines (a sequential
   engine driven from inside a window's callback) out of this state's
   capture path. *)
type ctx = No_ctx | In_window of state * shard

let ctx_key = Domain.DLS.new_key (fun () -> No_ctx)

let in_window st =
  match Domain.DLS.get ctx_key with
  | In_window (st', _) -> st' == st
  | No_ctx -> false

let now st =
  match Domain.DLS.get ctx_key with
  | In_window (st', sh) when st' == st -> sh.snow
  | _ -> st.gnow

let k st = st.k
let shard_of st p = p mod st.k

(* ------------------------------------------------------------------ *)
(* Growable-buffer helpers.  All growth branches are amortized-doubling
   and bulk-waived: per-event cost is O(1) and a steady-state window
   never takes them. *)

let[@alloc.allow bulk "amortized op-buffer growth: doubled, reset at every barrier"]
    ensure_ops sh extra =
  let cap = Array.length sh.ops in
  if sh.ops_len + extra > cap then begin
    let cap' = Stdlib.max 64 (Stdlib.max (sh.ops_len + extra) (2 * cap)) in
    let ops' = Array.make cap' 0 in
    Array.blit sh.ops 0 ops' 0 sh.ops_len;
    sh.ops <- ops'
  end

let push1 sh c =
  ensure_ops sh 1;
  sh.ops.(sh.ops_len) <- c;
  sh.ops_len <- sh.ops_len + 1

let push2 sh c a =
  ensure_ops sh 2;
  let i = sh.ops_len in
  sh.ops.(i) <- c;
  sh.ops.(i + 1) <- a;
  sh.ops_len <- i + 2

let push3 sh c a b =
  ensure_ops sh 3;
  let i = sh.ops_len in
  sh.ops.(i) <- c;
  sh.ops.(i + 1) <- a;
  sh.ops.(i + 2) <- b;
  sh.ops_len <- i + 3

let push_env sh env =
  let cap = Array.length sh.envs in
  if sh.envs_len = cap then begin
    let envs' = Array.make (Stdlib.max 16 (2 * cap)) no_env in
    Array.blit sh.envs 0 envs' 0 cap;
    sh.envs <- envs'
  end;
  let i = sh.envs_len in
  sh.envs.(i) <- env;
  sh.envs_len <- i + 1;
  i

let push_body sh body =
  let cap = Array.length sh.bodies in
  if sh.bodies_len = cap then begin
    let bodies' = Array.make (Stdlib.max 16 (2 * cap)) no_body in
    Array.blit sh.bodies 0 bodies' 0 cap;
    sh.bodies <- bodies'
  end;
  let i = sh.bodies_len in
  sh.bodies.(i) <- body;
  sh.bodies_len <- i + 1;
  i

let push_obs sh op =
  let cap = Array.length sh.obs_ops in
  if sh.obs_len = cap then begin
    let ops' = Array.make (Stdlib.max 16 (2 * cap)) Obs.Registry.noop_op in
    Array.blit sh.obs_ops 0 ops' 0 cap;
    sh.obs_ops <- ops'
  end;
  let i = sh.obs_len in
  sh.obs_ops.(i) <- op;
  sh.obs_len <- i + 1;
  i

let push_fn sh fn =
  let cap = Array.length sh.fns in
  if sh.fns_len = cap then begin
    let fns' = Array.make (Stdlib.max 16 (2 * cap)) no_fn in
    Array.blit sh.fns 0 fns' 0 cap;
    sh.fns <- fns'
  end;
  let i = sh.fns_len in
  sh.fns.(i) <- fn;
  sh.fns_len <- i + 1;
  i

let smap_push sh seq =
  let cap = Array.length sh.smap in
  if sh.smap_len = cap then begin
    let smap' = Array.make (Stdlib.max 64 (2 * cap)) 0 in
    Array.blit sh.smap 0 smap' 0 cap;
    sh.smap <- smap'
  end;
  sh.smap.(sh.smap_len) <- seq;
  sh.smap_len <- sh.smap_len + 1

(* Local timer-slot allocator: the per-shard mirror of the sequential
   engine's [alloc_timer_slot]/[free_push] (LIFO reuse, six columns
   doubling together — the extra one is [vmap]). *)

let[@alloc.allow bulk "amortized local free-list growth"] local_free_push sh slot =
  let cap = Array.length sh.tfree in
  if sh.tfree_len = cap then begin
    let free' = Array.make (Stdlib.max 16 (2 * cap)) 0 in
    Array.blit sh.tfree 0 free' 0 cap;
    sh.tfree <- free'
  end;
  sh.tfree.(sh.tfree_len) <- slot;
  sh.tfree_len <- sh.tfree_len + 1

let[@alloc.allow bulk "amortized local timer-table growth (all columns doubled \
      together)"] alloc_local_slot sh =
  if sh.tfree_len > 0 then begin
    sh.tfree_len <- sh.tfree_len - 1;
    sh.tfree.(sh.tfree_len)
  end
  else begin
    let capacity = Array.length sh.tgens in
    if sh.tnext_slot = capacity then begin
      let capacity' = Stdlib.max 16 (2 * capacity) in
      let gens' = Array.make capacity' sh.tgen_floor in
      let states' = Array.make capacity' Free in
      let pids' = Array.make capacity' 0 in
      let cbs' = Array.make capacity' no_callback in
      let ctl' = Array.make capacity' no_ctl in
      let vmap' = Array.make capacity' (-1) in
      Array.blit sh.tgens 0 gens' 0 capacity;
      Array.blit sh.tstates 0 states' 0 capacity;
      Array.blit sh.tpids 0 pids' 0 capacity;
      Array.blit sh.tcbs 0 cbs' 0 capacity;
      Array.blit sh.tctl 0 ctl' 0 capacity;
      Array.blit sh.vmap 0 vmap' 0 capacity;
      sh.tgens <- gens';
      sh.tstates <- states';
      sh.tpids <- pids';
      sh.tcbs <- cbs';
      sh.tctl <- ctl';
      sh.vmap <- vmap';
      Timer_wheel.ensure_capacity sh.wheel capacity'
    end;
    let slot = sh.tnext_slot in
    sh.tnext_slot <- slot + 1;
    slot
  end

(* Virtual slot allocator: replays the sequential engine's global slot
   lifecycle (LIFO free list, high-water = [v_next_slot]) in merged
   order, so [timer_table_capacity] matches the sequential run. *)

let vfree_push st v =
  let cap = Array.length st.v_free in
  if st.v_free_len = cap then begin
    let free' = Array.make (Stdlib.max 16 (2 * cap)) 0 in
    Array.blit st.v_free 0 free' 0 cap;
    st.v_free <- free'
  end;
  st.v_free.(st.v_free_len) <- v;
  st.v_free_len <- st.v_free_len + 1

let valloc st =
  if st.v_free_len > 0 then begin
    st.v_free_len <- st.v_free_len - 1;
    st.v_free.(st.v_free_len)
  end
  else begin
    let cap = Array.length st.v_live in
    if st.v_next_slot = cap then begin
      let cap' = Stdlib.max 16 (2 * cap) in
      let live' = Array.make cap' false in
      Array.blit st.v_live 0 live' 0 cap;
      st.v_live <- live'
    end;
    let v = st.v_next_slot in
    st.v_next_slot <- v + 1;
    v
  end

(* ------------------------------------------------------------------ *)
(* Shared accounting (coordinating domain only). *)

let note_depth st =
  let depth = st.g_heap_len + st.g_live in
  Stats.note_queue_depth st.stats ~depth;
  Obs.Registry.set_max st.m_queue_depth_hw depth

(* ------------------------------------------------------------------ *)
(* Direct mode: one event executed on the coordinating domain with full
   immediate sequential accounting.  Used for global events, for
   zero-lookahead links, and for [step]-driven runs. *)

let d_arm st p ~delay callback ctl =
  if delay < 0 then invalid_arg "Engine.set_timer: negative delay";
  let sh = st.shards.(p mod st.k) in
  let slot = alloc_local_slot sh in
  let v = valloc st in
  sh.vmap.(slot) <- v;
  st.v_live.(v) <- true;
  sh.tstates.(slot) <- Armed;
  sh.tpids.(slot) <- p;
  sh.tcbs.(slot) <- callback;
  sh.tctl.(slot) <- ctl;
  st.g_live <- st.g_live + 1;
  st.g_armed <- st.g_armed + 1;
  Stats.note_timer_residency st.stats ~residency:st.g_live;
  Obs.Registry.set_max st.m_timer_residency_hw st.g_live;
  Stats.on_timer_set st.stats;
  Obs.Registry.incr st.m_timer_set;
  let seq = Event_queue.alloc_seq st.gq in
  Timer_wheel.add sh.wheel ~cell:slot ~deadline:(st.gnow + delay) ~seq;
  note_depth st;
  (sh, slot)

let d_reclaim st sh slot =
  sh.tgens.(slot) <- sh.tgens.(slot) + 1;
  sh.tstates.(slot) <- Free;
  sh.tcbs.(slot) <- no_callback;
  sh.tctl.(slot) <- no_ctl;
  local_free_push sh slot;
  let v = sh.vmap.(slot) in
  st.v_live.(v) <- false;
  vfree_push st v;
  st.g_live <- st.g_live - 1;
  Stats.on_timer_reclaimed st.stats

let d_execute_timer st sh cell =
  let state = sh.tstates.(cell) in
  let pid = sh.tpids.(cell) in
  let cb = sh.tcbs.(cell) in
  let ctl = sh.tctl.(cell) in
  d_reclaim st sh cell;
  match state with
  | Armed ->
    st.g_armed <- st.g_armed - 1;
    if st.alive.(pid) then begin
      Stats.on_timer_fired st.stats;
      Obs.Registry.incr st.m_timer_fired;
      if Sim_time.equal ctl.p_period Sim_time.zero then
        (cb ()
        [@race.allow escape
            "component timer callback, executed by the domain that owns this \
             engine: the coordinator behind the pool barrier in a top-level \
             sharded run, or the single job domain that built a nested engine"])
      else if not ctl.p_stopped then begin
        (cb ()
        [@race.allow escape
            "component timer callback, executed by the domain that owns this \
             engine (see the zero-period arm above)"]);
        let sh', slot = d_arm st pid ~delay:ctl.p_period cb ctl in
        ctl.p_slot <- slot;
        ctl.p_gen <- sh'.tgens.(slot)
      end
    end
    else begin
      Stats.on_timer_orphaned st.stats;
      Obs.Registry.incr st.m_timer_orphaned
    end
  | Cancelled -> ()
  | Free -> assert false

let d_dispatch st (env : Payload.envelope) =
  let { Payload.src; dst; component; tag; payload; sent_at; msg } = env in
  if not st.alive.(dst) then begin
    if not (Pid.equal src dst) then begin
      Trace.record st.trace
        (Drop { at = st.gnow; src; dst; msg; component; tag; reason = "destination crashed" });
      Stats.on_drop st.stats ~component ~tag
    end
  end
  else begin
    let handler =
      match Hashtbl.find_opt st.handlers component with
      | None -> None
      | Some slots -> slots.(dst)
    in
    match handler with
    | None ->
      failwith
        (Printf.sprintf "Engine: message for component %S at %s but no handler registered"
           component (Pid.to_string dst))
    | Some h ->
      if not (Pid.equal src dst) then begin
        Trace.record st.trace (Deliver { at = st.gnow; src; dst; msg; component; tag });
        Stats.on_deliver st.stats ~component ~tag;
        Obs.Registry.observe st.m_delivery_latency (st.gnow - sent_at)
      end;
      (h ~src payload
      [@race.allow escape
          "component message handler, executed by the domain that owns this \
           engine; handlers reach shared engine state only through the \
           in-window API, which routes effects into per-shard op buffers"])
  end

let d_send st ~component ~tag ~src ~dst payload =
  if Pid.equal src dst then begin
    let env =
      { Payload.src; dst; component; tag; payload; sent_at = st.gnow; msg = -1 }
    in
    let seq = Event_queue.alloc_seq st.gq in
    Event_queue.schedule_at_seq st.shards.(dst mod st.k).heap ~at:st.gnow ~seq env;
    st.g_heap_len <- st.g_heap_len + 1;
    note_depth st
  end
  else begin
    let msg = st.next_msg in
    st.next_msg <- msg + 1;
    let env = { Payload.src; dst; component; tag; payload; sent_at = st.gnow; msg } in
    Trace.record st.trace (Send { at = st.gnow; src; dst; msg; component; tag });
    Stats.on_send st.stats ~component ~tag;
    match
      (st.link.Link.fate ~rng:st.rng ~now:st.gnow ~src ~dst
      [@race.allow escape
          "link fate model, installed at engine creation: a pure function of \
           the seeded rng it is handed, executed by the engine-owning domain"])
    with
    | Link.Drop ->
      Trace.record st.trace
        (Drop { at = st.gnow; src; dst; msg; component; tag; reason = "lossy" });
      Stats.on_drop st.stats ~component ~tag
    | Link.Deliver_at at ->
      assert (at >= st.gnow);
      if at - st.gnow < st.lookahead then
        invalid_arg "Engine: link delivered below its declared min_delay bound";
      let seq = Event_queue.alloc_seq st.gq in
      Event_queue.schedule_at_seq st.shards.(dst mod st.k).heap ~at ~seq env;
      st.g_heap_len <- st.g_heap_len + 1;
      note_depth st
  end

(* ------------------------------------------------------------------ *)
(* Window mode: per-shard execution with effect capture.  The three
   module-level [@alloc.zero] bindings below ([w_arm],
   [w_execute_timer], [shard_step]) are the sharded hot path and carry
   the same zero-allocation discipline (and alloccheck roots) as the
   sequential [arm_timer]/[execute_timer]/[step]. *)

let[@alloc.zero] w_arm sh p ~delay callback ctl =
  if delay < 0 then invalid_arg "Engine.set_timer: negative delay";
  let slot = alloc_local_slot sh in
  sh.tstates.(slot) <- Armed;
  sh.tpids.(slot) <- p;
  sh.tcbs.(slot) <- callback;
  sh.tctl.(slot) <- ctl;
  push2 sh op_arm slot;
  let seq = sh.prov_next in
  sh.prov_next <- seq + 1;
  Timer_wheel.add sh.wheel ~cell:slot ~deadline:(sh.snow + delay) ~seq;
  slot

let[@alloc.zero] w_execute_timer st sh cell =
  let state = sh.tstates.(cell) in
  let pid = sh.tpids.(cell) in
  let cb = sh.tcbs.(cell) in
  let ctl = sh.tctl.(cell) in
  sh.tgens.(cell) <- sh.tgens.(cell) + 1;
  sh.tstates.(cell) <- Free;
  sh.tcbs.(cell) <- no_callback;
  sh.tctl.(cell) <- no_ctl;
  local_free_push sh cell;
  push2 sh op_reclaim cell;
  match state with
  | Armed ->
    if st.alive.(pid) then begin
      push1 sh op_fired;
      if Sim_time.equal ctl.p_period Sim_time.zero then
        (cb ()
        [@alloc.allow extern
            "the callback belongs to the registering component: its allocation is \
             its own, not the timer plumbing's (same waiver as the sequential \
             engine's execute_timer)"]
        [@race.allow escape
            "component timer callback fired in-window on a worker domain: the \
             determinism contract confines callbacks to shard-local state and \
             the in-window API (op-stream appends replayed behind the barrier)"])
      else if not ctl.p_stopped then begin
        (cb ()
        [@alloc.allow extern
            "the callback belongs to the registering component: its allocation is \
             its own, not the timer plumbing's (same waiver as the sequential \
             engine's execute_timer)"]
        [@race.allow escape
            "component timer callback fired in-window on a worker domain (see \
             the zero-period arm above)"]);
        let slot = w_arm sh pid ~delay:ctl.p_period cb ctl in
        ctl.p_slot <- slot;
        ctl.p_gen <- sh.tgens.(slot)
      end
    end
    else push1 sh op_orphaned
  | Cancelled -> ()
  | Free -> assert false

let w_dispatch st sh (env : Payload.envelope) =
  let { Payload.src; dst; component = comp; tag = _; payload; sent_at = _; msg = _ } = env in
  if not st.alive.(dst) then begin
    if not (Pid.equal src dst) then begin
      let idx = push_env sh env in
      push2 sh op_drop_dead idx
    end
  end
  else begin
    let handler =
      match Hashtbl.find_opt st.handlers comp with
      | None -> None
      | Some slots -> slots.(dst)
    in
    match handler with
    | None ->
      failwith
        (Printf.sprintf "Engine: message for component %S at %s but no handler registered"
           comp (Pid.to_string dst))
    | Some h ->
      if not (Pid.equal src dst) then begin
        let idx = push_env sh env in
        push2 sh op_deliver_ok idx
      end;
      (h ~src payload
      [@race.allow escape
          "component message handler invoked in-window on a worker domain: the \
           determinism contract confines handlers to shard-local state and the \
           in-window API, whose effects become op-stream appends replayed \
           behind the barrier"])
  end

let w_send st sh ~component ~tag ~src ~dst payload =
  if Pid.equal src dst then begin
    if src mod st.k <> sh.sid then
      invalid_arg "Engine.send: in-window self-send for a process of another shard";
    let env =
      { Payload.src; dst; component; tag; payload; sent_at = sh.snow; msg = -1 }
    in
    let seq = sh.prov_next in
    sh.prov_next <- seq + 1;
    Event_queue.schedule_at_seq sh.heap ~at:sh.snow ~seq env;
    push1 sh op_self
  end
  else begin
    (* Buffered: the message id, fate draw and delivery seq are all
       allocated at barrier replay, in exact sequential order. *)
    let env = { Payload.src; dst; component; tag; payload; sent_at = sh.snow; msg = -1 } in
    let idx = push_env sh env in
    push2 sh op_send idx
  end

let[@alloc.zero] shard_step st sh =
  let have_timer = not (Timer_wheel.is_empty sh.wheel) in
  let have_event = not (Event_queue.is_empty sh.heap) in
  let timer_first =
    have_timer
    && ((not have_event)
       ||
       let wt = Timer_wheel.next_at sh.wheel in
       let ht = Event_queue.next_at sh.heap in
       if wt < ht then true
       else if ht < wt then false
       else Timer_wheel.next_seq sh.wheel <= Event_queue.next_seq sh.heap)
  in
  if timer_first then begin
    let at = Timer_wheel.next_at sh.wheel in
    let seq = Timer_wheel.next_seq sh.wheel in
    let cell = Timer_wheel.pop sh.wheel in
    assert (at >= sh.snow);
    sh.snow <- at;
    sh.window_events <- sh.window_events + 1;
    push3 sh op_step_timer at seq;
    w_execute_timer st sh cell
  end
  else begin
    let at = Event_queue.next_at sh.heap in
    let seq = Event_queue.next_seq sh.heap in
    let env = Event_queue.pop_exn sh.heap in
    assert (at >= sh.snow);
    sh.snow <- at;
    sh.window_events <- sh.window_events + 1;
    push3 sh op_step_heap at seq;
    (w_dispatch st sh env
    [@alloc.allow extern
        "aperiodic dispatch leg: handler lookup and component handlers may \
         allocate — the zero-alloc contract covers the timer leg, exactly as in \
         the sequential engine's step"])
  end

let next_local sh =
  let wt = if Timer_wheel.is_empty sh.wheel then max_int else Timer_wheel.next_at sh.wheel in
  let ht = if Event_queue.is_empty sh.heap then max_int else Event_queue.next_at sh.heap in
  if wt < ht then wt else ht

let run_shard_window st sh w1 =
  let prev = Domain.DLS.get ctx_key in
  Domain.DLS.set ctx_key (In_window (st, sh));
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set ctx_key prev)
    (fun () ->
      while next_local sh < w1 do
        shard_step st sh
      done)

(* ------------------------------------------------------------------ *)
(* Barrier replay: merge the K op logs by (time, resolved seq) — the
   sequential execution order — and apply every buffered effect on the
   coordinating domain. *)

let resolve sh raw = if raw >= prov_base then sh.smap.(raw - prov_base) else raw

let replay_alloc_seq st sh =
  let seq = Event_queue.alloc_seq st.gq in
  smap_push sh seq;
  seq

let mailbox_push st ~src_sid ~dst_sid env ~at ~seq =
  let mb = st.mailboxes.((src_sid * st.k) + dst_sid) in
  let cap = Array.length mb.mb_envs in
  if mb.mb_len = cap then begin
    let cap' = Stdlib.max 16 (2 * cap) in
    let envs' = Array.make cap' no_env in
    let at' = Array.make cap' 0 in
    let seq' = Array.make cap' 0 in
    Array.blit mb.mb_envs 0 envs' 0 cap;
    Array.blit mb.mb_at 0 at' 0 cap;
    Array.blit mb.mb_seq 0 seq' 0 cap;
    mb.mb_envs <- envs';
    mb.mb_at <- at';
    mb.mb_seq <- seq'
  end;
  mb.mb_envs.(mb.mb_len) <- env;
  mb.mb_at.(mb.mb_len) <- at;
  mb.mb_seq.(mb.mb_len) <- seq;
  mb.mb_len <- mb.mb_len + 1

(* Replay one STEP group: the head STEP plus every effect op before the
   next STEP.  Effects reproduce, in order, exactly what the sequential
   engine would have done while executing that event. *)
let[@race.shard_root] replay_group st sh =
  let ops = sh.ops in
  let at = ops.(sh.rp + 1) in
  assert (at >= st.gnow);
  st.gnow <- at;
  Stats.on_event_executed st.stats;
  if ops.(sh.rp) = op_step_heap then st.g_heap_len <- st.g_heap_len - 1;
  sh.rp <- sh.rp + 3;
  let in_group = ref true in
  while !in_group && sh.rp < sh.ops_len do
    let c = ops.(sh.rp) in
    if c = op_step_timer || c = op_step_heap then in_group := false
    else if c = op_reclaim then begin
      let slot = ops.(sh.rp + 1) in
      (* [vmap] still holds the pre-reuse virtual slot here: a same-window
         reuse of this local slot is an ARM op later in this stream. *)
      let v = sh.vmap.(slot) in
      st.v_live.(v) <- false;
      vfree_push st v;
      st.g_live <- st.g_live - 1;
      Stats.on_timer_reclaimed st.stats;
      sh.rp <- sh.rp + 2
    end
    else if c = op_fired then begin
      st.g_armed <- st.g_armed - 1;
      Stats.on_timer_fired st.stats;
      Obs.Registry.incr st.m_timer_fired;
      sh.rp <- sh.rp + 1
    end
    else if c = op_orphaned then begin
      st.g_armed <- st.g_armed - 1;
      Stats.on_timer_orphaned st.stats;
      Obs.Registry.incr st.m_timer_orphaned;
      sh.rp <- sh.rp + 1
    end
    else if c = op_cancelled then begin
      st.g_armed <- st.g_armed - 1;
      Stats.on_timer_cancelled st.stats;
      Obs.Registry.incr st.m_timer_cancelled;
      sh.rp <- sh.rp + 1
    end
    else if c = op_arm then begin
      let slot = ops.(sh.rp + 1) in
      let v = valloc st in
      sh.vmap.(slot) <- v;
      st.v_live.(v) <- true;
      st.g_live <- st.g_live + 1;
      st.g_armed <- st.g_armed + 1;
      Stats.note_timer_residency st.stats ~residency:st.g_live;
      Obs.Registry.set_max st.m_timer_residency_hw st.g_live;
      Stats.on_timer_set st.stats;
      Obs.Registry.incr st.m_timer_set;
      ignore (replay_alloc_seq st sh : int);
      note_depth st;
      sh.rp <- sh.rp + 2
    end
    else if c = op_self then begin
      ignore (replay_alloc_seq st sh : int);
      st.g_heap_len <- st.g_heap_len + 1;
      note_depth st;
      sh.rp <- sh.rp + 1
    end
    else if c = op_send then begin
      let env = sh.envs.(ops.(sh.rp + 1)) in
      let msg = st.next_msg in
      st.next_msg <- msg + 1;
      env.Payload.msg <- msg;
      let { Payload.src; dst; component; tag; sent_at; _ } = env in
      Trace.record st.trace (Send { at = sent_at; src; dst; msg; component; tag });
      Stats.on_send st.stats ~component ~tag;
      (match
         (st.link.Link.fate ~rng:st.rng ~now:sent_at ~src ~dst
         [@race.allow escape
             "link fate model at mailbox flush: runs on the coordinator behind \
              the pool barrier (same contract as the direct path)"])
       with
      | Link.Drop ->
        Trace.record st.trace
          (Drop { at = sent_at; src; dst; msg; component; tag; reason = "lossy" });
        Stats.on_drop st.stats ~component ~tag
      | Link.Deliver_at d ->
        assert (d >= sent_at);
        if d - sent_at < st.lookahead then
          invalid_arg "Engine: link delivered below its declared min_delay bound";
        let seq = Event_queue.alloc_seq st.gq in
        mailbox_push st ~src_sid:(src mod st.k) ~dst_sid:(dst mod st.k) env ~at:d ~seq;
        st.g_heap_len <- st.g_heap_len + 1;
        note_depth st);
      sh.rp <- sh.rp + 2
    end
    else if c = op_deliver_ok then begin
      let env = sh.envs.(ops.(sh.rp + 1)) in
      let { Payload.src; dst; component; tag; sent_at; msg; _ } = env in
      Trace.record st.trace (Deliver { at = st.gnow; src; dst; msg; component; tag });
      Stats.on_deliver st.stats ~component ~tag;
      Obs.Registry.observe st.m_delivery_latency (st.gnow - sent_at);
      sh.rp <- sh.rp + 2
    end
    else if c = op_drop_dead then begin
      let env = sh.envs.(ops.(sh.rp + 1)) in
      let { Payload.src; dst; component; tag; msg; _ } = env in
      Trace.record st.trace
        (Drop { at = st.gnow; src; dst; msg; component; tag; reason = "destination crashed" });
      Stats.on_drop st.stats ~component ~tag;
      sh.rp <- sh.rp + 2
    end
    else if c = op_trace then begin
      Trace.record st.trace sh.bodies.(ops.(sh.rp + 1));
      sh.rp <- sh.rp + 2
    end
    else if c = op_obs then begin
      Obs.Registry.apply sh.obs_ops.(ops.(sh.rp + 1));
      sh.rp <- sh.rp + 2
    end
    else if c = op_fn then begin
      sh.fns.(ops.(sh.rp + 1)) ();
      sh.rp <- sh.rp + 2
    end
    else assert false
  done

(* The head STEP of every stream always has a resolvable seq: a
   provisional head seq was allocated by an ARM/SELF op earlier in the
   same stream (scheduling precedes execution locally), and that op was
   consumed when its own group was replayed. *)
let[@race.shard_root] replay_windows st =
  let remaining = ref true in
  while !remaining do
    let best = ref (-1) in
    let best_at = ref max_int in
    let best_seq = ref max_int in
    for i = 0 to st.k - 1 do
      let sh = st.shards.(i) in
      if sh.rp < sh.ops_len then begin
        let at = sh.ops.(sh.rp + 1) in
        let seq = resolve sh sh.ops.(sh.rp + 2) in
        if at < !best_at || (Sim_time.equal at !best_at && seq < !best_seq) then begin
          best := i;
          best_at := at;
          best_seq := seq
        end
      end
    done;
    if !best < 0 then remaining := false else replay_group st st.shards.(!best)
  done

let[@race.shard_root] flush_mailboxes st =
  for src = 0 to st.k - 1 do
    for dst = 0 to st.k - 1 do
      let mb = st.mailboxes.((src * st.k) + dst) in
      if mb.mb_len > 0 then begin
        let dsh = st.shards.(dst) in
        for i = 0 to mb.mb_len - 1 do
          Event_queue.schedule_at_seq dsh.heap ~at:mb.mb_at.(i) ~seq:mb.mb_seq.(i)
            mb.mb_envs.(i);
          mb.mb_envs.(i) <- no_env
        done;
        mb.mb_len <- 0
      end
    done
  done

let[@race.shard_root] finish_window st =
  replay_windows st;
  flush_mailboxes st;
  for i = 0 to st.k - 1 do
    let sh = st.shards.(i) in
    if sh.prov_next > prov_base then begin
      (* Every provisional seq allocated this window has a reconciled
         global value by now. *)
      assert (sh.smap_len = sh.prov_next - prov_base);
      Timer_wheel.remap_seqs sh.wheel (fun raw -> resolve sh raw);
      Event_queue.remap_seqs sh.heap (fun raw -> resolve sh raw)
    end;
    (* Reset the window buffers, dropping value references so the log
       does not retain envelopes/closures until the next window. *)
    for j = 0 to sh.envs_len - 1 do
      sh.envs.(j) <- no_env
    done;
    for j = 0 to sh.bodies_len - 1 do
      sh.bodies.(j) <- no_body
    done;
    for j = 0 to sh.obs_len - 1 do
      sh.obs_ops.(j) <- Obs.Registry.noop_op
    done;
    for j = 0 to sh.fns_len - 1 do
      sh.fns.(j) <- no_fn
    done;
    sh.ops_len <- 0;
    sh.envs_len <- 0;
    sh.bodies_len <- 0;
    sh.obs_len <- 0;
    sh.fns_len <- 0;
    sh.rp <- 0;
    sh.prov_next <- prov_base;
    sh.smap_len <- 0;
    sh.window_events <- 0
  done

(* ------------------------------------------------------------------ *)
(* Drive loop. *)

(* Profiled variant of a shard's window job: same work, bracketed by
   wall-clock reads into the shard's private scratch slot. *)
let run_shard_window_timed st sh w1 =
  let t0 = Exec.Pool.wall () in
  run_shard_window st sh w1;
  (* Each worker writes only its own shard's scratch slot, and the pool
     barrier publishes the writes before the coordinator reads them. *)
  st.prof_busy.(sh.sid) <- Exec.Pool.wall () -. t0

(* Capture the window's record at the barrier: op-log sizes and event
   counts are read before [finish_window] resets them, the replay
   bracket times [finish_window] itself.  Runs on the coordinating
   domain, outside any window, so the histogram updates below go
   straight to the registry (the capture hook declines). *)
let profile_window st pm ~from ~until ~active =
  let events = Array.init st.k (fun i -> st.shards.(i).window_events) in
  let ops_words = Array.init st.k (fun i -> st.shards.(i).ops_len) in
  let r0 = Exec.Pool.wall () in
  finish_window st;
  let replay_s = Exec.Pool.wall () -. r0 in
  let busy_s = Array.sub st.prof_busy 0 st.k in
  let total_events = Array.fold_left ( + ) 0 events in
  let max_events = Array.fold_left Stdlib.max 0 events in
  (* max/mean over the active shards, in percent: 100 = perfectly
     balanced, 300 = the busiest shard had 3x the mean load. *)
  let imbalance_x100 =
    if total_events = 0 then 100 else 100 * max_events * active / total_events
  in
  Obs.Registry.observe pm.pm_window_span (until - from);
  Obs.Registry.observe pm.pm_window_events total_events;
  Obs.Registry.observe pm.pm_ops_words (Array.fold_left ( + ) 0 ops_words);
  Obs.Registry.observe pm.pm_imbalance imbalance_x100;
  Array.iteri
    (fun i busy ->
      if events.(i) > 0 then
        Obs.Registry.observe pm.pm_busy_us (int_of_float (busy *. 1e6)))
    busy_s;
  Obs.Registry.observe pm.pm_replay_us (int_of_float (replay_s *. 1e6));
  st.prof_rev <-
    { wp_from = from; wp_until = until; wp_active = active; wp_events = events;
      wp_ops_words = ops_words; wp_busy_s = busy_s; wp_replay_s = replay_s }
    :: st.prof_rev

let run_window st w1 =
  st.windows <- st.windows + 1;
  let active = ref 0 in
  let last_active = ref (-1) in
  let from = ref max_int in
  for i = 0 to st.k - 1 do
    let nl = next_local st.shards.(i) in
    if nl < w1 then begin
      incr active;
      last_active := i;
      if nl < !from then from := nl
    end
  done;
  st.shard_windows <- st.shard_windows + !active;
  let profiled = st.prof <> None in
  if profiled then Array.fill st.prof_busy 0 st.k 0.0;
  if !active <= 1 then begin
    st.null_windows <- st.null_windows + 1;
    if !active = 1 then begin
      let sh = st.shards.(!last_active) in
      if profiled then run_shard_window_timed st sh w1 else run_shard_window st sh w1
    end
  end
  else begin
    let jobs = ref [] in
    for i = st.k - 1 downto 0 do
      let sh = st.shards.(i) in
      if next_local sh < w1 then
        jobs :=
          (if profiled then fun () -> run_shard_window_timed st sh w1
           else fun () -> run_shard_window st sh w1)
          :: !jobs
    done;
    ignore
      (Exec.Pool.run
         (!jobs
         [@race.allow publish
             "argument evaluated by the coordinator before the window opens; \
              the closures, not the list cell, cross domains"])
        : unit list)
  end;
  match st.prof with
  | Some pm -> profile_window st pm ~from:!from ~until:w1 ~active:!active
  | None -> finish_window st

let direct_step st =
  let best_at = ref max_int in
  let best_seq = ref max_int in
  let best_kind = ref (-1) in
  let best_sid = ref (-1) in
  if not (Event_queue.is_empty st.gq) then begin
    best_at := Event_queue.next_at st.gq;
    best_seq := Event_queue.next_seq st.gq;
    best_kind := 0
  end;
  for i = 0 to st.k - 1 do
    let sh = st.shards.(i) in
    if not (Timer_wheel.is_empty sh.wheel) then begin
      let at = Timer_wheel.next_at sh.wheel in
      let seq = Timer_wheel.next_seq sh.wheel in
      if at < !best_at || (Sim_time.equal at !best_at && seq < !best_seq) then begin
        best_at := at;
        best_seq := seq;
        best_kind := 1;
        best_sid := i
      end
    end;
    if not (Event_queue.is_empty sh.heap) then begin
      let at = Event_queue.next_at sh.heap in
      let seq = Event_queue.next_seq sh.heap in
      if at < !best_at || (Sim_time.equal at !best_at && seq < !best_seq) then begin
        best_at := at;
        best_seq := seq;
        best_kind := 2;
        best_sid := i
      end
    end
  done;
  if !best_kind < 0 then false
  else begin
    st.direct_steps <- st.direct_steps + 1;
    let at = !best_at in
    assert (at >= st.gnow);
    st.gnow <- at;
    Stats.on_event_executed st.stats;
    (match !best_kind with
    | 0 -> (
      st.g_heap_len <- st.g_heap_len - 1;
      match Event_queue.pop_exn st.gq with
      | Crash_now p ->
        if st.alive.(p) then begin
          st.alive.(p) <- false;
          Trace.record st.trace (Crash { at; pid = p })
        end
      | Harness f ->
        (f ()
        [@race.allow escape
            "harness closure scheduled by the test driver, executed by the \
             engine-owning domain between windows (never inside one)"]))
    | 1 ->
      let sh = st.shards.(!best_sid) in
      sh.snow <- at;
      let cell = Timer_wheel.pop sh.wheel in
      d_execute_timer st sh cell
    | _ ->
      let sh = st.shards.(!best_sid) in
      sh.snow <- at;
      st.g_heap_len <- st.g_heap_len - 1;
      let env = Event_queue.pop_exn sh.heap in
      d_dispatch st env);
    true
  end

let next_instant st =
  let t = ref (if Event_queue.is_empty st.gq then max_int else Event_queue.next_at st.gq) in
  for i = 0 to st.k - 1 do
    let l = next_local st.shards.(i) in
    if l < !t then t := l
  done;
  !t

(* Saturating add for window bounds: [t + lookahead] with the
   [unbounded_lookahead] sentinel must not wrap. *)
let sat_add a b =
  let s = a + b in
  if s < a then max_int else s

let step st =
  if in_window st then invalid_arg "Engine.step: forbidden inside a parallel window";
  direct_step st

let run_until st horizon =
  if in_window st then invalid_arg "Engine.run_until: forbidden inside a parallel window";
  if horizon < st.gnow then invalid_arg "Engine.run_until: horizon in the past";
  let running = ref true in
  while !running do
    let t = next_instant st in
    if t > horizon then running := false
    else begin
      let g_at = if Event_queue.is_empty st.gq then max_int else Event_queue.next_at st.gq in
      if st.lookahead <= 0 || Sim_time.equal g_at t then ignore (direct_step st : bool)
      else begin
        let w1 = Stdlib.min (sat_add t st.lookahead) (Stdlib.min g_at (sat_add horizon 1)) in
        if w1 <= t then ignore (direct_step st : bool) else run_window st w1
      end
    end
  done;
  st.gnow <- horizon;
  for i = 0 to st.k - 1 do
    let sh = st.shards.(i) in
    if sh.snow < horizon then sh.snow <- horizon
  done

(* ------------------------------------------------------------------ *)
(* Engine-facing operations. *)

let send st ~component ~tag ~src ~dst payload =
  if st.alive.(src) then begin
    match Domain.DLS.get ctx_key with
    | In_window (st', sh) when st' == st -> w_send st sh ~component ~tag ~src ~dst payload
    | _ -> d_send st ~component ~tag ~src ~dst payload
  end

let set_timer st p ~delay callback =
  match Domain.DLS.get ctx_key with
  | In_window (st', sh) when st' == st ->
    if p mod st.k <> sh.sid then
      invalid_arg "Engine.set_timer: in-window timer for a process of another shard";
    let slot = w_arm sh p ~delay callback no_ctl in
    (slot, sh.tgens.(slot), sh.sid)
  | _ ->
    let sh, slot = d_arm st p ~delay callback no_ctl in
    (slot, sh.tgens.(slot), sh.sid)

let cancel st ~sid ~slot ~gen =
  let sh = st.shards.(sid) in
  if slot >= 0
     && slot < Array.length sh.tgens
     && sh.tgens.(slot) = gen
     && sh.tstates.(slot) = Armed
  then begin
    match Domain.DLS.get ctx_key with
    | In_window (st', wsh) when st' == st ->
      if wsh.sid <> sid then
        invalid_arg "Engine.cancel_timer: in-window cancel for a timer of another shard";
      sh.tstates.(slot) <- Cancelled;
      push1 wsh op_cancelled
    | _ ->
      sh.tstates.(slot) <- Cancelled;
      st.g_armed <- st.g_armed - 1;
      Stats.on_timer_cancelled st.stats;
      Obs.Registry.incr st.m_timer_cancelled
  end

let every st p ?phase ~period callback =
  if period <= 0 then invalid_arg "Engine.every: period must be positive";
  let phase = match phase with Some d -> d | None -> period in
  let ctl = { p_slot = 0; p_gen = 0; p_period = period; p_stopped = false } in
  let sid = p mod st.k in
  (match Domain.DLS.get ctx_key with
  | In_window (st', sh) when st' == st ->
    if sid <> sh.sid then
      invalid_arg "Engine.every: in-window periodic for a process of another shard";
    let slot = w_arm sh p ~delay:phase callback ctl in
    ctl.p_slot <- slot;
    ctl.p_gen <- sh.tgens.(slot)
  | _ ->
    let sh, slot = d_arm st p ~delay:phase callback ctl in
    ctl.p_slot <- slot;
    ctl.p_gen <- sh.tgens.(slot));
  fun () ->
    if not ctl.p_stopped then begin
      ctl.p_stopped <- true;
      cancel st ~sid ~slot:ctl.p_slot ~gen:ctl.p_gen
    end

let at st instant callback =
  if in_window st then invalid_arg "Engine.at: forbidden inside a parallel window";
  if instant < st.gnow then invalid_arg "Engine.at: instant in the past";
  Event_queue.schedule st.gq ~at:instant (Harness callback);
  st.g_heap_len <- st.g_heap_len + 1;
  note_depth st

let schedule_crash st p ~at =
  if in_window st then invalid_arg "Engine.schedule_crash: forbidden inside a parallel window";
  if at < st.gnow then invalid_arg "Engine.schedule_crash: instant in the past";
  Event_queue.schedule st.gq ~at (Crash_now p);
  st.g_heap_len <- st.g_heap_len + 1;
  note_depth st

let alloc_span st =
  let id = st.next_span in
  st.next_span <- id + 1;
  id

let log_fn st fn =
  match Domain.DLS.get ctx_key with
  | In_window (st', sh) when st' == st ->
    let idx = push_fn sh fn in
    push2 sh op_fn idx
  | _ -> invalid_arg "Shard.log_fn: not inside a parallel window"

let pending_events st = st.g_heap_len + st.g_live
let timer_residency st = st.g_live
let timer_table_capacity st = st.v_next_slot
let timer_armed st = st.g_armed
let windows st = st.windows
let null_windows st = st.null_windows
let direct_steps st = st.direct_steps
let shard_windows st = st.shard_windows
let profiling st = st.prof <> None
let profile st = List.rev st.prof_rev

let compact st =
  if in_window st then invalid_arg "Engine.compact: forbidden inside a parallel window";
  Event_queue.shrink st.gq;
  for i = 0 to st.k - 1 do
    let sh = st.shards.(i) in
    Event_queue.shrink sh.heap;
    let live_cap = ref 0 in
    for s = 0 to sh.tnext_slot - 1 do
      if sh.tstates.(s) <> Free then live_cap := s + 1
    done;
    let cap = !live_cap in
    if cap < sh.tnext_slot then begin
      let floor = ref sh.tgen_floor in
      for s = cap to sh.tnext_slot - 1 do
        if sh.tgens.(s) > !floor then floor := sh.tgens.(s)
      done;
      sh.tgen_floor <- !floor;
      sh.tgens <- Array.sub sh.tgens 0 cap;
      sh.tstates <- Array.sub sh.tstates 0 cap;
      sh.tpids <- Array.sub sh.tpids 0 cap;
      sh.tcbs <- Array.sub sh.tcbs 0 cap;
      sh.tctl <- Array.sub sh.tctl 0 cap;
      sh.vmap <- Array.sub sh.vmap 0 cap;
      sh.tnext_slot <- cap;
      let kept = ref 0 in
      for j = 0 to sh.tfree_len - 1 do
        let s = sh.tfree.(j) in
        if s < cap then begin
          sh.tfree.(!kept) <- s;
          incr kept
        end
      done;
      sh.tfree_len <- !kept;
      let free_target = Stdlib.max 16 sh.tfree_len in
      if Array.length sh.tfree > free_target then sh.tfree <- Array.sub sh.tfree 0 free_target;
      Timer_wheel.shrink_capacity sh.wheel cap
    end
  done;
  (* Virtual table: mirror the sequential compact's capacity drop.  A
     virtual slot is live iff its local slot is non-Free, so the live
     high-water matches the sequential table's. *)
  let v_cap = ref 0 in
  for v = 0 to st.v_next_slot - 1 do
    if st.v_live.(v) then v_cap := v + 1
  done;
  let cap = !v_cap in
  if cap < st.v_next_slot then begin
    st.v_next_slot <- cap;
    if cap < Array.length st.v_live then st.v_live <- Array.sub st.v_live 0 cap;
    let kept = ref 0 in
    for j = 0 to st.v_free_len - 1 do
      let v = st.v_free.(j) in
      if v < cap then begin
        st.v_free.(!kept) <- v;
        incr kept
      end
    done;
    st.v_free_len <- !kept;
    let free_target = Stdlib.max 16 st.v_free_len in
    if Array.length st.v_free > free_target then st.v_free <- Array.sub st.v_free 0 free_target
  end

(* ------------------------------------------------------------------ *)
(* Construction and shard-count configuration. *)

let make_shard sid =
  {
    sid;
    wheel = Timer_wheel.create ();
    heap = Event_queue.create ();
    snow = Sim_time.zero;
    tgens = [||];
    tstates = [||];
    tpids = [||];
    tcbs = [||];
    tctl = [||];
    vmap = [||];
    tfree = [||];
    tfree_len = 0;
    tnext_slot = 0;
    tgen_floor = 0;
    ops = [||];
    ops_len = 0;
    envs = [||];
    envs_len = 0;
    bodies = [||];
    bodies_len = 0;
    obs_ops = [||];
    obs_len = 0;
    fns = [||];
    fns_len = 0;
    prov_next = prov_base;
    window_events = 0;
    rp = 0;
    smap = [||];
    smap_len = 0;
  }

let create ~k ~n ~link ~rng ~alive ~handlers ~trace ~stats ~obs ~m_delivery_latency
    ~m_span_duration ~m_queue_depth_hw ~m_timer_residency_hw ~m_timer_set ~m_timer_fired
    ~m_timer_cancelled ~m_timer_orphaned () =
  if k < 1 then invalid_arg "Shard.create: k must be >= 1";
  let prof =
    if not (default_profile ()) then None
    else
      Some
        {
          pm_window_span =
            Obs.Registry.histogram obs ~name:"profiler.window_span_ticks"
              ~buckets:[ 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024; 4096 ];
          pm_window_events =
            Obs.Registry.histogram obs ~name:"profiler.window_events"
              ~buckets:[ 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024; 4096; 16384 ];
          pm_ops_words =
            Obs.Registry.histogram obs ~name:"profiler.window_op_log_words"
              ~buckets:[ 4; 16; 64; 256; 1024; 4096; 16384; 65536; 262144 ];
          pm_imbalance =
            Obs.Registry.histogram obs ~name:"profiler.shard_imbalance_x100"
              ~buckets:[ 100; 110; 125; 150; 200; 300; 400; 800 ];
          pm_busy_us =
            Obs.Registry.histogram obs ~name:"profiler.shard_busy_us"
              ~buckets:[ 1; 2; 5; 10; 20; 50; 100; 200; 500; 1000; 2000; 5000; 10000 ];
          pm_replay_us =
            Obs.Registry.histogram obs ~name:"profiler.barrier_replay_us"
              ~buckets:[ 1; 2; 5; 10; 20; 50; 100; 200; 500; 1000; 2000; 5000; 10000 ];
        }
  in
  let st =
    {
      k;
      n;
      lookahead = Link.min_delay_bound link;
      shards = Array.init k make_shard;
      gq = Event_queue.create ();
      link;
      rng;
      alive;
      handlers;
      trace;
      stats;
      obs;
      m_delivery_latency;
      m_span_duration;
      m_queue_depth_hw;
      m_timer_residency_hw;
      m_timer_set;
      m_timer_fired;
      m_timer_cancelled;
      m_timer_orphaned;
      gnow = Sim_time.zero;
      next_msg = 0;
      next_span = 0;
      g_heap_len = 0;
      g_live = 0;
      g_armed = 0;
      v_free = [||];
      v_free_len = 0;
      v_next_slot = 0;
      v_live = [||];
      mailboxes =
        Array.init (k * k) (fun _ ->
            { mb_envs = [||]; mb_at = [||]; mb_seq = [||]; mb_len = 0 });
      windows = 0;
      null_windows = 0;
      direct_steps = 0;
      shard_windows = 0;
      prof;
      prof_busy = Array.make k 0.0;
      prof_rev = [];
    }
  in
  (* Both hooks run on whichever domain performs the Trace/Obs call —
     inside a window that is a pool worker, so they are [@race.domain]
     roots for ecfd-racecheck: everything they touch must come out of
     the Domain.DLS context (shard-local buffers), never from shared
     engine state. *)
  Trace.set_sink trace
    (Some
       ((fun body ->
          match Domain.DLS.get ctx_key with
          | In_window (st', sh) when st' == st ->
            let idx = push_body sh body in
            push2 sh op_trace idx;
            true
          | _ -> false)
       [@race.domain]));
  Obs.Registry.set_hook obs
    (Some
       ((fun op ->
          match Domain.DLS.get ctx_key with
          | In_window (st', sh) when st' == st ->
            let idx = push_obs sh op in
            push2 sh op_obs idx;
            true
          | _ -> false)
       [@race.domain]));
  st

let shards_override = ref None

let env_shards =
  lazy
    (match Sys.getenv_opt "ECFD_SHARDS" with
    | None -> None
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v when v >= 1 -> Some v
      | _ -> None))

let default_shards () =
  match
    (!shards_override
    [@race.allow publish
        "written only by the coordinator between runs (set_default_shards / \
         with_shards); Domain.spawn publishes the value, and a nested engine \
         built inside a job only reads it"])
  with
  | Some k -> k
  | None -> ( match Lazy.force env_shards with Some k -> k | None -> 1)

let set_default_shards k =
  if k < 1 then invalid_arg "Shard.set_default_shards: shard count must be >= 1";
  shards_override := Some k

let with_shards k f =
  if k < 1 then invalid_arg "Shard.with_shards: shard count must be >= 1";
  let prev = !shards_override in
  shards_override := Some k;
  Fun.protect ~finally:(fun () -> shards_override := prev) f
