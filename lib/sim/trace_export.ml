(* Both exporters write through a Buffer with plain Printf formatting: the
   output must be byte-deterministic, and the JSON vocabulary is small
   enough that a JSON library would buy nothing. *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSONL                                                              *)
(* ------------------------------------------------------------------ *)

let jsonl_event buf (e : Trace.event) =
  let stamp kind = Printf.bprintf buf "{\"seq\":%d,\"lc\":%d,\"type\":\"%s\"" e.seq e.lc kind in
  (match e.body with
  | Send { at; src; dst; msg; component; tag } ->
    stamp "send";
    Printf.bprintf buf ",\"at\":%d,\"src\":%d,\"dst\":%d,\"msg\":%d,\"component\":\"%s\",\"tag\":\"%s\""
      at src dst msg (escape component) (escape tag)
  | Deliver { at; src; dst; msg; component; tag } ->
    stamp "deliver";
    Printf.bprintf buf ",\"at\":%d,\"src\":%d,\"dst\":%d,\"msg\":%d,\"component\":\"%s\",\"tag\":\"%s\""
      at src dst msg (escape component) (escape tag)
  | Drop { at; src; dst; msg; component; tag; reason } ->
    stamp "drop";
    Printf.bprintf buf
      ",\"at\":%d,\"src\":%d,\"dst\":%d,\"msg\":%d,\"component\":\"%s\",\"tag\":\"%s\",\"reason\":\"%s\""
      at src dst msg (escape component) (escape tag) (escape reason)
  | Crash { at; pid } ->
    stamp "crash";
    Printf.bprintf buf ",\"at\":%d,\"pid\":%d" at pid
  | Fd_view { at; pid; component; suspected; trusted } ->
    stamp "fd_view";
    Printf.bprintf buf ",\"at\":%d,\"pid\":%d,\"component\":\"%s\",\"suspected\":[%s],\"trusted\":%s"
      at pid (escape component)
      (String.concat "," (List.map string_of_int (Pid.Set.elements suspected)))
      (match trusted with None -> "null" | Some q -> string_of_int q)
  | Propose { at; pid; value } ->
    stamp "propose";
    Printf.bprintf buf ",\"at\":%d,\"pid\":%d,\"value\":%d" at pid value
  | Decide { at; pid; value; round } ->
    stamp "decide";
    Printf.bprintf buf ",\"at\":%d,\"pid\":%d,\"value\":%d,\"round\":%d" at pid value round
  | Note { at; pid; tag; detail } ->
    stamp "note";
    Printf.bprintf buf ",\"at\":%d,\"pid\":%d,\"tag\":\"%s\",\"detail\":\"%s\"" at pid (escape tag)
      (escape detail)
  | Span_begin { at; pid; component; span; name } ->
    stamp "span_begin";
    Printf.bprintf buf ",\"at\":%d,\"pid\":%d,\"component\":\"%s\",\"span\":%d,\"name\":\"%s\"" at
      pid (escape component) span (escape name)
  | Span_end { at; pid; component; span; name } ->
    stamp "span_end";
    Printf.bprintf buf ",\"at\":%d,\"pid\":%d,\"component\":\"%s\",\"span\":%d,\"name\":\"%s\"" at
      pid (escape component) span (escape name));
  Buffer.add_string buf "}\n"

let jsonl buf trace = Trace.iter trace (fun e -> jsonl_event buf e)

let jsonl_string trace =
  let buf = Buffer.create 4096 in
  jsonl buf trace;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Chrome trace-event JSON                                            *)
(* ------------------------------------------------------------------ *)

(* One Chrome "process" per sim process (pid = tid = the sim pid), so
   Perfetto shows one track per process.  Spans become B/E duration
   slices; Send/Deliver become thread-scoped instants joined by a flow
   ([s] at the send, [f] with bp:"e" at the delivery) keyed on the
   message id; everything else is an instant.  Drops are parked on the
   sender's track (a drop happens on the link, but Chrome events must
   live on some track, and the sender is where the message last was). *)

let emit_args buf (e : Trace.event) extras =
  Printf.bprintf buf "\"args\":{\"seq\":%d,\"lc\":%d%s}" e.seq e.lc extras

let chrome_event buf first (e : Trace.event) =
  let sep () = if !first then first := false else Buffer.add_string buf ",\n" in
  let common ~name ~cat ~ph ~ts ~pid extras_fmt =
    sep ();
    Printf.bprintf buf "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%d,\"pid\":%d,\"tid\":%d,"
      (escape name) (escape cat) ph ts pid pid;
    extras_fmt ();
    Buffer.add_string buf "}"
  in
  let instant ~name ~cat ~ts ~pid extras =
    common ~name ~cat ~ph:"i" ~ts ~pid (fun () ->
        Buffer.add_string buf "\"s\":\"t\",";
        emit_args buf e extras)
  in
  match e.body with
  | Send { at; src; dst; msg; component; tag } ->
    instant ~name:("send " ^ tag) ~cat:component ~ts:at ~pid:src
      (Printf.sprintf ",\"msg\":%d,\"dst\":%d" msg dst);
    common ~name:"msg" ~cat:component ~ph:"s" ~ts:at ~pid:src (fun () ->
        Printf.bprintf buf "\"id\":%d," msg;
        emit_args buf e "")
  | Deliver { at; src; dst; msg; component; tag } ->
    instant ~name:("deliver " ^ tag) ~cat:component ~ts:at ~pid:dst
      (Printf.sprintf ",\"msg\":%d,\"src\":%d" msg src);
    common ~name:"msg" ~cat:component ~ph:"f" ~ts:at ~pid:dst (fun () ->
        Printf.bprintf buf "\"id\":%d,\"bp\":\"e\"," msg;
        emit_args buf e "")
  | Drop { at; src; dst; msg; component; tag; reason } ->
    instant ~name:("drop " ^ tag) ~cat:component ~ts:at ~pid:src
      (Printf.sprintf ",\"msg\":%d,\"dst\":%d,\"reason\":\"%s\"" msg dst (escape reason))
  | Crash { at; pid } -> instant ~name:"crash" ~cat:"engine" ~ts:at ~pid ""
  | Fd_view { at; pid; component; suspected; trusted } ->
    instant ~name:"fd-view" ~cat:component ~ts:at ~pid
      (Printf.sprintf ",\"suspected\":[%s],\"trusted\":%s"
         (String.concat "," (List.map string_of_int (Pid.Set.elements suspected)))
         (match trusted with None -> "null" | Some q -> string_of_int q))
  | Propose { at; pid; value } ->
    instant ~name:"propose" ~cat:"consensus" ~ts:at ~pid (Printf.sprintf ",\"value\":%d" value)
  | Decide { at; pid; value; round } ->
    instant ~name:"decide" ~cat:"consensus" ~ts:at ~pid
      (Printf.sprintf ",\"value\":%d,\"round\":%d" value round)
  | Note { at; pid; tag; detail } ->
    instant ~name:("note " ^ tag) ~cat:"note" ~ts:at ~pid
      (Printf.sprintf ",\"detail\":\"%s\"" (escape detail))
  | Span_begin { at; pid; component; span; name } ->
    common ~name ~cat:component ~ph:"B" ~ts:at ~pid (fun () ->
        emit_args buf e (Printf.sprintf ",\"span\":%d" span))
  | Span_end { at; pid; component; span; name } ->
    common ~name ~cat:component ~ph:"E" ~ts:at ~pid (fun () ->
        emit_args buf e (Printf.sprintf ",\"span\":%d" span))

(* Profiler track: one extra Chrome "process" above the sim pids, one
   thread per shard plus a "barrier" thread.  Each window becomes one
   complete ("X") slice per active shard over the window's sim-time
   span, carrying the deterministic per-shard figures (events, op-log
   words) and the wall-clock ones (busy/replay microseconds) as args;
   the barrier thread carries the replay cost.  Sim ticks are the [ts]
   axis, exactly like the event tracks. *)
let chrome_profiler buf first ~ppid (windows : Shard.window_profile list) =
  let sep () = if !first then first := false else Buffer.add_string buf ",\n" in
  let k =
    List.fold_left (fun acc w -> Stdlib.max acc (Array.length w.Shard.wp_events)) 0 windows
  in
  sep ();
  Printf.bprintf buf
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"engine profiler\"}}"
    ppid;
  for i = 0 to k - 1 do
    sep ();
    Printf.bprintf buf
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"shard %d\"}}"
      ppid i i
  done;
  sep ();
  Printf.bprintf buf
    "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"barrier\"}}"
    ppid k;
  List.iteri
    (fun w_idx (w : Shard.window_profile) ->
      let dur = Stdlib.max 1 (w.Shard.wp_until - w.Shard.wp_from) in
      Array.iteri
        (fun i events ->
          if events > 0 then begin
            sep ();
            Printf.bprintf buf
              "{\"name\":\"window %d\",\"cat\":\"profiler\",\"ph\":\"X\",\"ts\":%d,\"dur\":%d,\"pid\":%d,\"tid\":%d,\"args\":{\"events\":%d,\"ops_words\":%d,\"busy_us\":%d}}"
              w_idx w.Shard.wp_from dur ppid i events
              w.Shard.wp_ops_words.(i)
              (int_of_float (w.Shard.wp_busy_s.(i) *. 1e6))
          end)
        w.Shard.wp_events;
      sep ();
      Printf.bprintf buf
        "{\"name\":\"replay %d\",\"cat\":\"profiler\",\"ph\":\"X\",\"ts\":%d,\"dur\":%d,\"pid\":%d,\"tid\":%d,\"args\":{\"active\":%d,\"replay_us\":%d}}"
        w_idx w.Shard.wp_from dur ppid k w.Shard.wp_active
        (int_of_float (w.Shard.wp_replay_s *. 1e6)))
    windows

let chrome ?(profiler = []) buf trace =
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  let first = ref true in
  (* Process-name metadata rows first, one per process seen in the trace,
     in pid order, so Perfetto labels the tracks. *)
  let max_pid = ref (-1) in
  Trace.iter trace (fun e ->
      match Trace.pid_of e.body with
      | Some p -> if p > !max_pid then max_pid := p
      | None -> ());
  for p = 0 to !max_pid do
    if !first then first := false else Buffer.add_string buf ",\n";
    Printf.bprintf buf
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"p%d\"}}"
      p p (p + 1)
  done;
  if profiler <> [] then chrome_profiler buf first ~ppid:(!max_pid + 1) profiler;
  Trace.iter trace (fun e -> chrome_event buf first e);
  Buffer.add_string buf "\n]}\n"

let chrome_string ?profiler trace =
  let buf = Buffer.create 8192 in
  chrome ?profiler buf trace;
  Buffer.contents buf
