(** Communication link models.

    A link model decides, for every send, whether the message is lost and
    otherwise when it is delivered.  The models implement the assumptions of
    the paper:

    - {b reliable}: every message sent is eventually delivered, exactly once,
      after a finite but unbounded delay (Section 2.1);
    - {b partially synchronous}: after some global stabilisation time GST,
      every message is delivered within an (unknown to the algorithms) bound
      [delta] of [max (send time) GST] — the Dwork–Lynch–Stockmeyer model
      used in Section 4 and in [6,8];
    - {b fair-lossy}: messages can be lost, but if infinitely many are sent
      then infinitely many are delivered (the output links of the leader in
      Fig. 2).  We realise fairness with i.i.d. drops of probability [< 1].

    Models can differ per directed pair of processes ({!route}), which the
    transformation of Fig. 2 needs: partially synchronous links {i into} the
    leader, fair-lossy links {i out of} it, no assumption elsewhere. *)

type fate =
  | Drop
  | Deliver_at of Sim_time.t  (** Absolute delivery instant. *)

type t = {
  describe : string;
  fate : rng:Rng.t -> now:Sim_time.t -> src:Pid.t -> dst:Pid.t -> fate;
  min_delay : int;
      (** Lookahead contract: every fate the link returns is either [Drop] or
          [Deliver_at d] with [d >= now + min_delay].  The sharded engine
          ({!Shard}) uses this as its conservative window lookahead; [0] is
          always sound and merely forces sequential merging, so custom record
          literals that cannot prove a bound should use [0]. *)
}

val min_delay_bound : t -> int
(** [min_delay_bound l] is [l.min_delay] (see the field documentation). *)

val unbounded_lookahead : int
(** Lookahead stand-in for links that never deliver ([never]): large enough
    that windows always extend to the horizon, small enough that
    [now + unbounded_lookahead] cannot overflow. *)

val reliable : ?min_delay:int -> ?max_delay:int -> unit -> t
(** Uniform delay in [[min_delay, max_delay]]; defaults 1 and 8. *)

val synchronous : delay:int -> t
(** Fixed delay — handy for exact message/latency accounting in benches. *)

val partially_synchronous :
  ?min_delay:int -> ?pre_gst_max:int -> gst:Sim_time.t -> delta:int -> unit -> t
(** Before GST, delays are drawn uniformly in [[min_delay, pre_gst_max]]
    (default [pre_gst_max] = 50 * delta, i.e. wildly asynchronous), but every
    message is in any case delivered by [max now gst + delta]; after GST,
    delays are uniform in [[min_delay, delta]].  Hence the DLS bound
    "received and processed in at most [delta] after GST" always holds. *)

val fair_lossy : drop_probability:float -> underlying:t -> t
(** Drop each message independently with [drop_probability]; otherwise defer
    to [underlying].  Requires [0 <= drop_probability < 1] for fairness. *)

val growing_blackouts :
  ?min_delay:int ->
  ?max_delay:int ->
  ?open_window:int ->
  ?initial_blackout:int ->
  ?blackout_growth:int ->
  unit ->
  t
(** Fair-lossy with unbounded silence: delivery windows of [open_window]
    ticks alternate with blackouts whose length grows without bound (by
    [blackout_growth] per cycle).  Infinitely many messages get through
    (fairness), but inter-arrival gaps grow past every time-out — even an
    adaptive one — so no time-out-based accuracy can hold on such a link.
    This is the non-source side of the "weak reliability and synchrony"
    systems of Aguilera et al. (PODC 2003), where Ω is implementable but
    ◇P is not (experiment E12). *)

val ever_slower : ?min_delay:int -> slowdown_divisor:int -> unit -> t
(** Reliable but never timely: the delay grows with the clock
    (min_delay + now/slowdown_divisor + small jitter).  Every message
    arrives, yet no fixed (or additively adapted) time-out can eventually
    hold — the kind of link on which ◇P is not implementable although Ω is,
    the "weak reliability and synchrony assumptions" setting of Aguilera et
    al. (PODC 2003) that the paper cites in Section 1.1 (experiment E12). *)

val route : ?min_delay:int -> describe:string -> (src:Pid.t -> dst:Pid.t -> t) -> t
(** Per-directed-pair model selection.  The selector is opaque, so no delay
    bound can be derived from the routed links; [min_delay] defaults to the
    conservative [0] (sequential merge under sharding) — pass the minimum of
    the constituent links' bounds to restore parallel windows. *)

val never : t
(** Drops everything (crash of a link; used for adversarial tests). *)
