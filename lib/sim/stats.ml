type counts = { sent : int; delivered : int; dropped : int }

let zero = { sent = 0; delivered = 0; dropped = 0 }

let add a b =
  { sent = a.sent + b.sent; delivered = a.delivered + b.delivered; dropped = a.dropped + b.dropped }

(* Keyed by (component, tag); component-level views aggregate on the fly.
   Simulations have few distinct keys, so a Hashtbl is ample. *)
type t = { table : (string * string, counts ref) Hashtbl.t }

let create () = { table = Hashtbl.create 32 }

let cell t ~component ~tag =
  let key = (component, tag) in
  match Hashtbl.find_opt t.table key with
  | Some c -> c
  | None ->
    let c = ref zero in
    Hashtbl.add t.table key c;
    c

let on_send t ~component ~tag =
  let c = cell t ~component ~tag in
  c := { !c with sent = !c.sent + 1 }

let on_deliver t ~component ~tag =
  let c = cell t ~component ~tag in
  c := { !c with delivered = !c.delivered + 1 }

let on_drop t ~component ~tag =
  let c = cell t ~component ~tag in
  c := { !c with dropped = !c.dropped + 1 }

let component_counts t ~component =
  Hashtbl.fold
    (fun (c, _) v acc -> if String.equal c component then add acc !v else acc)
    t.table zero

let tag_counts t ~component ~tag =
  match Hashtbl.find_opt t.table (component, tag) with Some c -> !c | None -> zero

let total t = Hashtbl.fold (fun _ v acc -> add acc !v) t.table zero

let components t =
  Hashtbl.fold (fun (c, _) _ acc -> if List.mem c acc then acc else c :: acc) t.table []
  |> List.sort String.compare

type snapshot = (string * string * counts) list

let snapshot t = Hashtbl.fold (fun (c, tag) v acc -> (c, tag, !v) :: acc) t.table []

let sent_in_snapshot snap ~component =
  List.fold_left
    (fun acc (c, _, v) -> if String.equal c component then acc + v.sent else acc)
    0 snap

let sent_since t snap ~component =
  (component_counts t ~component).sent - sent_in_snapshot snap ~component

let total_sent_since t snap =
  (total t).sent - List.fold_left (fun acc (_, _, v) -> acc + v.sent) 0 snap
