type counts = { sent : int; delivered : int; dropped : int }

let zero = { sent = 0; delivered = 0; dropped = 0 }

let add a b =
  { sent = a.sent + b.sent; delivered = a.delivered + b.delivered; dropped = a.dropped + b.dropped }

(* Internal cells are mutable so the per-event hot path increments in place
   instead of allocating a fresh record (the old ref-of-immutable-record
   scheme allocated on every send/deliver/drop).  The public [counts] view
   stays immutable. *)
type cell = { mutable c_sent : int; mutable c_delivered : int; mutable c_dropped : int }

let read cell = { sent = cell.c_sent; delivered = cell.c_delivered; dropped = cell.c_dropped }

type lifecycle = {
  events_executed : int;
  timers_set : int;
  timers_fired : int;
  timers_cancelled : int;
  timers_orphaned : int;
  timers_reclaimed : int;
  queue_high_water : int;
  timer_residency_high_water : int;
}

(* Keyed by (component, tag); component-level views aggregate on the fly.
   Simulations have few distinct keys, so a Hashtbl is ample. *)
type t = {
  table : (string * string, cell) Hashtbl.t;
  mutable events_executed : int;
  mutable timers_set : int;
  mutable timers_fired : int;
  mutable timers_cancelled : int;
  mutable timers_orphaned : int;
  mutable timers_reclaimed : int;
  mutable queue_high_water : int;
  mutable timer_residency_high_water : int;
}

let create () =
  {
    table = Hashtbl.create 32;
    events_executed = 0;
    timers_set = 0;
    timers_fired = 0;
    timers_cancelled = 0;
    timers_orphaned = 0;
    timers_reclaimed = 0;
    queue_high_water = 0;
    timer_residency_high_water = 0;
  }

let cell t ~component ~tag =
  let key = (component, tag) in
  match Hashtbl.find_opt t.table key with
  | Some c -> c
  | None ->
    let c = { c_sent = 0; c_delivered = 0; c_dropped = 0 } in
    Hashtbl.add t.table key c;
    c

let on_send t ~component ~tag =
  let c = cell t ~component ~tag in
  c.c_sent <- c.c_sent + 1

let on_deliver t ~component ~tag =
  let c = cell t ~component ~tag in
  c.c_delivered <- c.c_delivered + 1

let on_drop t ~component ~tag =
  let c = cell t ~component ~tag in
  c.c_dropped <- c.c_dropped + 1

let on_event_executed t = t.events_executed <- t.events_executed + 1
let on_timer_set t = t.timers_set <- t.timers_set + 1
let on_timer_fired t = t.timers_fired <- t.timers_fired + 1
let on_timer_cancelled t = t.timers_cancelled <- t.timers_cancelled + 1
let on_timer_orphaned t = t.timers_orphaned <- t.timers_orphaned + 1
let on_timer_reclaimed t = t.timers_reclaimed <- t.timers_reclaimed + 1

let note_queue_depth t ~depth =
  if depth > t.queue_high_water then t.queue_high_water <- depth

let note_timer_residency t ~residency =
  if residency > t.timer_residency_high_water then
    t.timer_residency_high_water <- residency

let lifecycle t =
  {
    events_executed = t.events_executed;
    timers_set = t.timers_set;
    timers_fired = t.timers_fired;
    timers_cancelled = t.timers_cancelled;
    timers_orphaned = t.timers_orphaned;
    timers_reclaimed = t.timers_reclaimed;
    queue_high_water = t.queue_high_water;
    timer_residency_high_water = t.timer_residency_high_water;
  }

let pp_lifecycle ppf (l : lifecycle) =
  Format.fprintf ppf
    "events=%d timers(set=%d fired=%d cancelled=%d orphaned=%d reclaimed=%d) \
     queue-high-water=%d timer-residency-high-water=%d"
    l.events_executed l.timers_set l.timers_fired l.timers_cancelled l.timers_orphaned
    l.timers_reclaimed l.queue_high_water l.timer_residency_high_water

let component_counts t ~component =
  Hashtbl.fold
    (fun (c, _) v acc -> if String.equal c component then add acc (read v) else acc)
    t.table zero

let tag_counts t ~component ~tag =
  match Hashtbl.find_opt t.table (component, tag) with Some c -> read c | None -> zero

let total t = Hashtbl.fold (fun _ v acc -> add acc (read v)) t.table zero

let components t =
  Hashtbl.fold (fun (c, _) _ acc -> c :: acc) t.table []
  |> List.sort_uniq String.compare

type snapshot = (string * string * counts) list

(* Sorted so the result is a pure function of the counters, independent of
   the table's insertion history (see HACKING.md, "Determinism rules"). *)
let snapshot t =
  Hashtbl.fold (fun (c, tag) v acc -> (c, tag, read v) :: acc) t.table []
  |> List.sort (fun (c1, t1, _) (c2, t2, _) ->
         match String.compare c1 c2 with 0 -> String.compare t1 t2 | c -> c)

let sent_in_snapshot snap ~component =
  List.fold_left
    (fun acc (c, _, v) -> if String.equal c component then acc + v.sent else acc)
    0 snap

let sent_since t snap ~component =
  (component_counts t ~component).sent - sent_in_snapshot snap ~component

let total_sent_since t snap =
  (total t).sent - List.fold_left (fun acc (_, _, v) -> acc + v.sent) 0 snap
