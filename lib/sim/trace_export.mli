(** Trace exporters.

    Two formats, both deterministic byte-for-byte (a pure function of the
    trace, so exports fall under the byte-identity contract checked by the
    determinism tests and CI):

    - {b Chrome trace-event JSON} ({!chrome}): the [{"traceEvents": [...]}]
      dialect understood by Perfetto ([ui.perfetto.dev]) and
      [chrome://tracing].  One track per simulated process (the sim pid
      becomes the Chrome pid), spans as [B]/[E] duration slices, messages
      as instant events joined by flow arrows ([s]/[f]) keyed on the
      message id, sim ticks rendered as microseconds.

    - {b JSONL} ({!jsonl}): one flat JSON object per event, in seq order,
      carrying every field including the [seq]/[lc] stamps — the format
      the [ecfd-trace] query tool (tools/tracequery) reads back.

    Schemas for both live in [docs/schemas/] and are validated in CI. *)

val chrome : ?profiler:Shard.window_profile list -> Buffer.t -> Trace.t -> unit
val chrome_string : ?profiler:Shard.window_profile list -> Trace.t -> string
(** [?profiler] (default none) adds a runtime-profiler track — one extra
    Chrome process above the sim pids with one thread per shard plus a
    barrier thread, each window rendered as a complete slice over its
    sim-time span carrying events / op-log words / busy and replay
    microseconds as args.  Pass {!Engine.profiler_windows} from a run
    with profiling enabled ([ECFD_PROFILE=1] or
    {!Shard.set_default_profile}).  With the default, output is the
    byte-deterministic pure function of the trace described above. *)

val jsonl : Buffer.t -> Trace.t -> unit
val jsonl_string : Trace.t -> string

val jsonl_event : Buffer.t -> Trace.event -> unit
(** One JSONL line including the trailing newline — exposed so filter-style
    tools re-emit events in exactly the format they were read from. *)
