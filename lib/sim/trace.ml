type body =
  | Send of {
      at : Sim_time.t;
      src : Pid.t;
      dst : Pid.t;
      msg : int;
      component : string;
      tag : string;
    }
  | Deliver of {
      at : Sim_time.t;
      src : Pid.t;
      dst : Pid.t;
      msg : int;
      component : string;
      tag : string;
    }
  | Drop of {
      at : Sim_time.t;
      src : Pid.t;
      dst : Pid.t;
      msg : int;
      component : string;
      tag : string;
      reason : string;
    }
  | Crash of { at : Sim_time.t; pid : Pid.t }
  | Fd_view of {
      at : Sim_time.t;
      pid : Pid.t;
      component : string;
      suspected : Pid.Set.t;
      trusted : Pid.t option;
    }
  | Propose of { at : Sim_time.t; pid : Pid.t; value : int }
  | Decide of { at : Sim_time.t; pid : Pid.t; value : int; round : int }
  | Note of { at : Sim_time.t; pid : Pid.t; tag : string; detail : string }
  | Span_begin of { at : Sim_time.t; pid : Pid.t; component : string; span : int; name : string }
  | Span_end of { at : Sim_time.t; pid : Pid.t; component : string; span : int; name : string }

type event = { seq : int; lc : int; body : body }

(* Events live in a growable array, appended in order of occurrence, so
   [iter]/[to_seq] walk them with no per-read allocation (the previous
   reversed-list storage re-materialised the whole trace on every
   [events] call, and every derived view rescanned that copy).

   [clocks] is the per-process Lamport clock, grown on demand — the trace
   does not know [n], and hand-built test traces should not have to
   declare it.  [send_lc] maps an in-flight message id to its send stamp;
   the entry is consumed by the matching [Deliver] or [Drop], so the
   table's residency is bounded by in-flight messages, not run length. *)
type t = {
  mutable arr : event array;
  mutable count : int;
  mutable clocks : int array;
  send_lc : (int, int) Hashtbl.t;
  (* Interception point for the sharded engine: when set, [record] offers
     the body to the sink first, and only appends it itself if the sink
     declines (returns [false]).  During a parallel window the sink captures
     bodies into the recording shard's log; outside windows it declines and
     recording proceeds exactly as in the sequential engine. *)
  mutable sink : (body -> bool) option;
}

let dummy_event = { seq = -1; lc = 0; body = Crash { at = Sim_time.zero; pid = 0 } }

let create () =
  { arr = [||]; count = 0; clocks = [||]; send_lc = Hashtbl.create 64; sink = None }

let set_sink t sink = t.sink <- sink

let clock t pid = if pid < Array.length t.clocks then t.clocks.(pid) else 0

let set_clock t pid v =
  let capacity = Array.length t.clocks in
  if pid >= capacity then begin
    let capacity' = Stdlib.max 8 (Stdlib.max (pid + 1) (2 * capacity)) in
    let clocks' = Array.make capacity' 0 in
    Array.blit t.clocks 0 clocks' 0 capacity;
    t.clocks <- clocks'
  end;
  t.clocks.(pid) <- v

let tick t pid =
  let c = clock t pid + 1 in
  set_clock t pid c;
  c

(* The clock rules (see trace.mli): Send ticks the sender and publishes
   its stamp under the message id; Deliver joins the receiver's clock with
   that stamp; Drop adopts the stamp without ticking anyone; every other
   event ticks the process it happens at. *)
let stamp t = function
  | Send { src; msg; _ } ->
    let c = tick t src in
    if msg >= 0 then Hashtbl.replace t.send_lc msg c;
    c
  | Deliver { dst; msg; _ } ->
    let sent =
      match Hashtbl.find_opt t.send_lc msg with
      | Some c ->
        Hashtbl.remove t.send_lc msg;
        c
      | None -> 0
    in
    let c = Stdlib.max (clock t dst) sent + 1 in
    set_clock t dst c;
    c
  | Drop { msg; _ } -> (
    match Hashtbl.find_opt t.send_lc msg with
    | Some c ->
      Hashtbl.remove t.send_lc msg;
      c
    | None -> 0)
  | Crash { pid; _ }
  | Fd_view { pid; _ }
  | Propose { pid; _ }
  | Decide { pid; _ }
  | Note { pid; _ }
  | Span_begin { pid; _ }
  | Span_end { pid; _ } -> tick t pid

let record_direct t body =
  let capacity = Array.length t.arr in
  if t.count = capacity then begin
    let capacity' = Stdlib.max 64 (2 * capacity) in
    let arr' = Array.make capacity' dummy_event in
    Array.blit t.arr 0 arr' 0 capacity;
    t.arr <- arr'
  end;
  let lc = stamp t body in
  t.arr.(t.count) <- { seq = t.count; lc; body };
  t.count <- t.count + 1

let record t body =
  match t.sink with
  | Some sink when sink body -> ()
  | _ -> record_direct t body

let length t = t.count

let iter t f =
  for i = 0 to t.count - 1 do
    f t.arr.(i)
  done

let to_seq t =
  let rec node i () = if i >= t.count then Seq.Nil else Seq.Cons (t.arr.(i), node (i + 1)) in
  node 0

let events t = List.init t.count (fun i -> t.arr.(i))

let time_of = function
  | Send { at; _ }
  | Deliver { at; _ }
  | Drop { at; _ }
  | Crash { at; _ }
  | Fd_view { at; _ }
  | Propose { at; _ }
  | Decide { at; _ }
  | Note { at; _ }
  | Span_begin { at; _ }
  | Span_end { at; _ } -> at

let pid_of = function
  | Send { src; _ } -> Some src
  | Deliver { dst; _ } -> Some dst
  | Drop _ -> None
  | Crash { pid; _ }
  | Fd_view { pid; _ }
  | Propose { pid; _ }
  | Decide { pid; _ }
  | Note { pid; _ }
  | Span_begin { pid; _ }
  | Span_end { pid; _ } -> Some pid

let pp_trusted ppf = function
  | None -> Format.fprintf ppf "-"
  | Some q -> Pid.pp ppf q

let pp_body ppf = function
  | Send { at; src; dst; msg; component; tag } ->
    Format.fprintf ppf "[%a] send m%d %a->%a %s/%s" Sim_time.pp at msg Pid.pp src Pid.pp dst
      component tag
  | Deliver { at; src; dst; msg; component; tag } ->
    Format.fprintf ppf "[%a] deliver m%d %a->%a %s/%s" Sim_time.pp at msg Pid.pp src Pid.pp dst
      component tag
  | Drop { at; src; dst; msg; component; tag; reason } ->
    Format.fprintf ppf "[%a] drop m%d %a->%a %s/%s (%s)" Sim_time.pp at msg Pid.pp src Pid.pp dst
      component tag reason
  | Crash { at; pid } -> Format.fprintf ppf "[%a] crash %a" Sim_time.pp at Pid.pp pid
  | Fd_view { at; pid; component; suspected; trusted } ->
    Format.fprintf ppf "[%a] %a %s: suspected=%a trusted=%a" Sim_time.pp at Pid.pp pid component
      Pid.pp_set suspected pp_trusted trusted
  | Propose { at; pid; value } ->
    Format.fprintf ppf "[%a] %a proposes %d" Sim_time.pp at Pid.pp pid value
  | Decide { at; pid; value; round } ->
    Format.fprintf ppf "[%a] %a decides %d (round %d)" Sim_time.pp at Pid.pp pid value round
  | Note { at; pid; tag; detail } ->
    Format.fprintf ppf "[%a] %a note %s: %s" Sim_time.pp at Pid.pp pid tag detail
  | Span_begin { at; pid; component; span; name } ->
    Format.fprintf ppf "[%a] %a span s%d begin %s/%s" Sim_time.pp at Pid.pp pid span component
      name
  | Span_end { at; pid; component; span; name } ->
    Format.fprintf ppf "[%a] %a span s%d end %s/%s" Sim_time.pp at Pid.pp pid span component name

let pp_event ppf e = Format.fprintf ppf "#%d @%d %a" e.seq e.lc pp_body e.body

let fold t f init =
  let acc = ref init in
  iter t (fun e -> acc := f !acc e);
  !acc

let crashes t =
  List.rev
    (fold t
       (fun acc e ->
         match e.body with Crash { at; pid } -> (pid, at) :: acc | _ -> acc)
       [])

let decisions t =
  List.rev
    (fold t
       (fun acc e ->
         match e.body with
         | Decide { at; pid; value; round } -> (pid, value, round, at) :: acc
         | _ -> acc)
       [])

let proposals t =
  List.rev
    (fold t
       (fun acc e ->
         match e.body with Propose { pid; value; _ } -> (pid, value) :: acc | _ -> acc)
       [])

let fd_views ~component t =
  List.rev
    (fold t
       (fun acc e ->
         match e.body with
         | Fd_view { at; pid; component = c; suspected; trusted } when String.equal c component
           ->
           (at, pid, suspected, trusted) :: acc
         | _ -> acc)
       [])

let dump t oc =
  let ppf = Format.formatter_of_out_channel oc in
  iter t (fun e -> Format.fprintf ppf "%a@." pp_event e);
  Format.pp_print_flush ppf ()
