type event =
  | Send of { at : Sim_time.t; src : Pid.t; dst : Pid.t; component : string; tag : string }
  | Deliver of { at : Sim_time.t; src : Pid.t; dst : Pid.t; component : string; tag : string }
  | Drop of {
      at : Sim_time.t;
      src : Pid.t;
      dst : Pid.t;
      component : string;
      tag : string;
      reason : string;
    }
  | Crash of { at : Sim_time.t; pid : Pid.t }
  | Fd_view of {
      at : Sim_time.t;
      pid : Pid.t;
      component : string;
      suspected : Pid.Set.t;
      trusted : Pid.t option;
    }
  | Propose of { at : Sim_time.t; pid : Pid.t; value : int }
  | Decide of { at : Sim_time.t; pid : Pid.t; value : int; round : int }
  | Note of { at : Sim_time.t; pid : Pid.t; tag : string; detail : string }

type t = { mutable rev_events : event list; mutable count : int }

let create () = { rev_events = []; count = 0 }

let record t e =
  t.rev_events <- e :: t.rev_events;
  t.count <- t.count + 1

let events t = List.rev t.rev_events
let length t = t.count

let time_of = function
  | Send { at; _ }
  | Deliver { at; _ }
  | Drop { at; _ }
  | Crash { at; _ }
  | Fd_view { at; _ }
  | Propose { at; _ }
  | Decide { at; _ }
  | Note { at; _ } -> at

let pp_trusted ppf = function
  | None -> Format.fprintf ppf "-"
  | Some q -> Pid.pp ppf q

let pp_event ppf = function
  | Send { at; src; dst; component; tag } ->
    Format.fprintf ppf "[%a] send %a->%a %s/%s" Sim_time.pp at Pid.pp src Pid.pp dst component tag
  | Deliver { at; src; dst; component; tag } ->
    Format.fprintf ppf "[%a] deliver %a->%a %s/%s" Sim_time.pp at Pid.pp src Pid.pp dst component
      tag
  | Drop { at; src; dst; component; tag; reason } ->
    Format.fprintf ppf "[%a] drop %a->%a %s/%s (%s)" Sim_time.pp at Pid.pp src Pid.pp dst
      component tag reason
  | Crash { at; pid } -> Format.fprintf ppf "[%a] crash %a" Sim_time.pp at Pid.pp pid
  | Fd_view { at; pid; component; suspected; trusted } ->
    Format.fprintf ppf "[%a] %a %s: suspected=%a trusted=%a" Sim_time.pp at Pid.pp pid component
      Pid.pp_set suspected pp_trusted trusted
  | Propose { at; pid; value } ->
    Format.fprintf ppf "[%a] %a proposes %d" Sim_time.pp at Pid.pp pid value
  | Decide { at; pid; value; round } ->
    Format.fprintf ppf "[%a] %a decides %d (round %d)" Sim_time.pp at Pid.pp pid value round
  | Note { at; pid; tag; detail } ->
    Format.fprintf ppf "[%a] %a note %s: %s" Sim_time.pp at Pid.pp pid tag detail

let crashes t =
  List.filter_map (function Crash { at; pid } -> Some (pid, at) | _ -> None) (events t)

let decisions t =
  List.filter_map
    (function Decide { at; pid; value; round } -> Some (pid, value, round, at) | _ -> None)
    (events t)

let proposals t =
  List.filter_map (function Propose { pid; value; _ } -> Some (pid, value) | _ -> None) (events t)

let dump t oc =
  let ppf = Format.formatter_of_out_channel oc in
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_event e) (events t);
  Format.pp_print_flush ppf ()

let fd_views ~component t =
  List.filter_map
    (function
      | Fd_view { at; pid; component = c; suspected; trusted } when String.equal c component ->
        Some (at, pid, suspected, trusted)
      | _ -> None)
    (events t)
