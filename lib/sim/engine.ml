type event_kind =
  | Deliver of Payload.envelope
  | Timer_fire of { pid : Pid.t; id : int; callback : unit -> unit }
  | Crash_now of Pid.t
  | Harness of (unit -> unit)

type t = {
  n : int;
  mutable now : Sim_time.t;
  queue : event_kind Event_queue.t;
  link : Link.t;
  rng : Rng.t;
  alive : bool array;
  handlers : (string, (src:Pid.t -> Payload.t -> unit) option array) Hashtbl.t;
  trace : Trace.t;
  stats : Stats.t;
  cancelled_timers : (int, unit) Hashtbl.t;
  mutable next_timer_id : int;
}

let create ?(seed = 0) ~n ~link () =
  if n < 1 then invalid_arg "Engine.create: n must be >= 1";
  {
    n;
    now = Sim_time.zero;
    queue = Event_queue.create ();
    link;
    rng = Rng.create ~seed;
    alive = Array.make n true;
    handlers = Hashtbl.create 8;
    trace = Trace.create ();
    stats = Stats.create ();
    cancelled_timers = Hashtbl.create 64;
    next_timer_id = 0;
  }

let n t = t.n
let now t = t.now
let trace t = t.trace
let stats t = t.stats
let link_description t = t.link.Link.describe

let check_pid t p =
  if not (Pid.is_valid ~n:t.n p) then invalid_arg "Engine: invalid process id"

let is_alive t p =
  check_pid t p;
  t.alive.(p)

let alive_processes t = List.filter (fun p -> t.alive.(p)) (Pid.all ~n:t.n)

let schedule_crash t p ~at =
  check_pid t p;
  if at < t.now then invalid_arg "Engine.schedule_crash: instant in the past";
  Event_queue.schedule t.queue ~at (Crash_now p)

let register t ~component p handler =
  check_pid t p;
  let slots =
    match Hashtbl.find_opt t.handlers component with
    | Some slots -> slots
    | None ->
      let slots = Array.make t.n None in
      Hashtbl.add t.handlers component slots;
      slots
  in
  match slots.(p) with
  | Some _ ->
    invalid_arg
      (Printf.sprintf "Engine.register: duplicate handler for component %S at %s" component
         (Pid.to_string p))
  | None -> slots.(p) <- Some handler

let send t ~component ~tag ~src ~dst payload =
  check_pid t src;
  check_pid t dst;
  if t.alive.(src) then begin
    let envelope =
      { Payload.src; dst; component; tag; payload; sent_at = t.now }
    in
    if Pid.equal src dst then
      (* Local delivery: immediate, not a network message, not counted. *)
      Event_queue.schedule t.queue ~at:t.now (Deliver envelope)
    else begin
      Trace.record t.trace (Send { at = t.now; src; dst; component; tag });
      Stats.on_send t.stats ~component ~tag;
      match t.link.Link.fate ~rng:t.rng ~now:t.now ~src ~dst with
      | Link.Drop ->
        Trace.record t.trace (Drop { at = t.now; src; dst; component; tag; reason = "lossy" });
        Stats.on_drop t.stats ~component ~tag
      | Link.Deliver_at at ->
        assert (at >= t.now);
        Event_queue.schedule t.queue ~at (Deliver envelope)
    end
  end

let send_to_all_others t ~component ~tag ~src payload =
  List.iter (fun dst -> send t ~component ~tag ~src ~dst payload) (Pid.others ~n:t.n src)

let send_to_all t ~component ~tag ~src payload =
  List.iter (fun dst -> send t ~component ~tag ~src ~dst payload) (Pid.all ~n:t.n)

type timer = int

let set_timer t p ~delay callback =
  check_pid t p;
  if delay < 0 then invalid_arg "Engine.set_timer: negative delay";
  let id = t.next_timer_id in
  t.next_timer_id <- id + 1;
  Event_queue.schedule t.queue ~at:(t.now + delay) (Timer_fire { pid = p; id; callback });
  id

let cancel_timer t id = Hashtbl.replace t.cancelled_timers id ()

let every t p ?phase ~period callback =
  check_pid t p;
  if period <= 0 then invalid_arg "Engine.every: period must be positive";
  let phase = match phase with Some d -> d | None -> period in
  let stopped = ref false in
  let rec arm delay =
    ignore
      (set_timer t p ~delay (fun () ->
           if not !stopped then begin
             callback ();
             arm period
           end)
        : timer)
  in
  arm phase;
  fun () -> stopped := true

let at t instant callback =
  if instant < t.now then invalid_arg "Engine.at: instant in the past";
  Event_queue.schedule t.queue ~at:instant (Harness callback)

let note t p ~tag detail = Trace.record t.trace (Note { at = t.now; pid = p; tag; detail })

let record_fd_view t ~component p ~suspected ~trusted =
  Trace.record t.trace (Fd_view { at = t.now; pid = p; component; suspected; trusted })

let dispatch t (envelope : Payload.envelope) =
  let { Payload.src; dst; component; tag; payload; _ } = envelope in
  if not t.alive.(dst) then begin
    if not (Pid.equal src dst) then begin
      Trace.record t.trace
        (Drop { at = t.now; src; dst; component; tag; reason = "destination crashed" });
      Stats.on_drop t.stats ~component ~tag
    end
  end
  else begin
    let handler =
      match Hashtbl.find_opt t.handlers component with
      | None -> None
      | Some slots -> slots.(dst)
    in
    match handler with
    | None ->
      failwith
        (Printf.sprintf "Engine: message for component %S at %s but no handler registered"
           component (Pid.to_string dst))
    | Some h ->
      if not (Pid.equal src dst) then begin
        Trace.record t.trace (Deliver { at = t.now; src; dst; component; tag });
        Stats.on_deliver t.stats ~component ~tag
      end;
      h ~src payload
  end

let execute t kind =
  match kind with
  | Deliver envelope -> dispatch t envelope
  | Timer_fire { pid; id; callback } ->
    if t.alive.(pid) && not (Hashtbl.mem t.cancelled_timers id) then callback ()
  | Crash_now p ->
    if t.alive.(p) then begin
      t.alive.(p) <- false;
      Trace.record t.trace (Crash { at = t.now; pid = p })
    end
  | Harness f -> f ()

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (at, kind) ->
    assert (at >= t.now);
    t.now <- at;
    execute t kind;
    true

let run_until t horizon =
  if horizon < t.now then invalid_arg "Engine.run_until: horizon in the past";
  let rec loop () =
    match Event_queue.next_time t.queue with
    | Some at when at <= horizon ->
      ignore (step t : bool);
      loop ()
    | Some _ | None -> ()
  in
  loop ();
  t.now <- horizon

let pending_events t = Event_queue.length t.queue
