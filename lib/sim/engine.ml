type event_kind =
  | Deliver of Payload.envelope
  | Timer_fire of { pid : Pid.t; slot : int; gen : int; callback : unit -> unit }
  | Crash_now of Pid.t
  | Harness of (unit -> unit)

(* Timer registry: a generation/slot table replacing the old
   [(int, unit) Hashtbl.t] of cancelled ids, which grew for the lifetime of
   the run (entries were never purged, so a soak run leaked one table entry
   per cancellation forever).

   Every armed timer owns one slot until the instant its [Timer_fire] event
   is popped — fired, cancelled in the meantime, or orphaned by a crash, the
   pop reclaims the slot and bumps its generation.  A timer handle is
   (slot, generation); a stale handle (cancel after the event popped, or
   after the slot was reused) compares unequal on generation and is a no-op.
   Residency is therefore bounded by the number of in-flight timer events,
   not by the cumulative number of cancellations. *)
type timer_state = Free | Armed | Cancelled

type t = {
  n : int;
  mutable now : Sim_time.t;
  queue : event_kind Event_queue.t;
  link : Link.t;
  rng : Rng.t;
  alive : bool array;
  handlers : (string, (src:Pid.t -> Payload.t -> unit) option array) Hashtbl.t;
  trace : Trace.t;
  stats : Stats.t;
  obs : Obs.Registry.t;
  m_delivery_latency : Obs.Registry.histogram;
  m_span_duration : Obs.Registry.histogram;
  m_queue_depth_hw : Obs.Registry.gauge;
  m_timer_residency_hw : Obs.Registry.gauge;
  mutable next_msg : int;  (* message ids handed to Send/Deliver/Drop trace events *)
  mutable next_span : int;  (* span ids handed to Span_begin/Span_end *)
  mutable timer_gens : int array;
  mutable timer_states : timer_state array;
  mutable timer_free : int list;  (* reclaimed slots below [timer_next_slot] *)
  mutable timer_next_slot : int;  (* slots ever handed out; table high-water *)
  mutable timer_live : int;  (* Armed + Cancelled slots awaiting reclaim *)
}

(* Sim-tick buckets shared by the engine's latency-shaped histograms: fine
   resolution around typical post-GST delays, coarse tail for pre-GST
   chaos and long protocol phases. *)
let tick_buckets = [ 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024; 4096 ]

let create ?(seed = 0) ~n ~link () =
  if n < 1 then invalid_arg "Engine.create: n must be >= 1";
  let obs = Obs.Registry.create () in
  {
    n;
    now = Sim_time.zero;
    queue = Event_queue.create ();
    link;
    rng = Rng.create ~seed;
    alive = Array.make n true;
    handlers = Hashtbl.create 8;
    trace = Trace.create ();
    stats = Stats.create ();
    obs;
    m_delivery_latency =
      Obs.Registry.histogram obs ~name:"engine.delivery_latency" ~buckets:tick_buckets;
    m_span_duration = Obs.Registry.histogram obs ~name:"engine.span_duration" ~buckets:tick_buckets;
    m_queue_depth_hw = Obs.Registry.gauge obs ~name:"engine.queue_depth_high_water";
    m_timer_residency_hw = Obs.Registry.gauge obs ~name:"engine.timer_residency_high_water";
    next_msg = 0;
    next_span = 0;
    timer_gens = [||];
    timer_states = [||];
    timer_free = [];
    timer_next_slot = 0;
    timer_live = 0;
  }

let n t = t.n
let now t = t.now
let trace t = t.trace
let stats t = t.stats
let obs t = t.obs
let link_description t = t.link.Link.describe

let check_pid t p =
  if not (Pid.is_valid ~n:t.n p) then invalid_arg "Engine: invalid process id"

let is_alive t p =
  check_pid t p;
  t.alive.(p)

let alive_processes t = List.filter (fun p -> t.alive.(p)) (Pid.all ~n:t.n)

(* Every enqueue goes through here so the queue high-water mark in [Stats]
   is exact, not sampled. *)
let schedule_event t ~at kind =
  Event_queue.schedule t.queue ~at kind;
  let depth = Event_queue.length t.queue in
  Stats.note_queue_depth t.stats ~depth;
  Obs.Registry.set_max t.m_queue_depth_hw depth

let schedule_crash t p ~at =
  check_pid t p;
  if at < t.now then invalid_arg "Engine.schedule_crash: instant in the past";
  schedule_event t ~at (Crash_now p)

let register t ~component p handler =
  check_pid t p;
  let slots =
    match Hashtbl.find_opt t.handlers component with
    | Some slots -> slots
    | None ->
      let slots = Array.make t.n None in
      Hashtbl.add t.handlers component slots;
      slots
  in
  match slots.(p) with
  | Some _ ->
    invalid_arg
      (Printf.sprintf "Engine.register: duplicate handler for component %S at %s" component
         (Pid.to_string p))
  | None -> slots.(p) <- Some handler

let send t ~component ~tag ~src ~dst payload =
  check_pid t src;
  check_pid t dst;
  if t.alive.(src) then begin
    if Pid.equal src dst then
      (* Local delivery: immediate, not a network message, not counted,
         not traced (hence no message id). *)
      schedule_event t ~at:t.now
        (Deliver { Payload.src; dst; component; tag; payload; sent_at = t.now; msg = -1 })
    else begin
      let msg = t.next_msg in
      t.next_msg <- msg + 1;
      let envelope = { Payload.src; dst; component; tag; payload; sent_at = t.now; msg } in
      Trace.record t.trace (Send { at = t.now; src; dst; msg; component; tag });
      Stats.on_send t.stats ~component ~tag;
      match t.link.Link.fate ~rng:t.rng ~now:t.now ~src ~dst with
      | Link.Drop ->
        Trace.record t.trace
          (Drop { at = t.now; src; dst; msg; component; tag; reason = "lossy" });
        Stats.on_drop t.stats ~component ~tag
      | Link.Deliver_at at ->
        assert (at >= t.now);
        schedule_event t ~at (Deliver envelope)
    end
  end

let send_to_all_others t ~component ~tag ~src payload =
  List.iter (fun dst -> send t ~component ~tag ~src ~dst payload) (Pid.others ~n:t.n src)

let send_to_all t ~component ~tag ~src payload =
  List.iter (fun dst -> send t ~component ~tag ~src ~dst payload) (Pid.all ~n:t.n)

type timer = { slot : int; gen : int }

let timer_residency t = t.timer_live
let timer_table_capacity t = t.timer_next_slot

let alloc_timer_slot t =
  match t.timer_free with
  | slot :: rest ->
    t.timer_free <- rest;
    slot
  | [] ->
    let capacity = Array.length t.timer_gens in
    if t.timer_next_slot = capacity then begin
      let capacity' = Stdlib.max 16 (2 * capacity) in
      let gens' = Array.make capacity' 0 in
      let states' = Array.make capacity' Free in
      Array.blit t.timer_gens 0 gens' 0 capacity;
      Array.blit t.timer_states 0 states' 0 capacity;
      t.timer_gens <- gens';
      t.timer_states <- states'
    end;
    let slot = t.timer_next_slot in
    t.timer_next_slot <- slot + 1;
    slot

let reclaim_timer_slot t slot =
  t.timer_gens.(slot) <- t.timer_gens.(slot) + 1;
  t.timer_states.(slot) <- Free;
  t.timer_free <- slot :: t.timer_free;
  t.timer_live <- t.timer_live - 1;
  Stats.on_timer_reclaimed t.stats

let set_timer t p ~delay callback =
  check_pid t p;
  if delay < 0 then invalid_arg "Engine.set_timer: negative delay";
  let slot = alloc_timer_slot t in
  let gen = t.timer_gens.(slot) in
  t.timer_states.(slot) <- Armed;
  t.timer_live <- t.timer_live + 1;
  Stats.note_timer_residency t.stats ~residency:t.timer_live;
  Obs.Registry.set_max t.m_timer_residency_hw t.timer_live;
  Stats.on_timer_set t.stats;
  schedule_event t ~at:(t.now + delay) (Timer_fire { pid = p; slot; gen; callback });
  { slot; gen }

let cancel_timer t { slot; gen } =
  (* Stale handles (already fired, already cancelled, slot since reused)
     fail the generation or state check and are no-ops. *)
  if slot < Array.length t.timer_gens
     && t.timer_gens.(slot) = gen
     && t.timer_states.(slot) = Armed
  then begin
    t.timer_states.(slot) <- Cancelled;
    Stats.on_timer_cancelled t.stats
  end

let every t p ?phase ~period callback =
  check_pid t p;
  if period <= 0 then invalid_arg "Engine.every: period must be positive";
  let phase = match phase with Some d -> d | None -> period in
  let stopped = ref false in
  let current = ref None in
  let rec arm delay =
    current :=
      Some
        (set_timer t p ~delay (fun () ->
             if not !stopped then begin
               callback ();
               arm period
             end))
  in
  arm phase;
  fun () ->
    if not !stopped then begin
      stopped := true;
      (* Cancel the armed occurrence so its registry slot is accounted as
         cancelled rather than silently swallowed by the closure flag. *)
      Option.iter (cancel_timer t) !current
    end

let at t instant callback =
  if instant < t.now then invalid_arg "Engine.at: instant in the past";
  schedule_event t ~at:instant (Harness callback)

let note t p ~tag detail = Trace.record t.trace (Note { at = t.now; pid = p; tag; detail })

type span = {
  span_id : int;
  span_pid : Pid.t;
  span_component : string;
  span_name : string;
  opened_at : Sim_time.t;
  mutable closed : bool;
}

let begin_span t p ~component ~name =
  check_pid t p;
  let span_id = t.next_span in
  t.next_span <- span_id + 1;
  Trace.record t.trace
    (Span_begin { at = t.now; pid = p; component; span = span_id; name });
  { span_id; span_pid = p; span_component = component; span_name = name; opened_at = t.now;
    closed = false }

let end_span t s =
  if not s.closed then begin
    s.closed <- true;
    Trace.record t.trace
      (Span_end
         { at = t.now; pid = s.span_pid; component = s.span_component; span = s.span_id;
           name = s.span_name });
    Obs.Registry.observe t.m_span_duration (t.now - s.opened_at)
  end

let record_fd_view t ~component p ~suspected ~trusted =
  Trace.record t.trace (Fd_view { at = t.now; pid = p; component; suspected; trusted })

let dispatch t (envelope : Payload.envelope) =
  let { Payload.src; dst; component; tag; payload; sent_at; msg } = envelope in
  if not t.alive.(dst) then begin
    if not (Pid.equal src dst) then begin
      Trace.record t.trace
        (Drop { at = t.now; src; dst; msg; component; tag; reason = "destination crashed" });
      Stats.on_drop t.stats ~component ~tag
    end
  end
  else begin
    let handler =
      match Hashtbl.find_opt t.handlers component with
      | None -> None
      | Some slots -> slots.(dst)
    in
    match handler with
    | None ->
      failwith
        (Printf.sprintf "Engine: message for component %S at %s but no handler registered"
           component (Pid.to_string dst))
    | Some h ->
      if not (Pid.equal src dst) then begin
        Trace.record t.trace (Deliver { at = t.now; src; dst; msg; component; tag });
        Stats.on_deliver t.stats ~component ~tag;
        Obs.Registry.observe t.m_delivery_latency (t.now - sent_at)
      end;
      h ~src payload
  end

let execute t kind =
  match kind with
  | Deliver envelope -> dispatch t envelope
  | Timer_fire { pid; slot; gen; callback } ->
    if t.timer_gens.(slot) = gen then begin
      let state = t.timer_states.(slot) in
      (* Reclaim before running the callback: the callback may set new
         timers (the slot can be reused immediately — the bumped generation
         keeps old handles stale) and may read residency counters, which
         must not include this already-popped timer. *)
      reclaim_timer_slot t slot;
      if state = Armed && t.alive.(pid) then begin
        Stats.on_timer_fired t.stats;
        callback ()
      end
    end
  | Crash_now p ->
    if t.alive.(p) then begin
      t.alive.(p) <- false;
      Trace.record t.trace (Crash { at = t.now; pid = p })
    end
  | Harness f -> f ()

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (at, kind) ->
    assert (at >= t.now);
    t.now <- at;
    Stats.on_event_executed t.stats;
    execute t kind;
    true

let run_until t horizon =
  if horizon < t.now then invalid_arg "Engine.run_until: horizon in the past";
  let rec loop () =
    match Event_queue.next_time t.queue with
    | Some at when at <= horizon ->
      ignore (step t : bool);
      loop ()
    | Some _ | None -> ()
  in
  loop ();
  t.now <- horizon

let pending_events t = Event_queue.length t.queue

let compact t = Event_queue.shrink t.queue
