type event_kind =
  | Deliver of Payload.envelope
  | Crash_now of Pid.t
  | Harness of (unit -> unit)

(* Timer registry: a generation/slot table replacing the old
   [(int, unit) Hashtbl.t] of cancelled ids, which grew for the lifetime of
   the run (entries were never purged, so a soak run leaked one table entry
   per cancellation forever).

   Every armed timer owns one slot until the instant its deadline pops —
   fired, cancelled in the meantime, or orphaned by a crash, the pop
   reclaims the slot and bumps its generation.  A timer handle is
   (slot, generation); a stale handle (cancel after the event popped, or
   after the slot was reused) compares unequal on generation and is a no-op.
   Residency is therefore bounded by the number of in-flight timer events,
   not by the cumulative number of cancellations.

   The registry is a structure of arrays (gen / state / owner pid /
   callback / periodic control per slot) and pending slots are ordered by
   {!Timer_wheel}, not by the event heap: a timer occurrence is just a
   dense int riding intrusive int arrays, so the steady-state heartbeat
   path — pop, fire, re-arm — performs no minor-heap allocation at all.
   Aperiodic events (messages, crashes, harness callbacks) stay in the
   {!Event_queue} heap; [step] merges the two sources by
   (time, scheduling sequence), both drawing from the queue's single
   sequence counter, which reproduces exactly the order of the old single
   combined queue (HACKING.md, "Engine guarantees"). *)
type timer_state = Free | Armed | Cancelled

(* Re-arm control block for [every], shared by every occurrence of one
   periodic timer: the only allocation a periodic timer ever performs
   after setup is none — re-arming mutates this block and the registry
   columns in place.  [p_period = 0] marks the shared [no_ctl] sentinel
   used by one-shot timers ([every] validates period > 0). *)
type periodic = {
  mutable p_slot : int;
  mutable p_gen : int;
  p_period : Sim_time.t;
  mutable p_stopped : bool;
}

let no_ctl = { p_slot = -1; p_gen = -1; p_period = 0; p_stopped = false }
let no_callback () = ()

type t = {
  n : int;
  (* The sharded back-end, when the engine was created with more than
     one shard ([None] means k = 1 and every operation below takes the
     exact sequential code path — not a degenerate sharded one).  Set
     once by [create]; mutable only because the back-end needs the
     engine's metric handles, which exist after the record does. *)
  mutable shards : Shard.state option;
  mutable now : Sim_time.t;
  queue : event_kind Event_queue.t;
  timer_wheel : Timer_wheel.t;
  link : Link.t;
  rng : Rng.t;
  alive : bool array;
  handlers : (string, (src:Pid.t -> Payload.t -> unit) option array) Hashtbl.t;
  trace : Trace.t;
  stats : Stats.t;
  obs : Obs.Registry.t;
  m_delivery_latency : Obs.Registry.histogram;
  m_span_duration : Obs.Registry.histogram;
  m_queue_depth_hw : Obs.Registry.gauge;
  m_timer_residency_hw : Obs.Registry.gauge;
  m_timer_set : Obs.Registry.counter;
  m_timer_fired : Obs.Registry.counter;
  m_timer_cancelled : Obs.Registry.counter;
  m_timer_orphaned : Obs.Registry.counter;
  mutable next_msg : int;  (* message ids handed to Send/Deliver/Drop trace events *)
  mutable next_span : int;  (* span ids handed to Span_begin/Span_end *)
  mutable timer_gens : int array;
  mutable timer_states : timer_state array;
  mutable timer_pids : int array;
  mutable timer_cbs : (unit -> unit) array;
  mutable timer_ctl : periodic array;
  mutable timer_free : int array;  (* LIFO stack of reclaimed slots *)
  mutable timer_free_len : int;
  mutable timer_next_slot : int;  (* slots ever handed out; table high-water *)
  mutable timer_live : int;  (* Armed + Cancelled slots awaiting reclaim *)
  mutable timer_armed : int;  (* Armed slots only: the pending leg of the
                                 conservation law set = fired + cancelled +
                                 orphaned + armed *)
  mutable timer_gen_floor : int;  (* generation for slots (re)created after
                                     [compact] dropped table space: at least
                                     one past every generation the dropped
                                     slots ever handed out, so pre-compact
                                     handles can never match again *)
}

(* Sim-tick buckets shared by the engine's latency-shaped histograms: fine
   resolution around typical post-GST delays, coarse tail for pre-GST
   chaos and long protocol phases. *)
let tick_buckets = [ 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024; 4096 ]

let create ?(seed = 0) ?shards ~n ~link () =
  if n < 1 then invalid_arg "Engine.create: n must be >= 1";
  let k =
    match shards with
    | Some k ->
      if k < 1 then invalid_arg "Engine.create: shards must be >= 1";
      k
    | None -> Shard.default_shards ()
  in
  (* More shards than processes would only add empty shards; clamp so
     pid partitioning stays dense. *)
  let k = Stdlib.min k n in
  let obs = Obs.Registry.create () in
  let t =
  {
    n;
    shards = None;
    now = Sim_time.zero;
    queue = Event_queue.create ();
    timer_wheel = Timer_wheel.create ();
    link;
    rng = Rng.create ~seed;
    alive = Array.make n true;
    handlers = Hashtbl.create 8;
    trace = Trace.create ();
    stats = Stats.create ();
    obs;
    m_delivery_latency =
      Obs.Registry.histogram obs ~name:"engine.delivery_latency" ~buckets:tick_buckets;
    m_span_duration = Obs.Registry.histogram obs ~name:"engine.span_duration" ~buckets:tick_buckets;
    m_queue_depth_hw = Obs.Registry.gauge obs ~name:"engine.queue_depth_high_water";
    m_timer_residency_hw = Obs.Registry.gauge obs ~name:"engine.timer_residency_high_water";
    m_timer_set = Obs.Registry.counter obs ~name:"engine.timer_set_total";
    m_timer_fired = Obs.Registry.counter obs ~name:"engine.timer_fired_total";
    m_timer_cancelled = Obs.Registry.counter obs ~name:"engine.timer_cancelled_total";
    m_timer_orphaned = Obs.Registry.counter obs ~name:"engine.timer_orphaned_total";
    next_msg = 0;
    next_span = 0;
    timer_gens = [||];
    timer_states = [||];
    timer_pids = [||];
    timer_cbs = [||];
    timer_ctl = [||];
    timer_free = [||];
    timer_free_len = 0;
    timer_next_slot = 0;
    timer_live = 0;
    timer_armed = 0;
    timer_gen_floor = 0;
  }
  in
  if k > 1 then
    t.shards <-
      Some
        (Shard.create ~k ~n ~link ~rng:t.rng ~alive:t.alive ~handlers:t.handlers
           ~trace:t.trace ~stats:t.stats ~obs:t.obs
           ~m_delivery_latency:t.m_delivery_latency ~m_span_duration:t.m_span_duration
           ~m_queue_depth_hw:t.m_queue_depth_hw ~m_timer_residency_hw:t.m_timer_residency_hw
           ~m_timer_set:t.m_timer_set ~m_timer_fired:t.m_timer_fired
           ~m_timer_cancelled:t.m_timer_cancelled ~m_timer_orphaned:t.m_timer_orphaned ());
  t

let n t = t.n
let now t = match t.shards with None -> t.now | Some st -> Shard.now st
let shard_count t = match t.shards with None -> 1 | Some st -> Shard.k st

let window_stats t =
  match t.shards with
  | None -> (0, 0, 0, 0)
  | Some st ->
    (Shard.windows st, Shard.null_windows st, Shard.direct_steps st, Shard.shard_windows st)
let profiler_windows t =
  match t.shards with None -> [] | Some st -> Shard.profile st

let trace t = t.trace
let stats t = t.stats
let obs t = t.obs
let link_description t = t.link.Link.describe

let check_pid t p =
  if not (Pid.is_valid ~n:t.n p) then invalid_arg "Engine: invalid process id"

let is_alive t p =
  check_pid t p;
  t.alive.(p)

let alive_processes t = List.filter (fun p -> t.alive.(p)) (Pid.all ~n:t.n)

(* Depth of the logical event queue: heap events plus pending timer cells.
   Timer events used to live in the same heap, so this sum equals the old
   single-queue length at every instant — the queue high-water mark is
   unchanged by the wheel split. *)
let[@race.seq_root] note_event_depth t =
  let depth = Event_queue.length t.queue + t.timer_live in
  Stats.note_queue_depth t.stats ~depth;
  Obs.Registry.set_max t.m_queue_depth_hw depth

(* Every enqueue goes through here so the queue high-water mark in [Stats]
   is exact, not sampled. *)
let schedule_event t ~at kind =
  Event_queue.schedule t.queue ~at kind;
  note_event_depth t

let[@race.seq_root] schedule_crash t p ~at =
  check_pid t p;
  match t.shards with
  | Some st -> Shard.schedule_crash st p ~at
  | None ->
    if at < t.now then invalid_arg "Engine.schedule_crash: instant in the past";
    schedule_event t ~at (Crash_now p)

let register t ~component p handler =
  check_pid t p;
  (match t.shards with
  | Some st when Shard.in_window st ->
    invalid_arg "Engine.register: forbidden inside a parallel window"
  | _ -> ());
  let slots =
    match Hashtbl.find_opt t.handlers component with
    | Some slots -> slots
    | None ->
      let slots = Array.make t.n None in
      Hashtbl.add t.handlers component slots;
      slots
  in
  match slots.(p) with
  | Some _ ->
    invalid_arg
      (Printf.sprintf "Engine.register: duplicate handler for component %S at %s" component
         (Pid.to_string p))
  | None -> slots.(p) <- Some handler

let[@race.seq_root] send t ~component ~tag ~src ~dst payload =
  check_pid t src;
  check_pid t dst;
  match t.shards with
  | Some st -> Shard.send st ~component ~tag ~src ~dst payload
  | None ->
  if t.alive.(src) then begin
    if Pid.equal src dst then
      (* Local delivery: immediate, not a network message, not counted,
         not traced (hence no message id). *)
      schedule_event t ~at:t.now
        (Deliver { Payload.src; dst; component; tag; payload; sent_at = t.now; msg = -1 })
    else begin
      let msg = t.next_msg in
      t.next_msg <- msg + 1;
      let envelope = { Payload.src; dst; component; tag; payload; sent_at = t.now; msg } in
      Trace.record t.trace (Send { at = t.now; src; dst; msg; component; tag });
      Stats.on_send t.stats ~component ~tag;
      match t.link.Link.fate ~rng:t.rng ~now:t.now ~src ~dst with
      | Link.Drop ->
        Trace.record t.trace
          (Drop { at = t.now; src; dst; msg; component; tag; reason = "lossy" });
        Stats.on_drop t.stats ~component ~tag
      | Link.Deliver_at at ->
        assert (at >= t.now);
        schedule_event t ~at (Deliver envelope)
    end
  end

let send_to_all_others t ~component ~tag ~src payload =
  List.iter (fun dst -> send t ~component ~tag ~src ~dst payload) (Pid.others ~n:t.n src)

let send_to_all t ~component ~tag ~src payload =
  List.iter (fun dst -> send t ~component ~tag ~src ~dst payload) (Pid.all ~n:t.n)

(* [tshard] is the owning shard id in sharded mode (0 sequentially):
   slot/gen are shard-local there. *)
type timer = { slot : int; gen : int; tshard : int }

let timer_residency t =
  match t.shards with None -> t.timer_live | Some st -> Shard.timer_residency st

let timer_table_capacity t =
  match t.shards with None -> t.timer_next_slot | Some st -> Shard.timer_table_capacity st

let timer_armed t = match t.shards with None -> t.timer_armed | Some st -> Shard.timer_armed st

let[@alloc.allow bulk
     "amortized free-list growth: doubles capacity, so per-event cost is O(1) \
      and a steady-state run never takes this branch"] free_push t slot =
  let cap = Array.length t.timer_free in
  if t.timer_free_len = cap then begin
    let free' = Array.make (Stdlib.max 16 (2 * cap)) 0 in
    Array.blit t.timer_free 0 free' 0 cap;
    t.timer_free <- free'
  end;
  t.timer_free.(t.timer_free_len) <- slot;
  t.timer_free_len <- t.timer_free_len + 1

let[@alloc.allow bulk
     "amortized registry growth: the five parallel columns double together, so \
      per-event cost is O(1) and a steady-state run never takes this branch"]
    alloc_timer_slot t =
  if t.timer_free_len > 0 then begin
    (* LIFO, like the old cons-list free list: the slot-reuse sequence — and
       with it the capacity column of e18 — is unchanged. *)
    t.timer_free_len <- t.timer_free_len - 1;
    t.timer_free.(t.timer_free_len)
  end
  else begin
    let capacity = Array.length t.timer_gens in
    if t.timer_next_slot = capacity then begin
      let capacity' = Stdlib.max 16 (2 * capacity) in
      let gens' = Array.make capacity' t.timer_gen_floor in
      let states' = Array.make capacity' Free in
      let pids' = Array.make capacity' 0 in
      let cbs' = Array.make capacity' no_callback in
      let ctl' = Array.make capacity' no_ctl in
      Array.blit t.timer_gens 0 gens' 0 capacity;
      Array.blit t.timer_states 0 states' 0 capacity;
      Array.blit t.timer_pids 0 pids' 0 capacity;
      Array.blit t.timer_cbs 0 cbs' 0 capacity;
      Array.blit t.timer_ctl 0 ctl' 0 capacity;
      t.timer_gens <- gens';
      t.timer_states <- states';
      t.timer_pids <- pids';
      t.timer_cbs <- cbs';
      t.timer_ctl <- ctl';
      Timer_wheel.ensure_capacity t.timer_wheel capacity'
    end;
    let slot = t.timer_next_slot in
    t.timer_next_slot <- slot + 1;
    slot
  end

let reclaim_timer_slot t slot =
  t.timer_gens.(slot) <- t.timer_gens.(slot) + 1;
  t.timer_states.(slot) <- Free;
  (* Release the callback and control references: the registry must not
     keep a fired timer's closure alive until the slot happens to be
     reused (the old heap-backed scheme dropped them at event pop). *)
  t.timer_cbs.(slot) <- no_callback;
  t.timer_ctl.(slot) <- no_ctl;
  free_push t slot;
  t.timer_live <- t.timer_live - 1;
  Stats.on_timer_reclaimed t.stats

(* The arm path shared by [set_timer] and the periodic re-arm.  Returns the
   slot index (not a handle record) so the re-arm fast path stays
   allocation-free; the accounting sequence — residency note, obs
   high-water, set counter, depth note — is the exact sequence the old
   heap-backed [set_timer] performed. *)
let[@alloc.zero] arm_timer t p ~delay callback ctl =
  if delay < 0 then invalid_arg "Engine.set_timer: negative delay";
  let slot = alloc_timer_slot t in
  t.timer_states.(slot) <- Armed;
  t.timer_pids.(slot) <- p;
  t.timer_cbs.(slot) <- callback;
  t.timer_ctl.(slot) <- ctl;
  t.timer_live <- t.timer_live + 1;
  t.timer_armed <- t.timer_armed + 1;
  Stats.note_timer_residency t.stats ~residency:t.timer_live;
  Obs.Registry.set_max t.m_timer_residency_hw t.timer_live;
  Stats.on_timer_set t.stats;
  Obs.Registry.incr t.m_timer_set;
  let seq = Event_queue.alloc_seq t.queue in
  Timer_wheel.add t.timer_wheel ~cell:slot ~deadline:(t.now + delay) ~seq;
  note_event_depth t;
  slot

let[@race.seq_root] set_timer t p ~delay callback =
  check_pid t p;
  match t.shards with
  | Some st ->
    let slot, gen, sid = Shard.set_timer st p ~delay callback in
    { slot; gen; tshard = sid }
  | None ->
    let slot = arm_timer t p ~delay callback no_ctl in
    { slot; gen = t.timer_gens.(slot); tshard = 0 }

let[@race.seq_root] cancel_slot t slot gen =
  (* Stale handles (already fired, already cancelled, slot since reused)
     fail the generation or state check and are no-ops. *)
  if slot >= 0
     && slot < Array.length t.timer_gens
     && t.timer_gens.(slot) = gen
     && t.timer_states.(slot) = Armed
  then begin
    (* The cell stays parked in the wheel until its deadline pops — which
       is when the slot is reclaimed, exactly as when timer events rode
       the heap. *)
    t.timer_states.(slot) <- Cancelled;
    t.timer_armed <- t.timer_armed - 1;
    Stats.on_timer_cancelled t.stats;
    Obs.Registry.incr t.m_timer_cancelled
  end

let cancel_timer t { slot; gen; tshard } =
  match t.shards with
  | Some st -> Shard.cancel st ~sid:tshard ~slot ~gen
  | None -> cancel_slot t slot gen

let[@race.seq_root] every t p ?phase ~period callback =
  check_pid t p;
  match t.shards with
  | Some st -> Shard.every st p ?phase ~period callback
  | None ->
  if period <= 0 then invalid_arg "Engine.every: period must be positive";
  let phase = match phase with Some d -> d | None -> period in
  let ctl = { p_slot = 0; p_gen = 0; p_period = period; p_stopped = false } in
  let slot = arm_timer t p ~delay:phase callback ctl in
  ctl.p_slot <- slot;
  ctl.p_gen <- t.timer_gens.(slot);
  fun () ->
    if not ctl.p_stopped then begin
      ctl.p_stopped <- true;
      (* Cancel the armed occurrence so its registry slot is accounted as
         cancelled rather than silently swallowed by the stop flag. *)
      cancel_slot t ctl.p_slot ctl.p_gen
    end

let[@race.seq_root] at t instant callback =
  match t.shards with
  | Some st -> Shard.at st instant callback
  | None ->
    if instant < t.now then invalid_arg "Engine.at: instant in the past";
    schedule_event t ~at:instant (Harness callback)

(* [now t] (not [t.now]) in the record calls below: in sharded mode it is
   the executing shard's clock, and the trace sink routes the body into
   that shard's op log for barrier replay. *)
let[@race.seq_root] note t p ~tag detail = Trace.record t.trace (Note { at = now t; pid = p; tag; detail })

type span = {
  mutable span_id : int;
      (* Mutable for sharded in-window spans: the globally ordered id is
         assigned at barrier replay, after this record exists. *)
  span_pid : Pid.t;
  span_component : string;
  span_name : string;
  opened_at : Sim_time.t;
  mutable closed : bool;
}

let[@race.seq_root] begin_span t p ~component ~name =
  check_pid t p;
  match t.shards with
  | None ->
    let span_id = t.next_span in
    t.next_span <- span_id + 1;
    Trace.record t.trace
      (Span_begin { at = t.now; pid = p; component; span = span_id; name });
    { span_id; span_pid = p; span_component = component; span_name = name; opened_at = t.now;
      closed = false }
  | Some st ->
    let at = Shard.now st in
    let s =
      { span_id = -1; span_pid = p; span_component = component; span_name = name;
        opened_at = at; closed = false }
    in
    let log () =
      (* Runs at the global point the span opened: the id allocation and
         the trace record land in exact sequential order. *)
      let id = Shard.alloc_span st in
      s.span_id <- id;
      Trace.record t.trace (Span_begin { at; pid = p; component; span = id; name })
    in
    if Shard.in_window st then Shard.log_fn st log else log ();
    s

let[@race.seq_root] end_span t s =
  if not s.closed then begin
    s.closed <- true;
    match t.shards with
    | None ->
      Trace.record t.trace
        (Span_end
           { at = t.now; pid = s.span_pid; component = s.span_component; span = s.span_id;
             name = s.span_name });
      Obs.Registry.observe t.m_span_duration (t.now - s.opened_at)
    | Some st ->
      let at = Shard.now st in
      let log () =
        (* [s.span_id] is read here, at replay: the begin closure has
           already run, so the id is the reconciled one. *)
        Trace.record t.trace
          (Span_end
             { at; pid = s.span_pid; component = s.span_component; span = s.span_id;
               name = s.span_name });
        Obs.Registry.observe t.m_span_duration (at - s.opened_at)
      in
      if Shard.in_window st then Shard.log_fn st log else log ()
  end

(* Deferred observer effects: run [fn] at this event's position in the
   sequential order.  A sequential engine runs it immediately; inside a
   sharded window it is appended to the executing shard's op log and
   replayed on the coordinating domain at the barrier.  Client-side
   observer state shared across pids (e.g. a broadcast's per-instance
   span bookkeeping) must be mutated through this — a live mutation from
   a handler would race across shard domains and land trace effects at a
   wall-clock-dependent position. *)
let[@race.seq_root] deferred t fn =
  match t.shards with
  | Some st when Shard.in_window st -> Shard.log_fn st fn
  | _ -> fn ()

let[@race.seq_root] record_fd_view t ~component p ~suspected ~trusted =
  Trace.record t.trace (Fd_view { at = now t; pid = p; component; suspected; trusted })

let dispatch t (envelope : Payload.envelope) =
  let { Payload.src; dst; component; tag; payload; sent_at; msg } = envelope in
  if not t.alive.(dst) then begin
    if not (Pid.equal src dst) then begin
      Trace.record t.trace
        (Drop { at = t.now; src; dst; msg; component; tag; reason = "destination crashed" });
      Stats.on_drop t.stats ~component ~tag
    end
  end
  else begin
    let handler =
      match Hashtbl.find_opt t.handlers component with
      | None -> None
      | Some slots -> slots.(dst)
    in
    match handler with
    | None ->
      failwith
        (Printf.sprintf "Engine: message for component %S at %s but no handler registered"
           component (Pid.to_string dst))
    | Some h ->
      if not (Pid.equal src dst) then begin
        Trace.record t.trace (Deliver { at = t.now; src; dst; msg; component; tag });
        Stats.on_deliver t.stats ~component ~tag;
        Obs.Registry.observe t.m_delivery_latency (t.now - sent_at)
      end;
      h ~src payload
  end

(* A timer cell popped at its deadline.  The reclaim-before-dispatch order
   matches the old heap-backed path: the callback may set new timers (the
   slot can be reused immediately — the bumped generation keeps old
   handles stale) and may read residency counters, which must not include
   this already-popped timer.

   Periodic semantics replicate the old closure chain exactly, including
   the stop-from-inside-the-callback corner: the stop flag is tested
   before the callback runs, so a stop issued by the callback itself still
   re-arms one final occurrence, which then fires as a no-op (counted
   fired, callback skipped, chain ends). *)
let[@alloc.zero] execute_timer t cell =
  let state = t.timer_states.(cell) in
  let pid = t.timer_pids.(cell) in
  let cb = t.timer_cbs.(cell) in
  let ctl = t.timer_ctl.(cell) in
  reclaim_timer_slot t cell;
  match state with
  | Armed ->
    t.timer_armed <- t.timer_armed - 1;
    if t.alive.(pid) then begin
      Stats.on_timer_fired t.stats;
      Obs.Registry.incr t.m_timer_fired;
      if Sim_time.equal ctl.p_period Sim_time.zero then
        (cb ()
        [@alloc.allow extern
            "the callback belongs to the registering component: its allocation is \
             its own (the e20 dynamic gate charges it to the run), not the timer \
             plumbing's"])
      else if not ctl.p_stopped then begin
        (cb ()
        [@alloc.allow extern
            "the callback belongs to the registering component: its allocation is \
             its own (the e20 dynamic gate charges it to the run), not the timer \
             plumbing's"]);
        (* Re-arm after the callback, so the callback's own sends and
           timers take their scheduling sequence numbers (and registry
           slots) first — the order the old closure chain produced. *)
        let slot = arm_timer t pid ~delay:ctl.p_period cb ctl in
        ctl.p_slot <- slot;
        ctl.p_gen <- t.timer_gens.(slot)
      end
    end
    else begin
      (* Orphaned: the owner crashed between arm and deadline. *)
      Stats.on_timer_orphaned t.stats;
      Obs.Registry.incr t.m_timer_orphaned
    end
  | Cancelled -> ()
  | Free -> assert false

let execute t kind =
  match kind with
  | Deliver envelope -> dispatch t envelope
  | Crash_now p ->
    if t.alive.(p) then begin
      t.alive.(p) <- false;
      Trace.record t.trace (Crash { at = t.now; pid = p })
    end
  | Harness f -> f ()

(* Merge the timer wheel and the event heap by (time, scheduling
   sequence).  Sequence numbers are globally unique (one counter feeds
   both sources), so the [<=] is really a [<] — the "wheel wins ties"
   clause is unreachable, but encodes the documented tie-break.  The
   timer branch allocates nothing. *)
let[@alloc.zero] seq_step t =
  let have_timer = not (Timer_wheel.is_empty t.timer_wheel) in
  let have_event = not (Event_queue.is_empty t.queue) in
  if not (have_timer || have_event) then false
  else begin
    let timer_first =
      have_timer
      && ((not have_event)
         ||
         let wt = Timer_wheel.next_at t.timer_wheel in
         let ht = Event_queue.next_at t.queue in
         if wt < ht then true
         else if ht < wt then false
         else Timer_wheel.next_seq t.timer_wheel <= Event_queue.next_seq t.queue)
    in
    if timer_first then begin
      let at = Timer_wheel.next_at t.timer_wheel in
      let cell = Timer_wheel.pop t.timer_wheel in
      assert (at >= t.now);
      t.now <- at;
      Stats.on_event_executed t.stats;
      execute_timer t cell
    end
    else begin
      let at = Event_queue.next_at t.queue in
      let kind = Event_queue.pop_exn t.queue in
      assert (at >= t.now);
      t.now <- at;
      Stats.on_event_executed t.stats;
      (execute t kind
      [@alloc.allow extern
          "aperiodic dispatch leg: trace records, handler lookup and harness \
           callbacks may allocate — the zero-alloc contract covers the timer \
           leg, and e20 measures both"])
    end;
    true
  end

(* Earliest pending instant across both sources; [max_int] when idle.
   Option-free so the run loop does not allocate per event. *)
let next_instant t =
  let wt = if Timer_wheel.is_empty t.timer_wheel then max_int else Timer_wheel.next_at t.timer_wheel in
  let ht = if Event_queue.is_empty t.queue then max_int else Event_queue.next_at t.queue in
  if wt < ht then wt else ht

let[@race.seq_root] step t =
  match t.shards with None -> seq_step t | Some st -> Shard.step st

let rec run_loop t horizon =
  if next_instant t <= horizon then begin
    ignore (seq_step t : bool);
    run_loop t horizon
  end

let run_until t horizon =
  match t.shards with
  | Some st -> Shard.run_until st horizon
  | None ->
    if horizon < t.now then invalid_arg "Engine.run_until: horizon in the past";
    run_loop t horizon;
    t.now <- horizon

let pending_events t =
  match t.shards with
  | None -> Event_queue.length t.queue + t.timer_live
  | Some st -> Shard.pending_events st

let compact t =
  match t.shards with
  | Some st -> Shard.compact st
  | None ->
  Event_queue.shrink t.queue;
  (* Timer-table live high-water: one past the highest non-[Free] slot.
     Pending cells are never [Free], so everything above is absent from
     the wheel too and all five registry columns can drop together. *)
  let live_cap = ref 0 in
  for s = 0 to t.timer_next_slot - 1 do
    if t.timer_states.(s) <> Free then live_cap := s + 1
  done;
  let cap = !live_cap in
  if cap < t.timer_next_slot then begin
    (* Handles into the dropped region must stay stale if the table grows
       back: every dropped slot was reclaimed (it is [Free]), so its
       generation already exceeds all outstanding handles — future slots
       start at the maximum of those. *)
    let floor = ref t.timer_gen_floor in
    for s = cap to t.timer_next_slot - 1 do
      if t.timer_gens.(s) > !floor then floor := t.timer_gens.(s)
    done;
    t.timer_gen_floor <- !floor;
    t.timer_gens <- Array.sub t.timer_gens 0 cap;
    t.timer_states <- Array.sub t.timer_states 0 cap;
    t.timer_pids <- Array.sub t.timer_pids 0 cap;
    t.timer_cbs <- Array.sub t.timer_cbs 0 cap;
    t.timer_ctl <- Array.sub t.timer_ctl 0 cap;
    t.timer_next_slot <- cap;
    (* Keep only free-stack entries that survived, preserving LIFO order
       so the slot-reuse sequence is unaffected. *)
    let kept = ref 0 in
    for i = 0 to t.timer_free_len - 1 do
      let s = t.timer_free.(i) in
      if s < cap then begin
        t.timer_free.(!kept) <- s;
        incr kept
      end
    done;
    t.timer_free_len <- !kept;
    let free_target = Stdlib.max 16 t.timer_free_len in
    if Array.length t.timer_free > free_target then
      t.timer_free <- Array.sub t.timer_free 0 free_target;
    Timer_wheel.shrink_capacity t.timer_wheel cap
  end
