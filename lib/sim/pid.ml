type t = int

let compare = Int.compare
let equal = Int.equal
let hash p = p

let pp ppf p = Format.fprintf ppf "p%d" (p + 1)
let to_string p = Format.asprintf "%a" pp p

let all ~n = List.init n Fun.id
let others ~n p = List.filter (fun q -> q <> p) (all ~n)

let next_in_ring ~n p = (p + 1) mod n
let prev_in_ring ~n p = (p + n - 1) mod n

let is_valid ~n p = p >= 0 && p < n

module Set = Set.Make (Int)
module Map = Map.Make (Int)

let set_of_list ps = Set.of_list ps

let pp_set ppf s =
  let elts = Set.elements s in
  Format.fprintf ppf "{%a}" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp) elts
