(** Timestamped event queue.

    A thin layer over {!Heap} that orders entries by (time, insertion
    sequence): events scheduled for the same instant fire in the order they
    were scheduled, which makes runs deterministic. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val schedule : 'a t -> at:Sim_time.t -> 'a -> unit
(** Enqueue an event to fire at [at].  [at] may equal the current pop
    frontier (same-instant follow-up events are allowed) but scheduling in
    the past of an already-popped instant is the caller's bug; the queue
    itself does not check monotonicity. *)

val next_time : 'a t -> Sim_time.t option
(** Timestamp of the earliest pending event. *)

val pop : 'a t -> (Sim_time.t * 'a) option
(** Remove and return the earliest pending event. *)

val shrink : 'a t -> unit
(** Release backing-store slack left behind by a scheduling burst; never
    drops events.  Useful on long-lived engines between load phases. *)

val clear : 'a t -> unit
