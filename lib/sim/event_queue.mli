(** Timestamped event queue.

    A thin layer over {!Heap} that orders entries by (time, insertion
    sequence): events scheduled for the same instant fire in the order they
    were scheduled, which makes runs deterministic.

    The sequence counter is the engine-global scheduling order.  Timer
    events no longer live in this queue (they live in {!Timer_wheel}), but
    they draw their sequence numbers from the same counter via
    {!alloc_seq}, so "fire in the order they were scheduled" keeps holding
    across both event sources when the engine merges them by
    (time, sequence). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val alloc_seq : 'a t -> int
(** Hand out the next scheduling sequence number.  [schedule] consumes one
    per call; the engine consumes one per timer arm so that wheel and queue
    share a single total scheduling order. *)

val schedule : 'a t -> at:Sim_time.t -> 'a -> unit
(** Enqueue an event to fire at [at].  [at] may equal the current pop
    frontier (same-instant follow-up events are allowed) but scheduling in
    the past of an already-popped instant is the caller's bug; the queue
    itself does not check monotonicity.  Consumes one {!alloc_seq} ticket. *)

val schedule_at_seq : 'a t -> at:Sim_time.t -> seq:int -> 'a -> unit
(** Enqueue with an externally allocated sequence number, leaving this
    queue's counter untouched.  The sharded engine ({!Shard}) uses this to
    file barrier-reconciled deliveries into a shard's local queue under the
    global scheduling order. *)

val remap_seqs : 'a t -> (int -> int) -> unit
(** Rewrite every pending entry's sequence number in place.  [f] must be
    strictly order-preserving on the pending seqs relative to their (time,
    seq) ranking, so the heap invariant survives the in-place update (the
    sharded engine's provisional-to-global renumbering is: identity below
    the provisional base, a monotone window map above it). *)

val next_time : 'a t -> Sim_time.t option
(** Timestamp of the earliest pending event. *)

val next_at : 'a t -> Sim_time.t
(** [next_time] without the [option] box (allocation-free peek for the
    engine's merge loop).  Raises [Invalid_argument] when empty — guard
    with {!is_empty}. *)

val next_seq : 'a t -> int
(** Sequence number of the earliest pending event (the engine's wheel/heap
    tie-break key).  Raises [Invalid_argument] when empty. *)

val pop : 'a t -> (Sim_time.t * 'a) option
(** Remove and return the earliest pending event. *)

val pop_exn : 'a t -> 'a
(** Remove and return the earliest pending event's payload without boxing
    the result (the caller has already read {!next_at}).  Raises
    [Invalid_argument] when empty. *)

val shrink : 'a t -> unit
(** Release backing-store slack left behind by a scheduling burst; never
    drops events.  Useful on long-lived engines between load phases. *)

val clear : 'a t -> unit
