(** Hierarchical timer wheel: the engine's periodic-timer hot path.

    Orders the timer registry's dense integer cells by
    (deadline, scheduling sequence) with O(1) amortised insert and pop and
    {b no minor-heap allocation} on the steady-state path — no heap node,
    no closure, no boxed event per timer occurrence.  The engine keeps
    {!Event_queue} for aperiodic events (messages, crashes, harness
    callbacks) and merges the two sources by (time, sequence); both draw
    sequence numbers from the queue's single counter, so the merged order
    is exactly the order a single combined queue would have produced
    (HACKING.md, "Engine guarantees").

    Layout: {!levels} levels of {!slots_per_level} power-of-two buckets
    (level [k] spans deltas [[32{^k}, 32{^k+1})]), per-level occupancy
    bitmaps, intrusive singly-linked slot lists threaded through one int
    per cell, and an overflow list for deadlines at least {!span} ticks
    ahead.  Cascading is lazy: the cursor advances only at {!pop}, to the
    cached minimum deadline, re-placing just the slot containing the new
    cursor position at each level.

    The wheel never removes a cell before its deadline: cancellation marks
    the cell in the engine's registry and the cell still pops on time (and
    is reclaimed there), which matches the registry's reclaim-at-pop
    accounting and keeps the slot lists singly linked. *)

type t

val slot_bits : int
val slots_per_level : int  (** 32 *)

val levels : int  (** 6 *)

val span : int
(** [slots_per_level ^ levels] — deadlines at least this far ahead of the
    cursor park in the overflow list until the cursor gets near. *)

val create : unit -> t

val cardinal : t -> int
(** Pending cells (inserted, not yet popped — armed or cancelled alike). *)

val is_empty : t -> bool

val capacity : t -> int
(** Per-cell column capacity (>= the largest cell index ever added). *)

val ensure_capacity : t -> int -> unit
(** Grow the per-cell columns to hold cell indices below the argument.
    Amortised doubling; {!add} also grows on demand. *)

val shrink_capacity : t -> int -> unit
(** Drop the per-cell columns down to the argument.  The caller guarantees
    no cell at or above it is pending ({!Engine.compact} shrinks to the
    registry's live high-water, and pending cells are never [Free]). *)

val add : t -> cell:int -> deadline:Sim_time.t -> seq:int -> unit
(** Insert [cell] to pop at [deadline], ordered among equal deadlines by
    [seq] (which must come from the engine-global
    {!Event_queue.alloc_seq} counter and therefore be fresh and monotone).
    A cell must not be re-added before it pops.  Raises
    [Invalid_argument] if [deadline] is behind an already-popped one. *)

val next_at : t -> Sim_time.t
(** Earliest pending deadline (exact, O(1) — maintained cache).  Raises
    [Invalid_argument] when empty; guard with {!is_empty}. *)

val next_seq : t -> int
(** Sequence number of the earliest pending cell — the merge tie-break
    key.  Raises [Invalid_argument] when empty. *)

val pop : t -> int
(** Remove and return the cell with the least (deadline, seq).  Raises
    [Invalid_argument] when empty. *)

val remap_seqs : t -> (int -> int) -> unit
(** Rewrite every pending cell's sequence number in place (including the
    cached minima).  [f] must be order-preserving on the pending seqs; the
    sharded engine uses this at window barriers to replace provisional
    window-local seqs with their reconciled global values.  Raises
    [Invalid_argument] if called while a firing batch is mid-drain (cannot
    happen at a barrier: windows always drain whole batches). *)
