type fate =
  | Drop
  | Deliver_at of Sim_time.t

type t = {
  describe : string;
  fate : rng:Rng.t -> now:Sim_time.t -> src:Pid.t -> dst:Pid.t -> fate;
}

let reliable ?(min_delay = 1) ?(max_delay = 8) () =
  assert (min_delay >= 0 && max_delay >= min_delay);
  let fate ~rng ~now ~src:_ ~dst:_ =
    Deliver_at (now + Rng.int_in_range rng ~lo:min_delay ~hi:max_delay)
  in
  { describe = Printf.sprintf "reliable[%d,%d]" min_delay max_delay; fate }

let synchronous ~delay =
  assert (delay >= 0);
  let fate ~rng:_ ~now ~src:_ ~dst:_ = Deliver_at (now + delay) in
  { describe = Printf.sprintf "synchronous[%d]" delay; fate }

let partially_synchronous ?(min_delay = 1) ?pre_gst_max ~gst ~delta () =
  assert (delta >= min_delay);
  let pre_gst_max = match pre_gst_max with Some m -> m | None -> 50 * delta in
  let fate ~rng ~now ~src:_ ~dst:_ =
    let bound = Sim_time.max now gst + delta in
    if now >= gst then Deliver_at (Sim_time.min bound (now + Rng.int_in_range rng ~lo:min_delay ~hi:delta))
    else begin
      let raw = now + Rng.int_in_range rng ~lo:min_delay ~hi:(Stdlib.max min_delay pre_gst_max) in
      Deliver_at (Sim_time.min raw bound)
    end
  in
  { describe = Printf.sprintf "partially-synchronous[gst=%d,delta=%d]" gst delta; fate }

let fair_lossy ~drop_probability ~underlying =
  assert (drop_probability >= 0.0 && drop_probability < 1.0);
  let fate ~rng ~now ~src ~dst =
    if Rng.bool rng ~p:drop_probability then Drop else underlying.fate ~rng ~now ~src ~dst
  in
  { describe = Printf.sprintf "fair-lossy[p=%.2f over %s]" drop_probability underlying.describe;
    fate }

let growing_blackouts ?(min_delay = 1) ?(max_delay = 8) ?(open_window = 60)
    ?(initial_blackout = 60) ?(blackout_growth = 60) () =
  assert (min_delay >= 0 && max_delay >= min_delay);
  assert (open_window > 0 && initial_blackout >= 0 && blackout_growth >= 0);
  (* Cycles of [open_window] ticks of normal delivery followed by a
     blackout whose length grows by [blackout_growth] each cycle. *)
  let in_blackout now =
    let rec walk start k =
      let blackout = initial_blackout + (k * blackout_growth) in
      let cycle_end = start + open_window + blackout in
      if now < start + open_window then false
      else if now < cycle_end then true
      else walk cycle_end (k + 1)
    in
    walk 0 0
  in
  let fate ~rng ~now ~src:_ ~dst:_ =
    if in_blackout now then Drop
    else Deliver_at (now + Rng.int_in_range rng ~lo:min_delay ~hi:max_delay)
  in
  {
    describe =
      Printf.sprintf "growing-blackouts[open=%d,start=%d,+%d]" open_window initial_blackout
        blackout_growth;
    fate;
  }

let ever_slower ?(min_delay = 1) ~slowdown_divisor () =
  assert (min_delay >= 0 && slowdown_divisor > 0);
  let fate ~rng ~now ~src:_ ~dst:_ =
    let jitter = Rng.int_in_range rng ~lo:0 ~hi:(Stdlib.max 1 (now / (4 * slowdown_divisor))) in
    Deliver_at (now + min_delay + (now / slowdown_divisor) + jitter)
  in
  { describe = Printf.sprintf "ever-slower[/%d]" slowdown_divisor; fate }

let route ~describe select =
  let fate ~rng ~now ~src ~dst = (select ~src ~dst).fate ~rng ~now ~src ~dst in
  { describe; fate }

let never = { describe = "never"; fate = (fun ~rng:_ ~now:_ ~src:_ ~dst:_ -> Drop) }
