type fate =
  | Drop
  | Deliver_at of Sim_time.t

type t = {
  describe : string;
  fate : rng:Rng.t -> now:Sim_time.t -> src:Pid.t -> dst:Pid.t -> fate;
  min_delay : int;
}

(* Conservative lookahead for the sharded engine (Shard): every fate this
   link can return is [Drop] or [Deliver_at d] with [d >= now + min_delay].
   [0] is always sound (it just forces the sharded engine into sequential
   merging), so custom fates built as record literals default to it. *)
let min_delay_bound t = t.min_delay

(* Drops everything: no delivery ever undercuts any window, so the
   lookahead is effectively infinite.  Kept far from [max_int] so window
   arithmetic ([t + lookahead]) cannot overflow. *)
let unbounded_lookahead = max_int / 4

let reliable ?(min_delay = 1) ?(max_delay = 8) () =
  assert (min_delay >= 0 && max_delay >= min_delay);
  let fate ~rng ~now ~src:_ ~dst:_ =
    Deliver_at (now + Rng.int_in_range rng ~lo:min_delay ~hi:max_delay)
  in
  { describe = Printf.sprintf "reliable[%d,%d]" min_delay max_delay; fate; min_delay }

let synchronous ~delay =
  assert (delay >= 0);
  let fate ~rng:_ ~now ~src:_ ~dst:_ = Deliver_at (now + delay) in
  { describe = Printf.sprintf "synchronous[%d]" delay; fate; min_delay = delay }

let partially_synchronous ?(min_delay = 1) ?pre_gst_max ~gst ~delta () =
  assert (delta >= min_delay);
  let pre_gst_max = match pre_gst_max with Some m -> m | None -> 50 * delta in
  let fate ~rng ~now ~src:_ ~dst:_ =
    let bound = Sim_time.max now gst + delta in
    if now >= gst then Deliver_at (Sim_time.min bound (now + Rng.int_in_range rng ~lo:min_delay ~hi:delta))
    else begin
      let raw = now + Rng.int_in_range rng ~lo:min_delay ~hi:(Stdlib.max min_delay pre_gst_max) in
      Deliver_at (Sim_time.min raw bound)
    end
  in
  (* Both regimes deliver at >= now + min_delay: post-GST the clamp bound is
     max now gst + delta >= now + delta >= now + min_delay, pre-GST the raw
     draw starts at now + min_delay and the bound is at least that too. *)
  { describe = Printf.sprintf "partially-synchronous[gst=%d,delta=%d]" gst delta; fate; min_delay }

let fair_lossy ~drop_probability ~underlying =
  assert (drop_probability >= 0.0 && drop_probability < 1.0);
  let fate ~rng ~now ~src ~dst =
    if Rng.bool rng ~p:drop_probability then Drop else underlying.fate ~rng ~now ~src ~dst
  in
  { describe = Printf.sprintf "fair-lossy[p=%.2f over %s]" drop_probability underlying.describe;
    fate;
    (* Drops only remove deliveries, so the underlying bound still holds. *)
    min_delay = underlying.min_delay }

let growing_blackouts ?(min_delay = 1) ?(max_delay = 8) ?(open_window = 60)
    ?(initial_blackout = 60) ?(blackout_growth = 60) () =
  assert (min_delay >= 0 && max_delay >= min_delay);
  assert (open_window > 0 && initial_blackout >= 0 && blackout_growth >= 0);
  (* Cycles of [open_window] ticks of normal delivery followed by a
     blackout whose length grows by [blackout_growth] each cycle. *)
  let in_blackout now =
    let rec walk start k =
      let blackout = initial_blackout + (k * blackout_growth) in
      let cycle_end = start + open_window + blackout in
      if now < start + open_window then false
      else if now < cycle_end then true
      else walk cycle_end (k + 1)
    in
    walk 0 0
  in
  let fate ~rng ~now ~src:_ ~dst:_ =
    if in_blackout now then Drop
    else Deliver_at (now + Rng.int_in_range rng ~lo:min_delay ~hi:max_delay)
  in
  {
    describe =
      Printf.sprintf "growing-blackouts[open=%d,start=%d,+%d]" open_window initial_blackout
        blackout_growth;
    fate;
    min_delay;
  }

let ever_slower ?(min_delay = 1) ~slowdown_divisor () =
  assert (min_delay >= 0 && slowdown_divisor > 0);
  let fate ~rng ~now ~src:_ ~dst:_ =
    let jitter = Rng.int_in_range rng ~lo:0 ~hi:(Stdlib.max 1 (now / (4 * slowdown_divisor))) in
    Deliver_at (now + min_delay + (now / slowdown_divisor) + jitter)
  in
  (* delay = min_delay + now/div + jitter >= min_delay since the extra
     terms are non-negative. *)
  { describe = Printf.sprintf "ever-slower[/%d]" slowdown_divisor; fate; min_delay }

let route ?(min_delay = 0) ~describe select =
  let fate ~rng ~now ~src ~dst = (select ~src ~dst).fate ~rng ~now ~src ~dst in
  (* The selector is an arbitrary function, so we cannot derive a bound from
     the constituent links; callers that know the minimum across all routes
     may pass it, everyone else gets the conservative 0 (sequential merge). *)
  { describe; fate; min_delay }

let never =
  { describe = "never";
    fate = (fun ~rng:_ ~now:_ ~src:_ ~dst:_ -> Drop);
    min_delay = unbounded_lookahead }
