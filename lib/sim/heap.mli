(** Imperative binary min-heap, the backing store of the event queue.

    Elements are ordered by a user-supplied comparison.  The event queue
    pairs each element with a monotonically increasing sequence number to
    make ties deterministic (FIFO among equal keys), so the heap itself only
    needs a strict weak order. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element, without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val clear : 'a t -> unit

val to_list_unordered : 'a t -> 'a list
(** All elements in unspecified order (inspection/testing). *)
