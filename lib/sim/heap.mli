(** Imperative binary min-heap, the backing store of the event queue.

    Elements are ordered by a user-supplied comparison.  The event queue
    pairs each element with a monotonically increasing sequence number to
    make ties deterministic (FIFO among equal keys), so the heap itself only
    needs a strict weak order.

    Resource accounting: [pop] releases its reference to the popped element
    immediately (the vacated slot is reset, not left aliasing a live or
    popped value), [clear] returns to a small fixed capacity, and [shrink]
    gives back the slack a burst of pushes left behind.  A drained heap
    therefore retains no element references — checkable via
    {!live_slots}. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val capacity : 'a t -> int
(** Allocated slots (>= [length]). *)

val live_slots : 'a t -> int
(** Slots currently holding an element reference; equals [length] unless
    there is a retention bug.  O(1) — an occupancy counter maintained by
    [push]/[pop]/[clear]/[shrink], so production accounting (the engine's
    queue high-water, soak assertions) can query it on the hot path. *)

val scan_live_slots : 'a t -> int
(** The same figure recounted by a full O(capacity) array scan.  Debug
    check: tests compare it against {!live_slots} to prove the counter and
    the array never drift (a popped slot left aliasing its element would
    show up here first). *)

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element, without removing it. *)

val top_exn : 'a t -> 'a
(** Smallest element without the [option] box: the engine's hot loop peeks
    on every step, and wrapping the result would allocate per event.
    Raises [Invalid_argument] on an empty heap — guard with {!is_empty}. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element.  The vacated slot no longer
    references the element, so the GC can reclaim it once the caller is
    done. *)

val pop_exn : 'a t -> 'a
(** [pop] without the [option] box; allocation-free (the sift is hole-based
    — one slot write per level, no [ref], no swap).  Raises
    [Invalid_argument] on an empty heap — guard with {!is_empty}. *)

val shrink : 'a t -> unit
(** Reduce capacity to [max 8 (length t)], releasing burst slack.  Never
    drops elements. *)

val clear : 'a t -> unit
(** Empty the heap and return to a small fixed capacity (the same capacity
    a fresh heap grows to on first push, keeping [clear]+[push] consistent
    with the growth policy rather than re-starting from an aliased [[||]]). *)

val iter : ('a -> unit) -> 'a t -> unit
(** Apply [f] to every element in unspecified (array) order.  [f] must not
    push or pop; mutating a field of an element is allowed as long as the
    ordering relative to the other elements is preserved (the event queue's
    in-place sequence renumbering relies on exactly that). *)

val to_list_unordered : 'a t -> 'a list
(** All elements in unspecified order (inspection/testing). *)
