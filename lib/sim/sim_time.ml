type t = int

let zero = 0
let compare = Int.compare
let equal = Int.equal
let ( + ) = Stdlib.( + )
let ( - ) = Stdlib.( - )
let max = Stdlib.max
let min = Stdlib.min
let pp ppf t = Format.fprintf ppf "t=%d" t
let to_string t = string_of_int t
let is_nonnegative t = t >= 0
