(** The discrete-event simulator core.

    An engine simulates the paper's system model (Section 2.1): a finite set
    of [n] processes, fully connected by point-to-point links, advancing an
    abstract global clock.  Processes fail only by crashing, permanently.
    Protocol components attach per-process message handlers and timers; the
    engine delivers messages according to the configured {!Link} model,
    fires timers, executes crashes, and records everything in a {!Trace}
    and in {!Stats} counters.

    Determinism: the engine owns a seeded {!Rng} used exclusively for link
    fates, and same-instant events fire in scheduling order, so a run is a
    pure function of (seed, configuration, component code).  Internally the
    engine keeps two event sources — a hierarchical {!Timer_wheel} for
    timers and an {!Event_queue} heap for aperiodic events — merged by
    (time, scheduling sequence) from one shared counter, with the wheel
    winning the (unreachable, sequence numbers being unique) exact tie;
    the merged order is identical to a single combined queue's
    (HACKING.md, "Engine guarantees").

    Conventions:
    - a {b self-send} ([src = dst]) is local: it is delivered at the current
      instant, bypasses the link model, and is {i not} counted as a message
      (the paper's message counts only cover inter-process messages);
    - a crashed process neither executes handlers and timers nor sends; its
      in-flight messages may still be delivered (standard crash model);
    - messages addressed to a process that has crashed by delivery time are
      dropped. *)

type t

val create : ?seed:int -> ?shards:int -> n:int -> link:Link.t -> unit -> t
(** [n >= 1] processes, all initially alive, clock at 0.

    [shards] selects the execution back-end (default
    {!Shard.default_shards}, i.e. the [--shards]/[ECFD_SHARDS] switch,
    falling back to 1): 1 runs the sequential engine; [k >= 2] partitions
    processes across [k] shards ([pid mod k]) advanced in parallel inside
    conservative time windows bounded by the link's
    {!Link.min_delay_bound} lookahead (see {!Shard}).  Observable output
    — trace bytes, stats, obs snapshots — is byte-identical at every
    shard count; [k] is clamped to [n].  With [k >= 2],
    {!at}/{!schedule_crash}/{!register} are forbidden from inside
    component callbacks running in a parallel window, and timers and
    self-sends may only target the executing shard's own processes
    (harness code between windows is unrestricted). *)

val n : t -> int
val now : t -> Sim_time.t

val shard_count : t -> int
(** 1 for the sequential back-end. *)

val window_stats : t -> int * int * int * int
(** [(windows, null_windows, direct_steps, shard_windows)] of the sharded
    back-end — all zero sequentially.  Null windows had at most one
    active shard (no parallelism); direct steps are one-event sequential
    steps forced by zero lookahead or a due global event;
    [shard_windows] counts (window, active shard) pairs.  Experiment e21
    derives window count and null-window fraction from these. *)

val profiler_windows : t -> Shard.window_profile list
(** Per-window runtime-profiler records of the sharded back-end, in
    chronological order — empty sequentially, or when profiling was off
    at engine creation (see {!Shard.default_profile} / [ECFD_PROFILE]).
    {!Trace_export.chrome} renders these as a profiler track. *)

val trace : t -> Trace.t
val stats : t -> Stats.t

val obs : t -> Obs.Registry.t
(** The engine's metric registry.  The engine itself feeds
    [engine.delivery_latency] (per non-local delivery),
    [engine.span_duration] (on {!end_span}), the
    [engine.queue_depth_high_water] / [engine.timer_residency_high_water]
    gauges, and the timer lifecycle counters [engine.timer_set_total],
    [engine.timer_fired_total], [engine.timer_cancelled_total] and
    [engine.timer_orphaned_total]; components register their own metrics
    here — with literal names (lint rule R6). *)

val link_description : t -> string

(** {1 Process status} *)

val is_alive : t -> Pid.t -> bool
(** Has not crashed yet (at the current instant). *)

val alive_processes : t -> Pid.t list

val schedule_crash : t -> Pid.t -> at:Sim_time.t -> unit
(** The process stops executing at instant [at] (before any of its events at
    that instant that were scheduled after the crash was enqueued). *)

(** {1 Component plumbing} *)

val register : t -> component:string -> Pid.t -> (src:Pid.t -> Payload.t -> unit) -> unit
(** Install the message handler of [component] at one process.  At most one
    handler per (component, process); re-registration raises
    [Invalid_argument]. *)

val send :
  t -> component:string -> tag:string -> src:Pid.t -> dst:Pid.t -> Payload.t -> unit
(** Send a message.  No-op if [src] has crashed. *)

val send_to_all_others :
  t -> component:string -> tag:string -> src:Pid.t -> Payload.t -> unit
(** Send to every process except [src] (n-1 messages). *)

val send_to_all : t -> component:string -> tag:string -> src:Pid.t -> Payload.t -> unit
(** Send to every process including [src] (the self-copy is local). *)

(** {1 Timers} *)

type timer
(** A (slot, generation) handle into the engine's timer registry.  The slot
    is reclaimed — and the handle becomes permanently stale — the instant
    the timer's scheduled event is popped, whether it fired, was cancelled,
    or its owner had crashed.  Registry residency is therefore bounded by
    the number of in-flight timer events, never by the cumulative number of
    cancellations. *)

val set_timer : t -> Pid.t -> delay:int -> (unit -> unit) -> timer
(** Run the callback [delay] ticks from now, unless cancelled or the process
    crashes first.  [delay >= 0]. *)

val cancel_timer : t -> timer -> unit
(** Prevent the timer from firing.  Idempotent; a stale handle (the timer
    already fired, was already cancelled, or its slot was reused) is a
    no-op, so cancelling late is always safe. *)

val every : t -> Pid.t -> ?phase:int -> period:int -> (unit -> unit) -> unit -> unit
(** [every t p ~phase ~period f] runs [f] at [now + phase], then every
    [period] ticks, while [p] is alive.  With [~phase:0] the first firing
    happens at the current instant (after the currently executing event),
    then exactly once per period.  Returns a stop function; stopping
    cancels the armed occurrence.  [phase] defaults to [period].

    Re-arming is the engine's hot path: each occurrence re-inserts the
    same registry cell into the timer wheel by mutating int arrays and a
    shared control block — no closure, heap node or handle record is
    allocated per occurrence (the sim-core bench asserts this via
    [Gc.minor_words] deltas). *)

val timer_residency : t -> int
(** Registry slots currently occupied (armed timers plus cancelled timers
    whose deadline has not yet passed).  O(1). *)

val timer_table_capacity : t -> int
(** Registry slots ever allocated — the table's high-water mark; bounded by
    the peak number of simultaneously in-flight timers, not by run
    length.  {!compact} lowers it to the live high-water. *)

val timer_armed : t -> int
(** Timers currently armed (set, not yet fired/cancelled/orphaned): the
    pending leg of the lifecycle conservation law
    [timers_set = timers_fired + timers_cancelled + timers_orphaned +
    timer_armed], which holds at every instant. *)

(** {1 Harness hooks} *)

val at : t -> Sim_time.t -> (unit -> unit) -> unit
(** Schedule a harness action at an absolute instant; it runs regardless of
    crashes (it belongs to the experimenter, not to any process). *)

val note : t -> Pid.t -> tag:string -> string -> unit
(** Append a note event to the trace. *)

(** {1 Spans}

    A span brackets a protocol phase — a consensus round, a leadership
    epoch, a suspicion episode — between a [Span_begin] and a [Span_end]
    trace event sharing an engine-allocated span id.  Exports render spans
    as slices on the owning process's track; {!end_span} also feeds the
    span's duration to the [engine.span_duration] histogram. *)

type span

val begin_span : t -> Pid.t -> component:string -> name:string -> span
(** Open a span at [p] now.  [name] must be a string literal (lint rule
    R6): span names are a static vocabulary, never data. *)

val end_span : t -> span -> unit
(** Close the span at the current instant.  Idempotent — closing twice is
    a no-op, so protocols may close eagerly on decide {i and} defensively
    on round exit.  Spans left open at the end of a run (e.g. a suspicion
    of a genuinely crashed process) simply never get a [Span_end]. *)

val deferred : t -> (unit -> unit) -> unit
(** Run [fn] at this event's position in the sequential order.  On a
    sequential engine it runs immediately; inside a sharded window it is
    deferred to barrier replay on the coordinating domain (the same
    channel spans use).  Handler code whose observer state is shared
    across pids — e.g. a broadcast's per-instance bookkeeping — must
    mutate it through this: a live mutation would race across shard
    domains, and any trace effect it triggers would land at a
    wall-clock-dependent position. *)

val record_fd_view :
  t -> component:string -> Pid.t -> suspected:Pid.Set.t -> trusted:Pid.t option -> unit
(** Record a failure-detector output change in the trace. *)

(** {1 Execution} *)

val step : t -> bool
(** Process the next event; [false] if the queue is empty.  Merges the
    timer wheel and the event heap by (time, scheduling sequence); a
    timer step allocates nothing on the minor heap. *)

val run_until : t -> Sim_time.t -> unit
(** Process every event up to and including the given instant, then set the
    clock to it.  Raises [Invalid_argument] on a horizon in the past. *)

val pending_events : t -> int
(** Heap events plus pending timer cells — the logical queue depth (the
    same figure the pre-wheel single queue reported). *)

val compact : t -> unit
(** Return backing-store slack to the GC after a scheduling burst; never
    drops events or timers.  Shrinks the event queue {i and} the timer
    table: registry columns, free stack and wheel drop to the live
    high-water slot (pre-shrink handles into the dropped region stay
    permanently stale via a generation floor).  Long-lived engines
    (soaks, servers) can call this between load phases. *)
