type 'a t = { mutable rev_subscribers : ('a -> unit) list }

let create () = { rev_subscribers = [] }

let subscribe t f = t.rev_subscribers <- f :: t.rev_subscribers

let emit t x = List.iter (fun f -> f x) (List.rev t.rev_subscribers)

let subscriber_count t = List.length t.rev_subscribers
