(** Process identifiers.

    The system model (paper, Section 2.1) is a finite, totally ordered set
    [Pi = {p_1, ..., p_n}] of processes.  We represent [p_i] by the integer
    [i - 1], so identifiers range over [0 .. n-1] and the total order of the
    paper is the natural integer order. *)

type t = int

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints [p3] for process 2, matching the paper's 1-based naming. *)

val to_string : t -> string

val all : n:int -> t list
(** [all ~n] is [p_1; ...; p_n], i.e. [[0; 1; ...; n-1]]. *)

val others : n:int -> t -> t list
(** [others ~n p] is every process except [p], in total order. *)

val next_in_ring : n:int -> t -> t
(** Successor on the logical ring [p_1 -> p_2 -> ... -> p_n -> p_1]. *)

val prev_in_ring : n:int -> t -> t
(** Predecessor on the logical ring. *)

val is_valid : n:int -> t -> bool

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val set_of_list : t list -> Set.t

val pp_set : Format.formatter -> Set.t -> unit
(** Prints [{p1, p4}]. *)
