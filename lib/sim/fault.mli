(** Crash schedules (fault injection).

    The paper's model: processes fail by crashing, crashes are permanent.
    A schedule fixes which processes crash and when; [apply] installs it
    into an engine.  Random schedules respect the consensus requirement
    [f < n/2] when asked to. *)

type t = (Pid.t * Sim_time.t) list
(** [(p, at)]: process [p] crashes at instant [at].  At most one entry per
    process. *)

val none : t

val crash : Pid.t -> at:Sim_time.t -> t
val crashes : (Pid.t * Sim_time.t) list -> t

val apply : Engine.t -> t -> unit

val faulty : t -> Pid.Set.t
(** The processes that the schedule crashes. *)

val correct : n:int -> t -> Pid.Set.t
(** The processes that never crash under the schedule. *)

val last_crash_time : t -> Sim_time.t
(** 0 for the empty schedule. *)

val random :
  Rng.t -> n:int -> max_faulty:int -> latest:Sim_time.t -> t
(** A uniformly random schedule: pick [k <= max_faulty] distinct victims and
    independent crash instants in [[0, latest]]. *)

val random_minority : Rng.t -> n:int -> latest:Sim_time.t -> t
(** Random schedule with [f < n/2] (the consensus requirement). *)

val pp : Format.formatter -> t -> unit
