(** Conservative parallel discrete-event engine core: the sharded back-end
    behind {!Engine} when it is created with more than one shard.

    Processes are partitioned across [k] shards ([pid mod k] — a dense
    pid-to-shard map, no hashing); each shard owns its own timer wheel,
    event heap and timer registry, and shards advance in parallel inside
    {e safe time windows} computed from the link's
    {!Link.min_delay_bound} lookahead [L]: during [[T, W1)] with
    [W1 <= T + L], no shard can affect another before [W1] (a
    Chandy–Misra–Bryant-style conservative bound), because every
    cross-process message sent at [t < W1] is delivered at
    [>= t + L >= W1].

    {b Determinism contract.}  At any shard count — including [k = 1],
    which {!Engine} short-circuits to the exact sequential code path —
    the observable outputs (trace bytes, Lamport clocks, message and span
    ids, {!Stats} lifecycle including high-water trajectories, obs
    snapshots, timer-table capacity) are byte-identical to the sequential
    engine.  The mechanism: inside a window each shard executes only
    local events in its own (time, seq) order, {e buffering} every
    externally visible effect (trace records, stats/obs updates, sends,
    timer lifecycle accounting) as a flat op log with window-local
    provisional sequence numbers; at the window barrier the op logs are
    merged by (time, seq) — which reproduces the exact sequential
    execution order — and replayed on the coordinating domain: global
    sequence numbers, message/span ids and RNG fate draws are allocated
    in replay order, so they coincide with the sequential run's, and the
    provisional seqs still pending in shard wheels are renumbered to
    their reconciled global values.  Cross-shard sends land in
    per-(source shard, destination shard) mailboxes flushed into the
    destination heaps at the same barrier.

    Windows degrade gracefully: when the lookahead is 0 (custom fates
    with no bound), or a global event (crash, harness callback) is due at
    the window start, the engine takes a one-event {e direct step} on the
    coordinating domain with full sequential accounting — correct for
    any workload, just not parallel.

    {b In-window restrictions} (raise [Invalid_argument]): from a
    callback running inside a parallel window, [Engine.at],
    [Engine.schedule_crash] and [Engine.register] are forbidden, and
    timers may only be set/cancelled for processes of the executing
    shard, self-sends only for the executing shard's processes.
    Harness-level code always runs between windows (it is reached only
    via [Engine.at]/crash events, which force direct steps), so these
    restrictions bind only protocol components acting on remote pids —
    which none of the repository's components do. *)

type state

(** One record per parallel window (direct steps are excluded), captured
    at the window barrier when profiling is enabled.  The sim-time and
    op-log fields ([wp_from], [wp_until], [wp_active], [wp_events],
    [wp_ops_words]) are deterministic at a given shard count; the [_s]
    fields are host wall-clock seconds and vary run to run.  Arrays are
    indexed by shard id (length [k]). *)
type window_profile = {
  wp_from : Sim_time.t;  (** first event instant in the window *)
  wp_until : Sim_time.t;  (** exclusive window bound [W1] *)
  wp_active : int;  (** shards that had events this window *)
  wp_events : int array;  (** per shard: events executed *)
  wp_ops_words : int array;  (** per shard: op-log words replayed *)
  wp_busy_s : float array;  (** per shard: in-window wall-clock *)
  wp_replay_s : float;  (** barrier replay + mailbox flush wall-clock *)
}

val create :
  k:int ->
  n:int ->
  link:Link.t ->
  rng:Rng.t ->
  alive:bool array ->
  handlers:(string, (src:Pid.t -> Payload.t -> unit) option array) Hashtbl.t ->
  trace:Trace.t ->
  stats:Stats.t ->
  obs:Obs.Registry.t ->
  m_delivery_latency:Obs.Registry.histogram ->
  m_span_duration:Obs.Registry.histogram ->
  m_queue_depth_hw:Obs.Registry.gauge ->
  m_timer_residency_hw:Obs.Registry.gauge ->
  m_timer_set:Obs.Registry.counter ->
  m_timer_fired:Obs.Registry.counter ->
  m_timer_cancelled:Obs.Registry.counter ->
  m_timer_orphaned:Obs.Registry.counter ->
  unit ->
  state
(** Shares the engine's trace/stats/obs/rng/alive/handlers so the
    engine's accessors need no branching.  Installs the trace sink and
    obs hook that capture in-window records into the executing shard's
    op log.  Requires [k >= 1] (the engine only builds a state for
    [k >= 2]). *)

val k : state -> int
val shard_of : state -> Pid.t -> int

val in_window : state -> bool
(** True iff the calling domain is currently executing a parallel window
    of {e this} state (nested engines inside a window see [false] for
    their own state). *)

val now : state -> Sim_time.t
(** Inside a window: the executing shard's local clock (the instant of
    the event being executed).  Outside: the global clock. *)

(** {2 Engine operations} — the sharded halves of the {!Engine} API. *)

val send :
  state -> component:string -> tag:string -> src:Pid.t -> dst:Pid.t -> Payload.t -> unit

val set_timer : state -> Pid.t -> delay:Sim_time.t -> (unit -> unit) -> int * int * int
(** Returns [(slot, gen, shard)] — the handle triple. *)

val cancel : state -> sid:int -> slot:int -> gen:int -> unit

val every :
  state -> Pid.t -> ?phase:Sim_time.t -> period:Sim_time.t -> (unit -> unit) -> unit -> unit

val at : state -> Sim_time.t -> (unit -> unit) -> unit
val schedule_crash : state -> Pid.t -> at:Sim_time.t -> unit

val alloc_span : state -> int
(** Next span id (coordinating domain only — in-window span logging goes
    through {!log_fn} closures that call this at replay time). *)

val log_fn : state -> (unit -> unit) -> unit
(** In-window only: append a deferred effect (span begin/end record) to
    the executing shard's op log; it runs on the coordinating domain at
    barrier replay, in exact sequential order. *)

val run_until : state -> Sim_time.t -> unit
val step : state -> bool
(** One direct (sequential-order) step; never opens a window, so
    [step]-driven runs are exactly sequential.  [run_until] is the
    parallel entry point. *)

val pending_events : state -> int
val timer_residency : state -> int
val timer_table_capacity : state -> int
val timer_armed : state -> int
val compact : state -> unit

(** {2 Window statistics} — inputs to experiment e21. *)

val windows : state -> int
(** Parallel windows opened (direct steps excluded). *)

val null_windows : state -> int
(** Windows in which at most one shard had events — no parallelism
    gained; the window ran inline on the coordinating domain. *)

val direct_steps : state -> int
(** One-event sequential steps taken outside windows (zero lookahead, a
    global event due, or [Engine.step] drive). *)

val shard_windows : state -> int
(** Total (window, active shard) pairs — [shard_windows /. windows] is
    the mean fan-out per window. *)

(** {2 Runtime profiler} — per-window records (opt-in).

    When enabled at engine creation (see {!default_profile}), every
    parallel window appends a {!window_profile} record and feeds six
    registry histograms ([profiler.window_span_ticks],
    [profiler.window_events], [profiler.window_op_log_words],
    [profiler.shard_imbalance_x100], [profiler.shard_busy_us],
    [profiler.barrier_replay_us]).  The profiler never feeds back into
    simulated state: trace bytes, stats and stdout are byte-identical
    with it on or off.  Obs snapshots gain the profiler histograms (and
    their wall-clock figures), so fingerprint comparisons should run
    with it off — which is why it is off by default. *)

val profiling : state -> bool
(** Whether this state was created with profiling enabled. *)

val profile : state -> window_profile list
(** The per-window records so far, in chronological order.  Empty when
    profiling is disabled. *)

(** {2 Shard-count configuration} — mirrors [Exec.Pool]'s domain-count
    plumbing so benches and the CLI wire [--shards]/[ECFD_SHARDS]
    through one switch. *)

val default_shards : unit -> int
(** Process-wide default for [Engine.create ?shards]: the value set by
    {!set_default_shards} if any, else [ECFD_SHARDS] if set to a
    positive integer, else 1 (sequential). *)

val set_default_shards : int -> unit
val with_shards : int -> (unit -> 'a) -> 'a
(** Run a thunk with the default shard count overridden, restoring the
    previous default afterwards (exception-safe). *)

val default_profile : unit -> bool
(** Process-wide default for the runtime profiler, sampled at engine
    creation: the value set by {!set_default_profile} if any, else true
    iff [ECFD_PROFILE] is [1]/[true]/[yes], else false. *)

val set_default_profile : bool -> unit
val with_profile : bool -> (unit -> 'a) -> 'a
(** Run a thunk with the profiler default overridden, restoring the
    previous default afterwards (exception-safe). *)
