(** Message counters.

    Counts sends / deliveries / drops per protocol component (and per
    component+tag), which is how the benchmark harness measures the paper's
    "messages periodically sent" (Section 4) and "messages per round"
    (Section 5.4) claims.  [snapshot]/[diff] support windowed counting:
    count only what happens between two instants, e.g. one heartbeat period
    or one consensus round in steady state. *)

type counts = { sent : int; delivered : int; dropped : int }

type t

val create : unit -> t

val on_send : t -> component:string -> tag:string -> unit
val on_deliver : t -> component:string -> tag:string -> unit
val on_drop : t -> component:string -> tag:string -> unit

val component_counts : t -> component:string -> counts
(** Aggregated over all tags of the component; zeros if unknown. *)

val tag_counts : t -> component:string -> tag:string -> counts

val total : t -> counts

val components : t -> string list
(** All component names seen so far, sorted. *)

type snapshot

val snapshot : t -> snapshot

val sent_since : t -> snapshot -> component:string -> int
(** Messages of [component] sent since the snapshot was taken. *)

val total_sent_since : t -> snapshot -> int
