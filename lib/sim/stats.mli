(** Message counters.

    Counts sends / deliveries / drops per protocol component (and per
    component+tag), which is how the benchmark harness measures the paper's
    "messages periodically sent" (Section 4) and "messages per round"
    (Section 5.4) claims.  [snapshot]/[diff] support windowed counting:
    count only what happens between two instants, e.g. one heartbeat period
    or one consensus round in steady state. *)

type counts = { sent : int; delivered : int; dropped : int }

type lifecycle = {
  events_executed : int;  (** events popped and executed by the engine *)
  timers_set : int;
  timers_fired : int;  (** fired = callback actually ran *)
  timers_cancelled : int;
  timers_orphaned : int;
      (** popped [Armed] with a dead owner: the crash, not a fire or a
          cancel, retired the timer.  Closes the conservation law
          [timers_set = fired + cancelled + orphaned + armed-pending]
          (see [Engine.timer_armed]); before this counter existed, crash
          orphans were reclaimed but invisible in the lifecycle ledger. *)
  timers_reclaimed : int;
      (** registry slots released when a timer's event was popped (fired,
          cancelled, or owner crashed) — lags [timers_set] by exactly the
          current registry residency *)
  queue_high_water : int;  (** max pending events ever in the queue *)
  timer_residency_high_water : int;
      (** max timer-registry slots ever simultaneously occupied; tracked on
          every [set_timer], so [Engine.timer_residency] can never exceed it
          at any instant (the sim-core bench asserts exactly that) *)
}
(** Engine lifecycle counters: resource-accounting facts about one run,
    complementing the per-component message counters.  Soak tests assert
    bounded residency with these, and the sim-core bench reports them. *)

type t

val create : unit -> t

val on_send : t -> component:string -> tag:string -> unit
val on_deliver : t -> component:string -> tag:string -> unit
val on_drop : t -> component:string -> tag:string -> unit

(** {2 Lifecycle accounting (engine-internal hooks)} *)

val on_event_executed : t -> unit
val on_timer_set : t -> unit
val on_timer_fired : t -> unit
val on_timer_cancelled : t -> unit
val on_timer_orphaned : t -> unit
val on_timer_reclaimed : t -> unit

val note_queue_depth : t -> depth:int -> unit
(** Record the current queue depth; retains the maximum seen. *)

val note_timer_residency : t -> residency:int -> unit
(** Record the current timer-registry residency; retains the maximum seen. *)

val lifecycle : t -> lifecycle
(** Current lifecycle counters, as an immutable snapshot. *)

val pp_lifecycle : Format.formatter -> lifecycle -> unit

val component_counts : t -> component:string -> counts
(** Aggregated over all tags of the component; zeros if unknown. *)

val tag_counts : t -> component:string -> tag:string -> counts

val total : t -> counts

val components : t -> string list
(** All component names seen so far, sorted. *)

type snapshot = (string * string * counts) list
(** Per-(component, tag) counters, sorted by (component, tag): a pure
    function of the counts, independent of table insertion history (see
    HACKING.md, "Determinism rules"). *)

val snapshot : t -> snapshot

val sent_since : t -> snapshot -> component:string -> int
(** Messages of [component] sent since the snapshot was taken. *)

val total_sent_since : t -> snapshot -> int
