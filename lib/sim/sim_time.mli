(** Discrete logical time.

    The simulator advances an integer clock measured in abstract "ticks".
    All delays, periods, time-outs and the global stabilisation time (GST)
    are expressed in ticks.  Nothing in the reproduced algorithms depends on
    the absolute scale, only on ratios (e.g. heartbeat period vs message
    delay bound). *)

type t = int

val zero : t
val compare : t -> t -> int
val equal : t -> t -> bool
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val max : t -> t -> t
val min : t -> t -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val is_nonnegative : t -> bool
