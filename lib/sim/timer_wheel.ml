(* Hierarchical (hashed) timer wheel over dense integer timer cells.

   The engine's timer registry hands out dense slot indices ("cells"); this
   module orders the pending cells by (deadline, sequence) without a heap
   node or closure per occurrence.  Layout:

   - [levels] levels of [1 lsl slot_bits] slots each.  Level [k] covers
     deltas (deadline - cur) in [32^k, 32^(k+1)) — level 0 covers [0, 32) —
     so the wheel spans [span] = 32^levels ticks ahead of the cursor.
     A cell's slot index at level [k] is [(deadline lsr (5k)) land 31],
     i.e. derived from the absolute deadline, so a lazily parked cell stays
     addressable after the cursor moves.
   - Slots are singly-linked lists threaded through [cell_next] (intrusive:
     one int per cell, no list nodes).  Appending at the tail keeps each
     slot in insertion order.
   - Per-level occupancy bitmaps ([occ]) make "first non-empty slot" a few
     shifts and a count-trailing-zeros.
   - Deadlines at least [span] ahead go to a singly-linked overflow list
     with a tracked minimum, migrated into the wheel when the cursor gets
     near.

   The cursor ([cur]) advances only inside [pop], to the cached minimum
   deadline: slots strictly between the old and new cursor position are
   provably empty (they could only hold deadlines below the minimum), so
   advancing cascades exactly the slot containing the new cursor at each
   level.  All cells carrying the minimum deadline end up in one level-0
   slot, which is drained into a firing batch sorted by sequence number
   (one comparison pass; in-place insertion sort only when a cascade
   actually interleaved orders).  The pop path performs no minor-heap
   allocation: intrusive lists, int arrays, hole-free batch reuse.

   Cancellation is the engine's business (a cancelled cell stays parked
   until its deadline pops, matching the registry's reclaim-at-pop
   accounting), so the wheel never unlinks mid-list — which is what lets
   the lists be singly linked. *)

let slot_bits = 5
let slots_per_level = 1 lsl slot_bits
let slot_mask = slots_per_level - 1
let levels = 6
let span = 1 lsl (slot_bits * levels)

type t = {
  (* Per-cell columns, indexed by the engine's dense timer slot. *)
  mutable cell_at : int array;  (* absolute deadline *)
  mutable cell_seq : int array;  (* engine-global scheduling sequence *)
  mutable cell_next : int array;  (* intrusive slot/overflow list link; -1 = end *)
  (* Slot lists: [heads]/[tails] are [levels * slots_per_level] wide. *)
  heads : int array;
  tails : int array;
  occ : int array;  (* per-level occupancy bitmap, bit i = slot i non-empty *)
  mutable cur : int;  (* wheel time: every pending deadline is >= cur *)
  mutable cardinal : int;
  (* Overflow list (delta >= span at placement time). *)
  mutable ovf_head : int;
  mutable ovf_tail : int;
  mutable ovf_min_at : int;  (* max_int when empty *)
  mutable ovf_min_seq : int;
  (* Cached earliest pending (deadline, seq); max_int/max_int when empty. *)
  mutable min_at : int;
  mutable min_seq : int;
  (* Firing batch: cells sharing the minimum deadline, sorted by seq. *)
  mutable batch : int array;
  mutable batch_pos : int;
  mutable batch_len : int;
  mutable batch_active : bool;
  mutable batch_at : int;
}

let create () =
  {
    cell_at = [||];
    cell_seq = [||];
    cell_next = [||];
    heads = Array.make (levels * slots_per_level) (-1);
    tails = Array.make (levels * slots_per_level) (-1);
    occ = Array.make levels 0;
    cur = 0;
    cardinal = 0;
    ovf_head = -1;
    ovf_tail = -1;
    ovf_min_at = max_int;
    ovf_min_seq = max_int;
    min_at = max_int;
    min_seq = max_int;
    batch = [||];
    batch_pos = 0;
    batch_len = 0;
    batch_active = false;
    batch_at = 0;
  }

let cardinal t = t.cardinal
let is_empty t = t.cardinal = 0
let capacity t = Array.length t.cell_at

let[@alloc.allow bulk
     "amortized cell-column growth: the three parallel columns double \
      together, so per-add cost is O(1) and a steady-state run never takes \
      this branch"] ensure_capacity t n =
  let cap = Array.length t.cell_at in
  if n > cap then begin
    let cap' = Stdlib.max 16 (Stdlib.max n (2 * cap)) in
    let at' = Array.make cap' 0 in
    let seq' = Array.make cap' 0 in
    let next' = Array.make cap' (-1) in
    Array.blit t.cell_at 0 at' 0 cap;
    Array.blit t.cell_seq 0 seq' 0 cap;
    Array.blit t.cell_next 0 next' 0 cap;
    t.cell_at <- at';
    t.cell_seq <- seq';
    t.cell_next <- next'
  end

let shrink_capacity t n =
  let cap = Array.length t.cell_at in
  if n < cap then begin
    (* Caller guarantees no cell >= n is currently pending. *)
    t.cell_at <- Array.sub t.cell_at 0 n;
    t.cell_seq <- Array.sub t.cell_seq 0 n;
    t.cell_next <- Array.sub t.cell_next 0 n
  end;
  if (not t.batch_active) && Array.length t.batch > 16 then t.batch <- Array.make 16 0

(* Count trailing zeros of a non-zero mask (loop, not a table: called a
   handful of times per firing batch, never per cell). *)
let rec ctz_from m i = if m land 1 = 1 then i else ctz_from (m lsr 1) (i + 1)
let ctz m = ctz_from m 0

let level_of_delta delta =
  if delta < 1 lsl slot_bits then 0
  else if delta < 1 lsl (2 * slot_bits) then 1
  else if delta < 1 lsl (3 * slot_bits) then 2
  else if delta < 1 lsl (4 * slot_bits) then 3
  else if delta < 1 lsl (5 * slot_bits) then 4
  else 5

let append_slot t k slot cell =
  let idx = (k lsl slot_bits) lor slot in
  t.cell_next.(cell) <- -1;
  let tail = t.tails.(idx) in
  if tail < 0 then begin
    t.heads.(idx) <- cell;
    t.occ.(k) <- t.occ.(k) lor (1 lsl slot)
  end
  else t.cell_next.(tail) <- cell;
  t.tails.(idx) <- cell

let push_overflow t cell =
  t.cell_next.(cell) <- -1;
  if t.ovf_tail < 0 then t.ovf_head <- cell else t.cell_next.(t.ovf_tail) <- cell;
  t.ovf_tail <- cell;
  let d = t.cell_at.(cell) in
  (* Strict [<]: list order is insertion order, so on an equal deadline the
     incumbent has the smaller sequence number and stays the minimum. *)
  if d < t.ovf_min_at then begin
    t.ovf_min_at <- d;
    t.ovf_min_seq <- t.cell_seq.(cell)
  end

(* Park [cell] according to its current delta from the cursor. *)
let place t cell =
  let d = t.cell_at.(cell) in
  let delta = d - t.cur in
  if delta >= span then push_overflow t cell
  else begin
    let k = level_of_delta delta in
    append_slot t k ((d lsr (k * slot_bits)) land slot_mask) cell
  end

let rec place_list t cell =
  if cell >= 0 then begin
    let next = t.cell_next.(cell) in
    place t cell;
    place_list t next
  end

(* Re-thread the overflow list, migrating into the wheel every cell whose
   delta has shrunk below [span].  Relative order is preserved, so the
   retained minimum keeps first-inserted = smallest-seq on ties. *)
let rec migrate_overflow_list t cell =
  if cell >= 0 then begin
    let next = t.cell_next.(cell) in
    let d = t.cell_at.(cell) in
    if d - t.cur < span then place t cell
    else begin
      t.cell_next.(cell) <- -1;
      if t.ovf_tail < 0 then t.ovf_head <- cell else t.cell_next.(t.ovf_tail) <- cell;
      t.ovf_tail <- cell;
      if d < t.ovf_min_at then begin
        t.ovf_min_at <- d;
        t.ovf_min_seq <- t.cell_seq.(cell)
      end
    end;
    migrate_overflow_list t next
  end

let migrate_overflow t =
  let head = t.ovf_head in
  t.ovf_head <- -1;
  t.ovf_tail <- -1;
  t.ovf_min_at <- max_int;
  t.ovf_min_seq <- max_int;
  migrate_overflow_list t head

(* Advance the cursor to [target] (the exact minimum pending deadline) and
   cascade: at each level, only the slot containing [target] can hold cells
   — every slot strictly between the old and new cursor would hold a
   deadline below the minimum, hence is empty — and its cells re-place at
   strictly lower levels (a cell re-landing at level k would need
   delta >= 32^k, impossible inside the containing slot). *)
let[@alloc.zero] advance_to t target =
  t.cur <- target;
  if t.ovf_head >= 0 && t.ovf_min_at - target < span then migrate_overflow t;
  for k = levels - 1 downto 1 do
    let slot = (target lsr (k * slot_bits)) land slot_mask in
    if t.occ.(k) land (1 lsl slot) <> 0 then begin
      let idx = (k lsl slot_bits) lor slot in
      let head = t.heads.(idx) in
      t.heads.(idx) <- -1;
      t.tails.(idx) <- -1;
      t.occ.(k) <- t.occ.(k) land lnot (1 lsl slot);
      place_list t head
    end
  done

let[@alloc.allow bulk
     "amortized firing-batch growth: doubles, so per-pop cost is O(1); the \
      batch array is retained between batches and reused"] grow_batch t =
  let cap = Array.length t.batch in
  if t.batch_len = cap then begin
    let batch' = Array.make (Stdlib.max 16 (2 * cap)) 0 in
    Array.blit t.batch 0 batch' 0 cap;
    t.batch <- batch'
  end

let push_batch t cell =
  grow_batch t;
  t.batch.(t.batch_len) <- cell;
  t.batch_len <- t.batch_len + 1

let rec batch_collect t cell =
  if cell >= 0 then begin
    let next = t.cell_next.(cell) in
    push_batch t cell;
    batch_collect t next
  end

let rec batch_sorted t i =
  i >= t.batch_len
  || (t.cell_seq.(t.batch.(i - 1)) < t.cell_seq.(t.batch.(i)) && batch_sorted t (i + 1))

let rec insert_shift t j seq =
  if j >= 0 && t.cell_seq.(t.batch.(j)) > seq then begin
    t.batch.(j + 1) <- t.batch.(j);
    insert_shift t (j - 1) seq
  end
  else j

let batch_sort t =
  for i = 1 to t.batch_len - 1 do
    let cell = t.batch.(i) in
    let j = insert_shift t (i - 1) t.cell_seq.(cell) in
    t.batch.(j + 1) <- cell
  done

let build_batch t =
  let target = t.min_at in
  advance_to t target;
  let slot = target land slot_mask in
  let idx = slot in
  (* Level-0 slots hold a single deadline (deadlines in one slot agree
     mod 32 and all live in [cur, cur+32)), so this list is exactly the
     cells due at [target]. *)
  let head = t.heads.(idx) in
  t.heads.(idx) <- -1;
  t.tails.(idx) <- -1;
  t.occ.(0) <- t.occ.(0) land lnot (1 lsl slot);
  t.batch_pos <- 0;
  t.batch_len <- 0;
  batch_collect t head;
  if not (batch_sorted t 1) then batch_sort t;
  t.batch_at <- target;
  t.batch_active <- true

(* Walk one slot list accumulating the lexicographic minimum of
   (deadline, seq); used by the post-batch rescan. *)
let rec slot_min t cell best_at best_seq =
  if cell < 0 then begin
    t.min_at <- best_at;
    t.min_seq <- best_seq
  end
  else begin
    let d = t.cell_at.(cell) in
    let s = t.cell_seq.(cell) in
    if d < best_at || (d = best_at && s < best_seq) then slot_min t t.cell_next.(cell) d s
    else slot_min t t.cell_next.(cell) best_at best_seq
  end

(* Scan one run of occupied slots (a bitmap whose bits all share the same
   window [base]) in ascending index = ascending window-start order,
   feeding each slot that can still undercut the cached minimum into
   [slot_min].  A slot whose window starts past the current minimum ends
   the run (false): every later slot in window order starts later still,
   and its cells' deadlines are >= that start. *)
let rec scan_run t k width m base =
  if m = 0 then true
  else begin
    let i = ctz m in
    let start = base + (i * width) in
    if start > t.min_at then false
    else begin
      slot_min t t.heads.((k lsl slot_bits) lor i) t.min_at t.min_seq;
      scan_run t k width (m land lnot (1 lsl i)) base
    end
  end

(* Occupied slots of level [k] in circular order from the cursor's
   position — increasing order of the slots' absolute windows: first the
   indices at or above the cursor's (current window), then the wrapped
   indices below it (next window). *)
let scan_level t k =
  let m = t.occ.(k) in
  if m <> 0 then begin
    let width = 1 lsl (k * slot_bits) in
    let wrap = width * slots_per_level in
    let base = t.cur land lnot (wrap - 1) in
    let i0 = (t.cur lsr (k * slot_bits)) land slot_mask in
    let m_hi = m land lnot ((1 lsl i0) - 1) in
    let m_lo = m land ((1 lsl i0) - 1) in
    if scan_run t k width m_hi base then
      ignore (scan_run t k width m_lo (base + wrap) : bool)
  end

(* Recompute the cached minimum by scanning.  No cascading here: rescan
   must terminate even when cells are parked far ahead, and a scan is
   bounded by the live cells whereas an eager cascade could re-place a
   far-future slot into itself forever. *)
let rescan t =
  t.min_at <- max_int;
  t.min_seq <- max_int;
  if t.cardinal > 0 then begin
    for k = 0 to levels - 1 do
      scan_level t k
    done;
    (* Overflow deadlines are >= cur + span, so they only matter when the
       wheel proper is empty — and then [ovf_min] is exact (ties keep the
       first-inserted, smallest-seq cell). *)
    if t.ovf_min_at < t.min_at then begin
      t.min_at <- t.ovf_min_at;
      t.min_seq <- t.ovf_min_seq
    end
  end

let[@alloc.zero] add t ~cell ~deadline ~seq =
  ensure_capacity t (cell + 1);
  if deadline < t.cur then invalid_arg "Timer_wheel.add: deadline before cursor";
  t.cell_at.(cell) <- deadline;
  t.cell_seq.(cell) <- seq;
  t.cardinal <- t.cardinal + 1;
  if t.batch_active && deadline = t.batch_at then push_batch t cell else place t cell;
  (* Strict [<]: an equal deadline arrived later, so it has the larger seq. *)
  if deadline < t.min_at then begin
    t.min_at <- deadline;
    t.min_seq <- seq
  end

let rec remap_list t f cell =
  if cell >= 0 then begin
    t.cell_seq.(cell) <- f t.cell_seq.(cell);
    remap_list t f t.cell_next.(cell)
  end

(* Rewrite every pending cell's sequence number in place (slot lists plus
   overflow, plus the cached minima).  [f] must be order-preserving on the
   pending seqs, so list positions and cached minima stay valid — the
   sharded engine's provisional-to-global renumbering at a window barrier
   (identity below the provisional base, a monotone window map above it)
   is exactly that.  Barriers only run between firing batches. *)
let remap_seqs t f =
  if t.batch_active then invalid_arg "Timer_wheel.remap_seqs: firing batch active";
  for idx = 0 to (levels * slots_per_level) - 1 do
    remap_list t f t.heads.(idx)
  done;
  remap_list t f t.ovf_head;
  if t.min_seq <> max_int then t.min_seq <- f t.min_seq;
  if t.ovf_min_seq <> max_int then t.ovf_min_seq <- f t.ovf_min_seq

let next_at t =
  if t.cardinal = 0 then invalid_arg "Timer_wheel.next_at: empty wheel";
  t.min_at

let next_seq t =
  if t.cardinal = 0 then invalid_arg "Timer_wheel.next_seq: empty wheel";
  t.min_seq

let[@alloc.zero] pop t =
  if t.cardinal = 0 then invalid_arg "Timer_wheel.pop: empty wheel";
  if not t.batch_active then build_batch t;
  let cell = t.batch.(t.batch_pos) in
  t.batch_pos <- t.batch_pos + 1;
  t.cardinal <- t.cardinal - 1;
  if t.batch_pos = t.batch_len then begin
    t.batch_active <- false;
    t.batch_pos <- 0;
    t.batch_len <- 0;
    rescan t
  end
  else begin
    t.min_at <- t.batch_at;
    t.min_seq <- t.cell_seq.(t.batch.(t.batch_pos))
  end;
  cell
