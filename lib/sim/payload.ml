type t = ..

type t +=
  | Blank
    [@lint.allow payload "contentless placeholder; constructed by the test harness, matched nowhere"]

type envelope = {
  src : Pid.t;
  dst : Pid.t;
  component : string;
  tag : string;
  payload : t;
  sent_at : Sim_time.t;
  mutable msg : int;
      (** Engine-allocated message id shared by the Send/Deliver/Drop trace
          events; [-1] for local self-sends, which are not traced.  Mutable
          only for the sharded engine's barrier reconciliation, which stamps
          the globally ordered id onto envelopes buffered during a parallel
          window; the sequential engine never mutates it. *)
}

let pp_envelope ppf e =
  Format.fprintf ppf "%a->%a %s/%s (sent %a)" Pid.pp e.src Pid.pp e.dst e.component e.tag
    Sim_time.pp e.sent_at
