(** Deterministic pseudo-random number generator (splitmix64).

    Every source of randomness in the simulator (message delays, drop
    decisions, random crash schedules, value choices in tests) flows through
    one of these generators, so a run is fully determined by its seed.  The
    generator is splittable: independent sub-streams can be derived for
    independent components, which keeps runs reproducible even when the set
    of components or their interleaving changes. *)

type t

val create : seed:int -> t

val split : t -> t
(** Derive an independent generator; the parent advances. *)

val copy : t -> t

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> bound:int -> int
(** [int t ~bound] is uniform in [0, bound).  [bound] must be positive.

    Exactly uniform (not merely approximately): draws landing in the
    incomplete top bucket of the 62-bit raw range are rejected and redrawn,
    so no residue is over-weighted.  A rejection consumes an extra raw draw,
    which makes the stream of [int] values a different — still seed-stable
    and version-stable — stream than the pre-rejection-sampling one. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** Uniform in the inclusive range [lo, hi].  Requires [lo <= hi]. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> p:float -> bool
(** Bernoulli trial: [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a list -> 'a
(** Uniformly random element of a non-empty list. *)
