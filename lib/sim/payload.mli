(** Message payloads.

    The payload type is an extensible variant: each protocol component
    (failure detector, broadcast, consensus, ...) declares its own
    constructors and the engine routes envelopes by component name, so
    independent protocol stacks compose inside one simulation without a
    global message type. *)

type t = ..

type t += Blank  (** A contentless payload, handy in tests. *)

type envelope = {
  src : Pid.t;
  dst : Pid.t;
  component : string;  (** Routing key: which component's handler receives it. *)
  tag : string;        (** Human-readable message kind, for traces and stats. *)
  payload : t;
  sent_at : Sim_time.t;
  mutable msg : int;
      (** Engine-allocated message id shared by the Send/Deliver/Drop trace
          events of this message; [-1] for local self-sends, which are not
          traced.  Mutable only for the sharded engine's barrier
          reconciliation, which stamps the globally ordered id onto
          envelopes buffered during a parallel window; the sequential
          engine never mutates it. *)
}

val pp_envelope : Format.formatter -> envelope -> unit
