type t = {
  engine : Sim.Engine.t;
  component : string;
  views : Fd_view.t array;
  changes : (Sim.Pid.t * Fd_view.t) Sim.Signal.t;
  (* [spans.(p).(q)]: the "suspicion" span opened when p started
     suspecting q, closed when the suspicion is rescinded — open forever
     when q really crashed.  Maintained here, by diffing consecutive
     views in [set], so every detector gets complete suspicion spans
     (they used to exist only where the implementation opened them by
     hand, i.e. for the heartbeat <>P). *)
  spans : Sim.Engine.span option array array;
}

let record t p =
  let v = t.views.(p) in
  Sim.Engine.record_fd_view t.engine ~component:t.component p ~suspected:v.Fd_view.suspected
    ~trusted:v.Fd_view.trusted

let make engine ~component =
  let n = Sim.Engine.n engine in
  let t =
    {
      engine;
      component;
      views = Array.make n Fd_view.empty;
      changes = Sim.Signal.create ();
      spans = Array.init n (fun _ -> Array.make n None);
    }
  in
  List.iter (fun p -> record t p) (Sim.Pid.all ~n);
  t

let component t = t.component

let query t p = t.views.(p)
let suspected t p = (query t p).Fd_view.suspected
let trusted t p = (query t p).Fd_view.trusted

let subscribe t f = Sim.Signal.subscribe t.changes (fun (p, v) -> f p v)

let set t p v =
  if not (Fd_view.equal t.views.(p) v) then begin
    let old = t.views.(p) in
    (* Span bookkeeping before the view record, so a suspicion episode
       reads Span_begin -> Fd_view in the trace (and Span_end ->
       Fd_view on rescind), matching the order the heartbeat detector
       used to emit by hand. *)
    Sim.Pid.Set.iter
      (fun q ->
        if not (Sim.Pid.Set.mem q old.Fd_view.suspected) then
          t.spans.(p).(q) <-
            Some (Sim.Engine.begin_span t.engine p ~component:t.component ~name:"suspicion"))
      v.Fd_view.suspected;
    Sim.Pid.Set.iter
      (fun q ->
        if not (Sim.Pid.Set.mem q v.Fd_view.suspected) then begin
          match t.spans.(p).(q) with
          | Some s ->
            Sim.Engine.end_span t.engine s;
            t.spans.(p).(q) <- None
          | None -> ()
        end)
      old.Fd_view.suspected;
    t.views.(p) <- v;
    record t p;
    Sim.Signal.emit t.changes (p, v)
  end

let update t p f = set t p (f t.views.(p))
