type t = {
  engine : Sim.Engine.t;
  component : string;
  views : Fd_view.t array;
  changes : (Sim.Pid.t * Fd_view.t) Sim.Signal.t;
}

let record t p =
  let v = t.views.(p) in
  Sim.Engine.record_fd_view t.engine ~component:t.component p ~suspected:v.Fd_view.suspected
    ~trusted:v.Fd_view.trusted

let make engine ~component =
  let t =
    {
      engine;
      component;
      views = Array.make (Sim.Engine.n engine) Fd_view.empty;
      changes = Sim.Signal.create ();
    }
  in
  List.iter (fun p -> record t p) (Sim.Pid.all ~n:(Sim.Engine.n engine));
  t

let component t = t.component

let query t p = t.views.(p)
let suspected t p = (query t p).Fd_view.suspected
let trusted t p = (query t p).Fd_view.trusted

let subscribe t f = Sim.Signal.subscribe t.changes (fun (p, v) -> f p v)

let set t p v =
  if not (Fd_view.equal t.views.(p) v) then begin
    t.views.(p) <- v;
    record t p;
    Sim.Signal.emit t.changes (p, v)
  end

let update t p f = set t p (f t.views.(p))
