(** The Chandra–Toueg transformation from weak to strong completeness [6].

    Every period, every process broadcasts the suspect set of its underlying
    (weak-completeness) detector; on receiving a set S from q, a process
    merges it into its output and removes q — q has just proved itself
    alive.  Weak completeness then amplifies to strong completeness (the one
    correct suspector keeps broadcasting, crashed processes never exonerate
    themselves), and both eventual accuracy properties are preserved
    (the eventually-unsuspected process stops being accused and keeps
    removing itself from every output via its own broadcasts).

    Used in Section 3's chain ◇W -> ◇S -> (+Ω) -> ◇C.
    Cost: n(n-1) messages per period. *)

type params = { period : int }

val default_params : params

val component : string

val install :
  ?component:string -> Sim.Engine.t -> underlying:Fd_handle.t -> params -> Fd_handle.t
