type params = { period : int }

let default_params = { period = 10 }

let component = "fd.weak-to-strong"

type Sim.Payload.t += Suspects of Sim.Pid.Set.t

let install ?(component = component) engine ~underlying params =
  if params.period <= 0 then invalid_arg "Weak_to_strong.install: period must be positive";
  let n = Sim.Engine.n engine in
  let handle = Fd_handle.make engine ~component in
  let broadcast p () =
    Sim.Engine.send_to_all_others engine ~component ~tag:"suspects" ~src:p
      (Suspects (Fd_handle.suspected underlying p));
    (* Local merge: own input suspicions surface without a network hop. *)
    Fd_handle.update handle p (fun v ->
        {
          v with
          Fd_view.suspected =
            Sim.Pid.Set.remove p
              (Sim.Pid.Set.union v.Fd_view.suspected (Fd_handle.suspected underlying p));
        })
  in
  let on_message p ~src payload =
    match payload with
    | Suspects s ->
      Fd_handle.update handle p (fun v ->
          {
            v with
            Fd_view.suspected =
              Sim.Pid.Set.remove src (Sim.Pid.Set.union v.Fd_view.suspected s);
          })
    | _ -> ()
  in
  List.iter
    (fun p ->
      Sim.Engine.register engine ~component p (on_message p);
      ignore (Sim.Engine.every engine p ~phase:0 ~period:params.period (broadcast p)
               : unit -> unit))
    (Sim.Pid.all ~n);
  handle
