(** Runtime handle of an installed failure detector.

    A distributed failure detector is a set of n modules, one per process
    (Section 2.1).  A handle is the client-side face of such a detector
    inside a simulation: algorithms {i query} the module attached to their
    process, and can {i subscribe} to output changes (the simulation
    counterpart of re-reading the detector while busy-waiting).

    Every change is also recorded in the engine trace as an [Fd_view] event,
    which is what the {!Spec} property checkers consume. *)

type t

val make : Sim.Engine.t -> component:string -> t
(** Fresh handle with one module per process, each starting at
    {!Fd_view.empty} (recorded in the trace at creation time). *)

val component : t -> string

val query : t -> Sim.Pid.t -> Fd_view.t
(** The view currently output by the module attached to the process. *)

val suspected : t -> Sim.Pid.t -> Sim.Pid.Set.t
(** [D.suspected_p]. *)

val trusted : t -> Sim.Pid.t -> Sim.Pid.t option
(** [D.trusted_p]. *)

val subscribe : t -> (Sim.Pid.t -> Fd_view.t -> unit) -> unit
(** Called on every output change of any module, with the owning process. *)

val set : t -> Sim.Pid.t -> Fd_view.t -> unit
(** For detector implementations: publish a new view.  No-op when the view
    is unchanged; otherwise traces and notifies subscribers.

    Suspicion spans: diffing the old and new view, every newly suspected
    process opens a ["suspicion"] span on the observer's track (before
    the [Fd_view] record) and every rescinded suspicion closes it (a
    span left open means the suspicion stood at the end of the run) — so
    suspicion episodes are complete for every detector built on this
    handle, whatever its internal mechanism. *)

val update : t -> Sim.Pid.t -> (Fd_view.t -> Fd_view.t) -> unit
(** [set] composed with a function of the current view. *)
