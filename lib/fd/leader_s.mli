(** Leader-based implementation of ◇S (with implicit Ω), after Larrea,
    Fernández and Arévalo [16] ("Optimal implementation of the weakest
    failure detector for solving consensus", SRDS 2000).

    Each process p maintains a {i candidate}: the smallest process (in the
    total order p_1 < ... < p_n) that p has not discarded.  A process that
    is its own candidate considers itself leader and periodically sends
    I-AM-THE-LEADER heartbeats to everybody else; the others monitor their
    candidate with an adaptive time-out and move to the next process when it
    expires.  Hearing from a smaller process than the current candidate
    re-adopts it (with a larger time-out).  Under partial synchrony all
    correct processes converge on the first correct process.

    Exported view (Section 3 of the ◇C paper): [trusted_p] = candidate, and
    [suspected_p] = all processes except the candidate and p itself — the
    Ω-style minimal-accuracy suspected set, which satisfies strong
    completeness and eventual weak accuracy (hence ◇S) and makes this
    detector a ◇C {i at no extra message cost}.

    Cost: n-1 messages per period once stable (only the leader sends) —
    the figure used by Section 4's "extremely efficient" ◇P construction. *)

type params = {
  period : int;
  initial_timeout : int;
  timeout_increment : int;
}

val default_params : params

val component : string

type hooks = {
  mutable annotate : Sim.Pid.t -> Sim.Payload.t option;
      (** Called when a leader is about to send a heartbeat; the returned
          payload rides along at no extra message cost.  This is the
          piggybacking channel Section 4 uses to halve the cost of the
          ◇C → ◇P transformation ({!Ecfd.Ec_to_p.install_piggybacked}). *)
  mutable on_annotation : recipient:Sim.Pid.t -> src:Sim.Pid.t -> Sim.Payload.t -> unit;
      (** Called at the receiving process for every piggybacked payload. *)
}

val make_hooks : unit -> hooks
(** Hooks that do nothing; mutate the fields to tap the channel. *)

val install : ?component:string -> ?hooks:hooks -> Sim.Engine.t -> params -> Fd_handle.t
