type params = {
  period : int;
  initial_timeout : int;
  timeout_increment : int;
}

let default_params = { period = 10; initial_timeout = 30; timeout_increment = 20 }

let component = "fd.omega-source"

type Sim.Payload.t += Alive of int array  (** The sender's counter vector. *)

type process_state = {
  counter : int array;  (** Accusation counters, merged pointwise-max. *)
  last_heard : Sim.Sim_time.t array;
  timeout : int array;
  mutable accused : Sim.Pid.Set.t;
}

let install ?(component = component) engine params =
  if params.period <= 0 || params.initial_timeout <= 0 then
    invalid_arg "Omega_source.install: period and initial_timeout must be positive";
  let n = Sim.Engine.n engine in
  let handle = Fd_handle.make engine ~component in
  let states =
    Array.init n (fun _ ->
        {
          counter = Array.make n 0;
          last_heard = Array.make n Sim.Sim_time.zero;
          timeout = Array.make n params.initial_timeout;
          accused = Sim.Pid.Set.empty;
        })
  in
  let everybody = Sim.Pid.set_of_list (Sim.Pid.all ~n) in
  let leader_of st =
    let best = ref 0 in
    for q = 1 to n - 1 do
      if st.counter.(q) < st.counter.(!best) then best := q
    done;
    !best
  in
  let publish p =
    let st = states.(p) in
    let leader = leader_of st in
    let suspected = Sim.Pid.Set.remove leader (Sim.Pid.Set.remove p everybody) in
    Fd_handle.set handle p (Fd_view.make ~trusted:leader ~suspected ())
  in
  let beat p () =
    Sim.Engine.send_to_all_others engine ~component ~tag:"alive" ~src:p
      (Alive (Array.copy states.(p).counter))
  in
  let check p () =
    let st = states.(p) in
    let now = Sim.Engine.now engine in
    let changed = ref false in
    List.iter
      (fun q ->
        if now - st.last_heard.(q) > st.timeout.(q) then begin
          (* q is late (again): one more accusation, then restart its grace
             period so a dead process is accused about once per time-out,
             not once per tick. *)
          st.counter.(q) <- st.counter.(q) + 1;
          st.accused <- Sim.Pid.Set.add q st.accused;
          st.last_heard.(q) <- now;
          changed := true
        end)
      (Sim.Pid.others ~n p);
    if !changed then publish p
  in
  let on_message p ~src payload =
    match payload with
    | Alive theirs ->
      let st = states.(p) in
      st.last_heard.(src) <- Sim.Engine.now engine;
      if Sim.Pid.Set.mem src st.accused then begin
        st.accused <- Sim.Pid.Set.remove src st.accused;
        st.timeout.(src) <- st.timeout.(src) + params.timeout_increment
      end;
      let changed = ref false in
      for q = 0 to n - 1 do
        if theirs.(q) > st.counter.(q) then begin
          st.counter.(q) <- theirs.(q);
          changed := true
        end
      done;
      if !changed then publish p
    | _ -> ()
  in
  List.iter
    (fun p ->
      Sim.Engine.register engine ~component p (on_message p);
      publish p;
      ignore (Sim.Engine.every engine p ~phase:0 ~period:params.period (beat p) : unit -> unit);
      ignore (Sim.Engine.every engine p ~period:params.period (check p) : unit -> unit))
    (Sim.Pid.all ~n);
  handle
