type params = {
  period : int;
  initial_timeout : int;
  timeout_increment : int;
}

let default_params = { period = 10; initial_timeout = 30; timeout_increment = 20 }

let component = "fd.leader-s"

type Sim.Payload.t += Leader_alive of Sim.Payload.t option

type hooks = {
  mutable annotate : Sim.Pid.t -> Sim.Payload.t option;
  mutable on_annotation : recipient:Sim.Pid.t -> src:Sim.Pid.t -> Sim.Payload.t -> unit;
}

let make_hooks () =
  { annotate = (fun _ -> None); on_annotation = (fun ~recipient:_ ~src:_ _ -> ()) }

type process_state = {
  mutable candidate : Sim.Pid.t;
  mutable candidate_since : Sim.Sim_time.t;  (** When we (re)adopted it. *)
  mutable last_heard : Sim.Sim_time.t;  (** Last heartbeat from the candidate. *)
  timeout : int array;  (** Per peer: adaptive time-out. *)
  mutable epoch_span : Sim.Engine.span option;  (** Open while trusting the current candidate. *)
}

let install ?(component = component) ?hooks engine params =
  if params.period <= 0 || params.initial_timeout <= 0 then
    invalid_arg "Leader_s.install: period and initial_timeout must be positive";
  let hooks = match hooks with Some h -> h | None -> make_hooks () in
  let n = Sim.Engine.n engine in
  let handle = Fd_handle.make engine ~component in
  let m_adoptions =
    Obs.Registry.counter (Sim.Engine.obs engine) ~name:"fd.leader_s.adoptions"
  in
  let states =
    Array.init n (fun _ ->
        {
          candidate = 0;
          candidate_since = Sim.Sim_time.zero;
          last_heard = Sim.Sim_time.zero;
          timeout = Array.make n params.initial_timeout;
          epoch_span = None;
        })
  in
  let everybody = Sim.Pid.set_of_list (Sim.Pid.all ~n) in
  let publish p =
    let st = states.(p) in
    let suspected = Sim.Pid.Set.remove st.candidate (Sim.Pid.Set.remove p everybody) in
    Fd_handle.set handle p (Fd_view.make ~trusted:st.candidate ~suspected ())
  in
  let adopt p q =
    let st = states.(p) in
    Obs.Registry.incr m_adoptions;
    if not (Sim.Pid.equal st.candidate q) then begin
      (* A candidate change ends the old trust epoch and opens a new one. *)
      (match st.epoch_span with
      | Some s -> Sim.Engine.end_span engine s
      | None -> ());
      st.epoch_span <- Some (Sim.Engine.begin_span engine p ~component ~name:"candidate-epoch")
    end;
    st.candidate <- q;
    st.candidate_since <- Sim.Engine.now engine;
    st.last_heard <- Sim.Engine.now engine;
    publish p
  in
  let check p () =
    let st = states.(p) in
    if not (Sim.Pid.equal st.candidate p) then begin
      let now = Sim.Engine.now engine in
      let start = Sim.Sim_time.max st.candidate_since st.last_heard in
      if now - start > st.timeout.(st.candidate) then begin
        (* The candidate looks dead: discard it and move to the next process
           in the total order.  A process never discards itself, so the walk
           stops at p: reaching p means "I am the leader".  (Invariant:
           candidate <= p, because adoption on message only moves down.) *)
        adopt p (Stdlib.min (st.candidate + 1) p)
      end
    end
  in
  let on_message p ~src payload =
    match payload with
    | Leader_alive annotation ->
      Option.iter (fun body -> hooks.on_annotation ~recipient:p ~src body) annotation;
      let st = states.(p) in
      if Sim.Pid.equal src st.candidate then st.last_heard <- Sim.Engine.now engine
      else if Sim.Pid.compare src st.candidate < 0 then begin
        (* A smaller process is alive after all: re-adopt it with a larger
           time-out so repeated mistakes die out (eventual weak accuracy). *)
        st.timeout.(src) <- st.timeout.(src) + params.timeout_increment;
        adopt p src
      end
      (* Heartbeats from processes above the candidate are ignored: the
         order-based rule only ever trusts the smallest live-looking one. *)
    | _ -> ()
  in
  List.iter
    (fun p ->
      Sim.Engine.register engine ~component p (on_message p);
      publish p;
      let beat () =
        if Sim.Pid.equal states.(p).candidate p then
          Sim.Engine.send_to_all_others engine ~component ~tag:"leader-alive" ~src:p
            (Leader_alive (hooks.annotate p))
      in
      ignore (Sim.Engine.every engine p ~phase:0 ~period:params.period beat : unit -> unit);
      ignore (Sim.Engine.every engine p ~period:params.period (check p) : unit -> unit))
    (Sim.Pid.all ~n);
  handle
