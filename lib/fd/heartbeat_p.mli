(** All-to-all heartbeat implementation of ◇P, after Chandra–Toueg [6].

    Every process periodically sends I-AM-ALIVE to every other process and
    maintains one adaptive time-out per peer: a peer that stays silent past
    its time-out is suspected; receiving a heartbeat from a suspected peer
    rescinds the suspicion and increases that peer's time-out.  Under
    partial synchrony, time-outs eventually exceed [period + delta] and no
    correct process is ever suspected again (eventual strong accuracy),
    while crashed processes stop sending and are permanently suspected
    (strong completeness).

    Cost: n(n-1) messages per period — the quadratic figure the paper's
    Section 4 compares its transformation against. *)

type params = {
  period : int;  (** Heartbeat (and time-out check) period. *)
  initial_timeout : int;
  timeout_increment : int;  (** Added to a peer's time-out per false suspicion. *)
}

val default_params : params
(** period = 10, initial_timeout = 30, increment = 20. *)

val component : string

val install : ?component:string -> Sim.Engine.t -> params -> Fd_handle.t
(** Attach a module to every process.  The returned handle's views have
    [trusted = None] (this detector has no leader-election capability). *)
