type params = { period : int }

let default_params = { period = 10 }

let component = "fd.omega-from-s"

type Sim.Payload.t += Counters of int array

let install ?(component = component) engine ~underlying params =
  if params.period <= 0 then invalid_arg "Omega_from_s.install: period must be positive";
  let n = Sim.Engine.n engine in
  let handle = Fd_handle.make engine ~component in
  let counters = Array.init n (fun _ -> Array.make n 0) in
  let leader p =
    (* argmin (counter, id): ids break ties, so every process computes the
       same leader once the merged vectors agree on the frozen entries. *)
    let best = ref 0 in
    for q = 1 to n - 1 do
      if counters.(p).(q) < counters.(p).(!best) then best := q
    done;
    !best
  in
  let publish p =
    let suspected = Fd_handle.suspected underlying p in
    Fd_handle.set handle p (Fd_view.make ~trusted:(leader p) ~suspected ())
  in
  let accuse_and_broadcast p () =
    let mine = counters.(p) in
    Sim.Pid.Set.iter
      (fun q -> mine.(q) <- mine.(q) + 1)
      (Fd_handle.suspected underlying p);
    Sim.Engine.send_to_all_others engine ~component ~tag:"counters" ~src:p
      (Counters (Array.copy mine));
    publish p
  in
  let on_message p ~src:_ payload =
    match payload with
    | Counters theirs ->
      let mine = counters.(p) in
      for q = 0 to n - 1 do
        if theirs.(q) > mine.(q) then mine.(q) <- theirs.(q)
      done;
      publish p
    | _ -> ()
  in
  List.iter
    (fun p ->
      Sim.Engine.register engine ~component p (on_message p);
      publish p;
      ignore
        (Sim.Engine.every engine p ~phase:0 ~period:params.period (accuse_and_broadcast p)
          : unit -> unit))
    (Sim.Pid.all ~n);
  (* Track the underlying detector: a suspicion change must surface in this
     handle's views immediately, not only at the next period. *)
  Fd_handle.subscribe underlying (fun p _ -> if Sim.Engine.is_alive engine p then publish p);
  handle
