(** A perfect failure detector (class P), realised as a simulation oracle.

    Real systems cannot implement P without synchrony, but the simulator
    {i knows} the fault schedule, so the oracle simply tells every alive
    process about each crash [detection_delay] ticks after it happens.  It
    never suspects a process before it crashes (strong accuracy) and
    permanently suspects every crashed process (strong completeness).

    Uses: the Section 3 construction "any P can implement ◇C" (see
    {!Ecfd.Ec.of_perfect}), ground truth in tests, and the E1 matrix. *)

type params = { detection_delay : int }

val default_params : params
(** detection_delay = 1. *)

val component : string

val install : ?component:string -> Sim.Engine.t -> schedule:Sim.Fault.t -> params -> Fd_handle.t
(** [schedule] must be the same schedule applied to the engine; the oracle
    reveals each crash to all (still-alive) processes.  Sends no messages. *)
