type t = {
  suspected : Sim.Pid.Set.t;
  trusted : Sim.Pid.t option;
}

let empty = { suspected = Sim.Pid.Set.empty; trusted = None }

let make ?trusted ~suspected () = { suspected; trusted }

let suspects t q = Sim.Pid.Set.mem q t.suspected

let equal a b =
  Sim.Pid.Set.equal a.suspected b.suspected && Option.equal Sim.Pid.equal a.trusted b.trusted

let pp ppf t =
  let pp_trusted ppf = function
    | None -> Format.fprintf ppf "-"
    | Some q -> Sim.Pid.pp ppf q
  in
  Format.fprintf ppf "suspected=%a trusted=%a" Sim.Pid.pp_set t.suspected pp_trusted t.trusted
