type step = {
  at : Sim.Sim_time.t;
  pid : Sim.Pid.t;
  view : Fd_view.t;
}

let component = "fd.scripted"

let install ?(component = component) engine ~initial ~steps () =
  let n = Sim.Engine.n engine in
  let handle = Fd_handle.make engine ~component in
  List.iter (fun p -> Fd_handle.set handle p (initial p)) (Sim.Pid.all ~n);
  List.iter
    (fun { at; pid; view } -> Sim.Engine.at engine at (fun () -> Fd_handle.set handle pid view))
    steps;
  handle

let stable ~leader ~n p =
  let everybody = Sim.Pid.set_of_list (Sim.Pid.all ~n) in
  let suspected = Sim.Pid.Set.remove leader (Sim.Pid.Set.remove p everybody) in
  Fd_view.make ~trusted:leader ~suspected ()

let accurate_stable ~leader ~crashed _p = Fd_view.make ~trusted:leader ~suspected:crashed ()
