(** Stable leader election (Ω), after Aguilera, Delporte-Gallet, Fauconnier
    and Toueg [2] ("Stable leader election", DISC 2001), which the ◇C paper
    discusses in Sections 1 and 4.

    Plain order-based detectors like {!Leader_s} always re-adopt the
    smallest live-looking process, so a wrongly demoted p_1 grabs the
    leadership back every time one of its heartbeats squeaks through —
    leadership can flap indefinitely under pre-GST asynchrony.  A {i stable}
    Ω changes leader only when the current leader appears to have crashed.

    Accusation-counter algorithm: every process orders candidates by
    (accusation epoch, id) and trusts the minimum.  Only self-believed
    leaders send heartbeats (n-1 messages per period, like [16]), carrying
    the sender's epoch vector (merged pointwise-max).  A process whose
    current leader times out {i accuses} it — bumping its epoch and
    broadcasting the accusation — and moves to the new minimum.  A demoted
    process keeps its bumped epoch, so it does not displace the incumbent
    when its heartbeats resume (stability); a premature accusation grows the
    accuser's time-out when the accused is heard from again, so accusations
    die out after GST and the leadership converges (Ω's Property 1).

    Exported view: [trusted] = current minimum; [suspected] = everybody
    except the leader and oneself (Ω-grade accuracy, like {!Leader_s}), so
    {!Ecfd.Ec.of_leader_s} turns it into a ◇C for free.  Experiment E11
    measures the stability gain over {!Leader_s}. *)

type params = {
  period : int;
  initial_timeout : int;
  timeout_increment : int;
}

val default_params : params

val component : string

val install : ?component:string -> Sim.Engine.t -> params -> Fd_handle.t
