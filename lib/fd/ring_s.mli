(** Ring-based implementation of ◇S, a faithful adaptation of Larrea,
    Arévalo and Fernández [15] (DISC 1999).

    Processes are arranged on the logical ring p_1 -> p_2 -> ... -> p_n ->
    p_1.  Every period, each process POLLs its nearest predecessor it does
    not suspect; the polled process REPLYs at once.  A process that gets no
    reply from its monitored predecessor within an adaptive time-out
    suspects it and moves one step further back.  Suspicions and
    refutations are piggybacked on polls and replies as epoch vectors
    ([q] is suspected iff its suspicion epoch exceeds its refutation epoch),
    so they circulate around the ring in both directions: polls carry
    information backward, replies carry it forward.  A process refutes a
    circulating suspicion of itself by raising its own refutation epoch, and
    any direct message from a suspected process rescinds the suspicion and
    grows its time-out.

    Properties (checked empirically in the E1 benchmark):
    - strong completeness: the crash of q is detected by q's poller and the
      epoch vectors carry it to everyone — in up to n piggyback hops, which
      is exactly the "high latency in crash detection" of the ring approach
      that Section 4 of the ◇C paper contrasts with its transformation
      (measured in E3);
    - eventual weak accuracy under partial synchrony: each false suspicion
      grows a time-out, so mistakes die out after GST;
    - the guarantee Section 3 relies on: eventually the first non-suspected
      process, starting from the initial candidate p_1 and following the
      ring, is the same correct process at every correct process — which is
      how {!Ecfd.Ec.of_ring} extracts a ◇C leader at no extra cost.

    Cost: 2n messages per period (n polls + n replies), the figure quoted in
    Section 4 for the ring ◇P of [15].

    [propagate = false] disables the piggybacked epochs: suspicions stay
    local to the poller, which weakens the detector to weak completeness
    (a ◇W-grade detector, used to exercise {!Weak_to_strong}). *)

type params = {
  period : int;
  initial_timeout : int;
  timeout_increment : int;
  propagate : bool;
}

val default_params : params

val component : string

val install : ?component:string -> Sim.Engine.t -> params -> Fd_handle.t
(** Views have [trusted = None]; leader extraction is a ◇C-layer concern. *)
