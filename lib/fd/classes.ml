type property =
  | Strong_completeness
  | Weak_completeness
  | Eventual_strong_accuracy
  | Eventual_weak_accuracy
  | Eventual_leadership
  | Trusted_not_suspected

type t =
  | P_eventual
  | Q_eventual
  | S_eventual
  | W_eventual
  | Omega
  | Ec

let properties = function
  | P_eventual -> [ Strong_completeness; Eventual_strong_accuracy ]
  | Q_eventual -> [ Weak_completeness; Eventual_strong_accuracy ]
  | S_eventual -> [ Strong_completeness; Eventual_weak_accuracy ]
  | W_eventual -> [ Weak_completeness; Eventual_weak_accuracy ]
  | Omega -> [ Eventual_leadership ]
  | Ec ->
    [
      Strong_completeness;
      Eventual_weak_accuracy;
      Eventual_leadership;
      Trusted_not_suspected;
    ]

let close_under_implication props =
  let add p acc = if List.mem p acc then acc else p :: acc in
  List.fold_left
    (fun acc p ->
      let acc = add p acc in
      match p with
      | Strong_completeness -> add Weak_completeness acc
      | Eventual_strong_accuracy -> add Eventual_weak_accuracy acc
      | Weak_completeness | Eventual_weak_accuracy | Eventual_leadership
      | Trusted_not_suspected -> acc)
    [] props
  |> List.rev

let implied_properties c = close_under_implication (properties c)

let all = [ P_eventual; Q_eventual; S_eventual; W_eventual; Omega; Ec ]

let all_properties =
  [
    Strong_completeness;
    Weak_completeness;
    Eventual_strong_accuracy;
    Eventual_weak_accuracy;
    Eventual_leadership;
    Trusted_not_suspected;
  ]

let name = function
  | P_eventual -> "<>P"
  | Q_eventual -> "<>Q"
  | S_eventual -> "<>S"
  | W_eventual -> "<>W"
  | Omega -> "Omega"
  | Ec -> "<>C"

let property_name = function
  | Strong_completeness -> "strong completeness"
  | Weak_completeness -> "weak completeness"
  | Eventual_strong_accuracy -> "eventual strong accuracy"
  | Eventual_weak_accuracy -> "eventual weak accuracy"
  | Eventual_leadership -> "eventual leadership (Property 1)"
  | Trusted_not_suspected -> "eventually trusted not suspected"

let pp ppf c = Format.pp_print_string ppf (name c)
let pp_property ppf p = Format.pp_print_string ppf (property_name p)
