(** Failure detector outputs.

    The paper's detectors answer two kinds of queries (Section 2.1): a set
    of {i suspected} processes ([D.suspected_p], the classical Chandra–Toueg
    interface) and a {i trusted} process ([D.trusted_p], the Ω interface).
    A view bundles both; detectors that do not provide a leader leave
    [trusted = None]. *)

type t = {
  suspected : Sim.Pid.Set.t;
  trusted : Sim.Pid.t option;
}

val empty : t
(** Nothing suspected, nobody trusted. *)

val make : ?trusted:Sim.Pid.t -> suspected:Sim.Pid.Set.t -> unit -> t

val suspects : t -> Sim.Pid.t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
