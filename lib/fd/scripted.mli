(** A fully scripted failure detector.

    The experimenter fixes every module's output over time.  This is the
    adversarial instrument behind Theorem 3's lower-bound experiment (E5):
    a detector that is {i stable from the start} — e.g. every process
    permanently suspects everybody except a chosen correct process p_i —
    exposes how many rounds a rotating-coordinator algorithm needs before
    p_i's turn comes, while a ◇C algorithm decides in one round.

    It is also used to feed controlled inputs (e.g. a bare ◇W view, or
    transient false suspicions) into the transformations. *)

type step = {
  at : Sim.Sim_time.t;
  pid : Sim.Pid.t;
  view : Fd_view.t;
}

val component : string

val install :
  ?component:string ->
  Sim.Engine.t ->
  initial:(Sim.Pid.t -> Fd_view.t) ->
  steps:step list ->
  unit ->
  Fd_handle.t
(** Each module starts at [initial pid]; each step replaces one module's
    view at the given instant.  Sends no messages. *)

val stable : leader:Sim.Pid.t -> n:int -> Sim.Pid.t -> Fd_view.t
(** The Theorem 3 adversary's view: trust [leader], suspect everyone except
    [leader] and oneself — identical at every process, from time zero. *)

val accurate_stable : leader:Sim.Pid.t -> crashed:Sim.Pid.Set.t -> Sim.Pid.t -> Fd_view.t
(** Trust [leader], suspect exactly [crashed]. *)
