type params = {
  period : int;
  initial_timeout : int;
  timeout_increment : int;
  propagate : bool;
}

let default_params = { period = 10; initial_timeout = 30; timeout_increment = 20; propagate = true }

let component = "fd.ring-s"

(* Suspicion state travels as two epoch vectors: q is suspected iff
   susp.(q) > refute.(q).  Vectors are merged pointwise-max, so a suspicion
   or refutation is never lost, only superseded. *)
type Sim.Payload.t +=
  | Poll of int array * int array  (** susp epochs, refute epochs *)
  | Reply of int array * int array

type process_state = {
  susp : int array;
  refute : int array;
  timeout : int array;
  mutable monitored : Sim.Pid.t option;  (** Current poll target. *)
  mutable monitor_since : Sim.Sim_time.t;
  mutable last_reply : Sim.Sim_time.t;  (** Last direct message from [monitored]. *)
}

let install ?(component = component) engine params =
  if params.period <= 0 || params.initial_timeout <= 0 then
    invalid_arg "Ring_s.install: period and initial_timeout must be positive";
  let n = Sim.Engine.n engine in
  let handle = Fd_handle.make engine ~component in
  let states =
    Array.init n (fun _ ->
        {
          susp = Array.make n 0;
          refute = Array.make n 0;
          timeout = Array.make n params.initial_timeout;
          monitored = None;
          monitor_since = Sim.Sim_time.zero;
          last_reply = Sim.Sim_time.zero;
        })
  in
  let is_suspected st q = st.susp.(q) > st.refute.(q) in
  let publish p =
    let st = states.(p) in
    let suspected =
      List.fold_left
        (fun acc q -> if is_suspected st q then Sim.Pid.Set.add q acc else acc)
        Sim.Pid.Set.empty (Sim.Pid.all ~n)
    in
    Fd_handle.set handle p (Fd_view.make ~suspected ())
  in
  (* Nearest non-suspected process walking the ring from p in [step]
     direction (-1: predecessor side, +1: successor side). *)
  let nearest p step st =
    let rec walk q remaining =
      if remaining = 0 then None
      else if not (is_suspected st q) then Some q
      else walk ((q + step + n) mod n) (remaining - 1)
    in
    walk ((p + step + n) mod n) (n - 1)
  in
  let retarget p =
    let st = states.(p) in
    let target = nearest p (-1) st in
    if not (Option.equal Sim.Pid.equal target st.monitored) then begin
      st.monitored <- target;
      st.monitor_since <- Sim.Engine.now engine
    end
  in
  (* Direct evidence that [q] is alive: rescind any suspicion (by lifting the
     refutation epoch) and grow the time-out so the mistake is not repeated
     forever. *)
  let direct_alive p q =
    let st = states.(p) in
    if is_suspected st q then begin
      st.refute.(q) <- st.susp.(q);
      st.timeout.(q) <- st.timeout.(q) + params.timeout_increment;
      publish p;
      retarget p
    end
  in
  let merge p (susp : int array) (refute : int array) =
    if params.propagate then begin
      let st = states.(p) in
      let changed = ref false in
      for q = 0 to n - 1 do
        if susp.(q) > st.susp.(q) then begin
          st.susp.(q) <- susp.(q);
          changed := true
        end;
        if refute.(q) > st.refute.(q) then begin
          st.refute.(q) <- refute.(q);
          changed := true
        end
      done;
      (* Refute a circulating suspicion of myself: I am obviously alive. *)
      if is_suspected st p then begin
        st.refute.(p) <- st.susp.(p);
        changed := true
      end;
      if !changed then begin
        publish p;
        retarget p
      end
    end
  in
  let poll p () =
    let st = states.(p) in
    retarget p;
    match st.monitored with
    | None -> ()
    | Some q ->
      Sim.Engine.send engine ~component ~tag:"poll" ~src:p ~dst:q
        (Poll (Array.copy st.susp, Array.copy st.refute))
  in
  let check p () =
    let st = states.(p) in
    match st.monitored with
    | None -> ()
    | Some q ->
      let now = Sim.Engine.now engine in
      let start = Sim.Sim_time.max st.monitor_since st.last_reply in
      if now - start > st.timeout.(q) then begin
        (* No reply in time: suspect q (fresh epoch) and walk further back. *)
        st.susp.(q) <- st.refute.(q) + 1;
        publish p;
        retarget p
      end
  in
  let on_message p ~src payload =
    let st = states.(p) in
    match payload with
    | Poll (susp, refute) ->
      merge p susp refute;
      direct_alive p src;
      Sim.Engine.send engine ~component ~tag:"reply" ~src:p ~dst:src
        (Reply (Array.copy st.susp, Array.copy st.refute))
    | Reply (susp, refute) ->
      merge p susp refute;
      direct_alive p src;
      if Option.equal Sim.Pid.equal (Some src) st.monitored then
        st.last_reply <- Sim.Engine.now engine
    | _ -> ()
  in
  List.iter
    (fun p ->
      Sim.Engine.register engine ~component p (on_message p);
      ignore (Sim.Engine.every engine p ~phase:0 ~period:params.period (poll p) : unit -> unit);
      ignore (Sim.Engine.every engine p ~period:params.period (check p) : unit -> unit))
    (Sim.Pid.all ~n);
  handle
