(** Asynchronous reduction of a ◇S (or ◇W after {!Weak_to_strong}) detector
    to Ω, in the style of Chandra–Hadzilacos–Toueg [5] and Chu [7].

    Every period, every process increments an {i accusation counter} for
    each process its underlying detector currently suspects, and broadcasts
    its counter vector; vectors are merged pointwise-max.  The trusted
    process is the one minimising [(counter, id)].  Crashed processes are
    permanently suspected (strong completeness) so their counters grow
    without bound, while the ◇S accuracy property gives at least one correct
    process whose counter eventually freezes; the minimum therefore
    converges at every correct process to the same correct process.

    The point the paper makes in Section 3: this works in a {i fully
    asynchronous} system, but costs n(n-1) messages per period — whereas a
    leader-based ◇S like [16] yields the ◇C leader for free (experiment E8
    measures both). *)

type params = { period : int }

val default_params : params

val component : string

val install :
  ?component:string -> Sim.Engine.t -> underlying:Fd_handle.t -> params -> Fd_handle.t
(** The returned handle outputs [trusted = Some leader] and copies the
    underlying detector's suspected set (so stacking it on a ◇S yields a
    ◇C-grade view; on a bare Ω reading, ignore the suspected part). *)
