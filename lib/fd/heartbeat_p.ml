type params = {
  period : int;
  initial_timeout : int;
  timeout_increment : int;
}

let default_params = { period = 10; initial_timeout = 30; timeout_increment = 20 }

let component = "fd.heartbeat-p"

type Sim.Payload.t += Alive

type process_state = {
  last_heard : Sim.Sim_time.t array;  (** Per peer: last heartbeat receipt (or 0). *)
  timeout : int array;  (** Per peer: current time-out. *)
}

let install ?(component = component) engine params =
  if params.period <= 0 || params.initial_timeout <= 0 then
    invalid_arg "Heartbeat_p.install: period and initial_timeout must be positive";
  let n = Sim.Engine.n engine in
  let handle = Fd_handle.make engine ~component in
  let m_suspicions =
    Obs.Registry.counter (Sim.Engine.obs engine) ~name:"fd.heartbeat_p.suspicions"
  in
  let m_detection_latency =
    Obs.Registry.histogram (Sim.Engine.obs engine) ~name:"fd.heartbeat_p.detection_latency"
      ~buckets:[ 8; 16; 32; 64; 128; 256; 512; 1024 ]
  in
  let states =
    Array.init n (fun _ ->
        {
          last_heard = Array.make n Sim.Sim_time.zero;
          timeout = Array.make n params.initial_timeout;
        })
  in
  let suspect p q =
    (* The suspicion episode's span (opened here, closed if the suspicion
       turns out premature, open forever when q really crashed) is
       maintained by Fd_handle.set from the view diff. *)
    Obs.Registry.incr m_suspicions;
    Obs.Registry.observe m_detection_latency
      (Sim.Engine.now engine - states.(p).last_heard.(q));
    Fd_handle.update handle p (fun v ->
        { v with Fd_view.suspected = Sim.Pid.Set.add q v.Fd_view.suspected })
  in
  let unsuspect p q =
    Fd_handle.update handle p (fun v ->
        { v with Fd_view.suspected = Sim.Pid.Set.remove q v.Fd_view.suspected })
  in
  let check_timeouts p () =
    let st = states.(p) in
    let now = Sim.Engine.now engine in
    List.iter
      (fun q ->
        if not (Fd_view.suspects (Fd_handle.query handle p) q) then
          if now - st.last_heard.(q) > st.timeout.(q) then suspect p q)
      (Sim.Pid.others ~n p)
  in
  let on_message p ~src payload =
    match payload with
    | Alive ->
      let st = states.(p) in
      st.last_heard.(src) <- Sim.Engine.now engine;
      if Fd_view.suspects (Fd_handle.query handle p) src then begin
        (* A premature suspicion: rescind it and grow the time-out so the
           mistake is not repeated forever (Chandra–Toueg, Section 4 of [6]). *)
        st.timeout.(src) <- st.timeout.(src) + params.timeout_increment;
        unsuspect p src
      end
    | _ -> ()
  in
  List.iter
    (fun p ->
      Sim.Engine.register engine ~component p (on_message p);
      let send_heartbeat () =
        Sim.Engine.send_to_all_others engine ~component ~tag:"alive" ~src:p Alive
      in
      ignore (Sim.Engine.every engine p ~phase:0 ~period:params.period send_heartbeat
               : unit -> unit);
      ignore (Sim.Engine.every engine p ~period:params.period (check_timeouts p)
               : unit -> unit))
    (Sim.Pid.all ~n);
  handle
