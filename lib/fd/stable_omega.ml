type params = {
  period : int;
  initial_timeout : int;
  timeout_increment : int;
}

let default_params = { period = 10; initial_timeout = 30; timeout_increment = 20 }

let component = "fd.stable-omega"

type Sim.Payload.t +=
  | Leader_heartbeat of int array  (** The sender's epoch vector. *)
  | Accusation of int array

type process_state = {
  epoch : int array;  (** Accusation epochs, merged pointwise-max. *)
  timeout : int array;
  mutable last_heard : Sim.Sim_time.t;  (** Last heartbeat from the current leader. *)
  mutable leader_since : Sim.Sim_time.t;
  mutable accused : Sim.Pid.Set.t;  (** Accusations not yet proven premature. *)
}

let install ?(component = component) engine params =
  if params.period <= 0 || params.initial_timeout <= 0 then
    invalid_arg "Stable_omega.install: period and initial_timeout must be positive";
  let n = Sim.Engine.n engine in
  let handle = Fd_handle.make engine ~component in
  let states =
    Array.init n (fun _ ->
        {
          epoch = Array.make n 0;
          timeout = Array.make n params.initial_timeout;
          last_heard = Sim.Sim_time.zero;
          leader_since = Sim.Sim_time.zero;
          accused = Sim.Pid.Set.empty;
        })
  in
  let everybody = Sim.Pid.set_of_list (Sim.Pid.all ~n) in
  let leader_of st =
    (* argmin (epoch, id): epochs only grow, so the minimum moves away from
       a process exactly when it accumulates accusations. *)
    let best = ref 0 in
    for q = 1 to n - 1 do
      if st.epoch.(q) < st.epoch.(!best) then best := q
    done;
    !best
  in
  let publish p =
    let st = states.(p) in
    let leader = leader_of st in
    let suspected = Sim.Pid.Set.remove leader (Sim.Pid.Set.remove p everybody) in
    Fd_handle.set handle p (Fd_view.make ~trusted:leader ~suspected ())
  in
  let refresh_leadership p old_leader =
    let st = states.(p) in
    let leader = leader_of st in
    if not (Sim.Pid.equal leader old_leader) then begin
      st.leader_since <- Sim.Engine.now engine;
      st.last_heard <- Sim.Engine.now engine
    end;
    publish p
  in
  let merge p (theirs : int array) =
    let st = states.(p) in
    let old_leader = leader_of st in
    let changed = ref false in
    for q = 0 to n - 1 do
      if theirs.(q) > st.epoch.(q) then begin
        st.epoch.(q) <- theirs.(q);
        changed := true
      end
    done;
    if !changed then refresh_leadership p old_leader
  in
  let heartbeat p () =
    let st = states.(p) in
    if Sim.Pid.equal (leader_of st) p then
      Sim.Engine.send_to_all_others engine ~component ~tag:"leader-heartbeat" ~src:p
        (Leader_heartbeat (Array.copy st.epoch))
  in
  let check p () =
    let st = states.(p) in
    let leader = leader_of st in
    if not (Sim.Pid.equal leader p) then begin
      let now = Sim.Engine.now engine in
      let start = Sim.Sim_time.max st.leader_since st.last_heard in
      (* Patience grows with the accusation epoch: a deposed process sends
         no heartbeats, so the usual grow-on-refutation path cannot adapt
         its time-out; scaling by the epoch bounds the total number of
         premature accusations all the same. *)
      let effective_timeout =
        st.timeout.(leader) + (params.timeout_increment * st.epoch.(leader))
      in
      if now - start > effective_timeout then begin
        (* Accuse the silent leader: bump its epoch and tell everybody, so
           the whole system moves off it together. *)
        st.epoch.(leader) <- st.epoch.(leader) + 1;
        st.accused <- Sim.Pid.Set.add leader st.accused;
        Sim.Engine.send_to_all_others engine ~component ~tag:"accusation" ~src:p
          (Accusation (Array.copy st.epoch));
        refresh_leadership p leader
      end
    end
  in
  let on_message p ~src payload =
    let st = states.(p) in
    match payload with
    | Leader_heartbeat theirs ->
      merge p theirs;
      if Sim.Pid.equal src (leader_of st) then st.last_heard <- Sim.Engine.now engine;
      if Sim.Pid.Set.mem src st.accused then begin
        (* The accused is alive: the accusation was premature; be more
           patient with it from now on. *)
        st.accused <- Sim.Pid.Set.remove src st.accused;
        st.timeout.(src) <- st.timeout.(src) + params.timeout_increment
      end
    | Accusation theirs -> merge p theirs
    | _ -> ()
  in
  List.iter
    (fun p ->
      Sim.Engine.register engine ~component p (on_message p);
      publish p;
      ignore (Sim.Engine.every engine p ~phase:0 ~period:params.period (heartbeat p)
               : unit -> unit);
      ignore (Sim.Engine.every engine p ~period:params.period (check p) : unit -> unit))
    (Sim.Pid.all ~n);
  handle
