(** The failure-detector class taxonomy of Fig. 1, extended with Ω and the
    paper's ◇C ("Eventually Consistent") class.

    A class is a conjunction of abstract properties over infinite runs; the
    {!Spec.Fd_props} module checks finite-trace approximations of each
    property, and the E1 benchmark prints the resulting class matrix. *)

type property =
  | Strong_completeness
      (** Eventually every process that crashes is permanently suspected by
          every correct process. *)
  | Weak_completeness
      (** ... by some correct process. *)
  | Eventual_strong_accuracy
      (** There is a time after which correct processes are not suspected by
          any correct process. *)
  | Eventual_weak_accuracy
      (** There is a time after which some correct process is never
          suspected by any correct process. *)
  | Eventual_leadership
      (** Property 1: there is a time after which every correct process
          permanently trusts the same correct process. *)
  | Trusted_not_suspected
      (** Definition 1, third clause: there is a time after which the
          trusted process is not suspected. *)

type t =
  | P_eventual   (** ◇P: strong completeness + eventual strong accuracy. *)
  | Q_eventual   (** ◇Q: weak completeness + eventual strong accuracy. *)
  | S_eventual   (** ◇S: strong completeness + eventual weak accuracy. *)
  | W_eventual   (** ◇W: weak completeness + eventual weak accuracy. *)
  | Omega        (** Ω: eventual leader election. *)
  | Ec           (** ◇C: ◇S + Ω + eventually trusted ∉ suspected (Def. 1). *)

val properties : t -> property list
(** Defining properties of the class. *)

val implied_properties : t -> property list
(** [properties] closed under implication (strong completeness implies weak
    completeness; eventual strong accuracy implies eventual weak). *)

val all : t list
val all_properties : property list

val name : t -> string
(** "<>P", "<>S", "Omega", "<>C", ... (ASCII renderings). *)

val property_name : property -> string
val pp : Format.formatter -> t -> unit
val pp_property : Format.formatter -> property -> unit
