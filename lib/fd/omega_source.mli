(** Ω under weak synchrony: the accusation-counter election of Aguilera,
    Delporte-Gallet, Fauconnier and Toueg [3] ("On implementing Ω with weak
    reliability and synchrony assumptions", PODC 2003), cited by the paper
    in Section 1.1 as a setting where Ω — and hence ◇C's leader half — can
    be implemented although ◇P cannot.

    Model: it suffices that {b one} correct process (an {i eventual
    source}) has eventually timely output links; every other link may be
    arbitrarily slow or fair-lossy forever, so no time-out discipline can
    ever yield the ◇P accuracy guarantees.

    Algorithm: every process heartbeats to everybody each period, carrying
    its accusation-counter vector (merged pointwise-max).  A process that
    times out on q increments counter[q] and restarts q's grace period; a
    process heard from after being accused earns the accuser a larger
    time-out.  The trusted process is the argmin of (counter, id): only
    eventual sources keep bounded counters, so the minimum settles on one
    of them — leadership converges even though suspicion-style accuracy is
    impossible (experiment E12 demonstrates both halves).

    Cost: n(n-1) messages per period — the price of the weak assumptions
    (contrast with {!Leader_s}'s n-1 under full partial synchrony).

    Exported view: [trusted] = argmin; [suspected] = everybody except the
    leader and oneself (Ω-grade, enough for {!Ecfd.Ec.of_omega}). *)

type params = {
  period : int;
  initial_timeout : int;
  timeout_increment : int;
}

val default_params : params

val component : string

val install : ?component:string -> Sim.Engine.t -> params -> Fd_handle.t
