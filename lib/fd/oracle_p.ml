type params = { detection_delay : int }

let default_params = { detection_delay = 1 }

let component = "fd.oracle-p"

let install ?(component = component) engine ~schedule params =
  if params.detection_delay < 0 then
    invalid_arg "Oracle_p.install: detection_delay must be non-negative";
  let n = Sim.Engine.n engine in
  let handle = Fd_handle.make engine ~component in
  let reveal victim () =
    List.iter
      (fun p ->
        if Sim.Engine.is_alive engine p then
          Fd_handle.update handle p (fun v ->
              { v with Fd_view.suspected = Sim.Pid.Set.add victim v.Fd_view.suspected }))
      (Sim.Pid.all ~n)
  in
  List.iter
    (fun (victim, at) ->
      Sim.Engine.at engine (at + params.detection_delay) (reveal victim))
    schedule;
  handle
