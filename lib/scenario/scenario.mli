(** Canned experiment setups shared by the tests, the examples, the CLI and
    the benchmark harness.

    A scenario wires the full paper stack into one engine: partially
    synchronous links, a crash schedule, a failure detector, reliable
    broadcast, and (optionally) one consensus protocol per installed
    instance. *)

type net = {
  seed : int;
  gst : int;
  delta : int;  (** Post-GST delay bound. *)
  min_delay : int;
  pre_gst_max : int;  (** Worst pre-GST delay. *)
}

val default_net : net
(** seed 1, gst 0 (synchronous from the start), delta 8, delays in [1,8]. *)

val chaotic_net : ?seed:int -> gst:int -> unit -> net
(** Asynchronous-looking until [gst] (delays up to 20×delta), stable after. *)

val engine : ?net:net -> n:int -> unit -> Sim.Engine.t
(** Engine over partially synchronous links. *)

(** Which failure detector to install (all tuned to the same default
    periods, so costs are comparable). *)
type detector =
  | Heartbeat_p  (** All-to-all ◇P [6]. *)
  | Ring_s  (** Ring ◇S [15]. *)
  | Ring_w  (** Ring with propagation off: ◇W-grade. *)
  | Leader_s  (** Leader-based ◇S/Ω [16]. *)
  | Stable_omega  (** Stable leader election in the style of [2]. *)
  | Ec_from_leader  (** ◇C = {!Ecfd.Ec.of_leader_s} over Leader_s (free). *)
  | Ec_from_stable  (** ◇C over the stable Ω (same construction, free). *)
  | Ec_from_ring  (** ◇C = {!Ecfd.Ec.of_ring} over Ring_s (free). *)
  | Ec_from_omega_chu  (** ◇C over Ω obtained from Ring_s by {!Fd.Omega_from_s}. *)
  | Ec_from_heartbeat  (** ◇C = {!Ecfd.Ec.of_perfect} over the heartbeat ◇P. *)
  | Ec_from_perfect of Sim.Fault.t  (** ◇C over the P oracle (needs the schedule). *)
  | Scripted_stable of Sim.Pid.t  (** Theorem 3 adversary: stable, leader fixed. *)

val detector_name : detector -> string

val install_detector : Sim.Engine.t -> detector -> Fd.Fd_handle.t
(** Installs the detector (and whatever it is built on) and returns the
    top-level handle — the one whose component the {!Spec} checkers should
    look at. *)

type protocol =
  | Ct  (** Chandra–Toueg ◇S consensus. *)
  | Mr  (** Mostefaoui–Raynal-style Ω consensus. *)
  | Hr  (** Hurfin–Raynal-style fast ◇S consensus (2 steps/round). *)
  | Ec of Ecfd.Ec_consensus.params  (** The paper's ◇C consensus. *)

val protocol_name : protocol -> string

type consensus_run = {
  engine : Sim.Engine.t;
  fd : Fd.Fd_handle.t;
  instance : Consensus.Instance.t;
  trace : Sim.Trace.t;
  stats : Sim.Stats.t;
}

val run_consensus :
  ?net:net ->
  ?crashes:Sim.Fault.t ->
  ?proposals:(Sim.Pid.t -> Consensus.Value.t) ->
  ?propose_at:(Sim.Pid.t -> Sim.Sim_time.t) ->
  ?horizon:int ->
  n:int ->
  detector:detector ->
  protocol:protocol ->
  unit ->
  consensus_run
(** Build the full stack, apply the crash schedule, let every process that
    is still alive propose (default: process p proposes 100 + p at time 0),
    run to the horizon (default 5000), and return everything needed for
    checking.  Crashed-on-arrival processes do not propose. *)

val fd_run :
  ?net:net ->
  ?crashes:Sim.Fault.t ->
  ?horizon:int ->
  n:int ->
  detector:detector ->
  unit ->
  Fd.Fd_handle.t * Spec.Fd_props.run * Sim.Stats.t
(** Detector-only run, returning the handle, a spec run over its component,
    and the stats. *)
