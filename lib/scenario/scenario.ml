type net = {
  seed : int;
  gst : int;
  delta : int;
  min_delay : int;
  pre_gst_max : int;
}

let default_net = { seed = 1; gst = 0; delta = 8; min_delay = 1; pre_gst_max = 160 }

let chaotic_net ?(seed = 1) ~gst () =
  { seed; gst; delta = 8; min_delay = 1; pre_gst_max = 160 }

let engine ?(net = default_net) ~n () =
  let link =
    Sim.Link.partially_synchronous ~min_delay:net.min_delay ~pre_gst_max:net.pre_gst_max
      ~gst:net.gst ~delta:net.delta ()
  in
  Sim.Engine.create ~seed:net.seed ~n ~link ()

type detector =
  | Heartbeat_p
  | Ring_s
  | Ring_w
  | Leader_s
  | Stable_omega
  | Ec_from_leader
  | Ec_from_stable
  | Ec_from_ring
  | Ec_from_omega_chu
  | Ec_from_heartbeat
  | Ec_from_perfect of Sim.Fault.t
  | Scripted_stable of Sim.Pid.t

let detector_name = function
  | Heartbeat_p -> "heartbeat-p"
  | Ring_s -> "ring-s"
  | Ring_w -> "ring-w"
  | Leader_s -> "leader-s"
  | Stable_omega -> "stable-omega"
  | Ec_from_leader -> "ec-from-leader"
  | Ec_from_stable -> "ec-from-stable"
  | Ec_from_ring -> "ec-from-ring"
  | Ec_from_omega_chu -> "ec-from-omega-chu"
  | Ec_from_heartbeat -> "ec-from-heartbeat"
  | Ec_from_perfect _ -> "ec-from-perfect"
  | Scripted_stable p -> "scripted-stable-" ^ Sim.Pid.to_string p

let install_detector engine detector =
  match detector with
  | Heartbeat_p -> Fd.Heartbeat_p.install engine Fd.Heartbeat_p.default_params
  | Ring_s -> Fd.Ring_s.install engine Fd.Ring_s.default_params
  | Ring_w -> Fd.Ring_s.install engine { Fd.Ring_s.default_params with propagate = false }
  | Leader_s -> Fd.Leader_s.install engine Fd.Leader_s.default_params
  | Stable_omega -> Fd.Stable_omega.install engine Fd.Stable_omega.default_params
  | Ec_from_stable ->
    let base = Fd.Stable_omega.install engine Fd.Stable_omega.default_params in
    Ecfd.Ec.of_leader_s base ~engine
  | Ec_from_leader ->
    let base = Fd.Leader_s.install engine Fd.Leader_s.default_params in
    Ecfd.Ec.of_leader_s base ~engine
  | Ec_from_ring ->
    let base = Fd.Ring_s.install engine Fd.Ring_s.default_params in
    Ecfd.Ec.of_ring base ~engine
  | Ec_from_omega_chu ->
    let base = Fd.Ring_s.install engine Fd.Ring_s.default_params in
    let omega = Fd.Omega_from_s.install engine ~underlying:base Fd.Omega_from_s.default_params in
    Ecfd.Ec.of_omega omega ~engine
  | Ec_from_heartbeat ->
    let base = Fd.Heartbeat_p.install engine Fd.Heartbeat_p.default_params in
    Ecfd.Ec.of_perfect base ~engine
  | Ec_from_perfect schedule ->
    let base = Fd.Oracle_p.install engine ~schedule Fd.Oracle_p.default_params in
    Ecfd.Ec.of_perfect base ~engine
  | Scripted_stable leader ->
    let n = Sim.Engine.n engine in
    Fd.Scripted.install engine ~initial:(Fd.Scripted.stable ~leader ~n) ~steps:[] ()

type protocol =
  | Ct
  | Mr
  | Hr
  | Ec of Ecfd.Ec_consensus.params

let protocol_name = function
  | Ct -> "ct"
  | Mr -> "mr"
  | Hr -> "hr"
  | Ec params ->
    let base = if params.Ecfd.Ec_consensus.merge_phase01 then "ec-merged" else "ec" in
    (match params.Ecfd.Ec_consensus.wait_mode with
    | Ecfd.Ec_consensus.Extended -> base
    | Ecfd.Ec_consensus.Strict_majority -> base ^ "-strict")

type consensus_run = {
  engine : Sim.Engine.t;
  fd : Fd.Fd_handle.t;
  instance : Consensus.Instance.t;
  trace : Sim.Trace.t;
  stats : Sim.Stats.t;
}

let run_consensus ?(net = default_net) ?(crashes = Sim.Fault.none) ?proposals ?propose_at
    ?(horizon = 5000) ~n ~detector ~protocol () =
  let eng = engine ~net ~n () in
  Sim.Fault.apply eng crashes;
  let fd = install_detector eng detector in
  let rb = Broadcast.Reliable_broadcast.create eng in
  let instance =
    match protocol with
    | Ct -> Consensus.Ct_consensus.install eng ~fd ~rb ()
    | Mr -> Consensus.Mr_consensus.install eng ~fd ~rb ()
    | Hr -> Consensus.Hr_consensus.install eng ~fd ~rb ()
    | Ec params -> Ecfd.Ec_consensus.install eng ~fd ~rb params
  in
  let value_of = match proposals with Some f -> f | None -> fun p -> 100 + p in
  let time_of = match propose_at with Some f -> f | None -> fun _ -> 0 in
  List.iter
    (fun p ->
      Sim.Engine.at eng (time_of p) (fun () ->
          if Sim.Engine.is_alive eng p then instance.Consensus.Instance.propose p (value_of p)))
    (Sim.Pid.all ~n);
  Sim.Engine.run_until eng horizon;
  { engine = eng; fd; instance; trace = Sim.Engine.trace eng; stats = Sim.Engine.stats eng }

let fd_run ?(net = default_net) ?(crashes = Sim.Fault.none) ?(horizon = 5000) ~n ~detector () =
  let eng = engine ~net ~n () in
  Sim.Fault.apply eng crashes;
  let fd = install_detector eng detector in
  Sim.Engine.run_until eng horizon;
  let run =
    Spec.Fd_props.make_run ~component:(Fd.Fd_handle.component fd) ~n (Sim.Engine.trace eng)
  in
  (fd, run, Sim.Engine.stats eng)
