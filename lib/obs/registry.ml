(* Every instrument carries its registry's shared [hook] cell so updates
   can be intercepted without a per-update registry lookup: the sharded
   engine diverts updates made inside a parallel window into the recording
   shard's log and re-applies them (via {!apply}) in global order at the
   window barrier.  With no hook installed — the sequential engine, and
   the sharded engine outside windows — every update is the same direct
   field mutation as before, still allocation-free. *)
type counter = { mutable count : int; c_hook : hook }
and gauge = { mutable level : int; g_hook : hook }

and histogram = {
  bounds : int array;  (** Strictly increasing inclusive upper bounds. *)
  bucket_counts : int array;  (** [Array.length bounds + 1]: the last slot is overflow. *)
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_max : int;
  h_hook : hook;
}

and hook = { mutable hook : (op -> bool) option }

and op =
  | Op_incr of counter
  | Op_add of counter * int
  | Op_set of gauge * int
  | Op_set_max of gauge * int
  | Op_observe of histogram * int

type metric =
  | M_counter of counter
  | M_gauge of gauge
  | M_histogram of histogram

type t = { table : (string, metric) Hashtbl.t; hooks : hook }

let create () = { table = Hashtbl.create 32; hooks = { hook = None } }

let set_hook t f = t.hooks.hook <- f

let kind_name = function
  | M_counter _ -> "counter"
  | M_gauge _ -> "gauge"
  | M_histogram _ -> "histogram"

let mismatch ~name ~wanted existing =
  invalid_arg
    (Printf.sprintf "Obs.Registry: %S is already registered as a %s, not a %s" name
       (kind_name existing) wanted)

let counter t ~name =
  match Hashtbl.find_opt t.table name with
  | Some (M_counter c) -> c
  | Some m -> mismatch ~name ~wanted:"counter" m
  | None ->
    let c = { count = 0; c_hook = t.hooks } in
    Hashtbl.add t.table name (M_counter c);
    c

let gauge t ~name =
  match Hashtbl.find_opt t.table name with
  | Some (M_gauge g) -> g
  | Some m -> mismatch ~name ~wanted:"gauge" m
  | None ->
    let g = { level = 0; g_hook = t.hooks } in
    Hashtbl.add t.table name (M_gauge g);
    g

let histogram t ~name ~buckets =
  let bounds = Array.of_list buckets in
  if Array.length bounds = 0 then
    invalid_arg "Obs.Registry.histogram: buckets must be non-empty";
  Array.iteri
    (fun i b ->
      if i > 0 && b <= bounds.(i - 1) then
        invalid_arg "Obs.Registry.histogram: buckets must be strictly increasing")
    bounds;
  match Hashtbl.find_opt t.table name with
  | Some (M_histogram h) ->
    if
      not
        (Array.length h.bounds = Array.length bounds
        && Array.for_all2 Int.equal h.bounds bounds)
    then
      invalid_arg
        (Printf.sprintf "Obs.Registry: histogram %S re-registered with different buckets" name);
    h
  | Some m -> mismatch ~name ~wanted:"histogram" m
  | None ->
    let h =
      {
        bounds;
        bucket_counts = Array.make (Array.length bounds + 1) 0;
        h_count = 0;
        h_sum = 0;
        h_max = 0;
        h_hook = t.hooks;
      }
    in
    Hashtbl.add t.table name (M_histogram h);
    h

let incr_direct c = c.count <- c.count + 1
let add_direct c k = c.count <- c.count + k
let set_direct g v = g.level <- v
let set_max_direct g v = if v > g.level then g.level <- v

let observe_direct h v =
  let n = Array.length h.bounds in
  (* Few buckets per histogram; a linear scan beats binary search at these
     sizes and stays branch-predictable. *)
  let rec slot i = if i = n then n else if v <= h.bounds.(i) then i else slot (i + 1) in
  let s = slot 0 in
  h.bucket_counts.(s) <- h.bucket_counts.(s) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  if v > h.h_max then h.h_max <- v

(* The hooked-capture branches allocate the [op] box by design (a window
   capture is buffered work); the sequential [None] branches stay on the
   direct allocation-free mutations, which is what the engine's
   [@alloc.zero] roots actually execute. *)

let incr c =
  match c.c_hook.hook with
  | None -> incr_direct c
  | Some f ->
    (if not (f (Op_incr c)) then incr_direct c)
    [@alloc.allow extern
        "sharded-window capture: op boxing happens only with a hook installed, i.e. \
         inside a parallel window, never on the sequential hot path"]

let add c k =
  match c.c_hook.hook with
  | None -> add_direct c k
  | Some f ->
    if not (f (Op_add (c, k))) then add_direct c k

let set g v =
  match g.g_hook.hook with
  | None -> set_direct g v
  | Some f ->
    if not (f (Op_set (g, v))) then set_direct g v

let set_max g v =
  match g.g_hook.hook with
  | None -> set_max_direct g v
  | Some f ->
    (if not (f (Op_set_max (g, v))) then set_max_direct g v)
    [@alloc.allow extern
        "sharded-window capture: op boxing happens only with a hook installed, i.e. \
         inside a parallel window, never on the sequential hot path"]

let observe h v =
  match h.h_hook.hook with
  | None -> observe_direct h v
  | Some f ->
    if not (f (Op_observe (h, v))) then observe_direct h v

let apply = function
  | Op_incr c -> incr_direct c
  | Op_add (c, k) -> add_direct c k
  | Op_set (g, v) -> set_direct g v
  | Op_set_max (g, v) -> set_max_direct g v
  | Op_observe (h, v) -> observe_direct h v

let noop_op = Op_add ({ count = 0; c_hook = { hook = None } }, 0)

type value =
  | Counter of int
  | Gauge of int
  | Histogram of {
      buckets : int list;
      counts : int list;
      count : int;
      sum : int;
      max_value : int;
      p50 : int;
      p99 : int;
      p999 : int;
    }

type snapshot = (string * value) list

(* Rank-based bucket quantile: rank ceil(q*count), walked over cumulative
   bucket counts.  The estimate is the upper bound of the containing
   bucket, clamped to the largest observation (the bound can overshoot
   when the bucket is only partially filled); the overflow bucket has no
   bound and reports [max_value] directly.  Pure integer arithmetic over
   the deterministic counts, so the estimate is deterministic too. *)
let histogram_quantile ~buckets ~counts ~count ~max_value q =
  if count <= 0 then 0
  else begin
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int count)) in
      Stdlib.min count (Stdlib.max 1 r)
    in
    let bounds = Array.of_list buckets in
    let n = Array.length bounds in
    let rec walk i cum counts =
      match counts with
      | [] -> max_value
      | c :: rest ->
        let cum = cum + c in
        if cum >= rank then if i < n then Stdlib.min bounds.(i) max_value else max_value
        else walk (i + 1) cum rest
    in
    walk 0 0 counts
  end

(* Sorted so the snapshot is independent of registration order — the same
   rule Stats.snapshot follows (HACKING.md, "Determinism rules"). *)
let snapshot t =
  Hashtbl.fold
    (fun name m acc ->
      let v =
        match m with
        | M_counter c -> Counter c.count
        | M_gauge g -> Gauge g.level
        | M_histogram h ->
          let buckets = Array.to_list h.bounds in
          let counts = Array.to_list h.bucket_counts in
          let q =
            histogram_quantile ~buckets ~counts ~count:h.h_count ~max_value:h.h_max
          in
          Histogram
            {
              buckets;
              counts;
              count = h.h_count;
              sum = h.h_sum;
              max_value = h.h_max;
              p50 = q 0.5;
              p99 = q 0.99;
              p999 = q 0.999;
            }
      in
      (name, v) :: acc)
    t.table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp_snapshot ppf snap =
  List.iter
    (fun (name, v) ->
      match v with
      | Counter c -> Format.fprintf ppf "%s counter %d@." name c
      | Gauge g -> Format.fprintf ppf "%s gauge %d@." name g
      | Histogram { count; sum; max_value; _ } ->
        Format.fprintf ppf "%s histogram count=%d sum=%d max=%d@." name count sum max_value)
    snap

let json_int_list l = "[" ^ String.concat "," (List.map string_of_int l) ^ "]"

(* Metric names are code literals (lint R6), so they never need escaping —
   but escape anyway: a JSON emitter that can produce invalid JSON is a
   latent bug. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_of_snapshot snap =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\"metrics\":[";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      (match v with
      | Counter c ->
        Buffer.add_string buf
          (Printf.sprintf "{\"name\":\"%s\",\"kind\":\"counter\",\"value\":%d}" (json_escape name)
             c)
      | Gauge g ->
        Buffer.add_string buf
          (Printf.sprintf "{\"name\":\"%s\",\"kind\":\"gauge\",\"value\":%d}" (json_escape name) g)
      | Histogram { buckets; counts; count; sum; max_value; p50; p99; p999 } ->
        Buffer.add_string buf
          (Printf.sprintf
             "{\"name\":\"%s\",\"kind\":\"histogram\",\"buckets\":%s,\"counts\":%s,\"count\":%d,\"sum\":%d,\"max\":%d,\"p50\":%d,\"p99\":%d,\"p999\":%d}"
             (json_escape name) (json_int_list buckets) (json_int_list counts) count sum
             max_value p50 p99 p999)))
    snap;
  Buffer.add_string buf "]}";
  Buffer.contents buf
