(* Streaming Chen/Toueg-style QoS accounting over a detector run.

   The fold consumes an ordered stream of crash and view-change events
   (adapted from Sim.Trace by Sim.Trace_qos, or parsed from exported
   JSONL by the tracequery rollup) and maintains, per (observer, subject)
   pair, the interval bookkeeping behind the paper-standard metrics:
   detection time, mistake count/duration, query accuracy, and the
   correctness intervals the SLA rollups (availability, downtime,
   longest outage) are computed from.  Everything is integer tick
   arithmetic over the deterministic event stream, so two byte-identical
   traces produce byte-identical reports. *)

type event =
  | Crash of { at : int; pid : int }
  | View of { at : int; observer : int; suspected : int list; trusted : int option }

type pair = {
  observer : int;
  subject : int;
  window : int;
  subject_crashed_at : int option;
  detection_time : int option;
  mistakes : int;
  mistake_time : int;
  longest_mistake : int;
  up_time : int;
  incorrect_time : int;
  longest_outage : int;
}

type leader = {
  l_observer : int;
  l_window : int;
  l_changes : int;
  l_steady_at : int option;
  l_final : int option;
}

type report = { n : int; horizon : int; pairs : pair list; leaders : leader list }

type t = {
  n : int;
  crashed_at : int option array;  (* per pid: crash instant *)
  (* Flattened (observer * n + subject) pair state. *)
  suspected : bool array;
  susp_since : int array;  (* start of the current suspicion interval *)
  mistake_open : int array;  (* -1 = no mistake accruing *)
  mistakes : int array;
  mistake_time : int array;
  longest_mistake : int array;
  incorrect_since : int array;  (* -1 = view of the subject currently correct *)
  incorrect_time : int array;
  longest_outage : int array;
  (* Per-observer leader (Omega) state. *)
  trusted : int array;  (* -1 = none *)
  trusted_seen : bool array;
  changes : int array;
  steady_at : int array;
}

let create ~n =
  if n < 1 then invalid_arg "Obs.Qos.create: n must be >= 1";
  let pairs = n * n in
  {
    n;
    crashed_at = Array.make n None;
    suspected = Array.make pairs false;
    susp_since = Array.make pairs 0;
    mistake_open = Array.make pairs (-1);
    mistakes = Array.make pairs 0;
    mistake_time = Array.make pairs 0;
    longest_mistake = Array.make pairs 0;
    incorrect_since = Array.make pairs (-1);
    incorrect_time = Array.make pairs 0;
    longest_outage = Array.make pairs 0;
    trusted = Array.make n (-1);
    trusted_seen = Array.make n false;
    changes = Array.make n 0;
    steady_at = Array.make n 0;
  }

let idx t o s = (o * t.n) + s

let close_outage t i ~at =
  if t.incorrect_since.(i) >= 0 then begin
    let d = at - t.incorrect_since.(i) in
    t.incorrect_time.(i) <- t.incorrect_time.(i) + d;
    if d > t.longest_outage.(i) then t.longest_outage.(i) <- d;
    t.incorrect_since.(i) <- -1
  end

let open_outage t i ~at = if t.incorrect_since.(i) < 0 then t.incorrect_since.(i) <- at

let close_mistake t i ~at =
  if t.mistake_open.(i) >= 0 then begin
    let d = at - t.mistake_open.(i) in
    t.mistake_time.(i) <- t.mistake_time.(i) + d;
    if d > t.longest_mistake.(i) then t.longest_mistake.(i) <- d;
    t.mistake_open.(i) <- -1
  end

let feed t event =
  match event with
  | Crash { at; pid = c } ->
    if c >= 0 && c < t.n && t.crashed_at.(c) = None then begin
      t.crashed_at.(c) <- Some at;
      (* As an observer, c's accounting window closes here: freeze every
         accruing interval of its pairs at the crash instant. *)
      for s = 0 to t.n - 1 do
        if s <> c then begin
          let i = idx t c s in
          close_mistake t i ~at;
          close_outage t i ~at
        end
      done;
      (* As a subject, the ground truth flips at every live observer:
         a standing suspicion stops being a mistake and becomes correct;
         a trusting view becomes incorrect until the observer reacts. *)
      for o = 0 to t.n - 1 do
        if o <> c && t.crashed_at.(o) = None then begin
          let i = idx t o c in
          if t.suspected.(i) then begin
            close_mistake t i ~at;
            close_outage t i ~at
          end
          else open_outage t i ~at
        end
      done
    end
  | View { at; observer = o; suspected; trusted } ->
    if o >= 0 && o < t.n && t.crashed_at.(o) = None then begin
      let now = Array.make t.n false in
      List.iter (fun s -> if s >= 0 && s < t.n then now.(s) <- true) suspected;
      for s = 0 to t.n - 1 do
        if s <> o then begin
          let i = idx t o s in
          if t.suspected.(i) <> now.(s) then begin
            let dead = t.crashed_at.(s) <> None in
            t.suspected.(i) <- now.(s);
            if now.(s) then begin
              t.susp_since.(i) <- at;
              if dead then close_outage t i ~at
              else begin
                t.mistakes.(i) <- t.mistakes.(i) + 1;
                t.mistake_open.(i) <- at;
                open_outage t i ~at
              end
            end
            else if dead then open_outage t i ~at
            else begin
              close_mistake t i ~at;
              close_outage t i ~at
            end
          end
        end
      done;
      let new_trusted = match trusted with Some l when l >= 0 && l < t.n -> l | _ -> -1 in
      if new_trusted <> t.trusted.(o) then begin
        t.trusted.(o) <- new_trusted;
        t.changes.(o) <- t.changes.(o) + 1;
        t.steady_at.(o) <- at;
        if new_trusted >= 0 then t.trusted_seen.(o) <- true
      end
    end

(* [finish] closes the still-open intervals virtually (no state mutation,
   so it can be called at several horizons over one fold). *)
let finish t ~horizon =
  let window_of o = match t.crashed_at.(o) with Some e -> Stdlib.min e horizon | None -> horizon in
  let pairs = ref [] in
  for o = t.n - 1 downto 0 do
    let window = window_of o in
    for s = t.n - 1 downto 0 do
      if s <> o then begin
        let i = idx t o s in
        let mistake_time, longest_mistake =
          if t.mistake_open.(i) >= 0 && t.mistake_open.(i) < window then begin
            let d = window - t.mistake_open.(i) in
            (t.mistake_time.(i) + d, Stdlib.max t.longest_mistake.(i) d)
          end
          else (t.mistake_time.(i), t.longest_mistake.(i))
        in
        let incorrect_time, longest_outage =
          if t.incorrect_since.(i) >= 0 && t.incorrect_since.(i) < window then begin
            let d = window - t.incorrect_since.(i) in
            (t.incorrect_time.(i) + d, Stdlib.max t.longest_outage.(i) d)
          end
          else (t.incorrect_time.(i), t.longest_outage.(i))
        in
        let subject_crashed_at = t.crashed_at.(s) in
        let detection_time =
          match (subject_crashed_at, t.crashed_at.(o)) with
          | Some tc, None when t.suspected.(i) && tc <= horizon ->
            Some (Stdlib.max 0 (t.susp_since.(i) - tc))
          | _ -> None
        in
        let up_time =
          match subject_crashed_at with Some c -> Stdlib.min c window | None -> window
        in
        pairs :=
          {
            observer = o;
            subject = s;
            window;
            subject_crashed_at;
            detection_time;
            mistakes = t.mistakes.(i);
            mistake_time;
            longest_mistake;
            up_time;
            incorrect_time;
            longest_outage;
          }
          :: !pairs
      end
    done
  done;
  let leaders =
    List.init t.n (fun o ->
        {
          l_observer = o;
          l_window = window_of o;
          l_changes = t.changes.(o);
          l_steady_at = (if t.trusted_seen.(o) then Some t.steady_at.(o) else None);
          l_final = (if t.trusted.(o) >= 0 then Some t.trusted.(o) else None);
        })
  in
  { n = t.n; horizon; pairs = !pairs; leaders }

let of_events ~n ~horizon events =
  let t = create ~n in
  List.iter (feed t) events;
  finish t ~horizon
