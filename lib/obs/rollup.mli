(** SLA rollups and deterministic JSON over {!Qos} reports.

    One {!scenario} per detector run (named, e.g. ["e1.heartbeat.seed1"]);
    {!to_json} renders a list of them as the [BENCH_qos.json] document
    validated by [docs/schemas/qos.schema.json].  The renderer is shared
    by `ecfd qos`, the tracequery `rollup` subcommand and bench e22, so
    identical traces produce byte-identical rollups on every surface
    (and, via trace byte-identity, at every `--shards K`). *)

type agg = {
  a_pairs : int;  (** Ordered (observer, subject) pairs, [n*(n-1)]. *)
  a_crashed : int;  (** Pairs whose subject crashed. *)
  a_detected : int;
  a_undetected : int;
      (** Crashed subject, live observer, suspicion never stuck. *)
  a_detection_mean : float option;  (** Over detected pairs; [None] if none. *)
  a_detection_max : int;
  a_mistakes : int;
  a_mistake_time : int;
  a_longest_mistake : int;
  a_up_time : int;
  a_mistake_rate_per_1k : float;
      (** Mistakes per 1000 tick*pairs of subject up-time. *)
  a_query_accuracy : float;  (** [1 - mistake_time / up_time]. *)
  a_window_total : int;
  a_incorrect_total : int;  (** Total downtime (incorrect-view time). *)
  a_availability_pct : float;
  a_longest_outage : int;
  a_leader_elected : bool;
  a_leader_changes : int;
  a_final_leader_agreed : bool;
      (** All observers alive at the horizon trust the same final leader. *)
  a_steady_leader_at : int option;
      (** Time-to-steady-leader: the last leader change at any surviving
          observer, when they agreed; [None] otherwise. *)
}

val aggregate : Qos.report -> agg

type scenario = { name : string; component : string; report : Qos.report }

val to_json : scenario list -> string
(** The full deterministic JSON document (trailing newline included):
    [{"bench": "qos", "schema_version": 1, "scenarios": [...]}] with
    per-scenario aggregates plus per-pair and per-observer detail. *)
