(** Typed metrics.

    A registry holds named counters, gauges and fixed-bucket histograms.
    The engine and the protocol components register metrics once (names
    {b must} be string literals — lint rule R6 — so the metric space is a
    static property of the code, never data-dependent) and update them on
    the hot path with plain field mutations.

    Snapshots are deterministic: metrics are listed in name order, and a
    snapshot is a pure function of the update history — never of table
    insertion order — so snapshot JSON can ride in bench output under the
    byte-identity contract (HACKING.md, "Determinism rules").

    Registration is idempotent: registering an existing name with the
    same kind (and, for histograms, the same buckets) returns the metric
    already installed, so a component can be installed several times over
    one engine and its updates aggregate.  Re-registering a name with a
    different kind or different buckets raises [Invalid_argument]. *)

type t

val create : unit -> t

(** {1 Metric kinds} *)

type counter
(** Monotone event count. *)

type gauge
(** Last-set (or high-water) level. *)

type histogram
(** Fixed upper-bound buckets plus an overflow bucket, with count / sum /
    max of every observation. *)

val counter : t -> name:string -> counter
val gauge : t -> name:string -> gauge

val histogram : t -> name:string -> buckets:int list -> histogram
(** [buckets] are inclusive upper bounds, strictly increasing, non-empty.
    An observation lands in the first bucket whose bound is [>=] the
    value, or in the implicit overflow bucket. *)

(** {1 Updates} *)

val incr : counter -> unit
val add : counter -> int -> unit

val set : gauge -> int -> unit

val set_max : gauge -> int -> unit
(** High-water update: keep the maximum of the current and the new value. *)

val observe : histogram -> int -> unit

(** {1 Update interception}

    Used by the sharded simulation engine: updates made inside a parallel
    window are captured as {!op} values by a hook installed with
    {!set_hook}, then re-applied with {!apply} in the global deterministic
    order at the window barrier.  With no hook installed every update is a
    direct allocation-free field mutation, exactly as before. *)

type op
(** One captured update, closed over its instrument. *)

val set_hook : t -> (op -> bool) option -> unit
(** Install (or clear) the capture hook shared by every instrument of this
    registry.  The hook returns [true] when it captured the op (the update
    is then deferred until {!apply}) and [false] to let the update apply
    directly — the sharded engine declines outside parallel windows. *)

val apply : op -> unit
(** Apply a captured update, bypassing the hook. *)

val noop_op : op
(** An op whose {!apply} changes nothing — a filler value for op buffers. *)

(** {1 Snapshots} *)

type value =
  | Counter of int
  | Gauge of int
  | Histogram of {
      buckets : int list;  (** The registered upper bounds. *)
      counts : int list;  (** One count per bucket, plus the overflow bucket. *)
      count : int;
      sum : int;
      max_value : int;  (** Largest observation; 0 when [count = 0]. *)
      p50 : int;  (** Median estimate from bucket counts (see below). *)
      p99 : int;
      p999 : int;
    }

type snapshot = (string * value) list
(** In strictly increasing name order. *)

val histogram_quantile :
  buckets:int list -> counts:int list -> count:int -> max_value:int -> float -> int
(** [histogram_quantile ~buckets ~counts ~count ~max_value q] estimates the
    [q]-quantile of a histogram from its bucket counts: the rank
    [ceil (q * count)] (clamped to [1 .. count]) is located in the
    cumulative bucket counts, and the estimate is that bucket's inclusive
    upper bound, clamped to [max_value]; a rank landing in the overflow
    bucket reports [max_value].  [0] when [count = 0].  Deterministic —
    a pure function of the (deterministic) counts, so p50/p99/p999 can
    ride in bench JSON under the byte-identity contract. *)

val snapshot : t -> snapshot

val pp_snapshot : Format.formatter -> snapshot -> unit
(** One [name kind value] line per metric, for dumps and debugging. *)

val json_of_snapshot : snapshot -> string
(** A deterministic JSON object:
    [{"metrics": [{"name": ..., "kind": ..., ...}, ...]}] with metrics in
    name order — embeddable in the bench JSON alongside {!Sim.Stats}. *)
