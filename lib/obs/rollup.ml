(* SLA rollups over Qos reports, rendered as deterministic JSON
   (docs/schemas/qos.schema.json).  The same renderer backs the three
   surfaces — `ecfd qos`, the tracequery `rollup` subcommand and bench
   e22 — so their outputs agree byte-for-byte on identical traces. *)

type agg = {
  a_pairs : int;
  a_crashed : int;  (* crashed subjects, counted once per pair *)
  a_detected : int;
  a_undetected : int;
  a_detection_mean : float option;  (* over detected pairs *)
  a_detection_max : int;
  a_mistakes : int;
  a_mistake_time : int;
  a_longest_mistake : int;
  a_up_time : int;
  a_mistake_rate_per_1k : float;  (* mistakes per 1000 tick*pairs of up-time *)
  a_query_accuracy : float;
  a_window_total : int;
  a_incorrect_total : int;
  a_availability_pct : float;
  a_longest_outage : int;
  a_leader_elected : bool;
  a_leader_changes : int;
  a_final_leader_agreed : bool;
  a_steady_leader_at : int option;
}

let aggregate (r : Qos.report) =
  let pairs = r.Qos.pairs in
  let a_pairs = List.length pairs in
  let a_crashed =
    List.length (List.filter (fun p -> p.Qos.subject_crashed_at <> None) pairs)
  in
  let detections = List.filter_map (fun p -> p.Qos.detection_time) pairs in
  let a_detected = List.length detections in
  (* Undetected = a live observer never ended up permanently suspecting a
     crashed subject; pairs whose observer itself crashed are excluded
     from both counts. *)
  let a_undetected =
    List.length
      (List.filter
         (fun p ->
           p.Qos.subject_crashed_at <> None
           && p.Qos.detection_time = None
           && p.Qos.window = r.Qos.horizon)
         pairs)
  in
  let a_detection_mean =
    match detections with
    | [] -> None
    | ds ->
      Some (float_of_int (List.fold_left ( + ) 0 ds) /. float_of_int (List.length ds))
  in
  let a_detection_max = List.fold_left Stdlib.max 0 detections in
  let sum f = List.fold_left (fun acc p -> acc + f p) 0 pairs in
  let a_mistakes = sum (fun p -> p.Qos.mistakes) in
  let a_mistake_time = sum (fun p -> p.Qos.mistake_time) in
  let a_longest_mistake =
    List.fold_left (fun acc p -> Stdlib.max acc p.Qos.longest_mistake) 0 pairs
  in
  let a_up_time = sum (fun p -> p.Qos.up_time) in
  let a_mistake_rate_per_1k =
    if a_up_time > 0 then 1000.0 *. float_of_int a_mistakes /. float_of_int a_up_time
    else 0.0
  in
  let a_query_accuracy =
    if a_up_time > 0 then
      1.0 -. (float_of_int a_mistake_time /. float_of_int a_up_time)
    else 1.0
  in
  let a_window_total = sum (fun p -> p.Qos.window) in
  let a_incorrect_total = sum (fun p -> p.Qos.incorrect_time) in
  let a_availability_pct =
    if a_window_total > 0 then
      100.0 *. (1.0 -. (float_of_int a_incorrect_total /. float_of_int a_window_total))
    else 100.0
  in
  let a_longest_outage =
    List.fold_left (fun acc p -> Stdlib.max acc p.Qos.longest_outage) 0 pairs
  in
  let a_leader_elected =
    List.exists (fun l -> l.Qos.l_steady_at <> None) r.Qos.leaders
  in
  let a_leader_changes = List.fold_left (fun acc l -> acc + l.Qos.l_changes) 0 r.Qos.leaders in
  (* "Agreed" and "steady" are judged over the observers still alive at
     the horizon: they all trust the same (live) final leader. *)
  let live = List.filter (fun l -> l.Qos.l_window = r.Qos.horizon) r.Qos.leaders in
  let a_final_leader_agreed, a_steady_leader_at =
    match live with
    | [] -> (false, None)
    | l0 :: rest ->
      let agreed =
        l0.Qos.l_final <> None
        && List.for_all (fun l -> l.Qos.l_final = l0.Qos.l_final) rest
      in
      if agreed then
        ( true,
          Some
            (List.fold_left
               (fun acc l ->
                 match l.Qos.l_steady_at with Some s -> Stdlib.max acc s | None -> acc)
               0 live) )
      else (false, None)
  in
  {
    a_pairs;
    a_crashed;
    a_detected;
    a_undetected;
    a_detection_mean;
    a_detection_max;
    a_mistakes;
    a_mistake_time;
    a_longest_mistake;
    a_up_time;
    a_mistake_rate_per_1k;
    a_query_accuracy;
    a_window_total;
    a_incorrect_total;
    a_availability_pct;
    a_longest_outage;
    a_leader_elected;
    a_leader_changes;
    a_final_leader_agreed;
    a_steady_leader_at;
  }

type scenario = { name : string; component : string; report : Qos.report }

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let opt_int = function None -> "null" | Some v -> string_of_int v
let opt_float = function None -> "null" | Some v -> Printf.sprintf "%.6f" v

let add_scenario buf { name; component; report } =
  let a = aggregate report in
  Printf.bprintf buf
    "    {\n      \"name\": \"%s\",\n      \"component\": \"%s\",\n      \"n\": %d,\n      \"horizon\": %d,\n"
    (json_escape name) (json_escape component) report.Qos.n report.Qos.horizon;
  Printf.bprintf buf
    "      \"detection\": { \"crashed_pairs\": %d, \"detected\": %d, \"undetected\": %d, \"mean_ticks\": %s, \"max_ticks\": %d },\n"
    a.a_crashed a.a_detected a.a_undetected (opt_float a.a_detection_mean) a.a_detection_max;
  Printf.bprintf buf
    "      \"mistakes\": { \"count\": %d, \"rate_per_1k_ticks\": %.6f, \"total_ticks\": %d, \"longest_ticks\": %d, \"query_accuracy\": %.6f },\n"
    a.a_mistakes a.a_mistake_rate_per_1k a.a_mistake_time a.a_longest_mistake
    a.a_query_accuracy;
  Printf.bprintf buf
    "      \"sla\": { \"availability_pct\": %.6f, \"total_downtime_ticks\": %d, \"longest_outage_ticks\": %d, \"leader_elected\": %b, \"leader_changes\": %d, \"final_leader_agreed\": %b, \"steady_leader_at\": %s },\n"
    a.a_availability_pct a.a_incorrect_total a.a_longest_outage a.a_leader_elected
    a.a_leader_changes a.a_final_leader_agreed (opt_int a.a_steady_leader_at);
  Printf.bprintf buf "      \"pairs\": [";
  List.iteri
    (fun i (p : Qos.pair) ->
      Printf.bprintf buf
        "%s\n        { \"observer\": %d, \"subject\": %d, \"window\": %d, \"crashed_at\": %s, \"detection_ticks\": %s, \"mistakes\": %d, \"mistake_ticks\": %d, \"longest_mistake_ticks\": %d, \"up_ticks\": %d, \"downtime_ticks\": %d, \"longest_outage_ticks\": %d }"
        (if i = 0 then "" else ",")
        p.Qos.observer p.Qos.subject p.Qos.window (opt_int p.Qos.subject_crashed_at)
        (opt_int p.Qos.detection_time) p.Qos.mistakes p.Qos.mistake_time
        p.Qos.longest_mistake p.Qos.up_time p.Qos.incorrect_time p.Qos.longest_outage)
    report.Qos.pairs;
  Printf.bprintf buf "\n      ],\n";
  Printf.bprintf buf "      \"leaders\": [";
  List.iteri
    (fun i (l : Qos.leader) ->
      Printf.bprintf buf
        "%s\n        { \"observer\": %d, \"window\": %d, \"changes\": %d, \"steady_at\": %s, \"final\": %s }"
        (if i = 0 then "" else ",")
        l.Qos.l_observer l.Qos.l_window l.Qos.l_changes (opt_int l.Qos.l_steady_at)
        (opt_int l.Qos.l_final))
    report.Qos.leaders;
  Printf.bprintf buf "\n      ]\n    }"

let to_json scenarios =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"bench\": \"qos\",\n  \"schema_version\": 1,\n  \"scenarios\": [\n";
  List.iteri
    (fun i sc ->
      if i > 0 then Buffer.add_string buf ",\n";
      add_scenario buf sc)
    scenarios;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf
