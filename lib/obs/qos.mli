(** Detector quality-of-service accounting (Chen/Toueg-style metrics).

    A streaming fold over the ordered crash / view-change events of one
    detector run.  The caller feeds events in trace order (the adapter
    {!Sim.Trace_qos} walks [Sim.Trace.iter]; the tracequery [rollup]
    subcommand parses exported JSONL) and closes the fold at the run's
    horizon; the report carries, per (observer, subject) pair, the raw
    interval totals that the standard QoS metrics and the SLA rollups
    ({!Rollup}) are derived from.

    Semantics, per ordered pair [(o, s)] with [o <> s]:

    - {b Accounting window}: [\[0, min(horizon, crash o))] — a crashed
      observer's pairs freeze at its crash instant.
    - {b Detection time} (TD): [s] crashed at [tc] and [o] (alive at the
      horizon) suspects [s] at the horizon — the time from [tc] until the
      start of that final, permanent suspicion interval ([0] when the
      suspicion predates the crash).  [None] when [s] never crashed, [o]
      crashed, or the suspicion never stuck (an undetected crash).
    - {b Mistake} (lambda_M, T_M): a suspicion interval beginning while
      [s] is alive; its duration accrues until rescind, the subject's
      crash, or the window end, whichever is first.  [mistake_time] sums
      the durations; [up_time] (the window truncated at the subject's
      crash) is the denominator of the mistake rate and of query
      accuracy ([1 - mistake_time / up_time]).
    - {b Correctness intervals} (SLA): the pair's view is correct when
      [alive(s) && not suspected] or [crashed(s) && suspected];
      [incorrect_time] and [longest_outage] total the complement —
      availability is [1 - incorrect_time / window].

    Per observer, the leader (Omega) output is tracked as a change
    count, the instant of the last change ([l_steady_at] — the
    time-to-steady-leader when the run converged) and the final trusted
    process.  Every leader transition counts, including the initial
    election ([None -> Some l]).

    All arithmetic is integer ticks over the deterministic stream: two
    byte-identical traces yield byte-identical reports (the property the
    sharded-vs-sequential rollup tests pin). *)

type event =
  | Crash of { at : int; pid : int }
  | View of { at : int; observer : int; suspected : int list; trusted : int option }
      (** A detector module's output at [observer] changed.  Pids outside
          [0 .. n-1] are ignored defensively (hand-built streams). *)

type pair = {
  observer : int;
  subject : int;
  window : int;  (** [min horizon (crash observer)]. *)
  subject_crashed_at : int option;
  detection_time : int option;
  mistakes : int;
  mistake_time : int;
  longest_mistake : int;
  up_time : int;  (** Window truncated at the subject's crash. *)
  incorrect_time : int;
  longest_outage : int;
}

type leader = {
  l_observer : int;
  l_window : int;
  l_changes : int;
  l_steady_at : int option;  (** [None] when no leader was ever trusted. *)
  l_final : int option;
}

type report = { n : int; horizon : int; pairs : pair list; leaders : leader list }
(** [pairs] in (observer, subject) lexicographic order, all [n*(n-1)]
    ordered pairs; [leaders] one entry per observer, in pid order. *)

type t

val create : n:int -> t
(** Fresh fold state: everyone alive, nobody suspected, no leader. *)

val feed : t -> event -> unit
(** Consume the next event.  Events must arrive in trace order (the
    stream is a fold, not a sort); duplicate crashes and events at or
    from already-crashed processes are ignored. *)

val finish : t -> horizon:int -> report
(** Close all open intervals at [horizon] (virtually — the fold state is
    not mutated) and assemble the report. *)

val of_events : n:int -> horizon:int -> event list -> report
(** [create] + [feed] each + [finish]: convenience for tests. *)
