let round_of_tag tag =
  match String.rindex_opt tag '.' with
  | None -> None
  | Some i ->
    let suffix = String.sub tag (i + 1) (String.length tag - i - 1) in
    if String.length suffix >= 2 && suffix.[0] = 'r' then
      int_of_string_opt (String.sub suffix 1 (String.length suffix - 1))
    else None

let base_of_tag tag =
  match String.rindex_opt tag '.' with
  | Some i when round_of_tag tag <> None -> String.sub tag 0 i
  | Some _ | None -> tag

let fold_sends trace ~component f init =
  let acc = ref init in
  Sim.Trace.iter trace (fun e ->
      match e.Sim.Trace.body with
      | Sim.Trace.Send { component = c; tag; _ } when String.equal c component -> (
        match round_of_tag tag with None -> () | Some r -> acc := f !acc r tag)
      | _ -> ());
  !acc

let sends_by_round trace ~component =
  let table = Hashtbl.create 16 in
  fold_sends trace ~component
    (fun () r _ ->
      Hashtbl.replace table r (1 + Option.value ~default:0 (Hashtbl.find_opt table r)))
    ();
  Hashtbl.fold (fun r c acc -> (r, c) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let sends_in_round trace ~component ~round =
  fold_sends trace ~component (fun acc r _ -> if r = round then acc + 1 else acc) 0

let sends_by_tag_in_round trace ~component ~round =
  let table = Hashtbl.create 16 in
  fold_sends trace ~component
    (fun () r tag ->
      if r = round then begin
        let base = base_of_tag tag in
        Hashtbl.replace table base
          (1 + Option.value ~default:0 (Hashtbl.find_opt table base))
      end)
    ();
  Hashtbl.fold (fun tag c acc -> (tag, c) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
