(** Uniform Consensus property checkers (Section 5.1), over a run's trace.

    - {b Termination}: every correct process eventually decides;
    - {b Uniform integrity}: every process decides at most once;
    - {b Uniform agreement}: no two processes (correct or faulty) decide
      differently;
    - {b Validity}: every decided value was proposed.

    Since every ◇C detector embeds a ◇S detector, the paper (following
    Guerraoui [10]) treats the uniform variants throughout; so do we. *)

type violation =
  | No_decision of Sim.Pid.t  (** A correct process never decided. *)
  | Multiple_decisions of Sim.Pid.t
  | Disagreement of { p : Sim.Pid.t; v : int; q : Sim.Pid.t; w : int }
  | Invalid_value of { p : Sim.Pid.t; v : int }

val pp_violation : Format.formatter -> violation -> unit

val termination : Sim.Trace.t -> n:int -> violation list
val uniform_integrity : Sim.Trace.t -> violation list
val uniform_agreement : Sim.Trace.t -> violation list
val validity : Sim.Trace.t -> violation list

val check_all : Sim.Trace.t -> n:int -> violation list
(** Empty = the run satisfies Uniform Consensus. *)

val check_safety : Sim.Trace.t -> violation list
(** Integrity + agreement + validity only — what must hold on {i every}
    run, even those too short (or too asynchronous) to terminate. *)

(** {1 Metrics} *)

val decision_round : Sim.Trace.t -> int option
(** Largest decision round among deciders (how long agreement took). *)

val first_decision_time : Sim.Trace.t -> Sim.Sim_time.t option
val last_decision_time : Sim.Trace.t -> Sim.Sim_time.t option
