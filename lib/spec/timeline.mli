(** ASCII timelines of a finished run — one row per process, one column per
    time slice.  The quickest way to {i see} a detector stabilise, a leader
    fail over, or a consensus round stall (wired into the CLI's
    [--timeline] flag).

    Leadership view: each cell shows whom the process trusted during the
    slice — [*] itself, [1]..[9]/[a]..[z] another process (1-based), [.]
    nobody, [x] crashed, [?] mixed (the output changed inside the slice).

    Suspicion view: each cell counts the processes suspected during the
    slice ([0]-[9], [+] for more), same [x]/[?] conventions.

    Decision view (consensus): [.] undecided, [p] proposed, [D] decided,
    [x] crashed. *)

val render_leadership : ?width:int -> Fd_props.run -> horizon:Sim.Sim_time.t -> string
val render_suspicions : ?width:int -> Fd_props.run -> horizon:Sim.Sim_time.t -> string

val render_decisions :
  ?width:int -> Sim.Trace.t -> n:int -> horizon:Sim.Sim_time.t -> string

val legend : string
