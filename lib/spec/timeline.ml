let default_width = 64

let pid_char q =
  if q < 9 then Char.chr (Char.code '1' + q)
  else if q < 9 + 26 then Char.chr (Char.code 'a' + q - 9)
  else '#'

(* Sample a piecewise-constant timeline over [width] slices of [horizon]:
   the cell shows the (single) value holding through the slice, or [mixed]
   if it changed inside it. *)
let sample_slices ~width ~horizon ~equal ~(timeline : 'a Eventually.timeline) ~render ~mixed =
  let slice = Stdlib.max 1 (horizon / width) in
  let cells = Bytes.make width ' ' in
  let rec fill col current rest =
    if col < width then begin
      let slice_end = (col + 1) * slice in
      (* Advance through the events inside this slice. *)
      let rec advance current changed rest =
        match rest with
        | (at, v) :: more when at < slice_end ->
          let changed =
            changed || (match current with None -> false | Some c -> not (equal c v))
          in
          advance (Some v) changed more
        | _ -> (current, changed, rest)
      in
      let current', changed, rest' = advance current false rest in
      let ch =
        if changed then mixed
        else match current' with None -> ' ' | Some v -> render v
      in
      Bytes.set cells col ch;
      fill (col + 1) current' rest'
    end
  in
  fill 0 None timeline;
  Bytes.to_string cells

let mark_crash ~width ~horizon row crash_at =
  match crash_at with
  | None -> row
  | Some at ->
    let slice = Stdlib.max 1 (horizon / width) in
    let col = Stdlib.min (width - 1) (at / slice) in
    String.mapi (fun i c -> if i > col then 'x' else if i = col then 'X' else c) row

let render_rows ~width run ~horizon ~cell =
  let crashes = Sim.Trace.crashes run.Fd_props.trace in
  let buffer = Buffer.create 1024 in
  List.iter
    (fun p ->
      let tl =
        Eventually.of_views ~component:run.Fd_props.component run.Fd_props.trace ~pid:p
      in
      let row =
        sample_slices ~width ~horizon ~equal:Fd.Fd_view.equal ~timeline:tl ~render:(cell p)
          ~mixed:'?'
      in
      let crash_at = List.assoc_opt p crashes in
      Buffer.add_string buffer
        (Printf.sprintf "%4s |%s|\n" (Sim.Pid.to_string p)
           (mark_crash ~width ~horizon row crash_at)))
    (Sim.Pid.all ~n:run.Fd_props.n);
  Buffer.add_string buffer
    (Printf.sprintf "     0%*s\n" (width - 1) (Printf.sprintf "t=%d" horizon));
  Buffer.contents buffer

let render_leadership ?(width = default_width) run ~horizon =
  let cell p (v : Fd.Fd_view.t) =
    match v.Fd.Fd_view.trusted with
    | None -> '.'
    | Some l when Sim.Pid.equal l p -> '*'
    | Some l -> pid_char l
  in
  render_rows ~width run ~horizon ~cell

let render_suspicions ?(width = default_width) run ~horizon =
  let cell _p (v : Fd.Fd_view.t) =
    let k = Sim.Pid.Set.cardinal v.Fd.Fd_view.suspected in
    if k <= 9 then Char.chr (Char.code '0' + k) else '+'
  in
  render_rows ~width run ~horizon ~cell

let render_decisions ?(width = default_width) trace ~n ~horizon =
  let crashes = Sim.Trace.crashes trace in
  let decisions = Sim.Trace.decisions trace in
  let slice = Stdlib.max 1 (horizon / width) in
  let buffer = Buffer.create 1024 in
  List.iter
    (fun p ->
      let proposed_at =
        Seq.find_map
          (fun (e : Sim.Trace.event) ->
            match e.body with
            | Sim.Trace.Propose { at; pid; _ } when Sim.Pid.equal pid p -> Some at
            | _ -> None)
          (Sim.Trace.to_seq trace)
      in
      let decided_at =
        List.find_map
          (fun (pid, _, _, at) -> if Sim.Pid.equal pid p then Some at else None)
          decisions
      in
      let row =
        String.init width (fun col ->
            let t = col * slice in
            match (proposed_at, decided_at) with
            | _, Some d when t >= d -> 'D'
            | Some pr, _ when t >= pr -> 'p'
            | _ -> '.')
      in
      let crash_at = List.assoc_opt p crashes in
      Buffer.add_string buffer
        (Printf.sprintf "%4s |%s|\n" (Sim.Pid.to_string p)
           (mark_crash ~width ~horizon row crash_at))
    )
    (Sim.Pid.all ~n);
  Buffer.add_string buffer
    (Printf.sprintf "     0%*s\n" (width - 1) (Printf.sprintf "t=%d" horizon));
  Buffer.contents buffer

let legend =
  "legend: leadership  * self  1..9/a..z trusted peer  . none  ? mixed  X crash\n\
  \        suspicions  0..9/+ count of suspected\n\
  \        decisions   p proposed  D decided"
