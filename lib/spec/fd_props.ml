type report = {
  holds : bool;
  since : Sim.Sim_time.t option;
}

type run = {
  trace : Sim.Trace.t;
  component : string;
  n : int;
}

let make_run ~component ~n trace = { trace; component; n }

let crashed_set run = Sim.Pid.set_of_list (List.map fst (Sim.Trace.crashes run.trace))

let correct_processes run =
  let crashed = crashed_set run in
  List.filter (fun p -> not (Sim.Pid.Set.mem p crashed)) (Sim.Pid.all ~n:run.n)

let crashed_processes run = Sim.Pid.Set.elements (crashed_set run)

let timeline run p = Eventually.of_views ~component:run.component run.trace ~pid:p

let report_of_since since = { holds = Option.is_some since; since }

(* "For every correct observer p, [pred q] stabilizes on p's views", for
   every q in [targets]; conjunction over all pairs. *)
let for_all_pairs run ~targets pred =
  let observers = correct_processes run in
  Eventually.all
    (List.concat_map
       (fun p ->
         let tl = timeline run p in
         List.map (fun q -> Eventually.stabilization (pred q) tl) targets)
       observers)

let suspected_in q (v : Fd.Fd_view.t) = Sim.Pid.Set.mem q v.Fd.Fd_view.suspected

let strong_completeness run =
  report_of_since (for_all_pairs run ~targets:(crashed_processes run) suspected_in)

let weak_completeness run =
  let observers = correct_processes run in
  let per_victim q =
    Eventually.any
      (List.map (fun p -> Eventually.stabilization (suspected_in q) (timeline run p)) observers)
  in
  report_of_since (Eventually.all (List.map per_victim (crashed_processes run)))

let eventual_strong_accuracy run =
  let correct = correct_processes run in
  report_of_since
    (for_all_pairs run ~targets:correct (fun q v -> not (suspected_in q v)))

let eventual_weak_accuracy run =
  let correct = correct_processes run in
  let for_leader l =
    Eventually.all
      (List.map
         (fun p -> Eventually.stabilization (fun v -> not (suspected_in l v)) (timeline run p))
         correct)
  in
  report_of_since (Eventually.any (List.map for_leader correct))

let leadership run =
  let correct = correct_processes run in
  let trusts l (v : Fd.Fd_view.t) = Option.equal Sim.Pid.equal v.Fd.Fd_view.trusted (Some l) in
  let for_leader l =
    Eventually.all
      (List.map (fun p -> Eventually.stabilization (trusts l) (timeline run p)) correct)
  in
  report_of_since (Eventually.any (List.map for_leader correct))

let trusted_not_suspected run =
  let coherent (v : Fd.Fd_view.t) =
    match v.Fd.Fd_view.trusted with
    | None -> false
    | Some l -> not (Sim.Pid.Set.mem l v.Fd.Fd_view.suspected)
  in
  report_of_since
    (Eventually.all
       (List.map
          (fun p -> Eventually.stabilization coherent (timeline run p))
          (correct_processes run)))

let check property run =
  match (property : Fd.Classes.property) with
  | Strong_completeness -> strong_completeness run
  | Weak_completeness -> weak_completeness run
  | Eventual_strong_accuracy -> eventual_strong_accuracy run
  | Eventual_weak_accuracy -> eventual_weak_accuracy run
  | Eventual_leadership -> leadership run
  | Trusted_not_suspected -> trusted_not_suspected run

let satisfies_class cls run =
  List.for_all (fun p -> (check p run).holds) (Fd.Classes.properties cls)

let class_matrix run = List.map (fun p -> (p, check p run)) Fd.Classes.all_properties

let eventual_leader run =
  let correct = correct_processes run in
  let trusts l (v : Fd.Fd_view.t) = Option.equal Sim.Pid.equal v.Fd.Fd_view.trusted (Some l) in
  List.find_opt
    (fun l ->
      List.for_all
        (fun p -> Eventually.holds_eventually (trusts l) (timeline run p))
        correct)
    correct

let detection_time run ~victim =
  for_all_pairs run ~targets:[ victim ] suspected_in

let trusted_transitions run p =
  (* [(time, previous trusted, new trusted)] for every switch. *)
  let rec walk prev acc = function
    | [] -> List.rev acc
    | (at, (v : Fd.Fd_view.t)) :: rest ->
      let cur = v.Fd.Fd_view.trusted in
      if Option.equal Sim.Pid.equal cur prev then walk prev acc rest
      else walk cur ((at, prev, cur) :: acc) rest
  in
  match timeline run p with
  | [] -> []
  | (at0, v0) :: rest -> walk v0.Fd.Fd_view.trusted [ (at0, None, v0.Fd.Fd_view.trusted) ] rest

let leader_changes run p = Stdlib.max 0 (List.length (trusted_transitions run p) - 1)

let leader_changes_after run p ~after =
  List.length (List.filter (fun (at, _, _) -> at > after) (trusted_transitions run p))

let false_suspicion_events_after run ~after =
  (* Transitions, at correct observers, where a correct process becomes
     newly suspected strictly after [after]. *)
  let correct = correct_processes run in
  let count_observer p =
    let rec walk prev acc = function
      | [] -> acc
      | (at, (v : Fd.Fd_view.t)) :: rest ->
        let fresh = Sim.Pid.Set.diff v.Fd.Fd_view.suspected prev in
        let wrong =
          Sim.Pid.Set.cardinal (Sim.Pid.Set.filter (fun q -> List.mem q correct) fresh)
        in
        walk v.Fd.Fd_view.suspected (if at > after then acc + wrong else acc) rest
    in
    walk Sim.Pid.Set.empty 0 (timeline run p)
  in
  List.fold_left (fun acc p -> acc + count_observer p) 0 correct

let demotions_of_live_leaders run p =
  let crash_times = Sim.Trace.crashes run.trace in
  let alive_at q at =
    not (List.exists (fun (victim, t) -> Sim.Pid.equal victim q && t <= at) crash_times)
  in
  List.length
    (List.filter
       (fun (at, prev, _) ->
         match prev with Some q -> alive_at q at | None -> false)
       (trusted_transitions run p))
