type violation =
  | No_decision of Sim.Pid.t
  | Multiple_decisions of Sim.Pid.t
  | Disagreement of { p : Sim.Pid.t; v : int; q : Sim.Pid.t; w : int }
  | Invalid_value of { p : Sim.Pid.t; v : int }

let pp_violation ppf = function
  | No_decision p -> Format.fprintf ppf "correct process %a never decided" Sim.Pid.pp p
  | Multiple_decisions p -> Format.fprintf ppf "%a decided more than once" Sim.Pid.pp p
  | Disagreement { p; v; q; w } ->
    Format.fprintf ppf "%a decided %d but %a decided %d" Sim.Pid.pp p v Sim.Pid.pp q w
  | Invalid_value { p; v } ->
    Format.fprintf ppf "%a decided %d, which was never proposed" Sim.Pid.pp p v

let termination trace ~n =
  let crashed = Sim.Pid.set_of_list (List.map fst (Sim.Trace.crashes trace)) in
  let deciders =
    Sim.Pid.set_of_list (List.map (fun (p, _, _, _) -> p) (Sim.Trace.decisions trace))
  in
  List.filter_map
    (fun p ->
      if Sim.Pid.Set.mem p crashed || Sim.Pid.Set.mem p deciders then None
      else Some (No_decision p))
    (Sim.Pid.all ~n)

let uniform_integrity trace =
  let counts = Hashtbl.create 8 in
  List.iter
    (fun (p, _, _, _) ->
      Hashtbl.replace counts p (1 + Option.value ~default:0 (Hashtbl.find_opt counts p)))
    (Sim.Trace.decisions trace);
  Hashtbl.fold (fun p c acc -> if c > 1 then p :: acc else acc) counts []
  |> List.sort Sim.Pid.compare
  |> List.map (fun p -> Multiple_decisions p)

let uniform_agreement trace =
  match Sim.Trace.decisions trace with
  | [] -> []
  | (p, v, _, _) :: rest ->
    List.filter_map
      (fun (q, w, _, _) -> if w <> v then Some (Disagreement { p; v; q; w }) else None)
      rest

let validity trace =
  let proposed = List.map snd (Sim.Trace.proposals trace) in
  List.filter_map
    (fun (p, v, _, _) -> if List.mem v proposed then None else Some (Invalid_value { p; v }))
    (Sim.Trace.decisions trace)

let check_safety trace =
  uniform_integrity trace @ uniform_agreement trace @ validity trace

let check_all trace ~n = termination trace ~n @ check_safety trace

let decision_round trace =
  List.fold_left
    (fun acc (_, _, round, _) ->
      Some (match acc with None -> round | Some r -> Stdlib.max r round))
    None (Sim.Trace.decisions trace)

let first_decision_time trace =
  List.fold_left
    (fun acc (_, _, _, at) -> Some (match acc with None -> at | Some t -> Sim.Sim_time.min t at))
    None (Sim.Trace.decisions trace)

let last_decision_time trace =
  List.fold_left
    (fun acc (_, _, _, at) -> Some (match acc with None -> at | Some t -> Sim.Sim_time.max t at))
    None (Sim.Trace.decisions trace)
