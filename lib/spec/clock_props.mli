(** Causal-stamp sanity over a run's trace.

    {!Sim.Trace.record} maintains the [seq]/[lc] stamps; this module checks
    the guarantees those stamps are supposed to give downstream tooling
    (the [ecfd-trace] ancestry query, the exporters):

    - {b sequence density}: [seq] is [0, 1, 2, ...] in order of occurrence;
    - {b per-process monotonicity}: the Lamport clocks of the events at any
      one process strictly increase ([Span]s, [Fd_view]s, etc. included);
    - {b clock condition across links}: every [Deliver] carries a clock
      strictly greater than its matching [Send]'s, and has a matching
      [Send] (same message id) earlier in the trace. *)

type violation =
  | Nonmonotone_seq of { seq : int; prev : int }
  | Clock_regression of { pid : Sim.Pid.t; seq : int; lc : int; prev_lc : int }
  | Causality_violation of { msg : int; send_lc : int; deliver_lc : int }
      (** clock(Send) >= clock(Deliver) for a matched message. *)
  | Unmatched_deliver of { msg : int; seq : int }
      (** A delivery whose message id was never sent before it. *)

val pp_violation : Format.formatter -> violation -> unit

val check : Sim.Trace.t -> violation list
(** Empty = the trace's stamps are causally consistent.  Violations come
    out in trace order. *)

val check_events : Sim.Trace.event list -> violation list
(** Same checks over a hand-built event list (tests). *)
