(** Per-round message accounting for the consensus protocols.

    The paper's Section 5.4 counts {i messages per round}.  The protocols
    tag every message with its round ("estimate.r1", "ph2.r3", ...); this
    module aggregates a trace's [Send] events by that suffix, so a steady-
    state round can be measured even though execution pipelines into the
    next round while the decision's reliable broadcast is still in flight.
    Reliable-broadcast traffic lives in its own component and is excluded,
    matching the paper ("we have not considered the messages involved in
    the Reliable Broadcast primitive"). *)

val round_of_tag : string -> int option
(** Parses the trailing [".r<k>"]; [None] if absent. *)

val sends_by_round : Sim.Trace.t -> component:string -> (int * int) list
(** [(round, messages sent in that round)], ascending rounds. *)

val sends_in_round : Sim.Trace.t -> component:string -> round:int -> int

val sends_by_tag_in_round :
  Sim.Trace.t -> component:string -> round:int -> (string * int) list
(** Message-kind breakdown of one round (tag without the round suffix). *)
