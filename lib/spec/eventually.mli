(** "Eventually forever" over finite traces.

    The paper's completeness/accuracy/leadership properties all have the
    shape "there is a time after which X holds permanently".  On a finite
    run we approximate: X must hold from some instant through the run's
    horizon (DESIGN.md §4); the instant is reported so experiments can
    also measure convergence time.  The caller is responsible for running
    far enough past GST and the last crash for the approximation to be
    meaningful. *)

type 'a timeline = (Sim.Sim_time.t * 'a) list
(** Piecewise-constant signal: value [v] holds from its instant until the
    next entry.  Must be sorted by time (ties resolved by the later entry). *)

val of_views :
  component:string -> Sim.Trace.t -> pid:Sim.Pid.t -> Fd.Fd_view.t timeline
(** The recorded output views of one failure-detector module. *)

val stabilization : ('a -> bool) -> 'a timeline -> Sim.Sim_time.t option
(** Earliest instant from which the predicate holds through the end of the
    timeline; [None] if it is false at the end (or the timeline is empty). *)

val holds_eventually : ('a -> bool) -> 'a timeline -> bool

val all : Sim.Sim_time.t option list -> Sim.Sim_time.t option
(** Conjunction: latest stabilization if all hold, [None] otherwise.
    [all []] is [Some 0] (vacuously true from the start). *)

val any : Sim.Sim_time.t option list -> Sim.Sim_time.t option
(** Disjunction: earliest stabilization among those that hold. *)
