module Pair = struct
  type t = Sim.Pid.t * Sim.Pid.t

  let compare (a1, a2) (b1, b2) =
    match Sim.Pid.compare a1 b1 with 0 -> Sim.Pid.compare a2 b2 | c -> c
end

module Pair_set = Set.Make (Pair)

let active_links trace ~components ~from_t ~to_t =
  let acc = ref Pair_set.empty in
  Sim.Trace.iter trace (fun e ->
      match e.Sim.Trace.body with
      | Sim.Trace.Send { at; src; dst; component; _ }
        when at >= from_t && at <= to_t && List.mem component components ->
        acc := Pair_set.add (src, dst) !acc
      | _ -> ());
  Pair_set.elements !acc

let star_of ~leader ~n =
  List.concat_map
    (fun q -> if Sim.Pid.equal q leader then [] else [ (q, leader); (leader, q) ])
    (Sim.Pid.all ~n)
  |> List.sort Pair.compare

let pp_links ppf links =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf (s, d) -> Format.fprintf ppf "%a>%a" Sim.Pid.pp s Sim.Pid.pp d))
    links
