(** Which directed links actually carry messages — for the paper's
    quiescence claim (Section 4): in the ◇C → ◇P transformation,
    "eventually only these links carry messages", namely the n-1 links into
    the leader (I-AM-ALIVE) and the n-1 links out of it (suspect lists /
    piggybacked heartbeats).  Experiment E14 measures the active-link set
    of a steady-state window and compares it with that star. *)

val active_links :
  Sim.Trace.t ->
  components:string list ->
  from_t:Sim.Sim_time.t ->
  to_t:Sim.Sim_time.t ->
  (Sim.Pid.t * Sim.Pid.t) list
(** Distinct (src, dst) pairs with at least one [Send] of one of the
    components inside the window, sorted. *)

val star_of : leader:Sim.Pid.t -> n:int -> (Sim.Pid.t * Sim.Pid.t) list
(** The 2(n-1) links of the leader's star: everyone to the leader and the
    leader to everyone, sorted. *)

val pp_links : Format.formatter -> (Sim.Pid.t * Sim.Pid.t) list -> unit
