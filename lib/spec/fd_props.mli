(** Failure-detector property checkers (the Fig. 1 taxonomy, plus Ω's
    Property 1 and ◇C's coherence clause), evaluated over a finished run's
    trace.

    Correct processes are those that never crash in the trace; a property
    holds if its finite-trace approximation (see {!Eventually}) does.  Each
    checker reports the stabilization instant, so experiments can also
    compare {i convergence times} (e.g. the ring's detection latency,
    experiment E3). *)

type report = {
  holds : bool;
  since : Sim.Sim_time.t option;  (** Stabilization instant, when it holds. *)
}

type run = {
  trace : Sim.Trace.t;
  component : string;  (** The detector's component name. *)
  n : int;
}

val make_run : component:string -> n:int -> Sim.Trace.t -> run

val correct_processes : run -> Sim.Pid.t list
val crashed_processes : run -> Sim.Pid.t list

val strong_completeness : run -> report
val weak_completeness : run -> report
val eventual_strong_accuracy : run -> report
val eventual_weak_accuracy : run -> report

val leadership : run -> report
(** Ω's Property 1: eventually every correct process permanently trusts the
    same correct process. *)

val trusted_not_suspected : run -> report
(** Definition 1's third clause. *)

val check : Fd.Classes.property -> run -> report

val satisfies_class : Fd.Classes.t -> run -> bool
(** All the class's defining properties hold on the run. *)

val class_matrix : run -> (Fd.Classes.property * report) list
(** Every property with its report — one row of the E1 matrix. *)

val eventual_leader : run -> Sim.Pid.t option
(** The common leader once {!leadership} holds. *)

val detection_time : run -> victim:Sim.Pid.t -> Sim.Sim_time.t option
(** Instant from which {b every} correct process permanently suspects
    [victim] (crash-detection latency numerator for E3). *)

val leader_changes : run -> Sim.Pid.t -> int
(** How many times the process's trusted output switched to a different
    process over the run — the instability that {i stable} leader election
    [2] minimises (experiment E11). *)

val leader_changes_after : run -> Sim.Pid.t -> after:Sim.Sim_time.t -> int
(** Trusted-output switches strictly after the given instant — non-zero
    deep into a run means leadership never settled (robust against the
    finite-trace "eventually" being fooled by a quiet final stretch). *)

val false_suspicion_events_after : run -> after:Sim.Sim_time.t -> int
(** Fresh suspicions of correct processes by correct processes strictly
    after the given instant, summed over all observers.  Non-zero deep into
    a run means eventual strong accuracy never settled (robust against a
    horizon that happens to land in a calm stretch). *)

val demotions_of_live_leaders : run -> Sim.Pid.t -> int
(** Among those changes, how many demoted a process that had {b not}
    crashed by the time of the change.  A stable Ω keeps this near zero
    once the system calms down. *)
