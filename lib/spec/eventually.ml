type 'a timeline = (Sim.Sim_time.t * 'a) list

let of_views ~component trace ~pid =
  List.filter_map
    (fun (at, p, suspected, trusted) ->
      if Sim.Pid.equal p pid then Some (at, { Fd.Fd_view.suspected; trusted }) else None)
    (Sim.Trace.fd_views ~component trace)

let stabilization pred timeline =
  (* Scan forward, remembering the start of the current all-true suffix. *)
  let rec scan current = function
    | [] -> current
    | (at, v) :: rest ->
      if pred v then scan (match current with None -> Some at | Some _ -> current) rest
      else scan None rest
  in
  scan None timeline

let holds_eventually pred timeline = Option.is_some (stabilization pred timeline)

let all results =
  List.fold_left
    (fun acc r ->
      match (acc, r) with
      | Some a, Some b -> Some (Sim.Sim_time.max a b)
      | _, None | None, _ -> None)
    (Some Sim.Sim_time.zero) results

let any results =
  List.fold_left
    (fun acc r ->
      match (acc, r) with
      | Some a, Some b -> Some (Sim.Sim_time.min a b)
      | Some a, None -> Some a
      | None, other -> other)
    None results
