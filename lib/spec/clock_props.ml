type violation =
  | Nonmonotone_seq of { seq : int; prev : int }
  | Clock_regression of { pid : Sim.Pid.t; seq : int; lc : int; prev_lc : int }
  | Causality_violation of { msg : int; send_lc : int; deliver_lc : int }
  | Unmatched_deliver of { msg : int; seq : int }

let pp_violation ppf = function
  | Nonmonotone_seq { seq; prev } ->
    Format.fprintf ppf "seq %d follows seq %d (not dense/increasing)" seq prev
  | Clock_regression { pid; seq; lc; prev_lc } ->
    Format.fprintf ppf "clock at %a regressed: #%d has @%d after @%d" Sim.Pid.pp pid seq lc
      prev_lc
  | Causality_violation { msg; send_lc; deliver_lc } ->
    Format.fprintf ppf "msg %d: send @%d not before deliver @%d" msg send_lc deliver_lc
  | Unmatched_deliver { msg; seq } ->
    Format.fprintf ppf "deliver #%d references msg %d with no prior send" seq msg

type state = {
  mutable prev_seq : int;
  last_lc : (Sim.Pid.t, int) Hashtbl.t;
  send_lc : (int, int) Hashtbl.t;  (** Message id -> the send's Lamport stamp. *)
  mutable rev_violations : violation list;
}

let flag st v = st.rev_violations <- v :: st.rev_violations

let scan st (e : Sim.Trace.event) =
  if e.seq <> st.prev_seq + 1 then flag st (Nonmonotone_seq { seq = e.seq; prev = st.prev_seq });
  st.prev_seq <- e.seq;
  (match Sim.Trace.pid_of e.body with
  | None -> ()
  | Some pid ->
    (match Hashtbl.find_opt st.last_lc pid with
    | Some prev_lc when e.lc <= prev_lc ->
      flag st (Clock_regression { pid; seq = e.seq; lc = e.lc; prev_lc })
    | Some _ | None -> ());
    Hashtbl.replace st.last_lc pid e.lc);
  match e.body with
  | Sim.Trace.Send { msg; _ } -> Hashtbl.replace st.send_lc msg e.lc
  | Sim.Trace.Deliver { msg; _ } -> (
    match Hashtbl.find_opt st.send_lc msg with
    | None -> flag st (Unmatched_deliver { msg; seq = e.seq })
    | Some send_lc ->
      if send_lc >= e.lc then flag st (Causality_violation { msg; send_lc; deliver_lc = e.lc }))
  | _ -> ()

let fresh () =
  { prev_seq = -1; last_lc = Hashtbl.create 16; send_lc = Hashtbl.create 64; rev_violations = [] }

let check trace =
  let st = fresh () in
  Sim.Trace.iter trace (scan st);
  List.rev st.rev_violations

let check_events events =
  let st = fresh () in
  List.iter (scan st) events;
  List.rev st.rev_violations
