type Sim.Payload.t +=
  | Data of { seq : int; tag : string; body : Sim.Payload.t }
  | Ack of { seq : int }

type outgoing = {
  o_dst : Sim.Pid.t;
  o_seq : int;
  o_tag : string;
  o_body : Sim.Payload.t;
}

type process_state = {
  mutable next_seq : int;
  mutable unacked : outgoing list;  (** Newest first. *)
  seen : (Sim.Pid.t * int, unit) Hashtbl.t;  (** Delivered (src, seq). *)
  mutable handler : (src:Sim.Pid.t -> Sim.Payload.t -> unit) option;
}

type t = {
  engine : Sim.Engine.t;
  component : string;
  states : process_state array;
}

let default_component = "stubborn"

let create ?(component = default_component) ?(period = 10) engine =
  if period <= 0 then invalid_arg "Stubborn.create: period must be positive";
  let n = Sim.Engine.n engine in
  let t =
    {
      engine;
      component;
      states =
        Array.init n (fun _ ->
            { next_seq = 0; unacked = []; seen = Hashtbl.create 32; handler = None });
    }
  in
  let transmit p { o_dst; o_seq; o_tag; o_body } =
    Sim.Engine.send engine ~component ~tag:o_tag ~src:p ~dst:o_dst
      (Data { seq = o_seq; tag = o_tag; body = o_body })
  in
  let on_message p ~src payload =
    let st = t.states.(p) in
    match payload with
    | Data { seq; tag = _; body } ->
      (* Always (re-)acknowledge — the previous ack may have been lost. *)
      Sim.Engine.send engine ~component ~tag:"ack" ~src:p ~dst:src (Ack { seq });
      if not (Hashtbl.mem st.seen (src, seq)) then begin
        Hashtbl.add st.seen (src, seq) ();
        match st.handler with
        | Some h -> h ~src body
        | None -> ()
      end
    | Ack { seq } ->
      st.unacked <- List.filter (fun o -> not (Sim.Pid.equal o.o_dst src && o.o_seq = seq)) st.unacked
    | _ -> ()
  in
  List.iter
    (fun p ->
      Sim.Engine.register engine ~component p (on_message p);
      ignore
        (Sim.Engine.every engine p ~period (fun () ->
             List.iter (transmit p) t.states.(p).unacked)
          : unit -> unit))
    (Sim.Pid.all ~n);
  t

let register t p handler =
  let st = t.states.(p) in
  if Option.is_some st.handler then invalid_arg "Stubborn.register: handler already registered";
  st.handler <- Some handler

let send t ~src ~dst ~tag body =
  let st = t.states.(src) in
  let msg = { o_dst = dst; o_seq = st.next_seq; o_tag = tag; o_body = body } in
  st.next_seq <- st.next_seq + 1;
  st.unacked <- msg :: st.unacked;
  Sim.Engine.send t.engine ~component:t.component ~tag ~src ~dst:dst
    (Data { seq = msg.o_seq; tag; body })

let unacked t p = List.length t.states.(p).unacked
