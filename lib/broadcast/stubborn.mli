(** Stubborn point-to-point channels: reliable, exactly-once delivery over
    fair-lossy links.

    The paper's Fig. 2 gets away with fair-lossy output links because its
    traffic is {i periodic} — a lost suspect list is superseded by the next
    one.  One-shot protocol messages (estimates, ACKs, decisions) enjoy no
    such luck: over a lossy link they need retransmission.  A {i stubborn}
    channel resends every unacknowledged message each period until the
    receiver's acknowledgement arrives, and the receiver deduplicates by
    (sender, sequence number) — together: every message sent over a
    fair-lossy link is delivered exactly once, and the channel is
    {b quiescent} (once everything is acked, it falls silent).

    This is the classic construction behind quiescent reliable
    communication (Aguilera, Chen, Toueg [1], cited in Section 1.1 —
    their heartbeat detector exists to make it quiescent without
    time-outs; ours stays simple and acks directly).

    {!Reliable_broadcast} accepts a stubborn transport, which makes the
    whole decision-dissemination path of the consensus stack run over
    lossy links (see the tests). *)

type t

val default_component : string

val create : ?component:string -> ?period:int -> Sim.Engine.t -> t
(** [period] (default 10) is the retransmission interval. *)

val register : t -> Sim.Pid.t -> (src:Sim.Pid.t -> Sim.Payload.t -> unit) -> unit
(** The exactly-once delivery handler of one process (one per process). *)

val send : t -> src:Sim.Pid.t -> dst:Sim.Pid.t -> tag:string -> Sim.Payload.t -> unit
(** Queue a message; it is transmitted now and retransmitted every period
    until acknowledged.  Self-sends deliver locally at once. *)

val unacked : t -> Sim.Pid.t -> int
(** Messages the process is still retransmitting — 0 once quiescent. *)
