(** Reliable Broadcast (R-broadcast / R-deliver), after Chandra–Toueg [6].

    The consensus algorithms use this primitive to propagate the decision
    (Task 3 of Fig. 4).  Its contract:

    - {b validity}: if a correct process R-broadcasts m, it R-delivers m;
    - {b agreement}: if a correct process R-delivers m, every correct
      process R-delivers m;
    - {b uniform integrity}: every process R-delivers m at most once, and
      only if m was previously R-broadcast.

    Implementation: the classic message-relay algorithm — on first receipt
    of a broadcast message, re-send it to every other process, then deliver
    it locally.  Agreement holds with reliable links even if the
    originator crashes right after reaching a single correct process.
    Messages are identified by (origin, per-origin sequence number). *)

type t

type transport =
  [ `Engine  (** Plain engine sends: assumes reliable links (the default). *)
  | `Stubborn of Stubborn.t
    (** Route every copy through retransmitting {!Stubborn} channels, which
        makes the broadcast survive fair-lossy links.  The stubborn
        instance must be dedicated to this broadcast (it takes its delivery
        handlers). *)
  ]

val default_component : string

val create : ?component:string -> ?transport:transport -> Sim.Engine.t -> t
(** Installs one module per process.  At most one reliable-broadcast
    instance per component name. *)

val subscribe : t -> Sim.Pid.t -> (origin:Sim.Pid.t -> Sim.Payload.t -> unit) -> unit
(** Register the R-deliver callback of one process (several allowed). *)

val rbroadcast : t -> src:Sim.Pid.t -> tag:string -> Sim.Payload.t -> unit
(** R-broadcast a payload; the sender R-delivers its own message locally. *)

val delivered_count : t -> Sim.Pid.t -> int
(** Number of distinct messages R-delivered by the process so far. *)
