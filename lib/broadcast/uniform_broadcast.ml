type Sim.Payload.t +=
  | Urb of { origin : Sim.Pid.t; seq : int; tag : string; body : Sim.Payload.t }

type message_state = {
  mutable copies : Sim.Pid.Set.t;  (** Who we have seen echo the message. *)
  mutable relayed : bool;
  mutable delivered : bool;
  mutable body : Sim.Payload.t option;
}

type process_state = {
  mutable next_seq : int;
  messages : (Sim.Pid.t * int, message_state) Hashtbl.t;
  mutable rev_subscribers : (origin:Sim.Pid.t -> Sim.Payload.t -> unit) list;
  mutable delivered_count : int;
}

type t = {
  engine : Sim.Engine.t;
  component : string;
  majority : int;
  states : process_state array;
}

let default_component = "urb"

let message_state st key =
  match Hashtbl.find_opt st.messages key with
  | Some m -> m
  | None ->
    let m = { copies = Sim.Pid.Set.empty; relayed = false; delivered = false; body = None } in
    Hashtbl.add st.messages key m;
    m

let create ?(component = default_component) engine =
  let n = Sim.Engine.n engine in
  let t =
    {
      engine;
      component;
      majority = (n / 2) + 1;
      states =
        Array.init n (fun _ ->
            {
              next_seq = 0;
              messages = Hashtbl.create 16;
              rev_subscribers = [];
              delivered_count = 0;
            });
    }
  in
  let try_deliver p key =
    let st = t.states.(p) in
    let m = message_state st key in
    if (not m.delivered) && Sim.Pid.Set.cardinal m.copies >= t.majority then begin
      match m.body with
      | None -> ()
      | Some body ->
        m.delivered <- true;
        st.delivered_count <- st.delivered_count + 1;
        let origin, _ = key in
        List.iter (fun f -> f ~origin body) (List.rev st.rev_subscribers)
    end
  in
  let on_message p ~src payload =
    match payload with
    | Urb { origin; seq; tag; body } ->
      let st = t.states.(p) in
      let key = (origin, seq) in
      let m = message_state st key in
      m.body <- Some body;
      m.copies <- Sim.Pid.Set.add src m.copies;
      if not m.relayed then begin
        (* First contact: echo to everybody (self included, so our own copy
           counts through the same path). *)
        m.relayed <- true;
        Sim.Engine.send_to_all engine ~component ~tag ~src:p (Urb { origin; seq; tag; body })
      end;
      try_deliver p key
    | _ -> ()
  in
  List.iter (fun p -> Sim.Engine.register engine ~component p (on_message p)) (Sim.Pid.all ~n);
  t

let subscribe t p f = t.states.(p).rev_subscribers <- f :: t.states.(p).rev_subscribers

let ubroadcast t ~src ~tag body =
  let st = t.states.(src) in
  let seq = st.next_seq in
  st.next_seq <- seq + 1;
  Sim.Engine.send t.engine ~component:t.component ~tag ~src ~dst:src
    (Urb { origin = src; seq; tag; body })

let delivered_count t p = t.states.(p).delivered_count
