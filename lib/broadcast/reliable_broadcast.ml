type Sim.Payload.t += Rb of { origin : Sim.Pid.t; seq : int; tag : string; body : Sim.Payload.t }

type transport =
  [ `Engine  (** Plain engine sends: assumes reliable links. *)
  | `Stubborn of Stubborn.t  (** Retransmitting channels: survives fair-lossy links. *)
  ]

type process_state = {
  mutable next_seq : int;
  seen : (Sim.Pid.t * int, unit) Hashtbl.t;
  mutable rev_subscribers : (origin:Sim.Pid.t -> Sim.Payload.t -> unit) list;
  mutable delivered : int;
}

type t = {
  engine : Sim.Engine.t;
  component : string;
  send_one : src:Sim.Pid.t -> dst:Sim.Pid.t -> tag:string -> Sim.Payload.t -> unit;
  states : process_state array;
  instance_spans : (Sim.Pid.t * int, Sim.Engine.span * Sim.Pid.Set.t ref) Hashtbl.t;
      (** Per in-flight broadcast: its span and the alive processes that have
          not yet R-delivered it.  Observer state only — it feeds the trace,
          never the protocol. *)
  m_broadcasts : Obs.Registry.counter;
}

let default_component = "rb"

let deliver t p ~origin ~seq body =
  let st = t.states.(p) in
  st.delivered <- st.delivered + 1;
  (* [instance_spans] is shared across pids, and under the sharded engine
     handlers for different pids run on different domains — so the
     pending-set update (and the span end it may trigger) goes through
     [Engine.deferred]: it runs on the coordinating domain in exact
     sequential order, never racing across shards. *)
  Sim.Engine.deferred t.engine (fun () ->
      match Hashtbl.find_opt t.instance_spans (origin, seq) with
      | Some (span, pending) ->
        pending := Sim.Pid.Set.remove p !pending;
        if Sim.Pid.Set.is_empty !pending then begin
          Sim.Engine.end_span t.engine span;
          Hashtbl.remove t.instance_spans (origin, seq)
        end
      | None -> ());
  List.iter (fun f -> f ~origin body) (List.rev st.rev_subscribers)

let create ?(component = default_component) ?(transport = `Engine) engine =
  let n = Sim.Engine.n engine in
  let send_one =
    match transport with
    | `Engine ->
      fun ~src ~dst ~tag payload -> Sim.Engine.send engine ~component ~tag ~src ~dst payload
    | `Stubborn stubborn -> fun ~src ~dst ~tag payload -> Stubborn.send stubborn ~src ~dst ~tag payload
  in
  let t =
    {
      engine;
      component;
      send_one;
      states =
        Array.init n (fun _ ->
            { next_seq = 0; seen = Hashtbl.create 16; rev_subscribers = []; delivered = 0 });
      instance_spans = Hashtbl.create 16;
      m_broadcasts = Obs.Registry.counter (Sim.Engine.obs engine) ~name:"rb.broadcasts";
    }
  in
  let on_message p ~src:_ payload =
    match payload with
    | Rb { origin; seq; tag; body } ->
      let st = t.states.(p) in
      if not (Hashtbl.mem st.seen (origin, seq)) then begin
        Hashtbl.add st.seen (origin, seq) ();
        (* Relay before delivering: even if the local subscriber's reaction
           is to stop participating, the message is already on its way to
           everybody (this is what makes the broadcast reliable). *)
        List.iter
          (fun dst -> t.send_one ~src:p ~dst ~tag (Rb { origin; seq; tag; body }))
          (Sim.Pid.others ~n p);
        deliver t p ~origin ~seq body
      end
    | _ -> ()
  in
  (match transport with
  | `Engine ->
    List.iter (fun p -> Sim.Engine.register engine ~component p (on_message p)) (Sim.Pid.all ~n)
  | `Stubborn stubborn ->
    List.iter (fun p -> Stubborn.register stubborn p (on_message p)) (Sim.Pid.all ~n));
  t

let subscribe t p f = t.states.(p).rev_subscribers <- f :: t.states.(p).rev_subscribers

let rbroadcast t ~src ~tag body =
  let st = t.states.(src) in
  let seq = st.next_seq in
  st.next_seq <- seq + 1;
  Obs.Registry.incr t.m_broadcasts;
  (* The instance span runs from the broadcast to the last R-delivery among
     the processes alive right now; a crash mid-broadcast leaves it open.
     Registration is deferred like the updates in [deliver]: the shared
     table is only ever touched on the coordinating domain. *)
  let span = Sim.Engine.begin_span t.engine src ~component:t.component ~name:"rb-instance" in
  Sim.Engine.deferred t.engine (fun () ->
      let pending = ref (Sim.Pid.set_of_list (Sim.Engine.alive_processes t.engine)) in
      Hashtbl.replace t.instance_spans (src, seq) (span, pending));
  (* The self-copy goes through the local delivery path (a self-send), so
     the originator R-delivers its own message like everybody else. *)
  t.send_one ~src ~dst:src ~tag (Rb { origin = src; seq; tag; body })

let delivered_count t p = t.states.(p).delivered
