(** Uniform Reliable Broadcast (URB).

    {!Reliable_broadcast}'s agreement clause only constrains {i correct}
    processes: a process may deliver a message and then crash before anyone
    else can.  URB strengthens it to {b uniform agreement} — if {i any}
    process (correct or not) U-delivers m, then every correct process
    U-delivers m — which is what the paper's Uniform Consensus needs from
    its decision dissemination, and whose weakest failure detector is
    studied by Aguilera, Toueg and Deianov [4] (cited in Section 1.1).

    Implementation: the majority-ack algorithm.  A message is relayed like
    in reliable broadcast, but a process U-delivers only once it has seen
    copies (its own included) from a {b majority} of processes: any two
    majorities intersect in a correct process (given f < n/2), so a
    delivery by anybody — even a process that crashes right after — implies
    enough live copies to reach everyone.

    Requires f < n/2.  Cost: every process relays every message once, so
    n(n-1) sends per broadcast (same order as the relay reliable
    broadcast), but delivery waits for ⌈(n+1)/2⌉ copies. *)

type t

val default_component : string

val create : ?component:string -> Sim.Engine.t -> t

val subscribe : t -> Sim.Pid.t -> (origin:Sim.Pid.t -> Sim.Payload.t -> unit) -> unit
(** U-deliver callback. *)

val ubroadcast : t -> src:Sim.Pid.t -> tag:string -> Sim.Payload.t -> unit

val delivered_count : t -> Sim.Pid.t -> int
