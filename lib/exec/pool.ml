(* Domain-based job pool (see pool.mli for the determinism contract).

   Work distribution: workers pull job indices from one atomic counter and
   write results into per-index slots, so scheduling decides only *where* a
   job runs and the result list is rebuilt in job order afterwards.  The
   calling domain participates as a worker — [run ~domains:1] spawns
   nothing and is exactly the sequential harness. *)

let wall () =
  (Unix.gettimeofday
   [@lint.allow ambient
       "pool throughput metrics are wall-clock facts about the host, not simulated state"])
    ()

let max_domains = 8

let recommended_domains () =
  Stdlib.max 1 (Stdlib.min max_domains (Domain.recommended_domain_count ()))

let default_override = ref None

let env_domains () =
  match Sys.getenv_opt "ECFD_DOMAINS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some d when d >= 1 -> Some d
    | Some _ | None -> None)

let default_domains () =
  match
    (!default_override
    [@race.allow publish
        "written only by the coordinator between runs (set_default_domains / \
         with_domains); Domain.spawn publishes the value to workers, and a \
         nested run inside a worker only reads it"])
  with
  | Some d -> d
  | None -> (
    match env_domains () with Some d -> d | None -> recommended_domains ())

let set_default_domains d =
  if d < 1 then invalid_arg "Pool.set_default_domains: domain count must be >= 1";
  default_override := Some d

let with_domains d f =
  if d < 1 then invalid_arg "Pool.with_domains: domain count must be >= 1";
  let saved = !default_override in
  default_override := Some d;
  Fun.protect ~finally:(fun () -> default_override := saved) f

(* ------------------------------------------------------------------ *)
(* Metrics                                                            *)
(* ------------------------------------------------------------------ *)

type metrics = { runs : int; jobs : int; busy_s : float; wall_s : float }

(* Mutated only by the coordinating (calling) domain, after workers have
   been joined — workers report per-job durations through the results
   array, never through these. *)
let acc_runs = ref 0
let acc_jobs = ref 0
let acc_busy = ref 0.0
let acc_wall = ref 0.0

let reset_metrics () =
  acc_runs := 0;
  acc_jobs := 0;
  acc_busy := 0.0;
  acc_wall := 0.0

let metrics () =
  { runs = !acc_runs; jobs = !acc_jobs; busy_s = !acc_busy; wall_s = !acc_wall }

(* ------------------------------------------------------------------ *)
(* Execution                                                          *)
(* ------------------------------------------------------------------ *)

(* True while the current domain is executing pool jobs: a nested [run]
   from inside a job degrades to in-place sequential execution instead of
   spawning domains from a worker (and keeps its hands off the metrics). *)
let in_worker = Domain.DLS.new_key (fun () -> false)

let execute job =
  match
    (job ()
    [@race.allow escape
        "executing foreign job code is the pool's purpose; the determinism \
         contract (pool.mli) requires jobs to be pure functions of their \
         closure, and ecfd-analyze A1 checks every closure that flows in"])
  with
  | v -> Ok v
  | exception e -> Error (e, Printexc.get_raw_backtrace ())

(* Results in job order; every job has run, so re-raise the failure of the
   lowest-indexed failing job — which job's exception escapes must not
   depend on completion order. *)
let collect outcomes =
  let n = Array.length outcomes in
  let rec go i acc =
    if i = n then List.rev acc
    else
      match outcomes.(i) with
      | Some (Ok v, _) -> go (i + 1) (v :: acc)
      | Some (Error (e, bt), _) -> Printexc.raise_with_backtrace e bt
      | None -> assert false
  in
  go 0 []

let run_nested jobs =
  let outcomes =
    Array.of_list (List.map (fun job -> Some (execute job, 0.0)) jobs)
  in
  collect outcomes

let run ?domains jobs =
  match jobs with
  | [] -> []
  | _ when Domain.DLS.get in_worker -> run_nested jobs
  | _ ->
    let t_start = wall () in
    let jobs = Array.of_list jobs in
    let n = Array.length jobs in
    let requested =
      match domains with
      | Some d ->
        if d < 1 then invalid_arg "Pool.run: domains must be >= 1";
        d
      | None -> default_domains ()
    in
    let domains = Stdlib.min requested n in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      Domain.DLS.set in_worker true;
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let t0 = wall () in
          let outcome =
            execute
              (jobs.(i)
              [@race.allow publish
                  "the jobs array is built before Domain.spawn and never \
                   written afterwards; the spawn is the publication barrier"])
          in
          (results.(i) <- Some (outcome, wall () -. t0))
          [@race.allow escape
              "index-partitioned: the atomic counter hands each slot to \
               exactly one worker, and the coordinator reads results only \
               after Domain.join"];
          loop ()
        end
      in
      loop ()
    in
    let spawned = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Domain.DLS.set in_worker false;
    List.iter Domain.join spawned;
    let busy =
      Array.fold_left
        (fun acc slot -> match slot with Some (_, d) -> acc +. d | None -> acc)
        0.0 results
    in
    (incr acc_runs;
     acc_jobs := !acc_jobs + n;
     acc_busy := !acc_busy +. busy;
     acc_wall := !acc_wall +. (wall () -. t_start))
    [@race.allow escape
        "coordinator-only accounting: this branch is unreachable from a \
         worker (the in_worker guard routes nested runs to run_nested), and \
         it executes after every worker has been joined"]
    [@race.allow publish
        "same join barrier: no worker is alive to race the read-modify-write"];
    collect results
