(** Deterministic Domain-based job pool.

    The experiment harness regenerates the paper's evaluation by running
    hundreds of independent simulations — each one a self-contained
    [Sim.Engine.t], a pure function of (seed, configuration).  [run] spreads
    such a fixed job list over OCaml 5 domains and returns the results {i in
    job order}, regardless of completion order, so parallel output is
    byte-identical to sequential output.

    The determinism contract (HACKING.md, "The job pool"): a job must be a
    pure closure — it builds its own engine/RNG from explicit inputs,
    touches no mutable state shared with any other job or with the caller,
    and does not print.  The pool adds nothing nondeterministic on top: work
    distribution (an atomic next-job index) only decides {i where} a job
    runs, never {i what} it computes, and results are stored by job index.

    Jobs must not themselves call [run]; a nested call from inside a worker
    executes its jobs sequentially in that worker (documented degradation,
    never a deadlock). *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count ()] capped to {!max_domains}; at least
    1. *)

val max_domains : int
(** Upper bound (8) on the default parallelism — sweeps are memory-bandwidth
    bound well before that; an explicit [~domains]/[set_default_domains] may
    exceed it. *)

val default_domains : unit -> int
(** Domain count used when [run] is not given [~domains]: the last
    [set_default_domains] value if any, else the [ECFD_DOMAINS] environment
    variable (a positive integer), else {!recommended_domains}.  [1] means
    fully sequential — today's behaviour. *)

val set_default_domains : int -> unit
(** Override {!default_domains} (the [--domains] CLI knob).  Raises
    [Invalid_argument] on a non-positive count. *)

val with_domains : int -> (unit -> 'a) -> 'a
(** [with_domains d f] runs [f] with the default domain count set to [d],
    restoring the previous default afterwards (also on exception). *)

val run : ?domains:int -> (unit -> 'a) list -> 'a list
(** [run jobs] executes every job and returns their results in job order.

    [domains] (default {!default_domains}) is clamped to
    [1 .. length jobs].  With an effective count of 1 the jobs run
    sequentially in the calling domain; otherwise [domains - 1] workers are
    spawned ([Domain.spawn]) and the calling domain works alongside them,
    all pulling job indices from one atomic counter.

    Every job is executed even if another job raises; after completion the
    exception of the {i lowest-indexed} failing job is re-raised (with its
    backtrace), so failure behaviour is independent of scheduling too. *)

(** {1 Throughput accounting}

    The pool keeps global counters so the bench harness can report
    sequential-vs-parallel speedup without running everything twice:
    [busy_s] is the summed wall-clock of individual jobs (the sequential
    cost of the same work), [wall_s] the elapsed time of the [run] calls
    themselves.  [busy_s /. wall_s] is the achieved speedup of the pooled
    sections.  Counters are mutated only by the calling domain, after
    workers have been joined. *)

type metrics = {
  runs : int;  (** [run] invocations since the last reset *)
  jobs : int;  (** jobs executed *)
  busy_s : float;  (** summed per-job wall-clock (sequential-equivalent) *)
  wall_s : float;  (** elapsed wall-clock of the pooled sections *)
}

val reset_metrics : unit -> unit
val metrics : unit -> metrics

val wall : unit -> float
(** Wall-clock seconds (host time, not simulated time) — the clock behind
    {!metrics}, exported for profilers that time pooled work.  Never feed
    the result back into simulated state: wall time is ambient
    nondeterminism and would break the byte-identity contract. *)
