(** Transformation of a ◇C detector into a ◇P detector under partial
    synchrony — Section 4 and Fig. 2 of the paper (Theorem 1).

    The idea: let the eventually-agreed leader build one authoritative list
    of suspects and push it to everybody.  Five concurrent tasks:

    + {b Task 1} (leader): periodically send the local suspect list to all
      other processes;
    + {b Task 2} (all): periodically send I-AM-ALIVE to one's trusted
      process;
    + {b Task 3} (leader): suspect any process whose I-AM-ALIVE is overdue
      (per-process adaptive time-out);
    + {b Task 4} (leader): on I-AM-ALIVE from a suspected process, rescind
      the suspicion and increase that process's time-out;
    + {b Task 5} (all): on receiving a list from one's trusted process,
      adopt it wholesale.

    Link assumptions (matched by {!links} below): the n-1 {i input} links of
    the leader are reliable and partially synchronous; its n-1 {i output}
    links are fair-lossy; nothing is assumed of the rest — eventually only
    these 2(n-1) links carry messages.

    The transformation only queries the underlying detector for its
    {i trusted} process, so it equally transforms a bare Ω into ◇P (the
    paper notes this; tests exercise it).

    Cost: 2(n-1) messages per period.  {!install_piggybacked} rides Task 1
    on the heartbeats the underlying {!Fd.Leader_s} detector already sends,
    leaving only the n-1 I-AM-ALIVE messages — Section 4's "extremely
    efficient" ◇P at 2(n-1) total including the detector itself, versus n²
    for Chandra–Toueg's ◇P and 2n for the ring ◇P of [15] (experiment E2).

    A subtlety the proof of Theorem 1 leans on: a process that considers
    itself leader adopts {i its own} list and never suspects itself. *)

type growth =
  | Additive of int  (** timeout += k on each mistake (Fig. 2's policy). *)
  | Doubling  (** timeout *= 2 (ablation; see DESIGN.md §5.4). *)

type params = {
  list_period : int;  (** Task 1. *)
  alive_period : int;  (** Task 2 (the proof's Φ). *)
  initial_timeout : int;  (** Task 3. *)
  growth : growth;  (** Task 4. *)
}

val default_params : params

val component : string

val install :
  ?component:string -> Sim.Engine.t -> underlying:Fd.Fd_handle.t -> params -> Fd.Fd_handle.t
(** The stand-alone transformation (own Task-1 messages): 2(n-1) messages
    per period.  The returned handle is the ◇P detector: suspected lists
    only, [trusted = None]. *)

val install_piggybacked :
  ?component:string ->
  Sim.Engine.t ->
  hooks:Fd.Leader_s.hooks ->
  underlying:Fd.Fd_handle.t ->
  params ->
  Fd.Fd_handle.t
(** Same, but Task 1 rides the underlying leader detector's heartbeats via
    its piggyback [hooks] (pass the same hooks given to
    {!Fd.Leader_s.install}); [list_period] is then ignored.  Only the n-1
    I-AM-ALIVE messages are paid by the transformation. *)

val links :
  ?seed_delay:int ->
  n:int ->
  leader:Sim.Pid.t ->
  gst:Sim.Sim_time.t ->
  delta:int ->
  drop_probability:float ->
  unit ->
  Sim.Link.t
(** The weakest link fabric Theorem 1 needs, for tests: partially
    synchronous into [leader], fair-lossy (over a reliable base) out of it,
    reliable elsewhere. *)
