type growth =
  | Additive of int
  | Doubling

type params = {
  list_period : int;
  alive_period : int;
  initial_timeout : int;
  growth : growth;
}

let default_params =
  { list_period = 10; alive_period = 10; initial_timeout = 30; growth = Additive 20 }

let component = "ec-to-p"

type Sim.Payload.t +=
  | I_am_alive
  | Suspect_list of Sim.Pid.Set.t

type process_state = {
  mutable local_suspects : Sim.Pid.Set.t;  (** Built by Tasks 3/4 while leader. *)
  last_alive : Sim.Sim_time.t array;
  timeout : int array;
  mutable was_leader : bool;
  mutable epoch_span : Sim.Engine.span option;  (** Open while this process leads. *)
}

(* Shared by the stand-alone and piggybacked variants; they differ only in
   how Task 1 ships the list and how Task 5 receives it. *)
let install_gen ~component ~task1 ~wire_task5 engine ~underlying params =
  if params.alive_period <= 0 || params.initial_timeout <= 0 then
    invalid_arg "Ec_to_p.install: periods and initial_timeout must be positive";
  let n = Sim.Engine.n engine in
  let handle = Fd.Fd_handle.make engine ~component in
  let m_epochs = Obs.Registry.counter (Sim.Engine.obs engine) ~name:"ec_to_p.leader_epochs" in
  let m_suspicions = Obs.Registry.counter (Sim.Engine.obs engine) ~name:"ec_to_p.suspicions" in
  let states =
    Array.init n (fun _ ->
        {
          local_suspects = Sim.Pid.Set.empty;
          last_alive = Array.make n Sim.Sim_time.zero;
          timeout = Array.make n params.initial_timeout;
          was_leader = false;
          epoch_span = None;
        })
  in
  let is_leader p = Option.equal Sim.Pid.equal (Fd.Fd_handle.trusted underlying p) (Some p) in
  let grow st q =
    match params.growth with
    | Additive k -> st.timeout.(q) <- st.timeout.(q) + k
    | Doubling -> st.timeout.(q) <- 2 * st.timeout.(q)
  in
  let publish_own p =
    (* A leader adopts its own list (and never suspects itself). *)
    Fd.Fd_handle.set handle p (Fd.Fd_view.make ~suspected:states.(p).local_suspects ())
  in
  (* Task 2: I-AM-ALIVE to my trusted process. *)
  let task2 p () =
    match Fd.Fd_handle.trusted underlying p with
    | Some leader when not (Sim.Pid.equal leader p) ->
      Sim.Engine.send engine ~component ~tag:"i-am-alive" ~src:p ~dst:leader I_am_alive
    | Some _ | None -> ()
  in
  (* Task 3: while leader, suspect overdue processes.  On the transition
     into leadership, restart every peer's grace period: we received no
     I-AM-ALIVE while we were not the leader, so older deadlines are
     meaningless. *)
  let task3 p () =
    let st = states.(p) in
    let leading = is_leader p in
    if leading && not st.was_leader then begin
      (* Transition into leadership: restart every peer's grace period, and
         export our own local list — the exported view may still be a list
         adopted from the previous leader. *)
      Array.fill st.last_alive 0 n (Sim.Engine.now engine);
      Obs.Registry.incr m_epochs;
      st.epoch_span <- Some (Sim.Engine.begin_span engine p ~component ~name:"leader-epoch");
      publish_own p
    end;
    if (not leading) && st.was_leader then begin
      match st.epoch_span with
      | Some s ->
        Sim.Engine.end_span engine s;
        st.epoch_span <- None
      | None -> ()
    end;
    st.was_leader <- leading;
    if leading then begin
      let now = Sim.Engine.now engine in
      let changed = ref false in
      List.iter
        (fun q ->
          if
            (not (Sim.Pid.Set.mem q st.local_suspects))
            && now - st.last_alive.(q) > st.timeout.(q)
          then begin
            st.local_suspects <- Sim.Pid.Set.add q st.local_suspects;
            Obs.Registry.incr m_suspicions;
            changed := true
          end)
        (Sim.Pid.others ~n p);
      if !changed then publish_own p
    end
  in
  (* Task 4: an I-AM-ALIVE from a suspected process rescinds the suspicion
     and grows its time-out. *)
  let task4 p ~src =
    let st = states.(p) in
    st.last_alive.(src) <- Sim.Engine.now engine;
    if Sim.Pid.Set.mem src st.local_suspects then begin
      st.local_suspects <- Sim.Pid.Set.remove src st.local_suspects;
      grow st src;
      if is_leader p then publish_own p
    end
  in
  (* Task 5: adopt the list sent by my trusted process. *)
  let task5 p ~src list =
    match Fd.Fd_handle.trusted underlying p with
    | Some leader when Sim.Pid.equal leader src && not (Sim.Pid.equal p src) ->
      Fd.Fd_handle.set handle p (Fd.Fd_view.make ~suspected:(Sim.Pid.Set.remove p list) ())
    | Some _ | None -> ()
  in
  let on_message p ~src payload =
    match payload with
    | I_am_alive -> task4 p ~src
    | Suspect_list list -> task5 p ~src list
    | _ -> ()
  in
  List.iter
    (fun p ->
      Sim.Engine.register engine ~component p (on_message p);
      ignore
        (Sim.Engine.every engine p ~phase:0 ~period:params.alive_period (task2 p) : unit -> unit);
      ignore (Sim.Engine.every engine p ~period:params.alive_period (task3 p) : unit -> unit);
      task1 ~states ~publish_own p)
    (Sim.Pid.all ~n);
  wire_task5 ~task5;
  handle

let install ?(component = component) engine ~underlying params =
  let is_leader p = Option.equal Sim.Pid.equal (Fd.Fd_handle.trusted underlying p) (Some p) in
  let task1 ~states ~publish_own:_ p =
    let send_list () =
      if is_leader p then
        Sim.Engine.send_to_all_others engine ~component ~tag:"suspect-list" ~src:p
          (Suspect_list states.(p).local_suspects)
    in
    ignore (Sim.Engine.every engine p ~phase:0 ~period:params.list_period send_list : unit -> unit)
  in
  install_gen ~component ~task1 ~wire_task5:(fun ~task5:_ -> ()) engine ~underlying params

let install_piggybacked ?(component = component) engine ~hooks ~underlying params =
  let states_ref = ref [||] in
  let task1 ~states ~publish_own:_ _p = states_ref := states in
  let handle =
    install_gen ~component ~task1
      ~wire_task5:(fun ~task5 ->
        hooks.Fd.Leader_s.on_annotation <-
          (fun ~recipient ~src payload ->
            match payload with
            | Suspect_list list -> task5 recipient ~src list
            | _ -> ()))
      engine ~underlying params
  in
  hooks.Fd.Leader_s.annotate <-
    (fun p ->
      match !states_ref with
      | [||] -> None
      | states -> Some (Suspect_list states.(p).local_suspects));
  handle

let links ?(seed_delay = 1) ~n:_ ~leader ~gst ~delta ~drop_probability () =
  let into_leader =
    Sim.Link.partially_synchronous ~min_delay:seed_delay ~gst ~delta ()
  in
  let base = Sim.Link.reliable ~min_delay:seed_delay ~max_delay:(Stdlib.max seed_delay delta) () in
  let out_of_leader = Sim.Link.fair_lossy ~drop_probability ~underlying:base in
  Sim.Link.route
    ~describe:
      (Printf.sprintf "fig2[leader=%s gst=%d delta=%d p=%.2f]" (Sim.Pid.to_string leader) gst
         delta drop_probability)
    (fun ~src ~dst ->
      if Sim.Pid.equal dst leader then into_leader
      else if Sim.Pid.equal src leader then out_of_leader
      else base)
