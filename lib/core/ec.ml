let component_of_omega = "ec.of-omega"
let component_of_perfect = "ec.of-perfect"
let component_of_ring = "ec.of-ring"
let component_of_leader_s = "ec.of-leader-s"

(* All constructions share one skeleton: a derived handle whose view at
   process p is a pure function of the underlying view at p, re-computed on
   every change of the underlying detector.  No messages are exchanged. *)
let derive underlying ~engine ~component f =
  let n = Sim.Engine.n engine in
  let handle = Fd.Fd_handle.make engine ~component in
  let refresh p = Fd.Fd_handle.set handle p (f p (Fd.Fd_handle.query underlying p)) in
  List.iter refresh (Sim.Pid.all ~n);
  Fd.Fd_handle.subscribe underlying (fun p _ -> refresh p);
  handle

let of_omega underlying ~engine =
  let n = Sim.Engine.n engine in
  let everybody = Sim.Pid.set_of_list (Sim.Pid.all ~n) in
  let view p (u : Fd.Fd_view.t) =
    match u.Fd.Fd_view.trusted with
    | None -> Fd.Fd_view.empty
    | Some leader ->
      let suspected = Sim.Pid.Set.remove leader (Sim.Pid.Set.remove p everybody) in
      Fd.Fd_view.make ~trusted:leader ~suspected ()
  in
  derive underlying ~engine ~component:component_of_omega view

(* First process, in the walk [start, start+1, ...] around the ring, not in
   [suspected].  With [start = 0] this is the paper's "first process in the
   total order". *)
let first_not_suspected ~n ~start suspected =
  let rec walk i remaining =
    if remaining = 0 then None
    else if not (Sim.Pid.Set.mem i suspected) then Some i
    else walk ((i + 1) mod n) (remaining - 1)
  in
  walk start n

let of_first ~start ~component underlying ~engine =
  let n = Sim.Engine.n engine in
  let view _p (u : Fd.Fd_view.t) =
    let suspected = u.Fd.Fd_view.suspected in
    match first_not_suspected ~n ~start suspected with
    | None -> Fd.Fd_view.make ~suspected ()  (* everything suspected: no leader *)
    | Some leader -> Fd.Fd_view.make ~trusted:leader ~suspected ()
  in
  derive underlying ~engine ~component view

let of_perfect underlying ~engine = of_first ~start:0 ~component:component_of_perfect underlying ~engine

let of_ring ?(initial_candidate = 0) underlying ~engine =
  of_first ~start:initial_candidate ~component:component_of_ring underlying ~engine

let of_leader_s underlying ~engine =
  derive underlying ~engine ~component:component_of_leader_s (fun _p u -> u)

let conforms ~n p (v : Fd.Fd_view.t) =
  match v.Fd.Fd_view.trusted with
  | None -> false
  | Some leader -> Sim.Pid.is_valid ~n leader && not (Sim.Pid.Set.mem p v.Fd.Fd_view.suspected)
