(** The paper's ◇C Uniform Consensus algorithm (Section 5, Figs. 3 and 4).

    Asynchronous rounds, five phases each:

    - {b Phase 0}: a process whose detector trusts {i itself} becomes the
      round's coordinator and announces it; the others wait for a
      coordinator announcement (jumping forward if the announcement is for
      a later round — footnote 2).
    - {b Phase 1}: each process sends its timestamped estimate to {i its}
      coordinator; concurrently (Task 1 of Fig. 4) it answers every {i
      other} coordinator of the current or earlier rounds with a null
      estimate, so no coordinator can block.
    - {b Phase 2}: a coordinator gathers estimates until it has a majority
      {b and} has heard from every process it does not suspect (the
      extended wait that exploits ◇C's accuracy); with a majority of
      non-null estimates it proposes the one with the largest timestamp,
      otherwise it sends null propositions.
    - {b Phase 3}: each process waits for a proposition — adopting and
      ACKing any non-null one (from its own or another coordinator),
      passing on a null one from its own coordinator, or NACKing a
      coordinator it suspects.  Late non-null propositions are NACKed
      (Task 2 of Fig. 4).
    - {b Phase 4}: the proposing coordinator gathers ACK/NACKs until it has
      a majority and has heard from every non-suspected process; {b a
      majority of ACKs decides even in the presence of NACKs} — the paper's
      improvement over first-majority protocols.  The decision is
      R-broadcast and taken on R-delivery (Task 3 of Fig. 4).

    With a stable detector, consensus completes in a single round
    (vs Ω(n) rounds for rotating coordinators — Theorem 3, experiment E5),
    using Θ(n) messages (≈ 4(n-1): announcement, estimates, propositions,
    ACKs — experiment E4).

    Implementation note: the coordinator role is implemented as a
    round-indexed {i service} that runs concurrently with the process's own
    participant progress (a coordinator may still collect ACKs for round r
    while participating in r+1, and answers late estimates of past rounds
    with its recorded proposition).  This pipelining changes no per-round
    logic, so the paper's safety argument (Lemmas 1–2) applies unchanged,
    and it discharges the liveness obligations of Lemma 3's induction.

    Requires f < n/2 and a ◇C detector (both leader and suspicion outputs
    are used). *)

type wait_mode =
  | Extended
      (** The paper's rule: wait for a majority {i and} for every
          non-suspected process; decide on a majority of ACKs. *)
  | Strict_majority
      (** Ablation (experiment E6): look only at the first majority of
          replies, like Chandra–Toueg — one NACK then blocks the round. *)

type params = {
  wait_mode : wait_mode;
  merge_phase01 : bool;
      (** Section 5.4's trade-off variant: merge Phases 0 and 1 — no
          coordinator announcements; every process sends its estimate
          straight to its leader and null estimates to everyone else.
          Four phases, but Ω(n²) messages per round (experiment E7). *)
  max_rounds : int;
      (** Safety valve against detectors violating ◇C (a process could
          otherwise spin through rounds within one simulated instant). *)
}

val default_params : params
(** Extended wait, unmerged phases, 100000 rounds. *)

val component : string

val install :
  ?component:string ->
  ?transport:Broadcast.Reliable_broadcast.transport ->
  Sim.Engine.t ->
  fd:Fd.Fd_handle.t ->
  rb:Broadcast.Reliable_broadcast.t ->
  params ->
  Consensus.Instance.t
(** [transport] (default [`Engine]) routes the protocol's own messages: pass
    [`Stubborn ch] to run over fair-lossy links — combine with an
    [`Stubborn]-transported [rb] and a periodic (hence loss-tolerant)
    detector to run the whole stack on a lossy network (see the tests). *)
