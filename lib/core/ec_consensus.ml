module Value = Consensus.Value
module Instance = Consensus.Instance

type wait_mode =
  | Extended
  | Strict_majority

type params = {
  wait_mode : wait_mode;
  merge_phase01 : bool;
  max_rounds : int;
}

let default_params = { wait_mode = Extended; merge_phase01 = false; max_rounds = 100_000 }

let component = "consensus.ec"

type Sim.Payload.t +=
  | Coordinator of { round : int }
  | Estimate of { round : int; est : Value.t; ts : int }
  | Null_estimate of { round : int }
  | Proposition of { round : int; est : Value.t }
  | Null_proposition of { round : int }
  | Ack of { round : int }
  | Nack of { round : int }
  | Decide of { round : int; est : Value.t }

type phase =
  | Idle
  | Wait_coordinator  (** Phase 0. *)
  | Wait_proposition  (** Phase 3 (Phase 1's send happens on entry). *)
  | Advancing  (** Between rounds: the entry runs one engine event later. *)
  | Halted

type announcement = { a_from : Sim.Pid.t; a_round : int; mutable handled : bool }

(* The coordinator-side state of one process for one round. *)
type service = {
  mutable active : bool;
  mutable responders : Sim.Pid.Set.t;  (** Senders of estimates or null estimates (+ self). *)
  mutable nonnull : (Sim.Pid.t * Value.t * int) list;  (** Senders of real estimates. *)
  mutable acks : Sim.Pid.Set.t;
  mutable nacks : Sim.Pid.Set.t;
  mutable proposition : Value.t option option;
      (** [None]: Phase 2 not completed; [Some None]: null proposition;
          [Some (Some v)]: proposed v. *)
  mutable decided_sent : bool;  (** The proof's [decidable_p] flag. *)
}

type pstate = {
  mutable round : int;  (** 0-based internally; reported 1-based. *)
  mutable est : Value.t;
  mutable ts : int;
  mutable phase : phase;
  mutable coord : Sim.Pid.t option;  (** My coordinator for the current round. *)
  mutable decided : Instance.decision option;
  mutable rev_announcements : announcement list;
  mutable round_span : Sim.Engine.span option;  (** Open while participating in a round. *)
  services : (int, service) Hashtbl.t;
  props : (int, (Sim.Pid.t * Value.t option) list ref) Hashtbl.t;  (** Arrival order, reversed. *)
}

let install ?(component = component) ?(transport = `Engine) engine ~fd ~rb params =
  let n = Sim.Engine.n engine in
  let majority = (n / 2) + 1 in
  (* All protocol traffic flows through [send_one], so the algorithm runs
     unchanged over plain (reliable) links or over retransmitting stubborn
     channels on fair-lossy ones. *)
  let send_one =
    match transport with
    | `Engine -> fun ~src ~dst ~tag payload -> Sim.Engine.send engine ~component ~tag ~src ~dst payload
    | `Stubborn stubborn ->
      fun ~src ~dst ~tag payload ->
        if Sim.Pid.equal src dst then Sim.Engine.send engine ~component ~tag ~src ~dst payload
        else Broadcast.Stubborn.send stubborn ~src ~dst ~tag payload
  in
  let send_all_others ~src ~tag payload =
    List.iter (fun dst -> send_one ~src ~dst ~tag payload) (Sim.Pid.others ~n src)
  in
  let m_rounds = Obs.Registry.counter (Sim.Engine.obs engine) ~name:"consensus.ec.rounds" in
  let states =
    Array.init n (fun _ ->
        {
          round = -1;
          est = Value.null;
          ts = 0;
          phase = Idle;
          coord = None;
          decided = None;
          rev_announcements = [];
          round_span = None;
          services = Hashtbl.create 16;
          props = Hashtbl.create 16;
        })
  in
  let close_round_span st =
    match st.round_span with
    | Some s ->
      Sim.Engine.end_span engine s;
      st.round_span <- None
    | None -> ()
  in
  let service_of st r =
    match Hashtbl.find_opt st.services r with
    | Some s -> s
    | None ->
      let s =
        {
          active = false;
          responders = Sim.Pid.Set.empty;
          nonnull = [];
          acks = Sim.Pid.Set.empty;
          nacks = Sim.Pid.Set.empty;
          proposition = None;
          decided_sent = false;
        }
      in
      Hashtbl.add st.services r s;
      s
  in
  let props_of st r =
    match Hashtbl.find_opt st.props r with
    | Some l -> l
    | None ->
      let l = ref [] in
      Hashtbl.add st.props r l;
      l
  in
  let suspects p q = Sim.Pid.Set.mem q (Fd.Fd_handle.suspected fd p) in
  let decide p ~round ~value =
    let st = states.(p) in
    if st.decided = None && st.phase <> Halted then begin
      let d = { Instance.value; round = round + 1; at = Sim.Engine.now engine } in
      st.decided <- Some d;
      st.phase <- Halted;
      close_round_span st;
      Sim.Trace.record (Sim.Engine.trace engine)
        (Sim.Trace.Decide { at = Sim.Engine.now engine; pid = p; value; round = round + 1 })
    end
  in

  (* --- Coordinator service (round-indexed, runs alongside participation) --- *)
  let heard_from_every_non_suspected p members =
    List.for_all
      (fun q -> Sim.Pid.equal q p || suspects p q || Sim.Pid.Set.mem q members)
      (Sim.Pid.all ~n)
  in
  let ready_phase2 p sv =
    Sim.Pid.Set.cardinal sv.responders >= majority
    && (match params.wait_mode with
       | Strict_majority -> true
       | Extended -> heard_from_every_non_suspected p sv.responders)
  in
  let ready_phase4 p sv =
    let replies = Sim.Pid.Set.union sv.acks sv.nacks in
    Sim.Pid.Set.cardinal replies >= majority
    && (match params.wait_mode with
       | Strict_majority -> true
       | Extended -> heard_from_every_non_suspected p replies)
  in
  let best_estimate nonnull =
    match nonnull with
    | [] -> invalid_arg "Ec_consensus: empty estimate pool"
    | (_, v0, ts0) :: rest ->
      fst
        (List.fold_left
           (fun (v, ts) (_, v', ts') -> if ts' > ts then (v', ts') else (v, ts))
           (v0, ts0) rest)
  in
  (* Forward declaration: firing a proposition can advance the local
     participant, which needs [step]. *)
  let step_ref = ref (fun (_ : Sim.Pid.t) -> ()) in
  let buffer_prop p ~from r value =
    let st = states.(p) in
    let l = props_of st r in
    l := (from, value) :: !l;
    if st.phase = Wait_proposition && r = st.round then !step_ref p
  in
  let service_step p r =
    let st = states.(p) in
    if st.phase <> Halted then begin
      let sv = service_of st r in
      if sv.active then begin
        if Option.is_none sv.proposition && ready_phase2 p sv then begin
          if List.length sv.nonnull >= majority then begin
            let v = best_estimate sv.nonnull in
            sv.proposition <- Some (Some v);
            send_all_others
              ~tag:(Printf.sprintf "proposition.r%d" (r + 1))
              ~src:p
              (Proposition { round = r; est = v });
            buffer_prop p ~from:p r (Some v)
          end
          else begin
            sv.proposition <- Some None;
            if params.merge_phase01 then
              (* Only the processes that chose us are waiting on us; the
                 others hear from their own coordinators.  Late estimates
                 are answered from [proposition] on arrival. *)
              List.iter
                (fun (q, _, _) ->
                  if not (Sim.Pid.equal q p) then
                    send_one
                      ~tag:(Printf.sprintf "null-proposition.r%d" (r + 1))
                      ~src:p ~dst:q
                      (Null_proposition { round = r }))
                sv.nonnull
            else
              send_all_others
                ~tag:(Printf.sprintf "null-proposition.r%d" (r + 1))
                ~src:p
                (Null_proposition { round = r });
            buffer_prop p ~from:p r None
          end
        end;
        match sv.proposition with
        | Some (Some v) when (not sv.decided_sent) && ready_phase4 p sv ->
          sv.decided_sent <- true;
          if Sim.Pid.Set.cardinal sv.acks >= majority then
            Broadcast.Reliable_broadcast.rbroadcast rb ~src:p ~tag:"decide"
              (Decide { round = r; est = v })
        | Some (Some _) | Some None | None -> ()
      end
    end
  in
  let activate_service p r =
    let st = states.(p) in
    let sv = service_of st r in
    if not sv.active then begin
      sv.active <- true;
      sv.responders <- Sim.Pid.Set.add p sv.responders;
      service_step p r
    end
  in

  (* --- Participant side --- *)
  let rec advance_round p r =
    (* The next round starts one engine event later: a synchronous chain of
       self-completing rounds (e.g. tiny systems, where every wait is
       satisfied locally) would otherwise burn through the round space
       within a single instant, outrunning its own decision's reliable
       broadcast. *)
    let st = states.(p) in
    st.phase <- Advancing;
    ignore
      (Sim.Engine.set_timer engine p ~delay:0 (fun () ->
           if states.(p).phase = Advancing then enter_round p r)
        : Sim.Engine.timer)
  and enter_round p r =
    let st = states.(p) in
    if r >= params.max_rounds then begin
      st.phase <- Halted;
      close_round_span st
    end
    else begin
      st.round <- r;
      st.coord <- None;
      st.phase <- Wait_coordinator;
      close_round_span st;
      Obs.Registry.incr m_rounds;
      st.round_span <- Some (Sim.Engine.begin_span engine p ~component ~name:"round");
      sweep_announcements p;
      step p
    end
  and become_coordinator p =
    (* Phase 0, own-coordinator branch: announce, then participate like
       everybody else.  The coordinator's own estimate joins its pool
       synchronously — were it a self-send, the Phase 2 wait could complete
       before it arrives (when the majority is small) and propose null for
       no reason. *)
    let st = states.(p) in
    let r = st.round in
    st.coord <- Some p;
    send_all_others
      ~tag:(Printf.sprintf "coordinator.r%d" (r + 1))
      ~src:p
      (Coordinator { round = r });
    let sv = service_of st r in
    if Option.is_none sv.proposition then begin
      sv.responders <- Sim.Pid.Set.add p sv.responders;
      sv.nonnull <- (p, st.est, st.ts) :: sv.nonnull
    end;
    activate_service p r;
    st.phase <- Wait_proposition;
    step p
  and adopt_coordinator p c =
    let st = states.(p) in
    st.coord <- Some c;
    send_one
      ~tag:(Printf.sprintf "estimate.r%d" (st.round + 1))
      ~src:p ~dst:c
      (Estimate { round = st.round; est = st.est; ts = st.ts });
    st.phase <- Wait_proposition;
    step p
  and merged_entry p =
    (* The Section 5.4 variant: no announcements; the estimate goes to the
       leader, null estimates to everybody else. *)
    let st = states.(p) in
    match Fd.Fd_handle.trusted fd p with
    | None -> ()
    | Some leader ->
      st.coord <- Some leader;
      send_one
        ~tag:(Printf.sprintf "estimate.r%d" (st.round + 1))
        ~src:p ~dst:leader
        (Estimate { round = st.round; est = st.est; ts = st.ts });
      List.iter
        (fun q ->
          if not (Sim.Pid.equal q leader) then
            send_one
              ~tag:(Printf.sprintf "null-estimate.r%d" (st.round + 1))
              ~src:p ~dst:q
              (Null_estimate { round = st.round }))
        (Sim.Pid.others ~n p);
      st.phase <- Wait_proposition;
      step p
  and sweep_announcements p =
    (* Handle buffered coordinator announcements: adopt one for the current
       round if still in Phase 0, jump on a newer one, answer the rest with
       null estimates (Task 1 of Fig. 4).  Announcements for future rounds
       stay buffered. *)
    let st = states.(p) in
    if not params.merge_phase01 then begin
      let handle_one a =
        if (not a.handled) && st.phase <> Halted && st.phase <> Idle then begin
          if a.a_round > st.round then begin
            if st.phase = Wait_coordinator then begin
              (* Footnote 2: advance to the announced round. *)
              a.handled <- true;
              st.round <- a.a_round;
              st.coord <- None;
              adopt_coordinator p a.a_from
            end
          end
          else if a.a_round = st.round && st.phase = Wait_coordinator && Option.is_none st.coord then begin
            a.handled <- true;
            adopt_coordinator p a.a_from
          end
          else if Option.equal Sim.Pid.equal (Some a.a_from) st.coord && a.a_round = st.round
          then a.handled <- true
          else begin
            a.handled <- true;
            send_one
              ~tag:(Printf.sprintf "null-estimate.r%d" (a.a_round + 1))
              ~src:p ~dst:a.a_from
              (Null_estimate { round = a.a_round })
          end
        end
      in
      (* A jump inside the sweep can make previously future announcements
         current; iterate to a fixpoint. *)
      let rec loop () =
        let before = List.length (List.filter (fun a -> a.handled) st.rev_announcements) in
        List.iter handle_one (List.rev st.rev_announcements);
        let after = List.length (List.filter (fun a -> a.handled) st.rev_announcements) in
        if after <> before then loop ()
      in
      loop ()
    end
  and step p =
    let st = states.(p) in
    match st.phase with
    | Idle | Halted | Advancing -> ()
    | Wait_coordinator ->
      if params.merge_phase01 then merged_entry p
      else if Option.equal Sim.Pid.equal (Fd.Fd_handle.trusted fd p) (Some p) then
        become_coordinator p
      else sweep_announcements p
    | Wait_proposition -> begin
      let buffered = List.rev !(props_of st st.round) in
      let nonnull =
        List.find_opt (fun (_, value) -> Option.is_some value) buffered
      in
      match nonnull with
      | Some (from, Some v) ->
        (* Adopt and ACK a non-null proposition from any coordinator,
           including our own service's. *)
        st.est <- v;
        st.ts <- st.round;
        send_one
          ~tag:(Printf.sprintf "ack.r%d" (st.round + 1))
          ~src:p ~dst:from (Ack { round = st.round });
        advance_round p (st.round + 1)
      | Some (_, None) | None -> begin
        let null_from_own =
          match st.coord with
          | None -> false
          | Some c -> List.exists (fun (from, value) -> Sim.Pid.equal from c && Option.is_none value) buffered
        in
        if null_from_own then advance_round p (st.round + 1)
        else
          match st.coord with
          | Some c when suspects p c && not (Sim.Pid.equal c p) ->
            send_one
              ~tag:(Printf.sprintf "nack.r%d" (st.round + 1))
              ~src:p ~dst:c (Nack { round = st.round });
            advance_round p (st.round + 1)
          | Some _ | None -> ()
      end
    end
  in
  step_ref := step;

  (* --- Message handling --- *)
  let on_message p ~src payload =
    let st = states.(p) in
    if st.phase <> Halted then begin
      match payload with
      | Coordinator { round } ->
        st.rev_announcements <- { a_from = src; a_round = round; handled = false }
                                :: st.rev_announcements;
        sweep_announcements p
      | Estimate { round; est; ts } -> begin
        let sv = service_of st round in
        match sv.proposition with
        | None ->
          sv.responders <- Sim.Pid.Set.add src sv.responders;
          sv.nonnull <- (src, est, ts) :: sv.nonnull;
          if not params.merge_phase01 then service_step p round
          else begin
            (* Merged mode: receiving a real estimate is what makes us a
               coordinator for the round. *)
            activate_service p round;
            service_step p round
          end
        | Some answer ->
          (* Late estimate (Phase 2 already over).  A non-null proposition
             was broadcast to everybody, so the sender will see it anyway;
             only a null proposition needs a direct answer — it may have
             been sent to the estimators of record only (merged mode), and
             re-sending it is harmless — so the sender's Phase 3 cannot
             block on us. *)
          if Option.is_none answer && not (Sim.Pid.equal src p) then
            send_one
              ~tag:(Printf.sprintf "null-proposition.r%d" (round + 1))
              ~src:p ~dst:src
              (Null_proposition { round })
      end
      | Null_estimate { round } ->
        let sv = service_of st round in
        if Option.is_none sv.proposition then begin
          sv.responders <- Sim.Pid.Set.add src sv.responders;
          service_step p round
        end
      | Proposition { round; est } ->
        if round > st.round then buffer_prop p ~from:src round (Some est)
        else if round = st.round && (st.phase = Wait_proposition || st.phase = Wait_coordinator)
        then buffer_prop p ~from:src round (Some est)
        else if not (Sim.Pid.equal src p) then
          (* Task 2 of Fig. 4: NACK late non-null propositions. *)
          send_one
            ~tag:(Printf.sprintf "nack.r%d" (round + 1))
            ~src:p ~dst:src (Nack { round })
      | Null_proposition { round } -> buffer_prop p ~from:src round None
      | Ack { round } ->
        let sv = service_of st round in
        sv.acks <- Sim.Pid.Set.add src sv.acks;
        service_step p round
      | Nack { round } ->
        let sv = service_of st round in
        sv.nacks <- Sim.Pid.Set.add src sv.nacks;
        service_step p round
      | _ -> ()
    end
  in
  List.iter
    (fun p ->
      (* Self-sends always flow through the engine under our component;
         peer messages additionally come in through the stubborn channel
         when that transport is selected. *)
      Sim.Engine.register engine ~component p (on_message p);
      (match transport with
      | `Engine -> ()
      | `Stubborn stubborn -> Broadcast.Stubborn.register stubborn p (on_message p));
      Broadcast.Reliable_broadcast.subscribe rb p (fun ~origin:_ payload ->
          match payload with
          | Decide { round; est } -> decide p ~round ~value:est
          | _ -> ()))
    (Sim.Pid.all ~n);
  Fd.Fd_handle.subscribe fd (fun p _view ->
      if Sim.Engine.is_alive engine p && states.(p).phase <> Idle then begin
        step p;
        (* The extended waits of Phases 2 and 4 also move when a suspicion
           arrives: re-examine every service round still in flight. *)
        let st = states.(p) in
        if st.phase <> Halted then begin
          let rounds = Hashtbl.fold (fun r _ acc -> r :: acc) st.services [] in
          List.iter (fun r -> service_step p r) (List.sort Int.compare rounds)
        end
      end);
  let proposed = Array.make n false in
  let propose p v =
    if not (Value.valid_proposal v) then invalid_arg "Ec_consensus.propose: invalid value";
    if proposed.(p) then invalid_arg "Ec_consensus.propose: already proposed";
    proposed.(p) <- true;
    Sim.Trace.record (Sim.Engine.trace engine)
      (Sim.Trace.Propose { at = Sim.Engine.now engine; pid = p; value = v });
    let st = states.(p) in
    (* The decision may already have been R-delivered (a late proposer). *)
    if st.phase = Idle then begin
      st.est <- v;
      st.ts <- 0;
      enter_round p 0
    end
  in
  {
    Instance.name = (if params.merge_phase01 then "ec-consensus-merged" else "ec-consensus");
    phases_per_round = (if params.merge_phase01 then 4 else 5);
    propose;
    decision = (fun p -> states.(p).decided);
    current_round = (fun p -> states.(p).round + 1);
  }
