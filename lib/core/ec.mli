(** The Eventually Consistent failure detector class ◇C (Definition 1) and
    its constructions from other classes (Section 3).

    A ◇C detector provides every process with a suspected set satisfying the
    ◇S properties (strong completeness, eventual weak accuracy), a trusted
    process satisfying the Ω property (eventually every correct process
    permanently trusts the same correct process), and a coherence clause:
    there is a time after which the trusted process is not suspected.

    Every construction here is a {i local} transformation: it derives its
    views synchronously from an underlying detector's views, exchanging
    {b no extra messages} — which is exactly the paper's point for the
    P / ◇P / leader-◇S sources.  (The expensive route, ◇S → Ω by message
    exchange, lives in {!Fd.Omega_from_s}; experiment E8 contrasts the two.)

    The [conforms] helper checks Definition 1's {i static} sanity conditions
    on a single view; the temporal properties are checked over traces by
    {!Spec.Fd_props}. *)

val of_omega : Fd.Fd_handle.t -> engine:Sim.Engine.t -> Fd.Fd_handle.t
(** Section 3, first construction: given Ω, output the same trusted process
    and suspect everybody else (except oneself).  Trivial and free, but with
    the poorest possible accuracy. *)

val of_perfect : Fd.Fd_handle.t -> engine:Sim.Engine.t -> Fd.Fd_handle.t
(** Section 3, second construction: given P (or ◇P), pass the suspected set
    through and trust the {b first} process, in the total order p_1 ... p_n,
    not in it. *)

val of_ring : ?initial_candidate:Sim.Pid.t -> Fd.Fd_handle.t -> engine:Sim.Engine.t -> Fd.Fd_handle.t
(** Section 3, last construction: on a ring ◇S detector ([15],
    {!Fd.Ring_s}), trust the first non-suspected process starting from the
    initial leader candidate and following the ring order.  The ring
    algorithm guarantees this converges to the same correct process
    everywhere, so the result is ◇C at no additional message cost. *)

val of_leader_s : Fd.Fd_handle.t -> engine:Sim.Engine.t -> Fd.Fd_handle.t
(** Section 3/4 construction over the leader-based ◇S of [16]
    ({!Fd.Leader_s}), whose views already carry both a ◇S-grade suspected
    set and an Ω-grade trusted process: re-publish them under a ◇C
    component name.  n-1 messages per period, all paid by the underlying
    detector. *)

val conforms : n:int -> Sim.Pid.t -> Fd.Fd_view.t -> bool
(** Static view sanity: a trusted process exists, is a valid id, and the
    process does not suspect itself.  (Definition 1's temporal clauses are
    trace properties, not view properties.) *)

val component_of_omega : string
val component_of_perfect : string
val component_of_ring : string
val component_of_leader_s : string
