(* Partial synchrony sweep: how the global stabilisation time (GST) and the
   post-GST delay bound delta shape detector convergence and consensus
   latency.  This is the "models of partial synchrony" of Sections 4-5 made
   tangible: before GST the network may delay messages arbitrarily, so the
   detector makes mistakes and consensus stalls; after GST both settle.

   Run with:  dune exec examples/partial_synchrony.exe *)

let line fmt = Format.printf fmt

let detector_convergence ~gst ~seed =
  let n = 5 in
  let net = { (Scenario.chaotic_net ~seed ~gst ()) with delta = 8 } in
  let crashes = Sim.Fault.crash 2 ~at:50 in
  let _, run, _ =
    Scenario.fd_run ~net ~crashes ~horizon:(gst + 6000) ~n ~detector:Scenario.Ec_from_leader ()
  in
  let leadership = Spec.Fd_props.leadership run in
  let detection = Spec.Fd_props.detection_time run ~victim:2 in
  (leadership.Spec.Fd_props.since, detection)

let consensus_latency ~gst ~seed =
  let n = 5 in
  let net = { (Scenario.chaotic_net ~seed ~gst ()) with delta = 8 } in
  let r =
    Scenario.run_consensus ~net ~horizon:(gst + 8000) ~n ~detector:Scenario.Ec_from_leader
      ~protocol:(Scenario.Ec Ecfd.Ec_consensus.default_params) ()
  in
  ( Spec.Consensus_props.last_decision_time r.trace,
    Spec.Consensus_props.decision_round r.trace )

let avg xs =
  match List.filter_map Fun.id xs with
  | [] -> None
  | ys -> Some (List.fold_left ( + ) 0 ys / List.length ys)

let pp_avg = function None -> "    -" | Some v -> Printf.sprintf "%5d" v

let () =
  let seeds = [ 1; 2; 3; 4; 5 ] in
  line "Sweep of the global stabilisation time (delta = 8, n = 5, one crash at t=50):@.@.";
  line "   GST | leader stable | crash detected | consensus done | rounds@.";
  line "  -----+---------------+----------------+----------------+-------@.";
  List.iter
    (fun gst ->
      let fd_results = List.map (fun seed -> detector_convergence ~gst ~seed) seeds in
      let cons_results = List.map (fun seed -> consensus_latency ~gst ~seed) seeds in
      let leader = avg (List.map fst fd_results) in
      let detect = avg (List.map snd fd_results) in
      let done_ = avg (List.map fst cons_results) in
      let rounds = avg (List.map snd cons_results) in
      line "  %4d |         %s |          %s |          %s | %s@." gst (pp_avg leader)
        (pp_avg detect) (pp_avg done_) (pp_avg rounds))
    [ 0; 100; 300; 600; 1000 ];
  line
    "@.(Averages over %d seeds.  Convergence tracks GST: the algorithms make no@."
    (List.length seeds);
  line " synchrony assumptions, they just exploit it when it arrives.)@."
