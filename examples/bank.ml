(* A tiny replicated bank: five replicas, each taking deposits/withdrawals
   from its own clients, all applying the same totally ordered stream of
   Add commands to the same accounts — state-machine replication over
   repeated ◇C consensus (Consensus.Kv_store over Total_order).

   Concurrent updates to one account from different replicas are the
   textbook lost-update hazard; total order makes them sum correctly, and
   a replica crash mid-stream cannot fork the ledger.

   Run with:  dune exec examples/bank.exe *)

module Kv = Consensus.Kv_store

let alice = 1
let bob = 2

let () =
  let n = 5 in
  let engine = Scenario.engine ~net:{ Scenario.default_net with seed = 29 } ~n () in
  Sim.Fault.apply engine (Sim.Fault.crash 2 ~at:140);
  let ec = Scenario.install_detector engine Scenario.Ec_from_leader in
  let make_instance ~slot =
    let suffix = Printf.sprintf ".slot%d" slot in
    let rb =
      Broadcast.Reliable_broadcast.create
        ~component:(Broadcast.Reliable_broadcast.default_component ^ suffix)
        engine
    in
    Ecfd.Ec_consensus.install
      ~component:(Ecfd.Ec_consensus.component ^ suffix)
      engine ~fd:ec ~rb Ecfd.Ec_consensus.default_params
  in
  let bank = Kv.create ~max_slots:32 engine ~make_instance () in

  let teller ~at ~replica command description =
    Sim.Engine.at engine at (fun () ->
        if Sim.Engine.is_alive engine replica then begin
          Format.printf "t=%4d  teller %a: %s@." at Sim.Pid.pp replica description;
          Kv.submit bank ~src:replica command
        end)
  in
  teller ~at:5 ~replica:0 (Kv.Add { key = alice; delta = 100 }) "alice deposits 100";
  teller ~at:5 ~replica:1 (Kv.Add { key = alice; delta = 50 }) "alice deposits 50 (elsewhere!)";
  teller ~at:9 ~replica:2 (Kv.Add { key = bob; delta = 80 }) "bob deposits 80";
  teller ~at:60 ~replica:3 (Kv.Add { key = alice; delta = -30 }) "alice withdraws 30";
  teller ~at:150 ~replica:4 (Kv.Add { key = bob; delta = -20 }) "bob withdraws 20";
  teller ~at:200 ~replica:1 (Kv.Add { key = alice; delta = 25 }) "alice deposits 25";

  Sim.Engine.run_until engine 20_000;

  Format.printf "@.Final ledgers (replica p3 crashed at t=140):@.";
  List.iter
    (fun replica ->
      if Sim.Engine.is_alive engine replica then
        Format.printf "  %a: alice=%d bob=%d (%d commands applied)@." Sim.Pid.pp replica
          (Option.value ~default:0 (Kv.get bank replica ~key:alice))
          (Option.value ~default:0 (Kv.get bank replica ~key:bob))
          (Kv.applied bank replica))
    (Sim.Pid.all ~n);
  Format.printf "@.Expected: alice = 100+50-30+25 = 145, bob = 80-20 = 60 —@.";
  Format.printf "no lost updates despite concurrent tellers and a crashed replica.@."
