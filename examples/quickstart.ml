(* Quickstart: build a 5-process system, install the zero-extra-cost ◇C
   detector (leader-based ◇S of [16] + the Section 3 construction), crash a
   process, and watch suspicion and leadership converge.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  let n = 5 in
  (* A partially synchronous network: asynchronous-looking before GST=200,
     message delays bounded by 8 ticks afterwards. *)
  let net = Scenario.chaotic_net ~seed:7 ~gst:200 () in
  let engine = Scenario.engine ~net ~n () in

  (* p1 (the initial leader) will crash at t=600. *)
  Sim.Fault.apply engine (Sim.Fault.crash 0 ~at:600);

  (* The ◇C detector: leader-based ◇S + Section 3 construction (free). *)
  let ec = Scenario.install_detector engine Scenario.Ec_from_leader in

  (* Observe the detector at one process, p3, every 100 ticks. *)
  let observe at =
    Sim.Engine.at engine at (fun () ->
        let v = Fd.Fd_handle.query ec 2 in
        Format.printf "t=%4d  p3's view:  %a@." at Fd.Fd_view.pp v)
  in
  List.iter observe [ 50; 150; 300; 500; 620; 700; 1000 ];

  Sim.Engine.run_until engine 2000;

  (* Check the run against Definition 1 with the Spec library. *)
  let run =
    Spec.Fd_props.make_run ~component:(Fd.Fd_handle.component ec) ~n (Sim.Engine.trace engine)
  in
  Format.printf "@.Definition 1 on this run:@.";
  List.iter
    (fun (prop, (report : Spec.Fd_props.report)) ->
      Format.printf "  %-38s %s@."
        (Fd.Classes.property_name prop)
        (match report.since with
        | Some t when report.holds -> Printf.sprintf "holds (from t=%d)" t
        | _ when report.holds -> "holds"
        | _ -> "VIOLATED"))
    (Spec.Fd_props.class_matrix run);
  Format.printf "  => detector is in class <>C: %b@."
    (Spec.Fd_props.satisfies_class Fd.Classes.Ec run);
  match Spec.Fd_props.eventual_leader run with
  | Some l -> Format.printf "  => eventual common leader: %a@." Sim.Pid.pp l
  | None -> Format.printf "  => no common leader (unexpected)@."
