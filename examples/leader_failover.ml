(* Leader failover: crash successive leaders and watch (a) the ◇C detector
   re-elect, and (b) the Section 4 transformation keep producing a coherent
   ◇P suspect list through the changes of authority.

   Run with:  dune exec examples/leader_failover.exe *)

let () =
  let n = 6 in
  let engine = Scenario.engine ~net:{ Scenario.default_net with seed = 3 } ~n () in

  (* Kill the first three processes in leadership order, one per epoch. *)
  let schedule = Sim.Fault.crashes [ (0, 500); (1, 1200); (2, 2000) ] in
  Sim.Fault.apply engine schedule;

  (* Stack: leader-based ◇S -> ◇C (free) -> ◇P (Fig. 2 transformation). *)
  let base = Fd.Leader_s.install engine Fd.Leader_s.default_params in
  let ec = Ecfd.Ec.of_leader_s base ~engine in
  let p = Ecfd.Ec_to_p.install engine ~underlying:ec Ecfd.Ec_to_p.default_params in

  let observer = 5 in
  let watch at =
    Sim.Engine.at engine at (fun () ->
        let leader =
          match Fd.Fd_handle.trusted ec observer with
          | Some l -> Sim.Pid.to_string l
          | None -> "-"
        in
        Format.printf "t=%5d  p6 trusts %-3s | <>P list at p6: %a@." at leader Sim.Pid.pp_set
          (Fd.Fd_handle.suspected p observer))
  in
  List.iter watch [ 100; 400; 700; 1000; 1500; 1900; 2400; 3500 ];

  Sim.Engine.run_until engine 8000;

  let run =
    Spec.Fd_props.make_run ~component:(Fd.Fd_handle.component p) ~n (Sim.Engine.trace engine)
  in
  Format.printf "@.Transformation output is <>P on this run: %b@."
    (Spec.Fd_props.satisfies_class Fd.Classes.P_eventual run);
  List.iter
    (fun (victim, at) ->
      match Spec.Fd_props.detection_time run ~victim with
      | Some t ->
        Format.printf "  crash of %a (t=%d): suspected everywhere for good from t=%d@."
          Sim.Pid.pp victim at t
      | None -> Format.printf "  crash of %a: never converged (unexpected)@." Sim.Pid.pp victim)
    schedule
