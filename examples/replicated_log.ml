(* A replicated log (state machine replication) on top of the total-order
   broadcast that repeated ◇C consensus provides — the application the
   consensus literature motivates.  Each replica streams its own client
   commands; a replica crashes mid-run; every correct replica ends with the
   same totally ordered log.

   Run with:  dune exec examples/replicated_log.exe *)

(* Commands are encoded as integers: replica r's c-th command is
   100*(r+1)+c, so the origin is readable in the output. *)
let command ~replica ~index = (100 * (replica + 1)) + index

let () =
  let n = 5 in
  let engine = Scenario.engine ~net:{ Scenario.default_net with seed = 19 } ~n () in
  Sim.Fault.apply engine (Sim.Fault.crash 1 ~at:180);
  let ec = Scenario.install_detector engine Scenario.Ec_from_leader in

  (* Total-order broadcast: slot k of the log is fixed by ◇C consensus
     instance k (see Consensus.Total_order). *)
  let make_instance ~slot =
    let suffix = Printf.sprintf ".slot%d" slot in
    let rb =
      Broadcast.Reliable_broadcast.create
        ~component:(Broadcast.Reliable_broadcast.default_component ^ suffix)
        engine
    in
    Ecfd.Ec_consensus.install
      ~component:(Ecfd.Ec_consensus.component ^ suffix)
      engine ~fd:ec ~rb Ecfd.Ec_consensus.default_params
  in
  let log = Consensus.Total_order.create ~max_slots:32 engine ~make_instance () in

  (* Each replica submits three commands on its own schedule. *)
  List.iter
    (fun replica ->
      List.iter
        (fun index ->
          Sim.Engine.at engine ((100 * index) + (13 * replica)) (fun () ->
              if Sim.Engine.is_alive engine replica then
                Consensus.Total_order.broadcast log ~src:replica
                  ~body:(command ~replica ~index)))
        [ 0; 1; 2 ])
    (Sim.Pid.all ~n);

  Sim.Engine.run_until engine 30_000;

  let correct = List.filter (Sim.Engine.is_alive engine) (Sim.Pid.all ~n) in
  List.iter
    (fun replica ->
      Format.printf "%a's log: [%s]@." Sim.Pid.pp replica
        (String.concat "; "
           (List.map
              (Format.asprintf "%a" Consensus.Total_order.pp_message)
              (Consensus.Total_order.delivered log replica))))
    correct;

  let logs =
    List.map
      (fun r ->
        List.map (fun m -> m.Consensus.Total_order.body) (Consensus.Total_order.delivered log r))
      correct
  in
  let reference = List.hd logs in
  Format.printf "@.All correct replicas hold the same log: %b@."
    (List.for_all (fun l -> l = reference) logs);
  Format.printf "Commands delivered: %d (12 from correct replicas + up to 3 from the crashed one)@."
    (List.length reference);
  Format.printf "All commands of correct replicas present: %b@."
    (List.for_all
       (fun replica ->
         replica = 1
         || List.for_all (fun index -> List.mem (command ~replica ~index) reference) [ 0; 1; 2 ])
       (Sim.Pid.all ~n))
