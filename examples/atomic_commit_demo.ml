(* Non-blocking atomic commitment: five resource managers vote on a
   transaction; the outcome (commit/abort) is agreed through the paper's
   ◇C consensus, and the vote-collection phase uses a failure detector to
   avoid blocking on a dead participant (Guerraoui [10]; Section 5.1's
   context).  Three transactions:

     T1: everybody votes Yes                      -> Commit
     T2: one participant votes No                 -> Abort
     T3: one participant dies before voting       -> Abort (non-blocking!)

   Run with:  dune exec examples/atomic_commit_demo.exe *)

let transaction ~label ~crashes ~votes =
  let n = 5 in
  let engine = Scenario.engine ~net:{ Scenario.default_net with seed = 23 } ~n () in
  Sim.Fault.apply engine crashes;
  (* Vote collection stops waiting thanks to a perfect-detector oracle (the
     textbook NBAC assumption); the decision itself runs on the paper's ◇C
     consensus stack. *)
  let oracle = Fd.Oracle_p.install engine ~schedule:crashes Fd.Oracle_p.default_params in
  let ec = Scenario.install_detector engine Scenario.Ec_from_leader in
  let rb = Broadcast.Reliable_broadcast.create engine in
  let consensus = Ecfd.Ec_consensus.install engine ~fd:ec ~rb Ecfd.Ec_consensus.default_params in
  let nbac = Consensus.Atomic_commit.create engine ~fd:oracle ~consensus () in
  List.iter
    (fun p ->
      Sim.Engine.at engine 5 (fun () ->
          if Sim.Engine.is_alive engine p then Consensus.Atomic_commit.vote nbac p (votes p)))
    (Sim.Pid.all ~n);
  Sim.Engine.run_until engine 5000;
  Format.printf "%s@." label;
  List.iter
    (fun p ->
      if Sim.Engine.is_alive engine p then
        match Consensus.Atomic_commit.outcome nbac p with
        | Some o -> Format.printf "  %a: %a@." Sim.Pid.pp p Consensus.Atomic_commit.pp_outcome o
        | None -> Format.printf "  %a: undecided (unexpected)@." Sim.Pid.pp p
      else Format.printf "  %a: crashed@." Sim.Pid.pp p)
    (Sim.Pid.all ~n);
  Format.printf "@."

let () =
  transaction ~label:"T1: all vote Yes" ~crashes:Sim.Fault.none
    ~votes:(fun _ -> Consensus.Atomic_commit.Yes);
  transaction ~label:"T2: p3 votes No" ~crashes:Sim.Fault.none
    ~votes:(fun p -> if p = 2 then Consensus.Atomic_commit.No else Consensus.Atomic_commit.Yes);
  transaction ~label:"T3: p4 crashes before voting (nobody blocks)"
    ~crashes:(Sim.Fault.crash 3 ~at:1)
    ~votes:(fun _ -> Consensus.Atomic_commit.Yes)
