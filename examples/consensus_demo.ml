(* Single-shot Uniform Consensus with the paper's ◇C algorithm (Figs. 3-4),
   under crashes and pre-GST asynchrony.  Five processes propose different
   values; a minority crashes; everyone correct must decide the same
   proposed value.

   Run with:  dune exec examples/consensus_demo.exe *)

let () =
  let n = 5 in
  let crashes = Sim.Fault.crashes [ (0, 30); (3, 120) ] in
  Format.printf "5 processes propose 101..105; %a@." Sim.Fault.pp crashes;
  let r =
    Scenario.run_consensus
      ~net:(Scenario.chaotic_net ~seed:11 ~gst:300 ())
      ~crashes
      ~proposals:(fun p -> 101 + p)
      ~horizon:10_000 ~n ~detector:Scenario.Ec_from_leader
      ~protocol:(Scenario.Ec Ecfd.Ec_consensus.default_params) ()
  in

  Format.printf "@.Decisions:@.";
  List.iter
    (fun (p, v, round, at) ->
      Format.printf "  %a decides %d in round %d at t=%d@." Sim.Pid.pp p v round at)
    (Sim.Trace.decisions r.trace);

  let violations = Spec.Consensus_props.check_all r.trace ~n in
  if violations = [] then Format.printf "@.Uniform Consensus: all four properties hold.@."
  else
    List.iter
      (fun v -> Format.printf "VIOLATION: %a@." Spec.Consensus_props.pp_violation v)
      violations;

  (* The paper's Section 5.4 accounting, measured on this run. *)
  Format.printf "@.Messages by round (consensus component only):@.";
  List.iter
    (fun (round, sends) -> Format.printf "  round %d: %d messages@." round sends)
    (Spec.Round_metrics.sends_by_round r.trace ~component:Ecfd.Ec_consensus.component);
  Format.printf "(4(n-1) = %d per stable round; early rounds are noisier while@." (4 * (n - 1));
  Format.printf " the detector elects its leader and crashes are discovered.)@."
