(* The rule registry's types.  A rule is either per-file (sees one parsed
   implementation) or project-wide (sees every parsed file plus the raw
   file listing, for cross-file and filesystem checks).

   To add a rule: write a [Rules.t] in its own module and append it to
   [Registry.all].  Suppression ([@lint.allow <key> "reason"]) and output
   formatting come for free. *)

type source = {
  path : string;  (** Path as handed to the driver (and printed). *)
  structure : Parsetree.structure;
}

type project = {
  sources : source list;  (** Every successfully parsed [.ml]. *)
  mls : string list;  (** Every [.ml] found, normalised with ['/']. *)
  mlis : string list;  (** Every [.mli] found, normalised with ['/']. *)
}

type scope =
  | File of (source -> Finding.t list)
  | Project of (project -> Finding.t list)

type t = {
  id : string;  (** Printed in findings: [R1], [R2], ... *)
  key : string;  (** Suppression key: [@lint.allow <key> "reason"]. *)
  doc : string;  (** One-line description for [--list-rules]. *)
  scope : scope;
}
