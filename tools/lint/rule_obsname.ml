(* R6 — static metric and span names.

   The Obs registry's contract (registry.mli) is that the metric space is
   a static property of the code: every counter/gauge/histogram name and
   every span name is a string literal at its registration site, never
   data-dependent.  A computed name silently fractures one logical metric
   into per-value series, breaks the deterministic name-ordered snapshot
   as a greppable inventory, and defeats R6 itself on every other site.

   The rule checks the [~name] argument of [Obs.Registry.counter],
   [Obs.Registry.gauge], [Obs.Registry.histogram] and [Engine.begin_span]
   applications.  A genuinely parametric site (none exist today) can
   carry [@lint.allow obsname "reason"]. *)

let rule_id = "R6"
let key = "obsname"

(* The registration entry points, by path suffix — [Obs.Registry.counter]
   and a local [Registry.counter] alike.  [begin_span] is matched under
   any [Engine] prefix ([Sim.Engine.begin_span], [Engine.begin_span]). *)
let watched =
  [
    ([ "Registry"; "counter" ], "metric");
    ([ "Registry"; "gauge" ], "metric");
    ([ "Registry"; "histogram" ], "metric");
    ([ "Engine"; "begin_span" ], "span");
  ]

let rec is_literal (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_string _) -> true
  (* Parenthesised / type-constrained literals still count. *)
  | Pexp_constraint (e', _) -> is_literal e'
  | _ -> false

let check (src : Rules.source) =
  let findings = ref [] in
  let check_expr (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_apply (f, args) -> (
      match Ast_util.ident_path f with
      | Some p -> (
        match
          List.find_opt (fun (suffix, _) -> Ast_util.has_suffix ~suffix p) watched
        with
        | None -> ()
        | Some (suffix, what) ->
          List.iter
            (fun ((label : Asttypes.arg_label), (arg : Parsetree.expression)) ->
              match label with
              | Labelled "name" when not (is_literal arg) ->
                findings :=
                  Finding.of_loc ~rule:rule_id ~key
                    ~msg:
                      (Printf.sprintf
                         "computed %s name: ~name of %s must be a string literal so \
                          the metric space is a static property of the code"
                         what (String.concat "." suffix))
                    arg.pexp_loc
                  :: !findings
              | _ -> ())
            args)
      | None -> ())
    | _ -> ()
  in
  let open Ast_iterator in
  let it =
    {
      default_iterator with
      expr =
        (fun self e ->
          check_expr e;
          default_iterator.expr self e);
    }
  in
  it.structure it src.structure;
  List.rev !findings

let rule : Rules.t =
  {
    id = rule_id;
    key;
    doc =
      "static observability names: ~name passed to Obs.Registry.counter/gauge/histogram \
       and Engine.begin_span must be a string literal";
    scope = File check;
  }
