(* The rule registry — the one place a new rule is added. *)

let all : Rules.t list =
  [
    Rule_ambient.rule;  (* R1 *)
    Rule_unordered.rule;  (* R2 *)
    Rule_polycmp.rule;  (* R3 *)
    Rule_payload.rule;  (* R4 *)
    Rule_mli.rule;  (* R5 *)
    Rule_obsname.rule;  (* R6 *)
  ]
