(* R2 — unordered escape.

   [Hashtbl.fold]/[Hashtbl.iter] enumerate buckets in an order that depends
   on the hash seed and insertion history.  Folding a table into a list or
   array therefore produces a value whose order is an accident — the bug
   class behind the old nondeterministic [Stats.components].  The rule flags
   any [Hashtbl.fold] whose accumulator starts as a list/array literal
   unless the result is visibly sorted before escaping:

     - [Hashtbl.fold f t [] |> List.sort cmp]            (pipe)
     - [List.sort cmp (Hashtbl.fold f t [])]             (direct argument)
     - [let xs = Hashtbl.fold f t [] in ... List.sort cmp xs ...]
                                                         (bound, sorted later
                                                          in the same body)

   [Hashtbl.iter] callbacks that push onto a list ref ([r := x :: !r]) are
   flagged unconditionally — rewrite as a fold, or suppress with a reason.

   Aggregations whose accumulator is order-insensitive (counters, sums,
   sets, min/max) start from a non-list literal and are not flagged. *)

let rule_id = "R2"
let key = "unordered"

let sort_fns = [ "sort"; "sort_uniq"; "stable_sort"; "fast_sort" ]

let is_sort_path p =
  match List.rev p with
  | fn :: m :: _ -> List.mem fn sort_fns && (m = "List" || m = "Array")
  | _ -> false

let head_is_sort (e : Parsetree.expression) =
  match Ast_util.apply_head e with Some p -> is_sort_path p | None -> false

let is_hashtbl_path ~fn p =
  match List.rev p with
  | f :: m :: _ -> f = fn && m = "Hashtbl"
  | _ -> false

let is_listy (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_construct ({ txt = Lident ("[]" | "::"); _ }, _) -> true
  | Pexp_array _ -> true
  | _ -> false

(* [Hashtbl.fold f t init] with a list/array-literal [init]. *)
let is_listy_fold (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_apply (f, args) -> (
    match Ast_util.ident_path f with
    | Some p when is_hashtbl_path ~fn:"fold" p -> (
      match List.filter (fun ((l : Asttypes.arg_label), _) -> l = Nolabel) args with
      | [ _; _; (_, init) ] -> is_listy init
      | _ -> false)
    | _ -> false)
  | _ -> false

let loc_key (l : Location.t) = (l.loc_start.pos_cnum, l.loc_end.pos_cnum)

(* Does [body] apply a sort to the variable [name]?  Covers both
   [List.sort cmp name] and [name |> List.sort cmp]. *)
let sorted_in_body ~name body =
  Ast_util.expr_exists
    (fun e ->
      match e.pexp_desc with
      | Pexp_apply (f, args) -> (
        let arg_is_name (_, (a : Parsetree.expression)) =
          match a.pexp_desc with
          | Pexp_ident { txt = Lident x; _ } -> String.equal x name
          | _ -> false
        in
        match Ast_util.ident_path f with
        | Some p when is_sort_path p -> List.exists arg_is_name args
        | Some [ "|>" ] -> (
          match args with
          | [ lhs; (_, rhs) ] -> arg_is_name lhs && head_is_sort rhs
          | _ -> false)
        | _ -> false)
      | _ -> false)
    body

(* An [Hashtbl.iter] whose callback pushes onto a ref with [::]. *)
let is_accumulating_iter (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_apply (f, args) -> (
    match Ast_util.ident_path f with
    | Some p when is_hashtbl_path ~fn:"iter" p ->
      List.exists
        (fun (_, (a : Parsetree.expression)) ->
          Ast_util.expr_exists
            (fun x ->
              match x.pexp_desc with
              | Pexp_apply (op, [ _; (_, rhs) ]) ->
                Ast_util.ident_path op = Some [ ":=" ]
                && Ast_util.expr_exists
                     (fun y ->
                       match y.pexp_desc with
                       | Pexp_construct ({ txt = Lident "::"; _ }, _) -> true
                       | _ -> false)
                     rhs
              | _ -> false)
            a)
        args
    | _ -> false)
  | _ -> false

let check (src : Rules.source) =
  let sanctioned : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  let sanction (e : Parsetree.expression) =
    if is_listy_fold e then Hashtbl.replace sanctioned (loc_key e.pexp_loc) ()
  in
  (* Pass 1: mark folds that flow into a sort. *)
  let mark (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_apply (f, args) -> (
      match Ast_util.ident_path f with
      | Some p when is_sort_path p -> List.iter (fun (_, a) -> sanction a) args
      | Some [ "|>" ] -> (
        match args with
        | [ (_, lhs); (_, rhs) ] -> if head_is_sort rhs then sanction lhs
        | _ -> ())
      | Some [ "@@" ] -> (
        match args with
        | [ (_, lhs); (_, rhs) ] -> if head_is_sort lhs then sanction rhs
        | _ -> ())
      | _ -> ())
    | Pexp_let (_, vbs, body) ->
      List.iter
        (fun (vb : Parsetree.value_binding) ->
          match vb.pvb_pat.ppat_desc with
          | Ppat_var { txt = name; _ }
            when is_listy_fold vb.pvb_expr && sorted_in_body ~name body ->
            sanction vb.pvb_expr
          | _ -> ())
        vbs
    | _ -> ()
  in
  let findings = ref [] in
  let flag loc msg = findings := Finding.of_loc ~rule:rule_id ~key ~msg loc :: !findings in
  let flag_pass (e : Parsetree.expression) =
    if is_listy_fold e && not (Hashtbl.mem sanctioned (loc_key e.pexp_loc)) then
      flag e.pexp_loc
        "unordered escape: Hashtbl.fold builds a list/array in bucket order; sort it \
         before it escapes (e.g. |> List.sort cmp) or justify with [@lint.allow \
         unordered \"...\"]"
    else if is_accumulating_iter e then
      flag e.pexp_loc
        "unordered escape: Hashtbl.iter accumulates into a list ref in bucket order; \
         rewrite as Hashtbl.fold + sort or justify with [@lint.allow unordered \"...\"]"
  in
  let run f =
    let open Ast_iterator in
    let it =
      {
        default_iterator with
        expr =
          (fun self e ->
            f e;
            default_iterator.expr self e);
      }
    in
    it.structure it src.structure
  in
  run mark;
  run flag_pass;
  !findings

let rule : Rules.t =
  {
    id = rule_id;
    key;
    doc =
      "unordered escape: a Hashtbl.fold/iter that builds a list or array must sort it \
       before the value leaves the enclosing function";
    scope = File check;
  }
