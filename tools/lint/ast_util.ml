(* Small parsetree helpers shared by the rules. *)

let flatten lid = Longident.flatten lid

(* Path components with a leading [Stdlib] stripped, so [Stdlib.Random.int]
   and [Random.int] look alike to the rules. *)
let path lid =
  match flatten lid with "Stdlib" :: rest when rest <> [] -> rest | p -> p

let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t

let has_suffix ~suffix p =
  let lp = List.length p and ls = List.length suffix in
  lp >= ls && List.equal String.equal suffix (drop (lp - ls) p)

(* The head identifier path of an expression, if it is one. *)
let ident_path (e : Parsetree.expression) =
  match e.pexp_desc with Pexp_ident { txt; _ } -> Some (path txt) | _ -> None

(* The function position of an application (seeing through nothing); for
   [f a b] returns [f]'s path. *)
let apply_head (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_apply (f, _) -> ident_path f
  | Pexp_ident _ -> ident_path e
  | _ -> None

let last_component lid =
  match List.rev (flatten lid) with [] -> None | x :: _ -> Some x

(* Run [f] on every sub-expression of [e], including [e] itself. *)
let iter_expressions f e =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self x ->
          f x;
          Ast_iterator.default_iterator.expr self x);
    }
  in
  it.expr it e

let expr_exists pred e =
  let found = ref false in
  iter_expressions (fun x -> if (not !found) && pred x then found := true) e;
  !found
