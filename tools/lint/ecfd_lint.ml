(* ecfd-lint: the repo's determinism & simulation-hygiene static analysis.

     ecfd_lint [--list-rules] [--json FILE] [PATH ...]

   Scans every .ml/.mli under the given files/directories (default:
   lib bin bench), prints findings as "file:line: [RULE] message" and exits
   non-zero if there are any.  With [--json FILE] the findings (surviving
   and suppressed) are also written in the shape of
   docs/schemas/findings.schema.json for CI artifacts.  See HACKING.md,
   "Determinism rules". *)

open Lint_core

let usage () =
  prerr_endline
    "usage: ecfd_lint [--list-rules] [--json FILE] [PATH ...]   (default paths: lib \
     bin bench)";
  exit 2

let list_rules () =
  List.iter
    (fun (r : Rules.t) -> Printf.printf "%-4s %-10s %s\n" r.id r.key r.doc)
    Registry.all;
  print_string
    "LINT lint       a [@lint.allow] attribute itself is malformed or lacks a reason\n\
     STALE           a [@lint.allow] span that suppresses nothing (shared, all passes)\n"

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if List.mem "--help" args || List.mem "-h" args then usage ();
  if List.mem "--list-rules" args then begin
    list_rules ();
    exit 0
  end;
  let json_file = ref None in
  let rec parse acc = function
    | [] -> List.rev acc
    | "--json" :: file :: rest ->
      json_file := Some file;
      parse acc rest
    | "--json" :: [] -> usage ()
    | a :: rest ->
      if String.length a > 0 && a.[0] = '-' then usage ();
      parse (a :: acc) rest
  in
  let roots = match parse [] args with [] -> [ "lib"; "bin"; "bench" ] | roots -> roots in
  List.iter
    (fun r ->
      if not (Sys.file_exists r) then begin
        Printf.eprintf "ecfd-lint: no such file or directory: %s\n" r;
        exit 2
      end)
    roots;
  let result = Driver.run_full roots in
  exit
    (Check_common.Report.emit ~tool:"ecfd-lint" ?json:!json_file
       ~suppressed:result.Check_common.Pipeline.suppressed
       ~clean_note:
         (Printf.sprintf "%d rule(s) over %s" (List.length Registry.all)
            (String.concat " " roots))
       result.Check_common.Pipeline.survivors)
