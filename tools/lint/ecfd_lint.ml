(* ecfd-lint: the repo's determinism & simulation-hygiene static analysis.

     ecfd_lint [--list-rules] [PATH ...]

   Scans every .ml/.mli under the given files/directories (default:
   lib bin bench), prints findings as "file:line: [RULE] message" and exits
   non-zero if there are any.  See HACKING.md, "Determinism rules". *)

open Lint_core

let usage () =
  prerr_endline "usage: ecfd_lint [--list-rules] [PATH ...]   (default paths: lib bin bench)";
  exit 2

let list_rules () =
  List.iter
    (fun (r : Rules.t) -> Printf.printf "%-4s %-10s %s\n" r.id r.key r.doc)
    Registry.all;
  print_string "LINT lint       a [@lint.allow] attribute itself is malformed or lacks a reason\n"

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if List.mem "--help" args || List.mem "-h" args then usage ();
  if List.mem "--list-rules" args then begin
    list_rules ();
    exit 0
  end;
  let roots = match args with [] -> [ "lib"; "bin"; "bench" ] | _ -> args in
  List.iter
    (fun r ->
      if not (Sys.file_exists r) then begin
        Printf.eprintf "ecfd-lint: no such file or directory: %s\n" r;
        exit 2
      end)
    roots;
  let findings = Driver.run roots in
  List.iter (fun f -> print_endline (Finding.to_string f)) findings;
  match List.length findings with
  | 0 ->
    Printf.eprintf "ecfd-lint: clean (%d rule(s) over %s)\n" (List.length Registry.all)
      (String.concat " " roots)
  | n ->
    Printf.eprintf "ecfd-lint: %d finding(s)\n" n;
    exit 1
