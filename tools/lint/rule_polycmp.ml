(* R3 — no polymorphic comparison on domain types.

   [Pid.t], [Sim_time.t] and [Value.t] expose their own [compare]/[equal];
   structural compare on them (or on values built from them) works today
   only by accident of representation and breaks the moment one becomes a
   record or adds metadata.  Without type information a parsetree pass
   cannot see every such use, so the rule pins down the syntactic shapes
   that caused real bugs:

     - any reference to bare [compare] / [Stdlib.compare] (as a sort
       comparator or otherwise) — use the domain module's compare;
     - a comparison operator with a protected constant operand
       ([Value.null], [Sim_time.zero]) — use [Value.is_null],
       [Sim_time.equal], ...;
     - a comparison operator against a protected constructor (the vote
       constructors [Yes]/[No]) — pattern-match instead.

   Extend [protected_constants] / [protected_constructors] when a new
   domain type joins the registry. *)

let rule_id = "R3"
let key = "polycmp"

let comparison_ops = [ "="; "<>"; "<"; ">"; "<="; ">="; "=="; "!=" ]

let protected_constants =
  [
    ([ "Value"; "null" ], "Value.equal/Value.is_null");
    ([ "Sim_time"; "zero" ], "Sim_time.equal/Sim_time.compare");
    ([ "Pid"; "Set"; "empty" ], "Pid.Set.equal/Pid.Set.is_empty");
  ]

let protected_constructors = [ "Yes"; "No" ]

let protected_operand (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } ->
    List.find_map
      (fun (suffix, repl) ->
        if Ast_util.has_suffix ~suffix (Ast_util.path txt) then
          Some (String.concat "." suffix, repl)
        else None)
      protected_constants
  | Pexp_construct ({ txt; _ }, _) -> (
    match Ast_util.last_component txt with
    | Some c when List.mem c protected_constructors ->
      Some (c, "an explicit pattern match or a dedicated equal")
    | _ -> None)
  | _ -> None

let check (src : Rules.source) =
  let findings = ref [] in
  let flag loc msg = findings := Finding.of_loc ~rule:rule_id ~key ~msg loc :: !findings in
  let check_expr (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_ident { txt; loc } when Ast_util.path txt = [ "compare" ] ->
      flag loc
        "polymorphic compare: use the domain module's compare (Pid.compare, \
         Sim_time.compare, Int.compare, String.compare, ...)"
    | Pexp_apply (f, ((_ :: _ :: _ | [ _ ]) as args)) -> (
      match Ast_util.ident_path f with
      | Some [ op ] when List.mem op comparison_ops ->
        List.iter
          (fun (_, operand) ->
            match protected_operand operand with
            | Some (what, repl) ->
              flag operand.pexp_loc
                (Printf.sprintf
                   "polymorphic %s applied to %s; use %s" op what repl)
            | None -> ())
          args
      | _ -> ())
    | _ -> ()
  in
  let open Ast_iterator in
  let it =
    {
      default_iterator with
      expr =
        (fun self e ->
          check_expr e;
          default_iterator.expr self e);
    }
  in
  it.structure it src.structure;
  !findings

let rule : Rules.t =
  {
    id = rule_id;
    key;
    doc =
      "no polymorphic compare/=: bare compare is banned, and =/<> must not touch \
       Pid.t, Sim_time.t or Value.t values — use the modules' own compare/equal";
    scope = File check;
  }
