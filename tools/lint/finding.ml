(* Findings are shared with ecfd-analyze (tools/analyze) through
   tools/check_common so the two passes print and compare identically. *)

include Check_common.Finding
