(* A single lint finding.  [offset] is the absolute character offset of the
   flagged node's start — used only to match suppression spans, never
   printed. *)

type t = {
  file : string;
  line : int;
  col : int;
  offset : int;
  rule : string;  (** Rule id, e.g. ["R1"]. *)
  key : string;  (** Suppression key, e.g. ["ambient"]. *)
  msg : string;
}

let of_loc ~rule ~key ~msg (loc : Location.t) =
  let p = loc.loc_start in
  {
    file = p.pos_fname;
    line = p.pos_lnum;
    col = p.pos_cnum - p.pos_bol;
    offset = p.pos_cnum;
    rule;
    key;
    msg;
  }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.msg b.msg

let to_string f = Printf.sprintf "%s:%d: [%s] %s" f.file f.line f.rule f.msg
