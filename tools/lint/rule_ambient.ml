(* R1 — no ambient nondeterminism.

   The simulator's contract (engine.mli) is that a run is a pure function
   of (seed, configuration, component code).  Ambient randomness and wall
   clocks break that silently, so they are banned everywhere except the
   seeded generator itself: randomness must flow through [Sim.Rng], time
   through [Sim_time] / the engine clock.

   Multicore primitives used to be scoped here too, with a per-file
   exemption list; that check is now ecfd-racecheck's D4 (tools/racecheck,
   rule_blocking.ml), where the sanctioned boundary lives with the other
   domain-safety rules and the typed pass sees through aliases this
   syntactic one cannot. *)

let rule_id = "R1"
let key = "ambient"

(* The one module allowed to be built on ambient-looking primitives: the
   seeded generator itself, by exact path — any other file that happens to
   be called rng.ml (a decoy in a fixture tree, a second generator grown
   elsewhere) gets no exemption. *)
let exempt_file path =
  let normalized = String.concat "/" (String.split_on_char '\\' path) in
  normalized = "lib/sim/rng.ml"
  || String.length normalized > String.length "/lib/sim/rng.ml"
     && Filename.check_suffix normalized "/lib/sim/rng.ml"

let banned_paths =
  [
    ([ "Unix"; "time" ], "Unix.time reads the wall clock; use Sim_time / Engine.now");
    ( [ "Unix"; "gettimeofday" ],
      "Unix.gettimeofday reads the wall clock; use Sim_time / Engine.now" );
    ([ "Sys"; "time" ], "Sys.time reads the process clock; use Sim_time / Engine.now");
  ]

let check (src : Rules.source) =
  if exempt_file src.path then []
  else begin
    let findings = ref [] in
    let flag loc msg =
      findings := Finding.of_loc ~rule:rule_id ~key ~msg loc :: !findings
    in
    let check_expr (e : Parsetree.expression) =
      match e.pexp_desc with
      | Pexp_ident { txt; loc } -> (
        let p = Ast_util.path txt in
        match p with
        | "Random" :: _ ->
          flag loc
            (Printf.sprintf
               "ambient nondeterminism: %s; all randomness must flow through the \
                seeded Sim.Rng"
               (String.concat "." p))
        | _ -> (
          match List.find_opt (fun (bad, _) -> bad = p) banned_paths with
          | Some (_, msg) -> flag loc ("ambient nondeterminism: " ^ msg)
          | None -> ()))
      | Pexp_apply (f, args) -> (
        match Ast_util.ident_path f with
        | Some p when Ast_util.has_suffix ~suffix:[ "Hashtbl"; "create" ] p ->
          List.iter
            (fun ((label : Asttypes.arg_label), (arg : Parsetree.expression)) ->
              match label with
              | Labelled "random" | Optional "random" ->
                flag arg.pexp_loc
                  "ambient nondeterminism: Hashtbl.create ~random randomises \
                   iteration order per run; drop the flag"
              | _ -> ())
            args
        | _ -> ())
      | _ -> ()
    in
    let open Ast_iterator in
    let it =
      {
        default_iterator with
        expr =
          (fun self e ->
            check_expr e;
            default_iterator.expr self e);
      }
    in
    it.structure it src.structure;
    !findings
  end

let rule : Rules.t =
  {
    id = rule_id;
    key;
    doc =
      "no ambient nondeterminism: Stdlib.Random, Unix.time/gettimeofday, Sys.time and \
       Hashtbl.create ~random are banned outside lib/sim/rng.ml (multicore-primitive \
       confinement is ecfd-racecheck rule D4)";
    scope = File check;
  }
