(* R5 — every library module has an interface.

   An [.mli] is what keeps a module's mutable internals (tables, refs,
   caches) out of reach; a missing one silently widens the API.  Applies to
   every [.ml] under a [lib] directory. *)

let rule_id = "R5"
let key = "mli"

let under_lib path =
  List.exists (fun seg -> String.equal seg "lib") (String.split_on_char '/' path)

let check (project : Rules.project) =
  let mlis = Hashtbl.create 64 in
  List.iter (fun p -> Hashtbl.replace mlis p ()) project.mlis;
  List.filter_map
    (fun ml ->
      if under_lib ml && not (Hashtbl.mem mlis (ml ^ "i")) then
        Some
          {
            Finding.file = ml;
            line = 1;
            col = 0;
            offset = 0;
            rule = rule_id;
            key;
            msg =
              Printf.sprintf "missing interface: %s has no %si — every lib/ module \
                              must declare its API" ml
                (Filename.basename ml);
            chain = [];
          }
      else None)
    project.mls

let rule : Rules.t =
  {
    id = rule_id;
    key;
    doc = "every lib/**/*.ml has a matching .mli";
    scope = Project check;
  }
