(* File discovery, parsing, rule execution and suppression filtering. *)

let normalise path =
  String.concat "/" (String.split_on_char Filename.dir_sep.[0] path)

let rec files_under path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun entry ->
           if String.length entry > 0 && entry.[0] = '.' then []
           else if entry = "_build" then []
           else files_under (Filename.concat path entry))
  else [ normalise path ]

let discover roots =
  let files = List.concat_map files_under roots in
  let mls = List.filter (fun f -> Filename.check_suffix f ".ml") files in
  let mlis = List.filter (fun f -> Filename.check_suffix f ".mli") files in
  (mls, mlis)

let parse_impl path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Lexing.set_filename lexbuf path;
      Parse.implementation lexbuf)

(* Run every registered rule over [roots] (files or directories).  Returns
   the surviving findings, sorted, plus the span-suppressed findings for
   the JSON artifact.  Parse failures surface as [PARSE] findings so a
   broken file can never silently pass the linter; stale [@lint.allow]
   spans surface as [STALE] (shared Check_common.Pipeline). *)
let run_full roots =
  let mls, mlis = discover roots in
  let sources, parse_findings =
    List.fold_left
      (fun (sources, findings) path ->
        match parse_impl path with
        | structure -> ({ Rules.path; structure } :: sources, findings)
        | exception exn ->
          let msg =
            match Location.error_of_exn exn with
            | Some (`Ok (e : Location.error)) ->
              Format.asprintf "%a" Location.print_report e
            | _ -> Printexc.to_string exn
          in
          ( sources,
            {
              Finding.file = path;
              line = 1;
              col = 0;
              offset = 0;
              rule = "PARSE";
              key = "parse";
              msg;
              chain = [];
            }
            :: findings ))
      ([], []) mls
  in
  let sources = List.rev sources in
  let project = { Rules.sources; mls; mlis } in
  let known_keys = List.map (fun (r : Rules.t) -> r.key) Registry.all in
  let suppressions =
    List.map
      (fun (src : Rules.source) -> (src.path, Suppress.collect ~known_keys src))
      sources
  in
  let suppression_findings =
    List.concat_map (fun (_, (s : Suppress.t)) -> s.findings) suppressions
  in
  let rule_findings =
    List.concat_map
      (fun (rule : Rules.t) ->
        match rule.scope with
        | File check -> List.concat_map check sources
        | Project check -> check project)
      Registry.all
  in
  Check_common.Pipeline.finalize ~attr_name:Suppress.attr_name
    ~suppressions:
      (List.map (fun (path, (s : Suppress.t)) -> (path, s.spans)) suppressions)
    ~meta_findings:(parse_findings @ suppression_findings)
    rule_findings

let run roots = (run_full roots).Check_common.Pipeline.survivors
