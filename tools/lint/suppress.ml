(* Per-site suppression: [@lint.allow <rule-key> "reason"].

   The attribute may sit on an expression, a value binding, an extension
   constructor, a type extension, or float at the top of a file
   ([@@@lint.allow ...] suppresses the rule for the whole file).  A finding
   is dropped when its location falls inside the span of a node carrying an
   allow for its rule.  The reason string is mandatory: an allow without
   one is itself reported (rule [LINT]). *)

type span = { key : string; left : int; right : int }

type t = { spans : span list; findings : Finding.t list }

let attr_name = "lint.allow"

(* Payload forms accepted:
     [@lint.allow key "reason"]   -> Some (key, Some reason)
     [@lint.allow key]            -> Some (key, None)       (missing reason)
   anything else                  -> None                   (malformed)    *)
let parse_payload (attr : Parsetree.attribute) =
  match attr.attr_payload with
  | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] -> (
    match e.pexp_desc with
    | Pexp_ident { txt = Lident key; _ } -> Some (key, None)
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Lident key; _ }; _ },
          [ (Nolabel, { pexp_desc = Pexp_constant (Pconst_string (reason, _, _)); _ }) ] )
      ->
      Some (key, Some reason)
    | _ -> None)
  | _ -> None

let collect (src : Rules.source) =
  let spans = ref [] and findings = ref [] in
  let note_attrs ~(span : Location.t) (attrs : Parsetree.attributes) =
    List.iter
      (fun (attr : Parsetree.attribute) ->
        if String.equal attr.attr_name.txt attr_name then
          match parse_payload attr with
          | Some (key, Some reason) when String.trim reason <> "" ->
            spans :=
              { key; left = span.loc_start.pos_cnum; right = span.loc_end.pos_cnum }
              :: !spans
          | Some (key, _) ->
            findings :=
              Finding.of_loc ~rule:"LINT" ~key:"lint"
                ~msg:
                  (Printf.sprintf
                     "[@lint.allow %s] needs a non-empty reason string, e.g. \
                      [@lint.allow %s \"why this site is safe\"]"
                     key key)
                attr.attr_loc
              :: !findings
          | None ->
            findings :=
              Finding.of_loc ~rule:"LINT" ~key:"lint"
                ~msg:"malformed [@lint.allow]: expected <rule-key> \"reason\""
                attr.attr_loc
              :: !findings)
      attrs
  in
  let whole_file : Location.t ->
      Parsetree.attributes -> unit =
   fun _ attrs ->
    (* Floating attribute: suppress for the entire file. *)
    note_attrs
      ~span:
        {
          loc_start = { pos_fname = src.path; pos_lnum = 1; pos_bol = 0; pos_cnum = 0 };
          loc_end = { pos_fname = src.path; pos_lnum = max_int; pos_bol = 0; pos_cnum = max_int };
          loc_ghost = false;
        }
      attrs
  in
  let open Ast_iterator in
  let it =
    {
      default_iterator with
      expr =
        (fun self e ->
          note_attrs ~span:e.pexp_loc e.pexp_attributes;
          default_iterator.expr self e);
      value_binding =
        (fun self vb ->
          note_attrs ~span:vb.pvb_loc vb.pvb_attributes;
          default_iterator.value_binding self vb);
      extension_constructor =
        (fun self ec ->
          note_attrs ~span:ec.pext_loc ec.pext_attributes;
          default_iterator.extension_constructor self ec);
      type_extension =
        (fun self te ->
          note_attrs ~span:te.ptyext_loc te.ptyext_attributes;
          default_iterator.type_extension self te);
      structure_item =
        (fun self item ->
          (match item.pstr_desc with
          | Pstr_attribute attr -> whole_file item.pstr_loc [ attr ]
          | Pstr_eval (_, attrs) -> note_attrs ~span:item.pstr_loc attrs
          | _ -> ());
          default_iterator.structure_item self item);
    }
  in
  it.structure it src.structure;
  { spans = !spans; findings = !findings }

let is_suppressed t (f : Finding.t) =
  List.exists
    (fun s -> String.equal s.key f.key && s.left <= f.offset && f.offset <= s.right)
    t.spans
