(* Per-site suppression: [@lint.allow <rule-key> "reason"].

   The attribute may sit on an expression, a value binding, an extension
   constructor, a type extension, or float at the top of a file
   ([@@@lint.allow ...] suppresses the rule for the whole file).  A finding
   is dropped when its location falls inside the span of a node carrying an
   allow for its rule.  The reason string is mandatory: an allow without
   one is itself reported (rule [LINT]).  The payload grammar and span
   matching are shared with ecfd-analyze (Check_common.Allow_payload). *)

type t = { spans : Check_common.Allow_payload.span list; findings : Finding.t list }

let attr_name = "lint.allow"

let collect ~known_keys (src : Rules.source) =
  let spans = ref [] and findings = ref [] in
  let note_attrs ~(span : Location.t) (attrs : Parsetree.attributes) =
    List.iter
      (fun (attr : Parsetree.attribute) ->
        match
          Check_common.Allow_payload.classify ~attr_name ~meta_rule:"LINT"
            ~meta_key:"lint" ~known_keys ~span attr
        with
        | None -> ()
        | Some (Ok span) -> spans := span :: !spans
        | Some (Error f) -> findings := f :: !findings)
      attrs
  in
  let whole_file : Location.t -> Parsetree.attributes -> unit =
   fun _ attrs ->
    (* Floating attribute: suppress for the entire file. *)
    note_attrs ~span:(Check_common.Allow_payload.file_span src.path) attrs
  in
  let open Ast_iterator in
  let it =
    {
      default_iterator with
      expr =
        (fun self e ->
          note_attrs ~span:e.pexp_loc e.pexp_attributes;
          default_iterator.expr self e);
      value_binding =
        (fun self vb ->
          note_attrs ~span:vb.pvb_loc vb.pvb_attributes;
          default_iterator.value_binding self vb);
      extension_constructor =
        (fun self ec ->
          note_attrs ~span:ec.pext_loc ec.pext_attributes;
          default_iterator.extension_constructor self ec);
      type_extension =
        (fun self te ->
          note_attrs ~span:te.ptyext_loc te.ptyext_attributes;
          default_iterator.type_extension self te);
      structure_item =
        (fun self item ->
          (match item.pstr_desc with
          | Pstr_attribute attr -> whole_file item.pstr_loc [ attr ]
          | Pstr_eval (_, attrs) -> note_attrs ~span:item.pstr_loc attrs
          | _ -> ());
          default_iterator.structure_item self item);
    }
  in
  it.structure it src.structure;
  { spans = !spans; findings = !findings }

let is_suppressed t (f : Finding.t) = Check_common.Allow_payload.covers t.spans f
