(* R4 — extensible-payload hygiene.

   Message kinds are extension constructors of [Sim.Payload.t].  Because
   every handler ends in a wildcard (the payload type is open), the
   compiler cannot warn about a kind that is declared but never sent, or
   sent but never matched — such envelopes are silently dropped.  The rule
   checks, per library directory, that every [Payload.t +=] constructor is
   both constructed and matched somewhere in that library. *)

let rule_id = "R4"
let key = "payload"

type decl = { ctor : string; loc : Location.t; dir : string }

let dir_of path = Filename.dirname path

(* [type Payload.t += ...] under any module prefix; inside the defining
   module itself ([lib/sim/payload.ml]) the path is just [t]. *)
let is_payload_path ~path lid =
  let p = Ast_util.path lid in
  Ast_util.has_suffix ~suffix:[ "Payload"; "t" ] p
  || (p = [ "t" ] && Filename.basename path = "payload.ml")

let scan (src : Rules.source) =
  let decls = ref [] and constructed = ref [] and matched = ref [] in
  let open Ast_iterator in
  let it =
    {
      default_iterator with
      type_extension =
        (fun self te ->
          if is_payload_path ~path:src.path te.ptyext_path.txt then
            List.iter
              (fun (ec : Parsetree.extension_constructor) ->
                match ec.pext_kind with
                | Pext_decl _ ->
                  decls :=
                    { ctor = ec.pext_name.txt; loc = ec.pext_loc; dir = dir_of src.path }
                    :: !decls
                | Pext_rebind _ -> ())
              te.ptyext_constructors;
          default_iterator.type_extension self te);
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_construct ({ txt; _ }, _) -> (
            match Ast_util.last_component txt with
            | Some c -> constructed := (dir_of src.path, c) :: !constructed
            | None -> ())
          | _ -> ());
          default_iterator.expr self e);
      pat =
        (fun self p ->
          (match p.ppat_desc with
          | Ppat_construct ({ txt; _ }, _) -> (
            match Ast_util.last_component txt with
            | Some c -> matched := (dir_of src.path, c) :: !matched
            | None -> ())
          | _ -> ());
          default_iterator.pat self p);
    }
  in
  it.structure it src.structure;
  (!decls, !constructed, !matched)

let check (project : Rules.project) =
  let decls = ref [] and constructed = Hashtbl.create 64 and matched = Hashtbl.create 64 in
  List.iter
    (fun src ->
      let d, c, m = scan src in
      decls := d @ !decls;
      List.iter (fun k -> Hashtbl.replace constructed k ()) c;
      List.iter (fun k -> Hashtbl.replace matched k ()) m)
    project.sources;
  List.filter_map
    (fun d ->
      if not (Hashtbl.mem constructed (d.dir, d.ctor)) then
        Some
          (Finding.of_loc ~rule:rule_id ~key
             ~msg:
               (Printf.sprintf
                  "dead message kind: payload constructor %s is declared but never \
                   constructed in %s/"
                  d.ctor d.dir)
             d.loc)
      else if not (Hashtbl.mem matched (d.dir, d.ctor)) then
        Some
          (Finding.of_loc ~rule:rule_id ~key
             ~msg:
               (Printf.sprintf
                  "silently dropped message kind: payload constructor %s is sent but \
                   never matched in %s/ — only wildcard handlers see it"
                  d.ctor d.dir)
             d.loc)
      else None)
    (List.rev !decls)

let rule : Rules.t =
  {
    id = rule_id;
    key;
    doc =
      "payload hygiene: every Payload.t += constructor must be both constructed and \
       matched within its library";
    scope = Project check;
  }
