(* D2 — cross-domain publication: mutable values created on one domain,
   read on another without an Atomic or pool-barrier handoff.

   The sites come from the shared domain cone walk (Domain_walk): reads
   ([!], [Array.get], [Hashtbl.find], mutable record fields, ...) whose
   target is not owner-threaded.  OCaml's memory model gives plain
   accesses no happens-before edge; even when a read is race-free today,
   publication must go through [Atomic] or the barrier the pool provides
   at [Exec.Pool.run] boundaries so the edge is in the program, not in
   the scheduler's luck. *)

let rule_id = "D2"
let key = "publish"

let run index =
  List.filter
    (fun (f : Check_common.Finding.t) -> String.equal f.rule rule_id)
    (Domain_walk.findings index)

let rule : Drule.t =
  {
    id = rule_id;
    key;
    doc =
      "cross-domain publication: reads of mutable state created outside the \
       domain cone need an Atomic or a pool-barrier handoff";
    run;
  }
