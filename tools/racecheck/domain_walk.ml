(* The shared D1/D2 escape-analysis walk.

   Everything that crosses onto a pool worker domain — the arguments of
   [Exec.Pool.run] / [par_map*] / [Domain.spawn] applications, plus any
   definition or expression annotated [@race.domain] (the hook closures
   the sharded engine installs into Trace/Obs, which run in-window on
   worker domains) — is a *domain root*.  From each root the walk builds
   the same call-graph closure as ecfd-analyze's A1: per-definition
   summaries, references resolved by identifier stamp within a unit and
   by normalised dotted path across units, chains rendered "via a -> b".

   What it looks for is different.  A1 proves purity; this walk proves
   *domain-safety*, and flags three site classes:

     - D1 (key [escape]) writes: an assignment ([:=], [<-], [Array.set],
       [Hashtbl.replace], ...) whose target is not owner-threaded — not
       bound inside the function being analysed.  Mutable state written
       on a worker domain must be [Atomic], shard-local, or an op-stream
       append replayed behind a barrier; anything else is a data race.
     - D1 (key [escape]) unknown calls: a call through a function value
       whose body the checker cannot see (a parameter, a match-bound
       handler, a callback read out of a table).  Its writes are
       invisible, so the call site must carry the contract as a
       [@race.allow escape "..."] waiver.
     - D2 (key [publish]) reads: a read ([!], [Array.get],
       [Hashtbl.find], a mutable record field, ...) whose target was
       created outside the domain cone.  Cross-domain publication of
       mutable values needs an [Atomic] or a pool-barrier handoff;
       OCaml's memory model makes plain reads of racy locations
       undefined-per-location, and even race-free ones need the
       happens-before edge the barrier provides.

   Owner-threading is the bound-identifier test: writes and reads through
   the analysed function's own parameters and locals are fine — a shard
   mutating its own [sh] record is the design, not a race.  [Atomic.*]
   and [Domain.DLS.*] accesses match neither table and pass.  Strictness
   differs by position: at a root closure every non-bound target is
   flagged (whatever it is, it was captured across the spawn); inside a
   named definition reached by reference, an identifier that is neither
   bound nor resolvable in the index is an enclosing function's parameter
   — owner-threaded state on loan, which the caller's own summary already
   accounts for — and is skipped. *)

open Check_common

let domain_attr = "race.domain"

let sink_suffixes = [ [ "Pool"; "run" ]; [ "Domain"; "spawn" ] ]
let mapper_names = [ "par_map"; "par_map2"; "par_map3" ]

let is_sink np =
  List.exists (fun s -> Tast_util.has_suffix ~suffix:s np) sink_suffixes
  || (match List.rev np with f :: _ -> List.mem f mapper_names | [] -> false)

(* Mutating functions whose first positional argument is the mutated
   structure (A1's table). *)
let is_write_fn np =
  match np with
  | [ (":=" | "incr" | "decr") ] -> true
  | [ ("Array" | "Bytes"); ("set" | "unsafe_set" | "fill" | "blit") ] -> true
  | "Hashtbl"
    :: ("add" | "replace" | "remove" | "reset" | "clear" | "filter_map_inplace")
    :: _ ->
    true
  | [ "Buffer"; f ]
    when String.length f >= 4 && String.equal (String.sub f 0 4) "add_" ->
    true
  | [ "Buffer"; ("clear" | "reset" | "truncate") ] -> true
  | [ "Queue"; ("push" | "add" | "pop" | "take" | "clear" | "transfer") ] -> true
  | [ "Stack"; ("push" | "pop" | "clear") ] -> true
  | _ -> false

(* Reading functions whose first positional argument is the structure
   read.  Plain reads of racy locations are exactly what the OCaml
   memory model leaves unsynchronised. *)
let is_read_fn np =
  match np with
  | [ "!" ] -> true
  | [ ("Array" | "Bytes"); ("get" | "unsafe_get" | "length" | "to_list" | "copy") ]
    ->
    true
  | "Hashtbl"
    :: ( "find" | "find_opt" | "find_all" | "mem" | "length" | "iter" | "fold"
       | "copy" | "to_seq" )
    :: _ ->
    true
  | [ "Buffer"; ("contents" | "length" | "nth" | "to_bytes" | "sub") ] -> true
  | [ "Queue"; ("peek" | "peek_opt" | "top" | "length" | "is_empty" | "iter" | "fold") ]
    ->
    true
  | [ "Stack"; ("top" | "top_opt" | "length" | "is_empty") ] -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Per-expression summaries                                            *)
(* ------------------------------------------------------------------ *)

type site = { sloc : Location.t; srule : string; skey : string; what : string }
type reference = { target : [ `Stamp of string | `Path of string ]; rname : string }
type summary = { sites : site list; refs : reference list }

let rec target_root (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> Some p
  | Texp_field (e, _, _) -> target_root e
  | _ -> None

(* The identifier a (possibly pipe-nested) application ultimately calls
   through, or [None] when the function position is computed (a field
   read, a just-returned closure). *)
let rec deep_head_ident (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> Some p
  | Texp_apply (f, _) -> deep_head_ident f
  | _ -> None

(* Is the definition's right-hand side something whose body the walk can
   see (a lambda) or follow (an alias)?  Anything else — a closure read
   out of a table, a callback received in a record — is opaque to the
   checker even though the index resolves its *binding*. *)
let def_body_visible (def : Index.def) =
  let _, body = Tast_util.peel_functions def.expr in
  match body.exp_desc with
  | Texp_function _ -> true
  | Texp_ident _ -> true
  | _ -> body != def.expr (* peeled at least one [fun] parameter *)

let summarize ~strict (index : Index.t) (e : Typedtree.expression) : summary =
  let bound = Tast_util.bound_idents e in
  let is_bound id = Hashtbl.mem bound (Ident.unique_name id) in
  let sites = ref [] and refs = ref [] in
  let seen_refs = Hashtbl.create 32 in
  let add_ref target rname =
    let k = match target with `Stamp s -> "s:" ^ s | `Path p -> "p:" ^ p in
    if not (Hashtbl.mem seen_refs k) then begin
      Hashtbl.add seen_refs k ();
      refs := { target; rname } :: !refs
    end
  in
  let site sloc srule skey what = sites := { sloc; srule; skey; what } :: !sites in
  (* Would a non-bound identifier be accounted for by the caller's own
     summary?  Only when it is an enclosing function's parameter — i.e.
     it resolves to nothing in the index.  At a root closure nothing
     encloses the domain cone, so everything non-bound is foreign. *)
  let foreign (p : Path.t) =
    match p with
    | Pident id ->
      if is_bound id then None
      else if strict || Index.resolve_stamp index (Ident.unique_name id) <> None
      then Some (Ident.name id)
      else None
    | p -> Some (Tast_util.dotted (Tast_util.path_of p))
  in
  let classify_target loc ~rule ~key ~describe (tgt : Typedtree.expression) =
    match target_root tgt with
    | None -> ()
    | Some p -> (
      match foreign p with
      | Some name -> site loc rule key (describe name)
      | None -> ())
  in
  let write_target loc tgt =
    classify_target loc ~rule:"D1" ~key:"escape"
      ~describe:(fun n ->
        Printf.sprintf
          "write to mutable state captured from outside the domain cone (%s)" n)
      tgt
  in
  let read_target loc tgt =
    classify_target loc ~rule:"D2" ~key:"publish"
      ~describe:(fun n ->
        Printf.sprintf
          "read of mutable state created outside the domain cone (%s) without an \
           Atomic or pool-barrier handoff"
          n)
      tgt
  in
  (* An opaque callee is a *domain-safety* obligation only at the layer
     that moves closures between domains — lib/exec and the shard
     back-end, where the unknown callee is by construction foreign user
     code running on a worker.  Elsewhere in the cone (an engine a job
     builds and runs inline) an unknown call stays on the calling domain
     and is A1 purity's problem, not a race. *)
  let unknown_call (loc : Location.t) name =
    if Boundary.sanctioned loc.loc_start.pos_fname then
      site loc "D1" "escape"
        (Printf.sprintf
           "call through a statically-unknown function value (%s) — its writes are \
            invisible to the checker"
           name)
  in
  (* A call through [p]: known (skip), or opaque (flag)? *)
  let classify_call loc (p : Path.t) =
    match p with
    | Pident id ->
      let def = Index.resolve_stamp index (Ident.unique_name id) in
      if is_bound id then begin
        match def with
        | Some def when def_body_visible def -> () (* local fn, body in this expr *)
        | Some _ -> unknown_call loc (Ident.name id ^ " ()")
        | None ->
          (* A parameter or match-bound value used as a function: the
             canonical foreign callback ([job ()], [cb ()], [h ~src]). *)
          unknown_call loc (Ident.name id ^ " ()")
      end
      else begin
        match def with
        | Some def when not (def_body_visible def) ->
          unknown_call loc (Ident.name id ^ " ()")
        | _ -> () (* resolvable lambda/alias: refs descend; external: safe by args *)
      end
    | Pdot _ -> () (* module-level: refs descend if in-project, stdlib safe by args *)
    | _ -> ()
  in
  Tast_util.iter_expressions
    (fun (x : Typedtree.expression) ->
      match x.exp_desc with
      | Texp_ident (p, _, _) -> (
        match p with
        | Pident id ->
          if not (is_bound id) then add_ref (`Stamp (Ident.unique_name id)) (Ident.name id)
        | Pdot _ ->
          let np = Tast_util.path_of p in
          add_ref (`Path (Tast_util.dotted np)) (Tast_util.dotted np)
        | _ -> ())
      | Texp_apply (f, args) -> (
        match Tast_util.head_path f with
        | Some np when is_write_fn np -> (
          match Tast_util.nolabel_args args with
          | tgt :: _ -> write_target x.exp_loc tgt
          | [] -> ())
        | Some np when is_read_fn np -> (
          match Tast_util.nolabel_args args with
          | tgt :: _ -> read_target x.exp_loc tgt
          | [] -> ())
        | _ -> (
          match deep_head_ident f with
          | Some p -> classify_call x.exp_loc p
          | None -> unknown_call x.exp_loc "<computed function position>"))
      | Texp_setfield (e1, _, _, _) -> write_target x.exp_loc e1
      | Texp_setinstvar (_, p, _, _) -> (
        match foreign p with
        | Some n ->
          site x.exp_loc "D1" "escape"
            (Printf.sprintf
               "write to mutable state captured from outside the domain cone (%s)" n)
        | None -> ())
      | Texp_field (e1, _, ld) when ld.lbl_mut = Asttypes.Mutable ->
        read_target x.exp_loc e1
      | _ -> ())
    e;
  { sites = List.rev !sites; refs = List.rev !refs }

(* ------------------------------------------------------------------ *)
(* Reachability from domain roots                                      *)
(* ------------------------------------------------------------------ *)

type root = { rloc : Location.t; desc : string; expr : Typedtree.expression }

let roots (index : Index.t) =
  let acc = ref [] in
  (* Sink arguments, in deterministic source order. *)
  List.iter
    (fun (source : Cmt_source.t) ->
      Tast_util.iter_structure_expressions
        (fun (e : Typedtree.expression) ->
          match e.exp_desc with
          | Texp_apply (f, args) -> (
            match Tast_util.head_path f with
            | Some np when is_sink np ->
              List.iter
                (fun (a : Typedtree.expression) ->
                  let p = a.exp_loc.loc_start in
                  acc :=
                    {
                      rloc = a.exp_loc;
                      desc =
                        Printf.sprintf "the domain closure submitted at %s:%d"
                          p.pos_fname p.pos_lnum;
                      expr = a;
                    }
                    :: !acc)
                (Tast_util.supplied_args args)
            | _ -> ())
          | _ -> ())
        source.str)
    index.sources;
  (* [@race.domain] expressions — hook closures handed to setters rather
     than to a spawn. *)
  List.iter
    (fun (source : Cmt_source.t) ->
      Tast_util.iter_structure_expressions
        (fun (e : Typedtree.expression) ->
          if Tast_util.has_attr domain_attr e.exp_attributes then
            let p = e.exp_loc.loc_start in
            acc :=
              {
                rloc = e.exp_loc;
                desc =
                  Printf.sprintf "the [@race.domain] closure at %s:%d" p.pos_fname
                    p.pos_lnum;
                expr = e;
              }
              :: !acc)
        source.str)
    index.sources;
  (* [@race.domain] definitions. *)
  List.iter
    (fun (def : Index.def) ->
      if Tast_util.has_attr domain_attr def.attrs then
        acc :=
          {
            rloc = def.loc;
            desc = Printf.sprintf "[@race.domain] %s" def.display;
            expr = def.expr;
          }
          :: !acc)
    index.all_defs;
  List.rev !acc

let compute (index : Index.t) =
  let findings = ref [] in
  let emitted = Hashtbl.create 64 in
  let summaries = Hashtbl.create 128 in
  let summary_of (def : Index.def) =
    let k = Index.def_key def in
    match Hashtbl.find_opt summaries k with
    | Some s -> s
    | None ->
      let s = summarize ~strict:false index def.expr in
      Hashtbl.add summaries k s;
      s
  in
  let flag ~(root : root) ~chain (s : site) =
    let fkey =
      (s.sloc.Location.loc_start.pos_fname, s.sloc.loc_start.pos_cnum, s.what)
    in
    if not (Hashtbl.mem emitted fkey) then begin
      Hashtbl.add emitted fkey ();
      let via =
        match chain with
        | [] -> ""
        | chain -> Printf.sprintf " via %s" (String.concat " -> " chain)
      in
      findings :=
        Finding.of_loc ~chain ~rule:s.srule ~key:s.skey
          ~msg:
            (Printf.sprintf
               "%s — runs on a pool worker domain, reachable from %s%s; make it \
                Atomic, shard-local, or an op-stream append replayed behind the \
                barrier, or justify with [@race.allow %s \"...\"]"
               s.what root.desc via s.skey)
          s.sloc
        :: !findings
    end
  in
  let rec visit ~root ~chain ~visited (s : summary) =
    List.iter (fun site -> flag ~root ~chain site) s.sites;
    List.iter
      (fun (r : reference) ->
        let def =
          match r.target with
          | `Stamp s -> Index.resolve_stamp index s
          | `Path p -> Index.resolve_path index p
        in
        match def with
        | None -> ()
        | Some def ->
          (* Referencing a plain value does not execute its defining
             expression on this domain — that ran on the owner at
             definition time.  Only function bodies (and aliases, which
             may lead to one) are code the referencing domain runs; the
             value itself, if mutable, is caught at its access sites
             inside the cone. *)
          if def_body_visible def then begin
            let k = Index.def_key def in
            if not (Hashtbl.mem visited k) then begin
              Hashtbl.add visited k ();
              visit ~root ~chain:(chain @ [ def.display ]) ~visited (summary_of def)
            end
          end)
      s.refs
  in
  let rs = roots index in
  List.iter
    (fun (root : root) ->
      let visited = Hashtbl.create 32 in
      visit ~root ~chain:[] ~visited (summarize ~strict:true index root.expr))
    rs;
  (List.rev !findings, List.length rs)

(* One walk serves both D-rules; memoised on the index like alloccheck's. *)
let cached : (Index.t * (Finding.t list * int)) option ref = ref None

let walk_results (index : Index.t) =
  match !cached with
  | Some (i, r) when i == index -> r
  | _ ->
    let r = compute index in
    cached := Some (index, r);
    r

let findings index = fst (walk_results index)
let n_roots index = snd (walk_results index)
