(* The sanctioned multicore boundary, in one place.

   Two locations in the tree are allowed to touch blocking/ordering
   primitives (Domain, Atomic, Mutex, Condition, Semaphore) directly:

     - lib/exec/ — the deterministic job pool, whose whole point is to
       confine parallelism where it cannot reach simulated state;
     - lib/sim/shard.ml, by exact path — the sharded engine's barrier
       module, which needs Domain.DLS to route trace/obs effects from
       worker domains into per-shard replay buffers.

   This is the typed successor of lint R1's per-file multicore exemption
   list (R1 now checks only ambient nondeterminism): the exemption is a
   property of the checked boundary, not of the syntax, so it lives with
   the domain-safety rules.  Like the old R1 list, matching is by exact
   path suffix — a decoy shard.ml elsewhere in the tree gets no
   exemption. *)

let normalized path = String.concat "/" (String.split_on_char '\\' path)

let exact_suffix ~suffix path =
  let p = normalized path in
  String.equal p suffix
  || String.length p > String.length ("/" ^ suffix)
     && Filename.check_suffix p ("/" ^ suffix)

let is_shard_ml path = exact_suffix ~suffix:"lib/sim/shard.ml" path

let in_exec path =
  let rec scan = function
    | "lib" :: "exec" :: _ -> true
    | _ :: rest -> scan rest
    | [] -> false
  in
  scan (String.split_on_char '/' (normalized path))

let sanctioned path = in_exec path || is_shard_ml path
