(* ecfd-racecheck: the repo's interprocedural domain-safety checker.

   The sharded engine (lib/sim/shard.ml) and the job pool (lib/exec)
   execute code on worker domains; TSan can only tell us about the
   interleavings a particular run happened to explore.  This pass makes
   the domain-safety argument static: it loads the .cmt files dune
   already produced and proves, for every closure that crosses onto a
   worker domain, that it writes no foreign mutable state (D1), reads no
   unpublished mutable state (D2), that every sequential-path effect has
   a barrier-replay arm (D3), and that blocking primitives stay inside
   the sanctioned boundary (D4).

     ecfd_racecheck [--list-rules] [--json FILE] [DIR ...]

   Scans every .cmt below the given directories (default: lib bench,
   i.e. the library build trees when run from inside _build/default via
   `dune build @racecheck`), prints findings as "file:line: [RULE]
   message" and exits non-zero if there are any.  With [--json FILE] the
   findings are also written as a JSON array (empty on a clean pass) for
   CI artifacts.  See HACKING.md, "Domain-safety (D-rules)". *)

open Racecheck_core

let usage () =
  prerr_endline
    "usage: ecfd_racecheck [--list-rules] [--json FILE] [DIR ...]   (default dirs: \
     lib bench)";
  exit 2

let list_rules () =
  List.iter
    (fun (r : Drule.t) -> Printf.printf "%-4s %-12s %s\n" r.id r.key r.doc)
    Registry.all;
  print_string
    "RACE race         a [@race.allow] attribute itself is malformed or lacks a \
     reason\n\
     CMT  cmt          a .cmt file below the scanned roots could not be read\n"

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if List.mem "--help" args || List.mem "-h" args then usage ();
  if List.mem "--list-rules" args then begin
    list_rules ();
    exit 0
  end;
  let json_file = ref None in
  let rec parse acc = function
    | [] -> List.rev acc
    | "--json" :: file :: rest ->
      json_file := Some file;
      parse acc rest
    | "--json" :: [] -> usage ()
    | a :: rest ->
      if String.length a > 0 && a.[0] = '-' then usage ();
      parse (a :: acc) rest
  in
  let roots =
    match parse [] args with
    | [] -> Check_common.Cmt_source.default_roots
    | roots -> roots
  in
  List.iter
    (fun r ->
      if not (Sys.file_exists r) then begin
        Printf.eprintf "ecfd-racecheck: no such file or directory: %s\n" r;
        exit 2
      end)
    roots;
  let r = Driver.run roots in
  if r.Check_common.Cmt_driver.n_units = 0 then begin
    Printf.eprintf
      "ecfd-racecheck: no .cmt files below %s — build first (dune build @all)\n"
      (String.concat " " roots);
    exit 2
  end;
  exit
    (Check_common.Report.emit ~tool:"ecfd-racecheck" ?json:!json_file
       ~suppressed:r.Check_common.Cmt_driver.suppressed
       ~clean_note:
         (Printf.sprintf "%d rule(s) over %d unit(s) below %s"
            (List.length Registry.all) r.Check_common.Cmt_driver.n_units
            (String.concat " " roots))
       r.Check_common.Cmt_driver.findings)
