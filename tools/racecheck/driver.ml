(* ecfd-racecheck's driver is the shared typed-pass driver
   (Check_common.Cmt_driver) instantiated with the D-rule registry and
   the [@race.allow] suppression grammar.  The plumbing — .cmt discovery
   and loading, index construction, suppression collection, filtering
   and stale-suppression detection — lives in tools/check_common and is
   shared with ecfd-analyze and ecfd-alloccheck. *)

let run roots =
  Check_common.Cmt_driver.run ~attr_name:"race.allow" ~meta_rule:"RACE"
    ~meta_key:"race" ~rules:Registry.all roots
