(* The D-rule registry — the one place a new domain-safety rule is added
   (mirrors tools/analyze/registry.ml for the A-rules). *)

let all : Drule.t list =
  [
    Rule_escape.rule;  (* D1 *)
    Rule_publish.rule;  (* D2 *)
    Rule_replay.rule;  (* D3 *)
    Rule_blocking.rule;  (* D4 *)
  ]
