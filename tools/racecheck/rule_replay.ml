(* D3 — barrier-replay completeness.

   The sharded engine's determinism story (DESIGN, "Deterministic sharded
   simulation") is that worker domains never perform observable effects
   directly: every Trace record, Stats counter, Obs observation and Rng
   draw the sequential path performs is either executed shard-locally on
   owner-threaded state or appended to the per-shard op stream and
   replayed by the coordinator behind the pool barrier.  A sequential
   effect with no replay arm is a silent divergence: the sharded run
   type-checks, races nothing, and still produces different bytes.

   The rule makes that completeness obligation static.  Definitions
   annotated [@race.seq_root] (the sequential engine's effectful entry
   points) and [@race.shard_root] (the coordinator's replay/flush
   routines) each get an A1-style cone; within a cone, an *effect* is any
   reference whose normalised dotted path passes through one of the
   effect modules (Trace, Stats, Registry, Obs, Rng).  Every effect
   callee the sequential cones reach must also be reached by some shard
   cone; the diff is reported at the sequential call site with its chain.

   When a scanned tree declares no [@race.shard_root] at all (fixtures,
   benches) there is no replay obligation and the rule is silent. *)

open Check_common

let rule_id = "D3"
let key = "replay"

let seq_attr = "race.seq_root"
let shard_attr = "race.shard_root"

let effect_modules = [ "Trace"; "Stats"; "Registry"; "Obs"; "Rng" ]

(* ["Sim"; "Trace"; "record"] -> passes through "Trace"; the last
   component is the value, never a module. *)
let is_effect np =
  let rec mods = function [] | [ _ ] -> [] | m :: rest -> m :: mods rest in
  List.exists (fun m -> List.mem m effect_modules) (mods np)

type summary = {
  effects : (string * Location.t) list;  (* dotted callee, first site *)
  refs : (string * [ `Stamp of string | `Path of string ]) list;
}

let summarize (e : Typedtree.expression) : summary =
  let bound = Tast_util.bound_idents e in
  let effects = ref [] and refs = ref [] in
  let seen = Hashtbl.create 32 in
  let once k v r = if not (Hashtbl.mem seen k) then (Hashtbl.add seen k (); r := v :: !r) in
  Tast_util.iter_expressions
    (fun (x : Typedtree.expression) ->
      match x.exp_desc with
      | Texp_ident (p, _, _) -> (
        let np = Tast_util.path_of p in
        let dotted = Tast_util.dotted np in
        if is_effect np then once ("e:" ^ dotted) (dotted, x.exp_loc) effects
        else
          match p with
          | Pident id ->
            if not (Hashtbl.mem bound (Ident.unique_name id)) then
              once
                ("s:" ^ Ident.unique_name id)
                (Ident.name id, `Stamp (Ident.unique_name id))
                refs
          | Pdot _ -> once ("p:" ^ dotted) (dotted, `Path dotted) refs
          | _ -> ())
      | _ -> ())
    e;
  { effects = List.rev !effects; refs = List.rev !refs }

let run (index : Index.t) =
  let tagged attr =
    List.filter
      (fun (d : Index.def) -> Tast_util.has_attr attr d.attrs)
      index.all_defs
  in
  let seq_roots = tagged seq_attr and shard_roots = tagged shard_attr in
  if seq_roots = [] || shard_roots = [] then []
  else begin
    let summaries = Hashtbl.create 128 in
    let summary_of (def : Index.def) =
      let k = Index.def_key def in
      match Hashtbl.find_opt summaries k with
      | Some s -> s
      | None ->
        let s = summarize def.expr in
        Hashtbl.add summaries k s;
        s
    in
    (* Walk one root's cone, reporting each effect callee (first site,
       with chain) to [on_effect]. *)
    let walk ~on_effect (root : Index.def) =
      let visited = Hashtbl.create 32 in
      let rec visit ~chain (s : summary) =
        List.iter (fun (callee, loc) -> on_effect ~chain callee loc) s.effects;
        List.iter
          (fun (_, target) ->
            let def =
              match target with
              | `Stamp s -> Index.resolve_stamp index s
              | `Path p -> Index.resolve_path index p
            in
            match def with
            | None -> ()
            | Some def ->
              let k = Index.def_key def in
              if not (Hashtbl.mem visited k) then begin
                Hashtbl.add visited k ();
                visit ~chain:(chain @ [ def.display ]) (summary_of def)
              end)
          s.refs
      in
      Hashtbl.add visited (Index.def_key root) ();
      visit ~chain:[ root.display ] (summary_of root)
    in
    let replayed = Hashtbl.create 64 in
    List.iter
      (walk ~on_effect:(fun ~chain:_ callee _ -> Hashtbl.replace replayed callee ()))
      shard_roots;
    let findings = ref [] in
    let reported = Hashtbl.create 32 in
    List.iter
      (fun (root : Index.def) ->
        walk root ~on_effect:(fun ~chain callee loc ->
            if
              (not (Hashtbl.mem replayed callee))
              && not (Hashtbl.mem reported callee)
            then begin
              Hashtbl.add reported callee ();
              findings :=
                Finding.of_loc ~chain ~rule:rule_id ~key
                  ~msg:
                    (Printf.sprintf
                       "sequential-path effect %s (reached via %s) has no arm in \
                        any [@race.shard_root] replay cone — a sharded run would \
                        silently diverge from the sequential engine; add the \
                        opcode + replay arm, or justify with [@race.allow replay \
                        \"...\"]"
                       callee
                       (String.concat " -> " chain))
                  loc
                :: !findings
            end))
      seq_roots;
    List.rev !findings
  end

let rule : Drule.t =
  {
    id = rule_id;
    key;
    doc =
      "barrier-replay completeness: every Trace/Stats/Registry/Obs/Rng callee \
       reachable from a [@race.seq_root] must be reachable from some \
       [@race.shard_root] replay cone";
    run;
  }
