(* D4 — blocking/ordering hazards outside the sanctioned boundary.

   [Domain], [Atomic], [Mutex], [Condition] and [Semaphore] references
   are confined to lib/exec/ (the pool) and lib/sim/shard.ml (the
   sharded back-end's Domain.DLS routing) — the Boundary module.  A
   spawn in simulated code forks the determinism story; a mutex can
   deadlock against the pool's own joins; an ad-hoc Atomic invents a
   synchronisation protocol the checkers cannot see.  This is the typed
   successor of lint R1's multicore arm: R1 now checks only ambient
   nondeterminism, and the multicore exemption list lives here, next to
   the rules that prove the exempted files safe. *)

open Check_common

let rule_id = "D4"
let key = "blocking"

let multicore_roots = [ "Domain"; "Atomic"; "Mutex"; "Condition"; "Semaphore" ]

let run (index : Index.t) =
  let findings = ref [] in
  let seen = Hashtbl.create 32 in
  List.iter
    (fun (source : Cmt_source.t) ->
      if not (Boundary.sanctioned source.source_path) then
        Tast_util.iter_structure_expressions
          (fun (e : Typedtree.expression) ->
            match e.exp_desc with
            | Texp_ident (p, _, _) -> (
              match Tast_util.path_of p with
              | root :: _ :: _ when List.mem root multicore_roots ->
                let k =
                  (e.exp_loc.Location.loc_start.pos_fname, e.exp_loc.loc_start.pos_cnum)
                in
                if not (Hashtbl.mem seen k) then begin
                  Hashtbl.add seen k ();
                  findings :=
                    Finding.of_loc ~rule:rule_id ~key
                      ~msg:
                        (Printf.sprintf
                           "multicore primitive %s outside the sanctioned boundary \
                            (lib/exec/, lib/sim/shard.ml) — simulated code must \
                            stay domain-free and deterministic; parallelism \
                            belongs to the pool (HACKING.md \"The job pool\"), or \
                            justify with [@race.allow blocking \"...\"]"
                           (Tast_util.dotted (Tast_util.path_of p)))
                      e.exp_loc
                    :: !findings
                end
              | _ -> ())
            | _ -> ())
          source.str)
    index.sources;
  List.rev !findings

let rule : Drule.t =
  {
    id = rule_id;
    key;
    doc =
      "blocking/ordering hazards: Domain/Atomic/Mutex/Condition/Semaphore are \
       confined to lib/exec/ and lib/sim/shard.ml";
    run;
  }
