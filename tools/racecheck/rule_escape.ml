(* D1 — escape analysis: mutable state written, or foreign code called,
   on a pool worker domain.

   The sites come from the shared domain cone walk (Domain_walk): writes
   whose target is not owner-threaded, and calls through function values
   whose body the checker cannot see.  Both are flagged at the offending
   site with the call chain from the domain root. *)

let rule_id = "D1"
let key = "escape"

let run index =
  List.filter
    (fun (f : Check_common.Finding.t) -> String.equal f.rule rule_id)
    (Domain_walk.findings index)

let rule : Drule.t =
  {
    id = rule_id;
    key;
    doc =
      "domain escape: code reachable from a pool/spawn closure or a \
       [@race.domain] hook must not write non-Atomic mutable state captured \
       from outside the cone, nor call statically-unknown function values \
       without a waiver";
    run;
  }
