(* The D-rule registry's type: the shared typed-pass rule record
   (Check_common.Trule), exactly as ecfd-analyze's A-rules and
   ecfd-alloccheck's Z-rules.  Every rule is whole-program: it sees the
   full index and returns findings; suppression
   ([@race.allow <key> "reason"]) and output formatting are applied by the
   shared driver. *)

type t = Check_common.Trule.t = {
  id : string;  (** Printed in findings: [D1], [D2], ... *)
  key : string;  (** Suppression key: [@race.allow <key> "reason"]. *)
  doc : string;  (** One-line description for [--list-rules]. *)
  run : Check_common.Index.t -> Check_common.Finding.t list;
}
