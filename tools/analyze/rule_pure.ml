(* A1 — pool-job purity (interprocedural).

   Everything that flows into [Exec.Pool.run] (directly, or through the
   bench grid mappers [par_map]/[par_map2]/[par_map3]) runs on an
   arbitrary domain, in an arbitrary interleaving with its sibling jobs.
   The pool's determinism contract (HACKING.md, "The job pool") is that a
   job is a pure function of its closure: byte-identity of parallel and
   sequential output holds only because jobs neither perform I/O, read
   ambient state, nor write mutable state shared with anything outside the
   job.

   The rule builds a call-graph closure over the value index: starting
   from every expression that flows into a pool sink, it follows
   references to project-defined values (by stamp within a unit, by
   normalised path across units) and flags, at the offending site,

     - banned primitives: stdout/stderr printing (including the implicit-
       formatter Format/Fmt entry points), [Sys.*] (minus a few pure
       constants), [Unix.*], [Random.*], stdin, process control, and
       multicore primitives;
     - writes to mutable state captured from outside the job closure: an
       assignment ([:=], [incr], [Hashtbl.replace], [t.f <- ...], ...)
       whose target is not bound inside the function being analysed —
       module-level refs and tables, or captures from an enclosing scope.
       Writes through the job's own parameters and locals are fine: a job
       that builds and mutates its own engine is still pure from the
       pool's point of view.

   [Exec.Pool] itself, [Sim.Rng] and [Sim.Shard] are sanctioned
   boundaries: a nested [par_map] degrades to in-place sequential
   execution by design, all randomness is seeded, and the sharded engine
   back-end confines its Domain.DLS use behind pool barriers with
   byte-identical replay (lint R1 scopes the multicore exemption to that
   exact file).  The traversal does not descend into them. *)

open Check_common

let rule_id = "A1"
let key = "pure"

let opaque_prefixes = [ [ "Exec"; "Pool" ]; [ "Sim"; "Rng" ]; [ "Sim"; "Shard" ] ]

let sink_suffixes = [ [ "Pool"; "run" ] ]
let mapper_names = [ "par_map"; "par_map2"; "par_map3" ]

let is_sink np =
  List.exists (fun s -> Tast_util.has_suffix ~suffix:s np) sink_suffixes
  || (match List.rev np with f :: _ -> List.mem f mapper_names | [] -> false)

(* Pure [Sys] constants that carry no ambient state. *)
let pure_sys =
  [
    "word_size"; "int_size"; "max_array_length"; "max_string_length"; "big_endian";
    "ocaml_version"; "opaque_identity";
  ]

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Why a primitive is banned inside a pool job, or [None] if it is fine. *)
let banned_prim np =
  match np with
  | [ x ] when has_prefix ~prefix:"print_" x -> Some "prints to stdout"
  | [ x ] when has_prefix ~prefix:"prerr_" x -> Some "prints to stderr"
  | [ x ] when has_prefix ~prefix:"read_" x -> Some "reads stdin"
  | [ ("stdout" | "stderr" | "stdin") ] -> Some "touches a process-global channel"
  | [ ("exit" | "at_exit") ] -> Some "process control"
  | [ ("open_out" | "open_out_bin" | "open_out_gen" | "open_in" | "open_in_bin"
      | "open_in_gen") ] ->
    Some "file I/O"
  | "Printf" :: ("printf" | "eprintf") :: _ -> Some "prints to stdout/stderr"
  | "Format"
    :: ( "printf" | "eprintf" | "print_string" | "print_int" | "print_float"
       | "print_char" | "print_bool" | "print_space" | "print_cut" | "print_break"
       | "print_newline" | "print_flush" | "force_newline" | "open_box" | "close_box"
       | "std_formatter" | "err_formatter" | "get_std_formatter" )
    :: _ ->
    Some "prints through the process-global formatter"
  | "Fmt" :: ("pr" | "epr" | "stdout" | "stderr") :: _ ->
    Some "prints through the process-global formatter"
  | "Sys" :: s :: _ when not (List.mem s pure_sys) ->
    Some "reads ambient process state (Sys)"
  | "Unix" :: _ -> Some "ambient syscall (Unix)"
  | "Random" :: _ -> Some "ambient randomness; use the engine's seeded Sim.Rng"
  | ("Domain" | "Atomic" | "Mutex" | "Condition" | "Semaphore") :: _ :: _ ->
    Some "multicore primitive inside a job; parallelism belongs to the pool"
  | "Filename" :: ("temp_file" | "open_temp_file" | "temp_dir") :: _ ->
    Some "touches the filesystem"
  | _ -> None

(* Mutating functions whose first positional argument is the mutated
   structure. *)
let is_write_fn np =
  match np with
  | [ (":=" | "incr" | "decr") ] -> true
  | [ ("Array" | "Bytes"); ("set" | "unsafe_set" | "fill") ] -> true
  | "Hashtbl"
    :: ("add" | "replace" | "remove" | "reset" | "clear" | "filter_map_inplace")
    :: _ ->
    true
  | [ "Buffer"; f ] when has_prefix ~prefix:"add_" f -> true
  | [ "Buffer"; ("clear" | "reset" | "truncate") ] -> true
  | [ "Queue"; ("push" | "add" | "pop" | "take" | "clear" | "transfer") ] -> true
  | [ "Stack"; ("push" | "pop" | "clear") ] -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Per-definition summaries                                           *)
(* ------------------------------------------------------------------ *)

type reference = { target : [ `Stamp of string | `Path of string ]; rname : string }

type summary = {
  prims : (Location.t * string * string) list;  (* site, name, why *)
  writes : (Location.t * string) list;  (* site, target name *)
  refs : reference list;  (* deterministic first-occurrence order *)
}

let rec target_root (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> Some p
  | Texp_field (e, _, _) -> target_root e
  | _ -> None

let summarize (e : Typedtree.expression) : summary =
  let bound = Tast_util.bound_idents e in
  let is_bound id = Hashtbl.mem bound (Ident.unique_name id) in
  let prims = ref [] and writes = ref [] and refs = ref [] in
  let seen_refs = Hashtbl.create 32 in
  let add_ref target rname =
    let k = match target with `Stamp s -> "s:" ^ s | `Path p -> "p:" ^ p in
    if not (Hashtbl.mem seen_refs k) then begin
      Hashtbl.add seen_refs k ();
      refs := { target; rname } :: !refs
    end
  in
  let note_write loc (p : Path.t) =
    writes := (loc, Path.name p) :: !writes
  in
  let classify_target loc (e : Typedtree.expression) =
    match target_root e with
    | Some (Path.Pident id) -> if not (is_bound id) then note_write loc (Pident id)
    | Some p -> note_write loc p
    | None -> ()
  in
  Tast_util.iter_expressions
    (fun (x : Typedtree.expression) ->
      match x.exp_desc with
      | Texp_ident (p, _, _) -> (
        let np = Tast_util.path_of p in
        match banned_prim np with
        | Some why -> prims := (x.exp_loc, Path.name p, why) :: !prims
        | None -> (
          if
            not
              (List.exists
                 (fun pre -> Tast_util.starts_with ~prefix:pre np)
                 opaque_prefixes)
          then
            match p with
            | Pident id ->
              if not (is_bound id) then
                add_ref (`Stamp (Ident.unique_name id)) (Ident.name id)
            | Pdot _ -> add_ref (`Path (Tast_util.dotted np)) (Tast_util.dotted np)
            | _ -> ()))
      | Texp_apply (f, args) -> (
        match Tast_util.head_path f with
        | Some np when is_write_fn np -> (
          match Tast_util.nolabel_args args with
          | tgt :: _ -> classify_target x.exp_loc tgt
          | [] -> ())
        | _ -> ())
      | Texp_setfield (e1, _, _, _) -> classify_target x.exp_loc e1
      | Texp_setinstvar (_, p, _, _) -> note_write x.exp_loc p
      | _ -> ())
    e;
  { prims = List.rev !prims; writes = List.rev !writes; refs = List.rev !refs }

(* ------------------------------------------------------------------ *)
(* Reachability from pool sinks                                       *)
(* ------------------------------------------------------------------ *)

let run (index : Index.t) =
  let findings = ref [] in
  let emitted = Hashtbl.create 32 in
  let summaries = Hashtbl.create 128 in
  let summary_of (def : Index.def) =
    let k = Index.def_key def in
    match Hashtbl.find_opt summaries k with
    | Some s -> s
    | None ->
      let s = summarize def.expr in
      Hashtbl.add summaries k s;
      s
  in
  let flag ~root_loc ~chain loc what =
    let fkey = (loc.Location.loc_start.pos_fname, loc.loc_start.pos_cnum, what) in
    if not (Hashtbl.mem emitted fkey) then begin
      Hashtbl.add emitted fkey ();
      let via =
        match chain with
        | [] -> ""
        | chain -> Printf.sprintf " via %s" (String.concat " -> " chain)
      in
      let root = root_loc.Location.loc_start in
      findings :=
        Check_common.Finding.of_loc ~chain ~rule:rule_id ~key
          ~msg:
            (Printf.sprintf
               "%s — reachable from the pool job submitted at %s:%d%s; pool jobs \
                must be pure (HACKING.md \"The job pool\"), or justify with \
                [@analyze.allow pure \"...\"]"
               what root.pos_fname root.pos_lnum via)
          loc
        :: !findings
    end
  in
  let rec visit ~root_loc ~chain ~visited (s : summary) =
    List.iter
      (fun (loc, name, why) ->
        flag ~root_loc ~chain loc (Printf.sprintf "impure primitive %s (%s)" name why))
      s.prims;
    List.iter
      (fun (loc, tgt) ->
        flag ~root_loc ~chain loc
          (Printf.sprintf
             "write to mutable state captured from outside the job closure (%s)" tgt))
      s.writes;
    List.iter
      (fun (r : reference) ->
        let def =
          match r.target with
          | `Stamp s -> Index.resolve_stamp index s
          | `Path p -> Index.resolve_path index p
        in
        match def with
        | None -> ()
        | Some def ->
          let k = Index.def_key def in
          if not (Hashtbl.mem visited k) then begin
            Hashtbl.add visited k ();
            visit ~root_loc ~chain:(chain @ [ def.display ]) ~visited (summary_of def)
          end)
      s.refs
  in
  (* Sinks, in deterministic source order. *)
  List.iter
    (fun (source : Cmt_source.t) ->
      let open Tast_iterator in
      let it =
        {
          default_iterator with
          expr =
            (fun self (e : Typedtree.expression) ->
              (match e.exp_desc with
              | Texp_apply (f, args) -> (
                match Tast_util.head_path f with
                | Some np when is_sink np ->
                  List.iter
                    (fun (a : Typedtree.expression) ->
                      let visited = Hashtbl.create 32 in
                      visit ~root_loc:a.exp_loc ~chain:[] ~visited (summarize a))
                    (Tast_util.supplied_args args)
                | _ -> ())
              | _ -> ());
              default_iterator.expr self e);
        }
      in
      it.structure it source.str)
    index.sources;
  List.rev !findings

let rule : Arule.t =
  {
    id = rule_id;
    key;
    doc =
      "pool-job purity: code reachable from Exec.Pool.run / par_map* must not \
       print, read ambient state (Sys/Unix/Random), or write mutable state \
       captured from outside the job closure";
    run;
  }
