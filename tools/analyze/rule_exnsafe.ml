(* A2 — exception-safety of engine callbacks.

   Timer callbacks ([Engine.set_timer], [Engine.every], [Engine.at]) and
   message handlers ([Engine.register]) execute inside [Engine.step]'s
   event dispatch.  An exception escaping one unwinds the engine mid-event
   and leaves the simulation half-stepped — every quantitative claim
   regenerated from such a run is garbage.  The contract is therefore:
   every raising path inside a callback is locally handled, or the
   callback is explicitly annotated [@analyze.may_raise] (which documents
   that the raise is a deliberate abort of the whole run, e.g. an
   invariant check in a test harness).

   Mechanics: at every application of a sink, the function-typed arguments
   are the callbacks.  A lambda is analysed in place; a named function is
   resolved through the value index (one hop) and its body analysed.
   Inside the body, [raise]/[raise_notrace]/[failwith]/[invalid_arg] and
   [assert] are flagged — except under a [try ... with] or a [match]
   carrying exception cases, whose scrutinee/body is considered locally
   handled (the handler branches themselves are still scanned: a re-raise
   escapes). *)

open Check_common

let rule_id = "A2"
let key = "raises"

(* Marks a callback whose raise is a deliberate whole-run abort; checked
   by this rule only, so it lives here rather than in the shared
   suppression machinery. *)
let may_raise_attr = "analyze.may_raise"

let sinks = [ "set_timer"; "every"; "at"; "register" ]

let is_sink ~(source : Cmt_source.t) np =
  match List.rev np with
  | f :: rest ->
    List.mem f sinks
    && (match rest with
       | "Engine" :: _ -> true
       | [] -> Tast_util.has_suffix ~suffix:[ "sim"; "engine.ml" ]
                 (String.split_on_char '/' source.source_path)
       | _ -> false)
  | [] -> false

let raising_head np =
  match np with
  | [ ("raise" | "raise_notrace" | "failwith" | "invalid_arg") ] -> true
  | _ -> false

let has_exception_case cases =
  List.exists
    (fun (c : Typedtree.computation Typedtree.case) ->
      match Typedtree.split_pattern c.c_lhs with _, Some _ -> true | _ -> false)
    cases

(* Scan a callback body for raises that can escape it. *)
let scan_escaping ~flag (body : Typedtree.expression) =
  let rec go (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_apply (f, args) ->
      (match Tast_util.head_path f with
      | Some np when raising_head np ->
        flag e.exp_loc
          (Printf.sprintf "%s" (String.concat "." np))
      | _ -> go f);
      List.iter go (Tast_util.supplied_args args)
    | Texp_assert _ -> flag e.exp_loc "assert (raises Assert_failure when false)"
    | Texp_try (_, handlers) ->
      (* The guarded body is locally handled; a raise in a handler branch
         still escapes. *)
      List.iter (fun (c : Typedtree.value Typedtree.case) -> go c.c_rhs) handlers
    | Texp_match (_, cases, _) when has_exception_case cases ->
      List.iter (fun (c : Typedtree.computation Typedtree.case) -> go c.c_rhs) cases
    | _ -> Tast_util.shallow_iter go e
  in
  go body

let callback_exempt ~(index : Index.t) (cb : Typedtree.expression) =
  let may_raise = may_raise_attr in
  if Tast_util.has_attr may_raise cb.exp_attributes then (None, true)
  else
    match cb.exp_desc with
    | Texp_ident (p, _, _) -> (
      let def =
        match p with
        | Pident id -> Index.resolve_stamp index (Ident.unique_name id)
        | Pdot _ -> Index.resolve_path index (Tast_util.dotted (Tast_util.path_of p))
        | _ -> None
      in
      match def with
      | Some def ->
        if
          Tast_util.has_attr may_raise def.attrs
          || Tast_util.has_attr may_raise def.expr.exp_attributes
        then (None, true)
        else (Some def.expr, false)
      | None -> (None, true) (* external: opaque, nothing to scan *))
    | _ -> (Some cb, false)

let run (index : Index.t) =
  let findings = ref [] in
  let emitted = Hashtbl.create 32 in
  List.iter
    (fun (source : Cmt_source.t) ->
      let open Tast_iterator in
      let it =
        {
          default_iterator with
          expr =
            (fun self (e : Typedtree.expression) ->
              (match e.exp_desc with
              | Texp_apply (f, args) -> (
                match Tast_util.head_path f with
                | Some np when is_sink ~source np ->
                  let sink_name = Tast_util.dotted np in
                  let reg = e.exp_loc.loc_start in
                  List.iter
                    (fun (a : Typedtree.expression) ->
                      if Tast_util.is_arrow a.exp_type then begin
                        match callback_exempt ~index a with
                        | _, true -> ()
                        | body, false ->
                          let body = Option.value body ~default:a in
                          scan_escaping
                            ~flag:(fun loc what ->
                              let fk =
                                (loc.Location.loc_start.pos_fname,
                                 loc.loc_start.pos_cnum)
                              in
                              if not (Hashtbl.mem emitted fk) then begin
                                Hashtbl.add emitted fk ();
                                findings :=
                                  Check_common.Finding.of_loc ~rule:rule_id ~key
                                    ~msg:
                                      (Printf.sprintf
                                         "%s may escape the %s callback registered \
                                          at %s:%d and unwind the engine mid-event; \
                                          handle it locally or annotate the callback \
                                          [@analyze.may_raise]"
                                         what sink_name reg.pos_fname reg.pos_lnum)
                                    loc
                                  :: !findings
                              end)
                            body
                      end)
                    (Tast_util.nolabel_args args)
                | _ -> ())
              | _ -> ());
              default_iterator.expr self e);
        }
      in
      it.structure it source.str)
    index.sources;
  List.rev !findings

let rule : Arule.t =
  {
    id = rule_id;
    key;
    doc =
      "exception-safety: Engine.set_timer/every/at callbacks and Engine.register \
       handlers must not let raises escape into the engine's event dispatch \
       (annotate deliberate aborts [@analyze.may_raise])";
    run;
  }
