(* The A-rule registry — the one place a new typed rule is added
   (mirrors tools/lint/registry.ml for the syntactic R-rules). *)

let all : Arule.t list =
  [
    Rule_pure.rule;  (* A1 *)
    Rule_exnsafe.rule;  (* A2 *)
    Rule_polycmp_t.rule;  (* A3 *)
    Rule_unordered_t.rule;  (* A4 *)
  ]
