(* ecfd-analyze's driver is the shared typed-pass driver
   (Check_common.Cmt_driver) instantiated with the A-rule registry and the
   [@analyze.allow] suppression grammar.  The actual plumbing — .cmt
   discovery/loading, index construction, suppression collection and
   filtering — lives in tools/check_common and is shared with
   ecfd-alloccheck. *)

let run roots =
  Check_common.Cmt_driver.run ~attr_name:"analyze.allow" ~meta_rule:"ANALYZE"
    ~meta_key:"analyze" ~rules:Registry.all roots
