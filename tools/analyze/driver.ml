(* .cmt discovery, loading, rule execution and suppression filtering for
   ecfd-analyze.  Mirrors tools/lint/driver.ml: unreadable or
   implementation-less .cmt handling is explicit ([CMT] findings for the
   former) so a broken build input can never silently pass the analyzer. *)

let load roots =
  let cmts = Cmt_source.discover roots in
  List.fold_left
    (fun (sources, findings) cmt_path ->
      match Cmt_source.load cmt_path with
      | Ok (Some src) -> (src :: sources, findings)
      | Ok None -> (sources, findings) (* no implementation: packs, aliases *)
      | Error msg ->
        ( sources,
          {
            Check_common.Finding.file = cmt_path;
            line = 1;
            col = 0;
            offset = 0;
            rule = "CMT";
            key = "cmt";
            msg = "unreadable .cmt: " ^ msg;
          }
          :: findings ))
    ([], []) cmts
  |> fun (sources, findings) -> (List.rev sources, findings)

(* Run every registered A-rule over the .cmt files found below [roots].
   Returns the surviving findings, sorted. *)
let run roots =
  let sources, load_findings = load roots in
  let index = Index.build sources in
  let suppressions =
    List.map (fun (s : Cmt_source.t) -> (s.source_path, Tsuppress.collect s)) sources
  in
  let suppression_findings =
    List.concat_map (fun (_, (s : Tsuppress.t)) -> s.findings) suppressions
  in
  let rule_findings = List.concat_map (fun (r : Arule.t) -> r.run index) Registry.all in
  let surviving =
    List.filter
      (fun (f : Check_common.Finding.t) ->
        match List.assoc_opt f.file suppressions with
        | Some s -> not (Tsuppress.is_suppressed s f)
        | None -> true)
      rule_findings
  in
  ( List.sort_uniq Check_common.Finding.compare
      (load_findings @ suppression_findings @ surviving),
    List.length sources )
