(* The A-rule registry's type: the shared typed-pass rule record
   (Check_common.Trule).  Every rule is whole-program: it sees the full
   index (all loaded compilation units plus the value tables) and returns
   findings.  Suppression ([@analyze.allow <key> "reason"]) and output
   formatting are applied by the shared driver. *)

type t = Check_common.Trule.t = {
  id : string;  (** Printed in findings: [A1], [A2], ... *)
  key : string;  (** Suppression key: [@analyze.allow <key> "reason"]. *)
  doc : string;  (** One-line description for [--list-rules]. *)
  run : Check_common.Index.t -> Check_common.Finding.t list;
}
