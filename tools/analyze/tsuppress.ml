(* Per-site suppression for the typed analyzer:
   [@analyze.allow <rule-key> "reason"].

   Same semantics as the lint's [@lint.allow] (Check_common.Allow_payload):
   the attribute may sit on an expression or a value binding, or float at
   the top of a file ([@@@analyze.allow ...] suppresses for the whole
   file); the reason string is mandatory, and a broken attribute is itself
   reported (rule [ANALYZE]).  Attributes survive typing unchanged, so the
   spans are collected from the typedtree of the .cmt — no reparse. *)

type t = {
  spans : Check_common.Allow_payload.span list;
  findings : Check_common.Finding.t list;
}

let attr_name = "analyze.allow"

(* The escape hatch of rule A2: a callback annotated
   [@analyze.may_raise] is allowed to let exceptions escape. *)
let may_raise_attr = "analyze.may_raise"

let collect (src : Cmt_source.t) =
  let spans = ref [] and findings = ref [] in
  let note_attrs ~(span : Location.t) (attrs : Parsetree.attributes) =
    List.iter
      (fun (attr : Parsetree.attribute) ->
        match
          Check_common.Allow_payload.classify ~attr_name ~meta_rule:"ANALYZE"
            ~meta_key:"analyze" ~span attr
        with
        | None -> ()
        | Some (Ok span) -> spans := span :: !spans
        | Some (Error f) -> findings := f :: !findings)
      attrs
  in
  let open Tast_iterator in
  let it =
    {
      default_iterator with
      expr =
        (fun self (e : Typedtree.expression) ->
          note_attrs ~span:e.exp_loc e.exp_attributes;
          default_iterator.expr self e);
      value_binding =
        (fun self (vb : Typedtree.value_binding) ->
          note_attrs ~span:vb.vb_loc vb.vb_attributes;
          default_iterator.value_binding self vb);
      structure_item =
        (fun self (item : Typedtree.structure_item) ->
          (match item.str_desc with
          | Tstr_attribute attr ->
            note_attrs
              ~span:(Check_common.Allow_payload.file_span src.source_path)
              [ attr ]
          | Tstr_eval (_, attrs) -> note_attrs ~span:item.str_loc attrs
          | _ -> ());
          default_iterator.structure_item self item);
    }
  in
  it.structure it src.str;
  { spans = !spans; findings = !findings }

let is_suppressed t (f : Check_common.Finding.t) =
  Check_common.Allow_payload.covers t.spans f
