(* A4 — unordered-iteration escape, at the typed level.

   [Hashtbl.fold] enumerates buckets in an order decided by the hash seed
   and insertion history.  The syntactic R2 flags folds whose accumulator
   is a list/array *literal*; with types we can do better: any fully
   applied [Hashtbl.fold] whose instantiated result type still contains an
   order-sensitive constructor ([list]/[array]) is flagged — whatever the
   initial accumulator looked like — unless the result visibly flows
   through a sort before escaping (direct argument, [|>]/[@@] pipe, or a
   let-bound variable sorted later in the same body).  This is what keeps
   bucket order out of [Stats] snapshots and table rendering. *)

open Check_common

let rule_id = "A4"
let key = "unordered_t"

let sort_heads =
  [
    [ "List"; "sort" ]; [ "List"; "sort_uniq" ]; [ "List"; "stable_sort" ];
    [ "List"; "fast_sort" ]; [ "Array"; "sort" ]; [ "Array"; "stable_sort" ];
    [ "Array"; "fast_sort" ];
  ]

let is_sort np = List.exists (fun s -> Tast_util.has_suffix ~suffix:s np) sort_heads

(* [deep_head], not [apply_head]: [x |> List.sort cmp] is typed as the
   nested application [(List.sort cmp) x]. *)
let head_is_sort (e : Typedtree.expression) =
  match Tast_util.deep_head e with Some np -> is_sort np | None -> false

let order_sensitive ty =
  Tast_util.type_mentions ~pred:(fun np -> np = [ "list" ] || np = [ "array" ]) ty

let is_listy_fold (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_apply (f, _) -> (
    match Tast_util.head_path f with
    | Some np when Tast_util.has_suffix ~suffix:[ "Hashtbl"; "fold" ] np ->
      (not (Tast_util.is_arrow e.exp_type)) && order_sensitive e.exp_type
    | _ -> false)
  | _ -> false

(* Does [body] sort the variable with unique name [stamp]?  Covers
   [List.sort cmp x] and [x |> List.sort cmp]. *)
let sorted_in_body ~stamp body =
  Tast_util.expr_exists
    (fun (e : Typedtree.expression) ->
      match e.exp_desc with
      | Texp_apply _ -> (
        let arg_is_var (a : Typedtree.expression) =
          match a.exp_desc with
          | Texp_ident (Pident id, _, _) -> Ident.unique_name id = stamp
          | _ -> false
        in
        let args = Tast_util.flat_args e in
        match Tast_util.deep_head e with
        | Some np when is_sort np -> List.exists arg_is_var args
        | Some ([ "|>" ] | [ "@@" ]) ->
          List.exists arg_is_var args && List.exists head_is_sort args
        | _ -> false)
      | _ -> false)
    body

(* Is the fold at the head of [ancestors] (nearest first) visibly sorted? *)
let sanctioned ~fold ancestors =
  List.exists
    (fun (a : Typedtree.expression) ->
      match a.exp_desc with
      | Texp_apply _ -> (
        match Tast_util.deep_head a with
        | Some np when is_sort np -> true
        | Some ([ "|>" ] | [ "@@" ]) -> List.exists head_is_sort (Tast_util.flat_args a)
        | _ -> false)
      | Texp_let (_, vbs, body) ->
        List.exists
          (fun (vb : Typedtree.value_binding) ->
            vb.vb_expr == fold
            &&
            match vb.vb_pat.pat_desc with
            | Tpat_var (id, _) -> sorted_in_body ~stamp:(Ident.unique_name id) body
            | _ -> false)
          vbs
      | _ -> false)
    ancestors

let run (index : Index.t) =
  let findings = ref [] in
  List.iter
    (fun (source : Cmt_source.t) ->
      let ancestors = ref [] in
      let open Tast_iterator in
      let it =
        {
          default_iterator with
          expr =
            (fun self (e : Typedtree.expression) ->
              if is_listy_fold e && not (sanctioned ~fold:e !ancestors) then
                findings :=
                  Check_common.Finding.of_loc ~rule:rule_id ~key
                    ~msg:
                      (Printf.sprintf
                         "unordered escape (typed): Hashtbl.fold builds a value of \
                          type %s in bucket order; sort it before it escapes (e.g. \
                          |> List.sort cmp) or justify with [@analyze.allow \
                          unordered_t \"...\"]"
                         (Tast_util.type_to_string e.exp_type))
                    e.exp_loc
                  :: !findings;
              ancestors := e :: !ancestors;
              default_iterator.expr self e;
              ancestors := List.tl !ancestors);
        }
      in
      it.structure it source.str)
    index.sources;
  List.rev !findings

let rule : Arule.t =
  {
    id = rule_id;
    key;
    doc =
      "unordered escape (typed): a fully applied Hashtbl.fold whose result type \
       still contains list/array must flow through a sort before escaping";
    run;
  }
