(* A3 — alias-aware polymorphic comparison on domain types (typed).

   The syntactic R3 pins down shapes ([compare] by name, protected
   constants); it is blind to aliasing — [let eq = (=) in eq pid1 pid2]
   passes it.  Here we work on instantiated types instead: every
   occurrence of a structural-comparison function whose type at the use
   site mentions [Pid.t], [Sim_time.t], [Value.t] (or the derived
   [Pid.Set.t]/[Pid.Map.t]) is flagged, wherever the function came from —
   written directly, reached through a chain of let-aliases, through an
   eta-expansion ([let eq a b = a = b]), or instantiated inside a functor
   argument ([Hashtbl.Make (struct let equal = (=) ... end)] over pids).

   The alias set is computed as a fixpoint over the whole value index: a
   binding whose right-hand side is (a chain of aliases /
   eta-expansions of) a structural comparison joins the set, and its uses
   are then checked exactly like direct ones. *)

open Check_common

let rule_id = "A3"
let key = "polycmp_t"

let banned_np np =
  match np with
  | [ ("=" | "<>" | "==" | "!=" | "compare") ] -> true
  | [ "Hashtbl"; "hash" ] -> true
  | _ -> false

(* Protected type constructors, with the replacement to suggest. *)
let protected =
  [
    ([ "Pid"; "t" ], "Pid.equal/Pid.compare");
    ([ "Sim_time"; "t" ], "Sim_time.equal/Sim_time.compare");
    ([ "Value"; "t" ], "Value.equal/Value.compare");
    ([ "Pid"; "Set"; "t" ], "Pid.Set.equal/Pid.Set.compare");
    ([ "Pid"; "Map"; "t" ], "Pid.Map.equal/Pid.Map.compare");
  ]

let protected_hit ty =
  let hit = ref None in
  let pred np =
    match
      List.find_opt (fun (suffix, _) -> Tast_util.has_suffix ~suffix np) protected
    with
    | Some (suffix, repl) ->
      if !hit = None then hit := Some (String.concat "." suffix, repl);
      true
    | None -> false
  in
  if Tast_util.type_mentions ~pred ty then !hit else None

(* ------------------------------------------------------------------ *)
(* Alias fixpoint                                                     *)
(* ------------------------------------------------------------------ *)

type aliases = { stamps : (string, string) Hashtbl.t; paths : (string, string) Hashtbl.t }
(* value: the display name of the alias chain's origin, for messages. *)

let alias_of aliases (p : Path.t) =
  match p with
  | Pident id -> Hashtbl.find_opt aliases.stamps (Ident.unique_name id)
  | Pdot _ -> Hashtbl.find_opt aliases.paths (Tast_util.dotted (Tast_util.path_of p))
  | _ -> None

(* Is [e] (the RHS of a binding) a structural comparison, an alias of one,
   or an eta-expansion of one?  Returns the origin name. *)
let rec cmp_origin aliases (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) ->
    let np = Tast_util.path_of p in
    if banned_np np then Some (Tast_util.dotted np) else alias_of aliases p
  | Texp_function _ -> (
    let params, body = Tast_util.peel_functions e in
    let param_idents =
      List.filter_map
        (fun (p : Typedtree.pattern) ->
          match p.pat_desc with
          | Tpat_var (id, _) -> Some (Ident.unique_name id)
          | _ -> None)
        params
    in
    match body.exp_desc with
    | Texp_apply (f, args) ->
      let args = Tast_util.nolabel_args args in
      let all_params_forwarded =
        args <> []
        && List.for_all
             (fun (a : Typedtree.expression) ->
               match a.exp_desc with
               | Texp_ident (Pident id, _, _) ->
                 List.mem (Ident.unique_name id) param_idents
               | _ -> false)
             args
      in
      if all_params_forwarded then cmp_origin aliases f else None
    | _ -> None)
  | _ -> None

let build_aliases (index : Index.t) =
  let aliases = { stamps = Hashtbl.create 16; paths = Hashtbl.create 16 } in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (def : Index.def) ->
        match cmp_origin aliases def.expr with
        | None -> ()
        | Some origin ->
          let note tbl k =
            if Hashtbl.find_opt tbl k = None then begin
              Hashtbl.replace tbl k origin;
              changed := true
            end
          in
          note aliases.stamps def.stamp;
          (match def.gpath with Some p -> note aliases.paths p | None -> ()))
      index.all_defs
  done;
  aliases

(* ------------------------------------------------------------------ *)

let run (index : Index.t) =
  let aliases = build_aliases index in
  let findings = ref [] in
  List.iter
    (fun (source : Cmt_source.t) ->
      Tast_util.iter_structure_expressions
        (fun (e : Typedtree.expression) ->
          match e.exp_desc with
          | Texp_ident (p, _, _) -> (
            let np = Tast_util.path_of p in
            let origin =
              if banned_np np then Some (Tast_util.dotted np)
              else
                match alias_of aliases p with
                | Some o -> Some (Printf.sprintf "%s (alias of %s)" (Path.last p) o)
                | None -> None
            in
            match origin with
            | None -> ()
            | Some origin -> (
              match protected_hit e.exp_type with
              | None -> ()
              | Some (what, repl) ->
                findings :=
                  Check_common.Finding.of_loc ~rule:rule_id ~key
                    ~msg:
                      (Printf.sprintf
                         "structural %s instantiated at %s (type: %s); use %s"
                         origin what (Tast_util.type_to_string e.exp_type) repl)
                    e.exp_loc
                  :: !findings))
          | _ -> ())
        source.str)
    index.sources;
  List.rev !findings

let rule : Arule.t =
  {
    id = rule_id;
    key;
    doc =
      "polymorphic compare (typed, alias-aware): structural =/<>/compare/Hashtbl.hash \
       instantiated at Pid.t, Sim_time.t or Value.t — including through let-aliases \
       and eta-expansions";
    run;
  }
