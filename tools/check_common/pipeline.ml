(* The tail every pass's driver used to duplicate: drop rule findings
   that fall inside a matching suppression span, then merge with the
   pass's meta findings (parse/cmt failures, malformed or unknown-key
   allow attributes — which deliberately bypass suppression: a broken
   suppression must not be able to hide itself) and sort. *)

let finalize ~spans_for_file ~meta_findings rule_findings =
  let surviving =
    List.filter
      (fun (f : Finding.t) -> not (Allow_payload.covers (spans_for_file f.Finding.file) f))
      rule_findings
  in
  List.sort_uniq Finding.compare (meta_findings @ surviving)
