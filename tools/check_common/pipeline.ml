(* The tail every pass's driver used to duplicate: partition rule
   findings into survivors and span-suppressed, detect stale suppression
   spans, then merge survivors with the pass's meta findings (parse/cmt
   failures, malformed or unknown-key allow attributes — which
   deliberately bypass suppression: a broken suppression must not be able
   to hide itself) and sort.

   Staleness: a well-formed [@<pass>.allow <key> "reason"] span that
   covers no raw rule finding of that key and sanctions no checker
   boundary (a [used site] — e.g. an [@alloc.allow extern] the
   zero-allocation walk actually stopped at) suppresses nothing.  It is
   dead weight that silently widens the waiver surface, so it becomes a
   finding itself, under the cross-pass rule id [STALE].  Stale findings
   ride with the meta findings and cannot be suppressed. *)

type result = {
  survivors : Finding.t list;  (** Sorted; what fails the build. *)
  suppressed : Finding.t list;  (** Sorted; dropped by a span — JSON artifact only. *)
}

let stale_rule = "STALE"

let stale ~attr_name ~(suppressions : (string * Allow_payload.span list) list)
    ~(used_sites : (string * string * int) list) rule_findings =
  List.concat_map
    (fun (file, spans) ->
      let file_findings =
        List.filter (fun (f : Finding.t) -> String.equal f.Finding.file file) rule_findings
      in
      let file_used =
        List.filter_map
          (fun (f, key, offset) -> if String.equal f file then Some (key, offset) else None)
          used_sites
      in
      List.filter_map
        (fun (s : Allow_payload.span) ->
          let covers_finding =
            List.exists
              (fun (f : Finding.t) ->
                String.equal s.key f.key && s.left <= f.offset && f.offset <= s.right)
              file_findings
          in
          let covers_use =
            List.exists
              (fun (key, offset) ->
                String.equal s.key key && s.left <= offset && offset <= s.right)
              file_used
          in
          if covers_finding || covers_use then None
          else
            Some
              (Finding.of_loc ~rule:stale_rule ~key:s.key
                 ~msg:
                   (Printf.sprintf
                      "stale suppression: [@%s %s \"...\"] covers no %s finding and \
                       sanctions no checker boundary — it suppresses nothing; remove \
                       it (or fix the rule key)"
                      attr_name s.key s.key)
                 s.loc))
        spans)
    suppressions

let finalize ~attr_name ?(used_sites = [])
    ~(suppressions : (string * Allow_payload.span list) list) ~meta_findings
    rule_findings =
  let spans_for_file file =
    match List.assoc_opt file suppressions with Some spans -> spans | None -> []
  in
  let suppressed, surviving =
    List.partition
      (fun (f : Finding.t) -> Allow_payload.covers (spans_for_file f.Finding.file) f)
      rule_findings
  in
  let stale_findings = stale ~attr_name ~suppressions ~used_sites rule_findings in
  {
    survivors =
      List.sort_uniq Finding.compare (meta_findings @ stale_findings @ surviving);
    suppressed = List.sort_uniq Finding.compare suppressed;
  }
