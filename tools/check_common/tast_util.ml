(* Typedtree / compiler-libs helpers shared by the A-rules.

   Everything the rules match on goes through [path_of] /
   [normalize_name], which turn resolved [Path.t]s into normalised
   component lists: dune's module mangling is undone ("Sim__Engine" ->
   ["Sim"; "Engine"]) and a leading [Stdlib] is stripped, so
   [Stdlib.print_string] and [print_string], or a reference to
   [Exec.Pool.run] from any library, all look alike. *)

(* Split one path component on "__" (dune wrapping), leaving ordinary
   lowercase identifiers that happen to contain underscores alone. *)
let split_mangled comp =
  if comp = "" || not (comp.[0] >= 'A' && comp.[0] <= 'Z') then [ comp ]
  else begin
    let n = String.length comp in
    let parts = ref [] and start = ref 0 in
    let i = ref 0 in
    while !i < n - 1 do
      if comp.[!i] = '_' && comp.[!i + 1] = '_' then begin
        parts := String.sub comp !start (!i - !start) :: !parts;
        i := !i + 2;
        start := !i
      end
      else incr i
    done;
    parts := String.sub comp !start (n - !start) :: !parts;
    List.filter (fun p -> p <> "") (List.rev !parts)
  end

let normalize_name name =
  let comps = String.split_on_char '.' name |> List.concat_map split_mangled in
  match comps with "Stdlib" :: (_ :: _ as rest) -> rest | p -> p

let path_of (p : Path.t) = normalize_name (Path.name p)

let dotted p = String.concat "." p

let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t

let has_suffix ~suffix p =
  let lp = List.length p and ls = List.length suffix in
  lp >= ls && List.equal String.equal suffix (drop (lp - ls) p)

let starts_with ~prefix p =
  let lp = List.length p and lpre = List.length prefix in
  lp >= lpre
  && List.equal String.equal prefix
       (List.filteri (fun i _ -> i < lpre) p)

(* ------------------------------------------------------------------ *)
(* Types                                                              *)
(* ------------------------------------------------------------------ *)

(* Does the (instantiated) type mention a constructor whose normalised
   path satisfies [pred]?  This is what makes the A-rules alias-aware:
   however an offending function was reached (let-alias, eta-expansion,
   functor argument), its use site carries the instantiated type. *)
let type_mentions ~pred ty =
  let visited = Hashtbl.create 16 in
  let rec go ty =
    let id = Types.get_id ty in
    if Hashtbl.mem visited id then false
    else begin
      Hashtbl.add visited id ();
      match Types.get_desc ty with
      | Tconstr (p, args, _) -> pred (path_of p) || List.exists go args
      | Tarrow (_, a, b, _) -> go a || go b
      | Ttuple ts -> List.exists go ts
      | Tobject (t, _) -> go t
      | Tfield (_, _, t, rest) -> go t || go rest
      | Tpoly (t, ts) -> go t || List.exists go ts
      | Tvariant row ->
        List.exists
          (fun (_, f) ->
            match Types.row_field_repr f with
            | Types.Rpresent (Some t) -> go t
            | Types.Reither (_, ts, _) -> List.exists go ts
            | _ -> false)
          (Types.row_fields row)
        || go (Types.row_more row)
      | Tvar _ | Tunivar _ | Tnil | Tpackage _ -> false
      | Tlink t | Tsubst (t, _) -> go t
    end
  in
  go ty

let type_to_string ty = Format.asprintf "%a" Printtyp.type_expr ty

let is_arrow ty =
  match Types.get_desc ty with Tarrow _ -> true | Tpoly (t, _) -> (
    match Types.get_desc t with Tarrow _ -> true | _ -> false)
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Expressions                                                        *)
(* ------------------------------------------------------------------ *)

(* The resolved path in function position, seeing through nothing. *)
let head_path (e : Typedtree.expression) =
  match e.exp_desc with Texp_ident (p, _, _) -> Some (path_of p) | _ -> None

let apply_head (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_apply (f, _) -> head_path f
  | Texp_ident _ -> head_path e
  | _ -> None

(* The resolved path at the very head of a (possibly nested) application.
   The typechecker rewrites [x |> List.sort cmp] into the direct
   application [(List.sort cmp) x], whose function position is itself an
   apply — [deep_head] sees through that; [head_path] does not. *)
let rec deep_head (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> Some (path_of p)
  | Texp_apply (f, _) -> deep_head f
  | _ -> None

(* Positional (unlabelled) arguments that were actually supplied. *)
let nolabel_args args =
  List.filter_map
    (fun ((l : Asttypes.arg_label), (a : Typedtree.expression option)) ->
      match (l, a) with Asttypes.Nolabel, Some a -> Some a | _ -> None)
    args

let supplied_args args =
  List.filter_map (fun (_, (a : Typedtree.expression option)) -> a) args

(* All supplied arguments of a (possibly nested) application, innermost
   first — the companion of [deep_head]. *)
let rec flat_args (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_apply (f, args) -> flat_args f @ supplied_args args
  | _ -> []

(* Peel [fun p1 -> fun p2 -> body] down to ([p1; p2], body); stops at
   multi-case functions. *)
let rec peel_functions (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_function
      { cases = [ { c_lhs; c_guard = None; c_rhs; _ } ]; _ } ->
    let params, body = peel_functions c_rhs in
    (c_lhs :: params, body)
  | _ -> ([], e)

(* Run [f] on every sub-expression of [e], including [e] itself. *)
let iter_expressions f e =
  let open Tast_iterator in
  let it =
    {
      default_iterator with
      expr =
        (fun self x ->
          f x;
          default_iterator.expr self x);
    }
  in
  it.expr it e

(* Run [f] on every expression in a whole structure. *)
let iter_structure_expressions f (str : Typedtree.structure) =
  let open Tast_iterator in
  let it =
    {
      default_iterator with
      expr =
        (fun self x ->
          f x;
          default_iterator.expr self x);
    }
  in
  it.structure it str

(* Apply [f] to the direct sub-expressions of [e] only (no recursion). *)
let shallow_iter f e =
  let open Tast_iterator in
  let it = { default_iterator with expr = (fun _self x -> f x) } in
  default_iterator.expr it e

let expr_exists pred e =
  let found = ref false in
  iter_expressions (fun x -> if (not !found) && pred x then found := true) e;
  !found

(* Every identifier bound by a pattern anywhere in [e] (function
   parameters, lets, match cases), as [Ident.unique_name] keys. *)
let bound_idents e =
  let bound = Hashtbl.create 32 in
  let open Tast_iterator in
  let pat (type k) self (p : k Typedtree.general_pattern) =
    (match p.pat_desc with
    | Typedtree.Tpat_var (id, _) -> Hashtbl.replace bound (Ident.unique_name id) ()
    | Typedtree.Tpat_alias (_, id, _) -> Hashtbl.replace bound (Ident.unique_name id) ()
    | _ -> ());
    default_iterator.pat self p
  in
  let it = { default_iterator with pat } in
  it.expr it e;
  bound

let has_attr name (attrs : Parsetree.attributes) =
  List.exists (fun (a : Parsetree.attribute) -> String.equal a.attr_name.txt name) attrs
