(* The shared CLI epilogue: findings to stdout ("file:line: [RULE] msg"),
   optional machine-readable JSON side file for CI artifacts (an empty
   array on a clean pass), clean/failure note to stderr.  Returns the
   process exit code so all three passes (ecfd-lint, ecfd-analyze,
   ecfd-alloccheck) print, serialize and fail identically. *)

let write_json file findings =
  let oc = open_out file in
  output_string oc (Finding.list_to_json findings);
  close_out oc

let emit ~tool ?json ~clean_note findings =
  (match json with Some file -> write_json file findings | None -> ());
  List.iter (fun f -> print_endline (Finding.to_string f)) findings;
  match List.length findings with
  | 0 ->
    Printf.eprintf "%s: clean (%s)\n" tool clean_note;
    0
  | n ->
    Printf.eprintf "%s: %d finding(s)\n" tool n;
    1
