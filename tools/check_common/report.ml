(* The shared CLI epilogue: findings to stdout ("file:line: [RULE] msg"),
   optional machine-readable JSON side file for CI artifacts, clean/failure
   note to stderr.  Returns the process exit code so all four passes
   (ecfd-lint, ecfd-analyze, ecfd-alloccheck, ecfd-racecheck) print,
   serialize and fail identically.

   The JSON file is one array in the shape of
   docs/schemas/findings.schema.json: the surviving findings first
   ("suppressed": false — these made the exit code non-zero), then the
   findings a [@<pass>.allow] span silenced ("suppressed": true — visible
   to tooling, invisible to the build).  An empty array is a clean pass
   with no suppressions in play. *)

let write_json file ~suppressed findings =
  let oc = open_out file in
  output_string oc (Finding.list_to_json ~suppressed findings);
  close_out oc

let emit ~tool ?json ?(suppressed = []) ~clean_note findings =
  (match json with Some file -> write_json file ~suppressed findings | None -> ());
  List.iter (fun f -> print_endline (Finding.to_string f)) findings;
  match List.length findings with
  | 0 ->
    Printf.eprintf "%s: clean (%s)\n" tool clean_note;
    0
  | n ->
    Printf.eprintf "%s: %d finding(s)\n" tool n;
    1
