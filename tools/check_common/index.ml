(* The whole-program value index: every [let]-bound value in every loaded
   compilation unit, addressable two ways —

     - by identifier stamp ([Ident.unique_name]), which is how a
       [Texp_ident (Pident _)] reference inside the same unit finds its
       definition (module-level or deeply local, the stamp is exact);
     - by normalised dotted path ("Sim.Engine.set_timer"), which is how a
       cross-unit [Pdot] reference finds it.

   This is the substrate the interprocedural rules (A1 purity, A2
   exception-safety) build their reachability closures on. *)

type def = {
  display : string;  (** For messages: path, or ["name (file:line)"] for locals. *)
  gpath : string option;  (** Dotted path when module-level, e.g. ["Exec.Pool.run"]. *)
  stamp : string;  (** [Ident.unique_name] of the bound identifier. *)
  expr : Typedtree.expression;
  attrs : Parsetree.attributes;  (** Attributes on the value binding. *)
  loc : Location.t;
  source_file : string;
}

type t = {
  sources : Cmt_source.t list;
  by_stamp : (string, def) Hashtbl.t;
  by_path : (string, def) Hashtbl.t;
  all_defs : def list;  (** Deterministic order: source order, then tree order. *)
}

let def_key (d : def) = (d.source_file, d.loc.loc_start.pos_cnum)

let add t ~(source : Cmt_source.t) ~modpath ~toplevel id (vb : Typedtree.value_binding)
    acc =
  let name = Ident.name id in
  let loc = vb.vb_loc in
  let gpath =
    if toplevel then Some (String.concat "." (modpath @ [ name ])) else None
  in
  let display =
    match gpath with
    | Some p -> p
    | None ->
      Printf.sprintf "%s (%s:%d)" name loc.loc_start.pos_fname loc.loc_start.pos_lnum
  in
  let def =
    {
      display;
      gpath;
      stamp = Ident.unique_name id;
      expr = vb.vb_expr;
      attrs = vb.vb_attributes;
      loc;
      source_file = source.source_path;
    }
  in
  Hashtbl.replace t.by_stamp (Ident.unique_name id) def;
  (match gpath with Some p -> Hashtbl.replace t.by_path p def | None -> ());
  def :: acc

(* Local value bindings anywhere below an expression. *)
let collect_locals t ~source e acc =
  let acc = ref acc in
  let open Tast_iterator in
  let it =
    {
      default_iterator with
      value_binding =
        (fun self (vb : Typedtree.value_binding) ->
          (match vb.vb_pat.pat_desc with
          | Tpat_var (id, _) | Tpat_alias ({ pat_desc = Tpat_any; _ }, id, _) ->
            acc := add t ~source ~modpath:[] ~toplevel:false id vb !acc
          | _ -> ());
          default_iterator.value_binding self vb);
    }
  in
  it.expr it e;
  !acc

let rec collect_structure t ~source ~modpath (str : Typedtree.structure) acc =
  List.fold_left
    (fun acc (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
        let acc =
          List.fold_left
            (fun acc (vb : Typedtree.value_binding) ->
              match vb.vb_pat.pat_desc with
              | Tpat_var (id, _) | Tpat_alias ({ pat_desc = Tpat_any; _ }, id, _) ->
                add t ~source ~modpath ~toplevel:true id vb acc
              | _ -> acc)
            acc vbs
        in
        List.fold_left
          (fun acc (vb : Typedtree.value_binding) ->
            collect_locals t ~source vb.vb_expr acc)
          acc vbs
      | Tstr_module mb -> collect_module t ~source ~modpath acc mb
      | Tstr_recmodule mbs ->
        List.fold_left (collect_module t ~source ~modpath) acc mbs
      | Tstr_eval (e, _) -> collect_locals t ~source e acc
      | _ -> acc)
    acc str.str_items

and collect_module t ~source ~modpath acc (mb : Typedtree.module_binding) =
  let name = match mb.mb_name.txt with Some n -> n | None -> "_" in
  collect_module_expr t ~source ~modpath:(modpath @ [ name ]) acc mb.mb_expr

and collect_module_expr t ~source ~modpath acc (me : Typedtree.module_expr) =
  match me.mod_desc with
  | Tmod_structure str -> collect_structure t ~source ~modpath str acc
  | Tmod_constraint (me, _, _, _) -> collect_module_expr t ~source ~modpath acc me
  | _ -> acc

let build sources =
  let t =
    {
      sources;
      by_stamp = Hashtbl.create 512;
      by_path = Hashtbl.create 512;
      all_defs = [];
    }
  in
  let defs =
    List.fold_left
      (fun acc (source : Cmt_source.t) ->
        collect_structure t ~source ~modpath:source.modpath source.str acc)
      [] sources
  in
  { t with all_defs = List.rev defs }

(* Resolve a reference to its definition, if the program text defines it. *)
let resolve_stamp t s = Hashtbl.find_opt t.by_stamp s
let resolve_path t p = Hashtbl.find_opt t.by_path p
