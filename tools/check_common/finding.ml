(* A single static-analysis finding, shared by ecfd-lint (parsetree rules,
   R1..) and ecfd-analyze (typedtree rules, A1..).  [offset] is the
   absolute character offset of the flagged node's start — used only to
   match suppression spans, never printed. *)

type t = {
  file : string;
  line : int;
  col : int;
  offset : int;
  rule : string;  (** Rule id, e.g. ["R1"] or ["A1"]. *)
  key : string;  (** Suppression key, e.g. ["ambient"] or ["pure"]. *)
  msg : string;
  chain : string list;
      (** Interprocedural call chain from the analysis root to the site,
          outermost first; empty for local (single-site) rules.  The
          human-readable "via a -> b" rendering stays part of [msg]; this
          is the structured form for the JSON artifacts. *)
}

let of_loc ?(chain = []) ~rule ~key ~msg (loc : Location.t) =
  let p = loc.loc_start in
  {
    file = p.pos_fname;
    line = p.pos_lnum;
    col = p.pos_cnum - p.pos_bol;
    offset = p.pos_cnum;
    rule;
    key;
    msg;
    chain;
  }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.msg b.msg

let to_string f = Printf.sprintf "%s:%d: [%s] %s" f.file f.line f.rule f.msg

(* Machine-readable form for CI artifacts (the four *_findings.json).
   One serializer, one shape — docs/schemas/findings.schema.json — for
   every pass; [suppressed] distinguishes findings a [@<pass>.allow] span
   silenced from the survivors that fail the build. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json ?(suppressed = false) f =
  Printf.sprintf
    {|{"rule": "%s", "file": "%s", "line": %d, "col": %d, "key": "%s", "message": "%s", "chain": [%s], "suppressed": %b}|}
    (json_escape f.rule) (json_escape f.file) f.line f.col (json_escape f.key)
    (json_escape f.msg)
    (String.concat ", "
       (List.map (fun c -> Printf.sprintf "\"%s\"" (json_escape c)) f.chain))
    suppressed

let list_to_json ?(suppressed = []) fs =
  match (fs, suppressed) with
  | [], [] -> "[]\n"
  | fs, suppressed ->
    "[\n  "
    ^ String.concat ",\n  "
        (List.map (to_json ~suppressed:false) fs
        @ List.map (to_json ~suppressed:true) suppressed)
    ^ "\n]\n"
