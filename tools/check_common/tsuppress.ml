(* Per-site suppression collection for the typed passes:
   [@<pass>.allow <rule-key> "reason"] walked out of a .cmt typedtree.

   Shared by ecfd-analyze ([@analyze.allow], meta rule ANALYZE) and
   ecfd-alloccheck ([@alloc.allow], meta rule ALLOC); the lint collects
   the same grammar from parsetrees in tools/lint/suppress.ml.  Semantics
   are identical across passes: the attribute may sit on an expression or
   a value binding, or float at the top of a file ([@@@<pass>.allow ...]
   suppresses for the whole file); the reason string is mandatory; the
   rule key must name a registered rule; and a broken attribute is itself
   reported under the pass's meta rule.  Attributes survive typing
   unchanged, so the spans are collected from the typedtree of the .cmt —
   no reparse. *)

type t = {
  spans : Allow_payload.span list;
  findings : Finding.t list;
}

let collect ~attr_name ~meta_rule ~meta_key ~known_keys (src : Cmt_source.t) =
  let spans = ref [] and findings = ref [] in
  let note_attrs ~(span : Location.t) (attrs : Parsetree.attributes) =
    List.iter
      (fun (attr : Parsetree.attribute) ->
        match
          Allow_payload.classify ~attr_name ~meta_rule ~meta_key ~known_keys ~span attr
        with
        | None -> ()
        | Some (Ok span) -> spans := span :: !spans
        | Some (Error f) -> findings := f :: !findings)
      attrs
  in
  let open Tast_iterator in
  let it =
    {
      default_iterator with
      expr =
        (fun self (e : Typedtree.expression) ->
          note_attrs ~span:e.exp_loc e.exp_attributes;
          default_iterator.expr self e);
      value_binding =
        (fun self (vb : Typedtree.value_binding) ->
          note_attrs ~span:vb.vb_loc vb.vb_attributes;
          default_iterator.value_binding self vb);
      structure_item =
        (fun self (item : Typedtree.structure_item) ->
          (match item.str_desc with
          | Tstr_attribute attr ->
            note_attrs
              ~span:(Allow_payload.file_span src.Cmt_source.source_path)
              [ attr ]
          | Tstr_eval (_, attrs) -> note_attrs ~span:item.str_loc attrs
          | _ -> ());
          default_iterator.structure_item self item);
    }
  in
  it.structure it src.Cmt_source.str;
  { spans = !spans; findings = !findings }

let is_suppressed t (f : Finding.t) = Allow_payload.covers t.spans f
