(* The rule type shared by the typed whole-program passes (ecfd-analyze's
   A-rules, ecfd-alloccheck's Z-rules).  Every rule sees the full index
   (all loaded compilation units plus the value tables) and returns
   findings; suppression ([@<pass>.allow <key> "reason"]) and output
   formatting are applied by the shared driver (Cmt_driver). *)

type t = {
  id : string;  (** Printed in findings: [A1], [Z1], ... *)
  key : string;  (** Suppression key: [@<pass>.allow <key> "reason"]. *)
  doc : string;  (** One-line description for [--list-rules]. *)
  run : Index.t -> Finding.t list;
}
