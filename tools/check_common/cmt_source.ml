(* Loading the typed tree of one compilation unit from the .cmt file dune
   already produces (the [-bin-annot] output).  Locations inside a .cmt are
   relative to the build root ("lib/sim/engine.ml"), which is exactly what
   we want to print.  Shared by every typed pass (ecfd-analyze,
   ecfd-alloccheck). *)

(* The one place the .cmt search roots are defined: every typed pass
   (ecfd-analyze, ecfd-alloccheck) scans the same build trees by default,
   so extending coverage (tools/, test/) later is a one-line change here
   rather than a per-tool drift hazard. *)
let default_roots = [ "lib"; "bench" ]

type t = {
  cmt_path : string;  (** The .cmt we loaded. *)
  source_path : string;  (** The .ml it was compiled from, build-root-relative. *)
  modpath : string list;  (** Normalised module path, e.g. [["Sim"; "Engine"]]. *)
  str : Typedtree.structure;
}

(* [Ok None]: a valid .cmt that carries no implementation (packs, interfaces
   compiled with -bin-annot, partial trees from failed builds). *)
let load cmt_path =
  match Cmt_format.read_cmt cmt_path with
  | exception e -> Error (Printexc.to_string e)
  | infos -> (
    match infos.cmt_annots with
    | Implementation str ->
      let source_path =
        match infos.cmt_sourcefile with Some s -> s | None -> cmt_path
      in
      Ok
        (Some
           {
             cmt_path;
             source_path;
             modpath = Tast_util.split_mangled infos.cmt_modname;
             str;
           })
    | _ -> Ok None)

let normalise path =
  String.concat "/" (String.split_on_char Filename.dir_sep.[0] path)

(* Every .cmt below [path], sorted.  Unlike the lint's source walk this
   must descend into dot-directories: dune keeps .cmt files in
   [.<lib>.objs/byte/]. *)
let rec cmts_under path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun entry -> cmts_under (Filename.concat path entry))
  else if Filename.check_suffix path ".cmt" then [ normalise path ]
  else []

let discover roots = List.concat_map cmts_under roots |> List.sort_uniq String.compare
