(* The payload grammar of per-site suppression attributes, shared by
   [@lint.allow <key> "reason"] (ecfd-lint, parsetree spans) and
   [@analyze.allow <key> "reason"] (ecfd-analyze, typedtree spans).  Each
   pass walks its own tree to find the attributes; the payload shape, the
   mandatory-reason policy and the span-matching rule live here so the two
   suppression languages cannot drift apart. *)

type span = {
  key : string;
  left : int;
  right : int;
  loc : Location.t;  (** The attribute's own location — where a stale span is reported. *)
}

(* Payload forms accepted:
     [@<pass>.allow key "reason"]   -> Some (key, Some reason)
     [@<pass>.allow key]            -> Some (key, None)       (missing reason)
   anything else                    -> None                   (malformed)  *)
let parse (attr : Parsetree.attribute) =
  match attr.attr_payload with
  | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] -> (
    match e.pexp_desc with
    | Pexp_ident { txt = Lident key; _ } -> Some (key, None)
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Lident key; _ }; _ },
          [ (Nolabel, { pexp_desc = Pexp_constant (Pconst_string (reason, _, _)); _ }) ]
        ) ->
      Some (key, Some reason)
    | _ -> None)
  | _ -> None

(* Interpret one attribute named [attr_name] covering [span]: either a
   well-formed suppression span, or a finding (reported under [meta_rule],
   "LINT" / "ANALYZE" / "ALLOC") describing why the attribute itself is
   broken.  [known_keys] is the pass's registered rule keys: an allow
   naming any other key is rejected rather than silently ignored — a
   typoed key used to produce a span that could never match a finding,
   i.e. a suppression that suppressed nothing without telling anyone. *)
let classify ~attr_name ~meta_rule ~meta_key ~known_keys ~(span : Location.t)
    (attr : Parsetree.attribute) =
  if not (String.equal attr.attr_name.txt attr_name) then None
  else
    match parse attr with
    | Some (key, Some _) when not (List.mem key known_keys) ->
      Some
        (Error
           (Finding.of_loc ~rule:meta_rule ~key:meta_key
              ~msg:
                (Printf.sprintf
                   "[@%s %s]: unknown rule key %S (known: %s) — a suppression \
                    naming no registered rule suppresses nothing"
                   attr_name key key
                   (String.concat ", " (List.sort String.compare known_keys)))
              attr.attr_loc))
    | Some (key, Some reason) when String.trim reason <> "" ->
      Some
        (Ok
           {
             key;
             left = span.loc_start.pos_cnum;
             right = span.loc_end.pos_cnum;
             loc = attr.attr_loc;
           })
    | Some (key, _) ->
      Some
        (Error
           (Finding.of_loc ~rule:meta_rule ~key:meta_key
              ~msg:
                (Printf.sprintf
                   "[@%s %s] needs a non-empty reason string, e.g. [@%s %s \"why \
                    this site is safe\"]"
                   attr_name key attr_name key)
              attr.attr_loc))
    | None ->
      Some
        (Error
           (Finding.of_loc ~rule:meta_rule ~key:meta_key
              ~msg:
                (Printf.sprintf "malformed [@%s]: expected <rule-key> \"reason\""
                   attr_name)
              attr.attr_loc))

(* A whole-file span, for floating [@@@<pass>.allow ...] attributes. *)
let file_span path : Location.t =
  {
    loc_start = { pos_fname = path; pos_lnum = 1; pos_bol = 0; pos_cnum = 0 };
    loc_end = { pos_fname = path; pos_lnum = max_int; pos_bol = 0; pos_cnum = max_int };
    loc_ghost = false;
  }

let covers spans (f : Finding.t) =
  List.exists
    (fun s -> String.equal s.key f.key && s.left <= f.offset && f.offset <= s.right)
    spans
