(* The one driver for typed whole-program passes (.cmt discovery, loading,
   index construction, rule execution, suppression filtering), shared by
   ecfd-analyze and ecfd-alloccheck.  Each pass supplies only its
   suppression-attribute name, its meta rule ("ANALYZE" / "ALLOC") and its
   rule list; unreadable or implementation-less .cmt handling is explicit
   ([CMT] findings for the former) so a broken build input can never
   silently pass a checker. *)

let load roots =
  let cmts = Cmt_source.discover roots in
  List.fold_left
    (fun (sources, findings) cmt_path ->
      match Cmt_source.load cmt_path with
      | Ok (Some src) -> (src :: sources, findings)
      | Ok None -> (sources, findings) (* no implementation: packs, aliases *)
      | Error msg ->
        ( sources,
          {
            Finding.file = cmt_path;
            line = 1;
            col = 0;
            offset = 0;
            rule = "CMT";
            key = "cmt";
            msg = "unreadable .cmt: " ^ msg;
            chain = [];
          }
          :: findings ))
    ([], []) cmts
  |> fun (sources, findings) -> (List.rev sources, findings)

(* Run every rule of one pass over the .cmt files found below [roots].
   Returns the surviving findings (sorted), the span-suppressed findings
   (for the JSON artifact) and the unit count (so the CLIs can refuse to
   bless an empty scan).  [used_sites] lets a pass report suppression
   spans it honoured as boundaries rather than as finding filters (e.g.
   the zero-allocation walk stopping at an [@alloc.allow extern]) — those
   spans are not stale even though they cover no finding. *)
type result = {
  findings : Finding.t list;
  suppressed : Finding.t list;
  n_units : int;
}

let run ~attr_name ~meta_rule ~meta_key ?(used_sites = fun (_ : Index.t) -> [])
    ~(rules : Trule.t list) roots =
  let known_keys = List.map (fun (r : Trule.t) -> r.key) rules in
  let sources, load_findings = load roots in
  let index = Index.build sources in
  let suppressions =
    List.map
      (fun (s : Cmt_source.t) ->
        (s.source_path, Tsuppress.collect ~attr_name ~meta_rule ~meta_key ~known_keys s))
      sources
  in
  let meta_findings =
    load_findings
    @ List.concat_map (fun (_, (s : Tsuppress.t)) -> s.findings) suppressions
  in
  let rule_findings = List.concat_map (fun (r : Trule.t) -> r.run index) rules in
  let r =
    Pipeline.finalize ~attr_name ~used_sites:(used_sites index)
      ~suppressions:
        (List.map (fun (file, (s : Tsuppress.t)) -> (file, s.spans)) suppressions)
      ~meta_findings rule_findings
  in
  { findings = r.survivors; suppressed = r.suppressed; n_units = List.length sources }
