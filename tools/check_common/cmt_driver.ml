(* The one driver for typed whole-program passes (.cmt discovery, loading,
   index construction, rule execution, suppression filtering), shared by
   ecfd-analyze and ecfd-alloccheck.  Each pass supplies only its
   suppression-attribute name, its meta rule ("ANALYZE" / "ALLOC") and its
   rule list; unreadable or implementation-less .cmt handling is explicit
   ([CMT] findings for the former) so a broken build input can never
   silently pass a checker. *)

let load roots =
  let cmts = Cmt_source.discover roots in
  List.fold_left
    (fun (sources, findings) cmt_path ->
      match Cmt_source.load cmt_path with
      | Ok (Some src) -> (src :: sources, findings)
      | Ok None -> (sources, findings) (* no implementation: packs, aliases *)
      | Error msg ->
        ( sources,
          {
            Finding.file = cmt_path;
            line = 1;
            col = 0;
            offset = 0;
            rule = "CMT";
            key = "cmt";
            msg = "unreadable .cmt: " ^ msg;
          }
          :: findings ))
    ([], []) cmts
  |> fun (sources, findings) -> (List.rev sources, findings)

(* Run every rule of one pass over the .cmt files found below [roots].
   Returns the surviving findings, sorted, plus the unit count (so the
   CLIs can refuse to bless an empty scan). *)
let run ~attr_name ~meta_rule ~meta_key ~(rules : Trule.t list) roots =
  let known_keys = List.map (fun (r : Trule.t) -> r.key) rules in
  let sources, load_findings = load roots in
  let index = Index.build sources in
  let suppressions =
    List.map
      (fun (s : Cmt_source.t) ->
        (s.source_path, Tsuppress.collect ~attr_name ~meta_rule ~meta_key ~known_keys s))
      sources
  in
  let meta_findings =
    load_findings
    @ List.concat_map (fun (_, (s : Tsuppress.t)) -> s.findings) suppressions
  in
  let rule_findings = List.concat_map (fun (r : Trule.t) -> r.run index) rules in
  let spans_for_file file =
    match List.assoc_opt file suppressions with
    | Some (s : Tsuppress.t) -> s.spans
    | None -> []
  in
  ( Pipeline.finalize ~spans_for_file ~meta_findings rule_findings,
    List.length sources )
