(* Drift check between the two halves of the allocation discipline:

     - the static half: the set of [@alloc.zero] roots found in the
       scanned .cmt files (what this checker actually proves about);
     - the dynamic half: the "static_roots" list in
       bench/alloc_budget.json, next to the minor-words-per-event budget
       the e20 gate enforces at run time.

   If someone annotates a new hot-path root (or drops one) without
   updating the budget file — or edits the budget file without touching
   the code — the two halves no longer describe the same hot path, and
   CI should say so.  The comparison is on sorted dotted paths
   ("Sim.Engine.step"); only module-level roots have one, so a stray
   [@alloc.zero] on a local binding is reported as drift too. *)

(* Minimal extraction of the "static_roots" string array.  The budget
   file is machine-edited JSON with no escapes in the strings we own;
   bench/micro.ml reads its numeric fields with the same literal-key
   scanning approach. *)
let static_roots_of_string s =
  let find_from i sub =
    let n = String.length s and m = String.length sub in
    let rec go i =
      if i + m > n then None
      else if String.sub s i m = sub then Some (i + m)
      else go (i + 1)
    in
    go i
  in
  match find_from 0 "\"static_roots\"" with
  | None -> Error "no \"static_roots\" key"
  | Some i -> (
    match String.index_from_opt s i '[' with
    | None -> Error "\"static_roots\" is not followed by an array"
    | Some open_bracket ->
      let rec strings i acc =
        if i >= String.length s then Error "unterminated \"static_roots\" array"
        else
          match s.[i] with
          | ']' -> Ok (List.rev acc)
          | '"' -> (
            match String.index_from_opt s (i + 1) '"' with
            | None -> Error "unterminated string in \"static_roots\""
            | Some close ->
              strings (close + 1) (String.sub s (i + 1) (close - i - 1) :: acc))
          | _ -> strings (i + 1) acc
      in
      strings (open_bracket + 1) [])

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Compare and report.  Returns the error lines (empty = in sync). *)
let check ~budget_file roots =
  match static_roots_of_string (read_file budget_file) with
  | Error msg -> [ Printf.sprintf "%s: %s" budget_file msg ]
  | Ok declared ->
    let sources, _ = Check_common.Cmt_driver.load roots in
    let index = Check_common.Index.build sources in
    let discovered, local =
      List.partition_map
        (fun (d : Check_common.Index.def) ->
          match d.gpath with Some p -> Left p | None -> Right d.display)
        (Walk.roots index)
    in
    let declared = List.sort_uniq String.compare declared in
    let discovered = List.sort_uniq String.compare discovered in
    let missing_in_json =
      List.filter (fun r -> not (List.mem r declared)) discovered
    in
    let missing_in_code =
      List.filter (fun r -> not (List.mem r discovered)) declared
    in
    List.map
      (fun d ->
        Printf.sprintf
          "[@alloc.zero] on local binding %s — only module-level roots can be \
           tracked in %s"
          d budget_file)
      local
    @ List.map
        (fun r ->
          Printf.sprintf
            "[@alloc.zero] root %s is not listed in %s \"static_roots\" — add it \
             so the static and dynamic allocation gates cover the same hot path"
            r budget_file)
        missing_in_json
    @ List.map
        (fun r ->
          Printf.sprintf
            "%s \"static_roots\" lists %s but no such [@alloc.zero] annotation \
             exists below %s — remove it or restore the annotation"
            budget_file r (String.concat " " roots))
        missing_in_code
