(* The Z-rule registry's type: the shared typed-pass rule record
   (Check_common.Trule), exactly as tools/analyze/arule.ml aliases it for
   the A-rules.  Suppression ([@alloc.allow <key> "reason"]) and output
   formatting are applied by the shared driver. *)

type t = Check_common.Trule.t = {
  id : string;  (** Printed in findings: [Z1], [Z2], ... *)
  key : string;  (** Suppression key: [@alloc.allow <key> "reason"]. *)
  doc : string;  (** One-line description for [--list-rules]. *)
  run : Check_common.Index.t -> Check_common.Finding.t list;
}
