(* The interprocedural zero-allocation walk shared by Z1-Z4.

   Roots are the value bindings annotated [@alloc.zero] (the engine hot
   path: Engine.step's merge loop, the periodic re-arm, the timer-wheel
   cascade, the heap sifts).  From each root the walker descends into
   every project-defined callee it can resolve through the index — by
   stamp within a unit, by normalised dotted path across units, exactly
   like A1/A2 — and classifies each expression it passes:

     Z1 closure   a [fun]/[function] built inside a body (a let-bound
                  local function included: hoist it, as heap.ml did), or
                  a partial application, both of which box a closure;
     Z2 boxed     a constructor with arguments, tuple, record, variant
                  payload, lazy thunk, [ref] cell or boxed float;
     Z3 bulk      array/string/bytes/list/buffer/format construction;
     Z4 extern    a call the checker cannot see through — an external
                  not in the curated table (alloc_tables.ml), or a call
                  through a statically-unknown function value such as a
                  record field or a callback parameter.

   Two escape hatches, both deliberate and both audited:
     - a def already annotated [@alloc.zero] is not re-descended from
       another root (it is checked as a root in its own right);
     - an expression carrying [@alloc.allow extern "reason"] is a trusted
       boundary: the walker does not enter it at all.  This is how the
       engine marks the aperiodic dispatch leg and the timer callbacks,
       whose allocation behaviour belongs to the registering component
       (and is watched dynamically by the e20 allocation gate).
   Other [@alloc.allow] keys only suppress findings (shared driver); they
   do not stop the descent, so a [bulk] waiver on a growth helper still
   lets the walker flag a stray closure inside it.

   Deliberate aborts (raise/failwith/invalid_arg/assert) are exempt: the
   zero-allocation contract covers the live path, not the crash. *)

open Check_common

let zero_attr = "alloc.zero"
let allow_attr = "alloc.allow"

(* An [@alloc.allow extern "..."] directly on the expression: trusted
   boundary, no descent.  Malformed payloads are ignored here — the
   shared suppression collector already reports them under ALLOC. *)
let is_boundary (attrs : Parsetree.attributes) =
  List.exists
    (fun (a : Parsetree.attribute) ->
      String.equal a.attr_name.txt allow_attr
      &&
      match Allow_payload.parse a with
      | Some ("extern", Some _) -> true
      | _ -> false)
    attrs

let roots (index : Index.t) =
  List.filter
    (fun (d : Index.def) -> Tast_util.has_attr zero_attr d.attrs)
    index.all_defs

type ctx = {
  index : Index.t;
  root : Index.def;
  visited : (string * int, unit) Hashtbl.t;  (* per root: def_key *)
  emitted : (string * int * string, unit) Hashtbl.t;  (* global: file, offset, rule *)
  findings : Finding.t list ref;
  boundaries : (string * string * int) list ref;
      (* [@alloc.allow extern] sites the walk actually stopped at:
         (file, key, offset) — reported to the stale-suppression pass as
         honoured spans, since a boundary produces no finding to cover. *)
}

let flag ctx ~chain ~rule ~key loc what =
  let start = loc.Location.loc_start in
  let fkey = (start.pos_fname, start.pos_cnum, rule) in
  if not (Hashtbl.mem ctx.emitted fkey) then begin
    Hashtbl.add ctx.emitted fkey ();
    let via =
      match chain with
      | [] -> ""
      | chain -> Printf.sprintf " via %s" (String.concat " -> " chain)
    in
    ctx.findings :=
      Finding.of_loc ~chain:(ctx.root.display :: chain) ~rule ~key
        ~msg:
          (Printf.sprintf
             "%s — on the zero-allocation path from [@alloc.zero] %s%s; remove the \
              allocation (HACKING.md \"Allocation discipline\") or justify with \
              [@alloc.allow %s \"...\"]"
             what ctx.root.display via key)
        loc
      :: !(ctx.findings)
  end

(* Skim the leading [fun]/[function] layers of a definition: they are the
   def's parameters, not closures built on the caller's path.  Guards are
   part of the executed body. *)
let rec bodies (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_function { cases; _ } ->
    List.concat_map
      (fun (c : Typedtree.value Typedtree.case) ->
        (match c.c_guard with Some g -> [ g ] | None -> []) @ bodies c.c_rhs)
      cases
  | _ -> [ e ]

let rec visit_def ctx ~chain (def : Index.def) =
  let k = Index.def_key def in
  if not (Hashtbl.mem ctx.visited k) then begin
    Hashtbl.add ctx.visited k ();
    match def.expr.exp_desc with
    | Texp_ident (p, _, _) ->
      (* Bare alias ([let equal = Int.equal]): behaves exactly like a
         call to the aliased function. *)
      call ctx ~chain ~site:def.expr ~n_args:0 ~fn_type:def.expr.exp_type p []
    | _ -> List.iter (walk ctx ~chain) (bodies def.expr)
  end

and walk ctx ~chain (e : Typedtree.expression) =
  if is_boundary e.exp_attributes then
    ctx.boundaries :=
      ( e.exp_loc.loc_start.pos_fname,
        "extern",
        e.exp_loc.loc_start.pos_cnum )
      :: !(ctx.boundaries)
  else
    match e.exp_desc with
    | Texp_ident _ | Texp_constant _ -> ()
    | Texp_function _ ->
      (* The closure is the allocation; its body runs (and is checked)
         wherever it is actually called. *)
      flag ctx ~chain ~rule:"Z1" ~key:"closure" e.exp_loc
        "closure allocation (fun/function, or a let-bound local function — hoist it \
         to module level)"
    | Texp_apply (f, args0) -> (
      let args = Tast_util.supplied_args args0 in
      match f.exp_desc with
      | Texp_ident (p, _, _) ->
        call ctx ~chain ~site:e ~n_args:(List.length args0) ~fn_type:f.exp_type p args
      | Texp_apply _ ->
        (* Calling the result of another application: the inner apply is
           classified on its own (a partial application flags Z1). *)
        walk ctx ~chain f;
        List.iter (walk ctx ~chain) args
      | _ ->
        flag ctx ~chain ~rule:"Z4" ~key:"extern" e.exp_loc
          "call through a statically-unknown function value";
        walk ctx ~chain f;
        List.iter (walk ctx ~chain) args)
    | Texp_construct (_, cdesc, args) ->
      if cdesc.cstr_arity > 0 then
        flag ctx ~chain ~rule:"Z2" ~key:"boxed" e.exp_loc
          (Printf.sprintf "%s constructor allocation" cdesc.cstr_name);
      List.iter (walk ctx ~chain) args
    | Texp_tuple _ ->
      flag ctx ~chain ~rule:"Z2" ~key:"boxed" e.exp_loc "tuple allocation";
      Tast_util.shallow_iter (walk ctx ~chain) e
    | Texp_record _ ->
      flag ctx ~chain ~rule:"Z2" ~key:"boxed" e.exp_loc "record allocation";
      Tast_util.shallow_iter (walk ctx ~chain) e
    | Texp_variant (_, Some _) ->
      flag ctx ~chain ~rule:"Z2" ~key:"boxed" e.exp_loc
        "polymorphic variant payload allocation";
      Tast_util.shallow_iter (walk ctx ~chain) e
    | Texp_variant (_, None) -> ()
    | Texp_lazy _ ->
      flag ctx ~chain ~rule:"Z2" ~key:"boxed" e.exp_loc "lazy thunk allocation"
    | Texp_array _ ->
      flag ctx ~chain ~rule:"Z3" ~key:"bulk" e.exp_loc "array literal allocation";
      Tast_util.shallow_iter (walk ctx ~chain) e
    | Texp_assert _ -> () (* deliberate abort: exempt, like raise *)
    | _ -> Tast_util.shallow_iter (walk ctx ~chain) e

and call ctx ~chain ~(site : Typedtree.expression) ~n_args ~fn_type (p : Path.t) args =
  (* Partial application: fewer arguments at the site than the callee
     takes.  For a project def the definition's own [fun] layers give the
     arity exactly.  For an external only the instantiated type is
     available, and it cannot tell a parameter arrow from a result arrow
     — [Array.get cbs i] on a callback table types like a 3-ary partial
     application — so the type-based test is applied only to externals
     outside the Safe table (which, being flagged anyway, cost nothing
     extra when the heuristic misfires). *)
  let rec syn_arity (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_function { cases = { c_rhs; _ } :: _; _ } -> 1 + syn_arity c_rhs
    | _ -> 0
  in
  let rec ty_arity ty =
    match Types.get_desc ty with
    | Tarrow (_, _, rest, _) -> 1 + ty_arity rest
    | Tpoly (ty, _) -> ty_arity ty
    | _ -> 0
  in
  let partial_app arity =
    if n_args > 0 && n_args < arity then
      flag ctx ~chain ~rule:"Z1" ~key:"closure" site.exp_loc
        "partial application allocates a closure"
  in
  let resolved =
    match p with
    | Path.Pident id -> Index.resolve_stamp ctx.index (Ident.unique_name id)
    | Path.Pdot _ -> Index.resolve_path ctx.index (Tast_util.dotted (Tast_util.path_of p))
    | _ -> None
  in
  match resolved with
  | Some def ->
    partial_app (syn_arity def.expr);
    List.iter (walk ctx ~chain) args;
    (* A callee that is itself [@alloc.zero] is a root of its own: it is
       checked independently, so the descent stops here. *)
    if not (Tast_util.has_attr zero_attr def.attrs) then
      visit_def ctx ~chain:(chain @ [ def.display ]) def
  | None -> (
    let np = Tast_util.path_of p in
    match Alloc_tables.classify np with
    | Abort -> () (* the crash path is exempt; the exn payload is not traversed *)
    | Safe -> List.iter (walk ctx ~chain) args
    | Alloc (rule, key, what) ->
      partial_app (ty_arity fn_type);
      flag ctx ~chain ~rule ~key site.exp_loc
        (Printf.sprintf "%s (%s)" what (Tast_util.dotted np));
      List.iter (walk ctx ~chain) args
    | Unknown ->
      partial_app (ty_arity fn_type);
      flag ctx ~chain ~rule:"Z4" ~key:"extern" site.exp_loc
        (Printf.sprintf "call to %s, which is not known to be allocation-free"
           (Tast_util.dotted np));
      List.iter (walk ctx ~chain) args)

let compute (index : Index.t) =
  let emitted = Hashtbl.create 64 in
  let findings = ref [] in
  let bounds = ref [] in
  List.iter
    (fun root ->
      let ctx =
        { index; root; visited = Hashtbl.create 64; emitted; findings;
          boundaries = bounds }
      in
      visit_def ctx ~chain:[] root)
    (roots index);
  (List.rev !findings, List.rev !bounds)

(* The four Z-rules filter one shared walk; cache it per index so the
   registry does not redo the traversal four times. *)
let cache : (Index.t * (Finding.t list * (string * string * int) list)) option ref =
  ref None

let walk_results index =
  match !cache with
  | Some (cached_index, r) when cached_index == index -> r
  | _ ->
    let r = compute index in
    cache := Some (index, r);
    r

let findings index = fst (walk_results index)

(* Honoured [@alloc.allow extern] boundary sites, for the stale-
   suppression pass. *)
let boundaries index = snd (walk_results index)
