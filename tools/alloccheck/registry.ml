(* The Z-rule registry — the one place a new allocation rule is added
   (mirrors tools/analyze/registry.ml for the A-rules).  All four rules
   are facets of the single interprocedural walk in walk.ml; each selects
   its own findings so they can be listed, keyed and suppressed
   independently. *)

let z id key doc : Zrule.t =
  {
    id;
    key;
    doc;
    run =
      (fun index ->
        List.filter
          (fun (f : Check_common.Finding.t) -> String.equal f.rule id)
          (Walk.findings index));
  }

let all : Zrule.t list =
  [
    z "Z1" "closure"
      "closure or partial application on a zero-alloc path (hoist local functions \
       to module level; apply fully)";
    z "Z2" "boxed"
      "boxed value on a zero-alloc path: constructor with arguments, tuple, \
       record, variant payload, ref cell, lazy thunk, boxed float";
    z "Z3" "bulk"
      "bulk allocation on a zero-alloc path: array/string/bytes/list/buffer/format \
       construction";
    z "Z4" "extern"
      "call the checker cannot see through: an unclassified external, or a \
       statically-unknown function value (field, callback parameter)";
  ]
