(* Allocation behaviour of external (non-project) functions, by normalised
   path.  The walker (walk.ml) resolves project-defined callees through
   the index and descends into them; everything else lands here.

   [Safe] is the word-sized core the engine hot path is allowed to lean
   on: integer arithmetic and comparison, in-place array/bytes access, and
   the few stdlib entry points that neither box nor build.  [Abort] marks
   deliberate whole-run aborts (raise/failwith/invalid_arg and friends):
   the abort path is exempt from the zero-allocation contract, and its
   argument — typically an exception constructor application — is not
   traversed.  [Alloc] is the curated table of definite allocators, each
   carrying the Z-rule it falls under and a message fragment.  Anything
   unlisted is [Unknown] and reported as Z4: the checker refuses to bless
   a call it cannot see through. *)

type verdict =
  | Safe
  | Abort
  | Alloc of string * string * string  (* rule id, suppression key, what *)
  | Unknown

let z2 what = Alloc ("Z2", "boxed", what)
let z3 what = Alloc ("Z3", "bulk", what)

let classify np =
  match np with
  (* -- word-sized operations: no allocation ------------------------- *)
  | [ ( "+" | "-" | "*" | "/" | "mod" | "land" | "lor" | "lxor" | "lsl" | "lsr"
      | "asr" | "lnot" | "succ" | "pred" | "abs" | "max_int" | "min_int" | "not" | "&&"
      | "&" | "||" | "or" | "=" | "<>" | "==" | "!=" | "<" | ">" | "<=" | ">="
      | "compare" | "min" | "max" | "ignore" | "!" | ":=" | "incr" | "decr"
      | "~-" | "~+" | "fst" | "snd" | "int_of_char" | "char_of_int"
      | "int_of_float" | "truncate" ) ] ->
    Safe
  | [ "Int";
      ( "equal" | "compare" | "max" | "min" | "abs" | "add" | "sub" | "mul"
      | "div" | "rem" | "succ" | "pred" | "neg" | "logand" | "logor" | "logxor"
      | "lognot" | "shift_left" | "shift_right" | "shift_right_logical" | "zero"
      | "one" | "minus_one" ) ] ->
    Safe
  | [ "Bool"; ("equal" | "compare" | "not") ] -> Safe
  | [ "Char"; ("code" | "chr" | "equal" | "compare" | "lowercase_ascii" | "uppercase_ascii") ]
    ->
    Safe
  | [ "Float"; ("to_int" | "compare" | "equal" | "is_nan" | "is_integer" | "sign_bit") ]
    ->
    Safe
  | [ "Array"; ("get" | "set" | "unsafe_get" | "unsafe_set" | "length" | "blit" | "fill") ]
    ->
    Safe
  | [ "Bytes";
      ( "get" | "set" | "unsafe_get" | "unsafe_set" | "length" | "blit" | "fill"
      | "unsafe_blit" | "unsafe_fill" ) ] ->
    Safe
  | [ "String"; ("length" | "get" | "unsafe_get" | "equal" | "compare") ] -> Safe
  | [ "Hashtbl"; ("mem" | "length" | "find" | "hash") ] -> Safe
  | [ "List"; ("length" | "hd" | "tl" | "mem" | "memq" | "is_empty" | "nth") ] -> Safe
  | [ "Option"; ("is_some" | "is_none" | "value" | "get" | "equal" | "compare") ] -> Safe
  | [ "Buffer"; ("length" | "clear" | "reset") ] -> Safe
  | [ ("Queue" | "Stack"); ("is_empty" | "length" | "clear") ] -> Safe
  | [ "Sys"; "opaque_identity" ] -> Safe
  (* -- deliberate aborts: exempt, arguments not traversed ------------ *)
  | [ ("raise" | "raise_notrace" | "failwith" | "invalid_arg" | "exit") ] -> Abort
  | [ "Printexc"; "raise_with_backtrace" ] -> Abort
  (* -- definite allocators, with the rule they fall under ------------ *)
  | [ "ref" ] -> z2 "ref-cell allocation"
  | [ ( "+." | "-." | "*." | "/." | "**" | "sqrt" | "exp" | "log" | "log10"
      | "sin" | "cos" | "tan" | "asin" | "acos" | "atan" | "atan2" | "ceil"
      | "floor" | "abs_float" | "mod_float" | "float_of_int" | "float"
      | "float_of_string" | "~-." ) ] ->
    z2 "boxed float result"
  | "Float" :: _ -> z2 "boxed float result"
  | [ "Lazy"; "force" ] -> z2 "forcing a lazy value may run and allocate its thunk"
  | [ "Hashtbl"; "find_opt" ] -> z2 "option allocation"
  | "Option" :: _ -> z2 "option allocation"
  | [ "^" ] | [ "String"; ("make" | "init" | "sub" | "concat" | "cat" | "map" | "mapi"
                          | "split_on_char" | "trim" | "escaped" | "uppercase_ascii"
                          | "lowercase_ascii" | "capitalize_ascii" | "of_bytes"
                          | "to_bytes" | "blit") ]
  | [ ("string_of_int" | "string_of_float" | "string_of_bool") ]
  | [ "Int"; "to_string" ] ->
    z3 "string allocation"
  | [ "Array";
      ( "make" | "create_float" | "init" | "make_matrix" | "copy" | "append"
      | "concat" | "sub" | "of_list" | "to_list" | "of_seq" | "to_seq" | "map"
      | "mapi" | "stable_sort" ) ] ->
    z3 "array allocation"
  | [ "Bytes"; ("create" | "make" | "init" | "copy" | "sub" | "extend" | "cat"
               | "of_string" | "to_string" | "sub_string") ] ->
    z3 "bytes allocation"
  | [ "@" ]
  | [ "List";
      ( "rev" | "map" | "mapi" | "rev_map" | "append" | "concat" | "flatten"
      | "init" | "filter" | "filter_map" | "partition" | "sort" | "sort_uniq"
      | "stable_sort" | "fast_sort" | "split" | "combine" | "cons" | "concat_map"
      | "of_seq" | "to_seq" ) ] ->
    z3 "list allocation"
  | [ "Hashtbl"; ("create" | "add" | "replace" | "copy" | "of_seq" | "to_seq"
                 | "reset") ] ->
    z3 "hash-table allocation"
  | "Buffer" :: _ -> z3 "buffer allocation"
  | [ ("Queue" | "Stack"); _ ] -> z3 "container node allocation"
  | ("Printf" | "Format" | "Scanf" | "Fmt") :: _ -> z3 "formatting allocates"
  | _ -> Unknown
