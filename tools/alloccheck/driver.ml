(* ecfd-alloccheck's driver is the shared typed-pass driver
   (Check_common.Cmt_driver) instantiated with the Z-rule registry and the
   [@alloc.allow] suppression grammar — the same plumbing ecfd-analyze
   runs on, from the same tools/check_common. *)

let run roots =
  Check_common.Cmt_driver.run ~attr_name:"alloc.allow" ~meta_rule:"ALLOC"
    ~meta_key:"alloc" ~used_sites:Walk.boundaries ~rules:Registry.all roots
