(* ecfd-alloccheck: the interprocedural zero-allocation checker for the
   engine hot path.  The e20 harness measures minor words per event at
   run time (bench/alloc_budget.json); this pass proves the complement
   statically: starting from every value binding annotated [@alloc.zero]
   it walks the call graph through the .cmt files dune already produced
   and flags every reachable allocation site — closures and partial
   applications (Z1), boxed values (Z2), bulk array/string/list
   construction (Z3), and calls it cannot see through (Z4) — each with
   the call chain that reaches it.

     ecfd_alloccheck [--list-rules] [--json FILE] [--check-roots BUDGET] [DIR ...]

   Scans every .cmt below the given directories (default: lib bench, like
   ecfd-analyze), prints findings as "file:line: [RULE] message" and exits
   non-zero if there are any.  With [--json FILE] the findings are also
   written as a JSON array for CI artifacts.  With [--check-roots BUDGET]
   the discovered [@alloc.zero] roots are additionally compared against
   the "static_roots" list in the given alloc-budget JSON, so the static
   and dynamic allocation gates cannot silently drift apart.  See
   HACKING.md, "Allocation discipline (Z-rules)". *)

open Alloccheck_core

let usage () =
  prerr_endline
    "usage: ecfd_alloccheck [--list-rules] [--json FILE] [--check-roots BUDGET] \
     [DIR ...]   (default dirs: lib bench)";
  exit 2

let list_rules () =
  List.iter
    (fun (r : Zrule.t) -> Printf.printf "%-4s %-12s %s\n" r.id r.key r.doc)
    Registry.all;
  print_string
    "ALLOC alloc       a [@alloc.allow] attribute itself is malformed, lacks a \
     reason, or names an unknown rule key\n\
     CMT  cmt          a .cmt file below the scanned roots could not be read\n"

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if List.mem "--help" args || List.mem "-h" args then usage ();
  if List.mem "--list-rules" args then begin
    list_rules ();
    exit 0
  end;
  let json_file = ref None in
  let budget_file = ref None in
  let rec parse acc = function
    | [] -> List.rev acc
    | "--json" :: file :: rest ->
      json_file := Some file;
      parse acc rest
    | "--check-roots" :: file :: rest ->
      budget_file := Some file;
      parse acc rest
    | ("--json" | "--check-roots") :: [] -> usage ()
    | a :: rest ->
      if String.length a > 0 && a.[0] = '-' then usage ();
      parse (a :: acc) rest
  in
  let roots =
    match parse [] args with
    | [] -> Check_common.Cmt_source.default_roots
    | roots -> roots
  in
  List.iter
    (fun r ->
      if not (Sys.file_exists r) then begin
        Printf.eprintf "ecfd-alloccheck: no such file or directory: %s\n" r;
        exit 2
      end)
    roots;
  let r = Driver.run roots in
  if r.Check_common.Cmt_driver.n_units = 0 then begin
    Printf.eprintf
      "ecfd-alloccheck: no .cmt files below %s — build first (dune build @all)\n"
      (String.concat " " roots);
    exit 2
  end;
  let drift =
    match !budget_file with
    | None -> []
    | Some budget_file -> Roots_check.check ~budget_file roots
  in
  List.iter (fun line -> Printf.eprintf "ecfd-alloccheck: %s\n" line) drift;
  let code =
    Check_common.Report.emit ~tool:"ecfd-alloccheck" ?json:!json_file
      ~suppressed:r.Check_common.Cmt_driver.suppressed
      ~clean_note:
        (Printf.sprintf "%d rule(s) over %d unit(s) below %s"
           (List.length Registry.all) r.Check_common.Cmt_driver.n_units
           (String.concat " " roots))
      r.Check_common.Cmt_driver.findings
  in
  exit (if drift <> [] then 1 else code)
