(* QoS rollups over an exported JSONL trace.

   Re-parses the lines with Json_min rather than going through
   Trace_file.event, because the typed event drops the fd_view payload
   (suspected list, trusted) the QoS fold needs.  One scenario is
   emitted per failure-detector component found in the trace (name
   order), or just the one selected with ?component; n and the horizon
   default to what the trace itself shows (max pid + 1, last event
   time).  The fold and the JSON renderer are the same code `ecfd qos`
   and bench e22 use (Obs.Qos / Obs.Rollup), so a rollup over an
   exported trace is byte-identical to the in-process rollup of the
   run that exported it, given the same n and horizon. *)

type raw =
  | R_crash of { at : int; pid : int }
  | R_view of {
      at : int;
      observer : int;
      component : string;
      suspected : int list;
      trusted : int option;
    }
  | R_other

exception Bad of string

let parse_line ~lineno line =
  let fail msg = raise (Bad (Printf.sprintf "line %d: %s" lineno msg)) in
  let j = try Json_min.parse line with Json_min.Parse_error m -> fail m in
  let at = Json_min.int_field j "at" ~default:0 in
  match Option.bind (Json_min.member "type" j) Json_min.to_string with
  | None -> fail "missing \"type\""
  | Some "crash" -> (R_crash { at; pid = Json_min.int_field j "pid" ~default:0 }, at, Json_min.int_field j "pid" ~default:0)
  | Some "fd_view" ->
    let observer = Json_min.int_field j "pid" ~default:0 in
    let suspected =
      match Json_min.member "suspected" j with
      | Some (Json_min.List vs) -> List.filter_map Json_min.to_int vs
      | _ -> []
    in
    let trusted = Option.bind (Json_min.member "trusted" j) Json_min.to_int in
    let component = Json_min.string_field j "component" ~default:"" in
    let max_pid =
      List.fold_left Stdlib.max
        (match trusted with Some t -> Stdlib.max observer t | None -> observer)
        suspected
    in
    (R_view { at; observer; component; suspected; trusted }, at, max_pid)
  | Some _ ->
    let max_pid =
      List.fold_left
        (fun acc k -> Stdlib.max acc (Json_min.int_field j k ~default:(-1)))
        (-1) [ "pid"; "src"; "dst" ]
    in
    (R_other, at, max_pid)

let of_lines ?n ?horizon ?component lines =
  let raws, max_at, max_pid =
    let _, raws, max_at, max_pid =
      List.fold_left
        (fun (lineno, raws, max_at, max_pid) line ->
          if String.trim line = "" then (lineno + 1, raws, max_at, max_pid)
          else begin
            let raw, at, pid = parse_line ~lineno line in
            (lineno + 1, raw :: raws, Stdlib.max max_at at, Stdlib.max max_pid pid)
          end)
        (1, [], 0, -1) lines
    in
    (List.rev raws, max_at, max_pid)
  in
  let n = Stdlib.max 1 (match n with Some n -> n | None -> max_pid + 1) in
  let horizon = match horizon with Some h -> h | None -> max_at in
  let components =
    match component with
    | Some c -> [ c ]
    | None ->
      let seen = Hashtbl.create 8 in
      List.iter
        (function
          | R_view { component; _ } when component <> "" ->
            if not (Hashtbl.mem seen component) then Hashtbl.add seen component ()
          | _ -> ())
        raws;
      List.sort String.compare (Hashtbl.fold (fun c () acc -> c :: acc) seen [])
  in
  let scenarios =
    List.map
      (fun c ->
        let fold = Obs.Qos.create ~n in
        List.iter
          (function
            | R_crash { at; pid } -> Obs.Qos.feed fold (Obs.Qos.Crash { at; pid })
            | R_view { at; observer; component; suspected; trusted }
              when String.equal component c ->
              Obs.Qos.feed fold (Obs.Qos.View { at; observer; suspected; trusted })
            | _ -> ())
          raws;
        { Obs.Rollup.name = c; component = c; report = Obs.Qos.finish fold ~horizon })
      components
  in
  Obs.Rollup.to_json scenarios
