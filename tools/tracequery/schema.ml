(* A small JSON-Schema checker covering exactly the subset the checked-in
   schemas (docs/schemas/) use: type, properties, required, items, enum,
   minimum.  Unknown keywords are ignored, like a real validator. *)

type error = { path : string; message : string }

let pp_error ppf { path; message } =
  Format.fprintf ppf "%s: %s" (if path = "" then "$" else path) message

let type_ok (v : Json_min.t) = function
  | "object" -> (match v with Json_min.Obj _ -> true | _ -> false)
  | "array" -> (match v with Json_min.List _ -> true | _ -> false)
  | "string" -> (match v with Json_min.String _ -> true | _ -> false)
  | "integer" -> (match v with Json_min.Int _ -> true | _ -> false)
  | "number" -> (match v with Json_min.Int _ | Json_min.Float _ -> true | _ -> false)
  | "boolean" -> (match v with Json_min.Bool _ -> true | _ -> false)
  | "null" -> v = Json_min.Null
  | other -> ignore other; true

let json_equal (a : Json_min.t) (b : Json_min.t) =
  match (a, b) with
  | Json_min.Int x, Json_min.Int y -> Int.equal x y
  | Json_min.String x, Json_min.String y -> String.equal x y
  | Json_min.Bool x, Json_min.Bool y -> Bool.equal x y
  | Json_min.Null, Json_min.Null -> true
  | _ -> false

let rec validate ~schema ~path value errors =
  let errors =
    match Json_min.member "type" schema with
    | Some (Json_min.String t) ->
      if type_ok value t then errors
      else
        { path; message = Printf.sprintf "expected %s, got %s" t (Json_min.type_name value) }
        :: errors
    | Some (Json_min.List alternatives) ->
      if
        List.exists
          (function Json_min.String t -> type_ok value t | _ -> false)
          alternatives
      then errors
      else
        {
          path;
          message =
            Printf.sprintf "expected one of [%s], got %s"
              (String.concat ", "
                 (List.filter_map (function Json_min.String t -> Some t | _ -> None) alternatives))
              (Json_min.type_name value);
        }
        :: errors
    | _ -> errors
  in
  let errors =
    match Json_min.member "enum" schema with
    | Some (Json_min.List allowed) ->
      if List.exists (json_equal value) allowed then errors
      else { path; message = "value not in enum" } :: errors
    | _ -> errors
  in
  let errors =
    match (Json_min.member "minimum" schema, value) with
    | Some (Json_min.Int m), Json_min.Int v when v < m ->
      { path; message = Printf.sprintf "%d below minimum %d" v m } :: errors
    | _ -> errors
  in
  let errors =
    match (Json_min.member "required" schema, value) with
    | Some (Json_min.List names), Json_min.Obj fields ->
      List.fold_left
        (fun errors name ->
          match name with
          | Json_min.String n when not (List.mem_assoc n fields) ->
            { path; message = Printf.sprintf "missing required field \"%s\"" n } :: errors
          | _ -> errors)
        errors names
    | _ -> errors
  in
  let errors =
    match (Json_min.member "properties" schema, value) with
    | Some (Json_min.Obj props), Json_min.Obj fields ->
      List.fold_left
        (fun errors (name, sub) ->
          match List.assoc_opt name fields with
          | Some v -> validate ~schema:sub ~path:(path ^ "." ^ name) v errors
          | None -> errors)
        errors props
    | _ -> errors
  in
  match (Json_min.member "items" schema, value) with
  | Some item_schema, Json_min.List items ->
    let _, errors =
      List.fold_left
        (fun (i, errors) v ->
          (i + 1, validate ~schema:item_schema ~path:(Printf.sprintf "%s[%d]" path i) v errors))
        (0, errors) items
    in
    errors
  | _ -> errors

let check ~schema value = List.rev (validate ~schema ~path:"" value [])
