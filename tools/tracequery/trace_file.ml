(* Load a JSONL trace export (lib/sim/trace_export.ml) into typed events.
   Every record keeps its original line so filters can re-emit input
   bytes verbatim. *)

type event = {
  seq : int;
  lc : int;
  typ : string;
  at : int;
  pid : int option;
      (* Process the event happens at: [src] of a send, [dst] of a deliver,
         [pid] otherwise; [None] for a drop (it happens on the link). *)
  src : int;
  dst : int;
  msg : int;  (* -1 when the event carries no message id. *)
  span : int;
  component : string;
  tag : string;
  name : string;
  raw : string;
}

exception Bad_trace of string

let event_of_line ~lineno line =
  let fail msg = raise (Bad_trace (Printf.sprintf "line %d: %s" lineno msg)) in
  let j = try Json_min.parse line with Json_min.Parse_error m -> fail m in
  let int k ~default = Json_min.int_field j k ~default in
  let str k ~default = Json_min.string_field j k ~default in
  let typ =
    match Option.bind (Json_min.member "type" j) Json_min.to_string with
    | Some t -> t
    | None -> fail "missing \"type\""
  in
  let seq =
    match Option.bind (Json_min.member "seq" j) Json_min.to_int with
    | Some s -> s
    | None -> fail "missing \"seq\""
  in
  let pid =
    match typ with
    | "send" -> Some (int "src" ~default:0)
    | "deliver" -> Some (int "dst" ~default:0)
    | "drop" -> None
    | _ -> Option.bind (Json_min.member "pid" j) Json_min.to_int
  in
  {
    seq;
    lc = int "lc" ~default:0;
    typ;
    at = int "at" ~default:0;
    pid;
    src = int "src" ~default:(-1);
    dst = int "dst" ~default:(-1);
    msg = int "msg" ~default:(-1);
    span = int "span" ~default:(-1);
    component = str "component" ~default:"";
    tag = str "tag" ~default:"";
    name = str "name" ~default:"";
    raw = line;
  }

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec loop acc =
        match input_line ic with
        | line -> loop (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      loop [])

let load path =
  List.filteri (fun _ line -> String.trim line <> "") (read_lines path)
  |> List.mapi (fun i line -> event_of_line ~lineno:(i + 1) line)

let render e =
  let buf = Buffer.create 64 in
  Printf.bprintf buf "#%-5d @%-5d [t=%d] %s" e.seq e.lc e.at e.typ;
  (match e.typ with
  | "send" | "deliver" | "drop" ->
    Printf.bprintf buf " p%d->p%d msg=%d %s/%s" (e.src + 1) (e.dst + 1) e.msg e.component e.tag
  | "span_begin" | "span_end" ->
    Printf.bprintf buf " span=%d %s/%s" e.span e.component e.name
  | _ ->
    (match e.pid with Some p -> Printf.bprintf buf " p%d" (p + 1) | None -> ());
    if e.component <> "" then Printf.bprintf buf " %s" e.component;
    if e.tag <> "" then Printf.bprintf buf " %s" e.tag);
  Buffer.contents buf
