(* ecfd-trace: query tool over JSONL trace exports.

     ecfd-trace filter TRACE.jsonl --component consensus.ec --pid 0
     ecfd-trace ancestry TRACE.jsonl            # cone of the first decide
     ecfd-trace ancestry TRACE.jsonl --seq 123
     ecfd-trace diff A.jsonl B.jsonl
     ecfd-trace validate FILE --schema S.schema.json [--jsonl]
     ecfd-trace rollup TRACE.jsonl [--component C] [--n N] [--horizon T]
*)

open Cmdliner
open Tracequery_core

let file_arg ~n ~doc = Arg.(required & pos n (some file) None & info [] ~docv:"FILE" ~doc)

let load_or_die path =
  try Trace_file.load path
  with Trace_file.Bad_trace msg ->
    Printf.eprintf "ecfd-trace: %s: %s\n" path msg;
    exit 2

(* --- filter --- *)

let filter_cmd =
  let run path component pid from_t to_t pretty =
    let events = Query.filter ?component ?pid ?from_t ?to_t (load_or_die path) in
    List.iter
      (fun (e : Trace_file.event) ->
        print_string (if pretty then Trace_file.render e ^ "\n" else e.raw ^ "\n"))
      events
  in
  let doc = "Select events by component, process, and time window (JSONL out)." in
  Cmd.v
    (Cmd.info "filter" ~doc)
    Term.(
      const run
      $ file_arg ~n:0 ~doc:"JSONL trace export."
      $ Arg.(
          value
          & opt (some string) None
          & info [ "component"; "c" ] ~docv:"NAME" ~doc:"Keep only this component's events.")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "pid" ] ~docv:"P"
              ~doc:"Keep events involving process $(docv) (0-based; link events match on either \
                    endpoint).")
      $ Arg.(
          value & opt (some int) None & info [ "from" ] ~docv:"T" ~doc:"Discard events before T.")
      $ Arg.(
          value & opt (some int) None & info [ "to" ] ~docv:"T" ~doc:"Discard events after T.")
      $ Arg.(
          value & flag & info [ "pretty" ] ~doc:"Human-readable lines instead of JSONL."))

(* --- ancestry --- *)

let ancestry_cmd =
  let run path seq pid jsonl =
    let events = load_or_die path in
    let target =
      match seq with
      | Some s -> (
        match Query.find_seq ~seq:s events with
        | Some e -> e
        | None ->
          Printf.eprintf "ecfd-trace: no event with seq %d\n" s;
          exit 2)
      | None -> (
        match Query.first ~typ:"decide" ?pid events with
        | Some e -> e
        | None ->
          Printf.eprintf "ecfd-trace: no decide event in %s\n" path;
          exit 2)
    in
    let cone = Query.ancestry events ~seq:target.Trace_file.seq in
    if not jsonl then
      Printf.printf "happens-before cone of %s (%d of %d events):\n"
        (Trace_file.render target) (List.length cone) (List.length events);
    List.iter
      (fun (e : Trace_file.event) ->
        print_string (if jsonl then e.raw ^ "\n" else "  " ^ Trace_file.render e ^ "\n"))
      cone
  in
  let doc =
    "Print the happens-before cone of an event (default: the first decide)."
  in
  Cmd.v
    (Cmd.info "ancestry" ~doc)
    Term.(
      const run
      $ file_arg ~n:0 ~doc:"JSONL trace export."
      $ Arg.(
          value
          & opt (some int) None
          & info [ "seq" ] ~docv:"N" ~doc:"Target event by sequence number.")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "pid" ] ~docv:"P" ~doc:"With no --seq: first decide at this process.")
      $ Arg.(value & flag & info [ "jsonl" ] ~doc:"Emit the cone as JSONL, no header."))

(* --- diff --- *)

let diff_cmd =
  let run a b =
    match Query.diff_lines (Trace_file.read_lines a) (Trace_file.read_lines b) with
    | None -> Printf.printf "identical (%s = %s)\n" a b
    | Some { line; left; right } ->
      Printf.printf "traces diverge at line %d:\n" line;
      Printf.printf "  %s: %s\n" a (Option.value left ~default:"<end of file>");
      Printf.printf "  %s: %s\n" b (Option.value right ~default:"<end of file>");
      exit 1
  in
  let doc = "Compare two exports line by line; exit 1 at the first divergence." in
  Cmd.v
    (Cmd.info "diff" ~doc)
    Term.(
      const run $ file_arg ~n:0 ~doc:"First export." $ file_arg ~n:1 ~doc:"Second export.")

(* --- validate --- *)

let validate_cmd =
  let run path schema_path jsonl =
    let read_all p =
      let ic = open_in_bin p in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let parse_or_die what text =
      try Json_min.parse text
      with Json_min.Parse_error msg ->
        Printf.eprintf "ecfd-trace: %s: %s\n" what msg;
        exit 2
    in
    let schema = parse_or_die schema_path (read_all schema_path) in
    let failures = ref 0 in
    let check what value =
      List.iter
        (fun e ->
          incr failures;
          Printf.printf "%s: %s\n" what (Format.asprintf "%a" Schema.pp_error e))
        (Schema.check ~schema value)
    in
    if jsonl then
      List.iteri
        (fun i line ->
          if String.trim line <> "" then
            check (Printf.sprintf "%s:%d" path (i + 1)) (parse_or_die path line))
        (Trace_file.read_lines path)
    else check path (parse_or_die path (read_all path));
    if !failures = 0 then Printf.printf "%s: valid\n" path else exit 1
  in
  let doc = "Validate an export against a JSON schema (whole file, or per line with --jsonl)." in
  Cmd.v
    (Cmd.info "validate" ~doc)
    Term.(
      const run
      $ file_arg ~n:0 ~doc:"File to validate."
      $ Arg.(
          required
          & opt (some file) None
          & info [ "schema" ] ~docv:"SCHEMA" ~doc:"JSON schema file (docs/schemas/).")
      $ Arg.(
          value & flag
          & info [ "jsonl" ] ~doc:"Validate every line as its own document (JSONL exports)."))

(* --- rollup --- *)

let rollup_cmd =
  let run path component n horizon output =
    let json =
      try Qos_rollup.of_lines ?n ?horizon ?component (Trace_file.read_lines path)
      with Qos_rollup.Bad msg ->
        Printf.eprintf "ecfd-trace: %s: %s\n" path msg;
        exit 2
    in
    match output with
    | None -> print_string json
    | Some f ->
      let oc = open_out f in
      output_string oc json;
      close_out oc
  in
  let doc =
    "QoS / SLA rollup of a JSONL trace export (detection time, mistake rate, availability; \
     one scenario per failure-detector component; schema docs/schemas/qos.schema.json)."
  in
  Cmd.v
    (Cmd.info "rollup" ~doc)
    Term.(
      const run
      $ file_arg ~n:0 ~doc:"JSONL trace export."
      $ Arg.(
          value
          & opt (some string) None
          & info [ "component"; "c" ] ~docv:"NAME"
              ~doc:"Roll up only this detector component (default: every component seen).")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "n" ] ~docv:"N"
              ~doc:"Process count (default: inferred as max pid in the trace + 1).")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "horizon" ] ~docv:"T"
              ~doc:"Run horizon in ticks (default: inferred as the last event time).")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Write the JSON here instead of stdout."))

let main =
  let doc = "Query, compare and validate ecfd trace exports" in
  Cmd.group
    (Cmd.info "ecfd-trace" ~doc ~version:"1.0.0")
    [ filter_cmd; ancestry_cmd; diff_cmd; validate_cmd; rollup_cmd ]

let () = exit (Cmd.eval main)
