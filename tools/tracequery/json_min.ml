(* A minimal JSON reader for the trace tooling.  The repo deliberately has
   no JSON dependency (exports are printed by hand in lib/sim), so the
   query side parses by hand too.  Full JSON grammar, ints kept exact. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

type cursor = { text : string; mutable pos : int }

let error cur msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg cur.pos))

let peek cur = if cur.pos < String.length cur.text then Some cur.text.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  let continue = ref true in
  while !continue do
    match peek cur with
    | Some (' ' | '\t' | '\n' | '\r') -> advance cur
    | _ -> continue := false
  done

let expect cur c =
  match peek cur with
  | Some c' when c' = c -> advance cur
  | _ -> error cur (Printf.sprintf "expected '%c'" c)

let literal cur word value =
  let len = String.length word in
  if
    cur.pos + len <= String.length cur.text
    && String.sub cur.text cur.pos len = word
  then begin
    cur.pos <- cur.pos + len;
    value
  end
  else error cur (Printf.sprintf "expected '%s'" word)

let parse_hex4 cur =
  if cur.pos + 4 > String.length cur.text then error cur "truncated \\u escape";
  let v = int_of_string ("0x" ^ String.sub cur.text cur.pos 4) in
  cur.pos <- cur.pos + 4;
  v

let utf8_of_code buf code =
  (* Good enough for escapes: encode the scalar value as UTF-8. *)
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek cur with
    | None -> error cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' ->
      advance cur;
      (match peek cur with
      | Some '"' -> Buffer.add_char buf '"'; advance cur
      | Some '\\' -> Buffer.add_char buf '\\'; advance cur
      | Some '/' -> Buffer.add_char buf '/'; advance cur
      | Some 'n' -> Buffer.add_char buf '\n'; advance cur
      | Some 't' -> Buffer.add_char buf '\t'; advance cur
      | Some 'r' -> Buffer.add_char buf '\r'; advance cur
      | Some 'b' -> Buffer.add_char buf '\b'; advance cur
      | Some 'f' -> Buffer.add_char buf '\012'; advance cur
      | Some 'u' ->
        advance cur;
        utf8_of_code buf (parse_hex4 cur)
      | _ -> error cur "bad escape");
      loop ()
    | Some c ->
      Buffer.add_char buf c;
      advance cur;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let is_float = ref false in
  let continue = ref true in
  while !continue do
    match peek cur with
    | Some ('0' .. '9' | '-' | '+') -> advance cur
    | Some ('.' | 'e' | 'E') ->
      is_float := true;
      advance cur
    | _ -> continue := false
  done;
  let s = String.sub cur.text start (cur.pos - start) in
  if !is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> error cur "bad number"
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> error cur "bad number"

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> error cur "unexpected end of input"
  | Some '"' -> String (parse_string cur)
  | Some '{' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some '}' then begin
      advance cur;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws cur;
        let key = parse_string cur in
        skip_ws cur;
        expect cur ':';
        let v = parse_value cur in
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          members ((key, v) :: acc)
        | Some '}' ->
          advance cur;
          List.rev ((key, v) :: acc)
        | _ -> error cur "expected ',' or '}'"
      in
      Obj (members [])
    end
  | Some '[' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some ']' then begin
      advance cur;
      List []
    end
    else begin
      let rec elements acc =
        let v = parse_value cur in
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          elements (v :: acc)
        | Some ']' ->
          advance cur;
          List.rev (v :: acc)
        | _ -> error cur "expected ',' or ']'"
      in
      List (elements [])
    end
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some 'n' -> literal cur "null" Null
  | Some ('-' | '0' .. '9') -> parse_number cur
  | Some c -> error cur (Printf.sprintf "unexpected '%c'" c)

let parse text =
  let cur = { text; pos = 0 } in
  let v = parse_value cur in
  skip_ws cur;
  if cur.pos <> String.length text then error cur "trailing garbage";
  v

(* --- accessors --- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_string = function String s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None

let int_field j key ~default = Option.value ~default (Option.bind (member key j) to_int)
let string_field j key ~default = Option.value ~default (Option.bind (member key j) to_string)

let type_name = function
  | Null -> "null"
  | Bool _ -> "boolean"
  | Int _ -> "integer"
  | Float _ -> "number"
  | String _ -> "string"
  | List _ -> "array"
  | Obj _ -> "object"
