(* Queries over a loaded JSONL trace: filtering, the happens-before cone
   of an event, and line-level diffing of two exports. *)

let matches ?component ?pid ?from_t ?to_t (e : Trace_file.event) =
  (match component with None -> true | Some c -> String.equal e.component c)
  && (match pid with
     | None -> true
     | Some p -> (
       (* An event "involves" a process if it happens there, or if it is a
          link event with that endpoint. *)
       match e.typ with
       | "send" | "deliver" | "drop" -> e.src = p || e.dst = p
       | _ -> e.pid = Some p))
  && (match from_t with None -> true | Some t -> e.at >= t)
  && match to_t with None -> true | Some t -> e.at <= t

let filter ?component ?pid ?from_t ?to_t events =
  List.filter (matches ?component ?pid ?from_t ?to_t) events

let first ~typ ?pid events =
  List.find_opt
    (fun (e : Trace_file.event) ->
      String.equal e.typ typ && match pid with None -> true | Some p -> e.pid = Some p)
    events

let find_seq ~seq events = List.find_opt (fun (e : Trace_file.event) -> e.seq = seq) events

(* The happens-before cone of a target event: walk immediate causal
   predecessors backwards to a fixpoint.  Immediate predecessors of e:
   - the latest earlier event at the same process (program order);
   - for a deliver, the matching send (same message id).
   Everything reachable is in the cone; the result includes the target and
   comes back in seq order. *)
let ancestry events ~seq:target_seq =
  let by_seq = Hashtbl.create 256 in
  List.iter (fun (e : Trace_file.event) -> Hashtbl.replace by_seq e.seq e) events;
  (* prev.(seq of e) = seq of the previous event at e's process. *)
  let prev_at_pid = Hashtbl.create 256 in
  let send_of_msg = Hashtbl.create 256 in
  let last_at_pid = Hashtbl.create 16 in
  List.iter
    (fun (e : Trace_file.event) ->
      (match e.pid with
      | Some p ->
        (match Hashtbl.find_opt last_at_pid p with
        | Some prev -> Hashtbl.replace prev_at_pid e.seq prev
        | None -> ());
        Hashtbl.replace last_at_pid p e.seq
      | None -> ());
      if String.equal e.typ "send" && e.msg >= 0 then Hashtbl.replace send_of_msg e.msg e.seq)
    events;
  let in_cone = Hashtbl.create 256 in
  let rec visit seq =
    if not (Hashtbl.mem in_cone seq) then begin
      Hashtbl.add in_cone seq ();
      match Hashtbl.find_opt by_seq seq with
      | None -> ()
      | Some e ->
        (match Hashtbl.find_opt prev_at_pid seq with Some p -> visit p | None -> ());
        if (String.equal e.typ "deliver" || String.equal e.typ "drop") && e.msg >= 0 then
          match Hashtbl.find_opt send_of_msg e.msg with
          | Some s -> visit s
          | None -> ()
    end
  in
  visit target_seq;
  List.filter (fun (e : Trace_file.event) -> Hashtbl.mem in_cone e.seq) events

type divergence = {
  line : int;  (* 1-based *)
  left : string option;  (* [None] = left file ended first *)
  right : string option;
}

(* First line where the two exports differ; [None] = identical. *)
let diff_lines a b =
  let rec walk i a b =
    match (a, b) with
    | [], [] -> None
    | x :: a', y :: b' ->
      if String.equal x y then walk (i + 1) a' b'
      else Some { line = i; left = Some x; right = Some y }
    | x :: _, [] -> Some { line = i; left = Some x; right = None }
    | [], y :: _ -> Some { line = i; left = None; right = Some y }
  in
  walk 1 a b
