(* Command-line driver: run detectors, transformations and consensus
   protocols in the simulator from the shell.

     dune exec bin/ecfd_cli.exe -- fd --detector ec-from-leader -n 5 --crash 1@100
     dune exec bin/ecfd_cli.exe -- consensus --protocol ec -n 7 --crash 0@10 --crash 2@50
     dune exec bin/ecfd_cli.exe -- transform -n 5 --gst 300 --crash 2@400
*)

open Cmdliner

(* --- shared arguments --- *)

let n_arg =
  let doc = "Number of processes." in
  Arg.(value & opt int 5 & info [ "n"; "processes" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Simulation seed (runs are deterministic per seed)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let shards_arg =
  let doc =
    "Engine shards: 1 = sequential, $(docv) >= 2 advances processes in parallel \
     conservative time windows (default: \\$(b,ECFD_SHARDS) or 1).  The output is \
     byte-identical at every value."
  in
  Arg.(value & opt (some int) None & info [ "shards" ] ~docv:"K" ~doc)

let apply_shards shards = Option.iter Sim.Shard.set_default_shards shards

let gst_arg =
  let doc = "Global stabilisation time: before it, delays are unbounded-looking." in
  Arg.(value & opt int 0 & info [ "gst" ] ~docv:"T" ~doc)

let delta_arg =
  let doc = "Post-GST bound on message delay." in
  Arg.(value & opt int 8 & info [ "delta" ] ~docv:"D" ~doc)

let horizon_arg =
  let doc = "How long to run the simulation." in
  Arg.(value & opt int 8000 & info [ "horizon" ] ~docv:"T" ~doc)

let crash_conv =
  let parse s =
    match String.split_on_char '@' s with
    | [ p; t ] -> (
      match (int_of_string_opt p, int_of_string_opt t) with
      | Some p, Some t when p >= 0 && t >= 0 -> Ok (p, t)
      | _ -> Error (`Msg "expected PID@TIME with non-negative integers"))
    | _ -> Error (`Msg "expected PID@TIME, e.g. 1@100 (PID is 0-based)")
  in
  let print ppf (p, t) = Format.fprintf ppf "%d@%d" p t in
  Arg.conv (parse, print)

let crashes_arg =
  let doc = "Crash process $(i,PID) at time $(i,T) (0-based pid; repeatable)." in
  Arg.(value & opt_all crash_conv [] & info [ "crash" ] ~docv:"PID@T" ~doc)

let verbose_arg =
  let doc = "Dump the full event trace." in
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc)

let timeline_arg =
  let doc = "Render ASCII timelines of the run (leadership, suspicions, decisions)." in
  Arg.(value & flag & info [ "timeline" ] ~doc)

let dump_trace_arg =
  let doc = "Write the full event trace to $(docv) (one event per line)." in
  Arg.(value & opt (some string) None & info [ "dump-trace" ] ~docv:"FILE" ~doc)

let dump_trace path trace =
  Option.iter
    (fun file ->
      let oc = open_out file in
      Sim.Trace.dump trace oc;
      close_out oc;
      Format.printf "trace written to %s (%d events)@." file (Sim.Trace.length trace))
    path

let detector_conv =
  let all =
    [
      ("heartbeat-p", `Heartbeat_p);
      ("ring-s", `Ring_s);
      ("ring-w", `Ring_w);
      ("leader-s", `Leader_s);
      ("stable-omega", `Stable_omega);
      ("ec-from-stable", `Ec_from_stable);
      ("ec-from-leader", `Ec_from_leader);
      ("ec-from-ring", `Ec_from_ring);
      ("ec-from-omega-chu", `Ec_from_omega_chu);
      ("ec-from-heartbeat", `Ec_from_heartbeat);
      ("ec-from-perfect", `Ec_from_perfect);
      ("scripted-stable", `Scripted_stable);
    ]
  in
  Arg.enum all

let net ~seed ~gst ~delta = { (Scenario.chaotic_net ~seed ~gst ()) with delta }

let to_detector ~schedule = function
  | `Heartbeat_p -> Scenario.Heartbeat_p
  | `Ring_s -> Scenario.Ring_s
  | `Ring_w -> Scenario.Ring_w
  | `Leader_s -> Scenario.Leader_s
  | `Stable_omega -> Scenario.Stable_omega
  | `Ec_from_stable -> Scenario.Ec_from_stable
  | `Ec_from_leader -> Scenario.Ec_from_leader
  | `Ec_from_ring -> Scenario.Ec_from_ring
  | `Ec_from_omega_chu -> Scenario.Ec_from_omega_chu
  | `Ec_from_heartbeat -> Scenario.Ec_from_heartbeat
  | `Ec_from_perfect -> Scenario.Ec_from_perfect schedule
  | `Scripted_stable -> Scenario.Scripted_stable 0

let print_trace trace =
  Sim.Trace.iter trace (fun e -> Format.printf "%a@." Sim.Trace.pp_event e)

let print_matrix run =
  Format.printf "@.Property matrix:@.";
  List.iter
    (fun (prop, (report : Spec.Fd_props.report)) ->
      Format.printf "  %-38s %s@."
        (Fd.Classes.property_name prop)
        (match report.Spec.Fd_props.since with
        | Some t when report.Spec.Fd_props.holds -> Printf.sprintf "holds (from t=%d)" t
        | _ when report.Spec.Fd_props.holds -> "holds"
        | _ -> "violated"))
    (Spec.Fd_props.class_matrix run);
  Format.printf "@.Classes satisfied on this run:";
  List.iter
    (fun cls ->
      if Spec.Fd_props.satisfies_class cls run then Format.printf " %s" (Fd.Classes.name cls))
    Fd.Classes.all;
  Format.printf "@."

(* --- fd subcommand --- *)

let fd_cmd =
  let run detector n seed gst delta horizon crashes verbose timeline dump shards =
    apply_shards shards;
    let schedule = Sim.Fault.crashes crashes in
    let detector = to_detector ~schedule detector in
    let _, run, stats =
      Scenario.fd_run ~net:(net ~seed ~gst ~delta) ~crashes:schedule ~horizon ~n ~detector ()
    in
    if verbose then print_trace run.Spec.Fd_props.trace;
    dump_trace dump run.Spec.Fd_props.trace;
    if timeline then begin
      Format.printf "@.Leadership:@.%s" (Spec.Timeline.render_leadership run ~horizon);
      Format.printf "@.Suspicions:@.%s" (Spec.Timeline.render_suspicions run ~horizon);
      Format.printf "%s@." Spec.Timeline.legend
    end;
    Format.printf "detector %s, n=%d, seed=%d, gst=%d, crashes=%a@."
      (Scenario.detector_name detector)
      n seed gst Sim.Fault.pp schedule;
    print_matrix run;
    let total = Sim.Stats.total stats in
    Format.printf "@.Messages: sent=%d delivered=%d dropped=%d@." total.Sim.Stats.sent
      total.Sim.Stats.delivered total.Sim.Stats.dropped
  in
  let doc = "Run a failure detector and report which classes it satisfied." in
  Cmd.v
    (Cmd.info "fd" ~doc)
    Term.(
      const run
      $ Arg.(
          value
          & opt detector_conv `Ec_from_leader
          & info [ "detector"; "d" ] ~docv:"DETECTOR" ~doc:"Which detector to install.")
      $ n_arg $ seed_arg $ gst_arg $ delta_arg $ horizon_arg $ crashes_arg $ verbose_arg
      $ timeline_arg $ dump_trace_arg $ shards_arg)

(* --- consensus subcommand --- *)

let protocol_conv =
  Arg.enum
    [
      ("ec", `Ec); ("ec-merged", `Ec_merged); ("ec-strict", `Ec_strict); ("ct", `Ct); ("mr", `Mr); ("hr", `Hr);
    ]

let consensus_cmd =
  let run protocol detector n seed gst delta horizon crashes verbose timeline dump shards =
    apply_shards shards;
    let schedule = Sim.Fault.crashes crashes in
    let detector = to_detector ~schedule detector in
    let protocol =
      match protocol with
      | `Ec -> Scenario.Ec Ecfd.Ec_consensus.default_params
      | `Ec_merged ->
        Scenario.Ec { Ecfd.Ec_consensus.default_params with merge_phase01 = true }
      | `Ec_strict ->
        Scenario.Ec
          { Ecfd.Ec_consensus.default_params with wait_mode = Ecfd.Ec_consensus.Strict_majority }
      | `Ct -> Scenario.Ct
      | `Mr -> Scenario.Mr
      | `Hr -> Scenario.Hr
    in
    let r =
      Scenario.run_consensus ~net:(net ~seed ~gst ~delta) ~crashes:schedule ~horizon ~n ~detector
        ~protocol ()
    in
    if verbose then print_trace r.Scenario.trace;
    dump_trace dump r.Scenario.trace;
    if timeline then begin
      let fd_run =
        Spec.Fd_props.make_run
          ~component:(Fd.Fd_handle.component r.Scenario.fd)
          ~n r.Scenario.trace
      in
      Format.printf "@.Leadership:@.%s" (Spec.Timeline.render_leadership fd_run ~horizon);
      Format.printf "@.Decisions:@.%s"
        (Spec.Timeline.render_decisions r.Scenario.trace ~n ~horizon);
      Format.printf "%s@.@." Spec.Timeline.legend
    end;
    Format.printf "protocol %s over %s, n=%d, seed=%d, gst=%d, crashes=%a@."
      (Scenario.protocol_name protocol)
      (Scenario.detector_name detector)
      n seed gst Sim.Fault.pp schedule;
    Format.printf "@.Decisions:@.";
    List.iter
      (fun (p, v, round, at) ->
        Format.printf "  %a decides %d in round %d at t=%d@." Sim.Pid.pp p v round at)
      (Sim.Trace.decisions r.Scenario.trace);
    (match Spec.Consensus_props.check_all r.Scenario.trace ~n with
    | [] -> Format.printf "@.Uniform Consensus holds on this run.@."
    | violations ->
      List.iter
        (fun v -> Format.printf "VIOLATION: %a@." Spec.Consensus_props.pp_violation v)
        violations);
    Format.printf "@.Messages per round:@.";
    List.iter
      (fun (round, sends) -> Format.printf "  round %d: %d@." round sends)
      (Spec.Round_metrics.sends_by_round r.Scenario.trace
         ~component:
           (match protocol with
           | Scenario.Ec _ -> Ecfd.Ec_consensus.component
           | Scenario.Ct -> Consensus.Ct_consensus.component
           | Scenario.Mr -> Consensus.Mr_consensus.component
           | Scenario.Hr -> Consensus.Hr_consensus.component))
  in
  let doc = "Solve one instance of Uniform Consensus and check its properties." in
  Cmd.v
    (Cmd.info "consensus" ~doc)
    Term.(
      const run
      $ Arg.(
          value & opt protocol_conv `Ec
          & info [ "protocol"; "p" ] ~docv:"PROTO" ~doc:"ec | ec-merged | ec-strict | ct | mr.")
      $ Arg.(
          value
          & opt detector_conv `Ec_from_leader
          & info [ "detector"; "d" ] ~docv:"DETECTOR" ~doc:"Which detector to install.")
      $ n_arg $ seed_arg $ gst_arg $ delta_arg $ horizon_arg $ crashes_arg $ verbose_arg
      $ timeline_arg $ dump_trace_arg $ shards_arg)

(* --- transform subcommand --- *)

let transform_cmd =
  let run n seed gst delta horizon crashes piggyback shards =
    apply_shards shards;
    let schedule = Sim.Fault.crashes crashes in
    let engine = Scenario.engine ~net:(net ~seed ~gst ~delta) ~n () in
    Sim.Fault.apply engine schedule;
    let hooks = Fd.Leader_s.make_hooks () in
    let base = Fd.Leader_s.install ~hooks engine Fd.Leader_s.default_params in
    let ec = Ecfd.Ec.of_leader_s base ~engine in
    let p =
      if piggyback then
        Ecfd.Ec_to_p.install_piggybacked engine ~hooks ~underlying:ec Ecfd.Ec_to_p.default_params
      else Ecfd.Ec_to_p.install engine ~underlying:ec Ecfd.Ec_to_p.default_params
    in
    Sim.Engine.run_until engine horizon;
    let run =
      Spec.Fd_props.make_run ~component:(Fd.Fd_handle.component p) ~n (Sim.Engine.trace engine)
    in
    Format.printf "<>C -> <>P transformation (%s), n=%d, seed=%d, gst=%d, crashes=%a@."
      (if piggyback then "piggybacked" else "stand-alone")
      n seed gst Sim.Fault.pp schedule;
    print_matrix run;
    let stats = Sim.Engine.stats engine in
    Format.printf "@.Messages sent: transformation=%d, underlying detector=%d@."
      (Sim.Stats.component_counts stats ~component:Ecfd.Ec_to_p.component).Sim.Stats.sent
      (Sim.Stats.component_counts stats ~component:Fd.Leader_s.component).Sim.Stats.sent
  in
  let doc = "Run the Section 4 transformation <>C -> <>P and verify Theorem 1." in
  Cmd.v
    (Cmd.info "transform" ~doc)
    Term.(
      const run $ n_arg $ seed_arg $ gst_arg $ delta_arg $ horizon_arg $ crashes_arg
      $ Arg.(
          value & flag
          & info [ "piggyback" ]
              ~doc:"Ride the suspect lists on the underlying detector's heartbeats.")
      $ shards_arg)

(* --- trace subcommand --- *)

let trace_cmd =
  let run protocol detector n seed gst delta horizon crashes format out shards profile =
    apply_shards shards;
    if profile then Sim.Shard.set_default_profile true;
    let schedule = Sim.Fault.crashes crashes in
    let detector = to_detector ~schedule detector in
    let protocol =
      match protocol with
      | `Ec -> Scenario.Ec Ecfd.Ec_consensus.default_params
      | `Ec_merged -> Scenario.Ec { Ecfd.Ec_consensus.default_params with merge_phase01 = true }
      | `Ec_strict ->
        Scenario.Ec
          { Ecfd.Ec_consensus.default_params with wait_mode = Ecfd.Ec_consensus.Strict_majority }
      | `Ct -> Scenario.Ct
      | `Mr -> Scenario.Mr
      | `Hr -> Scenario.Hr
    in
    let r =
      Scenario.run_consensus ~net:(net ~seed ~gst ~delta) ~crashes:schedule ~horizon ~n ~detector
        ~protocol ()
    in
    let rendered =
      match format with
      | `Chrome ->
        Sim.Trace_export.chrome_string
          ~profiler:(Sim.Engine.profiler_windows r.Scenario.engine)
          r.Scenario.trace
      | `Jsonl -> Sim.Trace_export.jsonl_string r.Scenario.trace
    in
    match out with
    | None -> print_string rendered
    | Some file ->
      let oc = open_out_bin file in
      output_string oc rendered;
      close_out oc;
      Format.eprintf "trace written to %s (%d events)@." file
        (Sim.Trace.length r.Scenario.trace)
  in
  let doc =
    "Run a consensus scenario and export its trace (Chrome trace-event JSON for Perfetto, or \
     JSONL for ecfd-trace)."
  in
  Cmd.v
    (Cmd.info "trace" ~doc)
    Term.(
      const run
      $ Arg.(
          value & opt protocol_conv `Ec
          & info [ "protocol"; "p" ] ~docv:"PROTO" ~doc:"ec | ec-merged | ec-strict | ct | mr | hr.")
      $ Arg.(
          value
          & opt detector_conv `Ec_from_leader
          & info [ "detector"; "d" ] ~docv:"DETECTOR" ~doc:"Which detector to install.")
      $ n_arg $ seed_arg $ gst_arg $ delta_arg $ horizon_arg $ crashes_arg
      $ Arg.(
          value
          & opt (enum [ ("chrome", `Chrome); ("jsonl", `Jsonl) ]) `Jsonl
          & info [ "format"; "f" ] ~docv:"FMT" ~doc:"chrome or jsonl.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Write to $(docv) instead of stdout.")
      $ shards_arg
      $ Arg.(
          value & flag
          & info [ "profile" ]
              ~doc:
                "Enable the sharded-engine runtime profiler (also: \\$(b,ECFD_PROFILE=1)); with \
                 --format chrome the export gains a per-window profiler track (shard busy time, \
                 barrier replay, op-log sizes).  Needs --shards >= 2 to produce records."))

(* --- qos subcommand --- *)

let qos_cmd =
  let run detector n seed gst delta horizon crashes output shards =
    apply_shards shards;
    let schedule = Sim.Fault.crashes crashes in
    let detector = to_detector ~schedule detector in
    let handle, fdrun, _stats =
      Scenario.fd_run ~net:(net ~seed ~gst ~delta) ~crashes:schedule ~horizon ~n ~detector ()
    in
    let component = Fd.Fd_handle.component handle in
    let report = Sim.Trace_qos.report ~component ~n ~horizon fdrun.Spec.Fd_props.trace in
    let json =
      Obs.Rollup.to_json
        [ { Obs.Rollup.name = Scenario.detector_name detector; component; report } ]
    in
    match output with
    | None -> print_string json
    | Some file ->
      let oc = open_out_bin file in
      output_string oc json;
      close_out oc;
      Format.eprintf "qos rollup written to %s@." file
  in
  let doc =
    "Run a failure detector and emit its QoS / SLA rollup as JSON (detection time, mistake \
     rate, query accuracy, availability; schema docs/schemas/qos.schema.json).  The output \
     is byte-identical at every --shards value."
  in
  Cmd.v
    (Cmd.info "qos" ~doc)
    Term.(
      const run
      $ Arg.(
          value
          & opt detector_conv `Ec_from_leader
          & info [ "detector"; "d" ] ~docv:"DETECTOR" ~doc:"Which detector to install.")
      $ n_arg $ seed_arg $ gst_arg $ delta_arg $ horizon_arg $ crashes_arg
      $ Arg.(
          value
          & opt (some string) None
          & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Write the JSON to $(docv) instead of stdout.")
      $ shards_arg)

(* --- bench-diff subcommand --- *)

(* Flatten a bench JSON document (BENCH_sim_core.json, BENCH_qos.json,
   BENCH_experiments.json) into (path, number) leaves.  Array elements
   are keyed by their identifying fields (name / n / shards / K) when
   present, so rows still line up after a sweep is extended. *)
let rec bench_flatten prefix (j : Tracequery_core.Json_min.t) acc =
  let open Tracequery_core.Json_min in
  match j with
  | Int v -> (prefix, float_of_int v) :: acc
  | Float v -> (prefix, v) :: acc
  | Obj fields ->
    List.fold_left
      (fun acc (k, v) ->
        bench_flatten (if prefix = "" then k else prefix ^ "." ^ k) v acc)
      acc fields
  | List items ->
    let key i item =
      match item with
      | Obj fields ->
        let ids =
          List.filter_map
            (fun k ->
              match List.assoc_opt k fields with
              | Some (Int v) -> Some (Printf.sprintf "%s=%d" k v)
              | Some (String s) -> Some (Printf.sprintf "%s=%s" k s)
              | _ -> None)
            [ "name"; "n"; "shards"; "observer"; "subject" ]
        in
        if ids = [] then string_of_int i else String.concat "," ids
      | _ -> string_of_int i
    in
    let _, acc =
      List.fold_left
        (fun (i, acc) item ->
          (i + 1, bench_flatten (Printf.sprintf "%s[%s]" prefix (key i item)) item acc))
        (0, acc) items
    in
    acc
  | Null | Bool _ | String _ -> acc

(* Which way is "worse"?  Throughput-like figures should not drop;
   latency/error-like figures should not grow; anything else is
   informational only. *)
let bench_direction path =
  let contains sub =
    let n = String.length sub and m = String.length path in
    let rec go i = i + n <= m && (String.sub path i n = sub || go (i + 1)) in
    go 0
  in
  if
    List.exists contains
      [ "events_per_sec"; "availability"; "query_accuracy"; "speedup"; "\"detected" ]
    || contains ".detected"
  then `Higher_better
  else if
    List.exists contains
      [
        "words_per_event"; "minor_words"; "detection"; "mistake"; "downtime"; "outage";
        "undetected"; "rate_per_1k";
      ]
  then `Lower_better
  else `Neutral

let bench_diff_cmd =
  let run file_a file_b threshold =
    let parse path =
      let ic = open_in_bin path in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      try Tracequery_core.Json_min.parse text
      with Tracequery_core.Json_min.Parse_error msg ->
        Printf.eprintf "ecfd bench-diff: %s: %s\n" path msg;
        exit 2
    in
    let flat path =
      List.sort
        (fun (pa, _) (pb, _) -> String.compare pa pb)
        (bench_flatten "" (parse path) [])
    in
    let a = flat file_a and b = flat file_b in
    let regressions = ref 0 and compared = ref 0 in
    List.iter
      (fun (path, va) ->
        match List.assoc_opt path b with
        | None -> ()
        | Some vb ->
          incr compared;
          let pct =
            if va <> 0.0 then 100.0 *. (vb -. va) /. Float.abs va
            else if vb = 0.0 then 0.0
            else 100.0
          in
          let dir = bench_direction path in
          let worse =
            match dir with
            | `Higher_better -> pct < -.threshold
            | `Lower_better -> pct > threshold
            | `Neutral -> false
          in
          let better =
            match dir with
            | `Higher_better -> pct > threshold
            | `Lower_better -> pct < -.threshold
            | `Neutral -> false
          in
          if worse then begin
            incr regressions;
            Printf.printf "REGRESSION %-60s %14.4f -> %14.4f  (%+.1f%%)\n" path va vb pct
          end
          else if better then
            Printf.printf "improved   %-60s %14.4f -> %14.4f  (%+.1f%%)\n" path va vb pct
          else if Float.abs pct > threshold && dir = `Neutral then
            Printf.printf "changed    %-60s %14.4f -> %14.4f  (%+.1f%%)\n" path va vb pct)
      a;
    List.iter
      (fun (path, _) ->
        if List.assoc_opt path a = None then Printf.printf "new        %s\n" path)
      b;
    Printf.printf "bench-diff: %d comparable metrics, %d regression(s) beyond %.1f%% (%s -> %s)\n"
      !compared !regressions threshold file_a file_b;
    if !regressions > 0 then exit 1
  in
  let doc =
    "Compare two bench JSON files (BENCH_sim_core.json, BENCH_qos.json, ...): throughput, \
     allocation and QoS deltas beyond a threshold; exits 1 when a directional metric \
     regressed (throughput down, latency/mistakes up)."
  in
  Cmd.v
    (Cmd.info "bench-diff" ~doc)
    Term.(
      const run
      $ Arg.(required & pos 0 (some file) None & info [] ~docv:"BASELINE" ~doc:"Old bench JSON.")
      $ Arg.(required & pos 1 (some file) None & info [] ~docv:"CURRENT" ~doc:"New bench JSON.")
      $ Arg.(
          value & opt float 10.0
          & info [ "threshold" ] ~docv:"PCT"
              ~doc:"Relative change (percent) below which a delta is noise."))

(* --- sweep subcommand --- *)

let sweep_cmd =
  let run protocol detector param values seeds n delta horizon domains shards =
    Option.iter Exec.Pool.set_default_domains domains;
    apply_shards shards;
    let protocol =
      match protocol with
      | `Ec -> Scenario.Ec Ecfd.Ec_consensus.default_params
      | `Ec_merged -> Scenario.Ec { Ecfd.Ec_consensus.default_params with merge_phase01 = true }
      | `Ec_strict ->
        Scenario.Ec
          { Ecfd.Ec_consensus.default_params with wait_mode = Ecfd.Ec_consensus.Strict_majority }
      | `Ct -> Scenario.Ct
      | `Mr -> Scenario.Mr
      | `Hr -> Scenario.Hr
    in
    let detector = to_detector ~schedule:Sim.Fault.none detector in
    Format.printf "sweep of %s for %s over %s (%d seeds per point)@.@." param
      (Scenario.protocol_name protocol)
      (Scenario.detector_name detector)
      seeds;
    Format.printf "  %8s | %7s | %12s | %11s | %6s@." param "ok" "mean t(done)" "mean rounds"
      "n";
    Format.printf "  ---------+---------+--------------+-------------+-------@.";
    (* The whole (value × seed) grid goes through the domain pool in one
       job list; each job is a self-contained run, and results come back
       in grid order, so the table is identical at any --domains value. *)
    let points =
      List.map
        (fun value ->
          let gst = if param = "gst" then value else 0 in
          let n = if param = "n" then value else n in
          (value, gst, n))
        values
    in
    let grid =
      Exec.Pool.run
        (List.concat_map
           (fun (_, gst, n) ->
             List.init seeds (fun i () ->
                 let seed = i + 1 in
                 let r =
                   Scenario.run_consensus
                     ~net:(net ~seed ~gst ~delta)
                     ~horizon ~n ~detector ~protocol ()
                 in
                 ( Spec.Consensus_props.check_all r.Scenario.trace ~n = [],
                   Spec.Consensus_props.last_decision_time r.Scenario.trace,
                   Spec.Consensus_props.decision_round r.Scenario.trace )))
           points)
    in
    let rec chunk k = function
      | [] -> []
      | flat -> List.filteri (fun i _ -> i < k) flat :: chunk k (List.filteri (fun i _ -> i >= k) flat)
    in
    List.iter2
      (fun (value, _, n) results ->
        let ok = List.length (List.filter (fun (ok, _, _) -> ok) results) in
        let mean xs =
          match xs with
          | [] -> "-"
          | _ ->
            Printf.sprintf "%.1f"
              (List.fold_left ( +. ) 0.0 (List.map float_of_int xs)
              /. float_of_int (List.length xs))
        in
        Format.printf "  %8d | %3d/%3d | %12s | %11s | %6d@." value ok seeds
          (mean (List.filter_map (fun (_, t, _) -> t) results))
          (mean (List.filter_map (fun (_, _, r) -> r) results))
          n)
      points (chunk seeds grid)
  in
  let doc = "Sweep a parameter (gst or n) and report consensus latency/rounds." in
  Cmd.v
    (Cmd.info "sweep" ~doc)
    Term.(
      const run
      $ Arg.(
          value & opt protocol_conv `Ec
          & info [ "protocol"; "p" ] ~docv:"PROTO" ~doc:"ec | ec-merged | ec-strict | ct | mr | hr.")
      $ Arg.(
          value
          & opt detector_conv `Ec_from_leader
          & info [ "detector"; "d" ] ~docv:"DETECTOR" ~doc:"Which detector to install.")
      $ Arg.(
          value & opt string "gst"
          & info [ "param" ] ~docv:"PARAM" ~doc:"Which parameter to sweep: gst or n.")
      $ Arg.(
          value
          & opt (list int) [ 0; 200; 600; 1200 ]
          & info [ "values" ] ~docv:"V1,V2,..." ~doc:"Sweep points.")
      $ Arg.(
          value & opt int 5 & info [ "seeds" ] ~docv:"K" ~doc:"Seeds (runs) per sweep point.")
      $ n_arg $ delta_arg $ horizon_arg
      $ Arg.(
          value
          & opt (some int) None
          & info [ "domains" ] ~docv:"D"
              ~doc:
                "Worker domains for the sweep grid (default: \\$(b,ECFD_DOMAINS) or the \
                 machine's recommended count, capped at 8; 1 = sequential).  The output is \
                 identical at every value.")
      $ shards_arg)

(* --- check subcommand --- *)

let check_cmd =
  let run no_json =
    (* The syntactic pass reads sources; the typed passes read the .cmt
       trees dune produced.  From the workspace root those live under
       _build/default; from inside _build (or a checkout where someone
       copied the build tree flat) the bare paths work. *)
    let build = Filename.concat "_build" "default" in
    let cmt_roots =
      let prefixed = List.map (Filename.concat build) [ "lib"; "bench" ] in
      if List.exists Sys.file_exists prefixed then
        List.filter Sys.file_exists prefixed
      else List.filter Sys.file_exists [ "lib"; "bench" ]
    in
    if cmt_roots = [] then begin
      prerr_endline "ecfd check: no built library trees found — run `dune build` first";
      exit 2
    end;
    let codes = ref [] in
    let record tool code = codes := (tool, code) :: !codes in
    let json name = if no_json then None else Some name in
    let lint_roots = List.filter Sys.file_exists [ "lib"; "bin"; "bench" ] in
    let lint = Lint_core.Driver.run_full lint_roots in
    record "ecfd-lint"
      (Check_common.Report.emit ~tool:"ecfd-lint"
         ?json:(json "LINT_findings.json")
         ~suppressed:lint.Check_common.Pipeline.suppressed
         ~clean_note:
           (Printf.sprintf "%d rule(s) over %s"
              (List.length Lint_core.Registry.all)
              (String.concat " " lint_roots))
         lint.Check_common.Pipeline.survivors);
    let typed tool ~json_file ~n_rules (r : Check_common.Cmt_driver.result) =
      if r.n_units = 0 then begin
        Printf.eprintf "%s: no .cmt files below %s — build first (dune build)\n" tool
          (String.concat " " cmt_roots);
        record tool 2
      end
      else
        record tool
          (Check_common.Report.emit ~tool ?json:(json json_file)
             ~suppressed:r.suppressed
             ~clean_note:
               (Printf.sprintf "%d rule(s) over %d unit(s) below %s" n_rules r.n_units
                  (String.concat " " cmt_roots))
             r.findings)
    in
    typed "ecfd-analyze" ~json_file:"ANALYZE_findings.json"
      ~n_rules:(List.length Analyze_core.Registry.all)
      (Analyze_core.Driver.run cmt_roots);
    typed "ecfd-alloccheck" ~json_file:"ALLOC_findings.json"
      ~n_rules:(List.length Alloccheck_core.Registry.all)
      (Alloccheck_core.Driver.run cmt_roots);
    let budget_file = "bench/alloc_budget.json" in
    if Sys.file_exists budget_file then begin
      let drift = Alloccheck_core.Roots_check.check ~budget_file cmt_roots in
      List.iter (fun line -> Printf.eprintf "ecfd-alloccheck: %s\n" line) drift;
      if drift <> [] then record "ecfd-alloccheck(roots)" 1
    end;
    typed "ecfd-racecheck" ~json_file:"RACE_findings.json"
      ~n_rules:(List.length Racecheck_core.Registry.all)
      (Racecheck_core.Driver.run cmt_roots);
    let codes = List.rev !codes in
    let worst = List.fold_left (fun acc (_, c) -> max acc c) 0 codes in
    Printf.eprintf "ecfd check: %s\n"
      (String.concat ", "
         (List.map
            (fun (tool, c) ->
              Printf.sprintf "%s %s" tool
                (match c with 0 -> "ok" | 1 -> "FINDINGS" | _ -> "ERROR"))
            codes));
    exit worst
  in
  let doc =
    "Run all four static passes (lint R-rules, analyze A-rules, alloccheck Z-rules, \
     racecheck D-rules) in one process, writing the unified findings artifacts \
     (docs/schemas/findings.schema.json) and exiting with the worst per-pass code."
  in
  Cmd.v
    (Cmd.info "check" ~doc)
    Term.(
      const run
      $ Arg.(
          value & flag
          & info [ "no-json" ]
              ~doc:"Skip writing the four *_findings.json artifacts to the current \
                    directory."))

let main =
  let doc = "Eventually consistent failure detectors (Larrea, Fernández, Arévalo) — simulator" in
  Cmd.group
    (Cmd.info "ecfd" ~doc ~version:"1.0.0")
    [
      fd_cmd; consensus_cmd; transform_cmd; sweep_cmd; trace_cmd; qos_cmd; bench_diff_cmd;
      check_cmd;
    ]

let () = exit (Cmd.eval main)
