(* Long-run soak: a replicated store under sustained traffic, repeated
   leader crashes and a partition, over tens of thousands of ticks — the
   closest this repository gets to "running it in production overnight". *)

let tc name f = Alcotest.test_case name `Slow f

module Kv = Consensus.Kv_store

let soak_tests =
  [
    tc "40k ticks, rolling leader crashes, sustained writes" (fun () ->
        let n = 7 in
        let engine = Scenario.engine ~net:{ Scenario.default_net with seed = 101 } ~n () in
        (* The first three leaders fall, spread over the run. *)
        Sim.Fault.apply engine (Sim.Fault.crashes [ (0, 4_000); (1, 14_000); (2, 24_000) ]);
        let fd = Scenario.install_detector engine Scenario.Ec_from_leader in
        let make_instance ~slot =
          let suffix = Printf.sprintf ".slot%d" slot in
          let rb =
            Broadcast.Reliable_broadcast.create
              ~component:(Broadcast.Reliable_broadcast.default_component ^ suffix)
              engine
          in
          Ecfd.Ec_consensus.install
            ~component:(Ecfd.Ec_consensus.component ^ suffix)
            engine ~fd ~rb Ecfd.Ec_consensus.default_params
        in
        let store = Kv.create ~max_slots:96 engine ~make_instance () in
        (* One write every 500 ticks from a rotating replica, 70 in all. *)
        let submitted = ref 0 in
        for i = 0 to 69 do
          let src = i mod n in
          let at = 100 + (i * 500) in
          Sim.Engine.at engine at (fun () ->
              if Sim.Engine.is_alive engine src then begin
                incr submitted;
                Kv.submit store ~src (Kv.Add { key = i mod 5; delta = 1 })
              end)
        done;
        Sim.Engine.run_until engine 60_000;
        let correct = List.filter (Sim.Engine.is_alive engine) (Sim.Pid.all ~n) in
        (* Convergence of state and of the full applied log. *)
        let reference = Kv.entries store (List.hd correct) in
        List.iter
          (fun p ->
            Alcotest.(check (list (pair int int)))
              (Printf.sprintf "%s converged" (Sim.Pid.to_string p))
              reference (Kv.entries store p))
          (List.tl correct);
        (* Every accepted write from a then-alive replica must be in. *)
        let total = List.fold_left (fun acc (_, v) -> acc + v) 0 reference in
        Alcotest.(check int) "no lost or duplicated increments" !submitted total;
        Alcotest.(check bool) "a healthy share of writes went through" true (!submitted >= 50));
    tc "a partition in the middle of the soak heals cleanly" (fun () ->
        let n = 5 in
        let base = Sim.Link.reliable ~min_delay:1 ~max_delay:6 () in
        let link =
          {
            Sim.Link.describe = "soak-partition";
            fate =
              (fun ~rng ~now ~src ~dst ->
                let crossing = src < 2 <> (dst < 2) in
                if crossing && now >= 8_000 && now < 16_000 then
                  Sim.Link.Deliver_at (16_000 + Sim.Rng.int_in_range rng ~lo:1 ~hi:8)
                else base.Sim.Link.fate ~rng ~now ~src ~dst);
            (* Held-back crossings deliver past the heal instant, which is
               always >= now + 1; the base link's bound covers the rest. *)
            min_delay = Sim.Link.min_delay_bound base;
          }
        in
        let engine = Sim.Engine.create ~seed:55 ~n ~link () in
        let fd = Scenario.install_detector engine Scenario.Ec_from_leader in
        let make_instance ~slot =
          let suffix = Printf.sprintf ".slot%d" slot in
          let rb =
            Broadcast.Reliable_broadcast.create
              ~component:(Broadcast.Reliable_broadcast.default_component ^ suffix)
              engine
          in
          Ecfd.Ec_consensus.install
            ~component:(Ecfd.Ec_consensus.component ^ suffix)
            engine ~fd ~rb Ecfd.Ec_consensus.default_params
        in
        let store = Kv.create ~max_slots:64 engine ~make_instance () in
        for i = 0 to 39 do
          let src = i mod n in
          Sim.Engine.at engine (200 + (i * 600)) (fun () ->
              Kv.submit store ~src (Kv.Add { key = 0; delta = 1 }))
        done;
        Sim.Engine.run_until engine 60_000;
        let logs = List.map (fun p -> Kv.log store p) (Sim.Pid.all ~n) in
        Alcotest.(check bool) "all five logs identical" true
          (List.for_all (( = ) (List.hd logs)) logs);
        Alcotest.(check (option int)) "all 40 increments survived" (Some 40)
          (Kv.get store 0 ~key:0));
    tc "10^6 events with 10^5 cancellations: timer table and heap stay bounded" (fun () ->
        (* The engine-core soak: timer-dominated churn (timers record no
           trace, so memory pressure is pure engine state).  Every tick each
           process arms two timers and cancels one; before the registry
           rework, each cancellation left a hashtable entry behind forever,
           so this run would have accumulated >3*10^5 dead entries. *)
        let n = 8 in
        let engine = Sim.Engine.create ~seed:7 ~n ~link:(Sim.Link.synchronous ~delay:1) () in
        let max_residency = ref 0 in
        List.iter
          (fun p ->
            ignore
              (Sim.Engine.every engine p ~phase:0 ~period:1 (fun () ->
                   let doomed = Sim.Engine.set_timer engine p ~delay:3 (fun () -> ()) in
                   ignore
                     (Sim.Engine.set_timer engine p ~delay:2 (fun () -> ())
                       : Sim.Engine.timer);
                   Sim.Engine.cancel_timer engine doomed;
                   let r = Sim.Engine.timer_residency engine in
                   if r > !max_residency then max_residency := r)
                : unit -> unit))
          (Sim.Pid.all ~n);
        let steps = ref 0 in
        while !steps < 1_000_000 && Sim.Engine.step engine do
          incr steps
        done;
        let lc = Sim.Stats.lifecycle (Sim.Engine.stats engine) in
        Alcotest.(check bool) "ran >= 10^6 events" true (lc.Sim.Stats.events_executed >= 1_000_000);
        Alcotest.(check bool)
          (Printf.sprintf "ran >= 10^5 cancellations (got %d)" lc.Sim.Stats.timers_cancelled)
          true
          (lc.Sim.Stats.timers_cancelled >= 100_000);
        (* Residency bounded by in-flight timers: at most 2 fresh timers per
           process per tick over a 3-tick window, plus the periodic driver —
           nowhere near the 3*10^5 cancellations issued. *)
        let bound = n * 7 in
        Alcotest.(check bool)
          (Printf.sprintf "timer-table residency bounded (max %d <= %d)" !max_residency bound)
          true (!max_residency <= bound);
        Alcotest.(check bool)
          (Printf.sprintf "slot reuse keeps the table small (capacity %d)"
             (Sim.Engine.timer_table_capacity engine))
          true
          (Sim.Engine.timer_table_capacity engine <= bound);
        (* Conservation: every set timer was reclaimed or is still pending. *)
        Alcotest.(check int) "set = reclaimed + resident" lc.Sim.Stats.timers_set
          (lc.Sim.Stats.timers_reclaimed + Sim.Engine.timer_residency engine);
        (* The event queue's high-water mark is a burst bound, not O(run). *)
        Alcotest.(check bool)
          (Printf.sprintf "queue high-water bounded (%d)" lc.Sim.Stats.queue_high_water)
          true
          (lc.Sim.Stats.queue_high_water <= n * 8);
        (* Mid-flight, [compact] may only tighten, never disturb: capacity
           stays within the old bound and covers everything resident. *)
        Sim.Engine.compact engine;
        Alcotest.(check bool) "mid-flight compact keeps capacity within the bound" true
          (Sim.Engine.timer_table_capacity engine <= bound
          && Sim.Engine.timer_table_capacity engine >= Sim.Engine.timer_residency engine);
        let before = (Sim.Stats.lifecycle (Sim.Engine.stats engine)).Sim.Stats.timers_fired in
        let resumed = ref 0 in
        while !resumed < 10_000 && Sim.Engine.step engine do
          incr resumed
        done;
        let after = (Sim.Stats.lifecycle (Sim.Engine.stats engine)).Sim.Stats.timers_fired in
        Alcotest.(check bool) "engine keeps firing timers after mid-flight compaction" true
          (after > before);
        (* Crash every process: the periodics stop re-arming, the remaining
           pops come up orphaned, and the registry drains to empty — at
           which point [compact] must shrink the table to the live
           residency, i.e. zero.  This is the contract a long-lived engine
           relies on: footprint tracks what is in flight now, not the
           historical high-water. *)
        List.iter
          (fun p -> Sim.Engine.schedule_crash engine p ~at:(Sim.Engine.now engine + 1))
          (Sim.Pid.all ~n);
        while Sim.Engine.step engine do
          ()
        done;
        let lc = Sim.Stats.lifecycle (Sim.Engine.stats engine) in
        Alcotest.(check bool)
          (Printf.sprintf "drain orphaned the in-flight timers (%d)" lc.Sim.Stats.timers_orphaned)
          true
          (lc.Sim.Stats.timers_orphaned > 0);
        Alcotest.(check int) "conservation after drain: set = fired + cancelled + orphaned"
          lc.Sim.Stats.timers_set
          (lc.Sim.Stats.timers_fired + lc.Sim.Stats.timers_cancelled + lc.Sim.Stats.timers_orphaned);
        Alcotest.(check int) "registry fully drained" 0 (Sim.Engine.timer_residency engine);
        Sim.Engine.compact engine;
        Alcotest.(check int) "compact shrank the drained table to live residency" 0
          (Sim.Engine.timer_table_capacity engine));
  ]

let suites = [ ("soak", soak_tests) ]
