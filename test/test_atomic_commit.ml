(* Tests of non-blocking atomic commitment over consensus (Guerraoui [10],
   the context of the paper's Section 5.1). *)

let tc name f = Alcotest.test_case name `Quick f

type detector_choice =
  | Oracle  (** Perfect: NBAC's exact non-triviality. *)
  | Transformed  (** The ◇P produced by the paper's Fig. 2 transformation. *)
  | Noisy of Sim.Pid.t  (** A scripted detector wrongly suspecting one process. *)

let run_commit ?(n = 5) ?(seed = 1) ?(crashes = Sim.Fault.none) ?(detector = Oracle)
    ~votes () =
  let engine = Scenario.engine ~net:{ Scenario.default_net with seed } ~n () in
  Sim.Fault.apply engine crashes;
  let fd =
    match detector with
    | Oracle -> Fd.Oracle_p.install engine ~schedule:crashes Fd.Oracle_p.default_params
    | Transformed ->
      (* Its own component namespace: the commit's consensus stack below
         also uses a leader detector. *)
      let base =
        Fd.Leader_s.install ~component:"fd.leader-s.nbac" engine Fd.Leader_s.default_params
      in
      let ec = Ecfd.Ec.of_leader_s base ~engine in
      Ecfd.Ec_to_p.install engine ~underlying:ec Ecfd.Ec_to_p.default_params
    | Noisy victim ->
      Fd.Scripted.install engine
        ~initial:(fun _ -> Fd.Fd_view.make ~suspected:(Sim.Pid.set_of_list [ victim ]) ())
        ~steps:[] ()
  in
  (* The commit's consensus runs on the paper's algorithm over its own ◇C
     stack (independent of the vote-collection detector). *)
  let cfd = Scenario.install_detector engine Scenario.Ec_from_leader in
  let rb = Broadcast.Reliable_broadcast.create engine in
  let consensus = Ecfd.Ec_consensus.install engine ~fd:cfd ~rb Ecfd.Ec_consensus.default_params in
  let nbac = Consensus.Atomic_commit.create engine ~fd ~consensus () in
  (* Votes are cast at t=2, after any t<=1 crash has taken effect — a
     participant dead by then never votes. *)
  List.iter
    (fun p ->
      Sim.Engine.at engine 2 (fun () ->
          if Sim.Engine.is_alive engine p then Consensus.Atomic_commit.vote nbac p (votes p)))
    (Sim.Pid.all ~n);
  Sim.Engine.run_until engine 10_000;
  (engine, nbac)

let outcomes engine nbac =
  List.filter_map
    (fun p ->
      if Sim.Engine.is_alive engine p then Consensus.Atomic_commit.outcome nbac p else None)
    (Sim.Pid.all ~n:(Sim.Engine.n engine))

let all_equal = function [] -> true | x :: rest -> List.for_all (( = ) x) rest

let nbac_tests =
  [
    tc "all Yes, no crash, perfect detector: Commit" (fun () ->
        let engine, nbac = run_commit ~votes:(fun _ -> Consensus.Atomic_commit.Yes) () in
        let os = outcomes engine nbac in
        Alcotest.(check int) "everyone decided" 5 (List.length os);
        Alcotest.(check bool) "all commit" true
          (List.for_all (( = ) Consensus.Atomic_commit.Commit) os));
    tc "a single No forces Abort" (fun () ->
        let engine, nbac =
          run_commit
            ~votes:(fun p -> if p = 3 then Consensus.Atomic_commit.No else Consensus.Atomic_commit.Yes)
            ()
        in
        let os = outcomes engine nbac in
        Alcotest.(check bool) "all abort" true
          (List.for_all (( = ) Consensus.Atomic_commit.Abort) os && os <> []));
    tc "a crashed participant forces Abort (perfect detector)" (fun () ->
        let engine, nbac =
          run_commit
            ~crashes:(Sim.Fault.crash 2 ~at:1)
            ~votes:(fun _ -> Consensus.Atomic_commit.Yes)
            ()
        in
        let os = outcomes engine nbac in
        Alcotest.(check bool) "agreed" true (all_equal os && os <> []);
        Alcotest.(check bool) "abort" true (List.hd os = Consensus.Atomic_commit.Abort));
    tc "crash after voting may still Commit — but uniformly" (fun () ->
        (* p3 votes Yes then dies: if its vote got through before the
           oracle's report, Commit is legal; either way, agreement. *)
        let engine, nbac =
          run_commit
            ~crashes:(Sim.Fault.crash 2 ~at:4)
            ~votes:(fun _ -> Consensus.Atomic_commit.Yes)
            ()
        in
        let os = outcomes engine nbac in
        Alcotest.(check bool) "non-empty and agreed" true (os <> [] && all_equal os));
    tc "over the Fig. 2 transformation: still uniform, decided by all" (fun () ->
        let engine, nbac =
          run_commit ~detector:Transformed ~crashes:(Sim.Fault.crash 4 ~at:50)
            ~votes:(fun _ -> Consensus.Atomic_commit.Yes)
            ()
        in
        let os = outcomes engine nbac in
        Alcotest.(check bool) "everyone decided" true
          (Consensus.Atomic_commit.decided_all_correct nbac);
        Alcotest.(check bool) "agreed" true (all_equal os));
    tc "false suspicion can only cost a gratuitous Abort, never disagreement" (fun () ->
        (* All vote Yes, nobody crashes, but the detector wrongly suspects
           p2: the outcome may be Abort (the <>P caveat the interface
           documents) yet must be common. *)
        let engine, nbac =
          run_commit ~detector:(Noisy 1) ~votes:(fun _ -> Consensus.Atomic_commit.Yes) ()
        in
        let os = outcomes engine nbac in
        Alcotest.(check bool) "agreed" true (all_equal os && os <> []));
    Test_util.qcheck ~count:20 ~name:"NBAC agreement + vote-validity on random runs"
      QCheck2.Gen.(tup3 (int_range 3 7) (int_range 0 10_000) (list_size (int_range 0 7) bool))
      (fun (n, seed, noes) ->
        let rng = Sim.Rng.create ~seed in
        let crashes = Sim.Fault.random_minority rng ~n ~latest:100 in
        let votes p =
          if List.nth_opt noes p = Some true then Consensus.Atomic_commit.No
          else Consensus.Atomic_commit.Yes
        in
        let engine, nbac = run_commit ~n ~seed ~crashes ~votes () in
        let os = outcomes engine nbac in
        let someone_voted_no =
          List.exists (fun p -> votes p = Consensus.Atomic_commit.No) (Sim.Pid.all ~n)
        in
        (* agreement; and commit-validity: Commit implies nobody voted No. *)
        all_equal os
        && (os = []
           || List.hd os = Consensus.Atomic_commit.Abort
           || not someone_voted_no));
  ]

let suites = [ ("consensus.nbac", nbac_tests) ]
