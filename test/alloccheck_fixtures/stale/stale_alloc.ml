(* A waiver whose span covers no finding: the Some box it once excused
   was unboxed away, so the attribute itself is reported as STALE. *)
let[@alloc.zero] root x =
  (x + 1 [@alloc.allow boxed "fixture: the Some box is gone"])
