(* Z3: bulk array construction, one call away from the root. *)
let make n = Array.make n 0

let[@alloc.zero] root n = Array.length (make n)
