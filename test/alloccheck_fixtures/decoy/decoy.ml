(* Allocates freely, but nothing here is reachable from the [@alloc.zero]
   root: the checker must stay quiet outside the root cone. *)
let build n = Array.make n (Some n)

let unrelated xs = List.map (fun x -> x + 1) xs

let[@alloc.zero] root n = n + 1
