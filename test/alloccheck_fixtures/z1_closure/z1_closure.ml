(* Z1: a closure built inside an intermediate function reachable from the
   [@alloc.zero] root — the finding's chain names the intermediate. *)
let mid n =
  let f = fun x -> x + n in
  f n

let[@alloc.zero] root n = mid n + 1
