(* Z2: boxing the result into [Some] on the hot path. *)
let[@alloc.zero] root x = if x > 0 then Some x else None
