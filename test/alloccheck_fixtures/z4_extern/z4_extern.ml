(* Z4: a call the checker cannot see through — a callback parameter. *)
let[@alloc.zero] root cb = cb 0
