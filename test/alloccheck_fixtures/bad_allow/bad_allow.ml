(* A suppression naming no registered rule key is itself a finding: it
   would otherwise silently suppress nothing. *)
let[@alloc.zero] root x = (x + 1 [@alloc.allow closures "typo: no such rule"])
