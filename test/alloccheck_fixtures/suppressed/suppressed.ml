(* The z2_boxed violation again, waived with a reasoned [@alloc.allow]. *)
let[@alloc.zero] root x =
  if x > 0 then (Some x [@alloc.allow boxed "fixture: documented waiver"]) else None
