(* A timer callback that lets an exception escape into the engine's
   event loop, without the [@analyze.may_raise] escape hatch. *)
let arm engine pid =
  ignore
    (Sim.Engine.set_timer engine pid ~delay:5 (fun () -> failwith "boom")
      : Sim.Engine.timer)
