(* Hashtbl.fold building a list that escapes in bucket order (flagged),
   next to its sorted twin (clean). *)
let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []

let keys_sorted tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort Int.compare
