(* Jobs that print: the I/O primitive is reachable from the submitted
   closure — directly, and through a helper (interprocedurally). *)
let helper x =
  print_endline "side effect";
  x + 1

let direct xs = Exec.Pool.run (List.map (fun x () -> print_string "no"; x) xs)

let transitive xs = Exec.Pool.run (List.map (fun x () -> helper x) xs)
