(* The print-in-job violation again, but justified: [@analyze.allow pure
   "reason"] on the submission expression suppresses A1 for its span. *)
let noisy xs =
  (Exec.Pool.run (List.map (fun x () -> print_endline "progress"; x) xs)
  [@analyze.allow pure "fixture: demonstrates justified suppression"])
