(* Structural equality reaching Pid.t through a let-alias and an
   eta-expansion — invisible to the syntactic R3, caught by typed A3. *)
let eq = ( = )
let same_pid (a : Sim.Pid.t) (b : Sim.Pid.t) = eq a b

let eq2 a b = eq a b
let also_same (a : Sim.Pid.t) (b : Sim.Pid.t) = eq2 a b
