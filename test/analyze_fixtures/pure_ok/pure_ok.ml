(* A pure pool job: arithmetic plus state local to the job closure.
   ecfd-analyze must report nothing here — mutation of job-local refs is
   exactly what A1 permits. *)
let squares xs =
  Exec.Pool.run
    (List.map
       (fun x () ->
         let acc = ref 0 in
         for i = 1 to x do
           acc := !acc + i
         done;
         !acc)
       xs)
