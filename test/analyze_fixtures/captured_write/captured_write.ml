(* A job that writes state captured from outside its own closure: the
   module-level counter makes the result depend on domain interleaving. *)
let counter = ref 0

let tally xs = Exec.Pool.run (List.map (fun x () -> incr counter; x) xs)
