(* Adversarial runs: the safety of consensus (uniform agreement, uniform
   integrity, validity) must not depend on the failure detector at all —
   Lemma 2's argument never uses completeness or accuracy.  We feed the
   protocols detectors that emit completely arbitrary views (random
   suspicions, random trusted processes, flipping at random instants) and
   check that safety survives; with a stabilising tail appended, liveness
   must come back too. *)

let tc name f = Alcotest.test_case name `Quick f

(* Random view-flip schedule: [steps] arbitrary (time, pid, view) updates
   drawn from the seed, over [0, chaos_until]. *)
let random_steps rng ~n ~steps ~chaos_until =
  List.init steps (fun _ ->
      let pid = Sim.Rng.int rng ~bound:n in
      let at = Sim.Rng.int rng ~bound:chaos_until in
      let suspected =
        List.filter (fun q -> q <> pid && Sim.Rng.bool rng ~p:0.4) (Sim.Pid.all ~n)
      in
      let trusted = if Sim.Rng.bool rng ~p:0.8 then Some (Sim.Rng.int rng ~bound:n) else None in
      {
        Fd.Scripted.at;
        pid;
        view = Fd.Fd_view.make ?trusted ~suspected:(Sim.Pid.set_of_list suspected) ();
      })
  |> List.sort (fun a b -> compare a.Fd.Scripted.at b.Fd.Scripted.at)

let stabilising_steps ~n ~at ~crashes =
  let crashed = Sim.Fault.faulty crashes in
  let leader =
    List.find (fun p -> not (Sim.Pid.Set.mem p crashed)) (Sim.Pid.all ~n)
  in
  List.map
    (fun p -> { Fd.Scripted.at; pid = p; view = Fd.Fd_view.make ~trusted:leader ~suspected:crashed () })
    (Sim.Pid.all ~n)

let build_run ?(max_rounds = 500) ~protocol ~n ~seed ~stabilise () =
  let rng = Sim.Rng.create ~seed in
  let crashes = Sim.Fault.random_minority rng ~n ~latest:500 in
  let chaos_until = 1500 in
  let steps =
    random_steps rng ~n ~steps:(10 + Sim.Rng.int rng ~bound:30) ~chaos_until
    @ (if stabilise then stabilising_steps ~n ~at:(chaos_until + 100) ~crashes else [])
  in
  let engine = Scenario.engine ~net:{ Scenario.default_net with seed } ~n () in
  Sim.Fault.apply engine crashes;
  let fd = Fd.Scripted.install engine ~initial:(fun _ -> Fd.Fd_view.empty) ~steps () in
  let rb = Broadcast.Reliable_broadcast.create engine in
  let instance =
    match protocol with
    | `Ec ->
      Ecfd.Ec_consensus.install engine ~fd ~rb
        { Ecfd.Ec_consensus.default_params with max_rounds }
    | `Ec_merged ->
      Ecfd.Ec_consensus.install engine ~fd ~rb
        { Ecfd.Ec_consensus.default_params with merge_phase01 = true; max_rounds }
    | `Ct -> Consensus.Ct_consensus.install ~max_rounds engine ~fd ~rb ()
    | `Mr -> Consensus.Mr_consensus.install engine ~fd ~rb ()
    | `Hr -> Consensus.Hr_consensus.install ~max_rounds engine ~fd ~rb ()
  in
  List.iter
    (fun p ->
      Sim.Engine.at engine 0 (fun () ->
          if Sim.Engine.is_alive engine p then instance.Consensus.Instance.propose p (50 + p)))
    (Sim.Pid.all ~n);
  Sim.Engine.run_until engine 12_000;
  (engine, crashes)

let proto_name = function
  | `Ec -> "ec"
  | `Ec_merged -> "ec-merged"
  | `Ct -> "ct"
  | `Mr -> "mr"
  | `Hr -> "hr"

let safety_law protocol =
  Test_util.qcheck ~count:30
    ~name:(Printf.sprintf "%s: safety under arbitrary detector garbage" (proto_name protocol))
    QCheck2.Gen.(tup2 (int_range 3 7) (int_range 0 1_000_000))
    (fun (n, seed) ->
      let engine, _ = build_run ~protocol ~n ~seed ~stabilise:false () in
      Test_util.bool_law
        (Printf.sprintf "n=%d seed=%d violations=%s" n seed
           (String.concat "; "
              (List.map
                 (Format.asprintf "%a" Spec.Consensus_props.pp_violation)
                 (Spec.Consensus_props.check_safety (Sim.Engine.trace engine)))))
        (Spec.Consensus_props.check_safety (Sim.Engine.trace engine) = []))

let liveness_law protocol =
  Test_util.qcheck ~count:20
    ~name:
      (Printf.sprintf "%s: chaos then stabilisation still terminates" (proto_name protocol))
    QCheck2.Gen.(tup2 (int_range 3 7) (int_range 0 1_000_000))
    (fun (n, seed) ->
      (* A generous round valve: chaos can legitimately burn many rounds,
         and liveness must not be cut short by the safety valve.  (The
         merged variant is excluded: a detector whose trusted process is
         also suspected livelocks it by design — that is exactly why
         Definition 1 has the coherence clause.) *)
      let engine, _ = build_run ~max_rounds:20_000 ~protocol ~n ~seed ~stabilise:true () in
      Test_util.bool_law
        (Printf.sprintf "n=%d seed=%d violations=%s" n seed
           (String.concat "; "
              (List.map
                 (Format.asprintf "%a" Spec.Consensus_props.pp_violation)
                 (Spec.Consensus_props.check_all (Sim.Engine.trace engine) ~n))))
        (Spec.Consensus_props.check_all (Sim.Engine.trace engine) ~n = []))

(* Lemma 1, empirically: in any round of the ◇C algorithm, at most one
   coordinator broadcasts a non-null proposition — each process sends its
   (non-null) estimate to exactly one coordinator, so only one can gather a
   majority.  We count distinct proposition senders per round straight off
   the trace. *)
let proposers_per_round trace =
  let table = Hashtbl.create 32 in
  Sim.Trace.iter trace (fun e ->
      match e.Sim.Trace.body with
      | Sim.Trace.Send { src; component; tag; _ }
        when String.equal component Ecfd.Ec_consensus.component -> (
        match Spec.Round_metrics.round_of_tag tag with
        | Some round when String.length tag >= 12 && String.sub tag 0 12 = "proposition." ->
          let senders = Option.value ~default:[] (Hashtbl.find_opt table round) in
          if not (List.mem src senders) then Hashtbl.replace table round (src :: senders)
        | _ -> ())
      | _ -> ());
  Hashtbl.fold (fun round senders acc -> (round, List.length senders) :: acc) table []

let lemma1_law =
  Test_util.qcheck ~count:30 ~name:"Lemma 1: one non-null proposer per round, even in chaos"
    QCheck2.Gen.(tup2 (int_range 3 7) (int_range 0 1_000_000))
    (fun (n, seed) ->
      let engine, _ = build_run ~protocol:`Ec ~n ~seed ~stabilise:true () in
      let per_round = proposers_per_round (Sim.Engine.trace engine) in
      Test_util.bool_law
        (Printf.sprintf "n=%d seed=%d offending rounds: %s" n seed
           (String.concat ", "
              (List.filter_map
                 (fun (r, k) -> if k > 1 then Some (Printf.sprintf "r%d:%d" r k) else None)
                 per_round)))
        (List.for_all (fun (_, k) -> k <= 1) per_round))

let adversarial_tests =
  [
    lemma1_law;
    safety_law `Ec;
    safety_law `Ec_merged;
    safety_law `Ct;
    safety_law `Mr;
    safety_law `Hr;
    liveness_law `Ec;
    liveness_law `Ct;
    liveness_law `Mr;
    liveness_law `Hr;
    tc "ec: leader flip in the middle of every phase" (fun () ->
        (* Deterministic needle: the detector changes its mind every few
           ticks during the first rounds — exactly when coordinators are
           announcing, proposing and collecting. *)
        let n = 5 in
        let flips =
          List.concat_map
            (fun k ->
              let leader = k mod n in
              List.map
                (fun p ->
                  {
                    Fd.Scripted.at = 3 * k;
                    pid = p;
                    view = Fd.Scripted.stable ~leader ~n p;
                  })
                (Sim.Pid.all ~n))
            (List.init 60 (fun k -> k))
        in
        let final = stabilising_steps ~n ~at:200 ~crashes:Sim.Fault.none in
        let engine = Scenario.engine ~net:{ Scenario.default_net with seed = 77 } ~n () in
        let fd =
          Fd.Scripted.install engine ~initial:(fun _ -> Fd.Fd_view.empty) ~steps:(flips @ final) ()
        in
        let rb = Broadcast.Reliable_broadcast.create engine in
        let instance =
          Ecfd.Ec_consensus.install engine ~fd ~rb
            { Ecfd.Ec_consensus.default_params with max_rounds = 500 }
        in
        List.iter (fun p -> instance.Consensus.Instance.propose p (70 + p)) (Sim.Pid.all ~n);
        Sim.Engine.run_until engine 10_000;
        Test_util.check_no_violations "leader flip storm" (Sim.Engine.trace engine) ~n);
    tc "ct: coordinator suspected by exactly half the processes" (fun () ->
        (* Split suspicion: the coordinator gathers a mix of ACKs and NACKs
           every round until the detector clears up. *)
        let n = 6 in
        let split p =
          if p < n / 2 then Fd.Fd_view.make ~suspected:(Sim.Pid.set_of_list [ 0; 1 ]) ()
          else Fd.Fd_view.empty
        in
        let final = stabilising_steps ~n ~at:400 ~crashes:Sim.Fault.none in
        let engine = Scenario.engine ~net:{ Scenario.default_net with seed = 78 } ~n () in
        let fd = Fd.Scripted.install engine ~initial:split ~steps:final () in
        let rb = Broadcast.Reliable_broadcast.create engine in
        let instance = Consensus.Ct_consensus.install ~max_rounds:500 engine ~fd ~rb () in
        List.iter (fun p -> instance.Consensus.Instance.propose p (80 + p)) (Sim.Pid.all ~n);
        Sim.Engine.run_until engine 10_000;
        Test_util.check_no_violations "split suspicion" (Sim.Engine.trace engine) ~n);
  ]

let suites = [ ("consensus.adversarial", adversarial_tests) ]
