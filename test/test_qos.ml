(* Detector QoS analytics: the Obs.Qos fold math on hand-built event
   streams, the Obs.Rollup aggregates, byte-identity of the qos rollup
   across shard counts (16 seeds), the tracequery rollup against a
   checked-in golden trace, and the sharded-engine runtime profiler. *)

let tc name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* The QoS fold on hand-built event streams                            *)
(* ------------------------------------------------------------------ *)

let pair_of (report : Obs.Qos.report) ~observer ~subject =
  List.find
    (fun (p : Obs.Qos.pair) -> p.observer = observer && p.subject = subject)
    report.Obs.Qos.pairs

let leader_of (report : Obs.Qos.report) ~observer =
  List.find (fun (l : Obs.Qos.leader) -> l.l_observer = observer) report.Obs.Qos.leaders

let view ~at ~observer ?(suspected = []) ?trusted () =
  Obs.Qos.View { at; observer; suspected; trusted }

let fold_tests =
  [
    tc "empty run: full windows, no mistakes, nothing detected" (fun () ->
        let r = Obs.Qos.of_events ~n:2 ~horizon:100 [] in
        Alcotest.(check int) "all ordered pairs" 2 (List.length r.Obs.Qos.pairs);
        List.iter
          (fun (p : Obs.Qos.pair) ->
            Alcotest.(check int) "window" 100 p.window;
            Alcotest.(check int) "up_time" 100 p.up_time;
            Alcotest.(check int) "incorrect_time" 0 p.incorrect_time;
            Alcotest.(check int) "mistakes" 0 p.mistakes;
            Alcotest.(check bool) "no detection" true (p.detection_time = None))
          r.Obs.Qos.pairs);
    tc "detected crash: TD runs from the crash to the final suspicion" (fun () ->
        let r =
          Obs.Qos.of_events ~n:2 ~horizon:100
            [
              Obs.Qos.Crash { at = 40; pid = 1 };
              view ~at:70 ~observer:0 ~suspected:[ 1 ] ();
            ]
        in
        let p = pair_of r ~observer:0 ~subject:1 in
        Alcotest.(check bool) "TD 30" true (p.detection_time = Some 30);
        Alcotest.(check bool) "crash instant" true (p.subject_crashed_at = Some 40);
        Alcotest.(check int) "up_time stops at the crash" 40 p.up_time;
        Alcotest.(check int) "outage = undetected span" 30 p.incorrect_time;
        Alcotest.(check int) "longest_outage" 30 p.longest_outage;
        Alcotest.(check int) "a post-crash suspicion is no mistake" 0 p.mistakes);
    tc "premature suspicion rescinded: one mistake, its span accrued" (fun () ->
        let r =
          Obs.Qos.of_events ~n:2 ~horizon:100
            [
              view ~at:10 ~observer:0 ~suspected:[ 1 ] ();
              view ~at:25 ~observer:0 ();
            ]
        in
        let p = pair_of r ~observer:0 ~subject:1 in
        Alcotest.(check int) "mistakes" 1 p.mistakes;
        Alcotest.(check int) "mistake_time" 15 p.mistake_time;
        Alcotest.(check int) "longest_mistake" 15 p.longest_mistake;
        Alcotest.(check int) "incorrect_time" 15 p.incorrect_time;
        Alcotest.(check int) "up_time is the full window" 100 p.up_time;
        Alcotest.(check bool) "no crash, no detection" true (p.detection_time = None));
    tc "suspicion predating the crash: TD = 0, mistake until the crash" (fun () ->
        let r =
          Obs.Qos.of_events ~n:2 ~horizon:100
            [
              view ~at:10 ~observer:0 ~suspected:[ 1 ] ();
              Obs.Qos.Crash { at = 30; pid = 1 };
            ]
        in
        let p = pair_of r ~observer:0 ~subject:1 in
        Alcotest.(check bool) "TD 0" true (p.detection_time = Some 0);
        Alcotest.(check int) "one mistake" 1 p.mistakes;
        Alcotest.(check int) "mistake truncated at the crash" 20 p.mistake_time;
        Alcotest.(check int) "incorrect only while alive-and-suspected" 20 p.incorrect_time;
        Alcotest.(check int) "up_time" 30 p.up_time);
    tc "observer crash freezes its accounting window" (fun () ->
        let r =
          Obs.Qos.of_events ~n:2 ~horizon:100 [ Obs.Qos.Crash { at = 50; pid = 0 } ]
        in
        let p01 = pair_of r ~observer:0 ~subject:1 in
        Alcotest.(check int) "window frozen at 50" 50 p01.window;
        Alcotest.(check int) "up_time" 50 p01.up_time;
        Alcotest.(check int) "incorrect_time" 0 p01.incorrect_time;
        let p10 = pair_of r ~observer:1 ~subject:0 in
        Alcotest.(check int) "live observer keeps the full window" 100 p10.window;
        Alcotest.(check bool) "subject crash seen" true (p10.subject_crashed_at = Some 50);
        Alcotest.(check bool) "never suspected: undetected" true (p10.detection_time = None);
        Alcotest.(check int) "outage to the horizon" 50 p10.incorrect_time;
        Alcotest.(check int) "longest_outage" 50 p10.longest_outage;
        let l0 = leader_of r ~observer:0 in
        Alcotest.(check int) "crashed observer's leader window freezes too" 50 l0.l_window);
    tc "leader: every transition counts, steady time is the last one" (fun () ->
        let r =
          Obs.Qos.of_events ~n:3 ~horizon:100
            [
              view ~at:0 ~observer:0 ~trusted:0 ();
              view ~at:20 ~observer:0 ~trusted:1 ();
              view ~at:20 ~observer:1 ~trusted:1 ();
            ]
        in
        let l0 = leader_of r ~observer:0 in
        Alcotest.(check int) "initial election + change" 2 l0.l_changes;
        Alcotest.(check bool) "steady at the last change" true (l0.l_steady_at = Some 20);
        Alcotest.(check bool) "final leader" true (l0.l_final = Some 1);
        let l2 = leader_of r ~observer:2 in
        Alcotest.(check int) "no output, no changes" 0 l2.l_changes;
        Alcotest.(check bool) "never elected" true (l2.l_steady_at = None));
    tc "duplicate crashes and post-crash views are ignored" (fun () ->
        let r =
          Obs.Qos.of_events ~n:2 ~horizon:100
            [
              Obs.Qos.Crash { at = 40; pid = 1 };
              Obs.Qos.Crash { at = 60; pid = 1 };
              view ~at:70 ~observer:1 ~suspected:[ 0 ] ();
            ]
        in
        let p = pair_of r ~observer:0 ~subject:1 in
        Alcotest.(check bool) "first crash instant wins" true (p.subject_crashed_at = Some 40);
        let p10 = pair_of r ~observer:1 ~subject:0 in
        Alcotest.(check int) "a dead observer's view change is dropped" 0 p10.mistakes);
  ]

(* ------------------------------------------------------------------ *)
(* Rollup aggregates                                                   *)
(* ------------------------------------------------------------------ *)

let rollup_tests =
  [
    tc "aggregate over a detected crash" (fun () ->
        let r =
          Obs.Qos.of_events ~n:2 ~horizon:100
            [
              Obs.Qos.Crash { at = 40; pid = 1 };
              view ~at:70 ~observer:0 ~suspected:[ 1 ] ();
            ]
        in
        let a = Obs.Rollup.aggregate r in
        Alcotest.(check int) "pairs" 2 a.Obs.Rollup.a_pairs;
        Alcotest.(check int) "crashed" 1 a.Obs.Rollup.a_crashed;
        Alcotest.(check int) "detected" 1 a.Obs.Rollup.a_detected;
        Alcotest.(check int) "undetected" 0 a.Obs.Rollup.a_undetected;
        Alcotest.(check bool) "mean TD" true (a.Obs.Rollup.a_detection_mean = Some 30.0);
        Alcotest.(check int) "max TD" 30 a.Obs.Rollup.a_detection_max;
        (* windows: 100 (live pair 0->1) + 40 (1->0 frozen at 1's crash);
           the only incorrect span is the 30-tick undetected outage. *)
        Alcotest.(check int) "window total" 140 a.Obs.Rollup.a_window_total;
        Alcotest.(check int) "downtime" 30 a.Obs.Rollup.a_incorrect_total;
        Alcotest.(check (float 1e-9))
          "availability %" (100.0 *. (1.0 -. (30.0 /. 140.0)))
          a.Obs.Rollup.a_availability_pct);
    tc "aggregate mistake rate and query accuracy" (fun () ->
        let r =
          Obs.Qos.of_events ~n:2 ~horizon:100
            [
              view ~at:10 ~observer:0 ~suspected:[ 1 ] ();
              view ~at:25 ~observer:0 ();
            ]
        in
        let a = Obs.Rollup.aggregate r in
        Alcotest.(check int) "one mistake" 1 a.Obs.Rollup.a_mistakes;
        Alcotest.(check int) "mistake time" 15 a.Obs.Rollup.a_mistake_time;
        Alcotest.(check int) "up time both pairs" 200 a.Obs.Rollup.a_up_time;
        Alcotest.(check (float 1e-9))
          "rate per 1k tick*pairs" (1000.0 /. 200.0) a.Obs.Rollup.a_mistake_rate_per_1k;
        Alcotest.(check (float 1e-9))
          "query accuracy" (1.0 -. (15.0 /. 200.0)) a.Obs.Rollup.a_query_accuracy);
  ]

(* ------------------------------------------------------------------ *)
(* Golden rollup over a checked-in exported trace                      *)
(* ------------------------------------------------------------------ *)

(* test/golden/TRACE_e4.jsonl is a double-crash heartbeat run in the
   shape of bench e22's e4 scenario — regenerate both files with
     ecfd trace -d heartbeat-p -p ec -n 4 --seed 4 --gst 100 --delta 8 \
       --crash 1@150 --crash 3@320 --horizon 500 -f jsonl -o TRACE_e4.jsonl
     ecfd-trace rollup TRACE_e4.jsonl > TRACE_e4.rollup.json
   after any intentional trace or rollup change, and review the diff. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let golden_rollup_tests =
  [
    tc "rollup of the checked-in e4 trace matches the golden bytes" (fun () ->
        Alcotest.(check string)
          "golden/TRACE_e4.rollup.json"
          (read_file "golden/TRACE_e4.rollup.json")
          (Tracequery_core.Qos_rollup.of_lines
             (Tracequery_core.Trace_file.read_lines "golden/TRACE_e4.jsonl")));
    tc "the golden rollup sees both crashes" (fun () ->
        let json = read_file "golden/TRACE_e4.rollup.json" in
        let j = Tracequery_core.Json_min.parse json in
        match Tracequery_core.Json_min.member "scenarios" j with
        | Some (Tracequery_core.Json_min.List [ s ]) -> (
          match Tracequery_core.Json_min.member "detection" s with
          | Some d ->
            Alcotest.(check int)
              "6 of 12 ordered pairs have a crashed subject" 6
              (Tracequery_core.Json_min.int_field d "crashed_pairs" ~default:(-1))
          | None -> Alcotest.fail "scenario lacks a detection object")
        | _ -> Alcotest.fail "expected exactly one scenario");
  ]

(* ------------------------------------------------------------------ *)
(* Shard-count independence of the rollup bytes                        *)
(* ------------------------------------------------------------------ *)

let qos_json ~seed ~shards =
  Sim.Shard.with_shards shards (fun () ->
      let n = 4 and horizon = 900 in
      let handle, fdrun, _stats =
        Scenario.fd_run
          ~net:{ (Scenario.chaotic_net ~seed ~gst:150 ()) with delta = 8 }
          ~crashes:(Sim.Fault.crashes [ (1, 300) ])
          ~horizon ~n ~detector:Scenario.Heartbeat_p ()
      in
      let component = Fd.Fd_handle.component handle in
      let report =
        Sim.Trace_qos.report ~component ~n ~horizon fdrun.Spec.Fd_props.trace
      in
      Obs.Rollup.to_json [ { Obs.Rollup.name = "prop"; component; report } ])

let determinism_tests =
  [
    tc "qos rollup bytes are shard-count independent (16 seeds)" (fun () ->
        for seed = 0 to 15 do
          Alcotest.(check string)
            (Printf.sprintf "seed %d: shards 1 = shards 4" seed)
            (qos_json ~seed ~shards:1) (qos_json ~seed ~shards:4)
        done);
  ]

(* ------------------------------------------------------------------ *)
(* The sharded-engine runtime profiler                                 *)
(* ------------------------------------------------------------------ *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let profiled_run () =
  Scenario.run_consensus
    ~net:{ (Scenario.chaotic_net ~seed:7 ~gst:50 ()) with delta = 8 }
    ~crashes:(Sim.Fault.crashes []) ~horizon:400 ~n:4
    ~detector:Scenario.Heartbeat_p
    ~protocol:(Scenario.Ec Ecfd.Ec_consensus.default_params) ()

let profiler_tests =
  [
    tc "profiling is off by default: no windows recorded" (fun () ->
        Sim.Shard.with_shards 4 (fun () ->
            let r = profiled_run () in
            Alcotest.(check bool)
              "empty" true
              (Sim.Engine.profiler_windows r.Scenario.engine = [])));
    tc "profile + shards: windows recorded, chrome export gains the track" (fun () ->
        Sim.Shard.with_profile true (fun () ->
            Sim.Shard.with_shards 4 (fun () ->
                let r = profiled_run () in
                let ws = Sim.Engine.profiler_windows r.Scenario.engine in
                Alcotest.(check bool) "windows recorded" true (ws <> []);
                List.iter
                  (fun (w : Sim.Shard.window_profile) ->
                    Alcotest.(check bool)
                      "window spans forward" true
                      (w.wp_until > w.wp_from);
                    Alcotest.(check bool)
                      "per-shard arrays sized alike" true
                      (Array.length w.wp_events = Array.length w.wp_ops_words
                      && Array.length w.wp_events = Array.length w.wp_busy_s))
                  ws;
                let chrome =
                  Sim.Trace_export.chrome_string ~profiler:ws r.Scenario.trace
                in
                Alcotest.(check bool)
                  "profiler process present" true
                  (contains ~needle:"engine profiler" chrome);
                Alcotest.(check bool)
                  "profiler slices present" true
                  (contains ~needle:"\"cat\":\"profiler\"" chrome))));
    tc "profiling does not perturb the trace bytes" (fun () ->
        let bytes profile =
          Sim.Shard.with_profile profile (fun () ->
              Sim.Shard.with_shards 4 (fun () ->
                  Sim.Trace_export.jsonl_string (profiled_run ()).Scenario.trace))
        in
        Alcotest.(check string) "on = off" (bytes false) (bytes true));
  ]

let suites =
  [
    ("qos.fold", fold_tests);
    ("qos.rollup", rollup_tests);
    ("qos.golden_rollup", golden_rollup_tests);
    ("qos.determinism", determinism_tests);
    ("qos.profiler", profiler_tests);
  ]
