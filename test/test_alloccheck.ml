(* In-process coverage of ecfd-alloccheck (tools/alloccheck): each Z-rule
   is demonstrated on a seeded-violation fixture library under
   alloccheck_fixtures/ with exact expected findings (rule, file, line),
   so disabling or breaking any single rule fails its test — mirroring
   test_analyze.ml for the A-rules.  The fixtures are real dune libraries:
   the checker reads the .cmt files their compilation produced, exactly as
   `dune build @alloccheck` does for lib/ and bench/. *)

let run paths =
  let findings = (Alloccheck_core.Driver.run paths).Check_common.Cmt_driver.findings in
  List.map (fun (f : Check_common.Finding.t) -> (f.rule, f.file, f.line)) findings

let fixture name = Filename.concat "alloccheck_fixtures" name

(* Locations inside .cmt files are relative to the build root. *)
let src case file = Printf.sprintf "test/alloccheck_fixtures/%s/%s" case file

let check_findings ~expected paths () =
  Alcotest.(check (list (triple string string int)))
    "findings (rule, file, line)" expected (run paths)

let test_z1_closure =
  (* The closure on line 4 lives in [mid], one call below the annotated
     root: the interprocedural half.  The chain in the message must name
     the intermediate. *)
  check_findings
    [ fixture "z1_closure" ]
    ~expected:[ ("Z1", src "z1_closure" "z1_closure.ml", 4) ]

let test_z1_chain_names_intermediate () =
  let findings = (Alloccheck_core.Driver.run [ fixture "z1_closure" ]).Check_common.Cmt_driver.findings in
  match findings with
  | [ f ] ->
    let mentions sub =
      let n = String.length f.msg and m = String.length sub in
      let rec go i = i + m <= n && (String.sub f.msg i m = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "message names the root" true (mentions "Z1_closure.root");
    Alcotest.(check bool)
      "message names the intermediate" true
      (mentions "via Z1_closure.mid")
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs)

let test_z2_boxed =
  check_findings
    [ fixture "z2_boxed" ]
    ~expected:[ ("Z2", src "z2_boxed" "z2_boxed.ml", 2) ]

let test_z3_bulk =
  check_findings
    [ fixture "z3_bulk" ]
    ~expected:[ ("Z3", src "z3_bulk" "z3_bulk.ml", 2) ]

let test_z4_extern =
  check_findings
    [ fixture "z4_extern" ]
    ~expected:[ ("Z4", src "z4_extern" "z4_extern.ml", 2) ]

let test_decoy =
  (* Allocations outside the root cone are not the checker's business. *)
  check_findings [ fixture "decoy" ] ~expected:[]

let test_suppressed =
  (* The z2_boxed violation again, under [@alloc.allow boxed "..."]. *)
  check_findings [ fixture "suppressed" ] ~expected:[]

let test_stale =
  (* An [@alloc.allow] span in the root cone covering no finding is
     itself reported. *)
  check_findings
    [ fixture "stale" ]
    ~expected:[ ("STALE", src "stale" "stale_alloc.ml", 4) ]

let test_bad_allow =
  (* An allow naming an unregistered rule key is itself reported. *)
  check_findings
    [ fixture "bad_allow" ]
    ~expected:[ ("ALLOC", src "bad_allow" "bad_allow.ml", 3) ]

let test_whole_directory () =
  (* All fixtures at once, via the same recursive .cmt walk the dune
     @alloccheck alias uses. *)
  Alcotest.(check int)
    "total findings over alloccheck_fixtures/" 6
    (List.length (run [ "alloccheck_fixtures" ]))

let test_registry () =
  let open Alloccheck_core in
  let ids = List.map (fun (r : Zrule.t) -> r.id) Registry.all in
  Alcotest.(check (list string)) "rule ids" [ "Z1"; "Z2"; "Z3"; "Z4" ] ids;
  let keys = List.map (fun (r : Zrule.t) -> r.key) Registry.all in
  Alcotest.(check int)
    "suppression keys are unique"
    (List.length keys)
    (List.length (List.sort_uniq String.compare keys))

let test_static_roots_parser () =
  let json =
    {|{ "minor_words_per_event_budget": 0.01,
        "static_roots": [ "Sim.Engine.step", "Sim.Heap.pop_exn" ],
        "note": "x" }|}
  in
  (match Alloccheck_core.Roots_check.static_roots_of_string json with
  | Ok roots ->
    Alcotest.(check (list string))
      "parsed roots" [ "Sim.Engine.step"; "Sim.Heap.pop_exn" ] roots
  | Error msg -> Alcotest.failf "parse failed: %s" msg);
  match Alloccheck_core.Roots_check.static_roots_of_string "{}" with
  | Ok _ -> Alcotest.fail "missing key must be an error"
  | Error _ -> ()

let suites =
  [
    ( "alloccheck",
      [
        Alcotest.test_case "Z1: closure via intermediate flagged" `Quick test_z1_closure;
        Alcotest.test_case "Z1: chain message names root and intermediate" `Quick
          test_z1_chain_names_intermediate;
        Alcotest.test_case "Z2: Some-boxing flagged" `Quick test_z2_boxed;
        Alcotest.test_case "Z3: Array.make via helper flagged" `Quick test_z3_bulk;
        Alcotest.test_case "Z4: unknown callback call flagged" `Quick test_z4_extern;
        Alcotest.test_case "decoy: allocations outside the root cone ignored" `Quick
          test_decoy;
        Alcotest.test_case "[@alloc.allow] suppresses with a reason" `Quick
          test_suppressed;
        Alcotest.test_case "unknown allow key is itself a finding" `Quick test_bad_allow;
        Alcotest.test_case "stale [@alloc.allow] is itself a finding" `Quick test_stale;
        Alcotest.test_case "directory walk finds every seeded violation" `Quick
          test_whole_directory;
        Alcotest.test_case "registry lists Z1-Z4 with unique keys" `Quick test_registry;
        Alcotest.test_case "static_roots budget parser round-trips" `Quick
          test_static_roots_parser;
      ] );
  ]
