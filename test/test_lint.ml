(* In-process coverage of the ecfd-lint analyzer (tools/lint): each rule
   R1-R6 is demonstrated on a seeded-violation fixture under
   lint_fixtures/ with exact expected findings, so disabling or breaking
   any single rule fails its test.  Suppression and the mandatory reason
   string are covered the same way. *)

let run paths =
  List.map (fun (f : Lint_core.Finding.t) -> (f.rule, f.line)) (Lint_core.Driver.run paths)

let fixture name = Filename.concat "lint_fixtures" name

let check_findings ~expected paths () =
  Alcotest.(check (list (pair string int))) "findings (rule, line)" expected (run paths)

let test_r1_ambient =
  check_findings
    [ fixture "ambient_bad.ml" ]
    ~expected:[ ("R1", 3); ("R1", 4); ("R1", 5); ("R1", 6); ("R1", 7) ]

(* Multicore-primitive confinement moved to ecfd-racecheck's D4
   (test_racecheck.ml covers the boundary, including the decoy shard.ml);
   R1 keeps only the ambient-nondeterminism core. *)

let test_r1_rng_exemption =
  (* The R1 exemption is the exact path lib/sim/rng.ml: the real path's
     Random use passes, a decoy rng.ml under bench/ is flagged. *)
  check_findings [ fixture "decoy_rng_case" ] ~expected:[ ("R1", 4) ]

let test_r2_unordered =
  check_findings
    [ fixture "unordered_bad.ml" ]
    ~expected:[ ("R2", 4); ("R2", 7); ("R2", 12) ]

let test_r3_polycmp =
  check_findings
    [ fixture "polycmp_bad.ml" ]
    ~expected:[ ("R3", 8); ("R3", 9); ("R3", 10); ("R3", 11) ]

let test_r4_payload =
  check_findings [ fixture "payload_bad.ml" ] ~expected:[ ("R4", 6); ("R4", 7) ]

let test_r5_mli = check_findings [ fixture "mli_case" ] ~expected:[ ("R5", 1) ]

let test_r6_obsname =
  (* Computed ~name arguments to the Obs registration points and to
     Engine.begin_span; the literal sites and the [@lint.allow obsname]
     site at the bottom of the fixture stay silent. *)
  check_findings
    [ fixture "obsname_bad.ml" ]
    ~expected:[ ("R6", 2); ("R6", 3); ("R6", 6); ("R6", 8) ]

let test_suppressed = check_findings [ fixture "allowed.ml" ] ~expected:[]

let test_missing_reason =
  check_findings [ fixture "missing_reason.ml" ] ~expected:[ ("R1", 5); ("LINT", 5) ]

let test_unknown_key =
  (* A key no registered rule owns would suppress nothing — report the
     suppression itself and keep the underlying finding. *)
  check_findings [ fixture "unknown_key.ml" ] ~expected:[ ("R1", 5); ("LINT", 5) ]

let test_stale =
  (* A [@lint.allow] span covering no finding is itself reported. *)
  check_findings [ fixture "stale_allow.ml" ] ~expected:[ ("STALE", 3) ]

let test_whole_directory () =
  (* All fixtures at once: the per-file expectations above, via the same
     directory walk the dune @lint alias uses. *)
  Alcotest.(check int) "total findings over lint_fixtures/" 25
    (List.length (run [ "lint_fixtures" ]))

let test_registry () =
  let ids = List.map (fun (r : Lint_core.Rules.t) -> r.id) Lint_core.Registry.all in
  Alcotest.(check (list string)) "rule ids" [ "R1"; "R2"; "R3"; "R4"; "R5"; "R6" ] ids;
  let keys = List.map (fun (r : Lint_core.Rules.t) -> r.key) Lint_core.Registry.all in
  Alcotest.(check (list string))
    "suppression keys are unique" keys
    (List.sort_uniq String.compare keys |> fun sorted ->
     List.filter (fun k -> List.mem k sorted) keys)

let suites =
  [
    ( "lint",
      [
        Alcotest.test_case "R1: ambient nondeterminism fixture" `Quick test_r1_ambient;
        Alcotest.test_case "R1: rng.ml exemption is by exact path" `Quick
          test_r1_rng_exemption;
        Alcotest.test_case "R2: unordered-escape fixture" `Quick test_r2_unordered;
        Alcotest.test_case "R3: polymorphic-compare fixture" `Quick test_r3_polycmp;
        Alcotest.test_case "R4: payload-hygiene fixture" `Quick test_r4_payload;
        Alcotest.test_case "R5: missing-mli fixture" `Quick test_r5_mli;
        Alcotest.test_case "R6: computed-observability-name fixture" `Quick
          test_r6_obsname;
        Alcotest.test_case "[@lint.allow] suppresses with a reason" `Quick test_suppressed;
        Alcotest.test_case "[@lint.allow] without a reason is reported" `Quick
          test_missing_reason;
        Alcotest.test_case "[@lint.allow] with an unknown rule key is reported" `Quick
          test_unknown_key;
        Alcotest.test_case "stale [@lint.allow] is itself a finding" `Quick test_stale;
        Alcotest.test_case "directory walk finds every seeded violation" `Quick
          test_whole_directory;
        Alcotest.test_case "registry lists R1-R6 with unique keys" `Quick test_registry;
      ] );
  ]
