(* Unit tests of the property checkers, on hand-built traces: the checkers
   are the judges of everything else, so they get direct scrutiny. *)

let tc name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Eventually                                                         *)
(* ------------------------------------------------------------------ *)

let eventually_tests =
  [
    tc "stabilization on a piecewise signal" (fun () ->
        let tl = [ (0, false); (5, true); (9, false); (12, true); (20, true) ] in
        Alcotest.(check (option int)) "stabilizes at 12" (Some 12)
          (Spec.Eventually.stabilization Fun.id tl));
    tc "false at the end means no stabilization" (fun () ->
        let tl = [ (0, true); (10, false) ] in
        Alcotest.(check (option int)) "none" None (Spec.Eventually.stabilization Fun.id tl));
    tc "true throughout stabilizes at the first instant" (fun () ->
        let tl = [ (0, true); (3, true) ] in
        Alcotest.(check (option int)) "0" (Some 0) (Spec.Eventually.stabilization Fun.id tl));
    tc "empty timeline never stabilizes" (fun () ->
        Alcotest.(check (option int)) "none" None (Spec.Eventually.stabilization Fun.id []));
    tc "all / any combinators" (fun () ->
        Alcotest.(check (option int)) "all picks the max" (Some 9)
          (Spec.Eventually.all [ Some 3; Some 9; Some 1 ]);
        Alcotest.(check (option int)) "all with a failure" None
          (Spec.Eventually.all [ Some 3; None ]);
        Alcotest.(check (option int)) "all of nothing is vacuous" (Some 0)
          (Spec.Eventually.all []);
        Alcotest.(check (option int)) "any picks the min" (Some 1)
          (Spec.Eventually.any [ Some 3; None; Some 1 ]);
        Alcotest.(check (option int)) "any of nothing fails" None (Spec.Eventually.any []));
  ]

(* ------------------------------------------------------------------ *)
(* Fd_props on synthetic traces                                       *)
(* ------------------------------------------------------------------ *)

let comp = "fd.test"

let view ~at ~pid ?trusted suspected =
  Sim.Trace.Fd_view
    { at; pid; component = comp; suspected = Sim.Pid.set_of_list suspected; trusted }

let trace_of events =
  let t = Sim.Trace.create () in
  List.iter (Sim.Trace.record t) events;
  t

(* Scenario: n = 3; p3 crashes at t=10.  p1 and p2 eventually suspect it
   and trust each... p1. *)
let good_trace =
  trace_of
    [
      view ~at:0 ~pid:0 ~trusted:0 [];
      view ~at:0 ~pid:1 ~trusted:0 [];
      view ~at:0 ~pid:2 ~trusted:0 [];
      Sim.Trace.Crash { at = 10; pid = 2 };
      view ~at:12 ~pid:0 ~trusted:0 [ 2 ];
      view ~at:15 ~pid:1 ~trusted:0 [ 2 ];
    ]

let good_run = Spec.Fd_props.make_run ~component:comp ~n:3 good_trace

let fd_props_tests =
  [
    tc "correct/crashed partition" (fun () ->
        Alcotest.(check (list int)) "correct" [ 0; 1 ] (Spec.Fd_props.correct_processes good_run);
        Alcotest.(check (list int)) "crashed" [ 2 ] (Spec.Fd_props.crashed_processes good_run));
    tc "strong completeness holds with its stabilization time" (fun () ->
        let r = Spec.Fd_props.strong_completeness good_run in
        Alcotest.(check bool) "holds" true r.holds;
        Alcotest.(check (option int)) "since the later suspector" (Some 15) r.since);
    tc "accuracy holds (nobody suspects a correct process)" (fun () ->
        Alcotest.(check bool) "strong accuracy" true
          (Spec.Fd_props.eventual_strong_accuracy good_run).holds);
    tc "leadership holds on a common trusted process" (fun () ->
        Alcotest.(check bool) "holds" true (Spec.Fd_props.leadership good_run).holds;
        Alcotest.(check (option int)) "leader" (Some 0) (Spec.Fd_props.eventual_leader good_run));
    tc "the full class <>C is recognized" (fun () ->
        Alcotest.(check bool) "ec" true (Spec.Fd_props.satisfies_class Fd.Classes.Ec good_run));
    tc "strong completeness fails if one observer never suspects" (fun () ->
        let t =
          trace_of
            [
              view ~at:0 ~pid:0 ~trusted:0 [];
              view ~at:0 ~pid:1 ~trusted:0 [];
              view ~at:0 ~pid:2 ~trusted:0 [];
              Sim.Trace.Crash { at = 10; pid = 2 };
              view ~at:12 ~pid:0 ~trusted:0 [ 2 ];
              (* p2 (observer pid 1) never suspects. *)
            ]
        in
        let run = Spec.Fd_props.make_run ~component:comp ~n:3 t in
        Alcotest.(check bool) "strong fails" false (Spec.Fd_props.strong_completeness run).holds;
        Alcotest.(check bool) "weak holds" true (Spec.Fd_props.weak_completeness run).holds);
    tc "suspicion withdrawn at the end violates completeness" (fun () ->
        let t =
          trace_of
            [
              view ~at:0 ~pid:0 ~trusted:0 [];
              view ~at:0 ~pid:1 ~trusted:0 [];
              Sim.Trace.Crash { at = 10; pid = 1 };
              view ~at:12 ~pid:0 ~trusted:0 [ 1 ];
              view ~at:30 ~pid:0 ~trusted:0 [];
            ]
        in
        let run = Spec.Fd_props.make_run ~component:comp ~n:2 t in
        Alcotest.(check bool) "not permanent" false
          (Spec.Fd_props.strong_completeness run).holds);
    tc "accuracy fails on a permanent false suspicion" (fun () ->
        let t =
          trace_of
            [
              view ~at:0 ~pid:0 ~trusted:0 [ 1 ];
              view ~at:0 ~pid:1 ~trusted:0 [];
            ]
        in
        let run = Spec.Fd_props.make_run ~component:comp ~n:2 t in
        Alcotest.(check bool) "strong accuracy fails" false
          (Spec.Fd_props.eventual_strong_accuracy run).holds;
        (* ... but weak accuracy holds via p1, never suspected. *)
        Alcotest.(check bool) "weak accuracy holds" true
          (Spec.Fd_props.eventual_weak_accuracy run).holds);
    tc "leadership fails on split trust" (fun () ->
        let t =
          trace_of
            [
              view ~at:0 ~pid:0 ~trusted:0 [];
              view ~at:0 ~pid:1 ~trusted:1 [];
            ]
        in
        let run = Spec.Fd_props.make_run ~component:comp ~n:2 t in
        Alcotest.(check bool) "no common leader" false (Spec.Fd_props.leadership run).holds);
    tc "leadership fails when the common leader is crashed" (fun () ->
        let t =
          trace_of
            [
              Sim.Trace.Crash { at = 5; pid = 1 };
              view ~at:0 ~pid:0 ~trusted:1 [];
              view ~at:0 ~pid:2 ~trusted:1 [];
            ]
        in
        let run = Spec.Fd_props.make_run ~component:comp ~n:3 t in
        Alcotest.(check bool) "dead leader" false (Spec.Fd_props.leadership run).holds);
    tc "trusted-not-suspected detects violations" (fun () ->
        let t =
          trace_of
            [
              view ~at:0 ~pid:0 ~trusted:1 [ 1 ];
              view ~at:0 ~pid:1 ~trusted:1 [];
            ]
        in
        let run = Spec.Fd_props.make_run ~component:comp ~n:2 t in
        Alcotest.(check bool) "violated" false (Spec.Fd_props.trusted_not_suspected run).holds);
    tc "detection_time is the last suspector's instant" (fun () ->
        Alcotest.(check (option int)) "15" (Some 15)
          (Spec.Fd_props.detection_time good_run ~victim:2));
  ]

(* ------------------------------------------------------------------ *)
(* Consensus_props on synthetic traces                                *)
(* ------------------------------------------------------------------ *)

let propose ~at ~pid value = Sim.Trace.Propose { at; pid; value }
let decide ~at ~pid ~round value = Sim.Trace.Decide { at; pid; value; round }

let consensus_props_tests =
  [
    tc "a clean run has no violations" (fun () ->
        let t =
          trace_of
            [
              propose ~at:0 ~pid:0 7;
              propose ~at:0 ~pid:1 9;
              decide ~at:5 ~pid:0 ~round:1 9;
              decide ~at:6 ~pid:1 ~round:1 9;
            ]
        in
        Alcotest.(check int) "none" 0 (List.length (Spec.Consensus_props.check_all t ~n:2)));
    tc "termination: a silent correct process is reported" (fun () ->
        let t = trace_of [ propose ~at:0 ~pid:0 7; decide ~at:5 ~pid:0 ~round:1 7 ] in
        Alcotest.(check int) "one violation" 1
          (List.length (Spec.Consensus_props.termination t ~n:2)));
    tc "termination: crashed processes are excused" (fun () ->
        let t =
          trace_of
            [
              propose ~at:0 ~pid:0 7;
              Sim.Trace.Crash { at = 2; pid = 1 };
              decide ~at:5 ~pid:0 ~round:1 7;
            ]
        in
        Alcotest.(check int) "none" 0 (List.length (Spec.Consensus_props.termination t ~n:2)));
    tc "uniform agreement catches disagreement, even by a faulty process" (fun () ->
        let t =
          trace_of
            [
              propose ~at:0 ~pid:0 7;
              propose ~at:0 ~pid:1 8;
              decide ~at:4 ~pid:1 ~round:1 8;
              Sim.Trace.Crash { at = 5; pid = 1 };
              decide ~at:6 ~pid:0 ~round:2 7;
            ]
        in
        Alcotest.(check int) "one violation" 1
          (List.length (Spec.Consensus_props.uniform_agreement t)));
    tc "uniform integrity catches double decision" (fun () ->
        let t =
          trace_of
            [ propose ~at:0 ~pid:0 7; decide ~at:4 ~pid:0 ~round:1 7; decide ~at:5 ~pid:0 ~round:2 7 ]
        in
        Alcotest.(check int) "one violation" 1
          (List.length (Spec.Consensus_props.uniform_integrity t)));
    tc "validity catches an invented value" (fun () ->
        let t = trace_of [ propose ~at:0 ~pid:0 7; decide ~at:4 ~pid:0 ~round:1 13 ] in
        Alcotest.(check int) "one violation" 1 (List.length (Spec.Consensus_props.validity t)));
    tc "metrics" (fun () ->
        let t =
          trace_of
            [
              propose ~at:0 ~pid:0 7;
              decide ~at:4 ~pid:0 ~round:1 7;
              decide ~at:9 ~pid:1 ~round:3 7;
            ]
        in
        Alcotest.(check (option int)) "round" (Some 3) (Spec.Consensus_props.decision_round t);
        Alcotest.(check (option int)) "first" (Some 4) (Spec.Consensus_props.first_decision_time t);
        Alcotest.(check (option int)) "last" (Some 9) (Spec.Consensus_props.last_decision_time t));
  ]

(* ------------------------------------------------------------------ *)
(* Round_metrics                                                      *)
(* ------------------------------------------------------------------ *)

let send ~at ~tag = Sim.Trace.Send { at; src = 0; dst = 1; msg = 0; component = "c"; tag }

let round_metrics_tests =
  [
    tc "round parsing" (fun () ->
        Alcotest.(check (option int)) "r3" (Some 3) (Spec.Round_metrics.round_of_tag "ack.r3");
        Alcotest.(check (option int)) "plain" None (Spec.Round_metrics.round_of_tag "ack");
        Alcotest.(check (option int)) "dotted" None (Spec.Round_metrics.round_of_tag "a.b"));
    tc "per-round and per-tag aggregation" (fun () ->
        let t =
          trace_of
            [
              send ~at:0 ~tag:"est.r1";
              send ~at:1 ~tag:"est.r1";
              send ~at:2 ~tag:"ack.r1";
              send ~at:3 ~tag:"est.r2";
              Sim.Trace.Send { at = 4; src = 0; dst = 1; msg = 0; component = "other"; tag = "est.r1" };
            ]
        in
        Alcotest.(check (list (pair int int))) "by round" [ (1, 3); (2, 1) ]
          (Spec.Round_metrics.sends_by_round t ~component:"c");
        Alcotest.(check int) "round 1" 3 (Spec.Round_metrics.sends_in_round t ~component:"c" ~round:1);
        Alcotest.(check (list (pair string int))) "by tag" [ ("ack", 1); ("est", 2) ]
          (Spec.Round_metrics.sends_by_tag_in_round t ~component:"c" ~round:1));
  ]

(* ------------------------------------------------------------------ *)
(* Timeline rendering                                                 *)
(* ------------------------------------------------------------------ *)

let timeline_tests =
  [
    tc "leadership cells show self, peer, crash" (fun () ->
        let t =
          trace_of
            [
              view ~at:0 ~pid:0 ~trusted:0 [];
              view ~at:0 ~pid:1 ~trusted:0 [];
              Sim.Trace.Crash { at = 50; pid = 0 };
              view ~at:60 ~pid:1 ~trusted:1 [];
            ]
        in
        let run = Spec.Fd_props.make_run ~component:comp ~n:2 t in
        let out = Spec.Timeline.render_leadership ~width:10 run ~horizon:100 in
        let lines = String.split_on_char '\n' out in
        let p1 = List.nth lines 0 and p2 = List.nth lines 1 in
        Alcotest.(check bool) "p1 leads itself then crashes" true
          (String.length p1 > 8
          && String.contains p1 '*'
          && String.contains p1 'X');
        Alcotest.(check bool) "p2 trusts p1 then itself" true
          (String.contains p2 '1' && String.contains p2 '*'));
    tc "suspicion cells count suspects" (fun () ->
        let t =
          trace_of
            [ view ~at:0 ~pid:0 ~trusted:0 [ 1 ]; view ~at:0 ~pid:1 ~trusted:0 [] ]
        in
        let run = Spec.Fd_props.make_run ~component:comp ~n:2 t in
        let out = Spec.Timeline.render_suspicions ~width:8 run ~horizon:80 in
        let lines = String.split_on_char '\n' out in
        Alcotest.(check bool) "p1 shows 1" true (String.contains (List.nth lines 0) '1');
        Alcotest.(check bool) "p2 shows 0" true (String.contains (List.nth lines 1) '0'));
    tc "decision cells move . -> p -> D" (fun () ->
        let t =
          trace_of [ propose ~at:10 ~pid:0 7; decide ~at:50 ~pid:0 ~round:1 7 ]
        in
        let out = Spec.Timeline.render_decisions ~width:10 t ~n:1 ~horizon:100 in
        let line = List.nth (String.split_on_char '\n' out) 0 in
        (* keep only the cells between the pipes: the label also has a 'p' *)
        let bar = String.index line '|' in
        let row = String.sub line (bar + 1) (String.rindex line '|' - bar - 1) in
        (* columns: 0 '.', 1.. 'p', 5.. 'D' *)
        Alcotest.(check bool) "shape" true
          (String.contains row '.' && String.contains row 'p' && String.contains row 'D');
        let dot = String.index row '.' and p = String.index row 'p' and d = String.index row 'D' in
        Alcotest.(check bool) "ordered" true (dot < p && p < d));
    tc "rows are horizon-aligned and one per process" (fun () ->
        let t =
          trace_of [ view ~at:0 ~pid:0 ~trusted:0 []; view ~at:0 ~pid:1 ~trusted:0 [] ]
        in
        let run = Spec.Fd_props.make_run ~component:comp ~n:2 t in
        let out = Spec.Timeline.render_leadership ~width:20 run ~horizon:100 in
        let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' out) in
        Alcotest.(check int) "2 rows + axis" 3 (List.length lines));
  ]

(* ------------------------------------------------------------------ *)
(* Link_metrics                                                       *)
(* ------------------------------------------------------------------ *)

let send_on ~at ~src ~dst ~component =
  Sim.Trace.Send { at; src; dst; msg = 0; component; tag = "x" }

let link_metrics_tests =
  [
    tc "active_links: window and component filtering, dedup, order" (fun () ->
        let t =
          trace_of
            [
              send_on ~at:5 ~src:0 ~dst:1 ~component:"a";
              send_on ~at:6 ~src:0 ~dst:1 ~component:"a";
              send_on ~at:7 ~src:1 ~dst:0 ~component:"a";
              send_on ~at:8 ~src:2 ~dst:0 ~component:"b";
              send_on ~at:99 ~src:3 ~dst:0 ~component:"a";
            ]
        in
        Alcotest.(check (list (pair int int)))
          "deduped, in-window, component a" [ (0, 1); (1, 0) ]
          (Spec.Link_metrics.active_links t ~components:[ "a" ] ~from_t:0 ~to_t:50));
    tc "star_of is the 2(n-1) leader star" (fun () ->
        let star = Spec.Link_metrics.star_of ~leader:1 ~n:3 in
        Alcotest.(check (list (pair int int))) "star"
          [ (0, 1); (1, 0); (1, 2); (2, 1) ]
          star);
  ]

(* ------------------------------------------------------------------ *)
(* Clock_props                                                        *)
(* ------------------------------------------------------------------ *)

let n_violations = List.length

let clock_props_tests =
  [
    tc "recorded traces are causally consistent" (fun () ->
        let t = Sim.Trace.create () in
        Sim.Trace.record t (Sim.Trace.Propose { at = 0; pid = 0; value = 7 });
        Sim.Trace.record t
          (Sim.Trace.Send { at = 1; src = 0; dst = 1; msg = 5; component = "c"; tag = "x" });
        Sim.Trace.record t
          (Sim.Trace.Deliver { at = 3; src = 0; dst = 1; msg = 5; component = "c"; tag = "x" });
        Sim.Trace.record t (Sim.Trace.Crash { at = 4; pid = 1 });
        Alcotest.(check int) "clean" 0 (n_violations (Spec.Clock_props.check t)));
    tc "a full consensus run is causally consistent" (fun () ->
        let r =
          Scenario.run_consensus ~net:{ Scenario.default_net with seed = 2 } ~n:5
            ~detector:(Scenario.Scripted_stable 0)
            ~protocol:(Scenario.Ec Ecfd.Ec_consensus.default_params) ()
        in
        Alcotest.(check (list string)) "clean" []
          (List.map
             (Format.asprintf "%a" Spec.Clock_props.pp_violation)
             (Spec.Clock_props.check r.trace)));
    tc "deliver stamped at or before its send is flagged" (fun () ->
        let events =
          [
            {
              Sim.Trace.seq = 0;
              lc = 4;
              body = Sim.Trace.Send { at = 1; src = 0; dst = 1; msg = 9; component = "c"; tag = "x" };
            };
            {
              Sim.Trace.seq = 1;
              lc = 4;
              body =
                Sim.Trace.Deliver { at = 2; src = 0; dst = 1; msg = 9; component = "c"; tag = "x" };
            };
          ]
        in
        match Spec.Clock_props.check_events events with
        | [ Spec.Clock_props.Causality_violation { msg = 9; send_lc = 4; deliver_lc = 4 } ] -> ()
        | vs ->
          Alcotest.failf "expected one causality violation, got: %s"
            (String.concat "; "
               (List.map (Format.asprintf "%a" Spec.Clock_props.pp_violation) vs)));
    tc "per-process clock regression is flagged" (fun () ->
        let events =
          [
            { Sim.Trace.seq = 0; lc = 5; body = Sim.Trace.Crash { at = 1; pid = 2 } };
            { Sim.Trace.seq = 1; lc = 3; body = Sim.Trace.Propose { at = 2; pid = 2; value = 1 } };
          ]
        in
        match Spec.Clock_props.check_events events with
        | [ Spec.Clock_props.Clock_regression { pid = 2; seq = 1; lc = 3; prev_lc = 5 } ] -> ()
        | vs -> Alcotest.failf "expected one regression, got %d violations" (List.length vs));
    tc "unmatched deliver and broken seq are flagged" (fun () ->
        let events =
          [
            {
              Sim.Trace.seq = 0;
              lc = 1;
              body =
                Sim.Trace.Deliver { at = 1; src = 0; dst = 1; msg = 7; component = "c"; tag = "x" };
            };
            { Sim.Trace.seq = 2; lc = 2; body = Sim.Trace.Crash { at = 2; pid = 0 } };
          ]
        in
        let vs = Spec.Clock_props.check_events events in
        Alcotest.(check bool) "unmatched deliver flagged" true
          (List.exists
             (function Spec.Clock_props.Unmatched_deliver { msg = 7; _ } -> true | _ -> false)
             vs);
        Alcotest.(check bool) "seq gap flagged" true
          (List.exists
             (function Spec.Clock_props.Nonmonotone_seq { seq = 2; prev = 0 } -> true | _ -> false)
             vs));
  ]

let suites =
  [
    ("spec.eventually", eventually_tests);
    ("spec.timeline", timeline_tests);
    ("spec.link_metrics", link_metrics_tests);
    ("spec.fd_props", fd_props_tests);
    ("spec.consensus_props", consensus_props_tests);
    ("spec.round_metrics", round_metrics_tests);
    ("spec.clock_props", clock_props_tests);
  ]
