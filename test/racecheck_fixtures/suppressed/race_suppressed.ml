(* The d1/d2 violations again, each waived with a reasoned
   [@race.allow]: no surviving findings, two suppressed ones. *)
let total = ref 0

let tally xs =
  Exec.Pool.run
    (List.map
       (fun x () ->
         (total := !total + x)
         [@race.allow escape "fixture: the harness runs this pool at one domain"]
         [@race.allow
           publish "fixture: same single-domain contract covers the read"];
         x)
       xs)
