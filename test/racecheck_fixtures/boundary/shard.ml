(* A decoy: named shard.ml but NOT at lib/sim/shard.ml, so the exact-path
   boundary gives it no exemption and the Domain access is a D4 finding. *)
let whoami () = Domain.self ()
