(* This file lives under a lib/exec/ path segment, so Boundary.sanctioned
   holds: the Atomic accesses below are exempt from D4, and — because the
   sanctioned layer is exactly where foreign closures cross domains — the
   opaque [job ()] call in the [@race.domain] hook IS a D1 obligation
   here (elsewhere an unknown callee is A1 purity's problem). *)
let slot = Atomic.make 0

let next () = Atomic.fetch_and_add slot 1

let[@race.domain] dispatch job = job ()
