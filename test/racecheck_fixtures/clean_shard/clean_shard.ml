(* The shard-local discipline done right: every write and read inside the
   pool closure goes through state the closure itself created — the
   owner-threaded pattern the real shard windows follow.  No findings. *)
let sum xs =
  Exec.Pool.run
    (List.map
       (fun chunk () ->
         let acc = ref 0 in
         List.iter (fun x -> acc := !acc + x) chunk;
         !acc)
       xs)
