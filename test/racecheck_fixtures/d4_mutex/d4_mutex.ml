(* Blocking/ordering primitives outside the sanctioned boundary
   (lib/exec/, lib/sim/shard.ml): a Mutex anywhere else can deadlock a
   window or introduce scheduling-dependent ordering. *)
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f
