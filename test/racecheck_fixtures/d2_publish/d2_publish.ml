(* A pool job that reads mutable state created outside the domain cone
   without an Atomic or pool-barrier handoff: the coordinator may write
   [config] concurrently, and nothing publishes the value. *)
let config = ref 17

let fan xs = Exec.Pool.run (List.map (fun x () -> x + !config) xs)
