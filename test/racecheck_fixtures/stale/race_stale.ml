(* A waiver whose span covers no D1 finding: the write it once excused is
   gone, so the checker reports the attribute itself as STALE — dead
   waivers rot into blanket excuses if left in place. *)
let pure xs =
  Exec.Pool.run
    (List.map
       (fun x () -> (x + 1) [@race.allow escape "fixture: nothing left to waive"])
       xs)
