(* A pool job that writes mutable state captured from outside the domain
   cone — directly, and through a helper (the interprocedural half). *)
let counter = ref 0

let bump () = incr counter

let tally xs =
  Exec.Pool.run
    (List.map
       (fun x () ->
         incr counter;
         bump ();
         x)
       xs)
