(* The barrier module's exact path (…/lib/sim/shard.ml): sanctioned, so
   Domain.DLS here is exempt from D4 — unlike the decoy shard.ml in the
   boundary fixture, whose basename alone buys nothing. *)
let key = Domain.DLS.new_key (fun () -> 0)

let window_index () = Domain.DLS.get key
