(* A replay-completeness gap: the sequential cone performs two effects
   (Trace.emit, Stats.bump) but the shard replay cone only has an arm for
   the first — the sharded run would silently diverge.  Local Trace/Stats
   modules stand in for the engine's effect surfaces; D3 matches on the
   module path, exactly as it does for the real Sim.Trace / Sim.Stats. *)
module Trace = struct
  let records = ref 0
  let emit () = incr records
end

module Stats = struct
  let hits = ref 0
  let bump () = incr hits
end

let[@race.seq_root] seq_step () =
  Trace.emit ();
  Stats.bump ()

let[@race.shard_root] replay_ops () = Trace.emit ()
