(* Input validation across the public API: bad parameters must fail loudly
   at construction time, not corrupt a running simulation. *)

let tc name f = Alcotest.test_case name `Quick f

let raises_invalid f =
  try
    f ();
    false
  with Invalid_argument _ -> true

let engine () = Scenario.engine ~n:3 ()

let validation_tests =
  [
    tc "engine: n must be positive" (fun () ->
        Alcotest.(check bool) "n=0" true
          (raises_invalid (fun () ->
               ignore (Sim.Engine.create ~n:0 ~link:(Sim.Link.synchronous ~delay:1) ()))));
    tc "engine: invalid pids are rejected everywhere" (fun () ->
        let e = engine () in
        Alcotest.(check bool) "send bad src" true
          (raises_invalid (fun () ->
               Sim.Engine.send e ~component:"x" ~tag:"t" ~src:7 ~dst:0 Sim.Payload.Blank));
        Alcotest.(check bool) "is_alive bad pid" true
          (raises_invalid (fun () -> ignore (Sim.Engine.is_alive e (-1))));
        Alcotest.(check bool) "crash bad pid" true
          (raises_invalid (fun () -> Sim.Engine.schedule_crash e 9 ~at:5)));
    tc "engine: negative timer delay and past scheduling rejected" (fun () ->
        let e = engine () in
        Sim.Engine.run_until e 10;
        Alcotest.(check bool) "negative delay" true
          (raises_invalid (fun () -> ignore (Sim.Engine.set_timer e 0 ~delay:(-1) ignore)));
        Alcotest.(check bool) "past harness action" true
          (raises_invalid (fun () -> Sim.Engine.at e 5 ignore));
        Alcotest.(check bool) "past crash" true
          (raises_invalid (fun () -> Sim.Engine.schedule_crash e 0 ~at:5));
        Alcotest.(check bool) "every period 0" true
          (raises_invalid (fun () ->
               ignore (Sim.Engine.every e 0 ~period:0 ignore : unit -> unit))));
    tc "detectors: non-positive periods/time-outs rejected" (fun () ->
        let bad_hb = { Fd.Heartbeat_p.default_params with period = 0 } in
        Alcotest.(check bool) "heartbeat" true
          (raises_invalid (fun () -> ignore (Fd.Heartbeat_p.install (engine ()) bad_hb)));
        let bad_ring = { Fd.Ring_s.default_params with initial_timeout = 0 } in
        Alcotest.(check bool) "ring" true
          (raises_invalid (fun () -> ignore (Fd.Ring_s.install (engine ()) bad_ring)));
        let bad_leader = { Fd.Leader_s.default_params with period = -3 } in
        Alcotest.(check bool) "leader" true
          (raises_invalid (fun () -> ignore (Fd.Leader_s.install (engine ()) bad_leader)));
        let bad_stable = { Fd.Stable_omega.default_params with period = 0 } in
        Alcotest.(check bool) "stable" true
          (raises_invalid (fun () -> ignore (Fd.Stable_omega.install (engine ()) bad_stable)));
        let bad_source = { Fd.Omega_source.default_params with initial_timeout = 0 } in
        Alcotest.(check bool) "source" true
          (raises_invalid (fun () -> ignore (Fd.Omega_source.install (engine ()) bad_source))));
    tc "transformation: non-positive periods rejected" (fun () ->
        let e = engine () in
        let fd = Scenario.install_detector e Scenario.Ec_from_leader in
        let bad = { Ecfd.Ec_to_p.default_params with alive_period = 0 } in
        Alcotest.(check bool) "raises" true
          (raises_invalid (fun () -> ignore (Ecfd.Ec_to_p.install e ~underlying:fd bad))));
    tc "total order: bad configuration and bodies rejected" (fun () ->
        let e = engine () in
        Alcotest.(check bool) "max_slots 0" true
          (raises_invalid (fun () ->
               ignore
                 (Consensus.Total_order.create ~max_slots:0 e
                    ~make_instance:(fun ~slot:_ -> assert false)
                    ())));
        let fd = Scenario.install_detector e Scenario.Ec_from_leader in
        let make_instance ~slot =
          let suffix = Printf.sprintf ".s%d" slot in
          let rb = Broadcast.Reliable_broadcast.create ~component:("rb" ^ suffix) e in
          Ecfd.Ec_consensus.install
            ~component:("c" ^ suffix)
            e ~fd ~rb Ecfd.Ec_consensus.default_params
        in
        let order = Consensus.Total_order.create ~max_slots:4 e ~make_instance () in
        Alcotest.(check bool) "negative body" true
          (raises_invalid (fun () -> Consensus.Total_order.broadcast order ~src:0 ~body:(-1))));
    tc "stubborn: duplicate handler registration rejected" (fun () ->
        let e = engine () in
        let st = Broadcast.Stubborn.create e in
        Broadcast.Stubborn.register st 0 (fun ~src:_ _ -> ());
        Alcotest.(check bool) "raises" true
          (raises_invalid (fun () -> Broadcast.Stubborn.register st 0 (fun ~src:_ _ -> ()))));
    tc "atomic commit: double vote rejected" (fun () ->
        let e = engine () in
        let fd = Scenario.install_detector e Scenario.Ec_from_leader in
        let rb = Broadcast.Reliable_broadcast.create e in
        let c = Ecfd.Ec_consensus.install e ~fd ~rb Ecfd.Ec_consensus.default_params in
        let nbac = Consensus.Atomic_commit.create e ~fd ~consensus:c () in
        Consensus.Atomic_commit.vote nbac 0 Consensus.Atomic_commit.Yes;
        Alcotest.(check bool) "raises" true
          (raises_invalid (fun () ->
               Consensus.Atomic_commit.vote nbac 0 Consensus.Atomic_commit.No)));
    tc "link models: bad probabilities rejected (assertions)" (fun () ->
        Alcotest.(check bool) "p=1 fair-lossy" true
          (try
             ignore
               (Sim.Link.fair_lossy ~drop_probability:1.0
                  ~underlying:(Sim.Link.synchronous ~delay:1));
             false
           with Assert_failure _ -> true));
  ]

let suites = [ ("validation", validation_tests) ]
