(* Tests of the Reliable Broadcast substrate. *)

let tc name f = Alcotest.test_case name `Quick f

type Sim.Payload.t += Word of string

let setup ?(seed = 0) ?(n = 4) ?(delay = `Sync 2) () =
  let link =
    match delay with
    | `Sync d -> Sim.Link.synchronous ~delay:d
    | `Reliable -> Sim.Link.reliable ~min_delay:1 ~max_delay:10 ()
  in
  let e = Sim.Engine.create ~seed ~n ~link () in
  let rb = Broadcast.Reliable_broadcast.create e in
  let logs = Array.make n [] in
  List.iter
    (fun p ->
      Broadcast.Reliable_broadcast.subscribe rb p (fun ~origin payload ->
          match payload with
          | Word w -> logs.(p) <- (origin, w) :: logs.(p)
          | _ -> ()))
    (Sim.Pid.all ~n);
  (e, rb, logs)

let rb_tests =
  [
    tc "everyone R-delivers, including the sender" (fun () ->
        let e, rb, logs = setup () in
        Broadcast.Reliable_broadcast.rbroadcast rb ~src:1 ~tag:"w" (Word "hello");
        Sim.Engine.run_until e 50;
        Array.iteri
          (fun p log ->
            Alcotest.(check (list (pair int string)))
              (Printf.sprintf "p%d" (p + 1))
              [ (1, "hello") ] log)
          logs);
    tc "uniform integrity: exactly once despite relays" (fun () ->
        let e, rb, logs = setup ~delay:`Reliable () in
        Broadcast.Reliable_broadcast.rbroadcast rb ~src:0 ~tag:"w" (Word "x");
        Broadcast.Reliable_broadcast.rbroadcast rb ~src:0 ~tag:"w" (Word "x");
        Sim.Engine.run_until e 200;
        Array.iter
          (fun log ->
            (* Two distinct broadcasts of the same word: delivered twice,
               never more (the relay storm is deduplicated). *)
            Alcotest.(check int) "twice" 2 (List.length log))
          logs);
    tc "agreement survives the originator's crash" (fun () ->
        (* The originator reaches one process before dying; the relay must
           carry the message to everybody. *)
        let e, rb, logs = setup ~delay:(`Sync 3) ~n:5 () in
        Broadcast.Reliable_broadcast.rbroadcast rb ~src:0 ~tag:"w" (Word "last");
        (* Crashes after its own local delivery+relay at t=0, long before
           others receive at t=3. *)
        Sim.Engine.schedule_crash e 0 ~at:1;
        Sim.Engine.run_until e 100;
        List.iter
          (fun p ->
            Alcotest.(check int) (Printf.sprintf "p%d delivered" (p + 1)) 1 (List.length logs.(p)))
          [ 1; 2; 3; 4 ]);
    tc "messages from distinct origins keep their origin" (fun () ->
        let e, rb, logs = setup ~n:3 () in
        Broadcast.Reliable_broadcast.rbroadcast rb ~src:0 ~tag:"w" (Word "a");
        Broadcast.Reliable_broadcast.rbroadcast rb ~src:2 ~tag:"w" (Word "b");
        Sim.Engine.run_until e 50;
        Array.iter
          (fun log ->
            let sorted = List.sort compare log in
            Alcotest.(check (list (pair int string))) "both" [ (0, "a"); (2, "b") ] sorted)
          logs;
        Alcotest.(check int) "delivered_count" 2 (Broadcast.Reliable_broadcast.delivered_count rb 1));
    Test_util.qcheck ~count:30 ~name:"agreement and integrity on random runs"
      QCheck2.Gen.(tup3 (int_range 2 6) (int_range 0 10_000) (int_range 0 3))
      (fun (n, seed, broadcasts) ->
        let e, rb, logs = setup ~seed ~n ~delay:`Reliable () in
        for i = 0 to broadcasts - 1 do
          Broadcast.Reliable_broadcast.rbroadcast rb ~src:(i mod n) ~tag:"w"
            (Word (string_of_int i))
        done;
        Sim.Engine.run_until e 500;
        Array.for_all (fun log -> List.length log = broadcasts) logs
        && Array.for_all
             (fun log -> List.sort compare log = List.sort compare logs.(0))
             logs);
  ]

(* ------------------------------------------------------------------ *)
(* Uniform reliable broadcast                                         *)
(* ------------------------------------------------------------------ *)

let setup_urb ?(seed = 0) ?(n = 5) () =
  let e =
    Sim.Engine.create ~seed ~n ~link:(Sim.Link.reliable ~min_delay:1 ~max_delay:6 ()) ()
  in
  let urb = Broadcast.Uniform_broadcast.create e in
  let logs = Array.make n [] in
  List.iter
    (fun p ->
      Broadcast.Uniform_broadcast.subscribe urb p (fun ~origin payload ->
          match payload with
          | Word w -> logs.(p) <- (origin, w) :: logs.(p)
          | _ -> ()))
    (Sim.Pid.all ~n);
  (e, urb, logs)

let urb_tests =
  [
    tc "everyone U-delivers" (fun () ->
        let e, urb, logs = setup_urb () in
        Broadcast.Uniform_broadcast.ubroadcast urb ~src:2 ~tag:"w" (Word "m");
        Sim.Engine.run_until e 100;
        Array.iter
          (fun log -> Alcotest.(check (list (pair int string))) "delivered" [ (2, "m") ] log)
          logs);
    tc "delivery needs a majority of copies" (fun () ->
        (* With every link from p2..p5 severed towards p1, p1 still delivers
           thanks to its own echo + p1->p1 path?  No: it only ever sees its
           own copy (1 < majority), so it must NOT deliver — uniformity
           demands the majority. *)
        let n = 5 in
        let base = Sim.Link.synchronous ~delay:2 in
        let link =
          Sim.Link.route ~describe:"isolate-p1-inbound" (fun ~src ~dst ->
              if dst = 0 && src <> 0 then Sim.Link.never else base)
        in
        let e = Sim.Engine.create ~n ~link () in
        let urb = Broadcast.Uniform_broadcast.create e in
        let delivered = ref false in
        Broadcast.Uniform_broadcast.subscribe urb 0 (fun ~origin:_ _ -> delivered := true);
        Broadcast.Uniform_broadcast.ubroadcast urb ~src:0 ~tag:"w" (Word "m");
        Sim.Engine.run_until e 200;
        Alcotest.(check bool) "p1 held back" false !delivered;
        (* ... while the others, who exchange echoes freely, deliver. *)
        Alcotest.(check int) "p2 delivered" 1 (Broadcast.Uniform_broadcast.delivered_count urb 1));
    tc "uniform agreement: a delivery followed by a crash still spreads" (fun () ->
        (* The origin U-delivers as soon as a majority of echoes reach it,
           then crashes immediately; the echoes that enabled its delivery
           guarantee everyone else's. *)
        let e, urb, logs = setup_urb ~seed:4 () in
        Broadcast.Uniform_broadcast.ubroadcast urb ~src:0 ~tag:"w" (Word "last");
        (* Crash the origin the instant it delivers. *)
        let crashed = ref false in
        Broadcast.Uniform_broadcast.subscribe urb 0 (fun ~origin:_ _ ->
            if not !crashed then begin
              crashed := true;
              Sim.Engine.schedule_crash e 0 ~at:(Sim.Engine.now e)
            end);
        Sim.Engine.run_until e 300;
        if !crashed then
          List.iter
            (fun p ->
              Alcotest.(check int)
                (Printf.sprintf "p%d delivered" (p + 1))
                1 (List.length logs.(p)))
            [ 1; 2; 3; 4 ]);
    Test_util.qcheck ~count:25 ~name:"URB agreement/integrity on random runs"
      QCheck2.Gen.(tup2 (int_range 3 7) (int_range 0 10_000))
      (fun (n, seed) ->
        let e, urb, logs = setup_urb ~seed ~n () in
        let rng = Sim.Rng.create ~seed in
        let crashes = Sim.Fault.random_minority rng ~n ~latest:50 in
        Sim.Fault.apply e crashes;
        for i = 0 to 3 do
          Broadcast.Uniform_broadcast.ubroadcast urb ~src:(i mod n) ~tag:"w"
            (Word (string_of_int i))
        done;
        Sim.Engine.run_until e 2000;
        (* Uniform agreement: anything delivered anywhere (even by a now-
           crashed process) is delivered by every correct process. *)
        let all_delivered =
          Array.to_list logs |> List.concat |> List.sort_uniq compare
        in
        let correct = Sim.Pid.Set.elements (Sim.Fault.correct ~n crashes) in
        List.for_all
          (fun p ->
            List.for_all (fun m -> List.mem m logs.(p)) all_delivered
            && List.length logs.(p) = List.length (List.sort_uniq compare logs.(p)))
          correct);
  ]

(* ------------------------------------------------------------------ *)
(* Stubborn channels and broadcast over lossy links                   *)
(* ------------------------------------------------------------------ *)

let lossy ?(p = 0.4) () =
  Sim.Link.fair_lossy ~drop_probability:p
    ~underlying:(Sim.Link.reliable ~min_delay:1 ~max_delay:5 ())

let stubborn_tests =
  [
    tc "exactly-once delivery over a 40%-lossy link" (fun () ->
        let e = Sim.Engine.create ~seed:2 ~n:2 ~link:(lossy ()) () in
        let st = Broadcast.Stubborn.create e in
        let got = ref [] in
        Broadcast.Stubborn.register st 1 (fun ~src:_ payload ->
            match payload with Word w -> got := w :: !got | _ -> ());
        Broadcast.Stubborn.register st 0 (fun ~src:_ _ -> ());
        for i = 0 to 9 do
          Broadcast.Stubborn.send st ~src:0 ~dst:1 ~tag:"w" (Word (string_of_int i))
        done;
        Sim.Engine.run_until e 3000;
        Alcotest.(check (list string)) "all ten, once each, despite drops"
          (List.init 10 string_of_int)
          (List.sort compare !got));
    tc "quiescence: retransmission stops once everything is acked" (fun () ->
        let e = Sim.Engine.create ~seed:3 ~n:3 ~link:(lossy ~p:0.3 ()) () in
        let st = Broadcast.Stubborn.create e in
        List.iter
          (fun p -> Broadcast.Stubborn.register st p (fun ~src:_ _ -> ()))
          (Sim.Pid.all ~n:3);
        Broadcast.Stubborn.send st ~src:0 ~dst:1 ~tag:"w" (Word "a");
        Broadcast.Stubborn.send st ~src:0 ~dst:2 ~tag:"w" (Word "b");
        Sim.Engine.run_until e 5000;
        Alcotest.(check int) "nothing left unacked" 0 (Broadcast.Stubborn.unacked st 0);
        (* ... and the channel is silent from then on. *)
        let snap = Sim.Stats.snapshot (Sim.Engine.stats e) in
        Sim.Engine.run_until e 8000;
        Alcotest.(check int) "silent" 0
          (Sim.Stats.sent_since (Sim.Engine.stats e) snap
             ~component:Broadcast.Stubborn.default_component));
    tc "plain engine sends lose messages on the same link (the contrast)" (fun () ->
        let e = Sim.Engine.create ~seed:2 ~n:2 ~link:(lossy ()) () in
        let got = ref 0 in
        Sim.Engine.register e ~component:"raw" 1 (fun ~src:_ _ -> incr got);
        for _ = 1 to 10 do
          Sim.Engine.send e ~component:"raw" ~tag:"w" ~src:0 ~dst:1 (Word "x")
        done;
        Sim.Engine.run_until e 3000;
        Alcotest.(check bool)
          (Printf.sprintf "only %d of 10 arrived" !got)
          true (!got < 10));
    tc "reliable broadcast over stubborn channels survives lossy links" (fun () ->
        let n = 5 in
        let e = Sim.Engine.create ~seed:9 ~n ~link:(lossy ()) () in
        let stubborn = Broadcast.Stubborn.create e in
        let rb = Broadcast.Reliable_broadcast.create ~transport:(`Stubborn stubborn) e in
        let logs = Array.make n [] in
        List.iter
          (fun p ->
            Broadcast.Reliable_broadcast.subscribe rb p (fun ~origin payload ->
                match payload with
                | Word w -> logs.(p) <- (origin, w) :: logs.(p)
                | _ -> ()))
          (Sim.Pid.all ~n);
        Broadcast.Reliable_broadcast.rbroadcast rb ~src:0 ~tag:"w" (Word "hello");
        Broadcast.Reliable_broadcast.rbroadcast rb ~src:3 ~tag:"w" (Word "world");
        Sim.Engine.run_until e 5000;
        Array.iteri
          (fun p log ->
            Alcotest.(check (list (pair int string)))
              (Printf.sprintf "p%d has both, once" (p + 1))
              [ (0, "hello"); (3, "world") ]
              (List.sort compare log))
          logs);
    Test_util.qcheck ~count:15 ~name:"stubborn RB: agreement on random lossy runs"
      QCheck2.Gen.(tup2 (int_range 2 6) (int_range 0 10_000))
      (fun (n, seed) ->
        let e = Sim.Engine.create ~seed ~n ~link:(lossy ~p:0.5 ()) () in
        let stubborn = Broadcast.Stubborn.create e in
        let rb = Broadcast.Reliable_broadcast.create ~transport:(`Stubborn stubborn) e in
        let counts = Array.make n 0 in
        List.iter
          (fun p ->
            Broadcast.Reliable_broadcast.subscribe rb p (fun ~origin:_ _ ->
                counts.(p) <- counts.(p) + 1))
          (Sim.Pid.all ~n);
        for i = 0 to 4 do
          Broadcast.Reliable_broadcast.rbroadcast rb ~src:(i mod n) ~tag:"w"
            (Word (string_of_int i))
        done;
        Sim.Engine.run_until e 20_000;
        Array.for_all (( = ) 5) counts);
  ]

let suites =
  [
    ("broadcast.rb", rb_tests);
    ("broadcast.urb", urb_tests);
    ("broadcast.stubborn", stubborn_tests);
  ]
