(* Shared helpers and qcheck generators for the test suites. *)

let qcheck ?(count = 50) ~name gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen law)

(* --- generators --- *)

module Gen = struct
  open QCheck2.Gen

  let seed = int_range 0 1_000_000

  let small_n = int_range 2 8

  (* n together with a crash schedule of fewer than n/2 victims. *)
  let n_and_minority_crashes ~latest =
    small_n >>= fun n ->
    seed >|= fun s ->
    let rng = Sim.Rng.create ~seed:s in
    (n, Sim.Fault.random_minority rng ~n ~latest)

  let net =
    seed >>= fun s ->
    int_range 0 400 >|= fun gst ->
    { Scenario.default_net with seed = s; gst }
end

(* --- assertions --- *)

let check_no_violations what trace ~n =
  let violations = Spec.Consensus_props.check_all trace ~n in
  Alcotest.(check int)
    (what ^ ": "
    ^ String.concat "; "
        (List.map (Format.asprintf "%a" Spec.Consensus_props.pp_violation) violations))
    0 (List.length violations)

let check_safety_only what trace =
  let violations = Spec.Consensus_props.check_safety trace in
  Alcotest.(check int)
    (what ^ ": "
    ^ String.concat "; "
        (List.map (Format.asprintf "%a" Spec.Consensus_props.pp_violation) violations))
    0 (List.length violations)

let check_class what cls run =
  let matrix = Spec.Fd_props.class_matrix run in
  let missing =
    List.filter
      (fun p -> not (Spec.Fd_props.check p run).Spec.Fd_props.holds)
      (Fd.Classes.properties cls)
  in
  if missing <> [] then
    Alcotest.failf "%s: class %s misses %s (matrix: %s)" what (Fd.Classes.name cls)
      (String.concat ", " (List.map Fd.Classes.property_name missing))
      (String.concat "; "
         (List.map
            (fun (p, (r : Spec.Fd_props.report)) ->
              Printf.sprintf "%s=%b" (Fd.Classes.property_name p) r.holds)
            matrix))

let bool_law what b = if b then true else QCheck2.Test.fail_reportf "%s" what
