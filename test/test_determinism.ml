(* Regression tests for the determinism guarantees behind the R2 lint rule:
   hash-table iteration order must never reach an observable output.
   Covers the sites fixed alongside the linter (Stats.snapshot,
   Consensus_props.uniform_integrity, Round_metrics) and the acceptance
   scenario: identical Stats.snapshot / Round_metrics output across two
   runs with the same seed but different component-registration order. *)

let snapshot_t = Alcotest.(list (triple string string (triple int int int)))

let flatten_snapshot stats =
  List.map
    (fun (c, tag, (v : Sim.Stats.counts)) -> (c, tag, (v.sent, v.delivered, v.dropped)))
    (Sim.Stats.snapshot stats)

(* -- unit level: Stats.snapshot vs table insertion history ---------------- *)

let feed stats ops =
  List.iter
    (fun (component, tag) ->
      Sim.Stats.on_send stats ~component ~tag;
      Sim.Stats.on_deliver stats ~component ~tag)
    ops

let ops =
  [
    ("beta", "ping.r2");
    ("alpha", "est.r1");
    ("gamma", "ack.r1");
    ("alpha", "est.r2");
    ("beta", "ping.r1");
    ("alpha", "est.r1");
  ]

let test_snapshot_insertion_order () =
  let a = Sim.Stats.create () and b = Sim.Stats.create () in
  feed a ops;
  feed b (List.rev ops);
  Alcotest.check snapshot_t "snapshot independent of insertion order"
    (flatten_snapshot a) (flatten_snapshot b)

let test_snapshot_sorted () =
  let a = Sim.Stats.create () in
  feed a ops;
  let snap = flatten_snapshot a in
  let resorted =
    List.sort
      (fun (c1, t1, _) (c2, t2, _) ->
        match String.compare c1 c2 with 0 -> String.compare t1 t2 | c -> c)
      snap
  in
  Alcotest.check snapshot_t "snapshot arrives (component, tag)-sorted" resorted snap

(* -- engine level: component-registration order --------------------------- *)

(* Each component broadcasts on its own period with a round tag derived from
   the clock.  Over a synchronous (draw-free) link, everything either
   component does is independent of the other, so only event interleaving -
   and with it every hash table's insertion history - changes when the
   registration order flips.  The observable outputs must not. *)
let install engine ~name ~period =
  let n = Sim.Engine.n engine in
  List.iter
    (fun p ->
      Sim.Engine.register engine ~component:name p (fun ~src:_ _ -> ());
      ignore
        (Sim.Engine.every engine p ~phase:1 ~period (fun () ->
             let round = 1 + (Sim.Engine.now engine mod 3) in
             Sim.Engine.send_to_all_others engine ~component:name
               ~tag:(Printf.sprintf "ping.r%d" round)
               ~src:p Sim.Payload.Blank)
          : unit -> unit))
    (Sim.Pid.all ~n)

let run_with order =
  let engine = Sim.Engine.create ~seed:11 ~n:4 ~link:(Sim.Link.synchronous ~delay:2) () in
  List.iter (fun (name, period) -> install engine ~name ~period) order;
  Sim.Engine.run_until engine 200;
  let trace = Sim.Engine.trace engine in
  ( flatten_snapshot (Sim.Engine.stats engine),
    Spec.Round_metrics.sends_by_round trace ~component:"alpha",
    Spec.Round_metrics.sends_by_tag_in_round trace ~component:"beta" ~round:1 )

let test_registration_order () =
  let snap1, by_round1, by_tag1 = run_with [ ("alpha", 5); ("beta", 7) ] in
  let snap2, by_round2, by_tag2 = run_with [ ("beta", 7); ("alpha", 5) ] in
  Alcotest.check snapshot_t "Stats.snapshot identical across registration orders" snap1
    snap2;
  Alcotest.(check (list (pair int int)))
    "Round_metrics.sends_by_round identical across registration orders" by_round1 by_round2;
  Alcotest.(check (list (pair string int)))
    "Round_metrics.sends_by_tag_in_round identical across registration orders" by_tag1
    by_tag2;
  Alcotest.(check bool) "the runs actually sent something" true (snap1 <> [])

(* -- spec level: sorted outputs from Hashtbl-backed checkers -------------- *)

let test_uniform_integrity_sorted () =
  let trace = Sim.Trace.create () in
  List.iter
    (fun pid ->
      Sim.Trace.record trace (Sim.Trace.Decide { at = 5; pid; value = 1; round = 1 });
      Sim.Trace.record trace (Sim.Trace.Decide { at = 6; pid; value = 1; round = 2 }))
    [ 3; 1; 2; 0 ];
  let offenders =
    List.map
      (function Spec.Consensus_props.Multiple_decisions p -> p | _ -> -1)
      (Spec.Consensus_props.uniform_integrity trace)
  in
  Alcotest.(check (list int)) "offenders reported in pid order" [ 0; 1; 2; 3 ] offenders

let test_sends_by_round_sorted () =
  let trace = Sim.Trace.create () in
  List.iter
    (fun r ->
      Sim.Trace.record trace
        (Sim.Trace.Send
           { at = 1; src = 0; dst = 1; msg = 0; component = "c"; tag = "t.r" ^ string_of_int r }))
    [ 5; 2; 9; 1; 1; 2 ];
  Alcotest.(check (list (pair int int)))
    "rounds ascending regardless of event order"
    [ (1, 2); (2, 2); (5, 1); (9, 1) ]
    (Spec.Round_metrics.sends_by_round trace ~component:"c")

let suites =
  [
    ( "determinism",
      [
        Alcotest.test_case "Stats.snapshot vs insertion order" `Quick
          test_snapshot_insertion_order;
        Alcotest.test_case "Stats.snapshot is sorted" `Quick test_snapshot_sorted;
        Alcotest.test_case "same seed, flipped registration order: identical outputs"
          `Quick test_registration_order;
        Alcotest.test_case "uniform_integrity reports in pid order" `Quick
          test_uniform_integrity_sorted;
        Alcotest.test_case "sends_by_round sorted under shuffled events" `Quick
          test_sends_by_round_sorted;
      ] );
  ]
