(* In-process coverage of ecfd-analyze (tools/analyze): each typed rule
   A1-A4 is demonstrated on a seeded-violation fixture library under
   analyze_fixtures/ with exact expected findings (rule, file, line), so
   disabling or breaking any single rule fails its test.  The fixtures
   are real dune libraries — the analyzer reads the .cmt files their
   compilation produced, exactly as `dune build @analyze` does for lib/
   and bench/. *)

let run paths =
  let findings = (Analyze_core.Driver.run paths).Check_common.Cmt_driver.findings in
  List.map
    (fun (f : Check_common.Finding.t) -> (f.rule, f.file, f.line))
    findings

let fixture name = Filename.concat "analyze_fixtures" name

(* Locations inside .cmt files are relative to the build root. *)
let src case file = Printf.sprintf "test/analyze_fixtures/%s/%s" case file

let check_findings ~expected paths () =
  Alcotest.(check (list (triple string string int)))
    "findings (rule, file, line)" expected (run paths)

let test_pure_ok =
  (* Job-local mutation is allowed: a pure job produces no findings. *)
  check_findings [ fixture "pure_ok" ] ~expected:[]

let test_print_job =
  (* Line 4 is print_endline inside a helper the job calls — the
     interprocedural half; line 7 is a print directly in the closure. *)
  check_findings
    [ fixture "print_job" ]
    ~expected:
      [
        ("A1", src "print_job" "print_job.ml", 4);
        ("A1", src "print_job" "print_job.ml", 7);
      ]

let test_captured_write =
  check_findings
    [ fixture "captured_write" ]
    ~expected:[ ("A1", src "captured_write" "captured_write.ml", 5) ]

let test_raising_timer =
  check_findings
    [ fixture "raising_timer" ]
    ~expected:[ ("A2", src "raising_timer" "raising_timer.ml", 5) ]

let test_aliased_eq =
  (* Line 4 uses a let-alias of (=) at Pid.t; line 7 an eta-expansion of
     that alias — both invisible to the syntactic R3. *)
  check_findings
    [ fixture "aliased_eq" ]
    ~expected:
      [
        ("A3", src "aliased_eq" "aliased_eq.ml", 4);
        ("A3", src "aliased_eq" "aliased_eq.ml", 7);
      ]

let test_suppressed =
  (* The print_job violation again, under [@analyze.allow pure "..."]. *)
  check_findings [ fixture "suppressed" ] ~expected:[]

let test_unordered_fold =
  (* The unsorted Hashtbl.fold on line 3 is flagged; its |> List.sort
     twin below is not. *)
  check_findings
    [ fixture "unordered_fold" ]
    ~expected:[ ("A4", src "unordered_fold" "unordered_fold.ml", 3) ]

let test_whole_directory () =
  (* All fixtures at once, via the same recursive .cmt walk the dune
     @analyze alias uses. *)
  Alcotest.(check int)
    "total findings over analyze_fixtures/" 7
    (List.length (run [ "analyze_fixtures" ]))

let test_scans_units () =
  let units = (Analyze_core.Driver.run [ fixture "pure_ok" ]).Check_common.Cmt_driver.n_units in
  Alcotest.(check bool) "found at least one .cmt" true (units >= 1)

let test_registry () =
  let ids = List.map (fun (r : Analyze_core.Arule.t) -> r.id) Analyze_core.Registry.all in
  Alcotest.(check (list string)) "rule ids" [ "A1"; "A2"; "A3"; "A4" ] ids;
  let keys =
    List.map (fun (r : Analyze_core.Arule.t) -> r.key) Analyze_core.Registry.all
  in
  Alcotest.(check int)
    "suppression keys are unique"
    (List.length keys)
    (List.length (List.sort_uniq String.compare keys))

let suites =
  [
    ( "analyze",
      [
        Alcotest.test_case "A1: pure job is clean" `Quick test_pure_ok;
        Alcotest.test_case "A1: printing job flagged (direct + via helper)" `Quick
          test_print_job;
        Alcotest.test_case "A1: captured-ref write flagged" `Quick test_captured_write;
        Alcotest.test_case "A2: raising timer callback flagged" `Quick test_raising_timer;
        Alcotest.test_case "A3: aliased (=) on Pid.t flagged" `Quick test_aliased_eq;
        Alcotest.test_case "[@analyze.allow] suppresses with a reason" `Quick
          test_suppressed;
        Alcotest.test_case "A4: unsorted Hashtbl.fold escape flagged" `Quick
          test_unordered_fold;
        Alcotest.test_case "directory walk finds every seeded violation" `Quick
          test_whole_directory;
        Alcotest.test_case "fixture .cmt files are discovered" `Quick test_scans_units;
        Alcotest.test_case "registry lists A1-A4 with unique keys" `Quick test_registry;
      ] );
  ]
