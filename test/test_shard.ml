(* Sharded-engine determinism: the conservative parallel back-end must be
   byte-identical to the sequential engine at every shard count — same
   trace (bodies, order, Lamport clocks, message/span ids), same stats
   lifecycle and high-water trajectories, same obs snapshot, same
   timer-table capacity.  These tests run the same workload at K = 1
   (exact sequential path) and K in {2, 4} and compare the rendered
   outputs verbatim, plus unit tests for the window machinery: lookahead
   fallback, cross-shard ties at window boundaries, and mailbox exchange
   ordering. *)

let tc name f = Alcotest.test_case name `Quick f

let render_trace trace =
  let buf = Buffer.create 4096 in
  Sim.Trace.iter trace (fun e ->
      Buffer.add_string buf (Format.asprintf "%a@." Sim.Trace.pp_event e));
  Buffer.contents buf

(* Everything observable, as one string: trace bytes, stats lifecycle,
   per-component counters, obs snapshot JSON, timer-table capacity. *)
let fingerprint engine =
  let lc = Sim.Stats.lifecycle (Sim.Engine.stats engine) in
  Format.asprintf "%s@.lifecycle: %a@.stats: %s@.obs: %s@.capacity: %d pending: %d@."
    (render_trace (Sim.Engine.trace engine))
    Sim.Stats.pp_lifecycle lc
    (String.concat ";"
       (List.map
          (fun (c, tag, (v : Sim.Stats.counts)) ->
            Printf.sprintf "%s/%s=%d,%d,%d" c tag v.sent v.delivered v.dropped)
          (Sim.Stats.snapshot (Sim.Engine.stats engine))))
    (Obs.Registry.json_of_snapshot (Obs.Registry.snapshot (Sim.Engine.obs engine)))
    (Sim.Engine.timer_table_capacity engine)
    (Sim.Engine.pending_events engine)

(* The E1-E4-style workload: full consensus stack (eventually consistent
   detector, reliable broadcast, EC consensus) over a jittery reliable
   link, with a mid-run crash — messages, timers, cancellations, spans,
   fd views and notes all exercised. *)
let run_consensus ~shards ~seed ~n ~horizon =
  let link = Sim.Link.reliable ~min_delay:1 ~max_delay:6 () in
  let engine = Sim.Engine.create ~seed ~shards ~n ~link () in
  let fd = Scenario.install_detector engine Scenario.Ec_from_leader in
  let rb = Broadcast.Reliable_broadcast.create engine in
  let instance =
    Ecfd.Ec_consensus.install engine ~fd ~rb Ecfd.Ec_consensus.default_params
  in
  List.iter (fun p -> instance.Consensus.Instance.propose p (100 + p)) (Sim.Pid.all ~n);
  Sim.Engine.schedule_crash engine (n - 1) ~at:(200 + (seed mod 97));
  Sim.Engine.run_until engine horizon;
  engine

let check_identical name ~shards run =
  let seq = fingerprint (run ~shards:1) in
  let sharded = fingerprint (run ~shards) in
  Alcotest.(check string) name seq sharded

let shard_tests =
  [
    tc "consensus run identical at K=2 and K=4" (fun () ->
        List.iter
          (fun shards ->
            check_identical
              (Printf.sprintf "K=%d byte-identical" shards)
              ~shards
              (fun ~shards -> run_consensus ~shards ~seed:42 ~n:5 ~horizon:4000))
          [ 2; 4 ]);
    tc "sharded traces keep causally consistent stamps" (fun () ->
        (* Independent of the byte-compare: the replayed seq/lc stamps must
           satisfy the Spec-layer clock conditions (dense seq, per-process
           monotone Lamport clocks, send-before-deliver across shards). *)
        List.iter
          (fun shards ->
            let engine = run_consensus ~shards ~seed:12 ~n:6 ~horizon:4000 in
            let violations = Spec.Clock_props.check (Sim.Engine.trace engine) in
            Alcotest.(check int)
              (Printf.sprintf "K=%d: %s" shards
                 (String.concat "; "
                    (List.map
                       (Format.asprintf "%a" Spec.Clock_props.pp_violation)
                       violations)))
              0 (List.length violations))
          [ 1; 2; 4 ]);
    tc "K=1 takes the sequential path" (fun () ->
        let engine = run_consensus ~shards:1 ~seed:7 ~n:4 ~horizon:1000 in
        Alcotest.(check int) "shard_count" 1 (Sim.Engine.shard_count engine);
        let w, nw, d, sw = Sim.Engine.window_stats engine in
        Alcotest.(check (list int)) "no window machinery" [ 0; 0; 0; 0 ] [ w; nw; d; sw ]);
    tc "parallel windows actually open at K>1 with positive lookahead" (fun () ->
        let engine = run_consensus ~shards:4 ~seed:11 ~n:6 ~horizon:4000 in
        Alcotest.(check int) "shard_count" 4 (Sim.Engine.shard_count engine);
        let w, _, _, _ = Sim.Engine.window_stats engine in
        Alcotest.(check bool) (Printf.sprintf "windows opened (%d)" w) true (w > 0));
    Test_util.qcheck ~count:16 ~name:"sharded trace bytes equal sequential (16+ seeds)"
      QCheck2.Gen.(tup3 (int_range 0 10_000) (int_range 3 6) (oneofl [ 2; 4 ]))
      (fun (seed, n, shards) ->
        let run ~shards = run_consensus ~shards ~seed ~n ~horizon:3000 in
        Test_util.bool_law
          (Printf.sprintf "seed=%d n=%d K=%d" seed n shards)
          (String.equal (fingerprint (run ~shards:1)) (fingerprint (run ~shards))));
  ]

(* -- window computation unit tests --------------------------------------- *)

(* A ping-pong workload with per-pid periodic timers: every process
   broadcasts on a shared period, so shards hit the same instants —
   cross-shard ties at window boundaries on every beat. *)
let run_pingpong ~shards ~link ~n ~horizon =
  let engine = Sim.Engine.create ~seed:3 ~shards ~n ~link () in
  let component = "pingpong" in
  List.iter
    (fun p ->
      Sim.Engine.register engine ~component p (fun ~src _payload ->
          (* Reply to the first ping each beat: deliveries trigger sends
             inside windows. *)
          if src < p then
            Sim.Engine.send engine ~component ~tag:"pong" ~src:p ~dst:src
              Sim.Payload.Blank))
    (Sim.Pid.all ~n);
  List.iter
    (fun p ->
      ignore
        (Sim.Engine.every engine p ~phase:(1 + p) ~period:3 (fun () ->
             List.iter
               (fun dst ->
                 Sim.Engine.send engine ~component ~tag:"ping" ~src:p ~dst
                   Sim.Payload.Blank)
               (Sim.Pid.others ~n p))
          : unit -> unit))
    (Sim.Pid.all ~n);
  Sim.Engine.run_until engine horizon;
  engine

let window_tests =
  [
    tc "zero lookahead falls back to sequential merge (direct steps only)" (fun () ->
        let link = Sim.Link.reliable ~min_delay:0 ~max_delay:4 () in
        let run ~shards = run_pingpong ~shards ~link ~n:4 ~horizon:200 in
        let engine = run ~shards:2 in
        let w, _, d, _ = Sim.Engine.window_stats engine in
        Alcotest.(check int) "no windows at L=0" 0 w;
        Alcotest.(check bool) (Printf.sprintf "direct steps taken (%d)" d) true (d > 0);
        check_identical "L=0 still byte-identical" ~shards:2 run);
    tc "cross-shard ties at the window boundary keep sequential order" (fun () ->
        (* Synchronous delay 2 = lookahead 2; period-3 beats on every pid
           put same-instant events in every shard, and deliveries land
           exactly on window boundaries. *)
        let link = Sim.Link.synchronous ~delay:2 in
        let run ~shards = run_pingpong ~shards ~link ~n:4 ~horizon:300 in
        let engine = run ~shards:2 in
        let w, _, _, _ = Sim.Engine.window_stats engine in
        Alcotest.(check bool) (Printf.sprintf "windows opened (%d)" w) true (w > 0);
        check_identical "boundary ties byte-identical" ~shards:2 run;
        check_identical "same at K=4 (ragged shards)" ~shards:4 run);
    tc "window statistics are consistent" (fun () ->
        let engine =
          run_pingpong ~shards:2 ~link:(Sim.Link.synchronous ~delay:2) ~n:4 ~horizon:300
        in
        let w, nw, d, sw = Sim.Engine.window_stats engine in
        Alcotest.(check bool) "null windows <= windows" true (nw <= w);
        Alcotest.(check bool) "every window has >= 1 active shard" true (sw >= w);
        Alcotest.(check bool) "active shards bounded by K per window" true (sw <= 2 * w);
        Alcotest.(check bool) "some direct or window progress" true (d + w > 0));
  ]

(* -- mailbox exchange ordering -------------------------------------------- *)

let mailbox_tests =
  [
    tc "cross-shard mailbox flush preserves sequential delivery order" (fun () ->
        (* p0 (shard 0) bursts three tagged messages to p1 (shard 1) from
           inside a timer callback (so the sends are window-buffered);
           with a synchronous link they deliver at the same instant and
           only the reconciled global seqs order them. *)
        let component = "burst" in
        let tags_of engine =
          let tags = ref [] in
          Sim.Trace.iter (Sim.Engine.trace engine) (fun e ->
              match e.Sim.Trace.body with
              | Sim.Trace.Deliver { tag; _ } -> tags := tag :: !tags
              | _ -> ());
          List.rev !tags
        in
        let run ~shards =
          let engine =
            Sim.Engine.create ~seed:9 ~shards ~n:4 ~link:(Sim.Link.synchronous ~delay:2) ()
          in
          List.iter
            (fun p ->
              Sim.Engine.register engine ~component p (fun ~src:_ _payload -> ()))
            (Sim.Pid.all ~n:4);
          List.iter
            (fun p ->
              ignore
                (Sim.Engine.every engine p ~phase:(1 + (p mod 2)) ~period:4 (fun () ->
                     List.iter
                       (fun tag ->
                         Sim.Engine.send engine ~component ~tag ~src:p
                           ~dst:((p + 1) mod 4) Sim.Payload.Blank)
                       [ "a"; "b"; "c" ])
                  : unit -> unit))
            (Sim.Pid.all ~n:4);
          Sim.Engine.run_until engine 100;
          engine
        in
        let seq_engine = run ~shards:1 in
        let sh_engine = run ~shards:2 in
        let w, _, _, _ = Sim.Engine.window_stats sh_engine in
        Alcotest.(check bool) (Printf.sprintf "windows opened (%d)" w) true (w > 0);
        Alcotest.(check (list string))
          "delivery tag order identical" (tags_of seq_engine) (tags_of sh_engine);
        Alcotest.(check string) "full fingerprint identical" (fingerprint seq_engine)
          (fingerprint sh_engine));
    tc "delivery latency histogram records message latencies" (fun () ->
        (* Guard for the churn-bench fix: a workload that does deliver
           messages must show non-zero delivery_latency counts, in both
           back-ends. *)
        List.iter
          (fun shards ->
            let engine =
              run_pingpong ~shards ~link:(Sim.Link.synchronous ~delay:2) ~n:4 ~horizon:60
            in
            let snap = Obs.Registry.snapshot (Sim.Engine.obs engine) in
            let count =
              match List.assoc_opt "engine.delivery_latency" snap with
              | Some (Obs.Registry.Histogram { count; _ }) -> count
              | _ -> 0
            in
            Alcotest.(check bool)
              (Printf.sprintf "K=%d delivery_latency count > 0 (%d)" shards count)
              true (count > 0))
          [ 1; 2 ]);
  ]

(* -- in-window restrictions ----------------------------------------------- *)

let restriction_tests =
  [
    tc "Engine.at from inside a parallel window is rejected" (fun () ->
        let engine =
          Sim.Engine.create ~seed:1 ~shards:2 ~n:4 ~link:(Sim.Link.synchronous ~delay:2) ()
        in
        List.iter
          (fun p ->
            ignore
              (Sim.Engine.every engine p ~phase:1 ~period:2 (fun () ->
                   Sim.Engine.at engine 50 (fun () -> ()))
                : unit -> unit))
          (Sim.Pid.all ~n:4);
        Alcotest.check_raises "invalid_arg"
          (Invalid_argument "Engine.at: forbidden inside a parallel window") (fun () ->
            Sim.Engine.run_until engine 40));
    tc "with_shards scopes the default shard count" (fun () ->
        Sim.Shard.with_shards 4 (fun () ->
            let engine =
              Sim.Engine.create ~seed:1 ~n:8 ~link:(Sim.Link.synchronous ~delay:1) ()
            in
            Alcotest.(check int) "default picked up" 4 (Sim.Engine.shard_count engine));
        let engine =
          Sim.Engine.create ~seed:1 ~n:8 ~link:(Sim.Link.synchronous ~delay:1) ()
        in
        Alcotest.(check int) "restored" 1 (Sim.Engine.shard_count engine));
    tc "shard count clamps to n" (fun () ->
        let engine =
          Sim.Engine.create ~seed:1 ~shards:8 ~n:3 ~link:(Sim.Link.synchronous ~delay:1) ()
        in
        Alcotest.(check int) "clamped" 3 (Sim.Engine.shard_count engine));
  ]

let suites =
  [
    ("shard.determinism", shard_tests);
    ("shard.windows", window_tests);
    ("shard.mailboxes", mailbox_tests);
    ("shard.restrictions", restriction_tests);
  ]
