(* A decoy: same basename as the exempt module, wrong path.  The R1
   exemption is by exact path (lib/sim/rng.ml), so this Random use must
   be flagged. *)
let sample () = Random.int 6
