(* The real seeded-generator path: lib/sim/rng.ml is the one file R1
   exempts, so the Random use below must produce no finding. *)
let seed_from_ambient () = Random.int 1_000_000
