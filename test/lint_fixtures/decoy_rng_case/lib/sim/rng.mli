val seed_from_ambient : unit -> int
