(* R5 fixture: a lib/ module with no .mli must produce one [R5] finding. *)

let answer = 42
