(* Suppression fixture: the same violation shapes as the [*_bad] files,
   each silenced by [@lint.allow <rule> "reason"].  Must produce zero
   findings. *)

[@@@lint.allow polycmp "fixture: whole-file allowance for the sort below"]

let wall () = (Sys.time [@lint.allow ambient "fixture: measuring the host"]) ()

let unordered table =
  (Hashtbl.fold
     (fun k _ acc -> k :: acc)
     table [] [@lint.allow unordered "fixture: consumer is order-insensitive"])

let cmp xs = List.sort compare xs
