(* R6 fixture: computed metric/span names (plus the literal and allow escapes). *)
let bad_counter reg which = Obs.Registry.counter reg ~name:("consensus." ^ which)
let bad_gauge reg parts = Obs.Registry.gauge reg ~name:(String.concat "." parts)

let bad_histogram reg n =
  Obs.Registry.histogram reg ~name:(Printf.sprintf "fd.latency.%d" n) ~buckets:[ 8; 16 ]

let bad_span engine p component name = Sim.Engine.begin_span engine p ~component ~name
let good_counter reg = Obs.Registry.counter reg ~name:"consensus.ec.rounds"
let good_span engine p = Sim.Engine.begin_span engine p ~component:"fd.ring" ~name:"epoch"

let allowed reg name =
  (Obs.Registry.counter reg ~name [@lint.allow obsname "fixture: the escape hatch"])
