(* A waiver whose span covers no finding: the ambient call it once
   excused is gone, so the attribute itself is reported as STALE. *)
let fine () = (1 + 1 [@lint.allow ambient "fixture: nothing left to waive"])
