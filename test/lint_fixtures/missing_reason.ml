(* A [@lint.allow] without a reason string does not suppress anything and
   is itself reported: this file must produce one [LINT] finding and one
   [R1] finding. *)

let cpu () = (Sys.time [@lint.allow ambient]) ()
