(* R2 fixture: the three [bad_*] bindings must each produce one [R2]
   finding; the [good_*] bindings must produce none. *)

let bad_direct table = Hashtbl.fold (fun k _ acc -> k :: acc) table []

let bad_bound table =
  let xs = Hashtbl.fold (fun k _ acc -> k :: acc) table [] in
  List.length xs

let bad_iter table =
  let acc = ref [] in
  Hashtbl.iter (fun k _ -> acc := k :: !acc) table;
  !acc

let good_piped table =
  Hashtbl.fold (fun k _ acc -> k :: acc) table [] |> List.sort Int.compare

let good_direct table = List.sort Int.compare (Hashtbl.fold (fun k _ acc -> k :: acc) table [])

let good_bound table =
  let xs = Hashtbl.fold (fun k _ acc -> k :: acc) table [] in
  List.sort Int.compare xs

let good_counter table = Hashtbl.fold (fun _ v acc -> acc + v) table 0
