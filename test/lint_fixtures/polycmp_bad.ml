(* R3 fixture: the four [bad_*] bindings must each produce one [R3]
   finding; the [good_*] bindings must produce none. *)

type vote =
  | Yes
  | No

let bad_sort xs = List.sort compare xs
let bad_value v = v = Value.null
let bad_time t = t <> Sim_time.zero
let bad_vote v = v = Yes
let good_sort xs = List.sort Int.compare xs
let good_vote = function Yes -> true | No -> false
let good_int a b = a = b + 1
