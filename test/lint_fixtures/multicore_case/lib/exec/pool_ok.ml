(* R1 fixture: lib/exec/ — the job pool — may use Domain/Atomic/Mutex. *)
let next = Atomic.make 0
let spawn f = Domain.spawn f
let guard = Mutex.create ()
