(* Interface stub so this fixture only exercises R1's exec exemption. *)
val next : int Atomic.t
val spawn : (unit -> 'a) -> 'a Domain.t
val guard : Mutex.t
