(* R1 fixture: multicore primitives outside lib/exec/ must be flagged. *)
let counter = Atomic.make 0
let run () = Domain.spawn (fun () -> Atomic.incr counter)
let guard = Mutex.create ()
