(* Interface stub so this fixture only seeds R1 findings, not R5. *)
val counter : int Atomic.t
val run : unit -> unit Domain.t
val guard : Mutex.t
