(* R1 fixture: the shard exemption is the exact path lib/sim/shard.ml —
   any other lib/sim/ file touching multicore primitives is still flagged. *)
let key = Domain.DLS.new_key (fun () -> 0)
let guard = Mutex.create ()
