(* R1 fixture: lib/sim/shard.ml — the shard barrier module — may use
   Domain.DLS to route worker-domain effects into replay buffers. *)
let ctx = Domain.DLS.new_key (fun () -> 0)
let probe () = Domain.DLS.get ctx
