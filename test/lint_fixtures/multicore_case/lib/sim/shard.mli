(* Interface stub so this fixture only exercises R1's shard exemption. *)
val ctx : int Domain.DLS.key
val probe : unit -> int
