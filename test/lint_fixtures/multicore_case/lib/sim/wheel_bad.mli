(* Interface stub so this fixture only seeds R1 findings, not R5. *)
val key : int Domain.DLS.key
val guard : Mutex.t
