(* R1 fixture: every binding below must produce one [R1] finding. *)

let roll () = Random.int 6
let reseed () = Random.self_init ()
let wall () = Unix.gettimeofday ()
let cpu () = Sys.time ()
let table () = Hashtbl.create ~random:true 16
