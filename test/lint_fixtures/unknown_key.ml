(* A [@lint.allow] naming a key no registered rule owns suppresses
   nothing and is itself reported: this file must produce one [LINT]
   finding and one [R1] finding. *)

let cpu () = (Sys.time [@lint.allow ambiant "typo: no such rule key"]) ()
