(* R4 fixture: [Dead_kind] (never constructed) and [Dropped_kind]
   (constructed but never matched) must each produce one [R4] finding;
   [Healthy] must produce none. *)

type Sim.Payload.t +=
  | Dead_kind of int
  | Dropped_kind
  | Healthy

let send () =
  ignore Dropped_kind;
  ignore Healthy

let recv = function Healthy -> true | _ -> false
