(* The torture matrix: every detector stack against every crash scenario,
   checked against its claimed class.  One parametric loop, not copy-paste:
   each (detector, scenario) pair is its own alcotest case so failures
   pinpoint the cell. *)

let detectors : (string * Scenario.detector * Fd.Classes.t) list =
  [
    ("heartbeat-p", Scenario.Heartbeat_p, Fd.Classes.P_eventual);
    ("ring-s", Scenario.Ring_s, Fd.Classes.S_eventual);
    ("ring-w", Scenario.Ring_w, Fd.Classes.W_eventual);
    ("leader-s", Scenario.Leader_s, Fd.Classes.S_eventual);
    ("stable-omega", Scenario.Stable_omega, Fd.Classes.Omega);
    ("ec-from-leader", Scenario.Ec_from_leader, Fd.Classes.Ec);
    ("ec-from-ring", Scenario.Ec_from_ring, Fd.Classes.Ec);
    ("ec-from-stable", Scenario.Ec_from_stable, Fd.Classes.Ec);
    ("ec-from-heartbeat", Scenario.Ec_from_heartbeat, Fd.Classes.Ec);
  ]

(* Each scenario: n, crash schedule, network, horizon. *)
let scenarios : (string * int * Sim.Fault.t * Scenario.net * int) list =
  let calm seed = { Scenario.default_net with seed } in
  let chaos seed = Scenario.chaotic_net ~seed ~gst:400 () in
  [
    ("failure-free", 5, Sim.Fault.none, calm 11, 6000);
    ("first process crashes", 5, Sim.Fault.crash 0 ~at:300, calm 12, 8000);
    ("last process crashes", 5, Sim.Fault.crash 4 ~at:300, calm 13, 8000);
    ( "cascade of leaders",
      7,
      Sim.Fault.crashes [ (0, 200); (1, 700); (2, 1200) ],
      calm 14,
      10_000 );
    ( "adjacent pair at the same instant",
      6,
      Sim.Fault.crashes [ (2, 500); (3, 500) ],
      calm 15,
      9000 );
    ( "all but two crash",
      6,
      Sim.Fault.crashes [ (0, 100); (1, 200); (3, 300); (5, 400) ],
      calm 16,
      9000 );
    ("chaos then one crash", 5, Sim.Fault.crash 1 ~at:700, chaos 17, 12_000);
    ( "crash before the run calms down",
      5,
      Sim.Fault.crash 0 ~at:50,
      chaos 18,
      12_000 );
  ]

let cell (dname, detector, cls) (sname, n, crashes, net, horizon) =
  Alcotest.test_case (Printf.sprintf "%s / %s" dname sname) `Quick (fun () ->
      let _, run, _ = Scenario.fd_run ~net ~crashes ~horizon ~n ~detector () in
      Test_util.check_class (dname ^ " under " ^ sname) cls run)

let torture_tests = List.concat_map (fun d -> List.map (cell d) scenarios) detectors

let suites = [ ("fd.torture", torture_tests) ]
