(* Tests of the two baseline consensus protocols: Chandra–Toueg (◇S,
   rotating coordinator) and the Mostefaoui–Raynal-style Ω protocol. *)

let tc name f = Alcotest.test_case name `Quick f

let decided_values (r : Scenario.consensus_run) =
  List.map (fun (_, v, _, _) -> v) (Sim.Trace.decisions r.trace)

(* ------------------------------------------------------------------ *)
(* Chandra–Toueg                                                      *)
(* ------------------------------------------------------------------ *)

let ct_tests =
  [
    tc "failure-free run decides in round 1" (fun () ->
        let r = Scenario.run_consensus ~n:5 ~detector:Scenario.Ring_s ~protocol:Scenario.Ct () in
        Test_util.check_no_violations "ct" r.trace ~n:5;
        Alcotest.(check (option int)) "round 1" (Some 1)
          (Spec.Consensus_props.decision_round r.trace));
    tc "validity: the decision is some process's proposal" (fun () ->
        let r =
          Scenario.run_consensus ~n:5
            ~proposals:(fun p -> 1000 + (7 * p))
            ~detector:Scenario.Ring_s ~protocol:Scenario.Ct ()
        in
        Test_util.check_no_violations "ct" r.trace ~n:5;
        match decided_values r with
        | v :: _ -> Alcotest.(check bool) "proposed" true (List.exists (fun p -> 1000 + (7 * p) = v) (Sim.Pid.all ~n:5))
        | [] -> Alcotest.fail "nobody decided");
    tc "survives the crash of the first coordinator" (fun () ->
        (* p1 coordinates round 1; kill it immediately. *)
        let r =
          Scenario.run_consensus ~n:5 ~crashes:(Sim.Fault.crash 0 ~at:1)
            ~detector:Scenario.Ring_s ~protocol:Scenario.Ct ()
        in
        Test_util.check_no_violations "ct" r.trace ~n:5);
    tc "survives a coordinator crash between its phases" (fun () ->
        (* The coordinator dies a few ticks in, after announcing estimates
           may already be under way. *)
        let r =
          Scenario.run_consensus ~n:5 ~crashes:(Sim.Fault.crash 0 ~at:5)
            ~detector:Scenario.Ring_s ~protocol:Scenario.Ct ()
        in
        Test_util.check_no_violations "ct" r.trace ~n:5);
    tc "tolerates any minority of crashes" (fun () ->
        let r =
          Scenario.run_consensus ~n:7
            ~crashes:(Sim.Fault.crashes [ (0, 10); (2, 60); (5, 120) ])
            ~horizon:10_000 ~detector:Scenario.Ring_s ~protocol:Scenario.Ct ()
        in
        Test_util.check_no_violations "ct" r.trace ~n:7);
    tc "rotating coordinator pays for a late leader (Theorem 3 shape)" (fun () ->
        (* Stable-from-start detector trusting only p4 (index 3): rounds
           coordinated by p1..p3 are all NACKed, so the decision falls in
           round 4. *)
        let n = 5 in
        let leader = 3 in
        let r =
          Scenario.run_consensus ~n ~detector:(Scenario.Scripted_stable leader)
            ~protocol:Scenario.Ct ()
        in
        Test_util.check_no_violations "ct" r.trace ~n;
        Alcotest.(check (option int)) "decides in round leader+1" (Some (leader + 1))
          (Spec.Consensus_props.decision_round r.trace));
    tc "chaotic network before GST still reaches agreement" (fun () ->
        let r =
          Scenario.run_consensus
            ~net:(Scenario.chaotic_net ~seed:3 ~gst:500 ())
            ~horizon:12_000 ~n:5 ~detector:Scenario.Ring_s ~protocol:Scenario.Ct ()
        in
        Test_util.check_no_violations "ct" r.trace ~n:5);
  ]

(* ------------------------------------------------------------------ *)
(* Mostefaoui–Raynal (Ω)                                              *)
(* ------------------------------------------------------------------ *)

let mr_tests =
  [
    tc "failure-free run decides in round 1" (fun () ->
        let r =
          Scenario.run_consensus ~n:5 ~detector:Scenario.Ec_from_leader ~protocol:Scenario.Mr ()
        in
        Test_util.check_no_violations "mr" r.trace ~n:5;
        Alcotest.(check (option int)) "round 1" (Some 1)
          (Spec.Consensus_props.decision_round r.trace));
    tc "decides in one round with a stable leader anywhere" (fun () ->
        List.iter
          (fun leader ->
            let r =
              Scenario.run_consensus ~n:5 ~detector:(Scenario.Scripted_stable leader)
                ~protocol:Scenario.Mr ()
            in
            Test_util.check_no_violations "mr" r.trace ~n:5;
            Alcotest.(check (option int))
              (Printf.sprintf "leader p%d: round 1" (leader + 1))
              (Some 1)
              (Spec.Consensus_props.decision_round r.trace))
          [ 0; 2; 4 ]);
    tc "survives the leader's crash" (fun () ->
        let r =
          Scenario.run_consensus ~n:5 ~crashes:(Sim.Fault.crash 0 ~at:30)
            ~horizon:10_000 ~detector:Scenario.Ec_from_leader ~protocol:Scenario.Mr ()
        in
        Test_util.check_no_violations "mr" r.trace ~n:5);
    tc "tolerates a minority of crashes" (fun () ->
        let r =
          Scenario.run_consensus ~n:7
            ~crashes:(Sim.Fault.crashes [ (1, 15); (3, 80); (6, 200) ])
            ~horizon:10_000 ~detector:Scenario.Ec_from_leader ~protocol:Scenario.Mr ()
        in
        Test_util.check_no_violations "mr" r.trace ~n:7);
    tc "f=0: waits for everybody, works when nobody crashes" (fun () ->
        let eng = Scenario.engine ~n:4 () in
        let fd = Scenario.install_detector eng Scenario.Ec_from_leader in
        let rb = Broadcast.Reliable_broadcast.create eng in
        let inst = Consensus.Mr_consensus.install ~f:0 eng ~fd ~rb () in
        List.iter (fun p -> inst.Consensus.Instance.propose p (10 * p)) (Sim.Pid.all ~n:4);
        Sim.Engine.run_until eng 5000;
        Test_util.check_no_violations "mr f=0" (Sim.Engine.trace eng) ~n:4);
    tc "rejects a non-minority f" (fun () ->
        let eng = Scenario.engine ~n:4 () in
        let fd = Scenario.install_detector eng Scenario.Ec_from_leader in
        let rb = Broadcast.Reliable_broadcast.create eng in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Consensus.Mr_consensus.install ~f:2 eng ~fd ~rb ());
             false
           with Invalid_argument _ -> true));
    tc "staggered proposals: late proposers join the frontier" (fun () ->
        let r =
          Scenario.run_consensus ~n:5
            ~propose_at:(fun p -> 50 * p)
            ~detector:Scenario.Ec_from_leader ~protocol:Scenario.Mr ()
        in
        Test_util.check_no_violations "mr staggered" r.trace ~n:5);
  ]

(* ------------------------------------------------------------------ *)
(* Degenerate systems and the Instance/Value helpers                  *)
(* ------------------------------------------------------------------ *)

let edge_tests =
  [
    tc "n=1: a lonely process decides its own proposal (all protocols)" (fun () ->
        List.iter
          (fun protocol ->
            let r =
              Scenario.run_consensus ~n:1 ~detector:Scenario.Ec_from_leader ~protocol ()
            in
            Test_util.check_no_violations
              ("n=1 " ^ Scenario.protocol_name protocol)
              r.trace ~n:1;
            Alcotest.(check (option int))
              ("n=1 value " ^ Scenario.protocol_name protocol)
              (Some 100)
              (Option.map (fun (_, v, _, _) -> v)
                 (List.nth_opt (Sim.Trace.decisions r.trace) 0)))
          [ Scenario.Ec Ecfd.Ec_consensus.default_params; Scenario.Ct; Scenario.Mr; Scenario.Hr ]);
    tc "n=2: decides when both are correct (f<n/2 means zero faults)" (fun () ->
        let r =
          Scenario.run_consensus ~n:2 ~detector:Scenario.Ec_from_leader
            ~protocol:(Scenario.Ec Ecfd.Ec_consensus.default_params) ()
        in
        Test_util.check_no_violations "n=2" r.trace ~n:2);
    tc "Instance helpers: max_round and decision_rounds" (fun () ->
        let r =
          Scenario.run_consensus ~n:4 ~detector:Scenario.Ec_from_leader
            ~protocol:(Scenario.Ec Ecfd.Ec_consensus.default_params) ()
        in
        Alcotest.(check bool) "max_round >= 1" true
          (Consensus.Instance.max_round r.instance ~n:4 >= 1);
        Alcotest.(check int) "one decision round per process" 4
          (List.length (Consensus.Instance.decision_rounds r.instance ~n:4));
        (match Consensus.Instance.decided_value r.instance 0 with
        | Some v -> Alcotest.(check bool) "decided_value is a proposal" true (v >= 100 && v < 104)
        | None -> Alcotest.fail "no decision"));
    tc "Value: null handling and proposal validity" (fun () ->
        Alcotest.(check bool) "null is null" true (Consensus.Value.is_null Consensus.Value.null);
        Alcotest.(check bool) "null invalid" false
          (Consensus.Value.valid_proposal Consensus.Value.null);
        Alcotest.(check bool) "0 valid" true (Consensus.Value.valid_proposal 0);
        Alcotest.(check string) "pp null" "<null>"
          (Format.asprintf "%a" Consensus.Value.pp Consensus.Value.null));
    tc "full-stack determinism: same seed, identical trace" (fun () ->
        let run () =
          let r =
            Scenario.run_consensus ~net:{ Scenario.default_net with seed = 91 } ~n:5
              ~crashes:(Sim.Fault.crash 1 ~at:40) ~detector:Scenario.Ec_from_ring
              ~protocol:(Scenario.Ec Ecfd.Ec_consensus.default_params) ()
          in
          List.map (Format.asprintf "%a" Sim.Trace.pp_event) (Sim.Trace.events r.trace)
        in
        Alcotest.(check (list string)) "bit-identical" (run ()) (run ()));
    tc "double proposal is rejected" (fun () ->
        let eng = Scenario.engine ~n:3 () in
        let fd = Scenario.install_detector eng Scenario.Ec_from_leader in
        let rb = Broadcast.Reliable_broadcast.create eng in
        let inst = Ecfd.Ec_consensus.install eng ~fd ~rb Ecfd.Ec_consensus.default_params in
        inst.Consensus.Instance.propose 0 7;
        Alcotest.(check bool) "raises" true
          (try
             inst.Consensus.Instance.propose 0 8;
             false
           with Invalid_argument _ -> true));
    tc "invalid proposal value is rejected" (fun () ->
        let eng = Scenario.engine ~n:3 () in
        let fd = Scenario.install_detector eng Scenario.Ec_from_leader in
        let rb = Broadcast.Reliable_broadcast.create eng in
        let inst = Consensus.Ct_consensus.install eng ~fd ~rb () in
        Alcotest.(check bool) "raises" true
          (try
             inst.Consensus.Instance.propose 0 Consensus.Value.null;
             false
           with Invalid_argument _ -> true));
  ]

(* ------------------------------------------------------------------ *)
(* Hurfin–Raynal-style fast ◇S                                        *)
(* ------------------------------------------------------------------ *)

let hr_tests =
  [
    tc "failure-free run decides in round 1" (fun () ->
        let r = Scenario.run_consensus ~n:5 ~detector:Scenario.Ring_s ~protocol:Scenario.Hr () in
        Test_util.check_no_violations "hr" r.trace ~n:5;
        Alcotest.(check (option int)) "round 1" (Some 1)
          (Spec.Consensus_props.decision_round r.trace));
    tc "rotating coordinator: Theorem 3 shape, like CT" (fun () ->
        let n = 5 in
        let leader = 2 in
        let r =
          Scenario.run_consensus ~n ~detector:(Scenario.Scripted_stable leader)
            ~protocol:Scenario.Hr ()
        in
        Test_util.check_no_violations "hr" r.trace ~n;
        Alcotest.(check (option int)) "decides in round leader+1" (Some (leader + 1))
          (Spec.Consensus_props.decision_round r.trace));
    tc "survives the crash of the first coordinator" (fun () ->
        let r =
          Scenario.run_consensus ~n:5 ~crashes:(Sim.Fault.crash 0 ~at:3)
            ~horizon:10_000 ~detector:Scenario.Ring_s ~protocol:Scenario.Hr ()
        in
        Test_util.check_no_violations "hr coord crash" r.trace ~n:5);
    tc "tolerates a minority of crashes" (fun () ->
        let r =
          Scenario.run_consensus ~n:7
            ~crashes:(Sim.Fault.crashes [ (0, 10); (3, 80); (5, 150) ])
            ~horizon:10_000 ~detector:Scenario.Ring_s ~protocol:Scenario.Hr ()
        in
        Test_util.check_no_violations "hr minority" r.trace ~n:7);
    tc "two communication phases per round" (fun () ->
        let r = Scenario.run_consensus ~n:4 ~detector:Scenario.Ring_s ~protocol:Scenario.Hr () in
        Alcotest.(check int) "phases" 2 r.instance.Consensus.Instance.phases_per_round);
  ]

(* ------------------------------------------------------------------ *)
(* Randomised safety/termination for the baselines                    *)
(* ------------------------------------------------------------------ *)

let property_tests =
  let random_run protocol detector =
    Test_util.qcheck ~count:20
      ~name:
        (Printf.sprintf "%s over %s: uniform consensus on random runs"
           (Scenario.protocol_name protocol)
           (Scenario.detector_name detector))
      QCheck2.Gen.(tup2 (int_range 3 7) (int_range 0 100_000))
      (fun (n, seed) ->
        let rng = Sim.Rng.create ~seed in
        let crashes = Sim.Fault.random_minority rng ~n ~latest:300 in
        let net = { Scenario.default_net with seed; gst = 150 } in
        let r =
          Scenario.run_consensus ~net ~crashes ~horizon:15_000 ~n ~detector ~protocol ()
        in
        Test_util.bool_law
          (Printf.sprintf "n=%d seed=%d crashes=%s violations=%s" n seed
             (Format.asprintf "%a" Sim.Fault.pp crashes)
             (String.concat "; "
                (List.map
                   (Format.asprintf "%a" Spec.Consensus_props.pp_violation)
                   (Spec.Consensus_props.check_all r.trace ~n))))
          (Spec.Consensus_props.check_all r.trace ~n = []))
  in
  [
    random_run Scenario.Ct Scenario.Ring_s;
    random_run Scenario.Ct Scenario.Heartbeat_p;
    random_run Scenario.Mr Scenario.Ec_from_leader;
    random_run Scenario.Hr Scenario.Ring_s;
  ]

let suites =
  [
    ("consensus.ct", ct_tests);
    ("consensus.mr", mr_tests);
    ("consensus.hr", hr_tests);
    ("consensus.edge", edge_tests);
    ("consensus.props", property_tests);
  ]
