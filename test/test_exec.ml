(* The Domain job pool (lib/exec): order restoration, exception
   propagation, sequential equivalence, metrics — and the harness-level
   determinism contract, checked by running a real experiment (E4) under
   different domain counts and comparing the captured output
   byte-for-byte. *)

let tc name f = Alcotest.test_case name `Quick f

(* Capture everything an [f ()] prints through Format.std_formatter (the
   only channel the table renderer uses). *)
let capture f =
  let buf = Buffer.create 4096 in
  let saved = Format.pp_get_formatter_out_functions Format.std_formatter () in
  Format.pp_set_formatter_out_functions Format.std_formatter
    {
      saved with
      Format.out_string = (fun s pos len -> Buffer.add_substring buf s pos len);
      out_flush = (fun () -> ());
    };
  Fun.protect
    ~finally:(fun () ->
      Format.pp_print_flush Format.std_formatter ();
      Format.pp_set_formatter_out_functions Format.std_formatter saved)
    f;
  Buffer.contents buf

(* A job whose cost shrinks with its index: late jobs finish first under
   parallel execution, so order restoration is actually exercised. *)
let uneven_job i () =
  let spin = ref 0 in
  for _ = 1 to (32 - i) * 10_000 do
    incr spin
  done;
  ignore !spin;
  i * i

let pool_tests =
  [
    tc "results come back in job order, not completion order" (fun () ->
        let jobs = List.init 32 uneven_job in
        Alcotest.(check (list int))
          "squares in order"
          (List.init 32 (fun i -> i * i))
          (Exec.Pool.run ~domains:4 jobs));
    tc "an empty job list is a no-op" (fun () ->
        Alcotest.(check (list int)) "empty" [] (Exec.Pool.run ~domains:4 []));
    tc "domains=1 equals domains=4 on simulation jobs" (fun () ->
        (* Each job is a full engine run — the pool's real workload. *)
        let sim_job seed () =
          let engine =
            Sim.Engine.create ~seed ~n:4
              ~link:(Sim.Link.reliable ~min_delay:1 ~max_delay:8 ())
              ()
          in
          let _ = Fd.Heartbeat_p.install engine Fd.Heartbeat_p.default_params in
          Sim.Engine.run_until engine 400;
          (Sim.Stats.total (Sim.Engine.stats engine)).Sim.Stats.sent
        in
        let jobs = List.map sim_job [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
        Alcotest.(check (list int))
          "identical results"
          (Exec.Pool.run ~domains:1 jobs)
          (Exec.Pool.run ~domains:4 jobs));
    tc "the lowest-indexed exception wins, every job still runs" (fun () ->
        let ran = Array.make 8 false in
        let job i () =
          ran.(i) <- true;
          if i = 2 then failwith "boom-low";
          if i = 6 then failwith "boom-high";
          i
        in
        Alcotest.check_raises "lowest index re-raised" (Failure "boom-low") (fun () ->
            ignore (Exec.Pool.run ~domains:4 (List.init 8 job) : int list));
        Alcotest.(check bool)
          "jobs after the failure ran too" true
          (Array.for_all Fun.id ran));
    tc "a nested run degrades to sequential instead of deadlocking" (fun () ->
        let results =
          Exec.Pool.run ~domains:2
            (List.init 4 (fun i () ->
                 List.fold_left ( + ) 0
                   (Exec.Pool.run ~domains:4 (List.init 5 (fun j () -> (10 * i) + j)))))
        in
        Alcotest.(check (list int))
          "inner sums correct"
          (List.init 4 (fun i -> (50 * i) + 10))
          results);
    tc "with_domains restores the previous default" (fun () ->
        Exec.Pool.with_domains 3 (fun () ->
            Alcotest.(check int) "inside" 3 (Exec.Pool.default_domains ());
            Exec.Pool.with_domains 1 (fun () ->
                Alcotest.(check int) "nested" 1 (Exec.Pool.default_domains ()));
            Alcotest.(check int) "restored" 3 (Exec.Pool.default_domains ())));
    tc "metrics count runs, jobs and a positive busy/wall split" (fun () ->
        Exec.Pool.with_domains 2 (fun () ->
            Exec.Pool.reset_metrics ();
            ignore (Exec.Pool.run (List.init 6 uneven_job) : int list);
            ignore (Exec.Pool.run (List.init 4 uneven_job) : int list);
            let m = Exec.Pool.metrics () in
            Alcotest.(check int) "runs" 2 m.Exec.Pool.runs;
            Alcotest.(check int) "jobs" 10 m.Exec.Pool.jobs;
            Alcotest.(check bool) "busy > 0" true (m.Exec.Pool.busy_s > 0.0);
            Alcotest.(check bool) "wall > 0" true (m.Exec.Pool.wall_s > 0.0)));
  ]

let determinism_tests =
  [
    tc "E4 renders byte-identical tables at 1 and 4 domains" (fun () ->
        let render domains =
          Exec.Pool.with_domains domains (fun () -> capture Experiments.e4)
        in
        let sequential = render 1 in
        Alcotest.(check bool)
          "E4 produced output" true
          (String.length sequential > 0);
        Alcotest.(check string) "identical output" sequential (render 4));
    tc "E4 trace exports are byte-identical at 1 and 4 domains" (fun () ->
        (* The CI artifact contract: the canonical-run exports are a pure
           function of (seed, config), so rendering them through the pool
           at different domain counts must give the same bytes. *)
        let export domains =
          Exec.Pool.with_domains domains Experiments.e4_trace_exports
        in
        let chrome1, jsonl1 = export 1 in
        let chrome4, jsonl4 = export 4 in
        Alcotest.(check bool) "chrome export non-empty" true (String.length chrome1 > 0);
        Alcotest.(check bool) "jsonl export non-empty" true (String.length jsonl1 > 0);
        Alcotest.(check string) "chrome identical" chrome1 chrome4;
        Alcotest.(check string) "jsonl identical" jsonl1 jsonl4);
  ]

let suites =
  [ ("exec pool", pool_tests); ("exec determinism", determinism_tests) ]
