(* The observability layer: Obs.Registry semantics, the two trace
   exporters against checked-in golden files (byte-exact, seeded run),
   and the ecfd-trace query core (ancestry, diff, filter, schema) on a
   crafted trace. *)

let tc name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let registry_tests =
  [
    tc "counter: incr and add aggregate" (fun () ->
        let r = Obs.Registry.create () in
        let c = Obs.Registry.counter r ~name:"x.count" in
        Obs.Registry.incr c;
        Obs.Registry.add c 4;
        Alcotest.(check bool)
          "value 5" true
          (Obs.Registry.snapshot r = [ ("x.count", Obs.Registry.Counter 5) ]));
    tc "gauge: set overwrites, set_max keeps the high-water" (fun () ->
        let r = Obs.Registry.create () in
        let g = Obs.Registry.gauge r ~name:"x.level" in
        Obs.Registry.set g 7;
        Obs.Registry.set_max g 3;
        Alcotest.(check bool)
          "set_max 3 after set 7 keeps 7" true
          (Obs.Registry.snapshot r = [ ("x.level", Obs.Registry.Gauge 7) ]);
        Obs.Registry.set g 2;
        Alcotest.(check bool)
          "set 2 overwrites" true
          (Obs.Registry.snapshot r = [ ("x.level", Obs.Registry.Gauge 2) ]));
    tc "histogram: bucketing, overflow, count/sum/max" (fun () ->
        let r = Obs.Registry.create () in
        let h = Obs.Registry.histogram r ~name:"x.lat" ~buckets:[ 10; 100 ] in
        List.iter (Obs.Registry.observe h) [ 0; 10; 11; 250 ];
        match Obs.Registry.snapshot r with
        | [ ("x.lat", Obs.Registry.Histogram v) ] ->
          Alcotest.(check (list int)) "bounds" [ 10; 100 ] v.buckets;
          Alcotest.(check (list int)) "per-bucket + overflow" [ 2; 1; 1 ] v.counts;
          Alcotest.(check int) "count" 4 v.count;
          Alcotest.(check int) "sum" 271 v.sum;
          Alcotest.(check int) "max" 250 v.max_value
        | _ -> Alcotest.fail "expected exactly one histogram");
    tc "registration is idempotent and aggregating" (fun () ->
        let r = Obs.Registry.create () in
        Obs.Registry.incr (Obs.Registry.counter r ~name:"x.count");
        Obs.Registry.incr (Obs.Registry.counter r ~name:"x.count");
        Alcotest.(check bool)
          "both increments on one metric" true
          (Obs.Registry.snapshot r = [ ("x.count", Obs.Registry.Counter 2) ]));
    tc "re-registering under a different kind is refused" (fun () ->
        let r = Obs.Registry.create () in
        ignore (Obs.Registry.counter r ~name:"x.count");
        Alcotest.check_raises "kind mismatch"
          (Invalid_argument
             "Obs.Registry: \"x.count\" is already registered as a counter, not a gauge")
          (fun () -> ignore (Obs.Registry.gauge r ~name:"x.count")));
    tc "snapshot is in name order, not insertion order" (fun () ->
        let r = Obs.Registry.create () in
        ignore (Obs.Registry.counter r ~name:"z.last");
        ignore (Obs.Registry.counter r ~name:"a.first");
        ignore (Obs.Registry.counter r ~name:"m.middle");
        Alcotest.(check (list string))
          "sorted names"
          [ "a.first"; "m.middle"; "z.last" ]
          (List.map fst (Obs.Registry.snapshot r)));
    tc "json_of_snapshot renders every kind deterministically" (fun () ->
        let r = Obs.Registry.create () in
        Obs.Registry.add (Obs.Registry.counter r ~name:"c") 3;
        Obs.Registry.set (Obs.Registry.gauge r ~name:"g") 9;
        Obs.Registry.observe (Obs.Registry.histogram r ~name:"h" ~buckets:[ 2 ]) 1;
        Alcotest.(check string)
          "exact JSON"
          "{\"metrics\":[{\"name\":\"c\",\"kind\":\"counter\",\"value\":3},{\"name\":\"g\",\"kind\":\"gauge\",\"value\":9},{\"name\":\"h\",\"kind\":\"histogram\",\"buckets\":[2],\"counts\":[1,0],\"count\":1,\"sum\":1,\"max\":1,\"p50\":1,\"p99\":1,\"p999\":1}]}"
          (Obs.Registry.json_of_snapshot (Obs.Registry.snapshot r)));
  ]

(* ------------------------------------------------------------------ *)
(* Update interception (the sharded engine's capture/replay hook)      *)
(* ------------------------------------------------------------------ *)

let hook_tests =
  [
    tc "capturing hook defers updates until apply" (fun () ->
        let r = Obs.Registry.create () in
        let c = Obs.Registry.counter r ~name:"c" in
        let ops = ref [] in
        Obs.Registry.set_hook r
          (Some
             (fun op ->
               ops := op :: !ops;
               true));
        Obs.Registry.incr c;
        Obs.Registry.add c 4;
        Obs.Registry.set_hook r None;
        Alcotest.(check bool)
          "nothing applied while captured" true
          (Obs.Registry.snapshot r = [ ("c", Obs.Registry.Counter 0) ]);
        List.iter Obs.Registry.apply (List.rev !ops);
        Alcotest.(check bool)
          "apply replays the captured updates" true
          (Obs.Registry.snapshot r = [ ("c", Obs.Registry.Counter 5) ]));
    tc "a declining hook lets updates through directly" (fun () ->
        let r = Obs.Registry.create () in
        let c = Obs.Registry.counter r ~name:"c" in
        let calls = ref 0 in
        Obs.Registry.set_hook r
          (Some
             (fun _op ->
               incr calls;
               false));
        Obs.Registry.add c 7;
        Obs.Registry.set_hook r None;
        Alcotest.(check int) "hook consulted" 1 !calls;
        Alcotest.(check bool)
          "update applied directly" true
          (Obs.Registry.snapshot r = [ ("c", Obs.Registry.Counter 7) ]));
    tc "apply bypasses an installed capturing hook" (fun () ->
        (* The barrier replays ops while the hook is still installed for
           the next window — apply must never re-enter the hook. *)
        let r = Obs.Registry.create () in
        let c = Obs.Registry.counter r ~name:"c" in
        let calls = ref 0 and ops = ref [] in
        Obs.Registry.set_hook r
          (Some
             (fun op ->
               incr calls;
               ops := op :: !ops;
               true));
        Obs.Registry.incr c;
        List.iter Obs.Registry.apply (List.rev !ops);
        Obs.Registry.set_hook r None;
        Alcotest.(check int) "hook saw only the original update" 1 !calls;
        Alcotest.(check bool)
          "applied exactly once" true
          (Obs.Registry.snapshot r = [ ("c", Obs.Registry.Counter 1) ]));
    tc "noop_op applies without changing anything" (fun () ->
        let r = Obs.Registry.create () in
        Obs.Registry.add (Obs.Registry.counter r ~name:"c") 2;
        let before = Obs.Registry.snapshot r in
        Obs.Registry.apply Obs.Registry.noop_op;
        Alcotest.(check bool) "snapshot unchanged" true (Obs.Registry.snapshot r = before));
    tc "gauge and histogram updates round-trip through capture" (fun () ->
        let r = Obs.Registry.create () in
        let g = Obs.Registry.gauge r ~name:"g" in
        let h = Obs.Registry.histogram r ~name:"h" ~buckets:[ 10 ] in
        let ops = ref [] in
        Obs.Registry.set_hook r
          (Some
             (fun op ->
               ops := op :: !ops;
               true));
        Obs.Registry.set_max g 9;
        Obs.Registry.set_max g 3;
        Obs.Registry.observe h 4;
        Obs.Registry.observe h 25;
        Obs.Registry.set_hook r None;
        List.iter Obs.Registry.apply (List.rev !ops);
        (match Obs.Registry.snapshot r with
        | [ ("g", Obs.Registry.Gauge v); ("h", Obs.Registry.Histogram hv) ] ->
          Alcotest.(check int) "set_max high-water survives replay" 9 v;
          Alcotest.(check (list int)) "bucket + overflow" [ 1; 1 ] hv.counts;
          Alcotest.(check int) "sum" 29 hv.sum;
          Alcotest.(check int) "max" 25 hv.max_value
        | _ -> Alcotest.fail "expected one gauge and one histogram"));
  ]

(* ------------------------------------------------------------------ *)
(* Quantile estimation from bucket counts                              *)
(* ------------------------------------------------------------------ *)

let quantile_tests =
  let q ~buckets ~counts ~count ~max_value p =
    Obs.Registry.histogram_quantile ~buckets ~counts ~count ~max_value p
  in
  [
    tc "empty histogram reports 0 at every quantile" (fun () ->
        List.iter
          (fun p ->
            Alcotest.(check int) "zero" 0
              (q ~buckets:[ 10; 100 ] ~counts:[ 0; 0; 0 ] ~count:0 ~max_value:0 p))
          [ 0.5; 0.99; 0.999 ]);
    tc "estimate is the bucket bound, clamped to the max observation" (fun () ->
        (* Four observations all <= 7 land in the [10] bucket: the bound
           over-estimates, the max clamps it back. *)
        Alcotest.(check int) "clamped" 7
          (q ~buckets:[ 10 ] ~counts:[ 4; 0 ] ~count:4 ~max_value:7 0.5));
    tc "rank sits exactly on a bucket boundary" (fun () ->
        let buckets = [ 10; 20 ] and counts = [ 5; 5; 0 ] in
        (* rank ceil(0.5 * 10) = 5 is the last observation of the first
           bucket; one observation later crosses into the second. *)
        Alcotest.(check int) "p50 on the boundary" 10
          (q ~buckets ~counts ~count:10 ~max_value:20 0.5);
        Alcotest.(check int) "just past the boundary" 20
          (q ~buckets ~counts ~count:10 ~max_value:20 0.51));
    tc "rank clamps to 1 at q = 0" (fun () ->
        Alcotest.(check int) "first bucket" 10
          (q ~buckets:[ 10; 20 ] ~counts:[ 5; 5; 0 ] ~count:10 ~max_value:20 0.0));
    tc "overflow bucket reports the max observation" (fun () ->
        Alcotest.(check int) "overflow" 250
          (q ~buckets:[ 10 ] ~counts:[ 1; 1 ] ~count:2 ~max_value:250 0.99));
    tc "p999 needs one in a thousand past the bucket" (fun () ->
        let buckets = [ 10; 20 ] in
        Alcotest.(check int) "999/1 stays in the first bucket" 10
          (q ~buckets ~counts:[ 999; 1; 0 ] ~count:1000 ~max_value:20 0.999);
        Alcotest.(check int) "998/2 crosses" 20
          (q ~buckets ~counts:[ 998; 2; 0 ] ~count:1000 ~max_value:20 0.999));
  ]

(* ------------------------------------------------------------------ *)
(* Golden exports                                                      *)
(* ------------------------------------------------------------------ *)

(* The exact run behind test/golden/trace_small.* — regenerate with
     ecfd trace -p ec -d scripted-stable -n 3 --seed 2 --horizon 200 -f FMT
   after any intentional exporter or trace change, and review the diff. *)
let golden_trace () =
  let r =
    Scenario.run_consensus
      ~net:{ (Scenario.chaotic_net ~seed:2 ~gst:0 ()) with delta = 8 }
      ~crashes:(Sim.Fault.crashes []) ~horizon:200 ~n:3
      ~detector:(Scenario.Scripted_stable 0)
      ~protocol:(Scenario.Ec Ecfd.Ec_consensus.default_params) ()
  in
  r.Scenario.trace

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let golden_tests =
  [
    tc "JSONL export matches the golden file byte-for-byte" (fun () ->
        Alcotest.(check string)
          "golden/trace_small.jsonl"
          (read_file "golden/trace_small.jsonl")
          (Sim.Trace_export.jsonl_string (golden_trace ())));
    tc "Chrome export matches the golden file byte-for-byte" (fun () ->
        Alcotest.(check string)
          "golden/trace_small.chrome.json"
          (read_file "golden/trace_small.chrome.json")
          (Sim.Trace_export.chrome_string (golden_trace ())));
    tc "golden JSONL parses line-by-line in the query core" (fun () ->
        let events = Tracequery_core.Trace_file.load "golden/trace_small.jsonl" in
        Alcotest.(check bool) "non-empty" true (events <> []);
        List.iteri
          (fun i (e : Tracequery_core.Trace_file.event) ->
            Alcotest.(check int) "seq is dense" i e.seq)
          events);
  ]

(* ------------------------------------------------------------------ *)
(* Query core on a crafted trace                                       *)
(* ------------------------------------------------------------------ *)

(* Two processes exchange a request/ack around a decide, with an
   unrelated note at p3 that must stay out of every cone. *)
let crafted_lines =
  [
    {|{"seq":0,"lc":1,"type":"propose","at":0,"pid":0,"component":"consensus.ec","value":7}|};
    {|{"seq":1,"lc":2,"type":"send","at":1,"src":0,"dst":1,"msg":0,"component":"consensus.ec","tag":"round1"}|};
    {|{"seq":2,"lc":1,"type":"note","at":1,"pid":2,"component":"fd.x","detail":"noise"}|};
    {|{"seq":3,"lc":3,"type":"deliver","at":3,"src":0,"dst":1,"msg":0,"component":"consensus.ec","tag":"round1"}|};
    {|{"seq":4,"lc":4,"type":"send","at":4,"src":1,"dst":0,"msg":1,"component":"consensus.ec","tag":"ack"}|};
    {|{"seq":5,"lc":5,"type":"deliver","at":6,"src":1,"dst":0,"msg":1,"component":"consensus.ec","tag":"ack"}|};
    {|{"seq":6,"lc":6,"type":"decide","at":7,"pid":0,"component":"consensus.ec","value":7,"round":1}|};
  ]

let crafted () =
  List.mapi
    (fun i line -> Tracequery_core.Trace_file.event_of_line ~lineno:(i + 1) line)
    crafted_lines

let seqs events = List.map (fun (e : Tracequery_core.Trace_file.event) -> e.seq) events

let query_tests =
  [
    tc "ancestry follows program order and message edges, not noise" (fun () ->
        let events = crafted () in
        Alcotest.(check (list int))
          "cone of the decide"
          [ 0; 1; 3; 4; 5; 6 ]
          (seqs (Tracequery_core.Query.ancestry events ~seq:6)));
    tc "ancestry of a mid-trace event stops at its past" (fun () ->
        Alcotest.(check (list int))
          "cone of the first deliver"
          [ 0; 1; 3 ]
          (seqs (Tracequery_core.Query.ancestry (crafted ()) ~seq:3)));
    tc "filter by pid matches link endpoints; by time window" (fun () ->
        let events = crafted () in
        Alcotest.(check (list int))
          "everything involving p2"
          [ 1; 3; 4; 5 ]
          (seqs (Tracequery_core.Query.filter ~pid:1 events));
        Alcotest.(check (list int))
          "t in [3,6]"
          [ 3; 4; 5 ]
          (seqs (Tracequery_core.Query.filter ~from_t:3 ~to_t:6 events)));
    tc "diff: identical, divergent line, and length mismatch" (fun () ->
        let open Tracequery_core.Query in
        Alcotest.(check bool)
          "identical" true
          (diff_lines crafted_lines crafted_lines = None);
        (match diff_lines crafted_lines (List.rev crafted_lines) with
        | Some { line = 1; _ } -> ()
        | _ -> Alcotest.fail "expected divergence at line 1");
        match diff_lines crafted_lines (crafted_lines @ [ "{}" ]) with
        | Some { line = 8; left = None; right = Some "{}" } -> ()
        | _ -> Alcotest.fail "expected the right file to run long at line 8");
    tc "schema check flags missing fields and type mismatches" (fun () ->
        let schema =
          Tracequery_core.Json_min.parse
            {|{"type":"object","required":["seq"],"properties":{"seq":{"type":"integer","minimum":0}}}|}
        in
        let check s =
          Tracequery_core.Schema.check ~schema (Tracequery_core.Json_min.parse s)
        in
        Alcotest.(check int) "valid line" 0 (List.length (check {|{"seq":3}|}));
        Alcotest.(check bool) "missing seq flagged" true (check {|{"lc":1}|} <> []);
        Alcotest.(check bool) "wrong type flagged" true (check {|{"seq":"x"}|} <> []);
        Alcotest.(check bool) "negative flagged" true (check {|{"seq":-1}|} <> []));
  ]

let suites =
  [
    ("obs.registry", registry_tests);
    ("obs.hooks", hook_tests);
    ("obs.quantiles", quantile_tests);
    ("obs.golden_exports", golden_tests);
    ("obs.tracequery", query_tests);
  ]
