(* In-process coverage of ecfd-racecheck (tools/racecheck): each
   domain-safety rule D1-D4 is demonstrated on a seeded-violation fixture
   library under racecheck_fixtures/ with exact expected findings (rule,
   file, line), so disabling or breaking any single rule fails its test.
   The fixtures are real dune libraries — the checker reads the .cmt
   files their compilation produced, exactly as `dune build @racecheck`
   does for lib/ and bench/. *)

let result paths = Racecheck_core.Driver.run paths

let run paths =
  List.map
    (fun (f : Check_common.Finding.t) -> (f.rule, f.file, f.line))
    (result paths).Check_common.Cmt_driver.findings

let fixture name = Filename.concat "racecheck_fixtures" name

(* Locations inside .cmt files are relative to the build root. *)
let src case file = Printf.sprintf "test/racecheck_fixtures/%s/%s" case file

let check_findings ~expected paths () =
  Alcotest.(check (list (triple string string int)))
    "findings (rule, file, line)" expected (run paths)

let test_d1_capture =
  (* Line 11 is the write directly in the pool closure; line 5 the same
     ref written through a helper — the interprocedural half. *)
  check_findings
    [ fixture "d1_capture" ]
    ~expected:
      [
        ("D1", src "d1_capture" "d1_capture.ml", 5);
        ("D1", src "d1_capture" "d1_capture.ml", 11);
      ]

let test_d2_publish =
  check_findings
    [ fixture "d2_publish" ]
    ~expected:[ ("D2", src "d2_publish" "d2_publish.ml", 6) ]

let test_d3_missing_arm =
  (* Trace.emit has a replay arm; Stats.bump does not — flagged at its
     sequential call site. *)
  check_findings
    [ fixture "d3_missing_arm" ]
    ~expected:[ ("D3", src "d3_missing_arm" "d3_missing_arm.ml", 18) ]

let test_d4_mutex =
  check_findings
    [ fixture "d4_mutex" ]
    ~expected:
      [
        ("D4", src "d4_mutex" "d4_mutex.ml", 4);
        ("D4", src "d4_mutex" "d4_mutex.ml", 7);
        ("D4", src "d4_mutex" "d4_mutex.ml", 8);
      ]

let test_boundary =
  (* Under a lib/exec/ path, Atomic is sanctioned (no D4) and an opaque
     callee in a [@race.domain] hook IS a D1 obligation; the decoy
     shard.ml gets no exemption from its basename. *)
  check_findings
    [ fixture "boundary" ]
    ~expected:
      [
        ("D1", src "boundary" "lib/exec/pooled.ml", 10);
        ("D4", src "boundary" "shard.ml", 3);
      ]

let test_sanctioned_shard =
  (* The exact-suffix positive case: Domain.DLS at …/lib/sim/shard.ml is
     inside the boundary, so D4 stays silent. *)
  check_findings [ fixture "sanctioned_shard" ] ~expected:[]

let test_clean_shard =
  (* Owner-threaded state inside the closure: the design, not a race. *)
  check_findings [ fixture "clean_shard" ] ~expected:[]

let test_suppressed () =
  let r = result [ fixture "suppressed" ] in
  Alcotest.(check (list (triple string string int)))
    "no surviving findings" []
    (List.map
       (fun (f : Check_common.Finding.t) -> (f.rule, f.file, f.line))
       r.Check_common.Cmt_driver.findings);
  Alcotest.(check int)
    "both violations recorded as suppressed" 2
    (List.length r.Check_common.Cmt_driver.suppressed)

let test_stale =
  (* A [@race.allow] span covering no finding is itself reported. *)
  check_findings
    [ fixture "stale" ]
    ~expected:[ ("STALE", src "stale" "race_stale.ml", 7) ]

let test_whole_directory () =
  (* All fixtures at once, via the same recursive .cmt walk the dune
     @racecheck alias uses. *)
  Alcotest.(check int)
    "total findings over racecheck_fixtures/" 10
    (List.length (run [ "racecheck_fixtures" ]))

let test_registry () =
  let ids = List.map (fun (r : Racecheck_core.Drule.t) -> r.id) Racecheck_core.Registry.all in
  Alcotest.(check (list string)) "rule ids" [ "D1"; "D2"; "D3"; "D4" ] ids;
  let keys =
    List.map (fun (r : Racecheck_core.Drule.t) -> r.key) Racecheck_core.Registry.all
  in
  Alcotest.(check int)
    "suppression keys are unique"
    (List.length keys)
    (List.length (List.sort_uniq String.compare keys))

let suites =
  [
    ( "racecheck",
      [
        Alcotest.test_case "D1: captured write flagged (direct + via helper)" `Quick
          test_d1_capture;
        Alcotest.test_case "D2: unpublished cross-domain read flagged" `Quick
          test_d2_publish;
        Alcotest.test_case "D3: sequential effect without a replay arm flagged" `Quick
          test_d3_missing_arm;
        Alcotest.test_case "D4: Mutex outside the boundary flagged" `Quick
          test_d4_mutex;
        Alcotest.test_case "boundary: lib/exec sanctioned, decoy shard.ml not" `Quick
          test_boundary;
        Alcotest.test_case "boundary: real shard.ml path is sanctioned" `Quick
          test_sanctioned_shard;
        Alcotest.test_case "clean shard-local closure produces no findings" `Quick
          test_clean_shard;
        Alcotest.test_case "[@race.allow] suppresses with a reason" `Quick
          test_suppressed;
        Alcotest.test_case "stale [@race.allow] is itself a finding" `Quick test_stale;
        Alcotest.test_case "directory walk finds every seeded violation" `Quick
          test_whole_directory;
        Alcotest.test_case "registry lists D1-D4 with unique keys" `Quick test_registry;
      ] );
  ]
