(* Standalone sharded-engine exerciser for the ThreadSanitizer CI job.

   Kept free of compiler-libs for the same reason as test/tsan_pool: the
   TSan job builds with the 5.2 tsan compiler variant while the repo's
   analyzers pin compiler-libs to 5.1.  Where tsan_pool drives the job
   pool's counter/slot protocol, this drives the sharded engine's window
   machinery — shard-local stepping on real worker domains
   (ECFD_DOMAINS=4 in CI), op-stream appends through the Domain.DLS
   trace/obs hooks, barrier replay and cross-shard mailbox flushes —
   and re-checks the determinism contract: a sharded run's observable
   state must be byte-identical to the sequential run's.

   ecfd-racecheck argues the same protocol race-free statically (D1/D2
   over the window cones); TSan checks the schedules this run explores. *)

let n = 12
let horizon = 2_000

(* One full run at [shards]: a gossip component where every process
   periodically pings every other and receivers bounce every third ping
   back, so windows carry both timer fires and cross-shard deliveries in
   both directions.  Per-process state is partitioned by destination —
   exactly the shard-local discipline real components follow. *)
let run ~shards =
  let t =
    Sim.Engine.create ~seed:42 ~shards ~n
      ~link:(Sim.Link.reliable ~min_delay:1 ~max_delay:9 ())
      ()
  in
  let pings = Array.make n 0 in
  let pongs = Array.make n 0 in
  List.iter
    (fun p ->
      Sim.Engine.register t ~component:"gossip" p (fun ~src payload ->
          match payload with
          | Sim.Payload.Blank ->
            pings.(p) <- pings.(p) + 1;
            if pings.(p) mod 3 = 0 then
              Sim.Engine.send t ~component:"gossip" ~tag:"pong" ~src:p ~dst:src
                Sim.Payload.Blank
          | _ -> pongs.(p) <- pongs.(p) + 1);
      ignore
        (Sim.Engine.every t p ~phase:(p mod 5) ~period:(7 + (p mod 3))
           (fun () ->
             Sim.Engine.send_to_all_others t ~component:"gossip" ~tag:"ping"
               ~src:p Sim.Payload.Blank)
          : unit -> unit))
    (Sim.Pid.all ~n);
  Sim.Engine.run_until t horizon;
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "now=%d" (Sim.Engine.now t));
  Array.iteri (fun p c -> Buffer.add_string b (Printf.sprintf " %d:%d" p c)) pings;
  Array.iteri (fun p c -> Buffer.add_string b (Printf.sprintf " %d:%d" p c)) pongs;
  Buffer.contents b

let () =
  let seq = run ~shards:1 in
  let par = run ~shards:4 in
  if not (String.equal seq par) then begin
    prerr_endline "tsan_shard: sharded run diverged from sequential";
    prerr_endline ("  shards=1: " ^ seq);
    prerr_endline ("  shards=4: " ^ par);
    exit 1
  end;
  (* A second sharded run must also be bit-stable run-to-run. *)
  let par' = run ~shards:4 in
  if not (String.equal par par') then begin
    prerr_endline "tsan_shard: sharded run not reproducible";
    exit 1
  end;
  print_endline "tsan_shard: OK"
