(* Tests of the paper's contribution: the ◇C class constructions
   (Section 3), the ◇C→◇P transformation (Section 4, Fig. 2) and the
   ◇C consensus algorithm (Section 5, Figs. 3-4). *)

let tc name f = Alcotest.test_case name `Quick f

let ec_params = Ecfd.Ec_consensus.default_params

let report_holds (r : Spec.Fd_props.report) = r.holds

(* ------------------------------------------------------------------ *)
(* Section 3: constructions of <>C                                    *)
(* ------------------------------------------------------------------ *)

let construction_satisfies_ec name detector =
  tc (name ^ " satisfies <>C") (fun () ->
      let crashes = Sim.Fault.crashes [ (0, 200); (3, 500) ] in
      let _, run, _ =
        Scenario.fd_run
          ~net:(Scenario.chaotic_net ~seed:17 ~gst:300 ())
          ~horizon:9000 ~n:6 ~crashes
          ~detector:(match detector with `D d -> d | `Perfect -> Scenario.Ec_from_perfect crashes)
          ()
      in
      Test_util.check_class name Fd.Classes.Ec run)

let construction_tests =
  [
    construction_satisfies_ec "ec-from-leader" (`D Scenario.Ec_from_leader);
    construction_satisfies_ec "ec-from-ring" (`D Scenario.Ec_from_ring);
    construction_satisfies_ec "ec-from-omega-chu" (`D Scenario.Ec_from_omega_chu);
    construction_satisfies_ec "ec-from-heartbeat" (`D Scenario.Ec_from_heartbeat);
    construction_satisfies_ec "ec-from-perfect" `Perfect;
    tc "of_omega suspects everybody but the leader and oneself" (fun () ->
        let e = Scenario.engine ~n:4 () in
        let omega =
          Fd.Scripted.install e
            ~initial:(fun _ -> Fd.Fd_view.make ~trusted:2 ~suspected:Sim.Pid.Set.empty ())
            ~steps:[] ()
        in
        let ec = Ecfd.Ec.of_omega omega ~engine:e in
        Sim.Engine.run_until e 1;
        let v = Fd.Fd_handle.query ec 0 in
        Alcotest.(check (option int)) "trusted" (Some 2) v.Fd.Fd_view.trusted;
        Alcotest.(check (list int)) "suspects the rest" [ 1; 3 ]
          (Sim.Pid.Set.elements v.Fd.Fd_view.suspected));
    tc "of_perfect trusts the first non-suspected process" (fun () ->
        let e = Scenario.engine ~n:5 () in
        let base =
          Fd.Scripted.install e
            ~initial:(fun _ -> Fd.Fd_view.make ~suspected:(Sim.Pid.set_of_list [ 0; 1 ]) ())
            ~steps:[] ()
        in
        let ec = Ecfd.Ec.of_perfect base ~engine:e in
        Sim.Engine.run_until e 1;
        Alcotest.(check (option int)) "p3" (Some 2) (Fd.Fd_handle.trusted ec 3));
    tc "of_ring starts the walk at the initial candidate" (fun () ->
        let e = Scenario.engine ~n:5 () in
        let base =
          Fd.Scripted.install e
            ~initial:(fun _ -> Fd.Fd_view.make ~suspected:(Sim.Pid.set_of_list [ 3 ]) ())
            ~steps:[] ()
        in
        let ec = Ecfd.Ec.of_ring ~initial_candidate:3 base ~engine:e in
        Sim.Engine.run_until e 1;
        (* p4 (the candidate) is suspected; the walk wraps to p5. *)
        Alcotest.(check (option int)) "p5" (Some 4) (Fd.Fd_handle.trusted ec 0));
    tc "derived views track the underlying detector" (fun () ->
        let e = Scenario.engine ~n:3 () in
        let base =
          Fd.Scripted.install e
            ~initial:(fun _ -> Fd.Fd_view.empty)
            ~steps:
              [
                {
                  Fd.Scripted.at = 10;
                  pid = 1;
                  view = Fd.Fd_view.make ~suspected:(Sim.Pid.set_of_list [ 0 ]) ();
                };
              ]
            ()
        in
        let ec = Ecfd.Ec.of_perfect base ~engine:e in
        Sim.Engine.run_until e 5;
        Alcotest.(check (option int)) "before: p1" (Some 0) (Fd.Fd_handle.trusted ec 1);
        Sim.Engine.run_until e 15;
        Alcotest.(check (option int)) "after: p2" (Some 1) (Fd.Fd_handle.trusted ec 1));
    tc "conforms checks the static clauses" (fun () ->
        let good = Fd.Fd_view.make ~trusted:1 ~suspected:(Sim.Pid.set_of_list [ 2 ]) () in
        Alcotest.(check bool) "good" true (Ecfd.Ec.conforms ~n:3 0 good);
        let no_leader = Fd.Fd_view.make ~suspected:Sim.Pid.Set.empty () in
        Alcotest.(check bool) "no leader" false (Ecfd.Ec.conforms ~n:3 0 no_leader);
        let self_suspect = Fd.Fd_view.make ~trusted:1 ~suspected:(Sim.Pid.set_of_list [ 0 ]) () in
        Alcotest.(check bool) "self-suspicion" false (Ecfd.Ec.conforms ~n:3 0 self_suspect));
    tc "constructions exchange no messages of their own" (fun () ->
        let e = Scenario.engine ~n:5 () in
        let base = Fd.Leader_s.install e Fd.Leader_s.default_params in
        let _ = Ecfd.Ec.of_leader_s base ~engine:e in
        Sim.Engine.run_until e 2000;
        Alcotest.(check int) "zero" 0
          (Sim.Stats.component_counts (Sim.Engine.stats e)
             ~component:Ecfd.Ec.component_of_leader_s)
            .Sim.Stats.sent);
  ]

(* ------------------------------------------------------------------ *)
(* Section 4: the <>C -> <>P transformation                           *)
(* ------------------------------------------------------------------ *)

let make_transformation_stack ?(n = 5) ?(net = Scenario.default_net) ?(crashes = Sim.Fault.none)
    ?(params = Ecfd.Ec_to_p.default_params) ?(piggyback = false) () =
  let e = Scenario.engine ~net ~n () in
  Sim.Fault.apply e crashes;
  let hooks = Fd.Leader_s.make_hooks () in
  let base = Fd.Leader_s.install ~hooks e Fd.Leader_s.default_params in
  let ec = Ecfd.Ec.of_leader_s base ~engine:e in
  let p =
    if piggyback then Ecfd.Ec_to_p.install_piggybacked e ~hooks ~underlying:ec params
    else Ecfd.Ec_to_p.install e ~underlying:ec params
  in
  (e, ec, p)

let transformation_run ?n ?net ?crashes ?params ?piggyback ?(horizon = 9000) () =
  let e, _, p = make_transformation_stack ?n ?net ?crashes ?params ?piggyback () in
  Sim.Engine.run_until e horizon;
  let n = Sim.Engine.n e in
  (e, Spec.Fd_props.make_run ~component:(Fd.Fd_handle.component p) ~n (Sim.Engine.trace e))

let ec_to_p_tests =
  [
    tc "Theorem 1: the output is <>P (chaotic net, crashes)" (fun () ->
        let _, run =
          transformation_run
            ~net:(Scenario.chaotic_net ~seed:23 ~gst:400 ())
            ~crashes:(Sim.Fault.crashes [ (2, 300); (4, 700) ])
            ()
        in
        Test_util.check_class "ec->p" Fd.Classes.P_eventual run);
    tc "survives the crash of the leader itself" (fun () ->
        (* p1 is the initial leader; kill it mid-run so the lists must be
           rebuilt by the next leader. *)
        let _, run =
          transformation_run ~crashes:(Sim.Fault.crashes [ (0, 1000); (3, 2000) ]) ()
        in
        Test_util.check_class "ec->p after leader crash" Fd.Classes.P_eventual run);
    tc "works under Fig. 2's weakest links (fair-lossy out of the leader)" (fun () ->
        let n = 5 in
        let link = Ecfd.Ec_to_p.links ~n ~leader:0 ~gst:300 ~delta:8 ~drop_probability:0.3 () in
        let e = Sim.Engine.create ~seed:31 ~n ~link () in
        Sim.Fault.apply e (Sim.Fault.crash 3 ~at:500);
        (* The underlying detector is scripted to trust p1 everywhere, so
           the transformation's leader matches the link fabric's. *)
        let ec =
          Fd.Scripted.install e ~initial:(Fd.Scripted.stable ~leader:0 ~n) ~steps:[] ()
        in
        let p = Ecfd.Ec_to_p.install e ~underlying:ec Ecfd.Ec_to_p.default_params in
        Sim.Engine.run_until e 12_000;
        let run =
          Spec.Fd_props.make_run ~component:(Fd.Fd_handle.component p) ~n (Sim.Engine.trace e)
        in
        Test_util.check_class "ec->p lossy" Fd.Classes.P_eventual run);
    tc "transforms a bare Omega too" (fun () ->
        (* Only the trusted output is queried (the paper notes this). *)
        let n = 4 in
        let e = Scenario.engine ~n () in
        Sim.Fault.apply e (Sim.Fault.crash 2 ~at:400);
        let omega =
          Fd.Scripted.install e
            ~initial:(fun _ -> Fd.Fd_view.make ~trusted:1 ~suspected:Sim.Pid.Set.empty ())
            ~steps:[] ()
        in
        let p = Ecfd.Ec_to_p.install e ~underlying:omega Ecfd.Ec_to_p.default_params in
        Sim.Engine.run_until e 6000;
        let run =
          Spec.Fd_props.make_run ~component:(Fd.Fd_handle.component p) ~n (Sim.Engine.trace e)
        in
        Test_util.check_class "omega->p" Fd.Classes.P_eventual run);
    tc "stand-alone cost: 2(n-1) messages per period" (fun () ->
        let n = 6 in
        let e, _, _ = make_transformation_stack ~n () in
        Sim.Engine.run_until e 2000;
        let snap = Sim.Stats.snapshot (Sim.Engine.stats e) in
        Sim.Engine.run_until e (2000 + 100);
        (* 10 list periods + 10 alive periods of 10 ticks each. *)
        let sent = Sim.Stats.sent_since (Sim.Engine.stats e) snap ~component:Ecfd.Ec_to_p.component in
        Alcotest.(check int) "2(n-1) per period" (10 * 2 * (n - 1)) sent);
    tc "piggybacked cost: n-1 messages per period" (fun () ->
        let n = 6 in
        let e, _, _ = make_transformation_stack ~n ~piggyback:true () in
        Sim.Engine.run_until e 2000;
        let snap = Sim.Stats.snapshot (Sim.Engine.stats e) in
        Sim.Engine.run_until e (2000 + 100);
        let own = Sim.Stats.sent_since (Sim.Engine.stats e) snap ~component:Ecfd.Ec_to_p.component in
        let under =
          Sim.Stats.sent_since (Sim.Engine.stats e) snap ~component:Fd.Leader_s.component
        in
        Alcotest.(check int) "own: only I-AM-ALIVE" (10 * (n - 1)) own;
        Alcotest.(check int) "underlying unchanged" (10 * (n - 1)) under);
    tc "piggybacked output is still <>P" (fun () ->
        let _, run =
          transformation_run ~piggyback:true
            ~crashes:(Sim.Fault.crashes [ (1, 400) ])
            ~net:(Scenario.chaotic_net ~seed:37 ~gst:300 ())
            ()
        in
        Test_util.check_class "piggybacked ec->p" Fd.Classes.P_eventual run);
    tc "doubling time-out growth also converges" (fun () ->
        let _, run =
          transformation_run
            ~params:{ Ecfd.Ec_to_p.default_params with growth = Ecfd.Ec_to_p.Doubling }
            ~net:(Scenario.chaotic_net ~seed:41 ~gst:500 ())
            ~crashes:(Sim.Fault.crash 2 ~at:200) ()
        in
        Test_util.check_class "doubling growth" Fd.Classes.P_eventual run);
    tc "works over the stable leader election too" (fun () ->
        (* Any Ω-grade source will do (the paper notes the algorithm only
           queries the trusted output); the stable election of [2] is a
           drop-in. *)
        let n = 5 in
        let e = Scenario.engine ~net:{ Scenario.default_net with seed = 43 } ~n () in
        Sim.Fault.apply e (Sim.Fault.crashes [ (0, 800); (3, 1600) ]);
        let omega = Fd.Stable_omega.install e Fd.Stable_omega.default_params in
        let ec = Ecfd.Ec.of_leader_s omega ~engine:e in
        let p = Ecfd.Ec_to_p.install e ~underlying:ec Ecfd.Ec_to_p.default_params in
        Sim.Engine.run_until e 10_000;
        let run =
          Spec.Fd_props.make_run ~component:(Fd.Fd_handle.component p) ~n (Sim.Engine.trace e)
        in
        Test_util.check_class "stable-omega -> p" Fd.Classes.P_eventual run);
    tc "the output has no trusted process (it is a pure <>P)" (fun () ->
        let e, _, p = make_transformation_stack () in
        Sim.Engine.run_until e 500;
        Alcotest.(check (option int)) "none" None (Fd.Fd_handle.trusted p 2));
    Test_util.qcheck ~count:15 ~name:"Theorem 1 on random runs (E9 in miniature)"
      QCheck2.Gen.(tup2 (int_range 3 7) (int_range 0 50_000))
      (fun (n, seed) ->
        let rng = Sim.Rng.create ~seed in
        let crashes = Sim.Fault.random_minority rng ~n ~latest:500 in
        let net = { Scenario.default_net with seed; gst = 250 } in
        let _, run = transformation_run ~n ~net ~crashes ~horizon:12_000 () in
        Test_util.bool_law
          (Printf.sprintf "n=%d seed=%d crashes=%s" n seed
             (Format.asprintf "%a" Sim.Fault.pp crashes))
          (Spec.Fd_props.satisfies_class Fd.Classes.P_eventual run));
  ]

(* ------------------------------------------------------------------ *)
(* Section 5: the <>C consensus algorithm                             *)
(* ------------------------------------------------------------------ *)

let run_ec ?net ?crashes ?proposals ?propose_at ?horizon ?(params = ec_params) ?(n = 5)
    ?(detector = Scenario.Ec_from_leader) () =
  Scenario.run_consensus ?net ?crashes ?proposals ?propose_at ?horizon ~n ~detector
    ~protocol:(Scenario.Ec params) ()

let ec_consensus_tests =
  [
    tc "failure-free: one round, everyone decides the same value" (fun () ->
        let r = run_ec () in
        Test_util.check_no_violations "ec" r.trace ~n:5;
        Alcotest.(check (option int)) "round 1" (Some 1)
          (Spec.Consensus_props.decision_round r.trace));
    tc "stable detector: one round regardless of the leader's identity" (fun () ->
        List.iter
          (fun leader ->
            let r = run_ec ~detector:(Scenario.Scripted_stable leader) () in
            Test_util.check_no_violations "ec" r.trace ~n:5;
            Alcotest.(check (option int))
              (Printf.sprintf "leader p%d" (leader + 1))
              (Some 1)
              (Spec.Consensus_props.decision_round r.trace))
          [ 0; 1; 2; 3; 4 ]);
    tc "the early leader crash is survived" (fun () ->
        let r = run_ec ~crashes:(Sim.Fault.crash 0 ~at:2) ~horizon:10_000 () in
        Test_util.check_no_violations "ec leader crash" r.trace ~n:5);
    tc "coordinator crash between proposal and decision" (fun () ->
        (* Crash the leader around the ack-gathering window: the next leader
           must finish the job without violating agreement. *)
        List.iter
          (fun at ->
            let r = run_ec ~crashes:(Sim.Fault.crash 0 ~at) ~horizon:10_000 () in
            Test_util.check_no_violations (Printf.sprintf "crash@%d" at) r.trace ~n:5)
          [ 3; 5; 7; 9; 11; 13 ]);
    tc "repeated leader crashes" (fun () ->
        let r =
          run_ec ~n:7
            ~crashes:(Sim.Fault.crashes [ (0, 4); (1, 8); (2, 12) ])
            ~horizon:15_000 ()
        in
        Test_util.check_no_violations "ec cascade" r.trace ~n:7);
    tc "chaotic pre-GST network" (fun () ->
        let r =
          run_ec
            ~net:(Scenario.chaotic_net ~seed:51 ~gst:600 ())
            ~crashes:(Sim.Fault.crash 1 ~at:100) ~horizon:15_000 ()
        in
        Test_util.check_no_violations "ec chaotic" r.trace ~n:5);
    tc "works over the ring-based <>C too" (fun () ->
        let r =
          run_ec ~detector:Scenario.Ec_from_ring ~crashes:(Sim.Fault.crash 0 ~at:50)
            ~horizon:10_000 ()
        in
        Test_util.check_no_violations "ec over ring" r.trace ~n:5);
    tc "staggered proposals" (fun () ->
        let r = run_ec ~propose_at:(fun p -> 40 * p) ~horizon:10_000 () in
        Test_util.check_no_violations "ec staggered" r.trace ~n:5);
    tc "NACK tolerance: decides despite a persistent false suspicion" (fun () ->
        (* p5 trusts the leader of the others but also suspects it forever:
           every round it NACKs.  The extended wait still decides in round
           1 on the majority of ACKs.  The other views are fully accurate
           (suspect nobody), so the coordinator genuinely waits for all of
           them — this is the accuracy advantage of ◇C over Ω. *)
        let n = 5 in
        let nacker_view =
          Fd.Fd_view.make ~trusted:0 ~suspected:(Sim.Pid.set_of_list [ 0 ]) ()
        in
        let eng = Scenario.engine ~n () in
        let accurate = Fd.Scripted.accurate_stable ~leader:0 ~crashed:Sim.Pid.Set.empty in
        let fd =
          Fd.Scripted.install eng
            ~initial:(fun p -> if p = 4 then nacker_view else accurate p)
            ~steps:[] ()
        in
        let rb = Broadcast.Reliable_broadcast.create eng in
        let inst = Ecfd.Ec_consensus.install eng ~fd ~rb ec_params in
        List.iter (fun p -> inst.Consensus.Instance.propose p (7 * (p + 1))) (Sim.Pid.all ~n);
        Sim.Engine.run_until eng 5000;
        Test_util.check_no_violations "ec nack tolerance" (Sim.Engine.trace eng) ~n;
        Alcotest.(check (option int)) "still round 1" (Some 1)
          (Spec.Consensus_props.decision_round (Sim.Engine.trace eng)));
    tc "strict-majority ablation blocks under the same suspicion" (fun () ->
        (* Identical scenario, Chandra–Toueg-style waits: the NACK lands in
           the first majority every round, so no decision is reached. *)
        let n = 5 in
        let nacker_view =
          Fd.Fd_view.make ~trusted:0 ~suspected:(Sim.Pid.set_of_list [ 0 ]) ()
        in
        let eng = Scenario.engine ~n () in
        let accurate = Fd.Scripted.accurate_stable ~leader:0 ~crashed:Sim.Pid.Set.empty in
        let fd =
          Fd.Scripted.install eng
            ~initial:(fun p -> if p = 4 then nacker_view else accurate p)
            ~steps:[] ()
        in
        let rb = Broadcast.Reliable_broadcast.create eng in
        let inst =
          Ecfd.Ec_consensus.install eng ~fd ~rb
            { ec_params with wait_mode = Ecfd.Ec_consensus.Strict_majority; max_rounds = 50 }
        in
        List.iter (fun p -> inst.Consensus.Instance.propose p (7 * (p + 1))) (Sim.Pid.all ~n);
        Sim.Engine.run_until eng 5000;
        Test_util.check_safety_only "ec strict" (Sim.Engine.trace eng);
        Alcotest.(check (option int)) "never decides" None
          (Spec.Consensus_props.decision_round (Sim.Engine.trace eng)));
    tc "merged-phase variant reaches the same agreement" (fun () ->
        let r =
          run_ec
            ~params:{ ec_params with merge_phase01 = true }
            ~crashes:(Sim.Fault.crash 0 ~at:60) ~horizon:10_000 ()
        in
        Test_util.check_no_violations "ec merged" r.trace ~n:5);
    tc "merged-phase variant: one round under a stable detector" (fun () ->
        let r =
          run_ec ~params:{ ec_params with merge_phase01 = true }
            ~detector:(Scenario.Scripted_stable 2) ()
        in
        Test_util.check_no_violations "ec merged stable" r.trace ~n:5;
        Alcotest.(check (option int)) "round 1" (Some 1)
          (Spec.Consensus_props.decision_round r.trace));
    tc "messages per stable round: Theta(n) classic, Theta(n^2) merged" (fun () ->
        let count params =
          let n = 8 in
          let r = run_ec ~n ~params ~detector:(Scenario.Scripted_stable 0) () in
          Spec.Round_metrics.sends_in_round r.trace ~component:Ecfd.Ec_consensus.component
            ~round:1
        in
        let classic = count ec_params in
        let merged = count { ec_params with merge_phase01 = true } in
        (* Classic: announcement + estimates + propositions + acks = 4(n-1). *)
        Alcotest.(check int) "classic = 4(n-1)" (4 * 7) classic;
        (* Merged: estimates+nulls n(n-1), propositions n-1, acks n-1. *)
        Alcotest.(check int) "merged = n(n-1)+2(n-1)" ((8 * 7) + (2 * 7)) merged);
    tc "the whole stack over 40%-lossy links (stubborn transport)" (fun () ->
        (* Fair-lossy everywhere: the leader detector survives because its
           traffic is periodic; the consensus messages and the decision
           broadcast ride retransmitting stubborn channels. *)
        let n = 5 in
        let link =
          Sim.Link.fair_lossy ~drop_probability:0.4
            ~underlying:(Sim.Link.reliable ~min_delay:1 ~max_delay:5 ())
        in
        let engine = Sim.Engine.create ~seed:13 ~n ~link () in
        Sim.Fault.apply engine (Sim.Fault.crash 1 ~at:200);
        let base = Fd.Leader_s.install engine Fd.Leader_s.default_params in
        let ec = Ecfd.Ec.of_leader_s base ~engine in
        let st_rb = Broadcast.Stubborn.create ~component:"stubborn.rb" engine in
        let rb = Broadcast.Reliable_broadcast.create ~transport:(`Stubborn st_rb) engine in
        let st_cons = Broadcast.Stubborn.create ~component:"stubborn.cons" engine in
        let inst =
          Ecfd.Ec_consensus.install ~transport:(`Stubborn st_cons) engine ~fd:ec ~rb ec_params
        in
        List.iter (fun p -> inst.Consensus.Instance.propose p (60 + p)) (Sim.Pid.all ~n);
        Sim.Engine.run_until engine 30_000;
        Test_util.check_no_violations "lossy stack" (Sim.Engine.trace engine) ~n);
    Test_util.qcheck ~count:10 ~name:"stubborn stack terminates even at 60% loss"
      QCheck2.Gen.(int_range 0 10_000)
      (fun seed ->
        (* Raw one-shot rounds already survive mild loss (a round only needs
           majority paths, and failed rounds retry), but they give no
           guarantee; the retransmitting transport turns termination into a
           certainty, which this law samples at a loss rate where unlucky
           rounds are common. *)
        let n = 5 in
        let link =
          Sim.Link.fair_lossy ~drop_probability:0.6
            ~underlying:(Sim.Link.reliable ~min_delay:1 ~max_delay:5 ())
        in
        let engine = Sim.Engine.create ~seed ~n ~link () in
        let base = Fd.Leader_s.install engine Fd.Leader_s.default_params in
        let ec = Ecfd.Ec.of_leader_s base ~engine in
        let st_rb = Broadcast.Stubborn.create ~component:"stubborn.rb" engine in
        let rb = Broadcast.Reliable_broadcast.create ~transport:(`Stubborn st_rb) engine in
        let st_cons = Broadcast.Stubborn.create ~component:"stubborn.cons" engine in
        let inst =
          Ecfd.Ec_consensus.install ~transport:(`Stubborn st_cons) engine ~fd:ec ~rb ec_params
        in
        List.iter (fun p -> inst.Consensus.Instance.propose p (60 + p)) (Sim.Pid.all ~n);
        Sim.Engine.run_until engine 40_000;
        Test_util.bool_law
          (Printf.sprintf "seed=%d" seed)
          (Spec.Consensus_props.check_all (Sim.Engine.trace engine) ~n = []));
    tc "Phase 0 worst case: all self-proclaimed leaders cost Omega(n^2)" (fun () ->
        (* Section 5.4: "Phase 0 ... could require Omega(n^2) messages in the
           bad case in which all the processes consider themselves as the
           leader."  Scripted detector: everyone trusts itself in round 1,
           then a common leader emerges. *)
        let n = 6 in
        let count_round1_announcements initial =
          let engine = Scenario.engine ~net:{ Scenario.default_net with seed = 31 } ~n () in
          let fd =
            Fd.Scripted.install engine ~initial
              ~steps:
                (List.map
                   (fun p ->
                     { Fd.Scripted.at = 100; pid = p; view = Fd.Scripted.stable ~leader:0 ~n p })
                   (Sim.Pid.all ~n))
              ()
          in
          let rb = Broadcast.Reliable_broadcast.create engine in
          let inst = Ecfd.Ec_consensus.install engine ~fd ~rb ec_params in
          List.iter (fun p -> inst.Consensus.Instance.propose p (40 + p)) (Sim.Pid.all ~n);
          Sim.Engine.run_until engine 5000;
          Test_util.check_no_violations "phase0 worst case" (Sim.Engine.trace engine) ~n;
          Spec.Round_metrics.sends_by_tag_in_round (Sim.Engine.trace engine)
            ~component:Ecfd.Ec_consensus.component ~round:1
          |> List.assoc_opt "coordinator"
          |> Option.value ~default:0
        in
        let everyone_self p = Fd.Scripted.stable ~leader:p ~n p in
        Alcotest.(check int) "all self-leaders: n(n-1) announcements" (n * (n - 1))
          (count_round1_announcements everyone_self);
        Alcotest.(check int) "stable leader: n-1 announcements" (n - 1)
          (count_round1_announcements (Fd.Scripted.stable ~leader:0 ~n)));
    tc "capstone: consensus where <>P is impossible (eventual source + stubborn)" (fun () ->
        (* The weak-synchrony system of [3]: only p3's output links are
           timely; every other link suffers ever-growing silence windows.
           No ◇P exists there (E12), but Ω does — and Ω-grade ◇C plus
           retransmitting channels is enough for the paper's consensus. *)
        let n = 5 in
        let source = 2 in
        let fabric =
          let timely = Sim.Link.reliable ~min_delay:1 ~max_delay:8 () in
          let silent = Sim.Link.growing_blackouts () in
          Sim.Link.route ~describe:"eventual-source" (fun ~src ~dst:_ ->
              if Sim.Pid.equal src source then timely else silent)
        in
        let engine = Sim.Engine.create ~seed:21 ~n ~link:fabric () in
        let omega = Fd.Omega_source.install engine Fd.Omega_source.default_params in
        let ec = Ecfd.Ec.of_omega omega ~engine in
        let st_rb = Broadcast.Stubborn.create ~component:"stubborn.rb" engine in
        let rb = Broadcast.Reliable_broadcast.create ~transport:(`Stubborn st_rb) engine in
        let st_cons = Broadcast.Stubborn.create ~component:"stubborn.cons" engine in
        let inst =
          Ecfd.Ec_consensus.install ~transport:(`Stubborn st_cons) engine ~fd:ec ~rb
            { ec_params with max_rounds = 5000 }
        in
        List.iter (fun p -> inst.Consensus.Instance.propose p (500 + p)) (Sim.Pid.all ~n);
        Sim.Engine.run_until engine 60_000;
        Test_util.check_no_violations "weak-synchrony consensus" (Sim.Engine.trace engine) ~n);
    tc "n=3: smallest system with a tolerable fault" (fun () ->
        let r = run_ec ~n:3 ~crashes:(Sim.Fault.crash 0 ~at:30) ~horizon:10_000 () in
        Test_util.check_no_violations "ec n=3" r.trace ~n:3);
    Test_util.qcheck ~count:25 ~name:"uniform consensus on random runs (E10 in miniature)"
      QCheck2.Gen.(tup2 (int_range 3 7) (int_range 0 100_000))
      (fun (n, seed) ->
        let rng = Sim.Rng.create ~seed in
        let crashes = Sim.Fault.random_minority rng ~n ~latest:300 in
        let net = { Scenario.default_net with seed; gst = 150 } in
        let r = run_ec ~n ~net ~crashes ~horizon:15_000 () in
        Test_util.bool_law
          (Printf.sprintf "n=%d seed=%d crashes=%s violations=%s" n seed
             (Format.asprintf "%a" Sim.Fault.pp crashes)
             (String.concat "; "
                (List.map
                   (Format.asprintf "%a" Spec.Consensus_props.pp_violation)
                   (Spec.Consensus_props.check_all r.trace ~n))))
          (Spec.Consensus_props.check_all r.trace ~n = []));
    Test_util.qcheck ~count:20 ~name:"safety holds even under majority crashes"
      QCheck2.Gen.(tup2 (int_range 3 6) (int_range 0 100_000))
      (fun (n, seed) ->
        (* Too many crashes may prevent termination but must never break
           agreement, integrity or validity. *)
        let rng = Sim.Rng.create ~seed in
        let crashes = Sim.Fault.random rng ~n ~max_faulty:(n - 1) ~latest:200 in
        let net = { Scenario.default_net with seed } in
        let r = run_ec ~n ~net ~crashes ~horizon:8000 () in
        Test_util.bool_law "safety"
          (Spec.Consensus_props.check_safety r.trace = []));
    tc "timer ledger conserves across the full stack (crashes orphan, nothing leaks)" (fun () ->
        (* The protocol stack under crashes is the richest timer workload in
           the repo: heartbeat periodics, timeout one-shots, stubborn
           retransmissions — some fired, some cancelled, some orphaned by
           crashes.  Whatever the mix, the engine's lifecycle ledger must
           balance: set = fired + cancelled + orphaned + still-armed, and
           every set timer is reclaimed or still resident. *)
        let r =
          run_ec ~n:5
            ~crashes:(Sim.Fault.crashes [ (1, 40); (3, 150) ])
            ~horizon:10_000 ()
        in
        let e = r.engine in
        let lc = Sim.Stats.lifecycle (Sim.Engine.stats e) in
        Alcotest.(check bool) "crashes orphaned at least one armed timer" true
          (lc.Sim.Stats.timers_orphaned > 0);
        Alcotest.(check int) "conservation law" lc.Sim.Stats.timers_set
          (lc.Sim.Stats.timers_fired + lc.Sim.Stats.timers_cancelled
          + lc.Sim.Stats.timers_orphaned + Sim.Engine.timer_armed e);
        Alcotest.(check int) "no leaked registry slots" lc.Sim.Stats.timers_set
          (lc.Sim.Stats.timers_reclaimed + Sim.Engine.timer_residency e));
  ]

let suites =
  [
    ("ecfd.constructions", construction_tests);
    ("ecfd.ec_to_p", ec_to_p_tests);
    ("ecfd.ec_consensus", ec_consensus_tests);
  ]
