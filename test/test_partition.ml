(* Network partitions, modelled within the paper's system model: links stay
   reliable (every message is eventually delivered) but cross-partition
   messages are delayed until the partition heals — an asynchronous period
   localised to the cut.  The majority side must keep deciding; the
   minority must block (quorums!) and then catch up at heal time. *)

let tc name f = Alcotest.test_case name `Quick f

(* Group A = pids < cut; group B = the rest.  Cross-group messages sent
   during [from_t, heal) arrive shortly after [heal]. *)
let partition_link ~cut ~from_t ~heal =
  let base = Sim.Link.reliable ~min_delay:1 ~max_delay:6 () in
  let crossing src dst = src < cut <> (dst < cut) in
  {
    Sim.Link.describe = Printf.sprintf "partition[|%d, %d..%d]" cut from_t heal;
    fate =
      (fun ~rng ~now ~src ~dst ->
        if crossing src dst && now >= from_t && now < heal then
          Sim.Link.Deliver_at (heal + Sim.Rng.int_in_range rng ~lo:1 ~hi:8)
        else base.Sim.Link.fate ~rng ~now ~src ~dst);
    (* Held-back crossings deliver past [heal] > now; the base link's bound
       covers the rest. *)
    min_delay = Sim.Link.min_delay_bound base;
  }

let build ~n ~link ~protocol =
  let engine = Sim.Engine.create ~seed:3 ~n ~link () in
  let fd = Scenario.install_detector engine Scenario.Ec_from_leader in
  let rb = Broadcast.Reliable_broadcast.create engine in
  let instance =
    match protocol with
    | `Ec -> Ecfd.Ec_consensus.install engine ~fd ~rb Ecfd.Ec_consensus.default_params
    | `Ct -> Consensus.Ct_consensus.install engine ~fd ~rb ()
  in
  List.iter (fun p -> instance.Consensus.Instance.propose p (300 + p)) (Sim.Pid.all ~n);
  (engine, instance)

let deciders instance ~n =
  List.filter (fun p -> instance.Consensus.Instance.decision p <> None) (Sim.Pid.all ~n)

let partition_tests =
  [
    tc "minority side blocks, majority decides, heal reunites (<>C)" (fun () ->
        let n = 5 in
        (* {p1,p2} cut off from {p3,p4,p5} from the very start until 2000. *)
        let link = partition_link ~cut:2 ~from_t:0 ~heal:2000 in
        let engine, instance = build ~n ~link ~protocol:`Ec in
        Sim.Engine.run_until engine 1500;
        let mid = deciders instance ~n in
        Alcotest.(check bool) "minority p1 undecided mid-partition" false (List.mem 0 mid);
        Alcotest.(check bool) "minority p2 undecided mid-partition" false (List.mem 1 mid);
        Alcotest.(check bool) "majority decided mid-partition" true
          (List.for_all (fun p -> List.mem p mid) [ 2; 3; 4 ]);
        Sim.Engine.run_until engine 6000;
        Test_util.check_no_violations "after heal" (Sim.Engine.trace engine) ~n);
    tc "same through Chandra-Toueg" (fun () ->
        let n = 5 in
        let link = partition_link ~cut:2 ~from_t:0 ~heal:2000 in
        let engine, instance = build ~n ~link ~protocol:`Ct in
        Sim.Engine.run_until engine 1500;
        Alcotest.(check bool) "minority undecided mid-partition" false
          (List.mem 0 (deciders instance ~n));
        Sim.Engine.run_until engine 8000;
        Test_util.check_no_violations "after heal" (Sim.Engine.trace engine) ~n);
    tc "partition striking mid-round cannot split the decision" (fun () ->
        (* The cut lands a few ticks in, while round 1's messages fly. *)
        List.iter
          (fun from_t ->
            let n = 5 in
            let link = partition_link ~cut:2 ~from_t ~heal:1500 in
            let engine, _ = build ~n ~link ~protocol:`Ec in
            Sim.Engine.run_until engine 8000;
            Test_util.check_no_violations
              (Printf.sprintf "cut at t=%d" from_t)
              (Sim.Engine.trace engine) ~n)
          [ 2; 5; 8; 11; 14 ]);
    tc "leader isolated in the minority: majority re-elects and decides" (fun () ->
        let n = 5 in
        (* p1 (initial leader) sits in the minority {p1}. *)
        let link = partition_link ~cut:1 ~from_t:0 ~heal:2500 in
        let engine, instance = build ~n ~link ~protocol:`Ec in
        Sim.Engine.run_until engine 2000;
        Alcotest.(check bool) "majority decided during the cut" true
          (List.for_all (fun p -> List.mem p (deciders instance ~n)) [ 1; 2; 3; 4 ]);
        Sim.Engine.run_until engine 8000;
        Test_util.check_no_violations "after heal" (Sim.Engine.trace engine) ~n;
        (* The old leader adopts the majority's decision, not its own. *)
        let vs =
          List.sort_uniq compare
            (List.map (fun (_, v, _, _) -> v) (Sim.Trace.decisions (Sim.Engine.trace engine)))
        in
        Alcotest.(check int) "single decided value" 1 (List.length vs));
    Test_util.qcheck ~count:15 ~name:"random cuts never violate uniform consensus"
      QCheck2.Gen.(tup3 (int_range 3 7) (int_range 0 10_000) (int_range 0 300))
      (fun (n, seed, from_t) ->
        let cut = 1 + (seed mod (n - 1)) in
        let link = partition_link ~cut ~from_t ~heal:(from_t + 1500) in
        let engine = Sim.Engine.create ~seed ~n ~link () in
        let fd = Scenario.install_detector engine Scenario.Ec_from_leader in
        let rb = Broadcast.Reliable_broadcast.create engine in
        let instance =
          Ecfd.Ec_consensus.install engine ~fd ~rb Ecfd.Ec_consensus.default_params
        in
        List.iter (fun p -> instance.Consensus.Instance.propose p (400 + p)) (Sim.Pid.all ~n);
        Sim.Engine.run_until engine 20_000;
        Test_util.bool_law
          (Printf.sprintf "n=%d seed=%d cut=%d from=%d" n seed cut from_t)
          (Spec.Consensus_props.check_all (Sim.Engine.trace engine) ~n = []));
  ]

let suites = [ ("consensus.partition", partition_tests) ]
