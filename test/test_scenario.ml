(* Sanity of the Scenario glue itself: every detector and protocol in the
   enums can actually be installed and produce a working run. *)

let tc name f = Alcotest.test_case name `Quick f

let all_detectors =
  [
    Scenario.Heartbeat_p;
    Scenario.Ring_s;
    Scenario.Ring_w;
    Scenario.Leader_s;
    Scenario.Stable_omega;
    Scenario.Ec_from_leader;
    Scenario.Ec_from_stable;
    Scenario.Ec_from_ring;
    Scenario.Ec_from_omega_chu;
    Scenario.Ec_from_heartbeat;
    Scenario.Ec_from_perfect (Sim.Fault.crash 1 ~at:50);
    Scenario.Scripted_stable 0;
  ]

let scenario_tests =
  [
    tc "every detector installs and runs" (fun () ->
        List.iter
          (fun detector ->
            let crashes =
              match detector with
              | Scenario.Ec_from_perfect schedule -> schedule
              | _ -> Sim.Fault.none
            in
            let _, run, _ = Scenario.fd_run ~crashes ~horizon:500 ~n:4 ~detector () in
            Alcotest.(check bool)
              (Scenario.detector_name detector ^ " produced views")
              true
              (Spec.Eventually.of_views
                 ~component:run.Spec.Fd_props.component run.Spec.Fd_props.trace ~pid:0
              <> []))
          all_detectors);
    tc "detector names are unique" (fun () ->
        let names = List.map Scenario.detector_name all_detectors in
        Alcotest.(check int) "unique" (List.length names)
          (List.length (List.sort_uniq compare names)));
    tc "every protocol runs to a decision on the default stack" (fun () ->
        List.iter
          (fun protocol ->
            let r = Scenario.run_consensus ~n:4 ~detector:Scenario.Ec_from_leader ~protocol () in
            Alcotest.(check bool)
              (Scenario.protocol_name protocol ^ " decided")
              true
              (Spec.Consensus_props.decision_round r.Scenario.trace <> None))
          [
            Scenario.Ct;
            Scenario.Mr;
            Scenario.Hr;
            Scenario.Ec Ecfd.Ec_consensus.default_params;
            Scenario.Ec { Ecfd.Ec_consensus.default_params with merge_phase01 = true };
          ]);
  ]

let suites = [ ("scenario", scenario_tests) ]
