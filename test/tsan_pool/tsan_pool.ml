(* Standalone pool exerciser for the ThreadSanitizer CI job.

   Kept free of compiler-libs (and of everything else but Exec): the
   TSan job builds with the 5.2 tsan compiler variant while the repo's
   analyzer pins compiler-libs to 5.1, so the full test binary cannot
   run there.  This drives the same contract test_exec checks
   in-process: parallel results are byte-identical to sequential, under
   enough jobs and domains (ECFD_DOMAINS=4 in CI) that TSan sees real
   worker contention on the job counter and the result slots. *)

let heavy i () =
  let acc = ref 0 in
  for k = 0 to 5_000 + i do
    acc := !acc + (k mod 7)
  done;
  (i, !acc)

let () =
  let jobs = List.init 400 heavy in
  let seq = Exec.Pool.run ~domains:1 jobs in
  let par = Exec.Pool.run jobs in
  if not (List.equal (fun (a, b) (c, d) -> a = c && b = d) seq par) then begin
    prerr_endline "tsan_pool: parallel results differ from sequential";
    exit 1
  end;
  (* Nested run: documented degradation to in-worker sequential, must not
     deadlock or race. *)
  let nested =
    Exec.Pool.run
      (List.init 8 (fun i () -> Exec.Pool.run (List.init 4 (fun j () -> (10 * i) + j))))
  in
  if List.length nested <> 8 then begin
    prerr_endline "tsan_pool: nested run shape wrong";
    exit 1
  end;
  (* Exception path: lowest-indexed failure wins regardless of schedule. *)
  (match
     Exec.Pool.run
       (List.init 64 (fun i () -> if i mod 3 = 1 then failwith (string_of_int i) else i))
   with
  | _ ->
    prerr_endline "tsan_pool: failing run did not raise";
    exit 1
  | exception Failure other ->
    if other <> "1" then begin
      prerr_endline ("tsan_pool: wrong failing job won: " ^ other);
      exit 1
    end);
  let m = Exec.Pool.metrics () in
  if m.Exec.Pool.runs < 3 then begin
    prerr_endline "tsan_pool: metrics lost runs";
    exit 1
  end;
  print_endline "tsan_pool: OK"
