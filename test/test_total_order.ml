(* Tests of total-order broadcast (atomic broadcast from repeated
   consensus) — the paper's flagship application domain. *)

let tc name f = Alcotest.test_case name `Quick f

let make_stack ?(n = 5) ?(seed = 1) ?(crashes = Sim.Fault.none) ?(max_slots = 24)
    ?(protocol = `Ec) () =
  let engine = Scenario.engine ~net:{ Scenario.default_net with seed } ~n () in
  Sim.Fault.apply engine crashes;
  let fd = Scenario.install_detector engine Scenario.Ec_from_leader in
  let make_instance ~slot =
    let suffix = Printf.sprintf ".slot%d" slot in
    let rb =
      Broadcast.Reliable_broadcast.create
        ~component:(Broadcast.Reliable_broadcast.default_component ^ suffix)
        engine
    in
    match protocol with
    | `Ec ->
      Ecfd.Ec_consensus.install
        ~component:(Ecfd.Ec_consensus.component ^ suffix)
        engine ~fd ~rb Ecfd.Ec_consensus.default_params
    | `Ct ->
      Consensus.Ct_consensus.install
        ~component:(Consensus.Ct_consensus.component ^ suffix)
        engine ~fd ~rb ()
  in
  let to_ = Consensus.Total_order.create ~max_slots engine ~make_instance () in
  (engine, to_)

let logs_of engine to_ =
  let n = Sim.Engine.n engine in
  List.filter_map
    (fun p ->
      if Sim.Engine.is_alive engine p then
        Some (p, List.map (fun m -> m.Consensus.Total_order.body) (Consensus.Total_order.delivered to_ p))
      else None)
    (Sim.Pid.all ~n)

let check_total_order what logs =
  match logs with
  | [] -> Alcotest.fail (what ^ ": no correct process")
  | (_, reference) :: rest ->
    List.iter
      (fun (p, log) ->
        Alcotest.(check (list int))
          (Printf.sprintf "%s: %s's log equals the reference" what (Sim.Pid.to_string p))
          reference log)
      rest;
    (* integrity: no duplicates *)
    Alcotest.(check int) (what ^ ": no duplicate delivery")
      (List.length reference)
      (List.length (List.sort_uniq compare reference))

let to_tests =
  [
    tc "all correct processes deliver the same sequence" (fun () ->
        let engine, to_ = make_stack () in
        List.iter
          (fun (src, body) -> Sim.Engine.at engine (10 * body) (fun () ->
               Consensus.Total_order.broadcast to_ ~src ~body))
          [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (0, 6); (1, 7) ];
        Sim.Engine.run_until engine 20_000;
        let logs = logs_of engine to_ in
        check_total_order "failure-free" logs;
        let _, reference = List.hd logs in
        Alcotest.(check (list int)) "everything delivered" [ 1; 2; 3; 4; 5; 6; 7 ]
          (List.sort compare reference));
    tc "concurrent broadcasts are linearised identically everywhere" (fun () ->
        let engine, to_ = make_stack ~seed:9 () in
        (* Everybody broadcasts at the same instant: the slots decide the
           order, not the wall clock. *)
        List.iter
          (fun src -> Sim.Engine.at engine 5 (fun () ->
               Consensus.Total_order.broadcast to_ ~src ~body:(100 + src)))
          [ 0; 1; 2; 3; 4 ];
        Sim.Engine.run_until engine 20_000;
        check_total_order "concurrent" (logs_of engine to_));
    tc "a crashed broadcaster cannot fork the log" (fun () ->
        let engine, to_ = make_stack ~crashes:(Sim.Fault.crash 1 ~at:60) () in
        Sim.Engine.at engine 5 (fun () -> Consensus.Total_order.broadcast to_ ~src:1 ~body:11);
        Sim.Engine.at engine 50 (fun () -> Consensus.Total_order.broadcast to_ ~src:1 ~body:12);
        Sim.Engine.at engine 100 (fun () -> Consensus.Total_order.broadcast to_ ~src:0 ~body:13);
        Sim.Engine.run_until engine 20_000;
        let logs = logs_of engine to_ in
        check_total_order "crashed broadcaster" logs;
        let _, reference = List.hd logs in
        (* 13 (from a correct process) must be there; 11/12 may or may not,
           but identically everywhere (already checked). *)
        Alcotest.(check bool) "correct broadcast delivered" true (List.mem 13 reference));
    tc "leader crash mid-stream" (fun () ->
        let engine, to_ = make_stack ~seed:3 ~crashes:(Sim.Fault.crash 0 ~at:150) () in
        List.iteri
          (fun i src ->
            Sim.Engine.at engine (40 * (i + 1)) (fun () ->
                if Sim.Engine.is_alive engine src then
                  Consensus.Total_order.broadcast to_ ~src ~body:(200 + i)))
          [ 0; 1; 2; 3; 4; 1; 2 ];
        Sim.Engine.run_until engine 30_000;
        let logs = logs_of engine to_ in
        check_total_order "leader crash" logs;
        let _, reference = List.hd logs in
        (* Broadcasts from correct processes (all but index 0) must arrive. *)
        List.iter
          (fun body ->
            Alcotest.(check bool) (Printf.sprintf "body %d delivered" body) true
              (List.mem body reference))
          [ 201; 202; 203; 204; 205; 206 ]);
    tc "works over the Chandra-Toueg baseline too" (fun () ->
        let engine, to_ = make_stack ~protocol:`Ct ~seed:5 () in
        List.iter
          (fun src -> Sim.Engine.at engine (7 * src) (fun () ->
               Consensus.Total_order.broadcast to_ ~src ~body:(300 + src)))
          [ 0; 1; 2; 3; 4 ];
        Sim.Engine.run_until engine 20_000;
        let logs = logs_of engine to_ in
        check_total_order "over ct" logs;
        let _, reference = List.hd logs in
        Alcotest.(check int) "all five delivered" 5 (List.length reference));
    tc "subscribers see deliveries in log order" (fun () ->
        let engine, to_ = make_stack ~seed:6 () in
        let seen = ref [] in
        Consensus.Total_order.subscribe to_ 2 (fun m ->
            seen := m.Consensus.Total_order.body :: !seen);
        List.iter
          (fun src -> Sim.Engine.at engine (5 * src) (fun () ->
               Consensus.Total_order.broadcast to_ ~src ~body:(400 + src)))
          [ 0; 1; 2 ];
        Sim.Engine.run_until engine 20_000;
        Alcotest.(check (list int)) "callback order = log order"
          (List.map (fun m -> m.Consensus.Total_order.body) (Consensus.Total_order.delivered to_ 2))
          (List.rev !seen));
    Test_util.qcheck ~count:10 ~name:"total order on random runs"
      QCheck2.Gen.(tup2 (int_range 3 6) (int_range 0 10_000))
      (fun (n, seed) ->
        let rng = Sim.Rng.create ~seed in
        let crashes = Sim.Fault.random_minority rng ~n ~latest:300 in
        let engine, to_ = make_stack ~n ~seed ~crashes () in
        let k = 2 + Sim.Rng.int rng ~bound:5 in
        for i = 0 to k - 1 do
          let src = Sim.Rng.int rng ~bound:n in
          let at = Sim.Rng.int rng ~bound:400 in
          Sim.Engine.at engine at (fun () ->
              if Sim.Engine.is_alive engine src then
                Consensus.Total_order.broadcast to_ ~src ~body:(500 + i))
        done;
        Sim.Engine.run_until engine 30_000;
        let logs = logs_of engine to_ in
        match logs with
        | [] -> true
        | (_, reference) :: rest ->
          List.for_all (fun (_, log) -> log = reference) rest
          && List.length reference = List.length (List.sort_uniq compare reference));
  ]

let suites = [ ("consensus.total_order", to_tests) ]
