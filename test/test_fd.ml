(* Tests of the failure-detector framework and the classic detector
   implementations it hosts. *)

let tc name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Views and handles                                                  *)
(* ------------------------------------------------------------------ *)

let view_tests =
  [
    tc "empty view" (fun () ->
        Alcotest.(check bool) "nothing suspected" false (Fd.Fd_view.suspects Fd.Fd_view.empty 0);
        Alcotest.(check bool) "nobody trusted" true (Fd.Fd_view.empty.Fd.Fd_view.trusted = None));
    tc "equality is structural" (fun () ->
        let a = Fd.Fd_view.make ~trusted:1 ~suspected:(Sim.Pid.set_of_list [ 0; 2 ]) () in
        let b = Fd.Fd_view.make ~trusted:1 ~suspected:(Sim.Pid.set_of_list [ 2; 0 ]) () in
        Alcotest.(check bool) "equal" true (Fd.Fd_view.equal a b);
        let c = Fd.Fd_view.make ~trusted:2 ~suspected:(Sim.Pid.set_of_list [ 0; 2 ]) () in
        Alcotest.(check bool) "trusted differs" false (Fd.Fd_view.equal a c));
  ]

let handle_tests =
  [
    tc "set publishes changes once and records them" (fun () ->
        let e = Sim.Engine.create ~n:2 ~link:(Sim.Link.synchronous ~delay:1) () in
        let h = Fd.Fd_handle.make e ~component:"x" in
        let calls = ref 0 in
        Fd.Fd_handle.subscribe h (fun _ _ -> incr calls);
        let v = Fd.Fd_view.make ~trusted:1 ~suspected:Sim.Pid.Set.empty () in
        Fd.Fd_handle.set h 0 v;
        Fd.Fd_handle.set h 0 v;
        (* unchanged: no event *)
        Alcotest.(check int) "one notification" 1 !calls;
        Alcotest.(check bool) "query" true (Fd.Fd_view.equal (Fd.Fd_handle.query h 0) v);
        (* creation records one view per process, plus the change *)
        Alcotest.(check int) "trace events" 3
          (List.length (Sim.Trace.fd_views ~component:"x" (Sim.Engine.trace e))));
    tc "update composes with the current view" (fun () ->
        let e = Sim.Engine.create ~n:2 ~link:(Sim.Link.synchronous ~delay:1) () in
        let h = Fd.Fd_handle.make e ~component:"x" in
        Fd.Fd_handle.update h 0 (fun v ->
            { v with Fd.Fd_view.suspected = Sim.Pid.Set.add 1 v.Fd.Fd_view.suspected });
        Alcotest.(check bool) "suspects p2" true
          (Sim.Pid.Set.mem 1 (Fd.Fd_handle.suspected h 0)));
  ]

(* ------------------------------------------------------------------ *)
(* Classes                                                            *)
(* ------------------------------------------------------------------ *)

let classes_tests =
  [
    tc "defining properties" (fun () ->
        Alcotest.(check int) "<>P has 2" 2 (List.length (Fd.Classes.properties Fd.Classes.P_eventual));
        Alcotest.(check int) "<>C has 4" 4 (List.length (Fd.Classes.properties Fd.Classes.Ec)));
    tc "implication closure" (fun () ->
        let implied = Fd.Classes.implied_properties Fd.Classes.P_eventual in
        Alcotest.(check bool) "weak completeness implied" true
          (List.mem Fd.Classes.Weak_completeness implied);
        Alcotest.(check bool) "weak accuracy implied" true
          (List.mem Fd.Classes.Eventual_weak_accuracy implied));
    tc "names" (fun () ->
        Alcotest.(check string) "ec" "<>C" (Fd.Classes.name Fd.Classes.Ec);
        Alcotest.(check string) "omega" "Omega" (Fd.Classes.name Fd.Classes.Omega));
  ]

(* ------------------------------------------------------------------ *)
(* Detector end-to-end behaviour                                      *)
(* ------------------------------------------------------------------ *)

let report_holds (r : Spec.Fd_props.report) = r.holds

let heartbeat_tests =
  [
    tc "failure-free: eventual strong accuracy on a chaotic net" (fun () ->
        let _, run, _ =
          Scenario.fd_run
            ~net:(Scenario.chaotic_net ~seed:5 ~gst:400 ())
            ~n:5 ~detector:Scenario.Heartbeat_p ()
        in
        Test_util.check_class "heartbeat-p" Fd.Classes.P_eventual run);
    tc "crashes are permanently suspected by everybody" (fun () ->
        let _, run, _ =
          Scenario.fd_run ~n:5
            ~crashes:(Sim.Fault.crashes [ (1, 100); (3, 700) ])
            ~detector:Scenario.Heartbeat_p ()
        in
        Test_util.check_class "heartbeat-p" Fd.Classes.P_eventual run);
    tc "costs n(n-1) messages per period" (fun () ->
        let n = 6 in
        let e = Scenario.engine ~n () in
        let _ = Fd.Heartbeat_p.install e Fd.Heartbeat_p.default_params in
        Sim.Engine.run_until e 1000;
        let snap = Sim.Stats.snapshot (Sim.Engine.stats e) in
        Sim.Engine.run_until e (1000 + (10 * Fd.Heartbeat_p.default_params.Fd.Heartbeat_p.period));
        let sent =
          Sim.Stats.sent_since (Sim.Engine.stats e) snap ~component:Fd.Heartbeat_p.component
        in
        Alcotest.(check int) "10 periods" (10 * n * (n - 1)) sent);
    tc "detection latency is about one timeout" (fun () ->
        let crash_at = 500 in
        let _, run, _ =
          Scenario.fd_run ~n:4 ~crashes:(Sim.Fault.crash 2 ~at:crash_at)
            ~detector:Scenario.Heartbeat_p ()
        in
        match Spec.Fd_props.detection_time run ~victim:2 with
        | None -> Alcotest.fail "never detected"
        | Some t ->
          Alcotest.(check bool)
            (Printf.sprintf "latency %d within timeout+2 periods" (t - crash_at))
            true
            (t - crash_at <= 30 + 20 + 10));
  ]

let ring_tests =
  [
    tc "satisfies <>S under crashes" (fun () ->
        let _, run, _ =
          Scenario.fd_run ~n:6
            ~crashes:(Sim.Fault.crashes [ (0, 200); (3, 400) ])
            ~detector:Scenario.Ring_s ()
        in
        Test_util.check_class "ring-s" Fd.Classes.S_eventual run);
    tc "chaotic start: accuracy recovers after GST" (fun () ->
        let _, run, _ =
          Scenario.fd_run
            ~net:(Scenario.chaotic_net ~seed:9 ~gst:600 ())
            ~horizon:8000 ~n:5 ~detector:Scenario.Ring_s ()
        in
        Test_util.check_class "ring-s" Fd.Classes.S_eventual run);
    tc "costs 2n messages per period" (fun () ->
        let n = 6 in
        let e = Scenario.engine ~n () in
        let _ = Fd.Ring_s.install e Fd.Ring_s.default_params in
        Sim.Engine.run_until e 1000;
        let snap = Sim.Stats.snapshot (Sim.Engine.stats e) in
        Sim.Engine.run_until e (1000 + (10 * Fd.Ring_s.default_params.Fd.Ring_s.period));
        let sent = Sim.Stats.sent_since (Sim.Engine.stats e) snap ~component:Fd.Ring_s.component in
        Alcotest.(check int) "10 periods of polls+replies" (10 * 2 * n) sent);
    tc "adjacent crashes are healed around the ring" (fun () ->
        (* p2 and p3 adjacent on the ring: p4's monitor walk must cross both. *)
        let _, run, _ =
          Scenario.fd_run ~n:5
            ~crashes:(Sim.Fault.crashes [ (2, 100); (3, 100) ])
            ~detector:Scenario.Ring_s ()
        in
        Test_util.check_class "ring-s" Fd.Classes.S_eventual run;
        Alcotest.(check bool) "strong accuracy too (benign net)" true
          (report_holds (Spec.Fd_props.eventual_strong_accuracy run)));
    tc "without propagation only weak completeness holds" (fun () ->
        let _, run, _ =
          Scenario.fd_run ~n:6 ~crashes:(Sim.Fault.crash 2 ~at:100) ~detector:Scenario.Ring_w ()
        in
        Alcotest.(check bool) "weak holds" true
          (report_holds (Spec.Fd_props.weak_completeness run));
        Alcotest.(check bool) "strong fails" false
          (report_holds (Spec.Fd_props.strong_completeness run)));
    tc "the no-propagation ring is even <>Q-grade (strong accuracy)" (fun () ->
        (* Its (local) false suspicions are rescinded on direct replies, so
           under partial synchrony it also offers eventual strong accuracy:
           weak completeness + strong accuracy = the ◇Q corner of Fig. 1. *)
        let _, run, _ =
          Scenario.fd_run
            ~net:(Scenario.chaotic_net ~seed:15 ~gst:400 ())
            ~horizon:8000 ~n:5 ~crashes:(Sim.Fault.crash 1 ~at:600)
            ~detector:Scenario.Ring_w ()
        in
        Test_util.check_class "ring-w as <>Q" Fd.Classes.Q_eventual run);
  ]

let leader_tests =
  [
    tc "everyone converges on the first correct process" (fun () ->
        let _, run, _ =
          Scenario.fd_run ~n:5
            ~crashes:(Sim.Fault.crashes [ (0, 150); (1, 300) ])
            ~detector:Scenario.Leader_s ()
        in
        Alcotest.(check bool) "leadership" true (report_holds (Spec.Fd_props.leadership run));
        Alcotest.(check (option int)) "leader is p3" (Some 2) (Spec.Fd_props.eventual_leader run));
    tc "satisfies <>S (with Omega-grade accuracy)" (fun () ->
        let _, run, _ =
          Scenario.fd_run ~n:5 ~crashes:(Sim.Fault.crash 0 ~at:150) ~detector:Scenario.Leader_s ()
        in
        Test_util.check_class "leader-s" Fd.Classes.S_eventual run;
        Alcotest.(check bool) "not <>P by construction" false
          (report_holds (Spec.Fd_props.eventual_strong_accuracy run)));
    tc "costs n-1 messages per period once stable" (fun () ->
        let n = 7 in
        let e = Scenario.engine ~n () in
        let _ = Fd.Leader_s.install e Fd.Leader_s.default_params in
        Sim.Engine.run_until e 1000;
        let snap = Sim.Stats.snapshot (Sim.Engine.stats e) in
        Sim.Engine.run_until e (1000 + (10 * Fd.Leader_s.default_params.Fd.Leader_s.period));
        let sent =
          Sim.Stats.sent_since (Sim.Engine.stats e) snap ~component:Fd.Leader_s.component
        in
        Alcotest.(check int) "only the leader beats" (10 * (n - 1)) sent);
    tc "chaotic start still converges" (fun () ->
        let _, run, _ =
          Scenario.fd_run
            ~net:(Scenario.chaotic_net ~seed:13 ~gst:500 ())
            ~horizon:8000 ~n:6 ~detector:Scenario.Leader_s ()
        in
        Alcotest.(check bool) "leadership" true (report_holds (Spec.Fd_props.leadership run)));
  ]

let stable_omega_tests =
  [
    tc "elects the initial leader and holds it, failure-free" (fun () ->
        let _, run, _ = Scenario.fd_run ~n:5 ~detector:Scenario.Stable_omega () in
        Alcotest.(check bool) "leadership" true (report_holds (Spec.Fd_props.leadership run));
        Alcotest.(check (option int)) "leader p1" (Some 0) (Spec.Fd_props.eventual_leader run));
    tc "re-elects exactly once per leader crash" (fun () ->
        let _, run, _ =
          Scenario.fd_run ~n:5
            ~crashes:(Sim.Fault.crashes [ (0, 300); (1, 900) ])
            ~detector:Scenario.Stable_omega ()
        in
        Alcotest.(check bool) "leadership" true (report_holds (Spec.Fd_props.leadership run));
        (* p3 observes: init + crash of p1 + crash of p2 = at most a couple
           of switches, none of them demoting a live leader. *)
        Alcotest.(check bool) "few changes" true (Spec.Fd_props.leader_changes run 3 <= 3);
        Alcotest.(check int) "no live demotion" 0
          (Spec.Fd_props.demotions_of_live_leaders run 3));
    tc "stability: a returning demoted process does not grab leadership back" (fun () ->
        (* Freeze p1's outgoing heartbeats with a custom link for a while:
           everyone demotes it; when its heartbeats resume, the incumbent
           stays (contrast with Leader_s, which flips back). *)
        let n = 4 in
        let blackout_from = 100 and blackout_to = 400 in
        let base = Sim.Link.synchronous ~delay:2 in
        let link =
          Sim.Link.route ~describe:"blackout-p1" (fun ~src ~dst:_ ->
              if src = 0 then
                {
                  Sim.Link.describe = "p1-muffled";
                  fate =
                    (fun ~rng ~now ~src ~dst ->
                      if now >= blackout_from && now <= blackout_to then Sim.Link.Drop
                      else base.Sim.Link.fate ~rng ~now ~src ~dst);
                  min_delay = Sim.Link.min_delay_bound base;
                }
              else base)
        in
        let run_with install_detector component =
          let e = Sim.Engine.create ~seed:1 ~n ~link () in
          let _ = install_detector e in
          Sim.Engine.run_until e 3000;
          let run = Spec.Fd_props.make_run ~component ~n (Sim.Engine.trace e) in
          (Spec.Fd_props.eventual_leader run, Spec.Fd_props.leader_changes run 2)
        in
        let stable_leader, stable_changes =
          run_with
            (fun e -> Fd.Stable_omega.install e Fd.Stable_omega.default_params)
            Fd.Stable_omega.component
        in
        let plain_leader, plain_changes =
          run_with
            (fun e -> Fd.Leader_s.install e Fd.Leader_s.default_params)
            Fd.Leader_s.component
        in
        (* Stable: p1 demoted once during the blackout, p2 keeps the crown
           afterwards.  Plain order-based: p1 reclaims it. *)
        Alcotest.(check (option int)) "stable keeps the incumbent" (Some 1) stable_leader;
        Alcotest.(check (option int)) "plain flips back to p1" (Some 0) plain_leader;
        Alcotest.(check bool)
          (Printf.sprintf "fewer switches (stable %d vs plain %d)" stable_changes plain_changes)
          true
          (stable_changes <= plain_changes));
    tc "chaotic start: still satisfies Omega (and <>C via the construction)" (fun () ->
        let _, run, _ =
          Scenario.fd_run
            ~net:(Scenario.chaotic_net ~seed:29 ~gst:500 ())
            ~horizon:9000 ~n:6 ~crashes:(Sim.Fault.crash 0 ~at:700)
            ~detector:Scenario.Ec_from_stable ()
        in
        Test_util.check_class "ec-from-stable" Fd.Classes.Ec run);
    tc "costs n-1 messages per period once stable" (fun () ->
        let n = 7 in
        let e = Scenario.engine ~n () in
        let _ = Fd.Stable_omega.install e Fd.Stable_omega.default_params in
        Sim.Engine.run_until e 1000;
        let snap = Sim.Stats.snapshot (Sim.Engine.stats e) in
        Sim.Engine.run_until e (1000 + (10 * Fd.Stable_omega.default_params.Fd.Stable_omega.period));
        Alcotest.(check int) "only the leader beats" (10 * (n - 1))
          (Sim.Stats.sent_since (Sim.Engine.stats e) snap ~component:Fd.Stable_omega.component));
  ]

let omega_from_s_tests =
  [
    tc "elects a common correct leader over ring-<>S" (fun () ->
        let e = Scenario.engine ~n:5 () in
        Sim.Fault.apply e (Sim.Fault.crash 0 ~at:200);
        let ring = Fd.Ring_s.install e Fd.Ring_s.default_params in
        let omega = Fd.Omega_from_s.install e ~underlying:ring Fd.Omega_from_s.default_params in
        Sim.Engine.run_until e 6000;
        let run =
          Spec.Fd_props.make_run
            ~component:(Fd.Fd_handle.component omega)
            ~n:5 (Sim.Engine.trace e)
        in
        Alcotest.(check bool) "leadership" true (report_holds (Spec.Fd_props.leadership run)));
    tc "survives the crash of the current leader" (fun () ->
        let e = Scenario.engine ~n:5 () in
        (* p1 is the initial argmin; kill it after stabilisation. *)
        Sim.Fault.apply e (Sim.Fault.crash 0 ~at:1500);
        let ring = Fd.Ring_s.install e Fd.Ring_s.default_params in
        let omega = Fd.Omega_from_s.install e ~underlying:ring Fd.Omega_from_s.default_params in
        Sim.Engine.run_until e 8000;
        let run =
          Spec.Fd_props.make_run
            ~component:(Fd.Fd_handle.component omega)
            ~n:5 (Sim.Engine.trace e)
        in
        Alcotest.(check bool) "leadership" true (report_holds (Spec.Fd_props.leadership run));
        match Spec.Fd_props.eventual_leader run with
        | Some l -> Alcotest.(check bool) "leader correct" true (l <> 0)
        | None -> Alcotest.fail "no leader");
    tc "costs n(n-1) messages per period (the expensive route)" (fun () ->
        let n = 5 in
        let e = Scenario.engine ~n () in
        let ring = Fd.Ring_s.install e Fd.Ring_s.default_params in
        let _ = Fd.Omega_from_s.install e ~underlying:ring Fd.Omega_from_s.default_params in
        Sim.Engine.run_until e 1000;
        let snap = Sim.Stats.snapshot (Sim.Engine.stats e) in
        Sim.Engine.run_until e (1000 + (10 * Fd.Omega_from_s.default_params.Fd.Omega_from_s.period));
        let sent =
          Sim.Stats.sent_since (Sim.Engine.stats e) snap ~component:Fd.Omega_from_s.component
        in
        Alcotest.(check int) "broadcasts" (10 * n * (n - 1)) sent);
  ]

(* The eventual-source fabric of [3]: only [source]'s output links are
   timely; every other link suffers ever-growing silence windows, so no
   time-out — even an adaptive one — can hold on it forever. *)
let eventual_source_link ~source =
  let timely = Sim.Link.reliable ~min_delay:1 ~max_delay:8 () in
  let silent = Sim.Link.growing_blackouts () in
  Sim.Link.route ~describe:"eventual-source" (fun ~src ~dst:_ ->
      if Sim.Pid.equal src source then timely else silent)

let omega_source_tests =
  [
    tc "elects the eventual source, not the smallest id" (fun () ->
        let n = 5 in
        let source = 2 in
        let e = Sim.Engine.create ~seed:1 ~n ~link:(eventual_source_link ~source) () in
        let h = Fd.Omega_source.install e Fd.Omega_source.default_params in
        Sim.Engine.run_until e 30_000;
        let run =
          Spec.Fd_props.make_run ~component:(Fd.Fd_handle.component h) ~n (Sim.Engine.trace e)
        in
        Alcotest.(check bool) "leadership" true
          (report_holds (Spec.Fd_props.leadership run));
        Alcotest.(check (option int)) "leader is the source" (Some source)
          (Spec.Fd_props.eventual_leader run));
    tc "the order-based election keeps flapping on that fabric" (fun () ->
        (* Same system, Leader_s: whenever a silence window ends, p1's
           heartbeats resume and leadership is handed back to it; the next
           window takes it away again — no permanent leader.  (This is the
           [3] separation that motivates the counter-based algorithm.)  The
           counter-based election is settled long before the same point. *)
        let n = 5 in
        let run_of install component =
          let e = Sim.Engine.create ~seed:1 ~n ~link:(eventual_source_link ~source:2) () in
          install e;
          Sim.Engine.run_until e 30_000;
          Spec.Fd_props.make_run ~component ~n (Sim.Engine.trace e)
        in
        let plain =
          run_of
            (fun e -> ignore (Fd.Leader_s.install e Fd.Leader_s.default_params))
            Fd.Leader_s.component
        in
        let counter =
          run_of
            (fun e -> ignore (Fd.Omega_source.install e Fd.Omega_source.default_params))
            Fd.Omega_source.component
        in
        let late_plain = Spec.Fd_props.leader_changes_after plain 3 ~after:15_000 in
        let late_counter = Spec.Fd_props.leader_changes_after counter 3 ~after:15_000 in
        Alcotest.(check bool)
          (Printf.sprintf "plain flaps late in the run (%d changes)" late_plain)
          true (late_plain > 0);
        Alcotest.(check int) "counter-based is settled" 0 late_counter);
    tc "still plain Omega under full partial synchrony, with crashes" (fun () ->
        let e = Scenario.engine ~n:5 () in
        Sim.Fault.apply e (Sim.Fault.crashes [ (0, 300); (2, 800) ]);
        let h = Fd.Omega_source.install e Fd.Omega_source.default_params in
        Sim.Engine.run_until e 8000;
        let run =
          Spec.Fd_props.make_run ~component:(Fd.Fd_handle.component h) ~n:5 (Sim.Engine.trace e)
        in
        Alcotest.(check bool) "leadership" true (report_holds (Spec.Fd_props.leadership run));
        match Spec.Fd_props.eventual_leader run with
        | Some l -> Alcotest.(check bool) "correct leader" true (l <> 0 && l <> 2)
        | None -> Alcotest.fail "no leader");
    tc "costs n(n-1) per period (the price of weak assumptions)" (fun () ->
        let n = 6 in
        let e = Scenario.engine ~n () in
        let _ = Fd.Omega_source.install e Fd.Omega_source.default_params in
        Sim.Engine.run_until e 1000;
        let snap = Sim.Stats.snapshot (Sim.Engine.stats e) in
        Sim.Engine.run_until e (1000 + (10 * Fd.Omega_source.default_params.Fd.Omega_source.period));
        Alcotest.(check int) "all-to-all" (10 * n * (n - 1))
          (Sim.Stats.sent_since (Sim.Engine.stats e) snap ~component:Fd.Omega_source.component));
  ]

let weak_to_strong_tests =
  [
    tc "amplifies ring-<>W to strong completeness" (fun () ->
        let e = Scenario.engine ~n:6 () in
        Sim.Fault.apply e (Sim.Fault.crash 2 ~at:100);
        let weak = Fd.Ring_s.install e { Fd.Ring_s.default_params with propagate = false } in
        let strong =
          Fd.Weak_to_strong.install e ~underlying:weak Fd.Weak_to_strong.default_params
        in
        Sim.Engine.run_until e 6000;
        let run =
          Spec.Fd_props.make_run
            ~component:(Fd.Fd_handle.component strong)
            ~n:6 (Sim.Engine.trace e)
        in
        Test_util.check_class "w->s" Fd.Classes.S_eventual run);
    tc "preserves accuracy: transient accusations die out" (fun () ->
        (* A scripted underlying detector that wrongly suspects p1 for a
           while, then stops: the output must eventually clear p1. *)
        let e = Scenario.engine ~n:4 () in
        let bad = Fd.Fd_view.make ~suspected:(Sim.Pid.set_of_list [ 0 ]) () in
        let scripted =
          Fd.Scripted.install e
            ~initial:(fun _ -> Fd.Fd_view.empty)
            ~steps:
              [
                { Fd.Scripted.at = 50; pid = 2; view = bad };
                { Fd.Scripted.at = 400; pid = 2; view = Fd.Fd_view.empty };
              ]
            ()
        in
        let strong =
          Fd.Weak_to_strong.install e ~underlying:scripted Fd.Weak_to_strong.default_params
        in
        Sim.Engine.run_until e 3000;
        let run =
          Spec.Fd_props.make_run
            ~component:(Fd.Fd_handle.component strong)
            ~n:4 (Sim.Engine.trace e)
        in
        Alcotest.(check bool) "eventual strong accuracy" true
          (report_holds (Spec.Fd_props.eventual_strong_accuracy run)));
  ]

let oracle_scripted_tests =
  [
    tc "oracle is a perfect detector" (fun () ->
        let e = Scenario.engine ~n:4 () in
        let schedule = Sim.Fault.crashes [ (1, 100); (2, 500) ] in
        Sim.Fault.apply e schedule;
        let p = Fd.Oracle_p.install e ~schedule Fd.Oracle_p.default_params in
        Sim.Engine.run_until e 2000;
        let run =
          Spec.Fd_props.make_run ~component:(Fd.Fd_handle.component p) ~n:4 (Sim.Engine.trace e)
        in
        Test_util.check_class "oracle" Fd.Classes.P_eventual run;
        (* Strong accuracy holds from the very start: no premature suspicion. *)
        let tl = Spec.Eventually.of_views ~component:(Fd.Fd_handle.component p) (Sim.Engine.trace e) ~pid:0 in
        Alcotest.(check bool) "never suspects correct p4" true
          (List.for_all (fun (_, v) -> not (Fd.Fd_view.suspects v 3)) tl));
    tc "scripted applies steps at their instants" (fun () ->
        let e = Scenario.engine ~n:3 () in
        let v1 = Fd.Fd_view.make ~trusted:2 ~suspected:(Sim.Pid.set_of_list [ 1 ]) () in
        let h =
          Fd.Scripted.install e
            ~initial:(fun _ -> Fd.Fd_view.empty)
            ~steps:[ { Fd.Scripted.at = 10; pid = 0; view = v1 } ]
            ()
        in
        Sim.Engine.run_until e 5;
        Alcotest.(check bool) "before" true (Fd.Fd_view.equal (Fd.Fd_handle.query h 0) Fd.Fd_view.empty);
        Sim.Engine.run_until e 20;
        Alcotest.(check bool) "after" true (Fd.Fd_view.equal (Fd.Fd_handle.query h 0) v1));
    tc "stable views match the Theorem 3 adversary" (fun () ->
        let v = Fd.Scripted.stable ~leader:1 ~n:4 3 in
        Alcotest.(check (option int)) "trusts leader" (Some 1) v.Fd.Fd_view.trusted;
        Alcotest.(check bool) "suspects p1" true (Fd.Fd_view.suspects v 0);
        Alcotest.(check bool) "not leader" false (Fd.Fd_view.suspects v 1);
        Alcotest.(check bool) "not self" false (Fd.Fd_view.suspects v 3));
  ]

(* Cross-cutting qcheck: every detector satisfies its class on random
   minority-crash schedules. *)
let property_tests =
  let detector_satisfies detector cls =
    Test_util.qcheck ~count:15
      ~name:(Printf.sprintf "%s satisfies %s on random runs" (Scenario.detector_name detector) (Fd.Classes.name cls))
      QCheck2.Gen.(tup2 (int_range 3 7) (int_range 0 10_000))
      (fun (n, seed) ->
        let rng = Sim.Rng.create ~seed in
        let crashes = Sim.Fault.random_minority rng ~n ~latest:400 in
        let net = { Scenario.default_net with seed; gst = 200 } in
        let _, run, _ = Scenario.fd_run ~net ~crashes ~horizon:8000 ~n ~detector () in
        Test_util.bool_law
          (Printf.sprintf "n=%d seed=%d crashes=%s" n seed
             (Format.asprintf "%a" Sim.Fault.pp crashes))
          (Spec.Fd_props.satisfies_class cls run))
  in
  [
    detector_satisfies Scenario.Heartbeat_p Fd.Classes.P_eventual;
    detector_satisfies Scenario.Ring_s Fd.Classes.S_eventual;
    detector_satisfies Scenario.Leader_s Fd.Classes.S_eventual;
    detector_satisfies Scenario.Ring_w Fd.Classes.W_eventual;
  ]

let suites =
  [
    ("fd.view", view_tests);
    ("fd.handle", handle_tests);
    ("fd.classes", classes_tests);
    ("fd.heartbeat_p", heartbeat_tests);
    ("fd.ring_s", ring_tests);
    ("fd.leader_s", leader_tests);
    ("fd.stable_omega", stable_omega_tests);
    ("fd.omega_from_s", omega_from_s_tests);
    ("fd.omega_source", omega_source_tests);
    ("fd.weak_to_strong", weak_to_strong_tests);
    ("fd.oracle_scripted", oracle_scripted_tests);
    ("fd.properties", property_tests);
  ]
