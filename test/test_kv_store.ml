(* Tests of the replicated key-value store (state-machine replication over
   total-order broadcast over repeated ◇C consensus). *)

let tc name f = Alcotest.test_case name `Quick f

module Kv = Consensus.Kv_store

let make_store ?(n = 5) ?(seed = 1) ?(crashes = Sim.Fault.none) ?(max_slots = 24) () =
  let engine = Scenario.engine ~net:{ Scenario.default_net with seed } ~n () in
  Sim.Fault.apply engine crashes;
  let fd = Scenario.install_detector engine Scenario.Ec_from_leader in
  let make_instance ~slot =
    let suffix = Printf.sprintf ".slot%d" slot in
    let rb =
      Broadcast.Reliable_broadcast.create
        ~component:(Broadcast.Reliable_broadcast.default_component ^ suffix)
        engine
    in
    Ecfd.Ec_consensus.install
      ~component:(Ecfd.Ec_consensus.component ^ suffix)
      engine ~fd ~rb Ecfd.Ec_consensus.default_params
  in
  let store = Kv.create ~max_slots engine ~make_instance () in
  (engine, store)

let correct engine =
  List.filter (Sim.Engine.is_alive engine) (Sim.Pid.all ~n:(Sim.Engine.n engine))

let check_convergence what engine store =
  match correct engine with
  | [] -> Alcotest.fail (what ^ ": nobody alive")
  | first :: rest ->
    let reference = Kv.entries store first in
    List.iter
      (fun p ->
        Alcotest.(check (list (pair int int)))
          (Printf.sprintf "%s: %s agrees with %s" what (Sim.Pid.to_string p)
             (Sim.Pid.to_string first))
          reference (Kv.entries store p))
      rest;
    reference

let encoding_tests =
  [
    tc "encode/decode round-trips" (fun () ->
        List.iter
          (fun c ->
            Alcotest.(check bool)
              (Format.asprintf "%a" Kv.pp_command c)
              true
              (Kv.decode (Kv.encode c) = Some c))
          [
            Kv.Set { key = 0; value = 0 };
            Kv.Set { key = 1023; value = (1 lsl 20) - 1 };
            Kv.Delete { key = 512 };
            Kv.Add { key = 7; delta = -42 };
            Kv.Add { key = 7; delta = 42 };
            Kv.Add { key = 0; delta = -(1 lsl 19) + 1 };
          ]);
    tc "out-of-range commands are rejected" (fun () ->
        List.iter
          (fun c ->
            Alcotest.(check bool) "raises" true
              (try
                 ignore (Kv.encode c);
                 false
               with Invalid_argument _ -> true))
          [
            Kv.Set { key = 1024; value = 0 };
            Kv.Set { key = -1; value = 0 };
            Kv.Set { key = 0; value = 1 lsl 20 };
            Kv.Add { key = 0; delta = 1 lsl 19 };
          ]);
    tc "decode rejects garbage" (fun () ->
        Alcotest.(check bool) "negative" true (Kv.decode (-5) = None);
        (* tag 3 is unused *)
        Alcotest.(check bool) "bad tag" true (Kv.decode (3 * 1024 * (1 lsl 20)) = None));
  ]

let store_tests =
  [
    tc "replicas converge on a mixed workload" (fun () ->
        let engine, store = make_store () in
        let at t f = Sim.Engine.at engine t f in
        at 0 (fun () -> Kv.submit store ~src:0 (Kv.Set { key = 1; value = 10 }));
        at 5 (fun () -> Kv.submit store ~src:1 (Kv.Set { key = 2; value = 20 }));
        at 10 (fun () -> Kv.submit store ~src:2 (Kv.Add { key = 1; delta = 5 }));
        at 15 (fun () -> Kv.submit store ~src:3 (Kv.Delete { key = 2 }));
        at 20 (fun () -> Kv.submit store ~src:4 (Kv.Set { key = 3; value = 30 }));
        Sim.Engine.run_until engine 20_000;
        let state = check_convergence "mixed" engine store in
        (* All five commands applied everywhere. *)
        List.iter
          (fun p -> Alcotest.(check int) "applied" 5 (Kv.applied store p))
          (correct engine);
        (* k2 was deleted; k1 ended as 10+5 unless the Add was ordered first
           (then 0+5 then set 10 — order decides, but it is one order). *)
        Alcotest.(check bool) "k2 gone" true (not (List.mem_assoc 2 state)));
    tc "concurrent increments are linearised: the total always sums" (fun () ->
        let engine, store = make_store ~seed:7 () in
        (* Five replicas all increment the same counter at the same instant:
           no update may be lost. *)
        List.iter
          (fun src ->
            Sim.Engine.at engine 3 (fun () ->
                Kv.submit store ~src (Kv.Add { key = 9; delta = 1 + src })))
          (Sim.Pid.all ~n:5);
        Sim.Engine.run_until engine 20_000;
        let _ = check_convergence "increments" engine store in
        Alcotest.(check (option int)) "sum 1+2+3+4+5" (Some 15) (Kv.get store 0 ~key:9));
    tc "a crashing replica cannot fork the store" (fun () ->
        let engine, store = make_store ~crashes:(Sim.Fault.crash 1 ~at:50) () in
        Sim.Engine.at engine 5 (fun () -> Kv.submit store ~src:1 (Kv.Set { key = 1; value = 1 }));
        Sim.Engine.at engine 45 (fun () -> Kv.submit store ~src:1 (Kv.Set { key = 1; value = 2 }));
        Sim.Engine.at engine 60 (fun () -> Kv.submit store ~src:0 (Kv.Add { key = 1; delta = 10 }));
        Sim.Engine.run_until engine 20_000;
        let _ = check_convergence "crash" engine store in
        (* Whatever subset of p2's writes survived, every live replica
           applied the same log. *)
        let logs = List.map (fun p -> Kv.log store p) (correct engine) in
        Alcotest.(check bool) "same logs" true
          (List.for_all (( = ) (List.hd logs)) logs));
    Test_util.qcheck ~count:8 ~name:"random workloads always converge"
      QCheck2.Gen.(tup2 (int_range 3 6) (int_range 0 10_000))
      (fun (n, seed) ->
        let rng = Sim.Rng.create ~seed in
        let crashes = Sim.Fault.random_minority rng ~n ~latest:200 in
        let engine, store = make_store ~n ~seed ~crashes ~max_slots:16 () in
        for i = 0 to 7 do
          let src = Sim.Rng.int rng ~bound:n in
          let at = Sim.Rng.int rng ~bound:300 in
          let command =
            match i mod 3 with
            | 0 -> Kv.Set { key = Sim.Rng.int rng ~bound:4; value = i }
            | 1 -> Kv.Add { key = Sim.Rng.int rng ~bound:4; delta = 1 }
            | _ -> Kv.Delete { key = Sim.Rng.int rng ~bound:4 }
          in
          Sim.Engine.at engine at (fun () ->
              if Sim.Engine.is_alive engine src then Kv.submit store ~src command)
        done;
        Sim.Engine.run_until engine 30_000;
        match correct engine with
        | [] -> true
        | first :: rest ->
          List.for_all
            (fun p ->
              Kv.entries store p = Kv.entries store first && Kv.log store p = Kv.log store first)
            rest);
  ]

let suites = [ ("consensus.kv.encoding", encoding_tests); ("consensus.kv.store", store_tests) ]
